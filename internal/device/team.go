// Package device models the metal-oxide memristor used as the NVMM storage
// cell. The dynamics follow the TEAM (ThrEshold Adaptive Memristor) model of
// Kvatinsky et al.: the internal state variable drifts only while the applied
// voltage exceeds a polarity-dependent threshold, with asymmetric on/off rate
// constants. The asymmetry produces the hysteresis the paper exploits in
// Fig. 5 — the decryption pulse width differs from the encryption pulse
// width.
//
// Cells are multi-level (MLC-2): two bits per cell, stored as four
// resistance bands on the linear state-to-resistance map.
package device

import (
	"fmt"
	"math"
	"math/rand"
)

// Params holds the TEAM model and crossbar-relevant physical parameters of a
// memristor cell. The defaults (see DefaultParams) are tuned so a +1 V,
// 0.071 us pulse moves the state by exactly two MLC levels (logic 10 ->
// logic 00, reaching ~172 kOhm) and the matching -1 V decrypt pulse is
// ~0.015 us wide, reproducing Fig. 5.
type Params struct {
	ROn  float64 // resistance at state x = 0 (ohms)
	ROff float64 // resistance at state x = 1 (ohms)

	VtOff float64 // positive drift threshold (volts); v > VtOff increases x
	VtOn  float64 // negative drift threshold (volts, < 0); v < VtOn decreases x

	KOff float64 // positive-drift rate constant (1/s)
	KOn  float64 // negative-drift rate constant (1/s)

	AlphaOff float64 // positive-drift nonlinearity exponent
	AlphaOn  float64 // negative-drift nonlinearity exponent
}

// DefaultParams returns the nominal cell used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		ROn:      10e3,
		ROff:     195142.857, // makes R(7/8) = 172 kOhm, the Fig. 5 logic-00 point
		VtOff:    0.75,
		VtOn:     -0.75,
		KOff:     2.1127e7,
		KOn:      1.0e8,
		AlphaOff: 1,
		AlphaOn:  1,
	}
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.ROn <= 0 || p.ROff <= p.ROn:
		return fmt.Errorf("device: need 0 < ROn < ROff, got ROn=%g ROff=%g", p.ROn, p.ROff)
	case p.VtOff <= 0:
		return fmt.Errorf("device: VtOff must be > 0, got %g", p.VtOff)
	case p.VtOn >= 0:
		return fmt.Errorf("device: VtOn must be < 0, got %g", p.VtOn)
	case p.KOff <= 0 || p.KOn <= 0:
		return fmt.Errorf("device: rate constants must be > 0")
	case p.AlphaOff <= 0 || p.AlphaOn <= 0:
		return fmt.Errorf("device: alpha exponents must be > 0")
	}
	return nil
}

// Vary returns a copy of p with every continuous parameter independently
// perturbed by a uniform factor in [1-frac, 1+frac]. Thresholds keep their
// sign. This implements the Monte-Carlo parametric variation study of
// Section 5 and the hardware-avalanche data set of Section 6.1.
func (p Params) Vary(rng *rand.Rand, frac float64) Params {
	f := func(v float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
	q := p
	q.ROn = f(p.ROn)
	q.ROff = f(p.ROff)
	if q.ROff <= q.ROn {
		q.ROff = q.ROn * 1.5
	}
	q.VtOff = f(p.VtOff)
	q.VtOn = -f(-p.VtOn)
	q.KOff = f(p.KOff)
	q.KOn = f(p.KOn)
	return q
}

// Cell is a single memristor with continuous internal state x in [0, 1].
type Cell struct {
	P Params
	X float64 // internal state: 0 -> ROn, 1 -> ROff
}

// NewCell returns a cell with the given parameters, initialized to level 0.
func NewCell(p Params) *Cell {
	return &Cell{P: p, X: LevelCenter(0)}
}

// Resistance returns the cell's present resistance on the linear map
// R(x) = ROn + (ROff-ROn) * x.
func (c *Cell) Resistance() float64 {
	return c.P.ROn + (c.P.ROff-c.P.ROn)*c.X
}

// Conductance returns 1/Resistance.
func (c *Cell) Conductance() float64 { return 1 / c.Resistance() }

// drift returns dx/dt for an applied voltage v under the TEAM model.
func (p Params) drift(v float64) float64 {
	switch {
	case v > p.VtOff:
		return p.KOff * math.Pow(v/p.VtOff-1, p.AlphaOff)
	case v < p.VtOn:
		return -p.KOn * math.Pow(v/p.VtOn-1, p.AlphaOn)
	default:
		return 0
	}
}

// Pulse is a rectangular voltage pulse.
type Pulse struct {
	Voltage float64 // volts, signed
	Width   float64 // seconds, > 0
}

// ApplyPulse integrates the state under a rectangular pulse using fixed-step
// RK4 (the drift is state-independent inside the bounds, so this is exact up
// to the clipping boundary, but RK4 keeps the integrator correct if a
// window function is introduced). State is clipped to [0, 1].
func (c *Cell) ApplyPulse(p Pulse) {
	if p.Width <= 0 {
		return
	}
	const steps = 64
	dt := p.Width / steps
	for i := 0; i < steps; i++ {
		c.X = clip01(c.X + dt*c.P.drift(p.Voltage))
	}
}

// StateAfter returns the state reached from x0 after the pulse, without
// mutating any cell. Because TEAM drift is state-independent between the
// clipping bounds, this closed form matches ApplyPulse.
func (p Params) StateAfter(x0 float64, pl Pulse) float64 {
	return clip01(x0 + pl.Width*p.drift(pl.Voltage))
}

func clip01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MLC-2 levels. Level L in {0,1,2,3} occupies the band
// [L/4, (L+1)/4) with center (2L+1)/8. Logic bits are the bitwise complement
// of the level index so that logic 00 is the highest-resistance band,
// matching Fig. 5 (logic 00 = 172 kOhm).
const Levels = 4

// LevelCenter returns the state-variable center of MLC level l.
func LevelCenter(l int) float64 {
	if l < 0 || l >= Levels {
		panic(fmt.Sprintf("device: level %d out of range", l))
	}
	return (2*float64(l) + 1) / (2 * Levels)
}

// QuantizeLevel maps a continuous state to its MLC level.
func QuantizeLevel(x float64) int {
	l := int(clip01(x) * Levels)
	if l == Levels {
		l = Levels - 1
	}
	return l
}

// LevelBits returns the 2-bit logic value stored by level l (logic =
// ^level & 3, so level 3 stores 00 and level 0 stores 11).
func LevelBits(l int) uint8 {
	if l < 0 || l >= Levels {
		panic(fmt.Sprintf("device: level %d out of range", l))
	}
	return uint8(^l) & 0x3
}

// BitsLevel is the inverse of LevelBits.
func BitsLevel(b uint8) int {
	if b > 3 {
		panic(fmt.Sprintf("device: bits %d out of range", b))
	}
	return int(^b) & 0x3
}

// WriteLevel programs the cell to the center of level l (an idealized write,
// as performed by the crossbar write circuitry between encryptions).
func (c *Cell) WriteLevel(l int) { c.X = LevelCenter(l) }

// ReadLevel returns the quantized MLC level of the cell.
func (c *Cell) ReadLevel() int { return QuantizeLevel(c.X) }

// CalibrateDecryptWidth finds, by bisection on the integrated dynamics, the
// width of an opposite-polarity pulse that returns a cell from the state
// reached after enc back to x0 (within tol). This reproduces the Fig. 5
// procedure: because KOn != KOff the decrypt width differs from the encrypt
// width. It returns an error if enc does not move the state or if the
// reverse pulse cannot reach x0 (e.g. the forward pulse clipped at a bound).
func (p Params) CalibrateDecryptWidth(x0 float64, enc Pulse, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	x1 := p.StateAfter(x0, enc)
	if x1 == x0 {
		return 0, fmt.Errorf("device: encrypt pulse %+v does not move state from %g", enc, x0)
	}
	rev := Pulse{Voltage: -enc.Voltage}
	// Exponential search for an upper bracket.
	hi := enc.Width
	for i := 0; i < 60; i++ {
		rev.Width = hi
		if movedPast(x0, x1, p.StateAfter(x1, rev)) {
			break
		}
		hi *= 2
	}
	rev.Width = hi
	if !movedPast(x0, x1, p.StateAfter(x1, rev)) {
		return 0, fmt.Errorf("device: reverse pulse cannot reach x0=%g from x1=%g", x0, x1)
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		rev.Width = mid
		if movedPast(x0, x1, p.StateAfter(x1, rev)) {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < tol*enc.Width {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// movedPast reports whether x has reached or passed x0 coming from x1.
func movedPast(x0, x1, x float64) bool {
	if x1 > x0 {
		return x <= x0
	}
	return x >= x0
}

// IVPoint is one sample of a quasi-static current-voltage sweep.
type IVPoint struct {
	V float64 // applied voltage
	I float64 // resulting current
	X float64 // internal state at the sample
}

// IVSweep drives the cell with a sinusoidal voltage of the given amplitude
// and period for the given number of cycles, sampling current at each
// step. A memristor's signature is the pinched hysteresis loop: the I-V
// trace always crosses the origin but encloses area whenever the state
// moves within a cycle.
func (c *Cell) IVSweep(amplitude, period float64, cycles, stepsPerCycle int) []IVPoint {
	if cycles < 1 || stepsPerCycle < 4 || period <= 0 {
		return nil
	}
	dt := period / float64(stepsPerCycle)
	out := make([]IVPoint, 0, cycles*stepsPerCycle)
	for i := 0; i < cycles*stepsPerCycle; i++ {
		t := float64(i) * dt
		v := amplitude * math.Sin(2*math.Pi*t/period)
		c.X = clip01(c.X + dt*c.P.drift(v))
		out = append(out, IVPoint{V: v, I: v / c.Resistance(), X: c.X})
	}
	return out
}
