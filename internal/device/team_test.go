package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := DefaultParams()
	cases := []func(*Params){
		func(p *Params) { p.ROn = -1 },
		func(p *Params) { p.ROff = p.ROn / 2 },
		func(p *Params) { p.VtOff = 0 },
		func(p *Params) { p.VtOn = 0.5 },
		func(p *Params) { p.KOff = 0 },
		func(p *Params) { p.KOn = -1 },
		func(p *Params) { p.AlphaOff = 0 },
		func(p *Params) { p.AlphaOn = -2 },
	}
	for i, mut := range cases {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestThresholdBehaviour(t *testing.T) {
	p := DefaultParams()
	c := NewCell(p)
	c.X = 0.5
	// Sub-threshold voltages must not move the state (the Fig. 4 white
	// cells).
	for _, v := range []float64{0, 0.3, 0.74, -0.74, -0.5} {
		before := c.X
		c.ApplyPulse(Pulse{Voltage: v, Width: 1e-6})
		if c.X != before {
			t.Errorf("v=%g moved state %g -> %g", v, before, c.X)
		}
	}
	// Above threshold the state must move in the right direction.
	c.X = 0.5
	c.ApplyPulse(Pulse{Voltage: 1, Width: 1e-8})
	if c.X <= 0.5 {
		t.Errorf("+1V pulse did not increase state: %g", c.X)
	}
	c.X = 0.5
	c.ApplyPulse(Pulse{Voltage: -1, Width: 1e-8})
	if c.X >= 0.5 {
		t.Errorf("-1V pulse did not decrease state: %g", c.X)
	}
}

func TestStateClipping(t *testing.T) {
	p := DefaultParams()
	c := NewCell(p)
	c.X = 0.9
	c.ApplyPulse(Pulse{Voltage: 1, Width: 1}) // absurdly long pulse
	if c.X != 1 {
		t.Errorf("state = %g, want clipped to 1", c.X)
	}
	c.ApplyPulse(Pulse{Voltage: -1, Width: 1})
	if c.X != 0 {
		t.Errorf("state = %g, want clipped to 0", c.X)
	}
}

func TestStateAfterMatchesApplyPulse(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0 := rng.Float64()
		pl := Pulse{Voltage: 2*rng.Float64() - 1, Width: rng.Float64() * 1e-7}
		c := NewCell(p)
		c.X = x0
		c.ApplyPulse(pl)
		return math.Abs(c.X-p.StateAfter(x0, pl)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroWidthPulseNoop(t *testing.T) {
	c := NewCell(DefaultParams())
	c.X = 0.3
	c.ApplyPulse(Pulse{Voltage: 1, Width: 0})
	c.ApplyPulse(Pulse{Voltage: 1, Width: -1})
	if c.X != 0.3 {
		t.Errorf("state = %g, want 0.3", c.X)
	}
}

func TestResistanceMap(t *testing.T) {
	p := DefaultParams()
	c := NewCell(p)
	c.X = 0
	if got := c.Resistance(); math.Abs(got-p.ROn) > 1e-9 {
		t.Errorf("R(0) = %g, want ROn %g", got, p.ROn)
	}
	c.X = 1
	if got := c.Resistance(); math.Abs(got-p.ROff) > 1e-9 {
		t.Errorf("R(1) = %g, want ROff %g", got, p.ROff)
	}
	// The Fig. 5 anchor: logic 00 (level 3, x = 7/8) is ~172 kOhm.
	c.X = LevelCenter(3)
	if got := c.Resistance(); math.Abs(got-172e3) > 100 {
		t.Errorf("R(level 3) = %g, want ~172k", got)
	}
	if g := c.Conductance(); math.Abs(g*c.Resistance()-1) > 1e-12 {
		t.Error("conductance is not reciprocal of resistance")
	}
}

func TestLevelRoundTrip(t *testing.T) {
	for l := 0; l < Levels; l++ {
		if got := QuantizeLevel(LevelCenter(l)); got != l {
			t.Errorf("QuantizeLevel(center(%d)) = %d", l, got)
		}
		if got := BitsLevel(LevelBits(l)); got != l {
			t.Errorf("BitsLevel(LevelBits(%d)) = %d", l, got)
		}
	}
	// Boundary x=1 maps to the top level.
	if got := QuantizeLevel(1); got != Levels-1 {
		t.Errorf("QuantizeLevel(1) = %d", got)
	}
	if got := QuantizeLevel(0); got != 0 {
		t.Errorf("QuantizeLevel(0) = %d", got)
	}
}

func TestLevelBitsEncoding(t *testing.T) {
	// Level 3 (highest resistance) stores logic 00; level 0 stores 11.
	if LevelBits(3) != 0 {
		t.Errorf("LevelBits(3) = %02b, want 00", LevelBits(3))
	}
	if LevelBits(0) != 3 {
		t.Errorf("LevelBits(0) = %02b, want 11", LevelBits(0))
	}
	// All four logic values are distinct.
	seen := map[uint8]bool{}
	for l := 0; l < Levels; l++ {
		b := LevelBits(l)
		if seen[b] {
			t.Errorf("duplicate bits %02b", b)
		}
		seen[b] = true
	}
}

func TestLevelPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { LevelCenter(-1) },
		func() { LevelCenter(4) },
		func() { LevelBits(5) },
		func() { BitsLevel(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCalibrateDecryptWidthFig5(t *testing.T) {
	// The Fig. 5 anchor: encrypting logic 10 (level 1, x=3/8) with a +1 V,
	// 0.071 us pulse lands at logic 00 (level 3, x=7/8, ~172 kOhm); the
	// calibrated decrypt pulse is -1 V, ~0.015 us.
	p := DefaultParams()
	enc := Pulse{Voltage: 1, Width: 0.071e-6}
	x0 := LevelCenter(1)
	x1 := p.StateAfter(x0, enc)
	if QuantizeLevel(x1) != 3 {
		t.Fatalf("encrypt landed at level %d (x=%g), want 3", QuantizeLevel(x1), x1)
	}
	c := NewCell(p)
	c.X = x1
	if math.Abs(c.Resistance()-172e3) > 4e3 {
		t.Errorf("encrypted resistance %g, want ~172k", c.Resistance())
	}
	decW, err := p.CalibrateDecryptWidth(x0, enc, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(decW-0.015e-6) > 0.002e-6 {
		t.Errorf("decrypt width %g us, want ~0.015 us", decW*1e6)
	}
	// Applying the calibrated pulse restores the original level.
	x2 := p.StateAfter(x1, Pulse{Voltage: -1, Width: decW})
	if QuantizeLevel(x2) != 1 {
		t.Errorf("decrypt landed at level %d, want 1", QuantizeLevel(x2))
	}
}

func TestCalibrateDecryptWidthBothPolarities(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0 := 0.2 + 0.6*rng.Float64()
		v := 1.0
		if rng.Intn(2) == 1 {
			v = -1
		}
		// Keep the shift inside the bounds.
		maxShift := 1 - x0
		if v < 0 {
			maxShift = x0
		}
		shift := maxShift * (0.1 + 0.8*rng.Float64())
		w, err := p.WidthForShift(shift*Levels, v)
		if err != nil {
			return false
		}
		enc := Pulse{Voltage: v, Width: w}
		decW, err := p.CalibrateDecryptWidth(x0, enc, 1e-9)
		if err != nil {
			return false
		}
		x1 := p.StateAfter(x0, enc)
		x2 := p.StateAfter(x1, Pulse{Voltage: -v, Width: decW})
		return math.Abs(x2-x0) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCalibrateErrors(t *testing.T) {
	p := DefaultParams()
	// Sub-threshold pulse moves nothing.
	if _, err := p.CalibrateDecryptWidth(0.5, Pulse{Voltage: 0.1, Width: 1e-6}, 0); err == nil {
		t.Error("expected error for immobile pulse")
	}
}

func TestHysteresisAsymmetry(t *testing.T) {
	// KOn > KOff: a negative pulse of equal width moves the state farther
	// than a positive one — that asymmetry is the paper's hysteresis.
	p := DefaultParams()
	up := p.StateAfter(0.5, Pulse{Voltage: 1, Width: 1e-8}) - 0.5
	down := 0.5 - p.StateAfter(0.5, Pulse{Voltage: -1, Width: 1e-8})
	if down <= up {
		t.Errorf("expected |down| > |up|: up=%g down=%g", up, down)
	}
	ratio := down / up
	if math.Abs(ratio-p.KOn/p.KOff) > 1e-6*ratio {
		t.Errorf("asymmetry ratio %g, want KOn/KOff %g", ratio, p.KOn/p.KOff)
	}
}

func TestVary(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		q := p.Vary(rng, 0.05)
		if err := q.Validate(); err != nil {
			t.Fatalf("varied params invalid: %v", err)
		}
		if math.Abs(q.ROn-p.ROn) > 0.05*p.ROn+1e-9 {
			t.Errorf("ROn varied too far: %g vs %g", q.ROn, p.ROn)
		}
		if q.VtOn >= 0 {
			t.Errorf("VtOn lost sign: %g", q.VtOn)
		}
	}
	// frac = 0 is the identity.
	q := p.Vary(rng, 0)
	if q != p {
		t.Errorf("Vary(0) changed params: %+v vs %+v", q, p)
	}
}

func TestBuildPulseLibrary(t *testing.T) {
	lib, err := BuildPulseLibrary(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != NumPulses {
		t.Fatalf("library size %d, want %d", len(lib), NumPulses)
	}
	p := DefaultParams()
	for _, e := range lib {
		if e.Enc.Width <= 0 || e.Dec.Width <= 0 {
			t.Errorf("pulse %d: nonpositive width %+v", e.Index, e)
		}
		if e.Enc.Voltage*e.Dec.Voltage >= 0 {
			t.Errorf("pulse %d: decrypt polarity not opposite", e.Index)
		}
		// Verify invertibility from a compatible start state.
		x0 := 0.5
		if e.Enc.Voltage > 0 {
			x0 = 0.5 - e.Shift/(2*Levels)
		} else {
			x0 = 0.5 + e.Shift/(2*Levels)
		}
		x1 := p.StateAfter(x0, e.Enc)
		x2 := p.StateAfter(x1, e.Dec)
		if math.Abs(x2-x0) > 1e-4 {
			t.Errorf("pulse %d: round trip %g -> %g -> %g", e.Index, x0, x1, x2)
		}
	}
	// Positive-polarity decrypt widths must be shorter than encrypt widths
	// (KOn > KOff), and vice versa.
	for _, e := range lib[:NumWidths] {
		if e.Dec.Width >= e.Enc.Width {
			t.Errorf("pulse %d: dec width %g !< enc width %g", e.Index, e.Dec.Width, e.Enc.Width)
		}
	}
	for _, e := range lib[NumWidths:] {
		if e.Dec.Width <= e.Enc.Width {
			t.Errorf("pulse %d: dec width %g !> enc width %g", e.Index, e.Dec.Width, e.Enc.Width)
		}
	}
}

func TestBuildPulseLibraryInvalidParams(t *testing.T) {
	p := DefaultParams()
	p.KOff = 0
	if _, err := BuildPulseLibrary(p); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestWidthForShiftBelowThreshold(t *testing.T) {
	p := DefaultParams()
	if _, err := p.WidthForShift(1, 0.5); err == nil {
		t.Error("expected error below threshold")
	}
}

func TestIVSweepPinchedHysteresis(t *testing.T) {
	p := DefaultParams()
	c := NewCell(p)
	c.X = 0.5
	// Amplitude above threshold, period slow enough for full excursions.
	pts := c.IVSweep(1.2, 2e-6, 2, 400)
	if len(pts) != 800 {
		t.Fatalf("%d points", len(pts))
	}
	// Pinched at the origin: whenever V ~ 0, I ~ 0.
	for _, pt := range pts {
		if math.Abs(pt.V) < 1e-3 && math.Abs(pt.I) > 1e-7 {
			t.Fatalf("loop not pinched: V=%g I=%g", pt.V, pt.I)
		}
		if pt.X < 0 || pt.X > 1 {
			t.Fatalf("state out of bounds: %g", pt.X)
		}
	}
	// Hysteresis: the same voltage (e.g. +0.9 V) must be visited with at
	// least two distinct currents within a cycle (different states on the
	// up and down sweeps).
	var currents []float64
	for _, pt := range pts[:400] {
		if math.Abs(pt.V-0.9) < 0.02 {
			currents = append(currents, pt.I)
		}
	}
	if len(currents) < 2 {
		t.Fatal("sweep never sampled near +0.9 V")
	}
	minI, maxI := currents[0], currents[0]
	for _, i := range currents {
		if i < minI {
			minI = i
		}
		if i > maxI {
			maxI = i
		}
	}
	if (maxI-minI)/maxI < 0.01 {
		t.Errorf("no hysteresis at +0.9V: I in [%g, %g]", minI, maxI)
	}
}

func TestIVSweepSubThresholdIsLinear(t *testing.T) {
	// Below threshold the device is a fixed resistor: no state motion.
	p := DefaultParams()
	c := NewCell(p)
	c.X = 0.5
	pts := c.IVSweep(0.5, 1e-6, 1, 200)
	for _, pt := range pts {
		if pt.X != 0.5 {
			t.Fatalf("sub-threshold sweep moved state to %g", pt.X)
		}
	}
}

func TestIVSweepValidation(t *testing.T) {
	c := NewCell(DefaultParams())
	if pts := c.IVSweep(1, 0, 1, 100); pts != nil {
		t.Error("zero period accepted")
	}
	if pts := c.IVSweep(1, 1e-6, 0, 100); pts != nil {
		t.Error("zero cycles accepted")
	}
}
