package device

import "fmt"

// The paper assumes the NVMM's programming circuitry can produce 32 distinct
// pulses: 16 widths at each of +1 V and -1 V (Section 5.4). This file builds
// that library from the TEAM parameters, pairing every encryption pulse with
// its hysteresis-calibrated decryption pulse.

// PulseVoltage is the programming voltage magnitude used by SPE.
const PulseVoltage = 1.0

// NumWidths is the number of distinct pulse widths per polarity.
const NumWidths = 16

// NumPulses is the total number of distinct pulses (widths x polarities).
const NumPulses = 2 * NumWidths

// LibraryEntry is one pulse in the SPE pulse library together with the
// opposite-polarity pulse that undoes it (from the same starting band).
type LibraryEntry struct {
	Index int     // 0..NumPulses-1; index % NumWidths selects width, index / NumWidths selects polarity
	Enc   Pulse   // the encryption pulse
	Dec   Pulse   // calibrated decryption pulse
	Shift float64 // state displacement produced by Enc from mid-range, in MLC levels
}

// WidthForShift returns the pulse width at voltage v that displaces the
// state by `levels` MLC levels (levels may be fractional). It returns an
// error if |v| does not exceed the drift threshold.
func (p Params) WidthForShift(levels, v float64) (float64, error) {
	d := p.drift(v)
	if d == 0 {
		return 0, fmt.Errorf("device: voltage %g below threshold, no drift", v)
	}
	if d < 0 {
		d = -d
	}
	return (levels / Levels) / d, nil
}

// BuildPulseLibrary constructs the 32-pulse library. Widths are chosen so
// pulse w (w = 0..15) displaces the state by (w+1)/4 of one MLC level band
// scaled up to 4 levels: shift_w = (w+1) * 4.0/NumWidths levels, i.e. 0.25,
// 0.5, ..., 4.0 levels. Decryption widths are calibrated by bisection from
// mid-range so the KOn/KOff asymmetry is reflected in every entry.
func BuildPulseLibrary(p Params) ([]LibraryEntry, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lib := make([]LibraryEntry, 0, NumPulses)
	for pol := 0; pol < 2; pol++ {
		v := PulseVoltage
		if pol == 1 {
			v = -PulseVoltage
		}
		for w := 0; w < NumWidths; w++ {
			shift := float64(w+1) * float64(Levels) / float64(NumWidths)
			width, err := p.WidthForShift(shift, v)
			if err != nil {
				return nil, err
			}
			enc := Pulse{Voltage: v, Width: width}
			// Calibrate from a start state that leaves room in both
			// directions for this shift, so bisection sees no clipping.
			x0 := 0.5
			if v > 0 {
				x0 = clip01(0.5 - shift/(2*Levels))
			} else {
				x0 = clip01(0.5 + shift/(2*Levels))
			}
			decW, err := p.CalibrateDecryptWidth(x0, enc, 1e-9)
			if err != nil {
				return nil, fmt.Errorf("device: calibrating pulse %d: %w", pol*NumWidths+w, err)
			}
			lib = append(lib, LibraryEntry{
				Index: pol*NumWidths + w,
				Enc:   enc,
				Dec:   Pulse{Voltage: -v, Width: decW},
				Shift: shift,
			})
		}
	}
	return lib, nil
}
