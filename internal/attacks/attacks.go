// Package attacks implements the threat-model analysis of Sections 3 and 6:
// the brute-force/ciphertext-only cost model (Attack 1), known- and
// chosen-plaintext analysis against single-covered cells (Attack 1/2), the
// insertion-attack experiment (Attack 2), and the cold-boot window
// calculation (Attack 3, Section 6.4).
package attacks

import (
	"fmt"
	"math"

	"snvmm/internal/poe"
	"snvmm/internal/xbar"
)

// SecondsPerYear converts attack times.
const SecondsPerYear = 365.25 * 24 * 3600

// PulseSeconds is the time one PoE pulse trial takes (Section 6.2.1:
// 100 ns per PoE).
const PulseSeconds = 100e-9

// BruteForce models the Section 6.2.1 key-space enumeration.
type BruteForce struct {
	Cells    int // candidate PoE positions (64 for an 8x8 crossbar)
	PoEs     int // pulses per encryption (16)
	Pulses   int // distinct pulse classes (32)
	KnownILP bool
}

// Validate rejects configurations the cost model has no meaning for:
// non-positive fields, and more PoEs than candidate cells (a placement
// cannot reuse a cell, so P(cells, poes) would be an empty product over
// negative factors).
func (b BruteForce) Validate() error {
	if b.Cells <= 0 || b.PoEs <= 0 || b.Pulses <= 0 {
		return fmt.Errorf("attacks: BruteForce fields must be positive (cells=%d poes=%d pulses=%d)",
			b.Cells, b.PoEs, b.Pulses)
	}
	if b.PoEs > b.Cells {
		return fmt.Errorf("attacks: %d PoEs exceed %d candidate cells", b.PoEs, b.Cells)
	}
	return nil
}

// log10Perm returns log10 of the falling factorial P(n, k).
func log10Perm(n, k int) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s += math.Log10(float64(n - i))
	}
	return s
}

// log10Factorial returns log10(n!).
func log10Factorial(n int) float64 { return log10Perm(n, n) }

// Log10Combinations returns log10 of the number of key guesses the
// attacker must try: P(cells, poes) * pulses^poes for the ciphertext-only
// attack, or poes! * poes^poes when the attacker knows the ILP placement
// but not the firing order or pulse widths. Invalid configurations error.
func (b BruteForce) Log10Combinations() (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if b.KnownILP {
		// 16! orderings x 16^16 pulse-width assignments (Section 6.2.1
		// uses 16 widths per polarity at fixed polarity pattern).
		return log10Factorial(b.PoEs) + float64(b.PoEs)*math.Log10(float64(b.PoEs)), nil
	}
	return log10Perm(b.Cells, b.PoEs) + float64(b.PoEs)*math.Log10(float64(b.Pulses)), nil
}

// Log10Years converts the guess count into log10(years) at one trial per
// PoE-sequence application (PoEs x PulseSeconds per trial). Decryption can
// only be attempted on the physical device, so no parallel speedup applies.
func (b BruteForce) Log10Years() (float64, error) {
	c, err := b.Log10Combinations()
	if err != nil {
		return 0, err
	}
	perTrial := float64(b.PoEs) * PulseSeconds
	return c + math.Log10(perTrial/SecondsPerYear), nil
}

// DefaultBruteForce is the paper's 8x8 configuration.
func DefaultBruteForce() BruteForce {
	return BruteForce{Cells: 64, PoEs: 16, Pulses: 32}
}

// AESBruteForceLog10Years estimates the same attack against an AES-128
// key at one key per 10 ns (an aggressive hardware guesser), matching the
// paper's ~1e38-year comparison point.
func AESBruteForceLog10Years() float64 {
	return 128*math.Log10(2) + math.Log10(10e-9/SecondsPerYear)
}

// KeySpaceBits returns the effective key size in bits for a crossbar:
// log2 P(cells, poes) address bits + poes*log2(pulses) voltage bits —
// Section 5.4's 44 + 44 = 88 bits for the 8x8 array.
func KeySpaceBits(cells, poes, pulses int) (addressBits, voltageBits float64) {
	addressBits = log10Perm(cells, poes) / math.Log10(2)
	voltageBits = float64(poes) * math.Log2(float64(pulses))
	return
}

// VulnerableCells runs the known-plaintext analysis of Section 6.2.2: a
// cell covered by exactly one polyomino exposes its pulse to an attacker
// holding a plaintext/ciphertext pair; cells covered by two or more remain
// ambiguous. It returns the single- and multi-covered counts for a
// placement (the Fig. 6 quantities).
func VulnerableCells(cfg xbar.Config, placement []xbar.Cell) (single, multi, uncovered int) {
	st := poe.StatsOf(cfg, cfg.PaperShape, placement)
	return st.Single, st.Overlapped, st.Uncovered
}

// ColdBoot models the Attack 3 window (Section 6.4).
type ColdBoot struct {
	CacheBytes    int     // dirty data to flush (the paper uses the 2 Mb cache)
	BlockBytes    int     // encryption granularity (64)
	PoEs          int     // pulses per crossbar (16)
	PulseSeconds  float64 // per-pulse time (100 ns)
	DRAMRetention float64 // seconds data survives in DRAM for comparison (3.2 s)
}

// DefaultColdBoot mirrors the paper's parameters.
func DefaultColdBoot() ColdBoot {
	return ColdBoot{
		CacheBytes:    2 << 20 / 8, // "2Mb" = 2 megabit cache contents
		BlockBytes:    64,
		PoEs:          16,
		PulseSeconds:  PulseSeconds,
		DRAMRetention: 3.2,
	}
}

// BlockSeconds is the time to secure one block: PoEs pulses applied to the
// block's crossbars (which operate in parallel).
func (c ColdBoot) BlockSeconds() float64 {
	return float64(c.PoEs) * c.PulseSeconds
}

// WindowSeconds is the total exposure window: every cache block written
// back at power-down must be encrypted before the data is safe.
func (c ColdBoot) WindowSeconds() float64 {
	blocks := c.CacheBytes / c.BlockBytes
	return float64(blocks) * c.BlockSeconds()
}

// Advantage is how much smaller the SPE window is than DRAM remanence.
func (c ColdBoot) Advantage() float64 {
	return c.DRAMRetention / c.WindowSeconds()
}

// Describe renders the Section 6 numbers for reports.
func Describe() string {
	bf := DefaultBruteForce()
	known := bf
	known.KnownILP = true
	cb := DefaultColdBoot()
	addr, volt := KeySpaceBits(64, 16, 32)
	// The defaults are valid by construction; a failed Validate would
	// surface as NaN in the report rather than a silent wrong number.
	val := func(v float64, err error) float64 {
		if err != nil {
			return math.NaN()
		}
		return v
	}
	return fmt.Sprintf(
		"brute force: 10^%.1f combinations (~10^%.1f years)\n"+
			"known-ILP: 10^%.1f combinations (~10^%.1f years)\n"+
			"AES-128 reference: ~10^%.1f years\n"+
			"key space: %.1f address bits + %.1f voltage bits\n"+
			"cold boot: %.2f us/block, window %.2f ms (DRAM %.1f s, %.0fx larger)",
		val(bf.Log10Combinations()), val(bf.Log10Years()),
		val(known.Log10Combinations()), val(known.Log10Years()),
		AESBruteForceLog10Years(),
		addr, volt,
		cb.BlockSeconds()*1e6, cb.WindowSeconds()*1e3, cb.DRAMRetention, cb.Advantage())
}
