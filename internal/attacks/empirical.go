package attacks

import (
	"bytes"
	"fmt"
	"math"

	"snvmm/internal/core"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// This file holds the empirical attack experiments: an exhaustive schedule
// recovery that is feasible only at toy scale (demonstrating why the 8x8
// key space is out of reach), and the insertion-attack statistic of
// Section 6.3.2.

// RecoverScheduleToy mounts Attack 2 on a stolen device at toy scale: the
// attacker holds one plaintext/ciphertext pair, knows the PoE placement
// (the ILP is public), has physical control of the crossbar, and
// enumerates every (firing order, pulse class) schedule until decryption
// reproduces the plaintext. classLimit caps the pulse classes tried per
// step (the paper's hardware offers 32). Returns the recovered schedule
// and the number of trials.
//
// The search is O(P! * classLimit^P); callers must keep len(placement)
// small — that infeasibility at P=16 is the point of Section 6.2.1.
func RecoverScheduleToy(cfg xbar.Config, placement []xbar.Cell, pt, ct []byte, fabSeed int64, classLimit int) (order []int, classes []int, trials int, err error) {
	n := len(placement)
	if n > 4 {
		return nil, nil, 0, fmt.Errorf("attacks: %d PoEs is beyond toy scale (max 4)", n)
	}
	if classLimit < 1 {
		return nil, nil, 0, fmt.Errorf("attacks: classLimit must be >= 1")
	}
	cfg.Seed = fabSeed
	xb, err := xbar.New(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(pt) != xb.BlockBytes() || len(ct) != xb.BlockBytes() {
		return nil, nil, 0, fmt.Errorf("attacks: pt/ct must be %d bytes", xb.BlockBytes())
	}
	cal := xbar.Calibrate(xb)

	perms := permutations(n)
	classSeq := make([]int, n)
	var found bool
	var foundOrder, foundClasses []int
	var tryClasses func(perm []int, depth int) error
	attempt := func(perm []int) error {
		trials++
		if err := xb.WriteBlock(ct); err != nil {
			return err
		}
		for step := n - 1; step >= 0; step-- {
			p := placement[perm[step]]
			if err := xb.ApplyPulse(cal, p, xbar.InverseClass(classSeq[step])); err != nil {
				return err
			}
		}
		if bytes.Equal(xb.ReadBlock(), pt) {
			found = true
			foundOrder = append([]int(nil), perm...)
			foundClasses = append([]int(nil), classSeq...)
		}
		return nil
	}
	tryClasses = func(perm []int, depth int) error {
		if found {
			return nil
		}
		if depth == n {
			return attempt(perm)
		}
		for c := 0; c < classLimit; c++ {
			classSeq[depth] = c
			if err := tryClasses(perm, depth+1); err != nil {
				return err
			}
			if found {
				return nil
			}
		}
		return nil
	}
	for _, perm := range perms {
		if err := tryClasses(perm, 0); err != nil {
			return nil, nil, trials, err
		}
		if found {
			return foundOrder, foundClasses, trials, nil
		}
	}
	return nil, nil, trials, fmt.Errorf("attacks: schedule not found in %d trials", trials)
}

// permutations enumerates all orderings of [0, n).
func permutations(n int) [][]int {
	var out [][]int
	cur := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				cur = append(cur, v)
				rec()
				cur = cur[:len(cur)-1]
				used[v] = false
			}
		}
	}
	rec()
	return out
}

// InsertionBias runs the Section 6.3.2 experiment: the attacker re-encrypts
// plaintexts differing in one known bit under the same key and measures the
// fraction of ciphertext bits that flip. A usable insertion attack needs
// the flip distribution to be biased; a value near 0.5 with small spread
// means no signal. Returns the mean flip fraction and its standard error.
func InsertionBias(eng *core.Engine, trials int, seed int64) (mean, stderr float64, err error) {
	ciph, err := core.NewCipher(eng, seed)
	if err != nil {
		return 0, 0, err
	}
	g := prng.NewGen(uint64(seed)*31 + 7)
	key := prng.NewKey(g.Uint64(), g.Uint64())
	nbits := ciph.BlockBytes() * 8
	fracs := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		pt := make([]byte, ciph.BlockBytes())
		for j := range pt {
			pt[j] = byte(g.Uint64())
		}
		base, err := ciph.Encrypt(key, pt)
		if err != nil {
			return 0, 0, err
		}
		bit := g.Intn(nbits)
		pt[bit/8] ^= 1 << uint(bit%8)
		mod, err := ciph.Encrypt(key, pt)
		if err != nil {
			return 0, 0, err
		}
		flips := 0
		for j := range base {
			x := base[j] ^ mod[j]
			for ; x != 0; x &= x - 1 {
				flips++
			}
		}
		fracs = append(fracs, float64(flips)/float64(nbits))
	}
	for _, f := range fracs {
		mean += f
	}
	mean /= float64(len(fracs))
	varsum := 0.0
	for _, f := range fracs {
		varsum += (f - mean) * (f - mean)
	}
	if len(fracs) > 1 {
		stderr = math.Sqrt(varsum/float64(len(fracs)-1)) / math.Sqrt(float64(len(fracs)))
	}
	return mean, stderr, nil
}
