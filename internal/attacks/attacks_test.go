package attacks

import (
	"math"
	"testing"

	"snvmm/internal/core"
	"snvmm/internal/device"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

func TestBruteForcePaperNumbers(t *testing.T) {
	// Section 6.2.1: P(64,16) * 32^16 combinations. The paper quotes
	// ~1e32 years; charging the full pulse space at 1.6 us per trial
	// gives ~1e39 (EXPERIMENTS.md discusses the paper's arithmetic) —
	// either way far beyond feasible.
	bf := DefaultBruteForce()
	c, err := bf.Log10Combinations()
	if err != nil {
		t.Fatal(err)
	}
	if c < 50 || c > 54 {
		t.Errorf("brute force log10 combinations = %.1f, want ~52", c)
	}
	years, err := bf.Log10Years()
	if err != nil {
		t.Fatal(err)
	}
	if years < 36 || years > 41 {
		t.Errorf("brute force log10 years = %.1f, want ~39", years)
	}
	// Known-ILP attack: 16! * 16^16 -> ~1e19 years.
	known := bf
	known.KnownILP = true
	y2, err := known.Log10Years()
	if err != nil {
		t.Fatal(err)
	}
	if y2 < 17 || y2 > 21 {
		t.Errorf("known-ILP log10 years = %.1f, want ~19", y2)
	}
	// The known-ILP attack must be dramatically cheaper but still absurd.
	if y2 >= years {
		t.Error("knowing the ILP should reduce the attack cost")
	}
	// AES reference ~1e38 per paper (their guesser assumption differs;
	// ours lands within a few orders).
	aes := AESBruteForceLog10Years()
	if aes < 20 || aes > 40 {
		t.Errorf("AES log10 years = %.1f", aes)
	}
}

// TestBruteForceGoldenValues pins the Section 6.2.1 headline numbers for
// the 8x8 / 16-PoE configuration as exact golden values, so any formula
// drift — not just order-of-magnitude breakage — fails loudly.
func TestBruteForceGoldenValues(t *testing.T) {
	const tol = 1e-9
	bf := DefaultBruteForce()
	golden := []struct {
		name string
		got  func() (float64, error)
		want float64
	}{
		{"combinations", bf.Log10Combinations, 52.091907762348},
		{"years", bf.Log10Years, 38.796923777918},
	}
	known := bf
	known.KnownILP = true
	golden = append(golden,
		struct {
			name string
			got  func() (float64, error)
			want float64
		}{"known-ILP combinations", known.Log10Combinations, 32.586539316274},
		struct {
			name string
			got  func() (float64, error)
			want float64
		}{"known-ILP years", known.Log10Years, 19.291555331845},
	)
	for _, g := range golden {
		v, err := g.got()
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if math.Abs(v-g.want) > tol {
			t.Errorf("%s: log10 = %.12f, want %.12f", g.name, v, g.want)
		}
	}
}

// TestBruteForceValidation is the regression for the silent-acceptance bug:
// PoEs > Cells and non-positive fields must error instead of producing a
// nonsense cost.
func TestBruteForceValidation(t *testing.T) {
	bad := []BruteForce{
		{Cells: 16, PoEs: 17, Pulses: 32}, // more PoEs than cells
		{Cells: -64, PoEs: 16, Pulses: 32},
		{Cells: 64, PoEs: 0, Pulses: 32},
		{Cells: 64, PoEs: -1, Pulses: 32},
		{Cells: 64, PoEs: 16, Pulses: 0},
		{Cells: 64, PoEs: 16, Pulses: -32},
		{},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", b)
		}
		if _, err := b.Log10Combinations(); err == nil {
			t.Errorf("Log10Combinations accepted %+v", b)
		}
		if _, err := b.Log10Years(); err == nil {
			t.Errorf("Log10Years accepted %+v", b)
		}
	}
	// The boundary case PoEs == Cells is legitimate (every cell pulsed).
	edge := BruteForce{Cells: 16, PoEs: 16, Pulses: 32}
	if err := edge.Validate(); err != nil {
		t.Errorf("Validate rejected PoEs == Cells: %v", err)
	}
}

func TestKeySpaceBits(t *testing.T) {
	// Section 5.4: 44-bit address seed + 44-bit voltage seed... the
	// address permutation space log2 P(64,16) ~ 87?? No: P(64,16) ~ 2^93.
	// The paper approximates the *storable* representation at 44 bits per
	// seed; the raw combination counts:
	addr, volt := KeySpaceBits(64, 16, 32)
	if volt != 16*5 {
		t.Errorf("voltage bits = %g, want 80", volt)
	}
	if addr < 85 || addr > 95 {
		t.Errorf("address bits = %g, want ~93 (log2 P(64,16))", addr)
	}
}

func TestVulnerableCells(t *testing.T) {
	cfg := xbar.DefaultConfig()
	eng, err := core.NewEngine(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	single, multi, uncovered := VulnerableCells(cfg, eng.Placement)
	if uncovered != 0 {
		t.Errorf("%d uncovered cells in default placement", uncovered)
	}
	if single+multi != cfg.Cells() {
		t.Errorf("single %d + multi %d != %d", single, multi, cfg.Cells())
	}
	// With the 16-PoE placement most cells must be multi-covered.
	if multi < cfg.Cells()/2 {
		t.Errorf("only %d multi-covered cells", multi)
	}
}

func TestColdBootPaperNumbers(t *testing.T) {
	cb := DefaultColdBoot()
	// 16 pulses x 100 ns = 1.6 us per block.
	if math.Abs(cb.BlockSeconds()-1.6e-6) > 1e-9 {
		t.Errorf("block time %g, want 1.6us", cb.BlockSeconds())
	}
	// 2 Mb = 256 KB = 4096 blocks -> 6.55 ms window; the paper quotes
	// 32.7 ms (their arithmetic corresponds to ~5x more blocks), both
	// orders of magnitude below DRAM's 3.2 s.
	w := cb.WindowSeconds()
	if w < 1e-3 || w > 100e-3 {
		t.Errorf("window %g s, want milliseconds", w)
	}
	if cb.Advantage() < 50 {
		t.Errorf("advantage over DRAM only %.0fx", cb.Advantage())
	}
}

func TestDescribeContainsEverything(t *testing.T) {
	s := Describe()
	for _, want := range []string{"brute force", "known-ILP", "AES", "cold boot"} {
		if !contains(s, want) {
			t.Errorf("Describe() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// toyConfig builds a 4x4 crossbar with a small PoE set for the recovery
// attack.
func toyConfig() (xbar.Config, []xbar.Cell) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	cfg.VertReach, cfg.HorizReach = 2, 1
	placement := []xbar.Cell{{Row: 1, Col: 1}, {Row: 2, Col: 2}}
	return cfg, placement
}

func TestRecoverScheduleToy(t *testing.T) {
	cfg, placement := toyConfig()
	const fabSeed = 99
	const classLimit = 4
	// The victim encrypts with a secret schedule.
	xb, err := xbar.New(withSeed(cfg, fabSeed))
	if err != nil {
		t.Fatal(err)
	}
	cal := xbar.Calibrate(xb)
	pt := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := xb.WriteBlock(pt); err != nil {
		t.Fatal(err)
	}
	secretOrder := []int{1, 0}
	secretClasses := []int{3, 1}
	for step := 0; step < 2; step++ {
		if err := xb.ApplyPulse(cal, placement[secretOrder[step]], secretClasses[step]); err != nil {
			t.Fatal(err)
		}
	}
	ct := xb.ReadBlock()
	// The attacker recovers it exhaustively.
	order, classes, trials, err := RecoverScheduleToy(cfg, placement, pt, ct, fabSeed, classLimit)
	if err != nil {
		t.Fatal(err)
	}
	if trials < 1 || trials > 2*classLimit*classLimit {
		t.Errorf("trials = %d outside search space", trials)
	}
	// Verify the recovered schedule actually decrypts (it may differ from
	// the secret if multiple schedules collide, which is fine).
	xb2, _ := xbar.New(withSeed(cfg, fabSeed))
	cal2 := xbar.Calibrate(xb2)
	if err := xb2.WriteBlock(ct); err != nil {
		t.Fatal(err)
	}
	for step := len(order) - 1; step >= 0; step-- {
		if err := xb2.ApplyPulse(cal2, placement[order[step]], xbar.InverseClass(classes[step])); err != nil {
			t.Fatal(err)
		}
	}
	got := xb2.ReadBlock()
	for i := range pt {
		if got[i] != pt[i] {
			t.Fatalf("recovered schedule does not decrypt: %x != %x", got, pt)
		}
	}
}

func withSeed(cfg xbar.Config, seed int64) xbar.Config {
	cfg.Seed = seed
	return cfg
}

func TestRecoverScheduleToyGuards(t *testing.T) {
	cfg, _ := toyConfig()
	big := make([]xbar.Cell, 5)
	if _, _, _, err := RecoverScheduleToy(cfg, big, nil, nil, 1, 4); err == nil {
		t.Error("expected toy-scale guard")
	}
	small := []xbar.Cell{{Row: 0, Col: 0}}
	if _, _, _, err := RecoverScheduleToy(cfg, small, nil, nil, 1, 0); err == nil {
		t.Error("expected classLimit guard")
	}
	if _, _, _, err := RecoverScheduleToy(cfg, small, []byte{1}, []byte{2}, 1, 2); err == nil {
		t.Error("expected size guard")
	}
}

func TestRecoverFailsOnWrongDevice(t *testing.T) {
	// Decryption only works on the same physical device: a replica with
	// different fabrication variation cannot find a schedule... with zero
	// variation devices are identical, so enable variation.
	cfg, placement := toyConfig()
	cfg.VarFrac = 0.05
	xb, err := xbar.New(withSeed(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	cal := xbar.Calibrate(xb)
	pt := []byte{0x12, 0x34, 0x56, 0x78}
	if err := xb.WriteBlock(pt); err != nil {
		t.Fatal(err)
	}
	for step, cls := range []int{2, 3} {
		if err := xb.ApplyPulse(cal, placement[step], cls); err != nil {
			t.Fatal(err)
		}
	}
	ct := xb.ReadBlock()
	// Attack on a *different* device (fabSeed 2).
	if _, _, _, err := RecoverScheduleToy(cfg, placement, pt, ct, 2, 4); err == nil {
		t.Log("wrong-device recovery unexpectedly succeeded (schedule collision); acceptable but rare")
	}
}

func TestInsertionBiasNearHalf(t *testing.T) {
	eng, err := core.NewEngine(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mean, stderr, err := InsertionBias(eng, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.5) > 0.08 {
		t.Errorf("insertion flip fraction %g +/- %g, want ~0.5", mean, stderr)
	}
	if stderr <= 0 || stderr > 0.05 {
		t.Errorf("stderr %g out of expected range", stderr)
	}
}

func TestPermutationsCount(t *testing.T) {
	if got := len(permutations(3)); got != 6 {
		t.Errorf("3! = %d", got)
	}
	if got := len(permutations(1)); got != 1 {
		t.Errorf("1! = %d", got)
	}
}

func deviceDefault() device.Params { return device.DefaultParams() }

var _ = prng.NewKey // keep import if tests shrink

func TestMeasureAmbiguity(t *testing.T) {
	p := deviceDefault()
	rep, err := MeasureAmbiguity(p, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Single-covered cells leak: the observed transition identifies the
	// pulse up to a small candidate set (larger than 1 only when the
	// state clipped at a rail, where big pulses are indistinguishable).
	if rep.MeanSingle < 1 || rep.MeanSingle > 6 {
		t.Errorf("single-pulse ambiguity %.2f, want small (leak)", rep.MeanSingle)
	}
	// Double coverage restores ambiguity: an order of magnitude more
	// explanations per observation — the paper's Section 6.2.2 argument.
	if rep.MeanPair < 10*rep.MeanSingle {
		t.Errorf("pair ambiguity %.2f not >> single %.2f", rep.MeanPair, rep.MeanSingle)
	}
	t.Logf("ambiguity: single-covered %.2f candidates, double-covered %.2f pairs",
		rep.MeanSingle, rep.MeanPair)
}
