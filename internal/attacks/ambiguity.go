package attacks

import (
	"math"

	"snvmm/internal/device"
)

// This file quantifies the Section 6.2.2 known-plaintext argument on the
// continuous device layer: "Based on the initial and final resistances of
// the memristors at the PoEs, the attacker can determine the applied
// voltage pulses. However, if the memory cell is encrypted by more than
// one overlapping polyomino, several possible pulse combinations (one at
// each PoE) can be applied to reach the final resistance."
//
// A cell covered by ONE polyomino received one pulse: the (x0, x1) state
// pair usually identifies that pulse uniquely from the 32-entry library.
// A cell covered by TWO polyominoes received two pulses in sequence, and
// many ordered pairs compose to the same end state — the attacker learns
// almost nothing.

// SinglePulseCandidates returns the library pulses consistent with a cell
// moving from state x0 to x1 under exactly one pulse (within tol).
func SinglePulseCandidates(p device.Params, lib []device.LibraryEntry, x0, x1, tol float64) []int {
	var out []int
	for _, e := range lib {
		if math.Abs(p.StateAfter(x0, e.Enc)-x1) <= tol {
			out = append(out, e.Index)
		}
	}
	return out
}

// PairPulseCandidates counts the ordered pulse pairs consistent with the
// cell moving from x0 to x1 under two pulses (one per overlapping
// polyomino).
func PairPulseCandidates(p device.Params, lib []device.LibraryEntry, x0, x1, tol float64) int {
	count := 0
	for _, e1 := range lib {
		mid := p.StateAfter(x0, e1.Enc)
		for _, e2 := range lib {
			if math.Abs(p.StateAfter(mid, e2.Enc)-x1) <= tol {
				count++
			}
		}
	}
	return count
}

// AmbiguityReport summarizes the coverage-vs-ambiguity study over all
// start states and observed transitions.
type AmbiguityReport struct {
	// MeanSingle is the average number of consistent pulses for
	// single-covered cells (1.0 = fully leaked).
	MeanSingle float64
	// MeanPair is the average number of consistent ordered pairs for
	// double-covered cells.
	MeanPair float64
	// Samples is the number of (start state, applied pulse[s]) trials.
	Samples int
}

// MeasureAmbiguity draws transitions by actually applying one (or two)
// library pulses from random interior start states and counts how many
// library explanations exist for each observation.
func MeasureAmbiguity(p device.Params, trials int, seed uint64) (AmbiguityReport, error) {
	lib, err := device.BuildPulseLibrary(p)
	if err != nil {
		return AmbiguityReport{}, err
	}
	const tol = 1e-6
	rnd := seed*2862933555777941757 + 3037000493
	next := func(n int) int {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int(rnd % uint64(n))
	}
	rep := AmbiguityReport{Samples: trials}
	for i := 0; i < trials; i++ {
		x0 := 0.3 + 0.4*float64(next(1000))/1000 // interior: avoid clipping degeneracy
		e1 := lib[next(len(lib))]
		x1 := p.StateAfter(x0, e1.Enc)
		rep.MeanSingle += float64(len(SinglePulseCandidates(p, lib, x0, x1, tol)))
		e2 := lib[next(len(lib))]
		x2 := p.StateAfter(x1, e2.Enc)
		rep.MeanPair += float64(PairPulseCandidates(p, lib, x0, x2, tol))
	}
	rep.MeanSingle /= float64(trials)
	rep.MeanPair /= float64(trials)
	return rep, nil
}
