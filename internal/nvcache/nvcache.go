// Package nvcache explores the paper's closing future-work direction:
// "The advent of non-volatile caches calls for faster encryption methods.
// Thus, extending SPE to consider high speed non-volatile cache memories
// is an interesting direction."
//
// The model is an SPE-protected non-volatile L2: lines rest encrypted in
// the memristor array, and a small volatile *decrypted line buffer* (DLB)
// holds the plaintext of recently-used lines. A hit in the DLB costs the
// plain cache latency; a hit in the encrypted array adds the SPE decrypt
// pulses; misses go to the next level as usual. The DLB size is the knob
// the future-work trades: larger buffers hide the decrypt latency but
// enlarge the volatile attack surface at power-down — exactly the
// serial-vs-parallel tension of Section 7 transplanted into the cache.
package nvcache

import (
	"fmt"

	"snvmm/internal/mem"
)

// Config describes an SPE-protected non-volatile cache.
type Config struct {
	Cache mem.CacheConfig
	// DecryptCycles is the per-line SPE decrypt latency. Cache-class
	// crossbars are small (one line = 4 crossbars as in main memory) but
	// must be fast; the paper's question is how far this can shrink.
	DecryptCycles int
	// DLBLines is the decrypted-line-buffer capacity (0 = SPE-parallel
	// style: every array hit pays the decrypt).
	DLBLines int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.DecryptCycles < 0 || c.DLBLines < 0 {
		return fmt.Errorf("nvcache: negative decrypt/DLB config")
	}
	return nil
}

// Cache is the non-volatile SPE cache model.
type Cache struct {
	cfg   Config
	inner *mem.Cache
	dlb   map[uint64]uint64 // line address -> last-use stamp
	stamp uint64

	ArrayHits  uint64 // hits that paid the decrypt latency
	BufferHits uint64 // hits served from the DLB
	Misses     uint64
}

// New builds the cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := mem.NewCache(cfg.Cache)
	if err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, inner: inner, dlb: make(map[uint64]uint64)}, nil
}

// lineAddr truncates to the line.
func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.Cache.LineBytes-1)
}

// touchDLB inserts a line into the decrypted buffer, evicting (i.e.
// re-encrypting in place) the least recently used entry when full.
func (c *Cache) touchDLB(line uint64) {
	if c.cfg.DLBLines == 0 {
		return
	}
	c.stamp++
	c.dlb[line] = c.stamp
	if len(c.dlb) <= c.cfg.DLBLines {
		return
	}
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for l, s := range c.dlb {
		if s < oldest {
			oldest = s
			victim = l
		}
	}
	delete(c.dlb, victim)
}

// AccessResult reports one access.
type AccessResult struct {
	Hit       bool
	Latency   uint64 // cycles to data (excluding lower levels on miss)
	Writeback bool
	WBAddr    uint64
}

// Access performs a cache access. On an array hit of an encrypted line the
// SPE decrypt latency is added and the line enters the DLB.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	line := c.lineAddr(addr)
	r := c.inner.Access(addr, write)
	out := AccessResult{Hit: r.Hit, Writeback: r.Writeback, WBAddr: r.WBAddr}
	lat := uint64(c.cfg.Cache.LatencyCycle)
	if r.Hit {
		if _, plain := c.dlb[line]; plain {
			c.BufferHits++
			c.stamp++
			c.dlb[line] = c.stamp
		} else {
			c.ArrayHits++
			lat += uint64(c.cfg.DecryptCycles)
			c.touchDLB(line)
		}
	} else {
		c.Misses++
		// The refill arrives plaintext from the SPECU path and is
		// encrypted in the array; it enters the DLB (it was just used).
		c.touchDLB(line)
		if r.Writeback {
			// The victim leaves as ciphertext; no extra latency on the
			// critical path (encrypt overlaps the writeback).
			delete(c.dlb, c.lineAddr(r.WBAddr))
		}
	}
	out.Latency = lat
	return out
}

// PlaintextLines reports how many lines are currently decrypted (the
// power-down exposure of the cache).
func (c *Cache) PlaintextLines() int { return len(c.dlb) }

// EncryptedFraction is the fraction of resident lines held as ciphertext.
func (c *Cache) EncryptedFraction() float64 {
	total := c.cfg.Cache.SizeBytes / c.cfg.Cache.LineBytes
	return 1 - float64(len(c.dlb))/float64(total)
}

// PowerDownCycles returns the cycles needed to re-encrypt the DLB at
// power-off (decrypt and encrypt pulses cost the same).
func (c *Cache) PowerDownCycles() uint64 {
	n := uint64(len(c.dlb))
	c.dlb = make(map[uint64]uint64)
	return n * uint64(c.cfg.DecryptCycles)
}

// AvgHitLatency returns the observed mean hit latency in cycles.
func (c *Cache) AvgHitLatency() float64 {
	hits := c.ArrayHits + c.BufferHits
	if hits == 0 {
		return float64(c.cfg.Cache.LatencyCycle)
	}
	base := float64(c.cfg.Cache.LatencyCycle)
	return base + float64(c.ArrayHits)*float64(c.cfg.DecryptCycles)/float64(hits)
}
