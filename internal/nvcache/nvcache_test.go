package nvcache

import (
	"testing"

	"snvmm/internal/mem"
)

func testConfig(dlb int) Config {
	return Config{
		Cache:         mem.CacheConfig{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 10},
		DecryptCycles: 16,
		DLBLines:      dlb,
	}
}

func newCache(t *testing.T, dlb int) *Cache {
	t.Helper()
	c, err := New(testConfig(dlb))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	cfg := testConfig(4)
	cfg.DecryptCycles = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative decrypt accepted")
	}
	cfg = testConfig(4)
	cfg.Cache.SizeBytes = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad cache geometry accepted")
	}
}

func TestArrayHitPaysDecrypt(t *testing.T) {
	c := newCache(t, 0)     // no DLB: every hit pays
	c.Access(0x1000, false) // miss, fill
	r := c.Access(0x1000, false)
	if !r.Hit {
		t.Fatal("expected hit")
	}
	if r.Latency != 10+16 {
		t.Errorf("hit latency %d, want 26", r.Latency)
	}
	if c.ArrayHits != 1 || c.BufferHits != 0 {
		t.Errorf("hits %d/%d", c.ArrayHits, c.BufferHits)
	}
}

func TestDLBHitIsFast(t *testing.T) {
	c := newCache(t, 8)
	c.Access(0x1000, false) // miss; line enters DLB
	r := c.Access(0x1000, false)
	if !r.Hit || r.Latency != 10 {
		t.Errorf("DLB hit latency %d, want 10", r.Latency)
	}
	if c.BufferHits != 1 {
		t.Errorf("buffer hits %d", c.BufferHits)
	}
}

func TestDLBEvictionLRU(t *testing.T) {
	c := newCache(t, 2)
	c.Access(0x0000, false)
	c.Access(0x1000, false)
	c.Access(0x0000, false) // refresh line 0
	c.Access(0x2000, false) // evicts 0x1000 from DLB
	if c.PlaintextLines() != 2 {
		t.Fatalf("DLB holds %d lines, want 2", c.PlaintextLines())
	}
	// 0x0000 stayed plaintext (check before touching anything else, since
	// every array hit displaces an LRU buffer entry).
	r := c.Access(0x0000, false)
	if r.Latency != 10 {
		t.Errorf("retained DLB line latency %d, want 10", r.Latency)
	}
	// 0x1000 is still cached but now encrypted: hit pays decrypt.
	r = c.Access(0x1000, false)
	if !r.Hit || r.Latency != 26 {
		t.Errorf("re-encrypted hit latency %d, want 26", r.Latency)
	}
}

func TestEncryptedFractionAndPowerDown(t *testing.T) {
	c := newCache(t, 16)
	for i := 0; i < 10; i++ {
		c.Access(uint64(i)*64, false)
	}
	if got := c.PlaintextLines(); got != 10 {
		t.Errorf("plaintext lines %d, want 10", got)
	}
	f := c.EncryptedFraction()
	want := 1 - 10.0/1024
	if f < want-1e-9 || f > want+1e-9 {
		t.Errorf("encrypted fraction %g, want %g", f, want)
	}
	cycles := c.PowerDownCycles()
	if cycles != 10*16 {
		t.Errorf("power-down cycles %d, want 160", cycles)
	}
	if c.PlaintextLines() != 0 {
		t.Error("DLB not cleared at power-down")
	}
}

func TestAvgHitLatencyTradeoff(t *testing.T) {
	// Bigger DLB -> lower average hit latency on a looping access pattern
	// larger than the small DLB but smaller than the big one.
	run := func(dlb int) float64 {
		c := newCache(t, dlb)
		for round := 0; round < 50; round++ {
			for i := 0; i < 32; i++ {
				c.Access(uint64(i)*64, false)
			}
		}
		return c.AvgHitLatency()
	}
	small := run(4)
	big := run(64)
	if big >= small {
		t.Errorf("bigger DLB latency %.2f >= smaller %.2f", big, small)
	}
	if big != 10 {
		t.Errorf("fully-buffered latency %.2f, want 10 (all DLB hits after warmup)", big)
	}
}

func TestMissesCount(t *testing.T) {
	c := newCache(t, 4)
	c.Access(0, false)
	c.Access(1<<20, false)
	if c.Misses != 2 {
		t.Errorf("misses %d", c.Misses)
	}
}

func TestWritebackLeavesDLB(t *testing.T) {
	// A dirty victim evicted from the cache must also leave the DLB.
	cfg := testConfig(64)
	cfg.Cache = mem.CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, LatencyCycle: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Set 0 lines: 0, 512, 1024 (stride = sets*line = 8*64 = 512).
	c.Access(0, true)
	c.Access(512, false)
	before := c.PlaintextLines()
	r := c.Access(1024, false) // evicts dirty line 0
	if !r.Writeback || r.WBAddr != 0 {
		t.Fatalf("expected writeback of 0, got %+v", r)
	}
	if c.PlaintextLines() != before { // line 0 left, line at 1024 entered
		t.Errorf("DLB size %d, want %d", c.PlaintextLines(), before)
	}
}
