package numeric

// GF2Rank computes the rank over GF(2) of a binary matrix with rows
// represented as bit-packed uint64 words. rows[i] holds the i-th row; cols is
// the number of valid columns (bits) per row. Rows longer than 64 bits span
// multiple words: rows[i] has ceil(cols/64) words, laid out least-significant
// bit = column 0.
//
// The NIST binary matrix rank test uses 32x32 matrices, which fit in a single
// word per row, but the implementation is generic so the crossbar address
// scrambler can reuse it.
func GF2Rank(rows [][]uint64, cols int) int {
	if len(rows) == 0 || cols == 0 {
		return 0
	}
	words := (cols + 63) / 64
	m := make([][]uint64, len(rows))
	for i, r := range rows {
		cp := make([]uint64, words)
		copy(cp, r)
		m[i] = cp
	}
	rank := 0
	for col := 0; col < cols && rank < len(m); col++ {
		w, b := col/64, uint(col%64)
		pivot := -1
		for r := rank; r < len(m); r++ {
			if m[r][w]>>b&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[rank], m[pivot] = m[pivot], m[rank]
		for r := 0; r < len(m); r++ {
			if r != rank && m[r][w]>>b&1 == 1 {
				for k := 0; k < words; k++ {
					m[r][k] ^= m[rank][k]
				}
			}
		}
		rank++
	}
	return rank
}

// GF2RankBits computes the GF(2) rank of an n x n binary matrix given as a
// flat row-major bit slice (len(bits) == n*n). It packs the rows and calls
// GF2Rank.
func GF2RankBits(bits []uint8, n int) int {
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	for i := 0; i < n; i++ {
		row := make([]uint64, words)
		for j := 0; j < n; j++ {
			if bits[i*n+j] != 0 {
				row[j/64] |= 1 << uint(j%64)
			}
		}
		rows[i] = row
	}
	return GF2Rank(rows, n)
}

// BerlekampMassey returns the linear complexity (length of the shortest LFSR
// generating the sequence) of the binary sequence s over GF(2). This is the
// core of the NIST linear complexity test.
func BerlekampMassey(s []uint8) int {
	n := len(s)
	b := make([]uint8, n)
	c := make([]uint8, n)
	t := make([]uint8, n)
	if n == 0 {
		return 0
	}
	b[0], c[0] = 1, 1
	L, m := 0, -1
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= L; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			copy(t, c)
			shift := i - m
			for j := 0; j+shift < n; j++ {
				c[j+shift] ^= b[j]
			}
			if 2*L <= i {
				L = i + 1 - L
				m = i
				copy(b, t)
			}
		}
	}
	return L
}
