package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestIgamcKnownValues(t *testing.T) {
	// Q(1, x) = exp(-x) exactly.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		almost(t, Igamc(1, x), math.Exp(-x), 1e-12, "Igamc(1,x)")
	}
	// Q(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4, 9} {
		almost(t, Igamc(0.5, x), math.Erfc(math.Sqrt(x)), 1e-12, "Igamc(0.5,x)")
	}
	// Q(2, x) = (1+x) exp(-x).
	for _, x := range []float64{0.1, 1, 3, 8} {
		almost(t, Igamc(2, x), (1+x)*math.Exp(-x), 1e-12, "Igamc(2,x)")
	}
}

func TestIgamComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := rng.Float64()*20 + 0.05
		x := rng.Float64() * 40
		s := Igam(a, x) + Igamc(a, x)
		almost(t, s, 1, 1e-10, "Igam+Igamc")
	}
}

func TestIgamMonotone(t *testing.T) {
	// P(a, x) is nondecreasing in x for fixed a.
	for _, a := range []float64{0.3, 1, 2.5, 7} {
		prev := -1.0
		for x := 0.0; x <= 30; x += 0.25 {
			p := Igam(a, x)
			if p < prev-1e-12 {
				t.Fatalf("Igam(%g,%g)=%g decreased from %g", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestIgamBoundaries(t *testing.T) {
	if got := Igam(3, 0); got != 0 {
		t.Errorf("Igam(3,0) = %g, want 0", got)
	}
	if got := Igamc(3, 0); got != 1 {
		t.Errorf("Igamc(3,0) = %g, want 1", got)
	}
	if got := Igamc(2, 1000); got > 1e-300 {
		t.Errorf("Igamc(2,1000) = %g, want ~0", got)
	}
}

func TestIgamPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Igam(0, 1) },
		func() { Igam(1, -1) },
		func() { Igamc(-2, 1) },
		func() { Igamc(1, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid domain")
				}
			}()
			fn()
		}()
	}
}

func TestNormalCDF(t *testing.T) {
	almost(t, NormalCDF(0), 0.5, 1e-15, "Phi(0)")
	almost(t, NormalCDF(1.959963984540054), 0.975, 1e-9, "Phi(1.96)")
	almost(t, NormalCDF(-1.959963984540054), 0.025, 1e-9, "Phi(-1.96)")
	almost(t, NormalSF(1.2)+NormalCDF(1.2), 1, 1e-14, "SF+CDF")
}

func TestChiSquareSF(t *testing.T) {
	// df=2: SF(x) = exp(-x/2).
	for _, x := range []float64{0.5, 2, 5, 10} {
		almost(t, ChiSquareSF(x, 2), math.Exp(-x/2), 1e-12, "ChiSquareSF df=2")
	}
	// Median of chi-square with 1 df is ~0.4549.
	almost(t, ChiSquareSF(0.454936, 1), 0.5, 1e-4, "ChiSquareSF median df=1")
	if got := ChiSquareSF(-1, 4); got != 1 {
		t.Errorf("ChiSquareSF(-1,4) = %g, want 1", got)
	}
}

func TestBinomialTail(t *testing.T) {
	// P[Bin(10, 0.5) >= 0] = 1, >= 11 = 0.
	if got := BinomialTail(10, 0.5, 0); got != 1 {
		t.Errorf("tail k=0 = %g, want 1", got)
	}
	if got := BinomialTail(10, 0.5, 11); got != 0 {
		t.Errorf("tail k>n = %g, want 0", got)
	}
	// P[Bin(2, 0.5) >= 1] = 0.75.
	almost(t, BinomialTail(2, 0.5, 1), 0.75, 1e-12, "Bin(2,.5)>=1")
	// P[Bin(4, 0.25) >= 4] = 0.25^4.
	almost(t, BinomialTail(4, 0.25, 4), math.Pow(0.25, 4), 1e-12, "Bin(4,.25)>=4")
}

func TestBinomialTailQuick(t *testing.T) {
	// Tail must be monotone nonincreasing in k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		p := rng.Float64()*0.9 + 0.05
		prev := 1.0
		for k := 0; k <= n+1; k++ {
			v := BinomialTail(n, p, k)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
