package numeric

// AperiodicTemplates enumerates all aperiodic binary templates of length m.
// A template B is aperiodic if no shift of B by 1..m-1 positions matches an
// overlap of itself, i.e. B cannot occur twice in overlapping positions.
// These are exactly the templates used by the NIST non-overlapping template
// matching test (148 templates for m = 9).
func AperiodicTemplates(m int) [][]uint8 {
	if m <= 0 {
		return nil
	}
	var out [][]uint8
	total := 1 << uint(m)
	for v := 0; v < total; v++ {
		t := make([]uint8, m)
		for i := 0; i < m; i++ {
			t[i] = uint8(v >> uint(m-1-i) & 1)
		}
		if isAperiodic(t) {
			out = append(out, t)
		}
	}
	return out
}

// isAperiodic reports whether template t has no nontrivial self-overlap: for
// every shift d in [1, m), the prefix of length m-d differs from the suffix
// of length m-d.
func isAperiodic(t []uint8) bool {
	m := len(t)
	for d := 1; d < m; d++ {
		match := true
		for i := 0; i < m-d; i++ {
			if t[i] != t[i+d] {
				match = false
				break
			}
		}
		if match {
			return false
		}
	}
	return true
}
