// Package numeric provides the special functions and bit-level numeric
// kernels used by the statistical test suite and the circuit solver:
// regularized incomplete gamma functions, the complementary error function
// helpers, discrete Fourier transforms (radix-2 and Bluestein chirp-Z),
// binary matrix rank over GF(2), Berlekamp–Massey linear complexity, and
// aperiodic template enumeration for the NIST non-overlapping template test.
package numeric

import (
	"errors"
	"math"
)

// Machine epsilon and iteration guards for the continued-fraction and series
// expansions below. The constants follow the classic Cephes/Numerical Recipes
// formulation, which is also what the NIST STS reference code uses.
const (
	igamEpsilon = 1e-30
	igamMaxIter = 10000
)

// ErrNoConverge is returned when an iterative special-function expansion
// fails to converge within its iteration budget.
var ErrNoConverge = errors.New("numeric: series did not converge")

// Igam returns the regularized lower incomplete gamma function P(a, x),
// defined as gamma(a, x)/Gamma(a). It panics if a <= 0 or x < 0.
func Igam(a, x float64) float64 {
	if a <= 0 || x < 0 {
		panic("numeric: Igam requires a > 0 and x >= 0")
	}
	if x == 0 {
		return 0
	}
	if x > 1 && x > a {
		return 1 - Igamc(a, x)
	}
	// Power series: P(a,x) = x^a e^-x / Gamma(a+1) * sum x^n / (a+1)...(a+n)
	ax := a*math.Log(x) - x - lgamma(a)
	if ax < -709 { // underflow to 0
		return 0
	}
	axe := math.Exp(ax)
	r := a
	c := 1.0
	ans := 1.0
	for i := 0; i < igamMaxIter; i++ {
		r++
		c *= x / r
		ans += c
		if c/ans <= igamEpsilon {
			return ans * axe / a
		}
	}
	return ans * axe / a
}

// Igamc returns the regularized upper incomplete gamma function Q(a, x) =
// 1 - P(a, x). This is the tail probability used to convert chi-square
// statistics into p-values throughout the NIST SP 800-22 suite.
func Igamc(a, x float64) float64 {
	if a <= 0 || x < 0 {
		panic("numeric: Igamc requires a > 0 and x >= 0")
	}
	if x == 0 {
		return 1
	}
	if x < 1 || x < a {
		return 1 - Igam(a, x)
	}
	ax := a*math.Log(x) - x - lgamma(a)
	if ax < -709 {
		return 0
	}
	axe := math.Exp(ax)
	// Continued fraction (Lentz's algorithm).
	y := 1 - a
	z := x + y + 1
	c := 0.0
	pkm2 := 1.0
	qkm2 := x
	pkm1 := x + 1
	qkm1 := z * x
	ans := pkm1 / qkm1
	for i := 0; i < igamMaxIter; i++ {
		c++
		y++
		z += 2
		yc := y * c
		pk := pkm1*z - pkm2*yc
		qk := qkm1*z - qkm2*yc
		if qk != 0 {
			r := pk / qk
			t := math.Abs((ans - r) / r)
			ans = r
			if t <= igamEpsilon {
				return ans * axe
			}
		}
		pkm2, pkm1 = pkm1, pk
		qkm2, qkm1 = qkm1, qk
		const big = 4.503599627370496e15
		if math.Abs(pk) > big {
			pkm2 /= big
			pkm1 /= big
			qkm2 /= big
			qkm1 /= big
		}
	}
	return ans * axe
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Erfc is the complementary error function. It delegates to the standard
// library but is exposed here so every p-value computation funnels through
// one package, making the statistical surface easy to audit.
func Erfc(x float64) float64 { return math.Erfc(x) }

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// evaluated at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the standard normal survival function 1 - Phi(x).
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// ChiSquareSF returns the survival function of a chi-square distribution with
// df degrees of freedom evaluated at x: P[X >= x].
func ChiSquareSF(x float64, df float64) float64 {
	if x < 0 {
		return 1
	}
	return Igamc(df/2, x/2)
}

// BinomialTail returns P[Bin(n, p) >= k] computed by direct summation in log
// space. It is exact for the small n used in the attack analysis and the
// suite-level pass/fail decision rule.
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	sum := 0.0
	for i := k; i <= n; i++ {
		lg := lchoose(n, i) + float64(i)*logP + float64(n-i)*logQ
		sum += math.Exp(lg)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func lchoose(n, k int) float64 {
	return lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
}
