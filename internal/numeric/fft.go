package numeric

import "math"

// FFT computes the in-place radix-2 Cooley–Tukey discrete Fourier transform
// of x. The length of x must be a power of two; FFT panics otherwise. The
// transform is unnormalized: X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N).
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("numeric: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse discrete Fourier transform of x in place,
// including the 1/N normalization. The length must be a power of two.
func IFFT(x []complex128) {
	n := len(x)
	for i := range x {
		x[i] = complex(real(x[i]), -imag(x[i]))
	}
	FFT(x)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

// DFT computes the discrete Fourier transform of x for arbitrary length
// using the Bluestein chirp-Z algorithm (O(n log n)). For power-of-two
// lengths it falls back to the radix-2 FFT directly. The input is not
// modified; a new slice is returned.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	if n&(n-1) == 0 {
		copy(out, x)
		FFT(out)
		return out
	}
	return bluestein(x)
}

// bluestein implements the chirp-Z transform: express the DFT as a
// convolution and evaluate it with power-of-two FFTs.
func bluestein(x []complex128) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n+1 {
		m <<= 1
	}
	// chirp[k] = exp(-i*pi*k^2/n). Index k^2 mod 2n keeps the argument
	// bounded and exact for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(kk) / float64(n)
		chirp[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		bc := complex(real(chirp[k]), -imag(chirp[k])) // conj
		b[k] = bc
		if k > 0 {
			b[m-k] = bc
		}
	}
	FFT(a)
	FFT(b)
	for i := range a {
		a[i] *= b[i]
	}
	IFFT(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * chirp[k]
	}
	return out
}

// DFTModulus returns |X[k]| for k in [0, len(x)) of the DFT of the real
// sequence x. This is the quantity the NIST spectral test thresholds.
func DFTModulus(x []float64) []float64 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	X := DFT(cx)
	out := make([]float64, len(X))
	for i, v := range X {
		out[i] = math.Hypot(real(v), imag(v))
	}
	return out
}
