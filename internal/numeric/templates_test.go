package numeric

import "testing"

func TestAperiodicTemplateCounts(t *testing.T) {
	// Known counts of aperiodic binary templates (NIST STS): m=2 -> 2,
	// m=3 -> 4, m=4 -> 6, m=5 -> 12, m=9 -> 148.
	want := map[int]int{1: 2, 2: 2, 3: 4, 4: 6, 5: 12, 9: 148}
	for m, n := range want {
		got := AperiodicTemplates(m)
		if len(got) != n {
			t.Errorf("m=%d: %d templates, want %d", m, len(got), n)
		}
	}
}

func TestAperiodicTemplatesAreAperiodic(t *testing.T) {
	for _, tpl := range AperiodicTemplates(6) {
		if !isAperiodic(tpl) {
			t.Errorf("template %v reported aperiodic but is not", tpl)
		}
		if len(tpl) != 6 {
			t.Errorf("template %v wrong length", tpl)
		}
	}
}

func TestAperiodicRejectsPeriodic(t *testing.T) {
	for _, tpl := range [][]uint8{
		{1, 1},          // 11 overlaps itself at shift 1
		{1, 0, 1},       // 101 overlaps at shift 2
		{1, 0, 1, 0},    // 1010 at shift 2
		{1, 1, 1, 1, 1}, // all ones
	} {
		if isAperiodic(tpl) {
			t.Errorf("template %v should be periodic", tpl)
		}
	}
	for _, tpl := range [][]uint8{
		{0, 1},
		{0, 0, 1},
		{0, 1, 1},
		{0, 0, 0, 1},
	} {
		if !isAperiodic(tpl) {
			t.Errorf("template %v should be aperiodic", tpl)
		}
	}
}

func TestAperiodicTemplatesEdge(t *testing.T) {
	if got := AperiodicTemplates(0); got != nil {
		t.Errorf("m=0 -> %v, want nil", got)
	}
	one := AperiodicTemplates(1)
	if len(one) != 2 {
		t.Errorf("m=1 -> %d templates, want 2 (0 and 1)", len(one))
	}
}
