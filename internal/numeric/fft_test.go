package numeric

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for i := 0; i < n; i++ {
			ang := -2 * math.Pi * float64(k) * float64(i) / float64(n)
			s += x[i] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := randomComplex(n, int64(n))
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		FFT(got)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: FFT max err %g", n, e)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=6")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestIFFTInverts(t *testing.T) {
	for _, n := range []int{2, 16, 128, 1024} {
		x := randomComplex(n, int64(n)+7)
		y := make([]complex128, n)
		copy(y, x)
		FFT(y)
		IFFT(y)
		if e := maxErr(x, y); e > 1e-9*float64(n) {
			t.Errorf("n=%d: IFFT(FFT(x)) err %g", n, e)
		}
	}
}

func TestBluesteinMatchesNaive(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12, 100, 120} {
		x := randomComplex(n, int64(n)*3)
		want := naiveDFT(x)
		got := DFT(x)
		if e := maxErr(got, want); e > 1e-7*float64(n) {
			t.Errorf("n=%d: Bluestein max err %g", n, e)
		}
	}
}

func TestDFTParseval(t *testing.T) {
	// sum |x|^2 = (1/N) sum |X|^2.
	for _, n := range []int{17, 64, 250} {
		x := randomComplex(n, 99)
		X := DFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-7*et {
			t.Errorf("n=%d: Parseval mismatch time=%g freq=%g", n, et, ef)
		}
	}
}

func TestDFTModulusConstantSignal(t *testing.T) {
	// DFT of all-ones: X[0]=n, rest 0.
	n := 32
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	mod := DFTModulus(x)
	if math.Abs(mod[0]-float64(n)) > 1e-9 {
		t.Errorf("mod[0] = %g, want %d", mod[0], n)
	}
	for k := 1; k < n; k++ {
		if mod[k] > 1e-9 {
			t.Errorf("mod[%d] = %g, want 0", k, mod[k])
		}
	}
}

func TestDFTEmpty(t *testing.T) {
	if got := DFT(nil); len(got) != 0 {
		t.Errorf("DFT(nil) len = %d", len(got))
	}
	FFT(nil) // must not panic
}
