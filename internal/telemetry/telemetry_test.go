package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic registry clock: each Now() call advances by
// step nanoseconds.
type fakeClock struct {
	mu   sync.Mutex
	t    int64
	step int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += c.step
	return c.t
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	// Every path must be a no-op, not a panic.
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.FloatGauge("x").Set(1.5)
	r.Histogram("x").Observe(time.Millisecond)
	r.Recorder().Scope("s").Event(&EventMeta{Subsystem: "a", Name: "b"}, 0, 0)
	sp := r.Recorder().Scope("s").Start(&EventMeta{Subsystem: "a", Name: "b"})
	sp.End(0, 0)
	if got := r.Recorder().Events(10); got != nil {
		t.Errorf("nil recorder events = %v", got)
	}
	if s := r.Snapshot(); s.Counters != nil || s.TimeUnixNano != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
	if r.Now() != 0 {
		t.Error("nil registry Now != 0")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	clk := &fakeClock{step: 1}
	r.SetClock(clk.now)

	c := r.Counter("ops")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	c.Add(5)
	if got := c.Load(); got != 15 {
		t.Errorf("counter = %d, want 15", got)
	}
	if r.Counter("ops") != c {
		t.Error("Counter not idempotent per name")
	}

	g := r.Gauge("depth")
	g.Add(4)
	g.Add(-1)
	if got := g.Load(); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	fg := r.FloatGauge("bound")
	fg.Set(12.25)
	if got := fg.Load(); got != 12.25 {
		t.Errorf("float gauge = %v, want 12.25", got)
	}

	h := r.Histogram("lat")
	// Deterministic durations: 0ns, 1ns, 100ns, 1us, 1ms.
	for _, d := range []time.Duration{0, 1, 100, time.Microsecond, time.Millisecond} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("hist count = %d, want 5", s.Count)
	}
	wantSum := int64(0 + 1 + 100 + 1000 + 1000000)
	if s.SumNs != wantSum {
		t.Errorf("hist sum = %d, want %d", s.SumNs, wantSum)
	}
	if s.MinNs != 0 || s.MaxNs != 1000000 {
		t.Errorf("hist min/max = %d/%d, want 0/1000000", s.MinNs, s.MaxNs)
	}
	// 1ms lands in bucket [2^19, 2^20): p99 upper bound is 2^20-1.
	if s.P99Ns != (1<<20)-1 {
		t.Errorf("hist p99 = %d, want %d", s.P99Ns, (1<<20)-1)
	}
	// p50 is the 100ns observation's bucket [64,128): upper bound 127.
	if s.P50Ns != 127 {
		t.Errorf("hist p50 = %d, want 127", s.P50Ns)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {math.MaxInt64, 63}}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if got := BucketUpperNs(10); got != 1023 {
		t.Errorf("BucketUpperNs(10) = %d", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.ObserveNs(10)
	a.ObserveNs(100)
	b.ObserveNs(1000)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.SumNs != 1110 {
		t.Errorf("merged count/sum = %d/%d, want 3/1110", m.Count, m.SumNs)
	}
	if m.MinNs != 10 || m.MaxNs != 1000 {
		t.Errorf("merged min/max = %d/%d, want 10/1000", m.MinNs, m.MaxNs)
	}
	// Merge with an empty snapshot is the identity.
	id := a.Snapshot().Merge(HistSnapshot{})
	if id.Count != 2 || id.MinNs != 10 || id.MaxNs != 100 {
		t.Errorf("identity merge = %+v", id)
	}
}

func TestRecorderSpansDeterministic(t *testing.T) {
	r := New()
	clk := &fakeClock{step: 10}
	r.SetClock(clk.now)

	meta := &EventMeta{Subsystem: "specu", Name: "poweroff"}
	sc := r.Recorder().Scope("unit0")
	sp := sc.Start(meta) // now = 10
	sc.Event(&EventMeta{Subsystem: "specu", Name: "tick"}, 7, 0)
	sp.End(3, 4) // start 10, end 30 -> dur 20

	evs := r.Recorder().Events(16)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	tick, span := evs[0], evs[1]
	if tick.Name != "tick" || tick.DurNs != -1 || tick.A0 != 7 {
		t.Errorf("instant event = %+v", tick)
	}
	if span.Name != "poweroff" || span.Subsystem != "specu" || span.Scope != "unit0" {
		t.Errorf("span identity = %+v", span)
	}
	if span.StartNano != 10 || span.DurNs != 20 || span.A0 != 3 || span.A1 != 4 {
		t.Errorf("span timing = %+v, want start 10 dur 20 a0 3 a1 4", span)
	}
}

func TestRecorderWrapKeepsNewest(t *testing.T) {
	rec := newRecorder(8, func() int64 { return 0 })
	sc := rec.Scope("w")
	meta := &EventMeta{Subsystem: "t", Name: "e"}
	for i := 0; i < 20; i++ {
		sc.Event(meta, int64(i), 0)
	}
	evs := rec.Events(100)
	if len(evs) != 8 {
		t.Fatalf("got %d events, want ring capacity 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(12 + i); ev.A0 != want {
			t.Errorf("event %d: a0 = %d, want %d", i, ev.A0, want)
		}
	}
}

func TestRecorderConcurrentWriters(t *testing.T) {
	r := New()
	meta := &EventMeta{Subsystem: "t", Name: "e"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := r.Recorder().Scope("g")
			for i := 0; i < 500; i++ {
				sc.Event(meta, int64(g), int64(i))
				if i%37 == 0 {
					r.Recorder().Events(64) // readers race writers freely
				}
			}
		}(g)
	}
	wg.Wait()
	evs := r.Recorder().Events(DefaultRingSize)
	if len(evs) == 0 {
		t.Fatal("no events survived")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not ordered by seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestSnapshotJSONAndHandler(t *testing.T) {
	r := New()
	clk := &fakeClock{step: 1}
	r.SetClock(clk.now)
	r.Counter("specu.reads").Add(2)
	r.Gauge("specu.pool.queue_depth").Set(1)
	r.Histogram("specu.shard00.read").Observe(80 * time.Microsecond)
	r.Recorder().Scope("main").Event(&EventMeta{Subsystem: "sim", Name: "done"}, 1, 1)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["specu.reads"] != 2 {
		t.Errorf("snapshot counter = %d, want 2", snap.Counters["specu.reads"])
	}
	if h := snap.Histograms["specu.shard00.read"]; h.Count != 1 {
		t.Errorf("snapshot histogram count = %d, want 1", h.Count)
	}

	resp2, err := srv.Client().Get(srv.URL + "/spans?max=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var spans struct {
		Capacity int     `json:"capacity"`
		Events   []Event `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&spans); err != nil {
		t.Fatalf("spans not JSON: %v", err)
	}
	if spans.Capacity != DefaultRingSize || len(spans.Events) != 1 {
		t.Errorf("spans = capacity %d, %d events", spans.Capacity, len(spans.Events))
	}
}

// TestSpansQueryValidation pins the hardened parameter handling: garbage,
// non-positive and oversized ?max= values are a 400, never a silent
// default.
func TestSpansQueryValidation(t *testing.T) {
	srv := httptest.NewServer(Handler(New()))
	defer srv.Close()
	for _, q := range []string{"max=abc", "max=", "max=0", "max=-1", "max=1.5", "max=9999999999"} {
		resp, err := srv.Client().Get(srv.URL + "/spans?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if q == "max=" {
			// An empty value is "absent": the default applies.
			if resp.StatusCode != 200 {
				t.Errorf("query %q: status %d, want 200", q, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != 400 {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestOnSnapshotHook pins that snapshot hooks run before collection and
// may touch registry instruments without deadlocking.
func TestOnSnapshotHook(t *testing.T) {
	r := New()
	calls := 0
	r.OnSnapshot(func() {
		calls++
		r.Gauge("derived.value").Set(int64(calls))
	})
	snap := r.Snapshot()
	if calls != 1 {
		t.Fatalf("hook ran %d times, want 1", calls)
	}
	if snap.Gauges["derived.value"] != 1 {
		t.Fatalf("derived gauge = %d, want 1", snap.Gauges["derived.value"])
	}
	if snap = r.Snapshot(); snap.Gauges["derived.value"] != 2 {
		t.Fatalf("second snapshot derived gauge = %d, want 2", snap.Gauges["derived.value"])
	}
	var nilReg *Registry
	nilReg.OnSnapshot(func() {})
}

// BenchmarkDisabledOverhead pins the disabled fast path: all instruments
// nil, one branch per call.
func BenchmarkDisabledOverhead(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.ObserveNs(int64(i))
	}
}

// BenchmarkEnabledHistogram measures the enabled hot-path cost of one
// histogram observation.
func BenchmarkEnabledHistogram(b *testing.B) {
	r := New()
	h := r.Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i))
	}
}
