package slo

import (
	"sync"
	"testing"
	"time"

	"snvmm/internal/telemetry"
)

// testEngine returns an engine on a fake-clock registry plus the clock.
func testEngine(t *testing.T, objs ...Objective) (*Engine, *int64, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New()
	now := new(int64)
	*now = int64(time.Hour) // away from zero so epoch math sees a real clock
	reg.SetClock(func() int64 { return *now })
	return New(reg, objs...), now, reg
}

func TestEmptyWindowStats(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1000, BudgetFrac: 0.01})
	st := e.Window("read").Stats()
	if st != (Stats{}) {
		t.Fatalf("empty window stats = %+v, want all zero", st)
	}
	if st.BurnRate != 0 {
		t.Fatalf("empty window burn rate = %v, want 0", st.BurnRate)
	}
}

func TestSingleSample(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1 << 20, BudgetFrac: 0.01})
	w := e.Window("read")
	w.Observe(700) // bucket [512,1024) -> upper bound 1023
	st := w.Stats()
	if st.Count != 1 || st.Over != 0 {
		t.Fatalf("stats = %+v, want count 1 over 0", st)
	}
	if st.P50Ns != 1023 || st.P99Ns != 1023 || st.P999Ns != 1023 {
		t.Fatalf("single-sample quantiles = %d/%d/%d, want 1023 each", st.P50Ns, st.P99Ns, st.P999Ns)
	}
	if st.SumNs != 700 {
		t.Fatalf("sum = %d, want 700", st.SumNs)
	}
	if st.BurnRate != 0 {
		t.Fatalf("burn rate = %v, want 0", st.BurnRate)
	}
}

func TestZeroAndNegativeDurations(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 10, BudgetFrac: 0.5})
	w := e.Window("read")
	w.Observe(0)
	w.Observe(-5) // clamped to 0
	st := w.Stats()
	if st.Count != 2 || st.Over != 0 || st.P50Ns != 0 {
		t.Fatalf("stats = %+v, want 2 zero-duration samples", st)
	}
}

func TestBurnRateMath(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1000, BudgetFrac: 0.1})
	w := e.Window("read")
	for i := 0; i < 9; i++ {
		w.Observe(100)
	}
	w.Observe(5000) // 1 of 10 over target; over-frac 0.1 == budget -> burn 1.0
	st := w.Stats()
	if st.Over != 1 || st.Count != 10 {
		t.Fatalf("stats = %+v, want 1/10 over", st)
	}
	if st.BurnRate != 1.0 {
		t.Fatalf("burn rate = %v, want 1.0", st.BurnRate)
	}
	// Exactly-at-target ops do not spend budget.
	w.Observe(1000)
	if st := w.Stats(); st.Over != 1 {
		t.Fatalf("op at target counted as over: %+v", st)
	}
}

func TestSlidingExpiry(t *testing.T) {
	e, now, _ := testEngine(t, Objective{
		Class: "read", TargetNs: 1000, BudgetFrac: 0.1,
		Window: 10 * time.Second, Buckets: 10,
	})
	w := e.Window("read")
	w.Observe(5000)
	if st := w.Stats(); st.Count != 1 || st.Over != 1 {
		t.Fatalf("fresh observation missing: %+v", st)
	}
	// Half a window later the sample is still visible.
	*now += int64(5 * time.Second)
	w.Observe(100)
	if st := w.Stats(); st.Count != 2 {
		t.Fatalf("mid-window stats = %+v, want 2", st)
	}
	// A full window past the first sample: only the second remains.
	*now += int64(6 * time.Second)
	if st := w.Stats(); st.Count != 1 || st.Over != 0 {
		t.Fatalf("expiry failed: %+v, want count 1 over 0", st)
	}
	// And past everything: empty again, with sub-bucket reuse intact.
	*now += int64(20 * time.Second)
	if st := w.Stats(); st.Count != 0 {
		t.Fatalf("stale samples survived: %+v", st)
	}
	w.Observe(42)
	if st := w.Stats(); st.Count != 1 {
		t.Fatalf("reused sub-bucket lost observation: %+v", st)
	}
}

func TestRefreshPublishesGauges(t *testing.T) {
	e, _, reg := testEngine(t,
		Objective{Class: "read", TargetNs: 1000, BudgetFrac: 0.1},
		Objective{Class: "write", TargetNs: 2000, BudgetFrac: 0.2},
	)
	e.Window("read").Observe(5000)
	reg.OnSnapshot(e.Refresh)
	snap := reg.Snapshot()
	if snap.Gauges["slo.read.window_ops"] != 1 {
		t.Fatalf("window_ops gauge = %d, want 1", snap.Gauges["slo.read.window_ops"])
	}
	if snap.Gauges["slo.read.over_target"] != 1 {
		t.Fatalf("over_target gauge = %d, want 1", snap.Gauges["slo.read.over_target"])
	}
	burn, ok := snap.FloatGauges["slo.read.burn_rate"]
	if !ok || burn != 10.0 { // over-frac 1.0 / budget 0.1
		t.Fatalf("burn_rate gauge = %v (present %v), want 10.0", burn, ok)
	}
	if _, ok := snap.FloatGauges["slo.write.burn_rate"]; !ok {
		t.Fatal("write class burn_rate gauge missing")
	}
	if snap.Gauges["slo.read.p50_ns"] == 0 {
		t.Fatal("p50 gauge not published")
	}
}

func TestEngineNilSafety(t *testing.T) {
	var e *Engine
	e.Refresh()
	if e.Window("read") != nil {
		t.Fatal("nil engine returned a window")
	}
	if e.Classes() != nil {
		t.Fatal("nil engine returned classes")
	}
	var w *Window
	w.Observe(100)
	if w.Stats() != (Stats{}) {
		t.Fatal("nil window returned stats")
	}
	if New(nil, Objective{Class: "x", TargetNs: 1}) != nil {
		t.Fatal("engine on nil registry")
	}
	// Unknown class: attach-unconditionally pattern must hold.
	e2, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1})
	e2.Window("nope").Observe(5)
}

func TestObserveZeroAlloc(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1000, BudgetFrac: 0.01})
	w := e.Window("read")
	w.Observe(1) // pay the first-epoch reset outside the measured loop
	allocs := testing.AllocsPerRun(1000, func() { w.Observe(123) })
	if allocs != 0 {
		t.Fatalf("Observe allocates: %v allocs/op", allocs)
	}
}

func TestConcurrentObserve(t *testing.T) {
	e, _, _ := testEngine(t, Objective{Class: "read", TargetNs: 1000, BudgetFrac: 0.01})
	w := e.Window("read")
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if st := w.Stats(); st.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*per)
	}
}
