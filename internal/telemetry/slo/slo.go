// Package slo layers rolling-window service-level objectives on the
// telemetry registry: each op class gets a sliding window of log2
// sub-histograms (p50/p99/p999 over the last W seconds, not
// since-process-start), a latency target with an error budget, and a
// burn-rate gauge — the ratio of the observed over-target fraction to the
// budgeted fraction, so burn_rate > 1 means the budget is being spent
// faster than allowed.
//
// Observation is the hot path and follows the telemetry discipline: one
// epoch check plus a handful of atomic adds, no locks (the reset mutex is
// taken only on the first observation of each sub-bucket epoch), no
// allocation, and every method no-ops on a nil receiver. The clock is the
// registry's (injectable via Registry.SetClock), so window expiry is fully
// deterministic in tests.
package slo

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"snvmm/internal/telemetry"
)

// Objective configures one op class's SLO.
type Objective struct {
	Class      string        // instrument prefix: gauges export as slo.<class>.*
	TargetNs   int64         // latency target; an op slower than this spends budget
	BudgetFrac float64       // allowed fraction of ops over target (e.g. 0.001)
	Window     time.Duration // sliding window width (default 30s)
	Buckets    int           // sub-buckets the window slides over (default 10)
}

// sub is one time-bucket of the sliding window: a log2 histogram plus
// over-target and sum counters, tagged with the epoch it belongs to.
type sub struct {
	epoch  atomic.Int64 // window epoch this bucket currently holds; -1 = empty
	total  atomic.Int64
	over   atomic.Int64
	sum    atomic.Int64
	counts [telemetry.HistBuckets]atomic.Int64
	mu     sync.Mutex // serializes lazy reset on epoch advance
}

// Window is the rolling-window accumulator for one op class. Observe is
// safe for concurrent use and no-ops on a nil receiver.
type Window struct {
	target   int64
	budget   float64
	strideNs int64 // width of one sub-bucket
	n        int64
	now      func() int64
	subs     []sub
}

// Stats is a point-in-time reading of a window.
type Stats struct {
	Count    int64   `json:"count"`
	Over     int64   `json:"over"`
	SumNs    int64   `json:"sum_ns"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
	P999Ns   int64   `json:"p999_ns"`
	BurnRate float64 `json:"burn_rate"`
}

// newWindow builds a window; called by Engine with validated options.
func newWindow(o Objective, now func() int64) *Window {
	width := o.Window
	if width <= 0 {
		width = 30 * time.Second
	}
	n := o.Buckets
	if n <= 0 {
		n = 10
	}
	stride := int64(width) / int64(n)
	if stride <= 0 {
		stride = 1
	}
	w := &Window{
		target:   o.TargetNs,
		budget:   o.BudgetFrac,
		strideNs: stride,
		n:        int64(n),
		now:      now,
		subs:     make([]sub, n),
	}
	for i := range w.subs {
		w.subs[i].epoch.Store(-1)
	}
	return w
}

// Observe records one op latency into the current time sub-bucket.
func (w *Window) Observe(ns int64) {
	if w == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	e := w.now() / w.strideNs
	s := &w.subs[e%w.n]
	if s.epoch.Load() != e {
		s.reset(e)
	}
	s.counts[telemetry.BucketOf(ns)].Add(1)
	s.total.Add(1)
	s.sum.Add(ns)
	if ns > w.target {
		s.over.Add(1)
	}
}

// reset re-tags a sub-bucket for a new epoch, zeroing its counters. A
// writer from the previous epoch racing the reset may land one
// observation in the wrong epoch (or lose it); over a window of many
// sub-buckets this skews quantiles by at most a handful of samples and is
// the price of a lock-free observe path.
func (s *sub) reset(e int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch.Load() == e {
		return // another writer already reset for this epoch
	}
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.total.Store(0)
	s.over.Store(0)
	s.sum.Store(0)
	s.epoch.Store(e)
}

// Stats merges the sub-buckets still inside the sliding window. An empty
// window reads as all-zero with BurnRate 0.
func (w *Window) Stats() Stats {
	var st Stats
	if w == nil {
		return st
	}
	cur := w.now() / w.strideNs
	var counts [telemetry.HistBuckets]int64
	for i := range w.subs {
		s := &w.subs[i]
		e := s.epoch.Load()
		if e < 0 || e <= cur-w.n || e > cur {
			continue // expired or not yet reused
		}
		for b := range counts {
			counts[b] += s.counts[b].Load()
		}
		st.Count += s.total.Load()
		st.Over += s.over.Load()
		st.SumNs += s.sum.Load()
	}
	if st.Count == 0 {
		return Stats{}
	}
	st.P50Ns = quantile(&counts, st.Count, 0.50)
	st.P99Ns = quantile(&counts, st.Count, 0.99)
	st.P999Ns = quantile(&counts, st.Count, 0.999)
	if w.budget > 0 {
		st.BurnRate = (float64(st.Over) / float64(st.Count)) / w.budget
	}
	return st
}

// quantile is nearest-rank over the merged log2 buckets: it returns the
// upper bound of the bucket holding the q-quantile observation.
func quantile(counts *[telemetry.HistBuckets]int64, total int64, q float64) int64 {
	rank := int64(math.Ceil(float64(total) * q))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return telemetry.BucketUpperNs(i)
		}
	}
	return telemetry.BucketUpperNs(telemetry.HistBuckets - 1)
}

// Engine owns one Window per configured op class and publishes their
// readings as registry gauges. All methods are nil-safe.
type Engine struct {
	reg     *telemetry.Registry
	windows map[string]*Window
	order   []string
}

// New builds an engine on the given registry (its clock drives window
// expiry). Objectives with an empty Class or non-positive TargetNs are
// skipped; duplicate classes keep the first definition.
func New(reg *telemetry.Registry, objs ...Objective) *Engine {
	if reg == nil {
		return nil
	}
	e := &Engine{reg: reg, windows: make(map[string]*Window)}
	for _, o := range objs {
		if o.Class == "" || o.TargetNs <= 0 {
			continue
		}
		if _, dup := e.windows[o.Class]; dup {
			continue
		}
		e.windows[o.Class] = newWindow(o, reg.Now)
		e.order = append(e.order, o.Class)
	}
	return e
}

// Window returns the accumulator for an op class (nil when the class has
// no objective — and a nil Window's Observe is a no-op, so callers attach
// unconditionally).
func (e *Engine) Window(class string) *Window {
	if e == nil {
		return nil
	}
	return e.windows[class]
}

// Classes returns the configured op classes in definition order.
func (e *Engine) Classes() []string {
	if e == nil {
		return nil
	}
	return append([]string(nil), e.order...)
}

// Refresh publishes every window's current stats to the registry:
// slo.<class>.{p50_ns,p99_ns,p999_ns,window_ops,over_target} gauges and
// the slo.<class>.burn_rate float gauge. Wire it to the registry with
// reg.OnSnapshot(engine.Refresh) so /metrics always shows live values.
func (e *Engine) Refresh() {
	if e == nil {
		return
	}
	for _, class := range e.order {
		st := e.windows[class].Stats()
		prefix := "slo." + class + "."
		e.reg.Gauge(prefix + "p50_ns").Set(st.P50Ns)
		e.reg.Gauge(prefix + "p99_ns").Set(st.P99Ns)
		e.reg.Gauge(prefix + "p999_ns").Set(st.P999Ns)
		e.reg.Gauge(prefix + "window_ops").Set(st.Count)
		e.reg.Gauge(prefix + "over_target").Set(st.Over)
		e.reg.FloatGauge(prefix + "burn_rate").Set(st.BurnRate)
	}
}
