//go:build !telemetry_debug

package telemetry

// debugChecks gates internal invariant assertions; see debug_on.go. The
// default build compiles them out entirely.
const debugChecks = false

func debugAssert(bool, string) {}
