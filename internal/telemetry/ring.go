package telemetry

import (
	"sort"
	"sync/atomic"
)

// EventMeta identifies one event call site: a subsystem and an event name.
// Callers create one per site (a package-level var or a field built at
// instrumentation time) so recording an event allocates nothing and the
// ring slots store a single interned pointer.
type EventMeta struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
}

// Event is one recorded span or instant event. A span has Dur >= 0 and
// covers [Start, Start+Dur]; an instant event has Dur == -1. A0/A1 are two
// free-form integer attributes (progress counts, objective bits, ...).
type Event struct {
	Seq       uint64 `json:"seq"`
	StartNano int64  `json:"start_unix_nano"`
	DurNs     int64  `json:"dur_ns"` // -1 for instant events
	Scope     string `json:"scope"`
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	A0        int64  `json:"a0,omitempty"`
	A1        int64  `json:"a1,omitempty"`
}

// slot is one ring entry. Every field is atomic so concurrent writers and
// snapshot readers are race-free; seq is the publication word — readers
// accept a slot only when seq reads the same claimed value before and
// after copying the payload.
type slot struct {
	seq   atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	a0    atomic.Int64
	a1    atomic.Int64
	scope atomic.Pointer[string]
	meta  atomic.Pointer[EventMeta]
}

// Recorder is a lock-free, fixed-capacity ring of recent spans and events.
// Writers claim a slot with one atomic increment and publish with atomic
// stores; the ring never blocks and old events are overwritten in arrival
// order. A reader that races an overwrite simply skips that slot (the
// publication sequence changes under it). Two writers can collide on one
// slot only when a writer stalls for an entire ring wrap (capacity events);
// the seq protocol then discards the torn slot rather than exposing it.
//
// All methods no-op on a nil receiver, so disabled telemetry costs one
// branch per call site.
type Recorder struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // next sequence number to claim + 1
	now   func() int64
}

// newRecorder sizes the ring up to the next power of two.
func newRecorder(capacity int, now func() int64) *Recorder {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]slot, n), mask: uint64(n - 1), now: now}
}

// Cap returns the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// record claims the next slot and publishes one event.
func (r *Recorder) record(scope *string, meta *EventMeta, start, dur, a0, a1 int64) {
	if r == nil || meta == nil {
		return
	}
	seq := r.head.Add(1)
	if debugChecks {
		debugAssert(seq != 0, "recorder sequence wrapped to zero")
		debugAssert(r.mask+1 == uint64(len(r.slots)), "recorder mask does not match capacity")
	}
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // invalidate for readers while the payload is in flight
	s.start.Store(start)
	s.dur.Store(dur)
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.scope.Store(scope)
	s.meta.Store(meta)
	s.seq.Store(seq) // publish
}

// Events returns up to max recent events, oldest first. Slots being
// rewritten while the reader copies them are skipped; the result is the
// set of events whose publication was stable across the copy.
func (r *Recorder) Events(max int) []Event {
	if r == nil || max <= 0 {
		return nil
	}
	head := r.head.Load()
	n := uint64(len(r.slots))
	if uint64(max) < n {
		n = uint64(max)
	}
	if head < n {
		n = head
	}
	out := make([]Event, 0, n)
	for seq := head - n + 1; seq <= head && head > 0; seq++ {
		s := &r.slots[(seq-1)&r.mask]
		got := s.seq.Load()
		if got == 0 {
			continue
		}
		ev := Event{
			Seq:       got,
			StartNano: s.start.Load(),
			DurNs:     s.dur.Load(),
			A0:        s.a0.Load(),
			A1:        s.a1.Load(),
		}
		if sc := s.scope.Load(); sc != nil {
			ev.Scope = *sc
		}
		m := s.meta.Load()
		if s.seq.Load() != got || m == nil {
			continue // overwritten mid-copy: discard the torn read
		}
		ev.Subsystem = m.Subsystem
		ev.Name = m.Name
		out = append(out, ev)
	}
	// Claim order is publication order except for slots torn by a very
	// late writer; sort by sequence to present a stable timeline.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Scope is a per-goroutine (or per-worker, per-shard) event source: a
// label attached to every event it records. Create one per goroutine at
// spawn; recording through it is allocation-free.
type Scope struct {
	rec   *Recorder
	label *string
}

// Scope creates a labelled event source. Safe on a nil recorder (returns
// a no-op scope).
func (r *Recorder) Scope(label string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{rec: r, label: &label}
}

// Event records an instant event with two integer attributes.
func (sc *Scope) Event(meta *EventMeta, a0, a1 int64) {
	if sc == nil {
		return
	}
	sc.rec.record(sc.label, meta, sc.rec.now(), -1, a0, a1)
}

// Span is an in-flight span started by Scope.Start. It is a value type:
// starting and ending a span allocates nothing.
type Span struct {
	sc    *Scope
	meta  *EventMeta
	start int64
}

// Start begins a span. The span is recorded when End is called; an
// unfinished span is never visible in the ring.
func (sc *Scope) Start(meta *EventMeta) Span {
	if sc == nil {
		return Span{}
	}
	return Span{sc: sc, meta: meta, start: sc.rec.now()}
}

// End records the span with its measured duration and the given
// attributes.
func (sp Span) End(a0, a1 int64) {
	if sp.sc == nil {
		return
	}
	end := sp.sc.rec.now()
	dur := end - sp.start
	if dur < 0 {
		dur = 0
	}
	sp.sc.rec.record(sp.sc.label, sp.meta, sp.start, dur, a0, a1)
}
