package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every Histogram. Bucket 0 holds
// zero-duration observations; bucket i (i >= 1) holds durations in
// [2^(i-1), 2^i) nanoseconds, so the full range spans 1 ns to ~292 years —
// log-scale, fixed-size, and mergeable by element-wise addition.
const HistBuckets = 64

// Histogram is a fixed-bucket log2 latency histogram. Observations are a
// single atomic add into the owning bucket plus sum/min/max maintenance —
// no locks, no allocation. The zero value is ready to use; all methods
// no-op on a nil receiver.
//
// Snapshots are per-bucket atomic copies: the snapshot's Count is derived
// from the copied buckets, so count and bucket totals are always mutually
// consistent even while writers race the reader (Sum/Min/Max are read
// separately and may trail by in-flight observations).
type Histogram struct {
	_       [cacheLine]byte
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // offset by +1 internally; 0 means "unset"
	max     atomic.Int64
	_       [cacheLine]byte
}

// BucketOf maps a nanosecond duration to its bucket index. Exported so
// sibling packages (the SLO window math) can share the bucket layout.
func BucketOf(ns int64) int { return bucketOf(ns) }

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpperNs returns the inclusive upper bound (in ns) of bucket i.
func BucketUpperNs(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.ObserveNs(int64(d))
}

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	// Min/max via CAS races: last writer in a tie wins, which is fine.
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= ns+1 {
			break
		}
		if h.max.CompareAndSwap(cur, ns+1) {
			break
		}
	}
}

// HistBucket is one non-empty bucket of a snapshot.
type HistBucket struct {
	LeNs  int64 `json:"le_ns"` // inclusive upper bound in nanoseconds
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram. Only non-empty
// buckets are retained.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	SumNs   int64        `json:"sum_ns"`
	MinNs   int64        `json:"min_ns"`
	MaxNs   int64        `json:"max_ns"`
	P50Ns   int64        `json:"p50_ns"`
	P90Ns   int64        `json:"p90_ns"`
	P99Ns   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Empty (or nil) histograms snapshot to the
// zero value.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	var counts [HistBuckets]int64
	for i := range counts {
		if c := h.buckets[i].Load(); c > 0 {
			counts[i] = c
			s.Count += c
			s.Buckets = append(s.Buckets, HistBucket{LeNs: BucketUpperNs(i), Count: c})
		}
	}
	s.SumNs = h.sum.Load()
	if m := h.min.Load(); m > 0 {
		s.MinNs = m - 1
	}
	if m := h.max.Load(); m > 0 {
		s.MaxNs = m - 1
	}
	s.P50Ns = quantile(&counts, s.Count, 0.50)
	s.P90Ns = quantile(&counts, s.Count, 0.90)
	s.P99Ns = quantile(&counts, s.Count, 0.99)
	return s
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation — an upper estimate with at most one octave of error.
func quantile(counts *[HistBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total))) // nearest-rank
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(HistBuckets - 1)
}

// Merge folds other into s element-wise: bucket counts and sums add, min
// and max widen, quantiles are re-derived from the merged buckets. Use it
// to aggregate per-shard or per-worker histograms into one distribution.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	var counts [HistBuckets]int64
	fill := func(src HistSnapshot) {
		for _, b := range src.Buckets {
			counts[bucketIndexOfUpper(b.LeNs)] += b.Count
		}
	}
	fill(s)
	fill(other)
	out := HistSnapshot{
		Count: s.Count + other.Count,
		SumNs: s.SumNs + other.SumNs,
		MinNs: s.MinNs,
		MaxNs: s.MaxNs,
	}
	if other.Count > 0 && (s.Count == 0 || other.MinNs < out.MinNs) {
		out.MinNs = other.MinNs
	}
	if other.MaxNs > out.MaxNs {
		out.MaxNs = other.MaxNs
	}
	for i, c := range counts {
		if c > 0 {
			out.Buckets = append(out.Buckets, HistBucket{LeNs: BucketUpperNs(i), Count: c})
		}
	}
	out.P50Ns = quantile(&counts, out.Count, 0.50)
	out.P90Ns = quantile(&counts, out.Count, 0.90)
	out.P99Ns = quantile(&counts, out.Count, 0.99)
	return out
}

// bucketIndexOfUpper inverts BucketUpperNs for snapshot bucket bounds.
func bucketIndexOfUpper(le int64) int {
	if le <= 0 {
		return 0
	}
	if le == math.MaxInt64 {
		return HistBuckets - 1
	}
	return bits.Len64(uint64(le))
}
