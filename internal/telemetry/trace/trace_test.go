package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

var (
	metaRoot  = &SpanMeta{Subsystem: "test", Name: "root"}
	metaChild = &SpanMeta{Subsystem: "test", Name: "child"}
	metaBlip  = &SpanMeta{Subsystem: "test", Name: "blip"}
)

// fakeClock is a deterministic manual clock.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64      { return c.ns }
func (c *fakeClock) advance(d int64) { c.ns += d }

func newTestTracer(capacity int) (*Tracer, *fakeClock) {
	tr := New(capacity)
	clk := &fakeClock{ns: 1_000_000}
	tr.SetClock(clk.now)
	return tr, clk
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Root(metaRoot)
	if sp.Context().Enabled() {
		t.Fatal("nil tracer produced an enabled context")
	}
	child := sp.Context().Start(metaChild)
	child.End(1, 2)
	sp.Context().Event(metaBlip, 3, 4)
	sp.End(0, 0)
	tr.NameLane(1, "x")
	tr.SetClock(nil)
	if got := tr.Spans(10); got != nil {
		t.Fatalf("nil tracer returned spans: %v", got)
	}
	if tr.Cap() != 0 {
		t.Fatal("nil tracer has capacity")
	}
}

func TestDetachedZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root(metaRoot)
		tc := root.Context().WithLane(3)
		child := tc.Start(metaChild)
		tc.Event(metaBlip, 1, 2)
		child.End(1, 2)
		root.End(0, 0)
	})
	if allocs != 0 {
		t.Fatalf("detached tracing allocates: %v allocs/op", allocs)
	}
}

func TestAttachedZeroAlloc(t *testing.T) {
	tr, _ := newTestTracer(1 << 10)
	allocs := testing.AllocsPerRun(100, func() {
		root := tr.Root(metaRoot)
		child := root.Context().Start(metaChild)
		child.End(1, 2)
		root.End(0, 0)
	})
	if allocs != 0 {
		t.Fatalf("attached span recording allocates: %v allocs/op", allocs)
	}
}

func TestSpanLinksAndClock(t *testing.T) {
	tr, clk := newTestTracer(64)
	root := tr.Root(metaRoot)
	clk.advance(100)
	child := root.Context().Start(metaChild)
	clk.advance(50)
	child.Context().Event(metaBlip, 7, 8)
	child.End(1, 2)
	clk.advance(25)
	root.End(3, 4)

	spans := tr.Spans(10)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Recording order: instant, child, root (parents end last).
	blip, ch, rt := spans[0], spans[1], spans[2]
	if blip.DurNs != -1 || blip.Name != "blip" {
		t.Fatalf("first record = %+v, want instant blip", blip)
	}
	if ch.ParentID != rt.SpanID {
		t.Fatalf("child parent %d != root span %d", ch.ParentID, rt.SpanID)
	}
	if blip.ParentID != ch.SpanID {
		t.Fatalf("instant parent %d != child span %d", blip.ParentID, ch.SpanID)
	}
	if rt.TraceID != rt.SpanID || ch.TraceID != rt.TraceID || blip.TraceID != rt.TraceID {
		t.Fatalf("trace IDs inconsistent: root %+v child %+v blip %+v", rt, ch, blip)
	}
	if ch.DurNs != 50 {
		t.Fatalf("child dur = %d, want 50", ch.DurNs)
	}
	if rt.DurNs != 175 {
		t.Fatalf("root dur = %d, want 175", rt.DurNs)
	}
	if rt.ParentID != 0 {
		t.Fatalf("root has parent %d", rt.ParentID)
	}
}

func TestRingOverwriteKeepsRecent(t *testing.T) {
	tr, clk := newTestTracer(8)
	for i := 0; i < 100; i++ {
		sp := tr.Root(metaRoot)
		clk.advance(1)
		sp.End(int64(i), 0)
	}
	spans := tr.Spans(1000)
	if len(spans) != 8 {
		t.Fatalf("got %d spans, want ring capacity 8", len(spans))
	}
	if spans[len(spans)-1].A0 != 99 {
		t.Fatalf("newest span a0 = %d, want 99", spans[len(spans)-1].A0)
	}
}

func TestChromeExportValid(t *testing.T) {
	tr, clk := newTestTracer(256)
	tr.NameLane(0, "caller")
	tr.NameLane(1, "shard 0")
	root := tr.Root(metaRoot)
	clk.advance(10)
	c1 := root.Context().WithLane(1).Start(metaChild)
	clk.advance(5)
	c1.Context().Event(metaBlip, 1, 0)
	grand := c1.Context().Start(metaChild)
	clk.advance(5)
	grand.End(0, 0)
	clk.advance(5)
	c1.End(0, 0)
	clk.advance(10)
	root.End(0, 0)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 100); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("ValidateChrome: %v\n%s", err, buf.String())
	}
	var doc ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var xEvents, iEvents, mEvents int
	foundNamedLane := false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
		case "i":
			iEvents++
		case "M":
			mEvents++
			if name, _ := ev.Args["name"].(string); name == "shard 0" {
				foundNamedLane = true
			}
		}
	}
	if xEvents != 3 || iEvents != 1 {
		t.Fatalf("got %d X + %d i events, want 3 + 1", xEvents, iEvents)
	}
	if mEvents == 0 || !foundNamedLane {
		t.Fatalf("metadata missing: %d M events, named lane found = %v", mEvents, foundNamedLane)
	}
}

// TestChromeOrphanPruned pins that a child whose parent never completed
// (in-flight at export, or lost to ring overwrite) is pruned rather than
// exported with a dangling parent_id.
func TestChromeOrphanPruned(t *testing.T) {
	tr, clk := newTestTracer(64)
	root := tr.Root(metaRoot) // never ended
	clk.advance(10)
	child := root.Context().Start(metaChild)
	clk.advance(10)
	child.End(0, 0)
	done := tr.Root(metaRoot)
	clk.advance(5)
	done.End(0, 0)

	doc := tr.Chrome(100)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "test.child" {
			t.Fatalf("orphan child exported: %+v", ev)
		}
	}
	if doc.OtherData["pruned"].(int) != 1 {
		t.Fatalf("pruned = %v, want 1", doc.OtherData["pruned"])
	}
	data, _ := json.Marshal(doc)
	if err := ValidateChrome(data); err != nil {
		t.Fatalf("pruned export invalid: %v", err)
	}
}

// TestChromeOverlapSplitsSublanes pins that two overlapping spans on one
// lane land on distinct tids so the export stays well-nested.
func TestChromeOverlapSplitsSublanes(t *testing.T) {
	tr, clk := newTestTracer(64)
	a := tr.Root(metaRoot)
	clk.advance(5)
	b := tr.Root(metaRoot) // overlaps a on lane 0
	clk.advance(5)
	a.End(0, 0)
	clk.advance(5)
	b.End(0, 0)

	doc := tr.Chrome(100)
	tids := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Tid] = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("overlapping spans share a tid: %v", tids)
	}
	data, _ := json.Marshal(doc)
	if err := ValidateChrome(data); err != nil {
		t.Fatalf("split export invalid: %v", err)
	}
}

func TestValidateChromeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":     `{]`,
		"missing ph":  `{"traceEvents":[{"name":"x","ts":1,"pid":1,"tid":1}]}`,
		"missing pid": `{"traceEvents":[{"name":"x","ph":"X","ts":1,"tid":1,"args":{"span_id":"1"}}]}`,
		"orphan":      `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"span_id":"2","parent_id":"99"}}]}`,
		"not nested": `{"traceEvents":[
			{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"span_id":"1"}},
			{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1,"args":{"span_id":"2"}}]}`,
		"ts regress": `{"traceEvents":[
			{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1,"args":{"span_id":"1"}},
			{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1,"args":{"span_id":"2"}}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted bad input", name)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.Root(metaRoot)
				child := root.Context().WithLane(uint32(g)).Start(metaChild)
				child.End(int64(i), 0)
				root.End(0, 0)
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, tr.Cap()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("concurrent export invalid: %v", err)
	}
}

func TestTraceHandler(t *testing.T) {
	tr, clk := newTestTracer(64)
	sp := tr.Root(metaRoot)
	clk.advance(10)
	sp.End(0, 0)

	h := tr.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?max=10", nil))
	if rec.Code != 200 {
		t.Fatalf("valid request: status %d", rec.Code)
	}
	if err := ValidateChrome(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}

	for _, q := range []string{"max=bogus", "max=0", "max=-5", "max=9999999999"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace?"+q, nil))
		if rec.Code != 400 {
			t.Errorf("query %q: status %d, want 400", q, rec.Code)
		}
	}
}
