package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// ChromeEvent is one entry of the Chrome trace-event JSON array: "X"
// (complete span), "i" (instant) or "M" (metadata). Timestamps and
// durations are microseconds with nanosecond resolution in the fraction.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level Chrome trace-event JSON object.
type ChromeTrace struct {
	TraceEvents []ChromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// subLaneStride separates sub-lanes split off one logical lane: the
// exported tid is lane*subLaneStride + sublane, so lane identity stays
// readable in the tid and sub-lanes of different lanes never collide.
const subLaneStride = 256

// Chrome renders up to max recent spans as a Chrome trace-event object.
//
// Lanes are hints, not guarantees: two spans on one lane may overlap in
// time (concurrent roots, a stalled writer). The Chrome format requires
// "X" events on one tid to be properly nested, so the exporter splits
// each lane into sub-lanes greedily — a span goes to the first sub-lane
// whose open stack it nests into (or which is idle), and overflow opens a
// new sub-lane. Spans whose parent chain is not fully present in the ring
// (an in-flight ancestor, or one lost to ring overwrite) are pruned so
// every exported child's parent_id resolves.
func (t *Tracer) Chrome(max int) ChromeTrace {
	recs := t.Spans(max)
	return buildChrome(recs, t)
}

// WriteChrome writes the Chrome trace-event JSON for up to max recent
// spans to w.
func (t *Tracer) WriteChrome(w io.Writer, max int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Chrome(max))
}

func buildChrome(recs []SpanRecord, t *Tracer) ChromeTrace {
	out := ChromeTrace{
		TraceEvents: []ChromeEvent{},
		OtherData:   map[string]any{"spans": 0, "pruned": 0},
	}
	if len(recs) == 0 {
		return out
	}

	// Prune spans with unresolvable ancestry. Instants (DurNs < 0) attach
	// to their parent span but are kept even when that parent is pruned —
	// they carry no nesting obligations; their parent_id is cleared so the
	// export stays self-consistent.
	byID := make(map[uint64]*SpanRecord, len(recs))
	for i := range recs {
		if recs[i].DurNs >= 0 {
			byID[recs[i].SpanID] = &recs[i]
		}
	}
	resolved := make(map[uint64]bool, len(recs))
	var resolve func(id uint64) bool
	resolve = func(id uint64) bool {
		if id == 0 {
			return true
		}
		if ok, seen := resolved[id]; seen {
			return ok
		}
		r, present := byID[id]
		if !present {
			resolved[id] = false
			return false
		}
		resolved[id] = true // break cycles (impossible by construction, cheap to guard)
		ok := resolve(r.ParentID)
		resolved[id] = ok
		return ok
	}
	// Decide before compacting: byID aliases recs' backing array, so all
	// resolve calls must finish before any slot is overwritten.
	keep := make([]bool, len(recs))
	pruned := 0
	for i := range recs {
		if recs[i].DurNs < 0 {
			keep[i] = true
			if !resolve(recs[i].ParentID) {
				recs[i].ParentID = 0
			}
			continue
		}
		keep[i] = resolve(recs[i].SpanID)
		if !keep[i] {
			pruned++
		}
	}
	kept := recs[:0]
	for i := range recs {
		if keep[i] {
			kept = append(kept, recs[i])
		}
	}
	recs = kept
	out.OtherData["spans"] = len(recs)
	out.OtherData["pruned"] = pruned
	if len(recs) == 0 {
		return out
	}

	// Normalize timestamps to the earliest span so Perfetto opens at t=0.
	t0 := recs[0].StartNano
	for _, r := range recs {
		if r.StartNano < t0 {
			t0 = r.StartNano
		}
	}

	// Split each lane into well-nested sub-lanes. Spans are placed in
	// (start asc, dur desc) order so a parent is always placed before its
	// children; a span goes to the first sub-lane where it either nests
	// inside the top of the open stack or starts at/after the last close.
	type laneState struct {
		lane   uint32
		stacks [][]int64 // per sub-lane stack of open-span end times
	}
	byLane := make(map[uint32]*laneState)
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := recs[order[a]], recs[order[b]]
		if ra.StartNano != rb.StartNano {
			return ra.StartNano < rb.StartNano
		}
		da, db := ra.DurNs, rb.DurNs
		if da != db {
			return da > db
		}
		return ra.Seq < rb.Seq
	})
	tids := make([]int64, len(recs))
	usedLanes := make(map[uint32][]bool) // lane -> sub-lane used
	for _, i := range order {
		r := recs[i]
		ls := byLane[r.Lane]
		if ls == nil {
			ls = &laneState{lane: r.Lane}
			byLane[r.Lane] = ls
		}
		dur := r.DurNs
		if dur < 0 {
			dur = 0 // instants occupy a point; never block nesting
		}
		start, end := r.StartNano, r.StartNano+dur
		placed := -1
		for k := range ls.stacks {
			st := ls.stacks[k]
			for len(st) > 0 && st[len(st)-1] <= start {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || end <= st[len(st)-1] {
				if r.DurNs >= 0 {
					st = append(st, end)
				}
				ls.stacks[k] = st
				placed = k
				break
			}
			ls.stacks[k] = st
		}
		if placed < 0 {
			placed = len(ls.stacks)
			if r.DurNs >= 0 {
				ls.stacks = append(ls.stacks, []int64{end})
			} else {
				ls.stacks = append(ls.stacks, nil)
			}
		}
		for len(usedLanes[r.Lane]) <= placed {
			usedLanes[r.Lane] = append(usedLanes[r.Lane], false)
		}
		usedLanes[r.Lane][placed] = true
		tids[i] = int64(r.Lane)*subLaneStride + int64(placed)
	}

	events := make([]ChromeEvent, 0, len(recs)+2*len(byLane)+1)
	events = append(events, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "spe"},
	})
	for lane, subs := range usedLanes {
		base := "lane " + strconv.FormatUint(uint64(lane), 10)
		if t != nil {
			base = t.laneName(lane)
		}
		for sub, used := range subs {
			if !used {
				continue
			}
			name := base
			if sub > 0 {
				name = fmt.Sprintf("%s ~%d", base, sub)
			}
			events = append(events, ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1,
				Tid:  int64(lane)*subLaneStride + int64(sub),
				Args: map[string]any{"name": name},
			})
		}
	}
	for i, r := range recs {
		ev := ChromeEvent{
			Name: r.Subsystem + "." + r.Name,
			Cat:  r.Subsystem,
			Ph:   "X",
			Ts:   float64(r.StartNano-t0) / 1e3,
			Dur:  float64(r.DurNs) / 1e3,
			Pid:  1,
			Tid:  tids[i],
			Args: map[string]any{
				// IDs as strings: uint64 loses precision as a JSON number.
				"trace_id": strconv.FormatUint(r.TraceID, 10),
				"span_id":  strconv.FormatUint(r.SpanID, 10),
				"a0":       r.A0,
				"a1":       r.A1,
			},
		}
		if r.ParentID != 0 {
			ev.Args["parent_id"] = strconv.FormatUint(r.ParentID, 10)
		}
		if r.DurNs < 0 {
			ev.Ph = "i"
			ev.Dur = 0
			ev.S = "t"
		}
		events = append(events, ev)
	}
	// Metadata first, then (tid, ts) order: readers see monotone
	// timestamps within every exported thread.
	sort.SliceStable(events, func(a, b int) bool {
		ma, mb := events[a].Ph == "M", events[b].Ph == "M"
		if ma != mb {
			return ma
		}
		if ma {
			return false
		}
		if events[a].Tid != events[b].Tid {
			return events[a].Tid < events[b].Tid
		}
		if events[a].Ts != events[b].Ts {
			return events[a].Ts < events[b].Ts
		}
		return events[a].Dur > events[b].Dur
	})
	out.TraceEvents = events
	return out
}

// ValidateChrome parses data as Chrome trace-event JSON and checks the
// invariants the exporter guarantees: required fields present, timestamps
// monotone non-decreasing per tid (in array order), "X" events properly
// nested per tid, and every parent_id resolving to an exported span_id.
func ValidateChrome(data []byte) error {
	var doc ChromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: parse: %w", err)
	}
	spanIDs := make(map[string]bool)
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			return fmt.Errorf("trace: event %d: missing ph", i)
		}
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d: missing name", i)
		}
		if ev.Pid == 0 {
			return fmt.Errorf("trace: event %d: missing pid", i)
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		if ev.Ts < 0 {
			return fmt.Errorf("trace: event %d: negative ts", i)
		}
		if ev.Ph == "X" {
			id, _ := ev.Args["span_id"].(string)
			if id == "" {
				return fmt.Errorf("trace: event %d: X event without span_id", i)
			}
			spanIDs[id] = true
		}
	}
	type open struct{ endNs int64 }
	stacks := make(map[int64][]open)
	lastTs := make(map[int64]int64)
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		tsNs := int64(ev.Ts*1e3 + 0.5)
		if prev, seen := lastTs[ev.Tid]; seen && tsNs < prev {
			return fmt.Errorf("trace: event %d: ts not monotone on tid %d", i, ev.Tid)
		}
		lastTs[ev.Tid] = tsNs
		if pid, ok := ev.Args["parent_id"].(string); ok && pid != "" && !spanIDs[pid] {
			return fmt.Errorf("trace: event %d: orphan span (parent %s not exported)", i, pid)
		}
		if ev.Ph != "X" {
			continue
		}
		endNs := tsNs + int64(ev.Dur*1e3+0.5)
		st := stacks[ev.Tid]
		for len(st) > 0 && st[len(st)-1].endNs <= tsNs {
			st = st[:len(st)-1]
		}
		if len(st) > 0 && endNs > st[len(st)-1].endNs {
			return fmt.Errorf("trace: event %d: not nested on tid %d", i, ev.Tid)
		}
		stacks[ev.Tid] = append(st, open{endNs: endNs})
	}
	return nil
}

// maxTraceSpans caps the export size a /trace query may request.
const maxTraceSpans = 1 << 20

// Handler serves the tracer's recent spans as Chrome trace-event JSON.
// Query parameter max (optional, default = ring capacity) bounds the span
// count; a present-but-invalid value is a 400, never a silent default.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		max := t.Cap()
		if raw := req.URL.Query().Get("max"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v <= 0 || v > maxTraceSpans {
				http.Error(w, fmt.Sprintf("invalid max %q: want integer in [1, %d]", raw, maxTraceSpans), http.StatusBadRequest)
				return
			}
			max = v
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := t.WriteChrome(w, max); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
