// Package trace is a lightweight causal tracer: value-type contexts carry
// a trace ID and parent span ID from a batch-API entry point down through
// shard runs, pool tasks, crossbar fan-out and pulse trains, and completed
// spans land in a fixed-capacity lock-free ring (same seq-validated slot
// protocol as telemetry.Recorder). Traces export as Chrome trace-event
// JSON, loadable in Perfetto (see export.go).
//
// The package follows the telemetry nil-receiver discipline: a nil *Tracer
// hands out zero-value Contexts and Spans, and every method no-ops on the
// zero value, so detached tracing costs one pointer test per call site and
// zero allocations.
//
// Side-channel note: spans carry only interned call-site metadata, wall
// times, lane hints and two free integer attributes (counts, indices).
// Nothing here is keyed by address, plaintext or key material.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanMeta identifies one span call site: a subsystem and a span name.
// Callers create one per site (a package-level var) so starting and ending
// a span stores a single interned pointer and allocates nothing.
type SpanMeta struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
}

// SpanRecord is one completed span (or instant event, DurNs == -1) read
// back out of the ring.
type SpanRecord struct {
	Seq       uint64 `json:"seq"`
	TraceID   uint64 `json:"trace_id"`
	SpanID    uint64 `json:"span_id"`
	ParentID  uint64 `json:"parent_id"` // 0 for roots
	Lane      uint32 `json:"lane"`
	StartNano int64  `json:"start_unix_nano"`
	DurNs     int64  `json:"dur_ns"` // -1 for instant events
	A0        int64  `json:"a0,omitempty"`
	A1        int64  `json:"a1,omitempty"`
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
}

// tslot is one ring entry; all fields atomic, seq is the publication word
// (readers accept a slot only when seq is stable across the payload copy).
type tslot struct {
	seq     atomic.Uint64
	traceID atomic.Uint64
	spanID  atomic.Uint64
	parent  atomic.Uint64
	lane    atomic.Uint32
	start   atomic.Int64
	dur     atomic.Int64
	a0      atomic.Int64
	a1      atomic.Int64
	meta    atomic.Pointer[SpanMeta]
}

// Tracer owns the span ring and the ID allocator. All methods are safe for
// concurrent use and safe on a nil receiver.
type Tracer struct {
	slots []tslot
	mask  uint64
	head  atomic.Uint64 // next ring sequence to claim + 1
	ids   atomic.Uint64 // span/trace ID allocator; 0 is reserved for "none"
	now   func() int64

	laneMu    sync.Mutex
	laneNames map[uint32]string
}

// DefaultRingSize is the span ring capacity of a New tracer.
const DefaultRingSize = 1 << 14

// New returns a tracer whose ring holds at least capacity completed spans
// (rounded up to a power of two; capacity <= 0 selects DefaultRingSize).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{
		slots:     make([]tslot, n),
		mask:      uint64(n - 1),
		now:       func() int64 { return time.Now().UnixNano() },
		laneNames: make(map[uint32]string),
	}
}

// SetClock replaces the tracer's time source (unix nanoseconds). Call
// before spans are started; not synchronized against concurrent use.
func (t *Tracer) SetClock(now func() int64) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// Cap returns the ring capacity (0 on nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// NameLane attaches a human-readable name to a lane; exported traces show
// it as the Perfetto thread name. Safe concurrently and on nil.
func (t *Tracer) NameLane(lane uint32, name string) {
	if t == nil {
		return
	}
	t.laneMu.Lock()
	t.laneNames[lane] = name
	t.laneMu.Unlock()
}

// laneName returns the registered lane name or a generated fallback.
func (t *Tracer) laneName(lane uint32) string {
	t.laneMu.Lock()
	name, ok := t.laneNames[lane]
	t.laneMu.Unlock()
	if ok {
		return name
	}
	return fmt.Sprintf("lane %d", lane)
}

// record claims the next slot and publishes one completed span.
func (t *Tracer) record(traceID, spanID, parent uint64, lane uint32, meta *SpanMeta, start, dur, a0, a1 int64) {
	if t == nil || meta == nil {
		return
	}
	seq := t.head.Add(1)
	s := &t.slots[(seq-1)&t.mask]
	s.seq.Store(0) // invalidate for readers while the payload is in flight
	s.traceID.Store(traceID)
	s.spanID.Store(spanID)
	s.parent.Store(parent)
	s.lane.Store(lane)
	s.start.Store(start)
	s.dur.Store(dur)
	s.a0.Store(a0)
	s.a1.Store(a1)
	s.meta.Store(meta)
	s.seq.Store(seq) // publish
}

// Spans returns up to max recent completed spans, oldest first. Slots torn
// by concurrent writers are skipped.
func (t *Tracer) Spans(max int) []SpanRecord {
	if t == nil || max <= 0 {
		return nil
	}
	head := t.head.Load()
	n := uint64(len(t.slots))
	if uint64(max) < n {
		n = uint64(max)
	}
	if head < n {
		n = head
	}
	out := make([]SpanRecord, 0, n)
	for seq := head - n + 1; seq <= head && head > 0; seq++ {
		s := &t.slots[(seq-1)&t.mask]
		got := s.seq.Load()
		if got == 0 {
			continue
		}
		rec := SpanRecord{
			Seq:       got,
			TraceID:   s.traceID.Load(),
			SpanID:    s.spanID.Load(),
			ParentID:  s.parent.Load(),
			Lane:      s.lane.Load(),
			StartNano: s.start.Load(),
			DurNs:     s.dur.Load(),
			A0:        s.a0.Load(),
			A1:        s.a1.Load(),
		}
		m := s.meta.Load()
		if s.seq.Load() != got || m == nil {
			continue // overwritten mid-copy: discard the torn read
		}
		rec.Subsystem = m.Subsystem
		rec.Name = m.Name
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Context is a value-type causal position inside one trace: the trace ID,
// the span that any child started from it will name as its parent, and a
// lane hint for export grouping. The zero Context is detached: Start and
// Event on it are no-ops and allocate nothing.
type Context struct {
	tr      *Tracer
	traceID uint64
	spanID  uint64
	lane    uint32
}

// Enabled reports whether spans started from this context are recorded.
func (c Context) Enabled() bool { return c.tr != nil }

// Lane returns the context's lane hint.
func (c Context) Lane() uint32 { return c.lane }

// WithLane returns a copy of the context targeting the given lane. Lanes
// are export-grouping hints only (Perfetto "threads"); they do not affect
// causality. A detached context stays detached.
func (c Context) WithLane(lane uint32) Context {
	c.lane = lane
	return c
}

// Root starts a new trace: a fresh trace ID whose root span has no parent.
// On a nil tracer the returned Span is a no-op value.
func (t *Tracer) Root(meta *SpanMeta) Span {
	if t == nil {
		return Span{}
	}
	id := t.ids.Add(1)
	return Span{
		ctx:   Context{tr: t, traceID: id, spanID: id},
		meta:  meta,
		start: t.now(),
	}
}

// Start begins a child span of this context. Recording happens at End; an
// unfinished span is never visible in the ring.
func (c Context) Start(meta *SpanMeta) Span {
	if c.tr == nil {
		return Span{}
	}
	return Span{
		ctx:    Context{tr: c.tr, traceID: c.traceID, spanID: c.tr.ids.Add(1), lane: c.lane},
		parent: c.spanID,
		meta:   meta,
		start:  c.tr.now(),
	}
}

// Event records an instant event (DurNs == -1) attached to this context's
// span, on the context's lane.
func (c Context) Event(meta *SpanMeta, a0, a1 int64) {
	if c.tr == nil {
		return
	}
	id := c.tr.ids.Add(1)
	c.tr.record(c.traceID, id, c.spanID, c.lane, meta, c.tr.now(), -1, a0, a1)
}

// Span is an in-flight span. It is a value type: starting and ending one
// allocates nothing, and the zero Span no-ops.
type Span struct {
	ctx    Context
	parent uint64
	meta   *SpanMeta
	start  int64
}

// Context returns the causal context for starting children of this span.
func (sp Span) Context() Context { return sp.ctx }

// End records the span with its measured duration and two free integer
// attributes.
func (sp Span) End(a0, a1 int64) {
	t := sp.ctx.tr
	if t == nil {
		return
	}
	dur := t.now() - sp.start
	if dur < 0 {
		dur = 0
	}
	t.record(sp.ctx.traceID, sp.ctx.spanID, sp.parent, sp.ctx.lane, sp.meta, sp.start, dur, a0, a1)
}
