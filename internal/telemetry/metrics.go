package telemetry

import (
	"math"
	"sync/atomic"
)

// cacheLine is the assumed coherence granule. Instruments pad to it so two
// hot counters never share a line (128 covers the adjacent-line prefetcher
// on current x86 parts).
const cacheLine = 128

// Counter is a monotonically increasing sum, padded to its own cache line.
// The zero value is ready to use; all methods no-op on a nil receiver.
type Counter struct {
	_ [cacheLine - 8]byte
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current sum (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level (queue depth, resident blocks).
// The zero value is ready to use; all methods no-op on a nil receiver.
type Gauge struct {
	_ [cacheLine - 8]byte
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrement).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 level (objective values, bounds),
// stored as IEEE bits in a padded atomic word. The zero value reads 0; all
// methods no-op on a nil receiver.
type FloatGauge struct {
	_ [cacheLine - 8]byte
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Set stores the gauge's value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Load returns the current value (0 on nil).
func (g *FloatGauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}
