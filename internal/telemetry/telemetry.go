// Package telemetry is the runtime introspection core: lock-free counters,
// gauges and log-scale latency histograms, a ring-buffer span/event
// recorder, and a Registry that names them and renders consistent JSON and
// expvar snapshots.
//
// The package is built for instrumenting hot paths:
//
//   - Zero dependencies beyond the standard library.
//   - Allocation-free on the hot path: counters, gauges and histograms
//     update with a single atomic RMW on a padded cache line; spans are
//     value types and event metadata is interned per call site.
//   - Nil-safe everywhere. A nil *Registry hands out nil instruments, and
//     every instrument method no-ops on a nil receiver, so uninstrumented
//     builds pay exactly one pointer test per call site — the disabled
//     fast path is a load-compare-branch, with no locks, maps or clock
//     reads behind it.
//   - Deterministic in tests: the Registry's clock is injectable, so span
//     timestamps, durations and histogram buckets can be pinned exactly.
//
// Side-channel note: the SPECU instrumentation built on this package
// deliberately exports only aggregates (per-shard histograms, totals).
// Nothing here records per-block addresses, per-block timing, or anything
// else indexed by key- or data-dependent values; see DESIGN.md
// "Telemetry & introspection".
package telemetry

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"time"
)

// Registry names and owns a process's instruments. All methods are safe
// for concurrent use, and safe on a nil receiver (returning nil
// instruments, which are themselves no-ops).
type Registry struct {
	mu      sync.Mutex
	counter map[string]*Counter
	gauge   map[string]*Gauge
	fgauge  map[string]*FloatGauge
	hist    map[string]*Histogram
	rec     *Recorder
	hooks   []func() // run before each Snapshot collection (see OnSnapshot)

	nowFn func() int64 // unix nanoseconds; injectable for deterministic tests
}

// DefaultRingSize is the event recorder capacity of a New registry.
const DefaultRingSize = 4096

// New returns a registry with the wall clock and a DefaultRingSize event
// recorder.
func New() *Registry {
	r := &Registry{
		counter: make(map[string]*Counter),
		gauge:   make(map[string]*Gauge),
		fgauge:  make(map[string]*FloatGauge),
		hist:    make(map[string]*Histogram),
		nowFn:   func() int64 { return time.Now().UnixNano() },
	}
	r.rec = newRecorder(DefaultRingSize, r.Now)
	return r
}

// SetClock replaces the registry's time source (unix nanoseconds). Spans
// and snapshots become fully deterministic under a fake clock. Must be
// called before instruments are handed out; it is not synchronized against
// concurrent Now calls.
func (r *Registry) SetClock(now func() int64) {
	if r == nil || now == nil {
		return
	}
	r.nowFn = now
	r.rec.now = now
}

// Now returns the registry's current time in unix nanoseconds (0 on a nil
// registry).
func (r *Registry) Now() int64 {
	if r == nil {
		return 0
	}
	return r.nowFn()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counter[name]
	if !ok {
		c = &Counter{}
		r.counter[name] = c
	}
	return c
}

// Gauge returns the named integer gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauge[name]
	if !ok {
		g = &Gauge{}
		r.gauge[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauge[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauge[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hist[name]
	if !ok {
		h = &Histogram{}
		r.hist[name] = h
	}
	return h
}

// Recorder returns the registry's span/event ring buffer (nil on a nil
// registry; a nil recorder is itself a no-op).
func (r *Registry) Recorder() *Recorder {
	if r == nil {
		return nil
	}
	return r.rec
}

// Snapshot is a point-in-time rendering of every named instrument. Each
// instrument is read atomically; the set as a whole is collected without
// stopping writers, so instruments updated while the snapshot walks the
// registry may differ by in-flight operations (each histogram is
// internally consistent: its count is derived from its bucket copies).
type Snapshot struct {
	TimeUnixNano int64                   `json:"time_unix_nano"`
	Counters     map[string]int64        `json:"counters,omitempty"`
	Gauges       map[string]int64        `json:"gauges,omitempty"`
	FloatGauges  map[string]float64      `json:"float_gauges,omitempty"`
	Histograms   map[string]HistSnapshot `json:"histograms,omitempty"`
}

// OnSnapshot registers a hook run at the start of every Snapshot call,
// before instruments are collected. Hooks refresh derived instruments
// (e.g. SLO burn-rate gauges) so /metrics always renders current values.
// They run outside the registry lock — a hook may create or set
// instruments on this registry.
func (r *Registry) OnSnapshot(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Snapshot renders every instrument. Returns an empty snapshot on a nil
// registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	hooks := r.hooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counter))
	for k, v := range r.counter {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauge))
	for k, v := range r.gauge {
		gauges[k] = v
	}
	fgauges := make(map[string]*FloatGauge, len(r.fgauge))
	for k, v := range r.fgauge {
		fgauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hist))
	for k, v := range r.hist {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		TimeUnixNano: r.Now(),
		Counters:     make(map[string]int64, len(counters)),
		Gauges:       make(map[string]int64, len(gauges)),
		FloatGauges:  make(map[string]float64, len(fgauges)),
		Histograms:   make(map[string]HistSnapshot, len(hists)),
	}
	for k, v := range counters {
		snap.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Load()
	}
	for k, v := range fgauges {
		snap.FloatGauges[k] = jsonSafe(v.Load())
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Snapshot()
	}
	return snap
}

// jsonSafe clamps non-finite floats so a Snapshot always marshals:
// encoding/json rejects NaN and ±Inf outright, and one stray sentinel value
// (an unsolved bound, say) must not break the whole /metrics endpoint.
func jsonSafe(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// InstrumentNames returns the sorted names of every instrument, for tests
// and diagnostics.
func (r *Registry) InstrumentNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counter)+len(r.gauge)+len(r.fgauge)+len(r.hist))
	for k := range r.counter {
		names = append(names, k)
	}
	for k := range r.gauge {
		names = append(names, k)
	}
	for k := range r.fgauge {
		names = append(names, k)
	}
	for k := range r.hist {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// PublishExpvar exposes the registry's snapshot under the given expvar
// name. expvar panics on duplicate names, so this must be called at most
// once per name per process.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
