//go:build telemetry_debug

package telemetry

// debugChecks gates internal invariant assertions that are too costly for
// production builds (the CI runs `go vet -tags telemetry_debug` and the
// race suite can be pointed at this build to double-check the recorder's
// publication protocol).
const debugChecks = true

func debugAssert(cond bool, msg string) {
	if !cond {
		panic("telemetry: invariant violated: " + msg)
	}
}
