package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the live introspection endpoint:
//
//	/metrics      JSON Snapshot of every instrument
//	/spans        recent ring-buffer events (?max=N, default 256)
//	/debug/vars   expvar (includes the registry if PublishExpvar was called)
//	/debug/pprof  the standard pprof handlers
//
// The handler holds only the registry pointer; it is safe to serve while
// every instrument is being written.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		max := 256
		if s := req.URL.Query().Get("max"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				max = n
			}
		}
		events := r.Recorder().Events(max)
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, struct {
			Capacity int     `json:"capacity"`
			Events   []Event `json:"events"`
		}{Capacity: r.Recorder().Cap(), Events: events})
	})
	mux.HandleFunc("/debug/vars", expvarHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvarHandler mirrors expvar's unexported handler so the endpoint works
// on this mux rather than only on http.DefaultServeMux.
func expvarHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a broken client connection is not actionable
}
