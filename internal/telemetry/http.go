package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the live introspection endpoint:
//
//	/metrics      JSON Snapshot of every instrument
//	/spans        recent ring-buffer events (?max=N, default 256)
//	/debug/vars   expvar (includes the registry if PublishExpvar was called)
//	/debug/pprof  the standard pprof handlers
//
// Query parameters are strict: a present-but-invalid ?max= is a 400, not a
// silent fallback to the default.
//
// The handler holds only the registry pointer; it is safe to serve while
// every instrument is being written.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		max, ok := maxParam(w, req, 256, maxSpanQuery)
		if !ok {
			return
		}
		events := r.Recorder().Events(max)
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, struct {
			Capacity int     `json:"capacity"`
			Events   []Event `json:"events"`
		}{Capacity: r.Recorder().Cap(), Events: events})
	})
	mux.HandleFunc("/debug/vars", expvarHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// maxSpanQuery bounds how many events one /spans request may ask for.
const maxSpanQuery = 1 << 20

// maxParam parses a strict ?max= query parameter: absent means def, and a
// present value must be an integer in [1, limit] or the request is a 400.
// Returns ok=false after writing the error response.
func maxParam(w http.ResponseWriter, req *http.Request, def, limit int) (int, bool) {
	raw := req.URL.Query().Get("max")
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 || n > limit {
		http.Error(w, fmt.Sprintf("invalid max %q: want integer in [1, %d]", raw, limit), http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// expvarHandler mirrors expvar's unexported handler so the endpoint works
// on this mux rather than only on http.DefaultServeMux.
func expvarHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a broken client connection is not actionable
}
