package cpu

import (
	"testing"
)

// perfectMem answers every access in a fixed latency.
type perfectMem struct {
	loadLat, storeLat, fetchLat uint64
	loads, stores, fetches      int
	ticks                       int
}

func (m *perfectMem) LoadLatency(addr, now uint64) uint64 { m.loads++; return m.loadLat }
func (m *perfectMem) StoreAccess(addr, now uint64) uint64 { m.stores++; return m.storeLat }
func (m *perfectMem) FetchLatency(pc, now uint64) uint64  { m.fetches++; return m.fetchLat }
func (m *perfectMem) Tick(now uint64)                     { m.ticks++ }

// sliceTrace replays a fixed instruction slice.
type sliceTrace struct {
	insts []Inst
	pos   int
}

func (s *sliceTrace) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

// makeIndependent builds n independent single-cycle integer ops.
func makeIndependent(n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		out[i] = Inst{Op: OpInt, PC: uint64(0x1000 + 4*i)}
	}
	return out
}

func newTestCore(t *testing.T, m MemSystem) *Core {
	t.Helper()
	c, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBSize = 1 },
		func(c *Config) { c.IntLatency = 0 },
		func(c *Config) { c.MispredictPenalty = -1 },
		func(c *Config) { c.GshareBits = 0 },
		func(c *Config) { c.FetchBytes = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestIPCBoundedByIssueWidth(t *testing.T) {
	m := &perfectMem{loadLat: 4, storeLat: 4, fetchLat: 1}
	c := newTestCore(t, m)
	st := c.Run(&sliceTrace{insts: makeIndependent(20000)}, 0)
	ipc := st.IPC()
	if ipc > 4.01 {
		t.Errorf("IPC %g exceeds issue width 4", ipc)
	}
	if ipc < 3.0 {
		t.Errorf("IPC %g too low for independent int ops", ipc)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	m := &perfectMem{loadLat: 4, storeLat: 4, fetchLat: 1}
	c := newTestCore(t, m)
	insts := make([]Inst, 10000)
	for i := range insts {
		insts[i] = Inst{Op: OpInt, PC: uint64(0x1000 + 4*i), Dep1: 1}
	}
	st := c.Run(&sliceTrace{insts: insts}, 0)
	if ipc := st.IPC(); ipc > 1.05 {
		t.Errorf("serial chain IPC %g, want <= ~1", ipc)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// The same load-heavy trace must slow down when memory is slower —
	// the property Fig. 7 depends on.
	mk := func() []Inst {
		insts := make([]Inst, 20000)
		for i := range insts {
			if i%4 == 0 {
				// Strided loads with a dependency on the loaded value.
				insts[i] = Inst{Op: OpLoad, PC: uint64(4 * i), Addr: uint64(i * 64)}
			} else {
				insts[i] = Inst{Op: OpInt, PC: uint64(4 * i), Dep1: i%3 + 1}
			}
		}
		return insts
	}
	fast := newTestCore(t, &perfectMem{loadLat: 4, fetchLat: 1})
	slow := newTestCore(t, &perfectMem{loadLat: 200, fetchLat: 1})
	fs := fast.Run(&sliceTrace{insts: mk()}, 0)
	ss := slow.Run(&sliceTrace{insts: mk()}, 0)
	if ss.IPC() >= fs.IPC() {
		t.Errorf("slow memory IPC %g >= fast %g", ss.IPC(), fs.IPC())
	}
	if fs.Loads == 0 || ss.Loads != fs.Loads {
		t.Errorf("load counts differ: %d vs %d", fs.Loads, ss.Loads)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	// A heavily-taken loop branch should be predicted well; alternating
	// random branches poorly.
	m := &perfectMem{fetchLat: 1}
	c := newTestCore(t, m)
	insts := make([]Inst, 20000)
	for i := range insts {
		insts[i] = Inst{Op: OpBranch, PC: 0x2000, Taken: true}
	}
	st := c.Run(&sliceTrace{insts: insts}, 0)
	if rate := float64(st.Mispredicts) / float64(st.Branches); rate > 0.01 {
		t.Errorf("always-taken mispredict rate %g", rate)
	}
}

func TestBranchMispredictCostsCycles(t *testing.T) {
	run := func(taken func(i int) bool) Stats {
		m := &perfectMem{fetchLat: 1}
		c := newTestCore(t, m)
		insts := make([]Inst, 30000)
		for i := range insts {
			if i%5 == 0 {
				insts[i] = Inst{Op: OpBranch, PC: uint64(0x100 + i%1024), Taken: taken(i)}
			} else {
				insts[i] = Inst{Op: OpInt, PC: uint64(4 * i)}
			}
		}
		return c.Run(&sliceTrace{insts: insts}, 0)
	}
	good := run(func(i int) bool { return true })
	// Pseudo-random outcomes defeat gshare.
	bad := run(func(i int) bool { return (i*2654435761)>>16&1 == 1 })
	if bad.IPC() >= good.IPC() {
		t.Errorf("unpredictable branches IPC %g >= predictable %g", bad.IPC(), good.IPC())
	}
	if bad.Mispredicts <= good.Mispredicts {
		t.Errorf("mispredicts %d <= %d", bad.Mispredicts, good.Mispredicts)
	}
}

func TestMaxInstsLimit(t *testing.T) {
	m := &perfectMem{fetchLat: 1}
	c := newTestCore(t, m)
	st := c.Run(&sliceTrace{insts: makeIndependent(1000)}, 100)
	if st.Instructions != 100 {
		t.Errorf("instructions = %d, want 100", st.Instructions)
	}
}

func TestStatsCounts(t *testing.T) {
	m := &perfectMem{fetchLat: 1, loadLat: 4, storeLat: 4}
	c := newTestCore(t, m)
	insts := []Inst{
		{Op: OpLoad, Addr: 0},
		{Op: OpStore, Addr: 64},
		{Op: OpBranch, Taken: true},
		{Op: OpFp},
		{Op: OpMul},
		{Op: OpInt},
	}
	st := c.Run(&sliceTrace{insts: insts}, 0)
	if st.Loads != 1 || st.Stores != 1 || st.Branches != 1 {
		t.Errorf("counts wrong: %+v", st)
	}
	if st.Instructions != 6 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	if m.ticks != 0 { // TickInterval=1000 not reached
		t.Errorf("ticks = %d", m.ticks)
	}
}

func TestTickInterval(t *testing.T) {
	m := &perfectMem{fetchLat: 1}
	cfg := DefaultConfig()
	cfg.TickInterval = 10
	c, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(&sliceTrace{insts: makeIndependent(100)}, 0)
	if m.ticks != 10 {
		t.Errorf("ticks = %d, want 10", m.ticks)
	}
}

func TestCyclesMonotone(t *testing.T) {
	// More instructions, more cycles.
	m := &perfectMem{fetchLat: 1}
	c1 := newTestCore(t, m)
	s1 := c1.Run(&sliceTrace{insts: makeIndependent(1000)}, 0)
	c2 := newTestCore(t, &perfectMem{fetchLat: 1})
	s2 := c2.Run(&sliceTrace{insts: makeIndependent(5000)}, 0)
	if s2.Cycles <= s1.Cycles {
		t.Errorf("cycles %d <= %d", s2.Cycles, s1.Cycles)
	}
}

func TestOpTypeString(t *testing.T) {
	for op, want := range map[OpType]string{
		OpInt: "int", OpFp: "fp", OpMul: "mul", OpBranch: "branch",
		OpLoad: "load", OpStore: "store",
	} {
		if op.String() != want {
			t.Errorf("OpType %d = %q", op, op.String())
		}
	}
}
