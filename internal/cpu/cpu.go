// Package cpu is a trace-driven cycle-level model of the evaluation core
// (Section 7): a 3.2 GHz single-threaded 4-issue out-of-order processor.
// The model tracks true data dependencies through a reorder buffer, issue
// bandwidth per cycle, functional-unit latencies, a gshare branch predictor
// with redirect penalties, and a memory system callback for instruction
// fetches, loads and stores — the substitute for the Zesto simulator the
// paper used.
package cpu

import "fmt"

// OpType classifies trace instructions.
type OpType int

const (
	OpInt OpType = iota
	OpFp
	OpMul
	OpBranch
	OpLoad
	OpStore
)

func (o OpType) String() string {
	switch o {
	case OpInt:
		return "int"
	case OpFp:
		return "fp"
	case OpMul:
		return "mul"
	case OpBranch:
		return "branch"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	}
	return "?"
}

// Inst is one trace entry. Dep1/Dep2 give dependency distances: the
// instruction consumes the results of the instructions that many slots
// earlier (0 = no dependency).
type Inst struct {
	Op         OpType
	PC         uint64
	Addr       uint64 // data address for loads/stores
	Dep1, Dep2 int
	Taken      bool // branch outcome
}

// TraceReader supplies instructions. Next returns false at end of trace.
type TraceReader interface {
	Next() (Inst, bool)
}

// MemSystem abstracts the memory hierarchy (package mem implements it).
type MemSystem interface {
	LoadLatency(addr uint64, now uint64) uint64
	StoreAccess(addr uint64, now uint64) uint64
	FetchLatency(pc uint64, now uint64) uint64
	Tick(now uint64)
}

// Config sizes the core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int

	IntLatency, FpLatency, MulLatency int
	MispredictPenalty                 int

	// GshareBits sizes the branch predictor's history/table.
	GshareBits uint

	// FetchBytes is the fetch-group granularity used to decide when a new
	// I-cache access is needed.
	FetchBytes uint64

	// TickInterval is how often (in retired instructions) the memory
	// system's background Tick runs.
	TickInterval int64
}

// DefaultConfig is the paper's 4-issue core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		IssueWidth:        4,
		CommitWidth:       4,
		ROBSize:           128,
		IntLatency:        1,
		FpLatency:         3,
		MulLatency:        4,
		MispredictPenalty: 12,
		GshareBits:        12,
		FetchBytes:        16,
		TickInterval:      1000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 || c.ROBSize <= 1 {
		return fmt.Errorf("cpu: nonpositive width/size in %+v", c)
	}
	if c.IntLatency <= 0 || c.FpLatency <= 0 || c.MulLatency <= 0 || c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu: invalid latencies in %+v", c)
	}
	if c.GshareBits == 0 || c.GshareBits > 24 || c.FetchBytes == 0 {
		return fmt.Errorf("cpu: invalid predictor/fetch config")
	}
	return nil
}

// Stats summarizes a simulation.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// gshare is a global-history XOR-indexed 2-bit counter predictor.
type gshare struct {
	history uint64
	table   []uint8
	mask    uint64
}

func newGshare(bits uint) *gshare {
	g := &gshare{table: make([]uint8, 1<<bits), mask: 1<<bits - 1}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

func (g *gshare) predict(pc uint64) bool {
	idx := (pc>>2 ^ g.history) & g.mask
	return g.table[idx] >= 2
}

func (g *gshare) update(pc uint64, taken bool) {
	idx := (pc>>2 ^ g.history) & g.mask
	if taken {
		if g.table[idx] < 3 {
			g.table[idx]++
		}
	} else if g.table[idx] > 0 {
		g.table[idx]--
	}
	g.history = g.history<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// robEntry tracks one in-flight instruction's timing.
type robEntry struct {
	completion uint64 // cycle the result is available
	commit     uint64 // cycle the instruction commits
}

// Core runs the timing model.
type Core struct {
	cfg  Config
	mem  MemSystem
	bp   *gshare
	stat Stats

	rob []robEntry

	fetchReady   uint64 // cycle the next fetch group can start
	lastFetchBlk uint64
	fetched      map[uint64]int // fetch-bandwidth accounting per cycle
	issued       map[uint64]int // issue-bandwidth accounting per cycle
	committed    map[uint64]int // commit-bandwidth accounting per cycle
	lastCommit   uint64
}

// New builds a core over a memory system.
func New(cfg Config, m MemSystem) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{
		cfg:       cfg,
		mem:       m,
		bp:        newGshare(cfg.GshareBits),
		rob:       make([]robEntry, cfg.ROBSize),
		fetched:   make(map[uint64]int),
		issued:    make(map[uint64]int),
		committed: make(map[uint64]int),
		// Start fetch at cycle 1 so cycle 0 comparisons stay trivial.
		fetchReady:   1,
		lastFetchBlk: ^uint64(0),
	}, nil
}

// slotWithBandwidth finds the earliest cycle >= t with spare slots in the
// per-cycle bandwidth map, consumes one and returns it. The maps are
// pruned opportunistically.
func slotWithBandwidth(m map[uint64]int, t uint64, width int) uint64 {
	for {
		if m[t] < width {
			m[t]++
			return t
		}
		t++
	}
}

// pruneBandwidthMaps drops accounting entries older than the commit
// frontier to bound memory use.
func (c *Core) pruneBandwidthMaps(commit uint64) {
	horizon := uint64(c.cfg.ROBSize * 4)
	if commit <= horizon {
		return
	}
	before := commit - horizon
	if len(c.issued) < 4*c.cfg.ROBSize && len(c.committed) < 4*c.cfg.ROBSize && len(c.fetched) < 4*c.cfg.ROBSize {
		return
	}
	for _, m := range []map[uint64]int{c.fetched, c.issued, c.committed} {
		for k := range m {
			if k < before {
				delete(m, k)
			}
		}
	}
}

// Run simulates up to maxInsts instructions (or the whole trace if
// maxInsts <= 0) and returns the statistics.
func (c *Core) Run(tr TraceReader, maxInsts int64) Stats {
	var n int64
	for {
		if maxInsts > 0 && n >= maxInsts {
			break
		}
		inst, ok := tr.Next()
		if !ok {
			break
		}
		c.step(n, inst)
		n++
		if c.cfg.TickInterval > 0 && n%c.cfg.TickInterval == 0 {
			c.mem.Tick(c.lastCommit)
		}
	}
	c.stat.Instructions = uint64(n)
	c.stat.Cycles = c.lastCommit
	return c.stat
}

// step advances the model by one trace instruction.
func (c *Core) step(n int64, inst Inst) {
	slot := int(n % int64(c.cfg.ROBSize))

	// --- Allocate: wait for ROB space (the entry ROBSize back must have
	// committed) and fetch bandwidth.
	allocReady := c.fetchReady
	if n >= int64(c.cfg.ROBSize) {
		old := c.rob[slot]
		if old.commit+1 > allocReady {
			allocReady = old.commit + 1
		}
	}

	// --- Fetch: new I-cache access per fetch block.
	blk := inst.PC / c.cfg.FetchBytes
	if blk != c.lastFetchBlk {
		lat := c.mem.FetchLatency(inst.PC, allocReady)
		allocReady += lat - 1 // pipelined: hit latency mostly hidden
		c.lastFetchBlk = blk
	}
	allocReady = slotWithBandwidth(c.fetched, allocReady, c.cfg.FetchWidth)

	// --- Rename/dispatch at allocReady; ready when deps complete.
	ready := allocReady
	for _, d := range []int{inst.Dep1, inst.Dep2} {
		if d <= 0 || int64(d) > n || d >= c.cfg.ROBSize {
			continue
		}
		depSlot := int((n - int64(d)) % int64(c.cfg.ROBSize))
		if dep := c.rob[depSlot].completion; dep > ready {
			ready = dep
		}
	}

	// --- Issue: bounded by issue width per cycle.
	issue := slotWithBandwidth(c.issued, ready, c.cfg.IssueWidth)

	// --- Execute.
	var completion uint64
	switch inst.Op {
	case OpInt:
		completion = issue + uint64(c.cfg.IntLatency)
	case OpFp:
		completion = issue + uint64(c.cfg.FpLatency)
	case OpMul:
		completion = issue + uint64(c.cfg.MulLatency)
	case OpBranch:
		completion = issue + uint64(c.cfg.IntLatency)
		c.stat.Branches++
		pred := c.bp.predict(inst.PC)
		c.bp.update(inst.PC, inst.Taken)
		if pred != inst.Taken {
			c.stat.Mispredicts++
			// Redirect: fetch resumes after the branch resolves.
			redirect := completion + uint64(c.cfg.MispredictPenalty)
			if redirect > c.fetchReady {
				c.fetchReady = redirect
			}
			c.lastFetchBlk = ^uint64(0)
		}
	case OpLoad:
		c.stat.Loads++
		completion = issue + c.mem.LoadLatency(inst.Addr, issue)
	case OpStore:
		c.stat.Stores++
		// Stores commit through the store buffer; address check only.
		c.mem.StoreAccess(inst.Addr, issue)
		completion = issue + 1
	}

	// --- Commit: in order, bounded by commit width.
	commitAfter := completion
	if c.lastCommit > commitAfter {
		commitAfter = c.lastCommit
	}
	commit := slotWithBandwidth(c.committed, commitAfter, c.cfg.CommitWidth)
	c.lastCommit = commit
	c.rob[slot] = robEntry{completion: completion, commit: commit}

	// Fetch frontier advances at least with allocation.
	if allocReady > c.fetchReady {
		c.fetchReady = allocReady
	}
	c.pruneBandwidthMaps(commit)
}
