package xbar

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
)

// warmCfg is a small geometry so the eager sweeps stay fast under -race.
func warmCfg() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	return cfg
}

func newCal(t *testing.T, cfg Config) *Calibration {
	t.Helper()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Calibrate(x)
}

// TestWarmAllMatchesLazy checks that an eagerly warmed calibration holds
// exactly the records a lazy first-touch build would have produced.
func TestWarmAllMatchesLazy(t *testing.T) {
	cfg := warmCfg()
	warm := newCal(t, cfg)
	lazy := newCal(t, cfg)
	if err := warm.WarmAll(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Cells(); i++ {
		poe := cfg.CellAt(i)
		ws, err := warm.Shape(poe)
		if err != nil {
			t.Fatalf("warm shape %v: %v", poe, err)
		}
		ls, err := lazy.Shape(poe)
		if err != nil {
			t.Fatalf("lazy shape %v: %v", poe, err)
		}
		if len(ws) != len(ls) {
			t.Fatalf("poe %v: shape size %d != %d", poe, len(ws), len(ls))
		}
		for k := range ws {
			if ws[k] != ls[k] {
				t.Fatalf("poe %v: shape[%d] %v != %v", poe, k, ws[k], ls[k])
			}
		}
		wb, err := warm.Baseline(poe)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := lazy.Baseline(poe)
		if err != nil {
			t.Fatal(err)
		}
		for k := range wb {
			if wb[k] != lb[k] {
				t.Fatalf("poe %v: baseline[%d] %g != %g", poe, k, wb[k], lb[k])
			}
		}
	}
}

// TestWarmAllConcurrent races two eager sweeps against a fleet of lazy
// readers; under -race this pins the per-PoE singleflight as the only
// synchronization the records need.
func TestWarmAllConcurrent(t *testing.T) {
	cfg := warmCfg()
	cal := newCal(t, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 2+cfg.Cells())
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- cal.WarmAll(context.Background(), 3)
		}()
	}
	for i := 0; i < cfg.Cells(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cal.Shape(cfg.CellAt(i))
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// A repeat sweep over fully built records is a no-op and must succeed.
	if err := cal.WarmAll(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

// TestWarmAllCancel checks a pre-cancelled context aborts the sweep with the
// context's error and leaves the calibration usable.
func TestWarmAllCancel(t *testing.T) {
	cfg := warmCfg()
	cal := newCal(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cal.WarmAll(ctx, 2); err != context.Canceled {
		t.Fatalf("cancelled WarmAll: got %v, want context.Canceled", err)
	}
	// Lazy use after an aborted warm still works.
	if _, err := cal.Shape(cfg.CellAt(0)); err != nil {
		t.Fatal(err)
	}
}

// TestMonteCarloWorkerIndependence checks the documented contract that the
// result is a pure function of (cfg, poe, samples, vars, seed): worker count
// and scheduling must not leak into the statistics.
func TestMonteCarloWorkerIndependence(t *testing.T) {
	cfg := DefaultConfig()
	one, err := MonteCarloShape(cfg, Cell{4, 3}, 24, 0.05, 0.3, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MonteCarloShape(cfg, Cell{4, 3}, 24, 0.05, 0.3, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if one.Samples != many.Samples || one.ShapeChanged != many.ShapeChanged {
		t.Fatalf("worker count changed counts: %+v vs %+v", one, many)
	}
	if math.Abs(one.MaxVoltDelta-many.MaxVoltDelta) != 0 {
		t.Fatalf("worker count changed MaxVoltDelta: %g vs %g", one.MaxVoltDelta, many.MaxVoltDelta)
	}
}

// TestMonteCarloErrorZeroResult checks the satellite fix: an error return
// carries the zero result, never a half-populated one.
func TestMonteCarloErrorZeroResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 1 // invalid geometry: New fails
	res, err := MonteCarloShape(cfg, Cell{0, 0}, 8, 0.05, 0, 1, 2)
	if err == nil {
		t.Fatal("expected error for invalid geometry")
	}
	if res != (MonteCarloResult{}) {
		t.Fatalf("error path returned non-zero result %+v", res)
	}
}

// TestWarmAllParallelHier is the parallel hierarchical ring sweep under
// the race detector: a multi-worker WarmAll over a CharHier device (each
// worker claiming chunks of PoEs, all sharing the device sketch and the
// pooled per-PoE scratch) must produce exactly the records a lazy
// single-threaded build would. GOMAXPROCS is raised so the worker clamp
// cannot collapse the fan-out on a single-core host.
func TestWarmAllParallelHier(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cfg := DefaultConfig()
	cfg.Characterization = CharHier
	warm := newCal(t, cfg)
	if err := warm.WarmAll(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	lazy := newCal(t, cfg)
	for _, i := range []int{0, cfg.Cells() / 2, cfg.Cells() - 1} {
		poe := cfg.CellAt(i)
		ws, err := warm.Shape(poe)
		if err != nil {
			t.Fatalf("warm shape %v: %v", poe, err)
		}
		ls, err := lazy.Shape(poe)
		if err != nil {
			t.Fatalf("lazy shape %v: %v", poe, err)
		}
		if len(ws) != len(ls) {
			t.Fatalf("poe %v: shape size %d != %d", poe, len(ws), len(ls))
		}
		for k := range ws {
			if ws[k] != ls[k] {
				t.Fatalf("poe %v: shape[%d] %v != %v", poe, k, ws[k], ls[k])
			}
		}
	}
	// Racing a second parallel sweep against the warm records is a no-op.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- warm.WarmAll(context.Background(), 2)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
