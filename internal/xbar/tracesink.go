package xbar

import (
	"fmt"

	"snvmm/internal/device"
	"snvmm/internal/telemetry/trace"
)

// Per-pulse side-channel trace export. An attacker with physical access can
// put a current probe on the crossbar's supply rail and watch each SPE pulse
// go by; what they see — per-pulse duration and drawn energy — is exactly
// what Chen et al. ("Power-balanced Memristive Cryptographic Implementation
// Against Side Channel Attacks") analyse. The sink mirrors the telemetry
// idiom: a nil sink is the default and costs one pointer check on the
// ApplyPulse hot path; attaching a sink is a red-team operation, never part
// of the production data path.
//
// Two emission modes model the two drivers under study:
//
//   - TraceBalanced is the SPECU's hardened pulse driver: every pulse
//     occupies a fixed 100 ns slot regardless of its width class, and a
//     complementary dummy load tops the supply draw up to a constant
//     per-pulse energy envelope. The emitted trace is the constant
//     (slot, budget) pair — independent of key, data and PoE placement.
//   - TraceRaw is the deliberately leaky reference driver: the pulse
//     occupies exactly its library width (key-dependent — wider classes
//     take longer) and the energy is the solved sneak-voltage dissipation
//     over the polyomino (placement- and data-dependent). This is the
//     naive hardware the red-team distinguisher must flag.

// PulseTrace is one observed pulse on the supply rail.
type PulseTrace struct {
	// Seq is the pulse ordinal on this crossbar since the sink attached.
	Seq uint64
	// Duration is the time the driver occupied the pulse slot, seconds.
	Duration float64
	// Energy is the energy drawn from the supply during the slot, in
	// normalized units (volt² · second against a unit conductance).
	Energy float64
}

// PulseTraceSink receives one record per applied pulse. OnPulse is called
// synchronously from ApplyPulse under whatever serialization the crossbar's
// owner already provides; implementations must not call back into the
// crossbar.
type PulseTraceSink interface {
	OnPulse(PulseTrace)
}

// TraceMode selects which pulse driver's observable the sink sees.
type TraceMode int

const (
	// TraceBalanced models the hardened constant-slot, power-balanced
	// driver (the production SPECU).
	TraceBalanced TraceMode = iota
	// TraceRaw models a naive driver whose timing and supply draw follow
	// the physical pulse directly.
	TraceRaw
)

// PulseSlotSeconds is the fixed slot the balanced driver charges per pulse
// (Section 6.4's 100 ns per PoE).
const PulseSlotSeconds = 100e-9

var traceMetaPulse = &trace.SpanMeta{Subsystem: "xbar", Name: "pulse"}

// causalSink forwards each pulse record into a causal trace context as an
// instant event (A0 = pulse ordinal, A1 = slot duration in ns).
type causalSink struct{ tc trace.Context }

func (s causalSink) OnPulse(p PulseTrace) {
	s.tc.Event(traceMetaPulse, int64(p.Seq), int64(p.Duration*1e9))
}

// NewTraceSink adapts a causal trace context into a PulseTraceSink: every
// pulse lands on the context's lane as an instant event carrying the
// ordinal and slot duration. Like SetTraceSink itself this is a red-team
// harness tool, not a production path — with TraceRaw the emitted slot
// durations are the key-dependent physical widths, so such a trace must
// never leave an analysis sandbox. Under TraceBalanced the duration is the
// constant slot and the event stream is key-independent.
func NewTraceSink(tc trace.Context) PulseTraceSink {
	return causalSink{tc: tc}
}

// traceState is allocated once per crossbar when a sink attaches.
type traceState struct {
	sink PulseTraceSink
	mode TraceMode
	seq  uint64

	// Library pulse widths per polarity and width class, seconds.
	widthPos [device.NumWidths]float64
	widthNeg [device.NumWidths]float64

	// budget is the balanced driver's constant per-pulse energy envelope:
	// the worst-case raw draw the dummy load always tops the supply up to.
	budget float64
}

// SetTraceSink attaches a per-pulse trace sink in the given emission mode,
// or detaches it when sink is nil. Attachment follows the crossbar's usual
// external-serialization contract (it is not safe to race with ApplyPulse).
func (x *Crossbar) SetTraceSink(sink PulseTraceSink, mode TraceMode) error {
	if sink == nil {
		x.trace = nil
		return nil
	}
	ts := &traceState{sink: sink, mode: mode}
	p := x.Cfg.Device
	for w := 0; w < device.NumWidths; w++ {
		shift := float64(w+1) * float64(device.Levels) / float64(device.NumWidths)
		wp, err := p.WidthForShift(shift, device.PulseVoltage)
		if err != nil {
			return fmt.Errorf("xbar: trace width table: %w", err)
		}
		wn, err := p.WidthForShift(shift, -device.PulseVoltage)
		if err != nil {
			return fmt.Errorf("xbar: trace width table: %w", err)
		}
		ts.widthPos[w] = wp
		ts.widthNeg[w] = wn
	}
	// Worst-case envelope: the widest pulse driving the full drive voltage
	// across every cell of the array. Any raw draw is strictly below it.
	maxW := ts.widthPos[device.NumWidths-1]
	if ts.widthNeg[device.NumWidths-1] > maxW {
		maxW = ts.widthNeg[device.NumWidths-1]
	}
	v := 2 * x.Cfg.VDrive
	ts.budget = maxW * v * v * float64(x.Cfg.Cells())
	x.trace = ts
	return nil
}

// emitTrace builds and delivers one pulse record. Called from ApplyPulse
// only when a sink is attached; pc and acc are the calibration record and
// deviation accumulator of the pulse being applied.
func (x *Crossbar) emitTrace(pc *poeCal, acc []int64, width int, negative bool) {
	ts := x.trace
	rec := PulseTrace{Seq: ts.seq}
	ts.seq++
	switch ts.mode {
	case TraceRaw:
		// The pulse occupies its physical library width, and the supply
		// sees the polyomino's dissipation at the calibrated sneak
		// voltages (baseline + data-dependent deviation) for that long.
		w := ts.widthPos[width]
		if negative {
			w = ts.widthNeg[width]
		}
		var p float64
		for k := range pc.shape {
			v := pc.base[k] + float64(acc[k])*devInvScale
			p += v * v
		}
		rec.Duration = w
		rec.Energy = w * p
	default: // TraceBalanced
		rec.Duration = PulseSlotSeconds
		rec.Energy = ts.budget
	}
	ts.sink.OnPulse(rec)
}
