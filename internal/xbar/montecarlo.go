package xbar

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"snvmm/internal/device"
	"snvmm/internal/sched"
)

// MonteCarloResult summarizes a parametric-variation study of the polyomino
// shape (Section 5: ±5 % wire-resistance variation does not change the
// polyomino; macro-level parameter changes do).
type MonteCarloResult struct {
	Samples      int
	ShapeChanged int     // samples whose voltage-rule polyomino differs from nominal
	MaxVoltDelta float64 // worst per-cell |dv| deviation from nominal, volts
}

// MonteCarloShape perturbs wire resistances by a uniform factor in
// [1-wireVar, 1+wireVar] and device resistance bounds by deviceVar, solving
// the voltage-rule polyomino each time and comparing to the nominal shape.
// If a perturbed ROff lands at or below ROn — possible once deviceVar
// approaches 1, where the two uniform draws can cross — the sample is
// clamped to ROff = 1.5*ROn so it remains a physical (if extreme) device
// rather than an inverted one; the sample still counts.
//
// Samples fan out over min(workers, GOMAXPROCS) goroutines (workers <= 0
// selects GOMAXPROCS). Each sample draws its perturbations from an rng
// seeded by mixing the caller's seed with the sample index, so the result
// is a pure function of (cfg, poe, samples, vars, seed) — independent of
// worker count and scheduling. Each worker assembles the sneak network once
// and re-solves it through a reusable workspace, refilling resistances in
// place per sample.
//
// On any error the zero MonteCarloResult is returned: a partially
// accumulated result has no meaningful sample count and must not be
// interpreted.
func MonteCarloShape(cfg Config, poe Cell, samples int, wireVar, deviceVar float64, seed int64, workers int) (MonteCarloResult, error) {
	nomCfg := cfg
	nomCfg.Shape = ShapeVoltage
	nom, err := New(nomCfg)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomShape, err := nom.Shape(poe)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomMap, err := nom.VoltageMap(poe)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomKey := shapeKey(nomCfg, nomShape)

	workers = sched.WorkersFor(workers, samples)
	if samples == 0 {
		return MonteCarloResult{Samples: 0}, nil
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		changed  int
		maxDelta float64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localChanged, localMax, err := monteCarloWorker(nom, nomCfg, poe, nomKey, nomMap, samples, wireVar, deviceVar, seed, &next)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			changed += localChanged
			if localMax > maxDelta {
				maxDelta = localMax
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return MonteCarloResult{}, firstErr
	}
	return MonteCarloResult{Samples: samples, ShapeChanged: changed, MaxVoltDelta: maxDelta}, nil
}

// monteCarloWorker claims sample indices from next until they run out,
// solving each perturbed configuration on a privately owned network +
// workspace pair.
func monteCarloWorker(nom *Crossbar, nomCfg Config, poe Cell, nomKey string, nomMap []float64,
	samples int, wireVar, deviceVar float64, seed int64, next *atomic.Int64) (int, float64, error) {
	cells := nomCfg.Cells()
	nw, cellEdge, err := nom.buildNetwork(poe, nom.midR(), nomCfg.VDrive)
	if err != nil {
		return 0, 0, err
	}
	ws, err := nw.NewWorkspace()
	if err != nil {
		return 0, 0, err
	}
	var params []device.Params
	cellR := make([]float64, cells)
	key := make([]byte, cells)
	changed, maxDelta := 0, 0.0
	for {
		s := int(next.Add(1)) - 1
		if s >= samples {
			return changed, maxDelta, nil
		}
		// Per-sample generator: the caller seed and the sample index are
		// mixed through splitmix64, so sample s draws the same perturbations
		// no matter which worker runs it. The draw order (row wires, column
		// wires, then device bounds) is part of the pinned behaviour.
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ splitmix64(uint64(s)+1)))))
		c := nomCfg
		f := func(v float64, frac float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
		c.RWireRow = f(c.RWireRow, wireVar)
		c.RWireCol = f(c.RWireCol, wireVar)
		if deviceVar > 0 {
			c.Device.ROn = f(c.Device.ROn, deviceVar)
			c.Device.ROff = f(c.Device.ROff, deviceVar)
			// Independent draws can invert the bounds at large deviceVar;
			// clamp to a still-physical window (see the function comment).
			if c.Device.ROff <= c.Device.ROn {
				c.Device.ROff = c.Device.ROn * 1.5
			}
		}
		params = c.cellParamsInto(params)
		for i, p := range params {
			cellR[i] = p.ROn + (p.ROff-p.ROn)*0.5
		}
		if err := nom.setSneakResistances(nw, cellEdge, c.RWireRow, c.RWireCol, cellR); err != nil {
			return 0, 0, err
		}
		sol, err := ws.Solve()
		if err != nil {
			return 0, 0, err
		}
		// One solve yields both Section 5 quantities: the voltage-rule
		// membership (vs the nominal polyomino) and the per-cell |dv| drift.
		for r := 0; r < c.Rows; r++ {
			for j := 0; j < c.Cols; j++ {
				i := c.Index(Cell{Row: r, Col: j})
				v := abs(sol.V[nom.rowNode(r, j)] - sol.V[nom.colNode(r, j)])
				if v >= params[i].VtOff {
					key[i] = '1'
				} else {
					key[i] = '0'
				}
				if d := abs(v - nomMap[i]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		if string(key) != nomKey {
			changed++
		}
	}
}

// shapeKey builds a canonical bitset string for a cell set.
func shapeKey(cfg Config, cells []Cell) string {
	b := make([]byte, cfg.Cells())
	for i := range b {
		b[i] = '0'
	}
	for _, c := range cells {
		b[cfg.Index(c)] = '1'
	}
	return string(b)
}

// DynamicShapeStability quantifies the assumption behind calibrated
// polyomino shapes (DESIGN.md "physics layer"): across random stored data,
// how often does the live-state voltage-rule polyomino differ from the
// calibrated (mid-state) one? The paper asserts stability under small
// perturbations; this measures it for full data swings. Returns the
// fraction of samples whose membership set changed and the mean per-cell
// membership mismatch.
func (x *Crossbar) DynamicShapeStability(poe Cell, samples int, seed int64) (changedFrac, cellMismatch float64, err error) {
	calMap, err := x.VoltageMap(poe)
	if err != nil {
		return 0, 0, err
	}
	calSet := make([]bool, x.Cfg.Cells())
	for i, v := range calMap {
		calSet[i] = v >= x.params[i].VtOff
	}
	rng := rand.New(rand.NewSource(seed))
	changed, mismatches := 0, 0
	for s := 0; s < samples; s++ {
		cellR := make([]float64, x.Cfg.Cells())
		for i := range cellR {
			cellR[i] = x.resistance(i, rng.Intn(4))
		}
		dv, err := x.SolveVoltages(poe, cellR)
		if err != nil {
			return 0, 0, err
		}
		diff := 0
		for i, v := range dv {
			member := abs(v) >= x.params[i].VtOff
			if member != calSet[i] {
				diff++
			}
		}
		if diff > 0 {
			changed++
		}
		mismatches += diff
	}
	return float64(changed) / float64(samples),
		float64(mismatches) / float64(samples*x.Cfg.Cells()), nil
}
