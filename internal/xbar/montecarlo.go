package xbar

import (
	"math/rand"
)

// MonteCarloResult summarizes a parametric-variation study of the polyomino
// shape (Section 5: ±5 % wire-resistance variation does not change the
// polyomino; macro-level parameter changes do).
type MonteCarloResult struct {
	Samples      int
	ShapeChanged int     // samples whose voltage-rule polyomino differs from nominal
	MaxVoltDelta float64 // worst per-cell |dv| deviation from nominal, volts
}

// MonteCarloShape perturbs wire resistances by a uniform factor in
// [1-wireVar, 1+wireVar] and device resistance bounds by deviceVar, solving
// the voltage-rule polyomino each time and comparing to the nominal shape.
func MonteCarloShape(cfg Config, poe Cell, samples int, wireVar, deviceVar float64, seed int64) (MonteCarloResult, error) {
	nomCfg := cfg
	nomCfg.Shape = ShapeVoltage
	nom, err := New(nomCfg)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomShape, err := nom.Shape(poe)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomMap, err := nom.VoltageMap(poe)
	if err != nil {
		return MonteCarloResult{}, err
	}
	nomKey := shapeKey(nomCfg, nomShape)

	res := MonteCarloResult{Samples: samples}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < samples; s++ {
		c := nomCfg
		f := func(v float64, frac float64) float64 { return v * (1 + frac*(2*rng.Float64()-1)) }
		c.RWireRow = f(c.RWireRow, wireVar)
		c.RWireCol = f(c.RWireCol, wireVar)
		if deviceVar > 0 {
			c.Device.ROn = f(c.Device.ROn, deviceVar)
			c.Device.ROff = f(c.Device.ROff, deviceVar)
			if c.Device.ROff <= c.Device.ROn {
				c.Device.ROff = c.Device.ROn * 1.5
			}
		}
		xb, err := New(c)
		if err != nil {
			return res, err
		}
		shape, err := xb.Shape(poe)
		if err != nil {
			return res, err
		}
		if shapeKey(c, shape) != nomKey {
			res.ShapeChanged++
		}
		m, err := xb.VoltageMap(poe)
		if err != nil {
			return res, err
		}
		for i := range m {
			if d := abs(m[i] - nomMap[i]); d > res.MaxVoltDelta {
				res.MaxVoltDelta = d
			}
		}
	}
	return res, nil
}

// shapeKey builds a canonical bitset string for a cell set.
func shapeKey(cfg Config, cells []Cell) string {
	b := make([]byte, cfg.Cells())
	for i := range b {
		b[i] = '0'
	}
	for _, c := range cells {
		b[cfg.Index(c)] = '1'
	}
	return string(b)
}

// DynamicShapeStability quantifies the assumption behind calibrated
// polyomino shapes (DESIGN.md "physics layer"): across random stored data,
// how often does the live-state voltage-rule polyomino differ from the
// calibrated (mid-state) one? The paper asserts stability under small
// perturbations; this measures it for full data swings. Returns the
// fraction of samples whose membership set changed and the mean per-cell
// membership mismatch.
func (x *Crossbar) DynamicShapeStability(poe Cell, samples int, seed int64) (changedFrac, cellMismatch float64, err error) {
	calMap, err := x.VoltageMap(poe)
	if err != nil {
		return 0, 0, err
	}
	calSet := make([]bool, x.Cfg.Cells())
	for i, v := range calMap {
		calSet[i] = v >= x.params[i].VtOff
	}
	rng := rand.New(rand.NewSource(seed))
	changed, mismatches := 0, 0
	for s := 0; s < samples; s++ {
		cellR := make([]float64, x.Cfg.Cells())
		for i := range cellR {
			cellR[i] = x.resistance(i, rng.Intn(4))
		}
		dv, err := x.SolveVoltages(poe, cellR)
		if err != nil {
			return 0, 0, err
		}
		diff := 0
		for i, v := range dv {
			member := abs(v) >= x.params[i].VtOff
			if member != calSet[i] {
				diff++
			}
		}
		if diff > 0 {
			changed++
		}
		mismatches += diff
	}
	return float64(changed) / float64(samples),
		float64(mismatches) / float64(samples*x.Cfg.Cells()), nil
}
