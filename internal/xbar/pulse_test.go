package xbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"snvmm/internal/device"
)

func TestPermsAreBijections(t *testing.T) {
	if len(perms) != 24 {
		t.Fatalf("got %d permutations, want 24", len(perms))
	}
	seen := map[[4]int]bool{}
	for _, p := range perms {
		if seen[p] {
			t.Errorf("duplicate permutation %v", p)
		}
		seen[p] = true
		var hit [4]bool
		for _, v := range p {
			hit[v] = true
		}
		for v, ok := range hit {
			if !ok {
				t.Errorf("perm %v misses value %d", p, v)
			}
		}
	}
	if perms[0] != [4]int{0, 1, 2, 3} {
		t.Errorf("perms[0] = %v, want identity", perms[0])
	}
}

func TestInvPerms(t *testing.T) {
	for i, p := range perms {
		inv := invPerms[i]
		for v := 0; v < 4; v++ {
			if inv[p[v]] != v {
				t.Errorf("invPerms[%d] does not invert perms[%d]", i, i)
			}
		}
	}
}

func TestPermIndexRangeAndSpread(t *testing.T) {
	counts := make([]int, 24)
	for w := 0; w < device.NumWidths; w++ {
		for s := uint64(0); s < 64; s++ {
			for idx := 0; idx < 64; idx++ {
				pi := permIndex(w, splitmix64(s), idx)
				if pi < 0 || pi >= 24 {
					t.Fatalf("permIndex(%d,%d,%d) = %d out of [0,24)", w, s, idx, pi)
				}
				counts[pi]++
			}
		}
	}
	// Every permutation should be reachable and roughly uniform.
	total := device.NumWidths * 64 * 64
	for pi, c := range counts {
		if c == 0 {
			t.Errorf("permutation %d never selected", pi)
		}
		if c < total/24/2 || c > total/24*2 {
			t.Errorf("permutation %d selected %d times (expect ~%d)", pi, c, total/24)
		}
	}
}

func TestApplyPulseInvalidClass(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	if err := xb.ApplyPulse(cal, Cell{0, 0}, -1); err == nil {
		t.Error("expected class error")
	}
	if err := xb.ApplyPulse(cal, Cell{0, 0}, device.NumPulses); err == nil {
		t.Error("expected class error")
	}
}

func TestInverseClass(t *testing.T) {
	for c := 0; c < device.NumPulses; c++ {
		ic := InverseClass(c)
		if InverseClass(ic) != c {
			t.Errorf("InverseClass not involutive at %d", c)
		}
		if (c < device.NumWidths) == (ic < device.NumWidths) {
			t.Errorf("InverseClass(%d) = %d has same polarity", c, ic)
		}
	}
}

// TestPulseRoundTrip is the central invertibility property: applying a pulse
// and then its inverse class at the same PoE restores the exact state, for
// any data and any pulse.
func TestPulseRoundTrip(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		levels := make([]int, xb.Cfg.Cells())
		for i := range levels {
			levels[i] = rng.Intn(device.Levels)
		}
		if err := xb.SetLevels(levels); err != nil {
			return false
		}
		poe := Cell{rng.Intn(8), rng.Intn(8)}
		class := rng.Intn(device.NumPulses)
		if err := xb.ApplyPulse(cal, poe, class); err != nil {
			return false
		}
		if err := xb.ApplyPulse(cal, poe, InverseClass(class)); err != nil {
			return false
		}
		got := xb.Levels()
		for i := range levels {
			if got[i] != levels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPulseSequenceRoundTrip: a whole sequence of pulses at different PoEs
// is undone by the inverse pulses in reverse order — the paper's decryption
// procedure (Fig. 2a).
func TestPulseSequenceRoundTrip(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	rng := rand.New(rand.NewSource(11))
	levels := make([]int, xb.Cfg.Cells())
	for i := range levels {
		levels[i] = rng.Intn(device.Levels)
	}
	if err := xb.SetLevels(levels); err != nil {
		t.Fatal(err)
	}
	type step struct {
		poe   Cell
		class int
	}
	var seq []step
	for k := 0; k < 16; k++ {
		seq = append(seq, step{Cell{rng.Intn(8), rng.Intn(8)}, rng.Intn(device.NumPulses)})
	}
	for _, s := range seq {
		if err := xb.ApplyPulse(cal, s.poe, s.class); err != nil {
			t.Fatal(err)
		}
	}
	for k := len(seq) - 1; k >= 0; k-- {
		if err := xb.ApplyPulse(cal, seq[k].poe, InverseClass(seq[k].class)); err != nil {
			t.Fatal(err)
		}
	}
	got := xb.Levels()
	for i := range levels {
		if got[i] != levels[i] {
			t.Fatalf("sequence round trip failed at cell %d: %d != %d", i, got[i], levels[i])
		}
	}
}

// TestPulseOrderMatters reproduces Fig. 2b: undoing the pulses in the SAME
// order (not reversed) generally fails to recover the plaintext.
func TestPulseOrderMatters(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	rng := rand.New(rand.NewSource(17))
	mismatches := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		levels := make([]int, xb.Cfg.Cells())
		for i := range levels {
			levels[i] = rng.Intn(device.Levels)
		}
		if err := xb.SetLevels(levels); err != nil {
			t.Fatal(err)
		}
		// Two overlapping PoEs in the same column so the polyominoes
		// interact, with different pulse classes.
		steps := []struct {
			poe   Cell
			class int
		}{
			{Cell{2, 4}, 3},
			{Cell{5, 4}, 9},
		}
		for _, s := range steps {
			if err := xb.ApplyPulse(cal, s.poe, s.class); err != nil {
				t.Fatal(err)
			}
		}
		// Wrong order: undo step 0 first.
		for _, s := range steps {
			if err := xb.ApplyPulse(cal, s.poe, InverseClass(s.class)); err != nil {
				t.Fatal(err)
			}
		}
		got := xb.Levels()
		for i := range levels {
			if got[i] != levels[i] {
				mismatches++
				break
			}
		}
	}
	if mismatches == 0 {
		t.Error("same-order decryption always recovered plaintext; PoE order should matter")
	}
}

// TestPulseDataDependence: the effect of a pulse on the polyomino depends on
// data stored OUTSIDE the polyomino (the sneak environment).
func TestPulseDataDependence(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	poe := Cell{4, 3}
	shape, err := cal.Shape(poe)
	if err != nil {
		t.Fatal(err)
	}
	inShape := make(map[int]bool)
	for _, c := range shape {
		inShape[xb.Cfg.Index(c)] = true
	}
	// Find a complement cell whose level flips at least one strength when
	// toggled across trials.
	rng := rand.New(rand.NewSource(23))
	diffs := 0
	for trial := 0; trial < 50; trial++ {
		levels := make([]int, xb.Cfg.Cells())
		for i := range levels {
			levels[i] = rng.Intn(device.Levels)
		}
		s1, err := cal.Strengths(levels, poe)
		if err != nil {
			t.Fatal(err)
		}
		// Change every complement cell's level.
		for i := range levels {
			if !inShape[i] {
				levels[i] = (levels[i] + 2) % device.Levels
			}
		}
		s2, err := cal.Strengths(levels, poe)
		if err != nil {
			t.Fatal(err)
		}
		for k := range s1 {
			if s1[k] != s2[k] {
				diffs++
				break
			}
		}
	}
	if diffs == 0 {
		t.Error("strength classes never depend on complement data; avalanche would fail")
	}
}

func TestStrengthsDeterministicAndInRange(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	levels := make([]int, xb.Cfg.Cells())
	for i := range levels {
		levels[i] = i % device.Levels
	}
	s1, err := cal.Strengths(levels, Cell{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cal.Strengths(levels, Cell{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := range s1 {
		if s1[k] < 1 || s1[k] > 3 {
			t.Errorf("strength %d out of range", s1[k])
		}
		if s1[k] != s2[k] {
			t.Error("strengths not deterministic")
		}
	}
}

func TestCalibrationBaseline(t *testing.T) {
	xb := newTestXbar(t)
	cal := Calibrate(xb)
	base, err := cal.Baseline(Cell{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	shape, _ := cal.Shape(Cell{4, 3})
	if len(base) != len(shape) {
		t.Fatalf("baseline size %d != shape size %d", len(base), len(shape))
	}
	for k, v := range base {
		if v < 0 {
			t.Errorf("baseline[%d] = %g negative", k, v)
		}
	}
}

func TestMonteCarloWireStability(t *testing.T) {
	// Paper: ±5% wire variation leaves the polyomino unchanged.
	cfg := DefaultConfig()
	res, err := MonteCarloShape(cfg, Cell{4, 3}, 30, 0.05, 0, 77, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShapeChanged != 0 {
		t.Errorf("wire variation changed shape in %d/%d samples", res.ShapeChanged, res.Samples)
	}
}

func TestMonteCarloMacroChangesShape(t *testing.T) {
	// Macro-level device changes should (at least sometimes) change the
	// polyomino.
	cfg := DefaultConfig()
	res, err := MonteCarloShape(cfg, Cell{4, 3}, 30, 0.05, 0.9, 78, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShapeChanged == 0 {
		t.Logf("macro variation never changed shape (MaxVoltDelta=%g); acceptable but weak", res.MaxVoltDelta)
	}
	if res.MaxVoltDelta <= 0 {
		t.Error("macro variation produced zero voltage deviation")
	}
}

func TestDynamicShapeStability(t *testing.T) {
	xb := newTestXbar(t)
	changed, mismatch, err := xb.DynamicShapeStability(Cell{Row: 4, Col: 3}, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if changed < 0 || changed > 1 || mismatch < 0 || mismatch > 1 {
		t.Fatalf("fractions out of range: %g %g", changed, mismatch)
	}
	// The calibrated-shape assumption requires per-cell membership to be
	// largely stable under data swings; a few percent mismatch is the
	// price the dynamic mode would pay.
	if mismatch > 0.2 {
		t.Errorf("per-cell membership mismatch %.1f%% too high for the calibrated-shape model", mismatch*100)
	}
	t.Logf("dynamic shape: %.0f%% of data patterns perturb membership; %.2f%% of cells affected",
		changed*100, mismatch*100)
}
