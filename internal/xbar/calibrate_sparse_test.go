package xbar

import (
	"math"
	"math/rand"
	"testing"

	"snvmm/internal/device"
)

func calFor(t *testing.T, cfg Config, poe Cell) (*Calibration, *poeCal) {
	t.Helper()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Calibrate(x)
	if err := c.ensure(poe); err != nil {
		t.Fatal(err)
	}
	return c, &c.poes[cfg.Index(poe)]
}

func sizedConfig(rows, cols int) Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	return cfg
}

// TestSketchMatchesDenseCalibration cross-validates the sketch path against
// the legacy per-PoE dense path at 8x8 and 16x16: same physics through two
// different solver routes. Weights are huge on the fixed-point grid
// (~1e9-1e10 quanta at paper parameters) while the two routes agree to
// ~1e-8 relative, so a tight relative bound is meaningful.
func TestSketchMatchesDenseCalibration(t *testing.T) {
	for _, size := range []struct{ rows, cols int }{{8, 8}, {16, 16}} {
		cfgDense := sizedConfig(size.rows, size.cols)
		cfgDense.Characterization = CharDense
		cfgSparse := sizedConfig(size.rows, size.cols)
		cfgSparse.Characterization = CharSparse
		poes := []Cell{
			{Row: 0, Col: 0},
			{Row: size.rows / 2, Col: size.cols / 2},
			{Row: size.rows - 1, Col: size.cols / 3},
		}
		for _, poe := range poes {
			_, pcD := calFor(t, cfgDense, poe)
			_, pcS := calFor(t, cfgSparse, poe)
			if len(pcD.shape) != len(pcS.shape) {
				t.Fatalf("%dx%d PoE %+v: shape size %d vs %d", size.rows, size.cols, poe, len(pcD.shape), len(pcS.shape))
			}
			for k := range pcD.base {
				if d := math.Abs(pcD.base[k] - pcS.base[k]); d > 1e-9*math.Abs(pcD.base[k])+1e-12 {
					t.Fatalf("%dx%d PoE %+v shape %d: base %g vs %g", size.rows, size.cols, poe, k, pcD.base[k], pcS.base[k])
				}
			}
			if len(pcD.compIdx) != len(pcS.compIdx) {
				t.Fatalf("%dx%d PoE %+v: compIdx %d vs %d cells", size.rows, size.cols, poe, len(pcD.compIdx), len(pcS.compIdx))
			}
			for j := range pcD.compIdx {
				if pcD.compIdx[j] != pcS.compIdx[j] {
					t.Fatalf("%dx%d PoE %+v: compIdx[%d] %d vs %d", size.rows, size.cols, poe, j, pcD.compIdx[j], pcS.compIdx[j])
				}
			}
			for k := range pcD.wflat {
				for j := range pcD.wflat[k] {
					wd, ws := pcD.wflat[k][j], pcS.wflat[k][j]
					lim := int64(math.Abs(float64(wd))*1e-6) + 8
					if d := wd - ws; d > lim || d < -lim {
						t.Fatalf("%dx%d PoE %+v w[%d][%d]: dense %d vs sketch %d", size.rows, size.cols, poe, k, j, wd, ws)
					}
				}
			}
			// Band edges come from different estimators (sampled tertiles vs
			// CLT) — only sanity-check the sketch's: symmetric and ordered.
			for k, e := range pcS.edges {
				if !(e[0] < e[1]) || e[0] != -e[1] {
					t.Fatalf("%dx%d PoE %+v shape %d: bad CLT edges %v", size.rows, size.cols, poe, k, e)
				}
			}
		}
	}
}

// TestCharAutoSelection pins the mode dispatch: at 8x8 CharAuto must take
// the dense path (golden-vector compatibility — band edges match the legacy
// sampled estimator bit for bit), at 16x16 the sketch path (edges match the
// CLT estimator).
func TestCharAutoSelection(t *testing.T) {
	poe := Cell{Row: 3, Col: 4}

	auto8, pcAuto8 := calFor(t, sizedConfig(8, 8), poe)
	cfgD := sizedConfig(8, 8)
	cfgD.Characterization = CharDense
	_, pcD8 := calFor(t, cfgD, poe)
	if auto8.useSketch() {
		t.Fatal("8x8 CharAuto selected the sketch path")
	}
	for k := range pcAuto8.edges {
		if pcAuto8.edges[k] != pcD8.edges[k] {
			t.Fatalf("8x8 auto vs dense edges differ at %d: %v vs %v", k, pcAuto8.edges[k], pcD8.edges[k])
		}
	}

	auto16, pcAuto16 := calFor(t, sizedConfig(16, 16), poe)
	cfgS := sizedConfig(16, 16)
	cfgS.Characterization = CharSparse
	_, pcS16 := calFor(t, cfgS, poe)
	if !auto16.useSketch() {
		t.Fatal("16x16 CharAuto selected the dense path")
	}
	for k := range pcAuto16.edges {
		if pcAuto16.edges[k] != pcS16.edges[k] {
			t.Fatalf("16x16 auto vs sketch edges differ at %d: %v vs %v", k, pcAuto16.edges[k], pcS16.edges[k])
		}
	}
}

// TestTruncatedDeviationsBitIdentical is the acceptance-criterion test: at
// the default tolerance the truncated sweep must yield deviations that are
// bit-identical to a full (never-stopping) sweep, at 8x8 and 16x16. The
// weights themselves and the complement list must match exactly, and so
// must the int64 deviation accumulators over random data.
func TestTruncatedDeviationsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []struct{ rows, cols int }{{8, 8}, {16, 16}} {
		cfgTrunc := sizedConfig(size.rows, size.cols)
		cfgTrunc.Characterization = CharSparse // default truncation tolerance
		cfgFull := sizedConfig(size.rows, size.cols)
		cfgFull.Characterization = CharSparse
		cfgFull.TruncationTol = math.SmallestNonzeroFloat64 // never stops early
		poe := Cell{Row: size.rows / 2, Col: 1}
		_, pcT := calFor(t, cfgTrunc, poe)
		_, pcF := calFor(t, cfgFull, poe)
		if len(pcT.compIdx) != len(pcF.compIdx) {
			t.Fatalf("%dx%d: truncated compIdx %d vs full %d", size.rows, size.cols, len(pcT.compIdx), len(pcF.compIdx))
		}
		for k := range pcT.wflat {
			for j := range pcT.wflat[k] {
				if pcT.wflat[k][j] != pcF.wflat[k][j] {
					t.Fatalf("%dx%d w[%d][%d]: truncated %d vs full %d", size.rows, size.cols, k, j, pcT.wflat[k][j], pcF.wflat[k][j])
				}
			}
		}
		cells := size.rows * size.cols
		levels := make([]int, cells)
		for trial := 0; trial < 16; trial++ {
			for i := range levels {
				levels[i] = rng.Intn(device.Levels)
			}
			dT := make([]int64, len(pcT.shape))
			dF := make([]int64, len(pcF.shape))
			pcT.deviationsInto(dT, levels)
			pcF.deviationsInto(dF, levels)
			for k := range dT {
				if dT[k] != dF[k] {
					t.Fatalf("%dx%d trial %d shape %d: deviation %d vs %d", size.rows, size.cols, trial, k, dT[k], dF[k])
				}
			}
		}
	}
}

// TestTruncationRadiusKeepsExactWeights forces real truncation with a hard
// radius cap and checks that every kept weight still matches the full sweep
// bit for bit — truncation only ever drops cells, it never changes how a
// swept cell is characterized.
func TestTruncationRadiusKeepsExactWeights(t *testing.T) {
	cfgFull := sizedConfig(16, 16)
	cfgFull.Characterization = CharSparse
	cfgCap := sizedConfig(16, 16)
	cfgCap.Characterization = CharSparse
	cfgCap.TruncationRadius = 5
	poe := Cell{Row: 8, Col: 8}
	_, pcF := calFor(t, cfgFull, poe)
	_, pcC := calFor(t, cfgCap, poe)
	if len(pcC.compIdx) >= len(pcF.compIdx) {
		t.Fatalf("radius cap did not truncate: %d vs %d complement cells", len(pcC.compIdx), len(pcF.compIdx))
	}
	for j, m := range pcC.compIdx {
		if chebDist(cfgCap.CellAt(int(m)), poe) > 5 {
			t.Fatalf("kept cell %d outside the radius cap", m)
		}
		jf := pcF.compPos[m]
		if jf < 0 {
			t.Fatalf("kept cell %d missing from full sweep", m)
		}
		for k := range pcC.wflat {
			if pcC.wflat[k][j] != pcF.wflat[k][jf] {
				t.Fatalf("cell %d shape %d: capped %d vs full %d", m, k, pcC.wflat[k][j], pcF.wflat[k][jf])
			}
		}
	}
}

// TestTruncationTolMonotonicity is the property test: shrinking
// TruncationTol can only grow the visited neighbourhood. Tolerances are
// chosen around the measured weight scale at 16x16 paper parameters
// (~0.018 V/state interior rings, ~0.003 V at the boundary ring): 1.0 stops
// immediately beyond the polyomino, 0.01 and the subnormal floor sweep
// progressively more.
func TestTruncationTolMonotonicity(t *testing.T) {
	tols := []float64{1.0, 0.01, math.SmallestNonzeroFloat64}
	poe := Cell{Row: 8, Col: 8}
	var prev map[int32]bool
	var prevLen int
	strictGrowth := false
	for i, tol := range tols {
		cfg := sizedConfig(16, 16)
		cfg.Characterization = CharSparse
		cfg.TruncationTol = tol
		_, pc := calFor(t, cfg, poe)
		cur := make(map[int32]bool, len(pc.compIdx))
		for _, m := range pc.compIdx {
			cur[m] = true
		}
		if i > 0 {
			for m := range prev {
				if !cur[m] {
					t.Fatalf("tol %g dropped cell %d that tol %g visited", tol, m, tols[i-1])
				}
			}
			if len(cur) > prevLen {
				strictGrowth = true
			}
		}
		prev, prevLen = cur, len(cur)
	}
	if !strictGrowth {
		t.Fatal("no tolerance in the ladder actually grew the neighbourhood")
	}
}
