package xbar

import (
	"bytes"
	"math/rand"
	"testing"

	"snvmm/internal/device"
)

func newTestXbar(t *testing.T) *Crossbar {
	t.Helper()
	xb, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return xb
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Rows = 1 },
		func(c *Config) { c.Cols = 0 },
		func(c *Config) { c.Device.ROn = -1 },
		func(c *Config) { c.RKeeper = 0 },
		func(c *Config) { c.VDrive = 0 },
		func(c *Config) { c.VertReach = -1 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < cfg.Cells(); i++ {
		if got := cfg.Index(cfg.CellAt(i)); got != i {
			t.Errorf("Index(CellAt(%d)) = %d", i, got)
		}
	}
}

func TestPaperShapeInterior(t *testing.T) {
	cfg := DefaultConfig()
	// Interior PoE on a big enough array: 9 vertical + 2 horizontal = 11.
	cfg.Rows, cfg.Cols = 16, 16
	shape := cfg.PaperShape(Cell{8, 8})
	if len(shape) != 11 {
		t.Errorf("interior shape size %d, want 11", len(shape))
	}
	// Must contain the PoE itself.
	found := false
	for _, c := range shape {
		if c == (Cell{8, 8}) {
			found = true
		}
		if !cfg.InBounds(c) {
			t.Errorf("shape cell %+v out of bounds", c)
		}
	}
	if !found {
		t.Error("shape does not contain the PoE")
	}
}

func TestPaperShapeClipping(t *testing.T) {
	cfg := DefaultConfig() // 8x8, reach 4/1
	// Corner PoE (0,0): vertical rows 0..4 = 5 cells, horizontal col 1 = 1.
	if got := len(cfg.PaperShape(Cell{0, 0})); got != 6 {
		t.Errorf("corner shape size %d, want 6", got)
	}
	// Center-ish PoE (4,4): vertical rows 0..7 (clipped to 8), horizontal 2.
	if got := len(cfg.PaperShape(Cell{4, 4})); got != 8+2 {
		t.Errorf("center shape size %d, want 10", got)
	}
}

func TestWriteReadBlockRoundTrip(t *testing.T) {
	xb := newTestXbar(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, xb.BlockBytes())
		rng.Read(data)
		if err := xb.WriteBlock(data); err != nil {
			t.Fatal(err)
		}
		if got := xb.ReadBlock(); !bytes.Equal(got, data) {
			t.Fatalf("round trip failed: wrote %x read %x", data, got)
		}
	}
}

func TestWriteBlockWrongSize(t *testing.T) {
	xb := newTestXbar(t)
	if err := xb.WriteBlock(make([]byte, 3)); err == nil {
		t.Error("expected size error")
	}
}

func TestSetLevelsValidation(t *testing.T) {
	xb := newTestXbar(t)
	if err := xb.SetLevels(make([]int, 5)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]int, xb.Cfg.Cells())
	bad[7] = device.Levels
	if err := xb.SetLevels(bad); err == nil {
		t.Error("expected range error")
	}
}

func TestWearAccounting(t *testing.T) {
	xb := newTestXbar(t)
	data := make([]byte, xb.BlockBytes())
	if err := xb.WriteBlock(data); err != nil {
		t.Fatal(err)
	}
	for _, w := range xb.Wear() {
		if w != 1 {
			t.Fatalf("wear = %v, want all 1 after one write", xb.Wear())
		}
	}
	cal := Calibrate(xb)
	if err := xb.ApplyPulse(cal, Cell{3, 3}, 0); err != nil {
		t.Fatal(err)
	}
	shape, _ := cal.Shape(Cell{3, 3})
	wear := xb.Wear()
	touched := 0
	for _, w := range wear {
		if w == 2 {
			touched++
		}
	}
	if touched != len(shape) {
		t.Errorf("%d cells gained wear, want %d (shape size)", touched, len(shape))
	}
}

func TestSolveVoltagesPoEDominates(t *testing.T) {
	xb := newTestXbar(t)
	poe := Cell{4, 3}
	dv, err := xb.SolveVoltages(poe, xb.midR())
	if err != nil {
		t.Fatal(err)
	}
	poeV := dv[xb.Cfg.Index(poe)]
	if poeV < xb.Cfg.VDrive {
		t.Errorf("PoE voltage %g, want > VDrive %g", poeV, xb.Cfg.VDrive)
	}
	// The PoE cell must see the largest |voltage| in the array.
	for i, v := range dv {
		if i == xb.Cfg.Index(poe) {
			continue
		}
		if abs(v) > abs(poeV) {
			t.Errorf("cell %d voltage %g exceeds PoE %g", i, v, poeV)
		}
	}
}

func TestSolveVoltagesCrossPattern(t *testing.T) {
	// Cells sharing the PoE's row or column see elevated voltage; cells in
	// neither see little.
	xb := newTestXbar(t)
	poe := Cell{4, 3}
	dv, err := xb.SolveVoltages(poe, xb.midR())
	if err != nil {
		t.Fatal(err)
	}
	cfg := xb.Cfg
	var minCross, maxOff float64 = 1e9, 0
	for i, v := range dv {
		c := cfg.CellAt(i)
		if c == poe {
			continue
		}
		onCross := c.Row == poe.Row || c.Col == poe.Col
		if onCross && abs(v) < minCross {
			minCross = abs(v)
		}
		if !onCross && abs(v) > maxOff {
			maxOff = abs(v)
		}
	}
	if minCross <= maxOff {
		t.Errorf("cross cells (min %g) should exceed off-cross cells (max %g)", minCross, maxOff)
	}
}

func TestSolveVoltagesErrors(t *testing.T) {
	xb := newTestXbar(t)
	if _, err := xb.SolveVoltages(Cell{9, 0}, nil); err == nil {
		t.Error("expected out-of-bounds error")
	}
	if _, err := xb.SolveVoltages(Cell{0, 0}, make([]float64, 5)); err == nil {
		t.Error("expected cellR length error")
	}
}

func TestVoltageMapNonNegative(t *testing.T) {
	xb := newTestXbar(t)
	m, err := xb.VoltageMap(Cell{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m {
		if v < 0 {
			t.Errorf("|dv| negative at %d: %g", i, v)
		}
	}
}

func TestShapeVoltageRule(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shape = ShapeVoltage
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := xb.Shape(Cell{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) == 0 {
		t.Fatal("voltage-rule polyomino is empty")
	}
	// Must include the PoE.
	found := false
	for _, c := range shape {
		if c == (Cell{4, 3}) {
			found = true
		}
	}
	if !found {
		t.Error("voltage-rule polyomino misses the PoE")
	}
}

func TestShapeDeterminism(t *testing.T) {
	xb1 := newTestXbar(t)
	xb2 := newTestXbar(t)
	for _, poe := range []Cell{{0, 0}, {4, 3}, {7, 7}} {
		s1, err := xb1.Shape(poe)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := xb2.Shape(poe)
		if err != nil {
			t.Fatal(err)
		}
		if shapeKey(xb1.Cfg, s1) != shapeKey(xb2.Cfg, s2) {
			t.Errorf("shape for %+v not deterministic", poe)
		}
	}
}

func TestTransientPulsePhysics(t *testing.T) {
	xb := newTestXbar(t)
	levels := make([]int, xb.Cfg.Cells())
	for i := range levels {
		levels[i] = 1 // mid-low state leaves drift headroom
	}
	if err := xb.SetLevels(levels); err != nil {
		t.Fatal(err)
	}
	poe := Cell{Row: 4, Col: 3}
	res, err := xb.TransientPulse(poe, 1.8, 50e-9, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := xb.Cfg
	poeIdx := cfg.Index(poe)
	if res.Drift[poeIdx] <= 0 {
		t.Errorf("PoE did not drift: %g", res.Drift[poeIdx])
	}
	// Cells sharing the PoE row/column (above threshold) drift; others do
	// not.
	for i := range res.Drift {
		c := cfg.CellAt(i)
		onCross := c.Row == poe.Row || c.Col == poe.Col
		if onCross && res.MaxVoltage[i] >= xb.params[i].VtOff && res.Drift[i] == 0 {
			t.Errorf("cross cell %+v saw %.2f V but did not drift", c, res.MaxVoltage[i])
		}
		if !onCross && res.Drift[i] != 0 {
			t.Errorf("off-cross cell %+v drifted %g", c, res.Drift[i])
		}
	}
	// Stored levels are untouched.
	for i, l := range xb.Levels() {
		if l != 1 {
			t.Fatalf("TransientPulse mutated stored level at %d: %d", i, l)
		}
	}
	// PoE drift must exceed any neighbour drift (highest voltage).
	for i, d := range res.Drift {
		if i != poeIdx && d > res.Drift[poeIdx] {
			t.Errorf("cell %d drift %g exceeds PoE %g", i, d, res.Drift[poeIdx])
		}
	}
}

func TestTransientPulseValidation(t *testing.T) {
	xb := newTestXbar(t)
	if _, err := xb.TransientPulse(Cell{Row: 9, Col: 0}, 1, 1e-9, 10); err == nil {
		t.Error("out-of-bounds accepted")
	}
	if _, err := xb.TransientPulse(Cell{Row: 0, Col: 0}, 1, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := xb.TransientPulse(Cell{Row: 0, Col: 0}, 1, 1e-9, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestTransientSubThresholdNoDrift(t *testing.T) {
	xb := newTestXbar(t)
	// A 1.0 V total pulse puts ~0.5 V across cross cells: below Vt, only
	// the PoE (at ~0.95 V) may drift.
	res, err := xb.TransientPulse(Cell{Row: 2, Col: 2}, 1.0, 50e-9, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Drift {
		if i == xb.Cfg.Index(Cell{Row: 2, Col: 2}) {
			continue
		}
		if d != 0 {
			t.Errorf("sub-threshold cell %d drifted %g (saw %.2f V)", i, d, res.MaxVoltage[i])
		}
	}
}
