package xbar

import (
	"fmt"
	"math"
	"sync"

	"snvmm/internal/circuit"
)

// The sketch characterization path. The legacy dense path factors one
// driven network per PoE — O(n^3) in the unknown count, per PoE — which is
// the size wall that kept 16x16 cold characterization at ~7 s and made
// 32x32 unreachable. Here the device's sneak network is factored exactly
// once in its floating form (every terminal on its keeper), Green-function
// tables are precomputed against one probe pair per cell plus one single
// per terminal (circuit.ProbeSketch), and each PoE's pulse drive becomes a
// rank-2 pinned constraint: every base drop, Sherman–Morrison denominator
// and perturbed drop the sensitivity sweep needs is then O(1) table
// arithmetic. Per-PoE cost scales with the swept neighbourhood size — which
// TruncationTol/TruncationRadius bound — instead of with device size.

// defaultTruncationTol is the bit-exactness tolerance: half the 2^-40
// fixed-point weight quantum. A weight below it quantizes to zero, so
// truncating the cell cannot change any deviation accumulator bit.
const defaultTruncationTol = 0x1p-41

// tertileZ is the standard normal z with Phi(z) = 2/3 — the analytic
// tertile edge used by the sketch path's CLT band placement.
var tertileZ = math.Sqrt2 * math.Erfinv(1.0/3.0)

// calSketch is the lazily built per-device shared state of the sketch path.
type calSketch struct {
	once sync.Once
	err  error
	sk   *circuit.ProbeSketch
	// dg is the per-cell edge conductance delta of the +sensDelta state
	// perturbation used by the finite-difference sweep.
	dg []float64
	// scratch pools *hierScratch per-PoE sweep transients across the
	// device's cells builds (hierarchical backend only).
	scratch sync.Pool
}

// sketch builds (once) and returns the shared device sketch.
func (c *Calibration) sketch() (*circuit.ProbeSketch, []float64, error) {
	c.sk.once.Do(func() { c.sk.err = c.buildDeviceSketch() })
	return c.sk.sk, c.sk.dg, c.sk.err
}

func (c *Calibration) buildDeviceSketch() error {
	cfg := c.cfg
	cells := cfg.Cells()
	midR := c.xb.midR()
	nw, _, err := c.xb.buildFloatingNetwork(midR)
	if err != nil {
		return err
	}
	pairs := make([]circuit.ProbePair, cells)
	for i := 0; i < cells; i++ {
		cell := cfg.CellAt(i)
		pairs[i] = circuit.ProbePair{
			A: c.xb.rowNode(cell.Row, cell.Col),
			B: c.xb.colNode(cell.Row, cell.Col),
		}
	}
	singles := make([]int, cfg.Rows+cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		singles[r] = c.xb.rowTerm(r)
	}
	for col := 0; col < cfg.Cols; col++ {
		singles[cfg.Rows+col] = c.xb.colTerm(col)
	}
	// Supply nested-dissection ordering and truncation-sparsity hints when
	// the hierarchical backend is forced or in reach of the auto selection.
	// ShapeVoltage shapes have no analytic reach, so they stay on the
	// dense/CG backends (CharHier+ShapeVoltage is rejected by Validate).
	opt := circuit.SketchOptions{HierLimit: hierUnknownCutoff}
	hierForced := cfg.Characterization == CharHier
	if hierForced && cfg.Shape != ShapePaper {
		return fmt.Errorf("xbar: CharHier needs ShapePaper")
	}
	if hierForced || (cfg.Shape == ShapePaper && c.xb.totalNodes()-1 > hierUnknownCutoff) {
		opt.Order = c.xb.dissectionOrder()
		opt.Sparsity = c.buildHierSparsity()
		if hierForced {
			opt.Backend = circuit.SketchHier
		}
	}
	sk, err := nw.FactorSketch(pairs, singles, opt)
	if err != nil {
		return err
	}
	dg := make([]float64, cells)
	for i := 0; i < cells; i++ {
		pr := c.xb.params[i]
		rPert := pr.ROn + (pr.ROff-pr.ROn)*(0.5+sensDelta)
		dg[i] = 1/(rPert+cfg.RAccess) - 1/(midR[i]+cfg.RAccess)
	}
	c.sk.sk = sk
	c.sk.dg = dg
	return nil
}

// chebDist is the Chebyshev (ring) distance between two cells.
func chebDist(a, b Cell) int {
	dr, dc := a.Row-b.Row, a.Col-b.Col
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	if dc > dr {
		return dc
	}
	return dr
}

// ringCells visits the in-bounds cells at exactly Chebyshev distance r from
// the PoE in a fixed deterministic order (row-major around the ring),
// calling visit with each linear cell index until it returns false.
func ringCells(cfg Config, poe Cell, r int, visit func(m int) bool) {
	if r == 0 {
		visit(cfg.Index(poe))
		return
	}
	for dr := -r; dr <= r; dr++ {
		row := poe.Row + dr
		if row < 0 || row >= cfg.Rows {
			continue
		}
		if dr == -r || dr == r {
			for dc := -r; dc <= r; dc++ {
				col := poe.Col + dc
				if col < 0 || col >= cfg.Cols {
					continue
				}
				if !visit(row*cfg.Cols + col) {
					return
				}
			}
			continue
		}
		for _, dc := range [2]int{-r, r} {
			col := poe.Col + dc
			if col < 0 || col >= cfg.Cols {
				continue
			}
			if !visit(row*cfg.Cols + col) {
				return
			}
		}
	}
}

// buildSketch characterizes one PoE from the shared device sketch with a
// locality-truncated sensitivity sweep: complement cells are visited in
// growing Chebyshev rings around the PoE, and the sweep stops once a
// completed ring beyond the polyomino contributes only weights below
// TruncationTol (the paper's Fig. 4 decay makes farther rings weaker
// still). At the default tolerance a dropped weight would have quantized to
// zero anyway, so the fixed-point deviations are bit-identical to the
// untruncated sweep.
func (c *Calibration) buildSketch(poe Cell, pc *poeCal) error {
	cfg := c.cfg
	cells := cfg.Cells()
	shape, err := c.xb.Shape(poe)
	if err != nil {
		return err
	}
	if len(shape) == 0 {
		return fmt.Errorf("xbar: PoE %+v has empty polyomino", poe)
	}
	inShape := make([]bool, cells)
	shapeRad := 0
	for _, cell := range shape {
		inShape[cfg.Index(cell)] = true
		if d := chebDist(cell, poe); d > shapeRad {
			shapeRad = d
		}
	}
	sk, dg, err := c.sketch()
	if err != nil {
		return err
	}
	tol := cfg.TruncationTol
	if tol <= 0 {
		tol = defaultTruncationTol
	}
	fullRad := max(max(poe.Row, cfg.Rows-1-poe.Row), max(poe.Col, cfg.Cols-1-poe.Col))
	maxRad := fullRad
	if cfg.TruncationRadius > 0 && cfg.TruncationRadius < maxRad {
		maxRad = cfg.TruncationRadius
	}
	// Pin the pulse drive: this PoE's row terminal at +VDrive, column
	// terminal at -VDrive (singles are laid out rows first). On the
	// hierarchical backend the sweep radius is capped — its Green tables
	// only exist inside the truncation sparsity — and the pin is windowed
	// to the swept ball plus the polyomino, so per-PoE transient state is
	// O(window), not O(cells).
	hier := sk.Backend() == circuit.SketchHier
	var pin *circuit.PinnedSketch
	var window, winPos []int32
	var scr *hierScratch
	width := cells
	if hier {
		if rt := c.hierTruncRadius(); rt < maxRad {
			maxRad = rt
		}
		scr, _ = c.sk.scratch.Get().(*hierScratch)
		if scr == nil {
			scr = &hierScratch{}
		}
		defer c.sk.scratch.Put(scr)
		window, winPos = hierWindow(scr, cfg, poe, inShape, maxRad)
		width = len(window)
		pin, err = sk.PinWindow([]int{poe.Row, cfg.Rows + poe.Col}, []float64{cfg.VDrive, -cfg.VDrive}, window)
	} else {
		pin, err = sk.Pin([]int{poe.Row, cfg.Rows + poe.Col}, []float64{cfg.VDrive, -cfg.VDrive})
	}
	if err != nil {
		return err
	}
	base := make([]float64, len(shape))
	sidx := make([]int, len(shape))
	for k, cell := range shape {
		sidx[k] = cfg.Index(cell)
		base[k] = abs(pin.BaseDiff(sidx[k]))
	}
	maxW := int64((uint64(1)<<53 - 1) / uint64(3*cells))
	var wdense [][]int64
	if hier {
		wdense = scr.weightSlab(len(shape), width)
	} else {
		wdense = make([][]int64, len(shape))
		for k := range wdense {
			wdense[k] = make([]int64, width)
		}
	}
	visited := 0
	var buildErr error
	for r := 0; r <= maxRad; r++ {
		ringMax := 0.0
		swept := false
		ringCells(cfg, poe, r, func(m int) bool {
			if inShape[m] {
				return true
			}
			swept = true
			visited++
			col := m
			if hier {
				col = int(winPos[m])
			}
			scale, perr := pin.PerturbScale(m, dg[m])
			if perr != nil {
				buildErr = perr
				return false
			}
			for k := range shape {
				diff := pin.BaseDiff(sidx[k]) - scale*pin.Quad(sidx[k], m)
				w := (abs(diff) - base[k]) / sensDelta
				if aw := abs(w); aw > ringMax {
					ringMax = aw
				}
				wq := int64(math.Round(w * (1 << devWeightBits)))
				if wq > maxW || wq < -maxW {
					buildErr = fmt.Errorf("xbar: PoE %+v sensitivity %g overflows the fixed-point weight grid", poe, w)
					return false
				}
				wdense[k][col] = wq
			}
			return true
		})
		if buildErr != nil {
			return buildErr
		}
		if swept && r > shapeRad && ringMax < tol {
			break
		}
	}
	if t := xtel.Load(); t != nil {
		t.cellsVisited.Add(int64(visited))
		t.cellsSkipped.Add(int64(cells - len(shape) - visited))
	}
	var compIdx, compPos []int32
	var wflat [][]int64
	if hier {
		compIdx, compPos, wflat = flattenSensitivitiesWindowed(cells, inShape, window, wdense)
	} else {
		compIdx, compPos, wflat = flattenSensitivities(cells, inShape, wdense)
	}
	// Band edges from the CLT instead of the legacy 512-sample Monte Carlo:
	// over uniform random data the deviation accumulator is a sum of
	// independent w*q terms with q uniform on {-3,-1,1,3} (zero mean,
	// E[q^2] = 5), so its tertiles sit at ±z·sigma with Phi(z) = 2/3. At
	// 32x32 the sampling alternative would cost ~cells draws per sample per
	// shape cell — billions of RNG calls per device.
	edges := make([][2]float64, len(shape))
	for k := range shape {
		var s2 float64
		for _, wq := range wflat[k] {
			w := float64(wq)
			s2 += w * w
		}
		sigma := math.Sqrt(5*s2) * devInvScale
		if sigma < 1e-15 { // degenerate: no data sensitivity at this cell
			edges[k] = [2]float64{-1e300, 1e300}
		} else {
			edges[k] = [2]float64{-tertileZ * sigma, tertileZ * sigma}
		}
	}
	pc.shape = shape
	pc.inShape = inShape
	pc.base = base
	pc.compIdx = compIdx
	pc.compPos = compPos
	pc.wflat = wflat
	pc.edges = edges
	return nil
}
