// Package xbar models the 1T1M memristor crossbar that stores NVMM data and
// carries the sneak-path encryption primitive.
//
// The crossbar is a Rows x Cols grid of MLC-2 memristor cells (two bits per
// cell). In normal operation only the addressed row's access transistors are
// on, eliminating sneak paths. For SPE the peripheral circuitry turns all
// transistors on, a pulse is applied at a point of encryption (PoE), and the
// sneak-path network imposes a voltage across a neighbourhood of cells — the
// polyomino. Cells above the drift threshold change state.
//
// Two model layers cooperate (see DESIGN.md):
//
//   - The continuous layer solves the resistive sneak network with
//     internal/circuit and internal/device, producing voltage maps (Fig. 4),
//     Monte-Carlo shape stability (Section 5) and calibration data.
//   - The quantised layer drives encryption: each pulse maps affected cells'
//     MLC levels through bijective level permutations selected by the
//     pulse class and the cell's *voltage class*. Voltage classes derive
//     from a linearised sneak-path sensitivity model fitted to circuit
//     solves at calibration time; they depend on the data stored in cells
//     outside the polyomino, which is exactly the information still intact
//     when the pulse is undone during decryption — making decryption exact
//     while preserving the data- and hardware-dependence the paper's
//     avalanche experiments measure.
package xbar

import (
	"fmt"
	"math/rand"

	"snvmm/internal/device"
)

// ShapeRule selects how the polyomino (affected-cell set) of a PoE is
// determined.
type ShapeRule int

const (
	// ShapePaper uses the Table 1 footprint: the PoE's column within +/-4
	// rows plus the immediate horizontal neighbours, clipped at the array
	// boundary. This is the shape the paper's ILP and coverage results
	// (Fig. 6, 16 PoEs) are defined on, and the default for encryption.
	ShapePaper ShapeRule = iota
	// ShapeVoltage thresholds the circuit-solved voltage map at the drift
	// threshold, with all cells at their nominal mid state. Used for
	// Fig. 4-style studies and Monte-Carlo shape stability.
	ShapeVoltage
)

// CharMode selects the calibration build path (see DESIGN.md,
// "Locality-truncated characterization").
type CharMode int

const (
	// CharAuto picks the dense per-PoE path for small devices (<= 64
	// cells, the paper's 8x8) and the sketch path above that.
	CharAuto CharMode = iota
	// CharDense forces the legacy per-PoE dense factorization at any size.
	CharDense
	// CharSparse forces the shared-sketch path at any size.
	CharSparse
	// CharHier forces the sketch path with the hierarchical (nested-
	// dissection, block-sparse Green table) backend at any size. Requires
	// ShapePaper: the truncation sparsity is derived from the analytic
	// polyomino reach. Under CharAuto and CharSparse the hierarchical
	// backend is selected automatically above ~1024 unknowns (24x24+).
	CharHier
)

// Config describes a crossbar instance.
type Config struct {
	Rows, Cols int

	Device device.Params // nominal cell parameters

	// VarFrac is the per-cell parametric variation fraction applied at
	// fabrication (Seed-deterministic). Zero disables variation.
	VarFrac float64
	Seed    int64

	// Wire and access-device resistances (ohms). Row wires are the high-
	// resistance direction in this layout.
	RWireRow float64 // per segment along a row line
	RWireCol float64 // per segment along a column line
	RAccess  float64 // transistor on-resistance in series with each cell
	RKeeper  float64 // keeper resistance holding unselected lines at ground

	// VDrive is the half-rail drive: during a pulse the selected row sits
	// at +VDrive and the selected column at -VDrive, so the PoE cell sees
	// ~2*VDrive and polyomino cells ~VDrive.
	VDrive float64

	Shape ShapeRule

	// VertReach/HorizReach control the ShapePaper footprint.
	VertReach  int
	HorizReach int

	// Characterization selects the calibration build path. The default
	// (CharAuto) preserves the paper's 8x8 golden vectors bit-for-bit via
	// the dense path while larger devices take the sketch path.
	Characterization CharMode

	// TruncationTol bounds the sketch path's adaptive sensitivity sweep:
	// the Chebyshev-ring sweep around each PoE stops once a completed ring
	// beyond the polyomino has max |dV/dx| below this (volts per unit cell
	// state). Zero selects the bit-exactness default, half the 2^-40
	// fixed-point weight quantum — a dropped cell's weight would have
	// quantized to zero anyway, so deviations are unchanged bit for bit.
	// The dense path always sweeps the full array and ignores this.
	TruncationTol float64

	// TruncationRadius, when positive, caps the swept Chebyshev radius
	// regardless of tolerance. Zero means adaptive only (up to the whole
	// array). Like TruncationTol it only affects the sketch path.
	TruncationRadius int
}

// DefaultConfig returns the 8x8 crossbar used throughout the paper.
func DefaultConfig() Config {
	return Config{
		Rows:       8,
		Cols:       8,
		Device:     device.DefaultParams(),
		VarFrac:    0.0,
		Seed:       1,
		RWireRow:   350,
		RWireCol:   25,
		RAccess:    250,
		RKeeper:    50,
		VDrive:     0.9,
		Shape:      ShapePaper,
		VertReach:  4,
		HorizReach: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("xbar: need at least 2x2, got %dx%d", c.Rows, c.Cols)
	}
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if c.RWireRow < 0 || c.RWireCol < 0 || c.RAccess < 0 || c.RKeeper <= 0 {
		return fmt.Errorf("xbar: invalid resistances")
	}
	if c.VDrive <= 0 {
		return fmt.Errorf("xbar: VDrive must be positive, got %g", c.VDrive)
	}
	if c.Shape == ShapePaper && (c.VertReach < 0 || c.HorizReach < 0) {
		return fmt.Errorf("xbar: negative reach")
	}
	switch c.Characterization {
	case CharAuto, CharDense, CharSparse:
	case CharHier:
		if c.Shape != ShapePaper {
			return fmt.Errorf("xbar: CharHier needs ShapePaper (the truncation sparsity is derived from the analytic polyomino reach)")
		}
	default:
		return fmt.Errorf("xbar: unknown characterization mode %d", c.Characterization)
	}
	if c.TruncationTol < 0 {
		return fmt.Errorf("xbar: negative truncation tolerance %g", c.TruncationTol)
	}
	if c.TruncationRadius < 0 {
		return fmt.Errorf("xbar: negative truncation radius %d", c.TruncationRadius)
	}
	return nil
}

// Cells returns Rows*Cols.
func (c Config) Cells() int { return c.Rows * c.Cols }

// Cell identifies one crossbar cell.
type Cell struct{ Row, Col int }

// Index linearizes the cell row-major.
func (c Config) Index(cell Cell) int { return cell.Row*c.Cols + cell.Col }

// CellAt is the inverse of Index.
func (c Config) CellAt(i int) Cell { return Cell{Row: i / c.Cols, Col: i % c.Cols} }

// InBounds reports whether the cell lies inside the array.
func (c Config) InBounds(cell Cell) bool {
	return cell.Row >= 0 && cell.Row < c.Rows && cell.Col >= 0 && cell.Col < c.Cols
}

// PaperShape returns the Table 1 polyomino footprint for a PoE, clipped at
// the boundary: the PoE's column within +/-VertReach rows plus +/-HorizReach
// horizontal neighbours in the PoE's row.
func (c Config) PaperShape(poe Cell) []Cell {
	var out []Cell
	for dr := -c.VertReach; dr <= c.VertReach; dr++ {
		cell := Cell{Row: poe.Row + dr, Col: poe.Col}
		if c.InBounds(cell) {
			out = append(out, cell)
		}
	}
	for dc := -c.HorizReach; dc <= c.HorizReach; dc++ {
		if dc == 0 {
			continue
		}
		cell := Cell{Row: poe.Row, Col: poe.Col + dc}
		if c.InBounds(cell) {
			out = append(out, cell)
		}
	}
	return out
}

// cellParams materializes the per-cell device parameters, applying the
// fabrication variation deterministically from the seed.
func (c Config) cellParams() []device.Params {
	return c.cellParamsInto(nil)
}

// cellParamsInto is cellParams writing into dst when it has the capacity —
// the allocation-free form for sweeps that rematerialize parameters per
// sample (Monte Carlo).
func (c Config) cellParamsInto(dst []device.Params) []device.Params {
	if cap(dst) < c.Cells() {
		dst = make([]device.Params, c.Cells())
	}
	dst = dst[:c.Cells()]
	rng := rand.New(rand.NewSource(c.Seed))
	for i := range dst {
		if c.VarFrac > 0 {
			dst[i] = c.Device.Vary(rng, c.VarFrac)
		} else {
			dst[i] = c.Device
		}
	}
	return dst
}
