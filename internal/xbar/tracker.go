package xbar

// The incremental deviation accumulator. A pulse permutes only the levels of
// its polyomino cells, and every other PoE's deviation is a linear (integer)
// function of cell levels, so after a pulse the next PoE's deviations can be
// updated from the few changed cells instead of re-summed over the whole
// array. Because the accumulators are exact int64 sums of quantized-weight
// terms (see Calibration), incremental maintenance agrees bit-for-bit with a
// from-scratch recompute — the replay path is an optimization, never a
// different answer.

// maxJournal bounds the change journal; when it fills, accumulators that can
// still catch up cheaply are replayed to the tip and the journal is
// truncated.
const maxJournal = 512

// levelDelta records one cell's level change as dq = 2*(new-old), the exact
// delta of the integer level coordinate q = 2l-3.
type levelDelta struct {
	cell, dq int32
}

// devTracker holds, per PoE, the incremental deviation accumulator of one
// crossbar against one calibration, plus the shared change journal. It is
// owned by the crossbar and shares its (externally serialized) mutation
// discipline.
type devTracker struct {
	cal     *Calibration
	acc     [][]int64 // per PoE; nil until that PoE is first pulsed
	pos     []int     // journal position acc is synced to; -1 = stale
	journal []levelDelta
	mixbuf  []uint64
}

// tracker returns the crossbar's tracker for cal, resetting it if the
// calibration changed since the last pulse.
func (x *Crossbar) tracker(cal *Calibration) *devTracker {
	if x.trk == nil || x.trk.cal != cal {
		n := x.Cfg.Cells()
		t := &devTracker{cal: cal, acc: make([][]int64, n), pos: make([]int, n)}
		for i := range t.pos {
			t.pos[i] = -1
		}
		x.trk = t
	}
	return x.trk
}

// invalidateTracker marks every accumulator stale after a bulk state change
// (WriteBlock, SetLevels). Buffers are kept for reuse.
func (x *Crossbar) invalidateTracker() {
	if t := x.trk; t != nil {
		for i := range t.pos {
			t.pos[i] = -1
		}
		t.journal = t.journal[:0]
	}
}

// sync brings the accumulator of PoE pi up to date with the crossbar's
// current levels and returns it. It replays pending journal entries when
// that is cheaper than a from-scratch recompute (at most one weight-row pass
// per pending entry vs one per complement cell) and falls back to the scratch
// kernel otherwise — both produce the identical int64 values.
func (t *devTracker) sync(pi int, pc *poeCal, levels []int) []int64 {
	acc := t.acc[pi]
	if acc == nil {
		acc = make([]int64, len(pc.shape))
		t.acc[pi] = acc
	}
	jlen := len(t.journal)
	pos := t.pos[pi]
	if pos < 0 || jlen-pos > len(pc.compIdx) {
		pc.deviationsInto(acc, levels)
	} else {
		replay(acc, pc, t.journal[pos:jlen])
	}
	t.pos[pi] = jlen
	return acc
}

// replay applies journal entries to an accumulator. Entries for cells the
// PoE is not sensitive to (its own polyomino, or cells with all-zero
// weights) are skipped via the compPos map.
func replay(acc []int64, pc *poeCal, entries []levelDelta) {
	for _, e := range entries {
		j := pc.compPos[e.cell]
		if j < 0 {
			continue
		}
		dq := int64(e.dq)
		for k, row := range pc.wflat {
			acc[k] += row[j] * dq
		}
	}
}

// compact truncates a full journal. Accumulators close enough to the tip are
// replayed current (and restart at position 0); the rest are marked stale and
// will resync from scratch on next use.
func (t *devTracker) compact() {
	jlen := len(t.journal)
	for p := range t.acc {
		if t.acc[p] == nil || t.pos[p] < 0 {
			continue
		}
		pc := &t.cal.poes[p]
		if jlen-t.pos[p] <= len(pc.compIdx) {
			replay(t.acc[p], pc, t.journal[t.pos[p]:jlen])
			t.pos[p] = 0
		} else {
			t.pos[p] = -1
		}
	}
	t.journal = t.journal[:0]
}
