package xbar

import (
	"sync/atomic"

	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
)

// Package-level instrumentation. The calibration cache is process-wide, so
// its instruments are too: SetTelemetry publishes a resolved instrument set
// through an atomic pointer and every hot path pays one load-and-branch
// when telemetry is off. Only aggregate counts are exported — nothing keyed
// by PoE, seed, or cell state.

// xbarTel is the resolved instrument set.
type xbarTel struct {
	reg *telemetry.Registry

	cacheHits   *telemetry.Counter // CalibrationFor served from the shared cache
	cacheMisses *telemetry.Counter // CalibrationFor built a new calibration
	builds      *telemetry.Counter // per-PoE characterizations actually run
	sfWaits     *telemetry.Counter // ensure() blocked on another goroutine's build
	warmPoes    *telemetry.Counter // PoEs swept by WarmAll workers

	// Sketch-path truncation accounting: complement cells whose sensitivity
	// was computed vs cells dropped by the adaptive ring sweep.
	cellsVisited *telemetry.Counter
	cellsSkipped *telemetry.Counter

	scope *telemetry.Scope
}

var xtel atomic.Pointer[xbarTel]

var metaWarmAll = &telemetry.EventMeta{Subsystem: "xbar", Name: "warm_all"}

// Causal-trace call sites. WarmAll emits a warm_all root plus one
// warm_worker span per sweep goroutine, on lanes warmLaneBase+w so the
// workers render as parallel tracks without colliding with the SPECU's
// shard/fan lanes.
var (
	xtrace atomic.Pointer[trace.Tracer]

	traceMetaWarmAll    = &trace.SpanMeta{Subsystem: "xbar", Name: "warm_all"}
	traceMetaWarmWorker = &trace.SpanMeta{Subsystem: "xbar", Name: "warm_worker"}
)

const warmLaneBase = 1000

// SetTracer attaches (or, with nil, detaches) the package's causal
// tracer. WarmAll sweeps become roots; nothing else in the package
// originates traces — the data path's pulse trains are children of the
// SPECU contexts threaded in by the caller.
func SetTracer(tr *trace.Tracer) {
	if tr == nil {
		xtrace.Store(nil)
		return
	}
	xtrace.Store(tr)
}

// SetTelemetry attaches (or, with nil, detaches) the package's calibration
// instruments, all under the "xbar.cal." prefix.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		xtel.Store(nil)
		return
	}
	xtel.Store(&xbarTel{
		reg:          reg,
		cacheHits:    reg.Counter("xbar.cal.cache_hits"),
		cacheMisses:  reg.Counter("xbar.cal.cache_misses"),
		builds:       reg.Counter("xbar.cal.builds"),
		sfWaits:      reg.Counter("xbar.cal.singleflight_waits"),
		warmPoes:     reg.Counter("xbar.cal.warm_poes"),
		cellsVisited: reg.Counter("xbar.cal.cells_visited"),
		cellsSkipped: reg.Counter("xbar.cal.cells_skipped"),
		scope:        reg.Recorder().Scope("xbar"),
	})
}
