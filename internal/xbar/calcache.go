package xbar

import "sync"

// The process-wide calibration cache. The SPECU calibrates per fabrication
// identity, not per block: with no fabrication variation (VarFrac == 0) every
// crossbar built from the same geometry/device configuration has identical
// cell parameters regardless of its RNG seed, so its baseline voltages and
// sensitivity kernels — the inputs to the pulse path — are identical too.
// Before this cache, every NewBlock re-ran the full per-PoE characterization
// (a factor-and-sweep over the whole array), which dominated block setup.
var calCache = struct {
	mu sync.Mutex
	m  map[Config]*Calibration
}{m: make(map[Config]*Calibration)}

// CalibrationFor returns a calibration for the crossbar, shared process-wide
// across all crossbars with the same fabrication identity. The identity is
// the Config with the RNG seed folded out, which is sound only when
// VarFrac == 0 (the seed then influences nothing the pulse path reads);
// varied configurations get a private per-crossbar calibration, as before.
//
// The returned Calibration is safe for concurrent use: its per-PoE records
// are built exactly once under a per-PoE singleflight, so a fleet of workers
// first-touching the same PoE pays for one characterization total.
func CalibrationFor(x *Crossbar) (*Calibration, error) {
	t := xtel.Load()
	if x.Cfg.VarFrac != 0 {
		// Varied devices never share; a private calibration is a miss.
		if t != nil {
			t.cacheMisses.Inc()
		}
		return Calibrate(x), nil
	}
	key := x.Cfg
	key.Seed = 0
	calCache.mu.Lock()
	defer calCache.mu.Unlock()
	if c, ok := calCache.m[key]; ok {
		if t != nil {
			t.cacheHits.Inc()
		}
		return c, nil
	}
	if t != nil {
		t.cacheMisses.Inc()
	}
	// The cache owns a pristine reference crossbar (never pulsed) so the
	// calibration does not pin caller state alive or observe its mutations.
	ref, err := New(key)
	if err != nil {
		return nil, err
	}
	c := Calibrate(ref)
	calCache.m[key] = c
	return c, nil
}
