package xbar

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"snvmm/internal/circuit"
	"snvmm/internal/device"
)

// TestDissectionOrderIsPermutation: the analytic nested-dissection order
// must cover every unknown of the floating network exactly once, at even,
// odd and skewed geometries.
func TestDissectionOrderIsPermutation(t *testing.T) {
	for _, size := range []struct{ rows, cols int }{{2, 2}, {5, 3}, {8, 8}, {7, 9}, {16, 16}} {
		x, err := New(sizedConfig(size.rows, size.cols))
		if err != nil {
			t.Fatal(err)
		}
		ord := x.dissectionOrder()
		n := x.totalNodes() - 1
		if len(ord) != n {
			t.Fatalf("%dx%d: order length %d, want %d", size.rows, size.cols, len(ord), n)
		}
		seen := make([]bool, n)
		for _, u := range ord {
			if u < 0 || u >= n || seen[u] {
				t.Fatalf("%dx%d: order is not a permutation at unknown %d", size.rows, size.cols, u)
			}
			seen[u] = true
		}
	}
}

// TestHierMatchesDenseCalibration cross-validates the hierarchical path
// against the legacy per-PoE dense path at 8x8, where the default radius
// (8) covers the whole array: same physics through a third solver route.
// Tolerances mirror TestSketchMatchesDenseCalibration.
func TestHierMatchesDenseCalibration(t *testing.T) {
	cfgDense := sizedConfig(8, 8)
	cfgDense.Characterization = CharDense
	cfgHier := sizedConfig(8, 8)
	cfgHier.Characterization = CharHier
	for _, poe := range []Cell{{Row: 0, Col: 0}, {Row: 4, Col: 4}, {Row: 7, Col: 2}} {
		_, pcD := calFor(t, cfgDense, poe)
		cH, pcH := calFor(t, cfgHier, poe)
		sk, _, err := cH.sketch()
		if err != nil {
			t.Fatal(err)
		}
		if sk.Backend() != circuit.SketchHier {
			t.Fatalf("CharHier resolved to backend %v", sk.Backend())
		}
		if len(pcD.shape) != len(pcH.shape) {
			t.Fatalf("PoE %+v: shape size %d vs %d", poe, len(pcD.shape), len(pcH.shape))
		}
		for k := range pcD.base {
			if d := math.Abs(pcD.base[k] - pcH.base[k]); d > 1e-9*math.Abs(pcD.base[k])+1e-12 {
				t.Fatalf("PoE %+v shape %d: base %g vs %g", poe, k, pcD.base[k], pcH.base[k])
			}
		}
		if len(pcD.compIdx) != len(pcH.compIdx) {
			t.Fatalf("PoE %+v: compIdx %d vs %d cells", poe, len(pcD.compIdx), len(pcH.compIdx))
		}
		for j := range pcD.compIdx {
			if pcD.compIdx[j] != pcH.compIdx[j] {
				t.Fatalf("PoE %+v: compIdx[%d] %d vs %d", poe, j, pcD.compIdx[j], pcH.compIdx[j])
			}
		}
		for k := range pcD.wflat {
			for j := range pcD.wflat[k] {
				wd, wh := pcD.wflat[k][j], pcH.wflat[k][j]
				lim := int64(math.Abs(float64(wd))*1e-6) + 8
				if d := wd - wh; d > lim || d < -lim {
					t.Fatalf("PoE %+v w[%d][%d]: dense %d vs hier %d", poe, k, j, wd, wh)
				}
			}
		}
	}
}

// TestHierMatchesSketch16 cross-validates the hierarchical backend against
// the dense-table sketch backend at 16x16 with a radius that covers the
// array — the two sketch routes must characterize identically up to
// factorization round-off.
func TestHierMatchesSketch16(t *testing.T) {
	cfgS := sizedConfig(16, 16)
	cfgS.Characterization = CharSparse
	cfgH := sizedConfig(16, 16)
	cfgH.Characterization = CharHier
	cfgH.TruncationRadius = 15 // >= fullRad of every PoE: no truncation
	for _, poe := range []Cell{{Row: 8, Col: 8}, {Row: 0, Col: 15}} {
		_, pcS := calFor(t, cfgS, poe)
		_, pcH := calFor(t, cfgH, poe)
		if len(pcS.compIdx) != len(pcH.compIdx) {
			t.Fatalf("PoE %+v: compIdx %d vs %d cells", poe, len(pcS.compIdx), len(pcH.compIdx))
		}
		for j := range pcS.compIdx {
			if pcS.compIdx[j] != pcH.compIdx[j] {
				t.Fatalf("PoE %+v: compIdx[%d] %d vs %d", poe, j, pcS.compIdx[j], pcH.compIdx[j])
			}
		}
		for k := range pcS.wflat {
			for j := range pcS.wflat[k] {
				ws, wh := pcS.wflat[k][j], pcH.wflat[k][j]
				lim := int64(math.Abs(float64(ws))*1e-6) + 8
				if d := ws - wh; d > lim || d < -lim {
					t.Fatalf("PoE %+v w[%d][%d]: sketch %d vs hier %d", poe, k, j, ws, wh)
				}
			}
		}
	}
}

// TestHierTruncationKeepsExactWeights: shrinking the hierarchical radius
// only drops complement cells — every kept cell's weights are bit-identical
// to the wide-radius characterization, because each Green-table entry is a
// pure function of the network and the elimination order, independent of
// which other entries the sparsity materializes.
func TestHierTruncationKeepsExactWeights(t *testing.T) {
	cfgWide := sizedConfig(16, 16)
	cfgWide.Characterization = CharHier
	cfgWide.TruncationRadius = 12
	cfgNarrow := sizedConfig(16, 16)
	cfgNarrow.Characterization = CharHier
	cfgNarrow.TruncationRadius = 4
	poe := Cell{Row: 8, Col: 8}
	_, pcW := calFor(t, cfgWide, poe)
	_, pcN := calFor(t, cfgNarrow, poe)
	if len(pcN.compIdx) >= len(pcW.compIdx) {
		t.Fatalf("radius 4 did not truncate: %d vs %d complement cells", len(pcN.compIdx), len(pcW.compIdx))
	}
	for j, m := range pcN.compIdx {
		if chebDist(cfgNarrow.CellAt(int(m)), poe) > 4 {
			t.Fatalf("kept cell %d outside the radius cap", m)
		}
		jw := pcW.compPos[m]
		if jw < 0 {
			t.Fatalf("kept cell %d missing from wide sweep", m)
		}
		for k := range pcN.wflat {
			if pcN.wflat[k][j] != pcW.wflat[k][jw] {
				t.Fatalf("cell %d shape %d: narrow %d vs wide %d", m, k, pcN.wflat[k][j], pcW.wflat[k][jw])
			}
		}
	}
}

// hierSketchFor builds just the shared device sketch (no per-PoE sweeps)
// for a CharHier config.
func hierSketchFor(t *testing.T, cfg Config) *circuit.ProbeSketch {
	t.Helper()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Calibrate(x)
	sk, _, err := c.sketch()
	if err != nil {
		t.Fatal(err)
	}
	if sk.Backend() != circuit.SketchHier {
		t.Fatalf("expected hierarchical backend, got %v", sk.Backend())
	}
	return sk
}

// TestHierTableMemoryAccounting pins the tentpole's memory claim: Green-
// table bytes grow with TruncationRadius at fixed device size, and at fixed
// radius they grow roughly linearly with cell count — not quadratically
// like the dense np^2 tables.
func TestHierTableMemoryAccounting(t *testing.T) {
	bytesAt := func(rows, cols, radius int) int64 {
		cfg := sizedConfig(rows, cols)
		cfg.Characterization = CharHier
		cfg.TruncationRadius = radius
		return hierSketchFor(t, cfg).TableBytes()
	}
	b2 := bytesAt(16, 16, 2)
	b4 := bytesAt(16, 16, 4)
	b8 := bytesAt(16, 16, 8)
	if !(b2 < b4 && b4 < b8) {
		t.Fatalf("table bytes not monotone in radius: %d, %d, %d", b2, b4, b8)
	}
	// 16x16 -> 32x32 quadruples the cells. Dense tables grow ~16x (np^2);
	// the truncated tables must stay well under 8x (boundary clipping makes
	// the growth slightly superlinear, ~4-5x).
	small := bytesAt(16, 16, 3)
	large := bytesAt(32, 32, 3)
	if large >= 8*small {
		t.Fatalf("radius-3 table bytes grew %dx (%d -> %d) across 4x cells — not neighbourhood-bound",
			large/small, small, large)
	}
}

// TestHierPulseRoundTrip: end-to-end SPE invertibility through the
// hierarchical path — a pulse train applied through a CharHier calibration
// must be exactly undone by the inverse classes in reverse order.
func TestHierPulseRoundTrip(t *testing.T) {
	cfg := sizedConfig(16, 16)
	cfg.Characterization = CharHier
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	levels := make([]int, cfg.Cells())
	for i := range levels {
		levels[i] = rng.Intn(device.Levels)
	}
	if err := x.SetLevels(levels); err != nil {
		t.Fatal(err)
	}
	cal := Calibrate(x)
	type step struct {
		poe   Cell
		class int
	}
	steps := make([]step, 24)
	for i := range steps {
		steps[i] = step{
			poe:   Cell{Row: rng.Intn(cfg.Rows), Col: rng.Intn(cfg.Cols)},
			class: rng.Intn(device.NumWidths),
		}
		if err := x.ApplyPulse(cal, steps[i].poe, steps[i].class); err != nil {
			t.Fatal(err)
		}
	}
	changed := false
	for i, l := range x.Levels() {
		if l != levels[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("pulse train left the array unchanged — test is vacuous")
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if err := x.ApplyPulse(cal, steps[i].poe, InverseClass(steps[i].class)); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range x.Levels() {
		if l != levels[i] {
			t.Fatalf("cell %d: level %d after undo, want %d", i, l, levels[i])
		}
	}
}

// TestCharHierValidation: CharHier is incompatible with voltage-threshold
// shapes (no analytic truncation footprint).
func TestCharHierValidation(t *testing.T) {
	cfg := sizedConfig(8, 8)
	cfg.Characterization = CharHier
	cfg.Shape = ShapeVoltage
	if err := cfg.Validate(); err == nil {
		t.Fatal("CharHier+ShapeVoltage validated")
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("CharHier+ShapeVoltage crossbar built")
	}
}

// TestHierSparsityWellFormed: the generated sparsity rows are strictly
// ascending, self-inclusive and symmetric — the invariants the circuit
// layer validates — and the window is always contained in them.
func TestHierSparsityWellFormed(t *testing.T) {
	cfg := sizedConfig(12, 9)
	cfg.Characterization = CharHier
	cfg.TruncationRadius = 3
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Calibrate(x)
	sp := c.buildHierSparsity()
	inRow := func(row []int32, v int32) bool {
		k := sort.Search(len(row), func(i int) bool { return row[i] >= v })
		return k < len(row) && row[k] == v
	}
	for i, row := range sp.PairRows {
		for x := 1; x < len(row); x++ {
			if row[x] <= row[x-1] {
				t.Fatalf("pair row %d not ascending", i)
			}
		}
		if !inRow(row, int32(i)) {
			t.Fatalf("pair row %d misses its diagonal", i)
		}
		for _, j := range row {
			if !inRow(sp.PairRows[j], int32(i)) {
				t.Fatalf("pair sparsity asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Every sweep query of every PoE must be inside the pattern.
	for pi := 0; pi < cfg.Cells(); pi++ {
		poe := cfg.CellAt(pi)
		shape := cfg.PaperShape(poe)
		inShape := make([]bool, cfg.Cells())
		for _, cell := range shape {
			inShape[cfg.Index(cell)] = true
		}
		window, _ := hierWindow(&hierScratch{}, cfg, poe, inShape, c.hierTruncRadius())
		for _, m := range window {
			// PinWindow materializes C for every window pair; W is only read
			// for swept (non-shape) cells — Quad(shape, m) and Quad(m, m).
			if !inRow(sp.SingleRows[poe.Row], m) || !inRow(sp.SingleRows[cfg.Rows+poe.Col], m) {
				t.Fatalf("PoE %+v: C[.][%d] outside sparsity", poe, m)
			}
			if inShape[m] {
				continue
			}
			if !inRow(sp.PairRows[m], m) {
				t.Fatalf("PoE %+v: window cell %d missing its W diagonal", poe, m)
			}
			for _, cell := range shape {
				if !inRow(sp.PairRows[cfg.Index(cell)], m) {
					t.Fatalf("PoE %+v: W[shape %v][%d] outside sparsity", poe, cell, m)
				}
			}
		}
	}
}
