package xbar

import (
	"context"
	"testing"
)

// Cold-start characterization: build the full-device calibration from
// nothing, every PoE. This is the deployment-time cost Precharacterize
// front-loads, and the target of the blocked-kernel + batched
// Sherman–Morrison work (EXPERIMENTS.md "Cold-start characterization").
// Each iteration calibrates a fresh Calibration so nothing is ever warm;
// the process-wide cache is bypassed by calling Calibrate directly.

func benchCold(b *testing.B, rows, cols, workers int) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	x, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cal := Calibrate(x)
		if err := cal.WarmAll(ctx, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdCharacterize8x8(b *testing.B)   { benchCold(b, 8, 8, 1) }
func BenchmarkColdCharacterize16x16(b *testing.B) { benchCold(b, 16, 16, 1) }

// The parallel variant is what Precharacterize actually runs at power-on.
func BenchmarkColdCharacterize16x16Parallel(b *testing.B) { benchCold(b, 16, 16, 0) }

// The size-wall target: 32x32 (1024 PoEs, ~2100 unknowns) through the
// locality-truncated sketch path, serial and as the WarmAll power-on path.
func BenchmarkColdCharacterize32x32(b *testing.B)        { benchCold(b, 32, 32, 1) }
func BenchmarkColdCharacterize32x32WarmAll(b *testing.B) { benchCold(b, 32, 32, 0) }

// Main-memory scale through the hierarchical nested-dissection backend:
// 48x48 (2304 PoEs, ~4700 unknowns) and 64x64 (4096 PoEs, ~8300 unknowns),
// sizes the dense-table sketch could not hold (a 64x64 dense factor alone
// is ~550 MB).
func BenchmarkColdCharacterize48x48(b *testing.B) { benchCold(b, 48, 48, 1) }
func BenchmarkColdCharacterize64x64(b *testing.B) { benchCold(b, 64, 64, 1) }
