package xbar

import (
	"math/rand"
	"sync"
	"testing"

	"snvmm/internal/device"
)

// TestIncrementalDeviationsMatchScratch drives a long random pulse sequence
// and, after every pulse, checks that the journal-replay accumulator of
// every touched PoE agrees bit-for-bit with a from-scratch recompute.
// Decryption correctness rests on this exactness: if replay and scratch
// could disagree in even one ULP, the mixer words — and therefore the level
// permutations — would diverge between encrypt and decrypt.
func TestIncrementalDeviationsMatchScratch(t *testing.T) {
	xb, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibrate(xb)
	rng := rand.New(rand.NewSource(7))
	poes := []Cell{{0, 0}, {2, 4}, {5, 1}, {7, 7}, {3, 3}, {6, 2}}
	levels := make([]int, xb.Cfg.Cells())
	for i := range levels {
		levels[i] = rng.Intn(device.Levels)
	}
	if err := xb.SetLevels(levels); err != nil {
		t.Fatal(err)
	}
	scratch := make([]int64, xb.Cfg.Cells())
	// Enough pulses to cross the journal-compaction boundary several times.
	for step := 0; step < 400; step++ {
		poe := poes[rng.Intn(len(poes))]
		if err := xb.ApplyPulse(cal, poe, rng.Intn(device.NumPulses)); err != nil {
			t.Fatal(err)
		}
		trk := xb.trk
		if trk == nil {
			t.Fatal("ApplyPulse left no tracker")
		}
		for _, p := range poes {
			pi := cal.cfg.Index(p)
			pc := &cal.poes[pi]
			if trk.acc[pi] == nil {
				continue // never pulsed yet
			}
			acc := trk.sync(pi, pc, xb.levels)
			pc.deviationsInto(scratch[:len(pc.shape)], xb.levels)
			for k := range acc {
				if acc[k] != scratch[k] {
					t.Fatalf("step %d PoE %+v cell %d: incremental %d != scratch %d",
						step, p, k, acc[k], scratch[k])
				}
			}
		}
	}
}

// TestPulseRoundTripWithSharedCalibration checks that a pulse sequence
// applied through a process-shared calibration decrypts exactly, on a
// crossbar whose fabrication seed differs from the cache's reference.
func TestPulseRoundTripWithSharedCalibration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 913
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := CalibrationFor(xb)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, xb.BlockBytes())
	for i := range data {
		data[i] = byte(i*41 + 3)
	}
	if err := xb.WriteBlock(data); err != nil {
		t.Fatal(err)
	}
	poes := []Cell{{1, 1}, {4, 6}, {6, 0}, {2, 2}}
	classes := []int{3, 17, 9, 30, 12, 5, 24, 1}
	for s, c := range classes {
		if err := xb.ApplyPulse(cal, poes[s%len(poes)], c); err != nil {
			t.Fatal(err)
		}
	}
	for s := len(classes) - 1; s >= 0; s-- {
		if err := xb.ApplyPulse(cal, poes[s%len(poes)], InverseClass(classes[s])); err != nil {
			t.Fatal(err)
		}
	}
	got := xb.ReadBlock()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("round trip broke at byte %d: %02x != %02x", i, got[i], data[i])
		}
	}
}

// TestCalibrationForSharing pins the cache contract: unvaried crossbars
// share one calibration per fabrication identity regardless of seed, varied
// crossbars get private ones.
func TestCalibrationForSharing(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgB := DefaultConfig()
	cfgB.Seed = 999
	b, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	calA, err := CalibrationFor(a)
	if err != nil {
		t.Fatal(err)
	}
	calB, err := CalibrationFor(b)
	if err != nil {
		t.Fatal(err)
	}
	if calA != calB {
		t.Error("unvaried crossbars with different seeds should share a calibration")
	}
	cfgV := DefaultConfig()
	cfgV.VarFrac = 0.05
	v1, err := New(cfgV)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(cfgV)
	if err != nil {
		t.Fatal(err)
	}
	calV1, err := CalibrationFor(v1)
	if err != nil {
		t.Fatal(err)
	}
	calV2, err := CalibrationFor(v2)
	if err != nil {
		t.Fatal(err)
	}
	if calV1 == calV2 {
		t.Error("varied crossbars must not share calibrations")
	}
}

// TestConcurrentCalibrationFirstTouch hammers one shared calibration from
// many goroutines whose first pulses race on the same uncalibrated PoEs.
// The per-PoE singleflight must give every worker the same answer with no
// data race (run under -race) and no duplicate characterization visible as
// divergent state.
func TestConcurrentCalibrationFirstTouch(t *testing.T) {
	// A config field nudge gives this test its own cold cache entry even
	// when other tests have already populated the default identity.
	cfg := DefaultConfig()
	cfg.RKeeper += 1
	const workers = 8
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i * 7)
	}
	poes := []Cell{{0, 3}, {5, 5}, {7, 0}, {3, 6}}
	classes := []int{2, 21, 14, 6}
	results := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cfg
			c.Seed = int64(w + 1)
			xb, err := New(c)
			if err != nil {
				t.Error(err)
				return
			}
			cal, err := CalibrationFor(xb)
			if err != nil {
				t.Error(err)
				return
			}
			if err := xb.WriteBlock(data); err != nil {
				t.Error(err)
				return
			}
			for s, cl := range classes {
				if err := xb.ApplyPulse(cal, poes[s], cl); err != nil {
					t.Error(err)
					return
				}
			}
			results[w] = xb.ReadBlock()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] == nil || results[0] == nil {
			t.Fatal("missing worker result")
		}
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d diverged at byte %d", w, i)
			}
		}
	}
}

// TestTransientPulseConcurrent guards the drive-amplitude race fix:
// TransientPulse is now read-only on the crossbar (the amplitude is threaded
// through explicitly instead of written into Cfg.VDrive and restored), so
// concurrent transient sweeps of one crossbar at different amplitudes must
// be race-free (run under -race) and give each caller its own amplitude.
func TestTransientPulseConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 4, 4
	xb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	amps := []float64{1.6, 2.0, 2.4, 2.8}
	maxV := make([]float64, len(amps))
	var wg sync.WaitGroup
	for i, v := range amps {
		wg.Add(1)
		go func(i int, v float64) {
			defer wg.Done()
			res, err := xb.TransientPulse(Cell{1, 2}, v, 1e-9, 20)
			if err != nil {
				t.Error(err)
				return
			}
			for _, av := range res.MaxVoltage {
				if av > maxV[i] {
					maxV[i] = av
				}
			}
		}(i, v)
	}
	wg.Wait()
	for i := 1; i < len(amps); i++ {
		if maxV[i] <= maxV[i-1] {
			t.Errorf("amplitude %g saw peak %g, not above %g at amplitude %g — drive leaked between calls",
				amps[i], maxV[i], maxV[i-1], amps[i-1])
		}
	}
}
