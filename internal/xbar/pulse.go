package xbar

import (
	"fmt"

	"snvmm/internal/device"
)

// The quantized pulse layer. A pulse is identified by its class in
// [0, device.NumPulses): classes 0..15 are +1 V pulses of increasing width,
// classes 16..31 the -1 V counterparts. Applying class w+16 is the physical
// inverse of class w (opposite polarity, hysteresis-calibrated width), which
// the level permutations mirror exactly.

// permutations of {0,1,2,3} in lexicographic order; perms[0] is the
// identity. Generated once at package init.
var perms = allPerms()
var invPerms = invertAll(perms)

func allPerms() [][4]int {
	var out [][4]int
	var rec func(cur []int, used [4]bool)
	rec = func(cur []int, used [4]bool) {
		if len(cur) == 4 {
			var p [4]int
			copy(p[:], cur)
			out = append(out, p)
			return
		}
		for v := 0; v < 4; v++ {
			if !used[v] {
				used[v] = true
				rec(append(cur, v), used)
				used[v] = false
			}
		}
	}
	rec(nil, [4]bool{})
	return out
}

func invertAll(ps [][4]int) [][4]int {
	out := make([][4]int, len(ps))
	for i, p := range ps {
		var inv [4]int
		for a, b := range p {
			inv[b] = a
		}
		out[i] = inv
	}
	return out
}

// permIndex selects the level permutation a cell undergoes for a given
// positive pulse width class (0..15), the cell's voltage mixing word, and
// the cell position. The mapping is a fixed hardware property — the key
// influences it only through the pulse class and PoE sequence; the data
// influences it through the mixer (the comparator-resolution sneak
// voltage).
func permIndex(width int, mixer uint64, cellIdx int) int {
	h := mixer ^ uint64(width)*0x9E3779B97F4A7C15 ^ uint64(cellIdx)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return int(h % uint64(len(perms)))
}

// ApplyPulse applies pulse class `class` at the PoE: every cell in the
// calibrated polyomino maps its level through the permutation selected by
// (width class, solved sneak voltage, position). Negative-polarity classes
// (>= 16) apply the inverse permutation of their positive counterpart —
// the hysteresis-matched decrypt pulse.
//
// The calibration may be shared across crossbars and goroutines; the
// crossbar itself (levels, wear, tracker) must be externally serialized, as
// before. The sneak-voltage deviations feeding the permutation choice are
// maintained incrementally from the cells changed by earlier pulses when
// that is cheaper than recomputing — bit-identical either way.
func (x *Crossbar) ApplyPulse(cal *Calibration, poe Cell, class int) error {
	if class < 0 || class >= device.NumPulses {
		return fmt.Errorf("xbar: pulse class %d out of range", class)
	}
	if cal.cfg.Rows != x.Cfg.Rows || cal.cfg.Cols != x.Cfg.Cols {
		return fmt.Errorf("xbar: calibration geometry %dx%d does not match crossbar %dx%d",
			cal.cfg.Rows, cal.cfg.Cols, x.Cfg.Rows, x.Cfg.Cols)
	}
	if err := cal.ensure(poe); err != nil {
		return err
	}
	pidx := cal.cfg.Index(poe)
	pc := &cal.poes[pidx]
	t := x.tracker(cal)
	acc := t.sync(pidx, pc, x.levels)
	if cap(t.mixbuf) < len(pc.shape) {
		t.mixbuf = make([]uint64, len(pc.shape))
	}
	mixers := t.mixbuf[:len(pc.shape)]
	cal.mixersInto(mixers, pidx, pc, acc)
	width := class % device.NumWidths
	negative := class >= device.NumWidths
	if x.trace != nil {
		// The supply-rail observable is defined by the pre-pulse operating
		// point: the sneak voltages the driver sustains while the cells
		// drift. acc still holds the pre-mutation deviations here.
		x.emitTrace(pc, acc, width, negative)
	}
	for k, cell := range pc.shape {
		i := x.Cfg.Index(cell)
		pi := permIndex(width, mixers[k], i)
		old := x.levels[i]
		nl := perms[pi][old]
		if negative {
			nl = invPerms[pi][old]
		}
		x.levels[i] = nl
		x.wear[i]++
		if nl != old {
			t.journal = append(t.journal, levelDelta{cell: int32(i), dq: int32(2 * (nl - old))})
		}
	}
	if len(t.journal) >= maxJournal {
		t.compact()
	}
	return nil
}

// InverseClass returns the pulse class that physically undoes `class`: the
// opposite-polarity pulse of hysteresis-calibrated width.
func InverseClass(class int) int {
	if class >= device.NumWidths {
		return class - device.NumWidths
	}
	return class + device.NumWidths
}
