package xbar

import (
	"fmt"
	"math"

	"snvmm/internal/device"
)

// This file is the continuous-layer transient engine: it co-simulates the
// sneak-path network and the TEAM device dynamics during a pulse, the way
// the paper's HSPICE+MATLAB loop does. The quantized encryption layer does
// not depend on it; it exists to validate the physics the quantized layer
// abstracts (polyomino cells drift, sub-threshold cells hold) and to let
// researchers explore other operating points.

// TransientResult captures one simulated pulse.
type TransientResult struct {
	// States holds the analog state of every cell after the pulse.
	States []float64
	// Drift is the net state change per cell.
	Drift []float64
	// MaxVoltage is the largest |drop| each cell saw during the pulse.
	MaxVoltage []float64
	// Energy is the total energy dissipated in the network over the pulse
	// (joules): the time integral of circuit.Power — what a supply-rail
	// probe would record for this pulse.
	Energy float64
	// Steps is the number of integration steps taken.
	Steps int
}

// TransientPulse co-simulates a rectangular pulse of the given amplitude
// applied at the PoE (row at +v/2, column at -v/2, sneak mode) for `width`
// seconds, starting from the crossbar's current quantized levels. At each
// time step the resistive network is re-solved with the instantaneous
// analog resistances and every cell's TEAM state is advanced under its
// local voltage drop. The crossbar's stored levels are not modified.
func (x *Crossbar) TransientPulse(poe Cell, v float64, width float64, steps int) (*TransientResult, error) {
	if !x.Cfg.InBounds(poe) {
		return nil, fmt.Errorf("xbar: PoE %+v out of bounds", poe)
	}
	if width <= 0 || steps < 1 {
		return nil, fmt.Errorf("xbar: need positive width and steps")
	}
	n := x.Cfg.Cells()
	states := make([]float64, n)
	for i := range states {
		states[i] = device.LevelCenter(x.levels[i])
	}
	res := &TransientResult{
		States:     states,
		Drift:      make([]float64, n),
		MaxVoltage: make([]float64, n),
		Steps:      steps,
	}
	start := make([]float64, n)
	copy(start, states)

	// Build the sneak network once with the requested drive amplitude (an
	// explicit parameter, so concurrent pulses on shared-config crossbars
	// never race on Cfg). Each step only changes cell resistances, so the
	// loop updates them in place and re-solves through a Workspace, which
	// keeps the assembled structure and warm-starts from the previous
	// operating point.
	cellR := make([]float64, n)
	for i := range cellR {
		p := x.params[i]
		cellR[i] = p.ROn + (p.ROff-p.ROn)*states[i]
	}
	nw, cellEdge, err := x.buildNetwork(poe, cellR, v/2)
	if err != nil {
		return nil, err
	}
	ws, err := nw.NewWorkspace()
	if err != nil {
		return nil, err
	}
	dv := make([]float64, n)
	dt := width / float64(steps)
	for s := 0; s < steps; s++ {
		if s > 0 {
			for i := range cellR {
				p := x.params[i]
				cellR[i] = p.ROn + (p.ROff-p.ROn)*states[i]
				if err := nw.SetResistance(cellEdge+i, cellR[i]+x.Cfg.RAccess); err != nil {
					return nil, err
				}
			}
		}
		sol, err := ws.Solve()
		if err != nil {
			return nil, err
		}
		x.cellDropsInto(dv, sol)
		res.Energy += nw.Power(sol) * dt
		for i := range states {
			av := dv[i]
			if av < 0 {
				av = -av
			}
			if av > res.MaxVoltage[i] {
				res.MaxVoltage[i] = av
			}
			states[i] = clampState(states[i] + dt*driftRate(x.params[i], dv[i]))
		}
	}
	for i := range states {
		res.Drift[i] = states[i] - start[i]
	}
	return res, nil
}

// driftRate evaluates the TEAM drift at voltage v for params p (the same
// threshold model as device.Params, replicated here because the method is
// unexported).
func driftRate(p device.Params, v float64) float64 {
	switch {
	case v > p.VtOff:
		return p.KOff * math.Pow(v/p.VtOff-1, p.AlphaOff)
	case v < p.VtOn:
		return -p.KOn * math.Pow(v/p.VtOn-1, p.AlphaOn)
	default:
		return 0
	}
}

func clampState(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
