package xbar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"snvmm/internal/device"
)

// Calibration holds the per-PoE data the SPECU characterizes once per
// crossbar at manufacture: the polyomino shape, the baseline sneak voltage
// of each shape cell at the mid state, the linearized sensitivity of that
// voltage to the state of every cell outside the polyomino, and the band
// edges that quantize the resulting voltage deviation into the three
// strength classes.
//
// During a pulse the voltage across a polyomino cell is modelled as
//
//	v = base + sum_m w[m] * (x_m - 0.5)    (m ranges over complement cells)
//
// where x_m is the state of complement cell m. Because the complement of a
// polyomino is untouched by its own pulse, this quantity is bit-identical
// when the pulse is undone during decryption, which makes the quantized
// encryption exactly invertible while remaining data- and
// hardware-dependent (Section 6.1's avalanche experiments).
type Calibration struct {
	cfg Config

	// Per PoE (linear cell index): lazily filled by ensure().
	shapes   [][]Cell
	base     [][]float64
	sens     [][][]float64 // [poe][shapeCell][cellIdx]; zero for shape cells
	edges    [][][2]float64
	prepared []bool

	xb *Crossbar // reference crossbar used for solves (nominal state)
}

// Calibrate builds an empty calibration bound to the crossbar's geometry and
// fabrication variation. Per-PoE data is computed lazily on first use.
func Calibrate(x *Crossbar) *Calibration {
	n := x.Cfg.Cells()
	return &Calibration{
		cfg:      x.Cfg,
		shapes:   make([][]Cell, n),
		base:     make([][]float64, n),
		sens:     make([][][]float64, n),
		edges:    make([][][2]float64, n),
		prepared: make([]bool, n),
		xb:       x,
	}
}

// sensDelta is the state perturbation used for the finite-difference
// sensitivity extraction.
const sensDelta = 0.25

// calSamples is the number of random data samples used to place the strength
// band edges.
const calSamples = 512

// ensure computes the calibration record for one PoE.
func (c *Calibration) ensure(poe Cell) error {
	pi := c.cfg.Index(poe)
	if c.prepared[pi] {
		return nil
	}
	shape, err := c.xb.Shape(poe)
	if err != nil {
		return err
	}
	if len(shape) == 0 {
		return fmt.Errorf("xbar: PoE %+v has empty polyomino", poe)
	}
	inShape := make([]bool, c.cfg.Cells())
	for _, cell := range shape {
		inShape[c.cfg.Index(cell)] = true
	}
	// Baseline solve: everything at mid state. The system is factored once
	// and each complement-cell perturbation is re-solved with a rank-1
	// Sherman-Morrison update, which makes full-device calibration cheap
	// enough to run per crossbar instance.
	midR := c.xb.midR()
	nw, cellEdge, err := c.xb.buildNetwork(poe, midR)
	if err != nil {
		return err
	}
	fac, err := nw.FactorSystem()
	if err != nil {
		return err
	}
	dv0 := c.xb.cellDrops(fac.Base())
	base := make([]float64, len(shape))
	for k, cell := range shape {
		base[k] = abs(dv0[c.cfg.Index(cell)])
	}
	// Finite-difference sensitivities: perturb each complement cell's
	// state by +sensDelta and record the voltage change at each shape
	// cell.
	sens := make([][]float64, len(shape))
	for k := range sens {
		sens[k] = make([]float64, c.cfg.Cells())
	}
	for m := 0; m < c.cfg.Cells(); m++ {
		if inShape[m] {
			continue
		}
		pr := c.xb.params[m]
		rPert := pr.ROn + (pr.ROff-pr.ROn)*(0.5+sensDelta)
		sol, err := fac.SolveEdgePerturbed(cellEdge+m, rPert+c.cfg.RAccess)
		if err != nil {
			return err
		}
		dv := c.xb.cellDrops(sol)
		for k, cell := range shape {
			sens[k][m] = (abs(dv[c.cfg.Index(cell)]) - base[k]) / sensDelta
		}
	}
	// Place band edges so the three strength classes are balanced over
	// random data. The sampling is seeded from the crossbar seed so the
	// calibration is a pure function of the configuration.
	edges := make([][2]float64, len(shape))
	rng := rand.New(rand.NewSource(c.xb.Cfg.Seed*1315423911 + int64(pi)))
	devs := make([]float64, calSamples)
	for k := range shape {
		for s := 0; s < calSamples; s++ {
			d := 0.0
			for m := 0; m < c.cfg.Cells(); m++ {
				if inShape[m] || sens[k][m] == 0 {
					continue
				}
				lvl := rng.Intn(device.Levels)
				d += sens[k][m] * (device.LevelCenter(lvl) - 0.5)
			}
			devs[s] = d
		}
		sort.Float64s(devs)
		lo := devs[calSamples/3]
		hi := devs[2*calSamples/3]
		if hi-lo < 1e-15 { // degenerate: no data sensitivity at this cell
			lo, hi = -1e300, 1e300
		}
		edges[k] = [2]float64{lo, hi}
	}
	c.shapes[pi] = shape
	c.base[pi] = base
	c.sens[pi] = sens
	c.edges[pi] = edges
	c.prepared[pi] = true
	return nil
}

// Shape returns the calibrated polyomino for a PoE.
func (c *Calibration) Shape(poe Cell) ([]Cell, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	return c.shapes[c.cfg.Index(poe)], nil
}

// deviations computes, per shape cell, the linearized sneak-voltage
// deviation induced by the data stored outside the polyomino. The summation
// order is fixed (ascending cell index) so the value is bit-identical
// between the encryption of a pulse and its later inversion.
func (c *Calibration) deviations(levels []int, poe Cell) ([]float64, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	pi := c.cfg.Index(poe)
	shape := c.shapes[pi]
	inShape := make([]bool, c.cfg.Cells())
	for _, cell := range shape {
		inShape[c.cfg.Index(cell)] = true
	}
	out := make([]float64, len(shape))
	for k := range shape {
		d := 0.0
		w := c.sens[pi][k]
		for m, wm := range w {
			if wm == 0 || inShape[m] {
				continue
			}
			d += wm * (device.LevelCenter(levels[m]) - 0.5)
		}
		out[k] = d
	}
	return out, nil
}

// Strengths returns the voltage class (1..3) of every shape cell for the
// given crossbar state. The class depends only on cells outside the
// polyomino.
func (c *Calibration) Strengths(levels []int, poe Cell) ([]int, error) {
	devs, err := c.deviations(levels, poe)
	if err != nil {
		return nil, err
	}
	pi := c.cfg.Index(poe)
	out := make([]int, len(devs))
	for k, d := range devs {
		e := c.edges[pi][k]
		switch {
		case d < e[0]:
			out[k] = 1
		case d < e[1]:
			out[k] = 2
		default:
			out[k] = 3
		}
	}
	return out, nil
}

// Mixers returns, per shape cell, a 64-bit mixing word derived from the
// exact solved voltage (baseline + data-dependent deviation) at comparator
// resolution. The SPECU's voltage classification reads the sneak voltage
// through a high-gain comparator bank, so the resulting level permutation
// is an extremely sensitive — yet fully deterministic and, because it
// depends only on complement data, exactly invertible — function of the
// state of the cells outside the polyomino. This sensitivity is what gives
// SPE its avalanche behaviour (Section 6.1).
func (c *Calibration) Mixers(levels []int, poe Cell) ([]uint64, error) {
	devs, err := c.deviations(levels, poe)
	if err != nil {
		return nil, err
	}
	pi := c.cfg.Index(poe)
	out := make([]uint64, len(devs))
	for k, d := range devs {
		v := c.base[pi][k] + d
		out[k] = splitmix64(math.Float64bits(v) ^ uint64(pi)<<32 ^ uint64(k))
	}
	return out, nil
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Baseline returns the calibrated mid-state |voltage| of each shape cell —
// used by the Fig. 4 style reporting and by tests.
func (c *Calibration) Baseline(poe Cell) ([]float64, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	return c.base[c.cfg.Index(poe)], nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
