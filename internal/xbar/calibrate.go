package xbar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"snvmm/internal/circuit"
	"snvmm/internal/device"
)

// Calibration holds the per-PoE data the SPECU characterizes once per
// fabrication identity: the polyomino shape, the baseline sneak voltage of
// each shape cell at the mid state, the linearized sensitivity of that
// voltage to the state of every cell outside the polyomino, and the band
// edges that quantize the resulting voltage deviation into the three
// strength classes.
//
// During a pulse the voltage across a polyomino cell is modelled as
//
//	v = base + sum_m w[m] * (x_m - 0.5)    (m ranges over complement cells)
//
// where x_m is the state of complement cell m. Because the complement of a
// polyomino is untouched by its own pulse, this quantity is bit-identical
// when the pulse is undone during decryption, which makes the quantized
// encryption exactly invertible while remaining data- and
// hardware-dependent (Section 6.1's avalanche experiments).
//
// The sensitivities are quantized at calibration time to the fixed-point
// grid 2^-devWeightBits (the comparator bank that reads them out has finite
// resolution anyway). With (x_m - 0.5) = (2*level - 3)/8, every deviation
// is then an exact int64 sum of weight*(2*level-3) terms — an
// order-independent quantity that an incremental accumulator can maintain
// under single-cell updates with bit-for-bit agreement against a
// from-scratch recompute. Invertibility depends on that exactness; see
// TestIncrementalDeviationsMatchScratch.
//
// A Calibration is safe for concurrent readers: per-PoE records are built
// lazily under a per-PoE sync.Once, so concurrent pipeline workers
// first-touching the same PoE calibrate it exactly once and everyone else
// blocks until the record is ready.
type Calibration struct {
	cfg Config
	xb  *Crossbar // reference crossbar used for solves (nominal state)

	poes []poeCal // per PoE (linear cell index)

	sk calSketch // shared device sketch (sketch path only), built lazily
}

// poeCal is the lazily built calibration record of one PoE.
type poeCal struct {
	once sync.Once
	err  error

	// started/done bracket the build for singleflight-wait accounting:
	// a caller seeing started && !done is about to block inside once.Do
	// behind another goroutine's build. Purely observational — the Once
	// remains the synchronization.
	started atomic.Bool
	done    atomic.Bool

	shape   []Cell
	inShape []bool
	base    []float64

	// Quantized sensitivity kernel: compIdx lists the complement cells
	// (ascending) that any shape cell is sensitive to; compPos inverts it
	// (cell index -> position in compIdx, or -1); wflat[k] is the flat
	// int64 weight row of shape cell k, aligned with compIdx.
	compIdx []int32
	compPos []int32
	wflat   [][]int64

	edges [][2]float64
}

// devWeightBits is the fixed-point precision of the quantized sensitivity
// weights: weights are integer multiples of 2^-devWeightBits.
const devWeightBits = 40

// devInvScale converts an int64 deviation accumulator to volts: the weight
// grid contributes 2^-devWeightBits and the level term (2l-3)/8 another
// 2^-3.
const devInvScale = 0x1p-43

// levelQ returns the integer level coordinate q = 2l-3, the exact numerator
// of LevelCenter(l) - 0.5 = (2l-3)/8 for MLC-2.
func levelQ(l int) int64 { return int64(2*l - 3) }

// Calibrate builds an empty calibration bound to the crossbar's geometry
// and fabrication variation. Per-PoE data is computed lazily on first use.
// For unvaried (VarFrac == 0) configurations, prefer CalibrationFor, which
// shares one calibration per fabrication identity across the process.
func Calibrate(x *Crossbar) *Calibration {
	return &Calibration{
		cfg:  x.Cfg,
		xb:   x,
		poes: make([]poeCal, x.Cfg.Cells()),
	}
}

// sensDelta is the state perturbation used for the finite-difference
// sensitivity extraction.
const sensDelta = 0.25

// calSamples is the number of random data samples used to place the strength
// band edges.
const calSamples = 512

// ensure computes the calibration record for one PoE, exactly once even
// under concurrent first touch.
func (c *Calibration) ensure(poe Cell) error {
	if !c.cfg.InBounds(poe) {
		return fmt.Errorf("xbar: PoE %+v out of bounds", poe)
	}
	pc := &c.poes[c.cfg.Index(poe)]
	if t := xtel.Load(); t != nil && !pc.done.Load() {
		// Whoever flips started owns the build; everyone else arriving
		// before done is a singleflight waiter (an approximation — a racer
		// landing in the build/done gap may be counted without blocking).
		if pc.started.Swap(true) {
			t.sfWaits.Inc()
		} else {
			t.builds.Inc()
		}
	}
	pc.once.Do(func() { pc.err = c.build(poe, pc) })
	pc.done.Store(true)
	return pc.err
}

// build does the actual per-PoE characterization work, dispatching between
// the legacy dense path (one factorization per PoE; bit-for-bit stable, it
// backs the 8x8 golden vectors) and the shared-sketch path that makes
// 32x32+ devices tractable (see calibrate_sparse.go).
func (c *Calibration) build(poe Cell, pc *poeCal) error {
	if c.useSketch() {
		return c.buildSketch(poe, pc)
	}
	return c.buildDense(poe, pc)
}

// sparseCutoff is the cell count above which CharAuto selects the sketch
// path: 64 keeps the paper's 8x8 device — and its golden vectors — on the
// legacy dense path.
const sparseCutoff = 64

func (c *Calibration) useSketch() bool {
	switch c.cfg.Characterization {
	case CharDense:
		return false
	case CharSparse, CharHier:
		return true
	default:
		return c.cfg.Cells() > sparseCutoff
	}
}

// buildDense is the legacy characterization: factor the driven network of
// this PoE and answer every complement-cell perturbation with the batched
// probe-form Sherman–Morrison pass.
func (c *Calibration) buildDense(poe Cell, pc *poeCal) error {
	pi := c.cfg.Index(poe)
	cells := c.cfg.Cells()
	shape, err := c.xb.Shape(poe)
	if err != nil {
		return err
	}
	if len(shape) == 0 {
		return fmt.Errorf("xbar: PoE %+v has empty polyomino", poe)
	}
	inShape := make([]bool, cells)
	for _, cell := range shape {
		inShape[c.cfg.Index(cell)] = true
	}
	// Baseline solve: everything at mid state. The system is factored once
	// and all complement-cell perturbations are answered by one batched
	// Sherman-Morrison pass, which makes full-device calibration cheap
	// enough to run per fabrication identity.
	midR := c.xb.midR()
	nw, cellEdge, err := c.xb.buildNetwork(poe, midR, c.cfg.VDrive)
	if err != nil {
		return err
	}
	fac, err := nw.FactorSystem()
	if err != nil {
		return err
	}
	dv := make([]float64, cells)
	c.xb.cellDropsInto(dv, fac.Base())
	base := make([]float64, len(shape))
	for k, cell := range shape {
		base[k] = abs(dv[c.cfg.Index(cell)])
	}
	// Finite-difference sensitivities: perturb each complement cell's state
	// by +sensDelta and record the voltage change at each shape cell. The
	// calibration only observes the shape cells' junction drops, so the
	// whole sweep is phrased in the probe form of the batched update: full
	// solves for the ~|shape| probe pairs, a forward-only sweep over the
	// ~cells perturbation batch for the denominators — instead of cells
	// independent O(n^2) re-solves. The changes are then quantized to the
	// fixed-point weight grid. maxW keeps every full-array deviation sum
	// below 2^53, so int64 accumulation is exact and float64 conversion
	// lossless.
	comp := make([]int, 0, cells-len(shape))
	perts := make([]circuit.EdgePerturbation, 0, cells-len(shape))
	for m := 0; m < cells; m++ {
		if inShape[m] {
			continue
		}
		pr := c.xb.params[m]
		rPert := pr.ROn + (pr.ROff-pr.ROn)*(0.5+sensDelta)
		comp = append(comp, m)
		perts = append(perts, circuit.EdgePerturbation{Edge: cellEdge + m, NewOhms: rPert + c.cfg.RAccess})
	}
	pairs := make([]circuit.ProbePair, len(shape))
	for k, cell := range shape {
		pairs[k] = circuit.ProbePair{
			A: c.xb.rowNode(cell.Row, cell.Col),
			B: c.xb.colNode(cell.Row, cell.Col),
		}
	}
	diffs := make([]float64, len(perts)*len(pairs))
	if err := fac.SolveEdgesPerturbedDiffs(perts, pairs, diffs); err != nil {
		return err
	}
	maxW := int64((uint64(1)<<53 - 1) / uint64(3*cells))
	wdense := make([][]int64, len(shape))
	for k := range wdense {
		wdense[k] = make([]int64, cells)
	}
	for j, m := range comp {
		row := diffs[j*len(pairs) : (j+1)*len(pairs)]
		for k := range shape {
			w := (abs(row[k]) - base[k]) / sensDelta
			wq := int64(math.Round(w * (1 << devWeightBits)))
			if wq > maxW || wq < -maxW {
				return fmt.Errorf("xbar: PoE %+v sensitivity %g overflows the fixed-point weight grid", poe, w)
			}
			wdense[k][m] = wq
		}
	}
	compIdx, compPos, wflat := flattenSensitivities(cells, inShape, wdense)
	// Place band edges so the three strength classes are balanced over
	// random data. The sampling is seeded from the reference crossbar's
	// seed so the calibration is a pure function of the fabrication
	// identity.
	edges := make([][2]float64, len(shape))
	rng := rand.New(rand.NewSource(c.xb.Cfg.Seed*1315423911 + int64(pi)))
	devs := make([]float64, calSamples)
	for k := range shape {
		row := wflat[k]
		for s := 0; s < calSamples; s++ {
			var d int64
			for j := range row {
				lvl := rng.Intn(device.Levels)
				d += row[j] * levelQ(lvl)
			}
			devs[s] = float64(d) * devInvScale
		}
		sort.Float64s(devs)
		lo := devs[calSamples/3]
		hi := devs[2*calSamples/3]
		if hi-lo < 1e-15 { // degenerate: no data sensitivity at this cell
			lo, hi = -1e300, 1e300
		}
		edges[k] = [2]float64{lo, hi}
	}
	pc.shape = shape
	pc.inShape = inShape
	pc.base = base
	pc.compIdx = compIdx
	pc.compPos = compPos
	pc.wflat = wflat
	pc.edges = edges
	return nil
}

// flattenSensitivities compacts a dense per-shape-cell weight table into
// the calibration's sparse layout: complement cells that at least one shape
// cell is sensitive to, in ascending order (compIdx), the inverse map
// (compPos, -1 where absent), and per-shape-cell weight rows aligned with
// compIdx. Shared by both build paths so the record layout is identical
// regardless of how the weights were computed.
func flattenSensitivities(cells int, inShape []bool, wdense [][]int64) (compIdx, compPos []int32, wflat [][]int64) {
	compPos = make([]int32, cells)
	for i := range compPos {
		compPos[i] = -1
	}
	for m := 0; m < cells; m++ {
		if inShape[m] {
			continue
		}
		for k := range wdense {
			if wdense[k][m] != 0 {
				compPos[m] = int32(len(compIdx))
				compIdx = append(compIdx, int32(m))
				break
			}
		}
	}
	wflat = make([][]int64, len(wdense))
	for k := range wflat {
		row := make([]int64, len(compIdx))
		for j, m := range compIdx {
			row[j] = wdense[k][m]
		}
		wflat[k] = row
	}
	return compIdx, compPos, wflat
}

// Shape returns the calibrated polyomino for a PoE.
func (c *Calibration) Shape(poe Cell) ([]Cell, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	return c.poes[c.cfg.Index(poe)].shape, nil
}

// deviationsInto computes, per shape cell, the exact integer deviation
// accumulator sum_j wflat[k][j] * (2*level-3) from scratch. Integer
// addition is associative, so this agrees bit-for-bit with any incremental
// maintenance of the same quantity — the property decryption relies on.
func (pc *poeCal) deviationsInto(dst []int64, levels []int) {
	for k, row := range pc.wflat {
		var d int64
		for j, m := range pc.compIdx {
			d += row[j] * levelQ(levels[m])
		}
		dst[k] = d
	}
}

// deviations returns the per-shape-cell sneak-voltage deviations in volts.
func (c *Calibration) deviations(levels []int, poe Cell) ([]float64, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	pc := &c.poes[c.cfg.Index(poe)]
	if len(levels) != c.cfg.Cells() {
		return nil, fmt.Errorf("xbar: deviations needs %d levels, got %d", c.cfg.Cells(), len(levels))
	}
	acc := make([]int64, len(pc.shape))
	pc.deviationsInto(acc, levels)
	out := make([]float64, len(acc))
	for k, d := range acc {
		out[k] = float64(d) * devInvScale
	}
	return out, nil
}

// Strengths returns the voltage class (1..3) of every shape cell for the
// given crossbar state. The class depends only on cells outside the
// polyomino.
func (c *Calibration) Strengths(levels []int, poe Cell) ([]int, error) {
	devs, err := c.deviations(levels, poe)
	if err != nil {
		return nil, err
	}
	pc := &c.poes[c.cfg.Index(poe)]
	out := make([]int, len(devs))
	for k, d := range devs {
		e := pc.edges[k]
		switch {
		case d < e[0]:
			out[k] = 1
		case d < e[1]:
			out[k] = 2
		default:
			out[k] = 3
		}
	}
	return out, nil
}

// mixersInto derives the per-shape-cell mixing words from an already
// computed deviation accumulator (scratch or incremental — they are
// bit-identical).
func (c *Calibration) mixersInto(dst []uint64, pi int, pc *poeCal, acc []int64) {
	for k, d := range acc {
		v := pc.base[k] + float64(d)*devInvScale
		dst[k] = splitmix64(math.Float64bits(v) ^ uint64(pi)<<32 ^ uint64(k))
	}
}

// Mixers returns, per shape cell, a 64-bit mixing word derived from the
// exact solved voltage (baseline + data-dependent deviation) at comparator
// resolution. The SPECU's voltage classification reads the sneak voltage
// through a high-gain comparator bank, so the resulting level permutation
// is an extremely sensitive — yet fully deterministic and, because it
// depends only on complement data, exactly invertible — function of the
// state of the cells outside the polyomino. This sensitivity is what gives
// SPE its avalanche behaviour (Section 6.1).
func (c *Calibration) Mixers(levels []int, poe Cell) ([]uint64, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	pi := c.cfg.Index(poe)
	pc := &c.poes[pi]
	if len(levels) != c.cfg.Cells() {
		return nil, fmt.Errorf("xbar: Mixers needs %d levels, got %d", c.cfg.Cells(), len(levels))
	}
	acc := make([]int64, len(pc.shape))
	pc.deviationsInto(acc, levels)
	out := make([]uint64, len(acc))
	c.mixersInto(out, pi, pc, acc)
	return out, nil
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// Baseline returns the calibrated mid-state |voltage| of each shape cell —
// used by the Fig. 4 style reporting and by tests.
func (c *Calibration) Baseline(poe Cell) ([]float64, error) {
	if err := c.ensure(poe); err != nil {
		return nil, err
	}
	return c.poes[c.cfg.Index(poe)].base, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
