package xbar

import (
	"fmt"

	"snvmm/internal/circuit"
	"snvmm/internal/device"
)

// Crossbar is one 1T1M array instance with quantized MLC state.
type Crossbar struct {
	Cfg    Config
	params []device.Params // per-cell (fabrication-varied) parameters
	levels []int           // per-cell MLC level, row-major
	wear   []uint64        // per-cell pulse count, for endurance studies
	trk    *devTracker     // incremental deviation state for the pulse path
	trace  *traceState     // optional per-pulse side-channel sink (nil = off)
}

// New builds a crossbar with all cells at level 0.
func New(cfg Config) (*Crossbar, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Cells()
	return &Crossbar{
		Cfg:    cfg,
		params: cfg.cellParams(),
		levels: make([]int, n),
		wear:   make([]uint64, n),
	}, nil
}

// Levels returns a copy of the per-cell MLC levels.
func (x *Crossbar) Levels() []int {
	out := make([]int, len(x.levels))
	copy(out, x.levels)
	return out
}

// SetLevels overwrites the cell state. The slice length must equal Cells().
func (x *Crossbar) SetLevels(levels []int) error {
	if len(levels) != len(x.levels) {
		return fmt.Errorf("xbar: SetLevels length %d != %d", len(levels), len(x.levels))
	}
	for i, l := range levels {
		if l < 0 || l >= device.Levels {
			return fmt.Errorf("xbar: level %d at cell %d out of range", l, i)
		}
	}
	copy(x.levels, levels)
	x.invalidateTracker()
	return nil
}

// Wear returns a copy of the per-cell pulse counts.
func (x *Crossbar) Wear() []uint64 {
	out := make([]uint64, len(x.wear))
	copy(out, x.wear)
	return out
}

// BlockBytes is the data capacity of one crossbar in bytes: each cell stores
// 2 bits, row-major, least-significant pair first within a byte.
func (x *Crossbar) BlockBytes() int { return x.Cfg.Cells() / 4 }

// WriteBlock programs plaintext data into the array (the paper's write
// phase: a normal MLC write with sneak paths suppressed). data must be
// exactly BlockBytes long.
func (x *Crossbar) WriteBlock(data []byte) error {
	if len(data) != x.BlockBytes() {
		return fmt.Errorf("xbar: WriteBlock needs %d bytes, got %d", x.BlockBytes(), len(data))
	}
	for i := 0; i < x.Cfg.Cells(); i++ {
		bits := data[i/4] >> uint((i%4)*2) & 0x3
		x.levels[i] = device.BitsLevel(bits)
		x.wear[i]++
	}
	x.invalidateTracker()
	return nil
}

// ReadBlock senses the array (transistor-gated, sneak-free) and returns the
// stored bits.
func (x *Crossbar) ReadBlock() []byte {
	out := make([]byte, x.BlockBytes())
	for i := 0; i < x.Cfg.Cells(); i++ {
		out[i/4] |= device.LevelBits(x.levels[i]) << uint((i%4)*2)
	}
	return out
}

// resistance returns the present resistance of cell i at the given level
// using that cell's fabrication-varied parameters.
func (x *Crossbar) resistance(i, level int) float64 {
	p := x.params[i]
	return p.ROn + (p.ROff-p.ROn)*device.LevelCenter(level)
}

// midResistance returns cell i's resistance at the mid state x = 0.5, the
// calibration reference point.
func (x *Crossbar) midResistance(i int) float64 {
	p := x.params[i]
	return p.ROn + (p.ROff-p.ROn)*0.5
}

// Node numbering for the sneak network:
//
//	0                      ground
//	1 + r*Cols + j         row-line junction of row r at column j
//	1 + R*C + c*Rows + i   column-line junction of column c at row i
//	1 + 2*R*C + r          row terminal r
//	1 + 2*R*C + Rows + c   column terminal c
func (x *Crossbar) rowNode(r, j int) int { return 1 + r*x.Cfg.Cols + j }
func (x *Crossbar) colNode(i, c int) int { return 1 + x.Cfg.Rows*x.Cfg.Cols + c*x.Cfg.Rows + i }
func (x *Crossbar) rowTerm(r int) int    { return 1 + 2*x.Cfg.Rows*x.Cfg.Cols + r }
func (x *Crossbar) colTerm(c int) int {
	return 1 + 2*x.Cfg.Rows*x.Cfg.Cols + x.Cfg.Rows + c
}
func (x *Crossbar) totalNodes() int { return 1 + 2*x.Cfg.Rows*x.Cfg.Cols + x.Cfg.Rows + x.Cfg.Cols }

// SolveVoltages computes the voltage across every cell when a pulse of
// amplitude +VDrive/-VDrive is applied at the PoE's row/column with all
// transistors on (sneak mode) and every other line held at ground through
// its keeper. cellR gives the per-cell resistance to use (len Cells());
// pass nil to use the current quantized state.
//
// The returned slice has one entry per cell: V(row junction) - V(column
// junction), the drop across memristor+access device.
func (x *Crossbar) SolveVoltages(poe Cell, cellR []float64) ([]float64, error) {
	nw, _, err := x.buildNetwork(poe, cellR, x.Cfg.VDrive)
	if err != nil {
		return nil, err
	}
	sol, err := nw.Solve()
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.Cfg.Cells())
	x.cellDropsInto(out, sol)
	return out, nil
}

// cellDropsInto extracts the per-cell voltage drop from a network solution
// into dst (len Cells()).
func (x *Crossbar) cellDropsInto(dst []float64, sol *circuit.Solution) {
	cfg := x.Cfg
	for r := 0; r < cfg.Rows; r++ {
		for j := 0; j < cfg.Cols; j++ {
			dst[cfg.Index(Cell{Row: r, Col: j})] = sol.V[x.rowNode(r, j)] - sol.V[x.colNode(r, j)]
		}
	}
}

// buildNetwork assembles the sneak-mode network for a pulse at the PoE with
// the given drive amplitude (row at +vDrive, column at -vDrive). The drive
// is an explicit parameter — not read from Cfg — so transient sweeps can
// explore other operating points without mutating shared configuration. It
// returns the network and the edge index of cell 0 (cells occupy
// consecutive edge indices in row-major order), which the calibration uses
// for fast single-resistor perturbation re-solves and the transient engine
// for in-place per-step resistance updates.
func (x *Crossbar) buildNetwork(poe Cell, cellR []float64, vDrive float64) (*circuit.Network, int, error) {
	cfg := x.Cfg
	if !cfg.InBounds(poe) {
		return nil, 0, fmt.Errorf("xbar: PoE %+v out of bounds", poe)
	}
	nw, cellEdgeStart, err := x.assembleSneakCore(cellR)
	if err != nil {
		return nil, 0, err
	}
	// Drives and keepers.
	for r := 0; r < cfg.Rows; r++ {
		if r == poe.Row {
			if err := nw.FixVoltage(x.rowTerm(r), vDrive); err != nil {
				return nil, 0, err
			}
		} else if err := nw.AddResistor(x.rowTerm(r), circuit.Ground, cfg.RKeeper); err != nil {
			return nil, 0, err
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		if c == poe.Col {
			if err := nw.FixVoltage(x.colTerm(c), -vDrive); err != nil {
				return nil, 0, err
			}
		} else if err := nw.AddResistor(x.colTerm(c), circuit.Ground, cfg.RKeeper); err != nil {
			return nil, 0, err
		}
	}
	return nw, cellEdgeStart, nil
}

// buildFloatingNetwork assembles the sneak network with every terminal held
// through its keeper and nothing driven — the shared operating structure the
// probe-sketch characterization factors once per device. Per-PoE pulse
// drives are applied afterwards as rank-2 boundary constraints
// (circuit.ProbeSketch.Pin), which is what lets one factorization serve
// every PoE.
func (x *Crossbar) buildFloatingNetwork(cellR []float64) (*circuit.Network, int, error) {
	cfg := x.Cfg
	nw, cellEdgeStart, err := x.assembleSneakCore(cellR)
	if err != nil {
		return nil, 0, err
	}
	for r := 0; r < cfg.Rows; r++ {
		if err := nw.AddResistor(x.rowTerm(r), circuit.Ground, cfg.RKeeper); err != nil {
			return nil, 0, err
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		if err := nw.AddResistor(x.colTerm(c), circuit.Ground, cfg.RKeeper); err != nil {
			return nil, 0, err
		}
	}
	return nw, cellEdgeStart, nil
}

// assembleSneakCore builds the drive-independent part of the sneak network:
// wire segments and cell edges, in the fixed edge order setSneakResistances
// and the calibration rely on.
func (x *Crossbar) assembleSneakCore(cellR []float64) (*circuit.Network, int, error) {
	cfg := x.Cfg
	if cellR == nil {
		cellR = make([]float64, cfg.Cells())
		for i := range cellR {
			cellR[i] = x.resistance(i, x.levels[i])
		}
	} else if len(cellR) != cfg.Cells() {
		return nil, 0, fmt.Errorf("xbar: cellR length %d != %d", len(cellR), cfg.Cells())
	}
	nw := circuit.NewNetwork(x.totalNodes())
	// Wire segments. Terminals attach at column 0 (rows) and row 0
	// (columns).
	for r := 0; r < cfg.Rows; r++ {
		if err := nw.AddResistor(x.rowTerm(r), x.rowNode(r, 0), nz(cfg.RWireRow)); err != nil {
			return nil, 0, err
		}
		for j := 0; j+1 < cfg.Cols; j++ {
			if err := nw.AddResistor(x.rowNode(r, j), x.rowNode(r, j+1), nz(cfg.RWireRow)); err != nil {
				return nil, 0, err
			}
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		if err := nw.AddResistor(x.colTerm(c), x.colNode(0, c), nz(cfg.RWireCol)); err != nil {
			return nil, 0, err
		}
		for i := 0; i+1 < cfg.Rows; i++ {
			if err := nw.AddResistor(x.colNode(i, c), x.colNode(i+1, c), nz(cfg.RWireCol)); err != nil {
				return nil, 0, err
			}
		}
	}
	// Cells: memristor + access transistor in series, all on in sneak mode.
	// Cell edges occupy consecutive indices starting at cellEdgeStart.
	cellEdgeStart := cfg.Rows*cfg.Cols + cfg.Cols*cfg.Rows
	for r := 0; r < cfg.Rows; r++ {
		for j := 0; j < cfg.Cols; j++ {
			i := cfg.Index(Cell{Row: r, Col: j})
			if err := nw.AddResistor(x.rowNode(r, j), x.colNode(r, j), cellR[i]+cfg.RAccess); err != nil {
				return nil, 0, err
			}
		}
	}
	return nw, cellEdgeStart, nil
}

// setSneakResistances refills a network built by buildNetwork with new wire
// and cell resistances in place, relying on its fixed edge layout: row-wire
// segments occupy edges [0, Rows*Cols), column-wire segments the next
// Rows*Cols, then the cells starting at cellEdge. Keeper and drive entries
// are untouched. Together with a circuit.Workspace this turns a parametric
// sweep into refill+resolve with no per-sample network assembly.
func (x *Crossbar) setSneakResistances(nw *circuit.Network, cellEdge int, rWireRow, rWireCol float64, cellR []float64) error {
	nWire := x.Cfg.Rows * x.Cfg.Cols
	for i := 0; i < nWire; i++ {
		if err := nw.SetResistance(i, nz(rWireRow)); err != nil {
			return err
		}
	}
	for i := nWire; i < 2*nWire; i++ {
		if err := nw.SetResistance(i, nz(rWireCol)); err != nil {
			return err
		}
	}
	for i, r := range cellR {
		if err := nw.SetResistance(cellEdge+i, r+x.Cfg.RAccess); err != nil {
			return err
		}
	}
	return nil
}

// nz guards against zero wire resistance (an ideal wire would merge nodes);
// a tiny positive value keeps the network well-posed.
func nz(r float64) float64 {
	if r <= 0 {
		return 1e-3
	}
	return r
}

// midR returns the per-cell mid-state resistance vector.
func (x *Crossbar) midR() []float64 {
	out := make([]float64, x.Cfg.Cells())
	for i := range out {
		out[i] = x.midResistance(i)
	}
	return out
}

// VoltageMap solves the sneak network at the nominal mid state and returns
// |voltage| per cell — the Fig. 4 quantity.
func (x *Crossbar) VoltageMap(poe Cell) ([]float64, error) {
	dv, err := x.SolveVoltages(poe, x.midR())
	if err != nil {
		return nil, err
	}
	for i, v := range dv {
		if v < 0 {
			dv[i] = -v
		}
	}
	return dv, nil
}

// Shape returns the polyomino of a PoE under the configured rule.
func (x *Crossbar) Shape(poe Cell) ([]Cell, error) {
	switch x.Cfg.Shape {
	case ShapePaper:
		return x.Cfg.PaperShape(poe), nil
	case ShapeVoltage:
		dv, err := x.VoltageMap(poe)
		if err != nil {
			return nil, err
		}
		var out []Cell
		for i, v := range dv {
			if v >= x.params[i].VtOff {
				out = append(out, x.Cfg.CellAt(i))
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xbar: unknown shape rule %d", x.Cfg.Shape)
	}
}
