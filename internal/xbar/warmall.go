package xbar

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"snvmm/internal/sched"
	"snvmm/internal/telemetry"
)

// warmChunk is how many consecutive PoEs one claim takes. Chunked claims
// amortize the atomic cursor traffic and keep neighbouring PoEs — whose
// hierarchical windows overlap, so their Green-table reads share cache
// lines — on the same worker. Small enough that the tail imbalance is at
// most warmChunk-1 PoEs per worker.
const warmChunk = 8

// WarmAll characterizes every PoE of the device eagerly, fanning the
// per-PoE work over a pool of goroutines. Each PoE's record is built under
// its own sync.Once (see ensure), so WarmAll is safe to race with lazy
// first-touch calibration from pipeline workers — whoever gets there first
// does the work, everyone else blocks briefly and reuses it — and a second
// WarmAll call is a cheap no-op sweep.
//
// workers <= 0 selects the host's schedulable parallelism; any request is
// clamped to that and to the PoE count (sched.WorkersFor), since the
// per-PoE work is pure CPU and extra goroutines only add scheduling
// overhead (the oversubscription regression measured in BENCH_specu.json).
// At workers > 1 each goroutine claims warmChunk consecutive PoEs per
// atomic fetch — the parallel ring sweep used by the hierarchical backend
// too, whose per-PoE scratch is pooled and whose shared sketch is built
// under its own sync.Once, so the fan-out is race-free.
//
// On cancellation WarmAll stops claiming new PoEs and returns the context
// error; records built so far stay valid. The first build error wins and is
// returned after all workers drain.
func (c *Calibration) WarmAll(ctx context.Context, workers int) error {
	cells := c.cfg.Cells()
	workers = sched.WorkersFor(workers, cells)
	// The span's A0 reports PoEs swept, A1 flags failure/cancellation; the
	// xbar.cal.warm_poes counter is live progress while the sweep runs.
	var sp telemetry.Span
	var swept atomic.Int64
	t := xtel.Load()
	if t != nil {
		sp = t.scope.Start(metaWarmAll)
	}
	// Causal trace: the sweep is its own root (it runs outside any batch),
	// with one child span per worker goroutine on its own lane.
	tr := xtrace.Load()
	root := tr.Root(traceMetaWarmAll)
	// One effective worker means the goroutine fan-out is pure overhead —
	// dispatch, atomic claims and WaitGroup parking bought nothing on a
	// GOMAXPROCS=1 host (the parallel 16x16 cold bench used to run slower
	// than serial). Sweep inline instead.
	if workers == 1 {
		var firstErr error
		for i := 0; i < cells; i++ {
			if firstErr = ctx.Err(); firstErr != nil {
				break
			}
			if firstErr = c.ensure(c.cfg.CellAt(i)); firstErr != nil {
				break
			}
			if t != nil {
				t.warmPoes.Inc()
			}
			swept.Add(1)
		}
		if t != nil {
			failed := int64(0)
			if firstErr != nil {
				failed = 1
			}
			sp.End(swept.Load(), failed)
		}
		root.End(swept.Load(), boolA1(firstErr != nil))
		return firstErr
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		tr.NameLane(uint32(warmLaneBase+w), fmt.Sprintf("warm %02d", w))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := root.Context().WithLane(uint32(warmLaneBase + w)).Start(traceMetaWarmWorker)
			var mine int64
			for {
				if err := ctx.Err(); err != nil {
					record(err)
					wsp.End(mine, 1)
					return
				}
				base := int(next.Add(warmChunk)) - warmChunk
				if base >= cells {
					wsp.End(mine, 0)
					return
				}
				hi := base + warmChunk
				if hi > cells {
					hi = cells
				}
				for i := base; i < hi; i++ {
					if err := c.ensure(c.cfg.CellAt(i)); err != nil {
						record(err)
						wsp.End(mine, 1)
						return
					}
					if t != nil {
						t.warmPoes.Inc()
					}
					swept.Add(1)
					mine++
				}
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if t != nil {
		failed := int64(0)
		if firstErr != nil {
			failed = 1
		}
		sp.End(swept.Load(), failed)
	}
	root.End(swept.Load(), boolA1(firstErr != nil))
	return firstErr
}

// boolA1 maps a failure flag onto the span's A1 attribute.
func boolA1(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
