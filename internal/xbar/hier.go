package xbar

import (
	"snvmm/internal/circuit"
)

// The hierarchical characterization path (CharHier, and CharAuto/CharSparse
// above hierUnknownCutoff unknowns). The crossbar's sneak network is a
// Rows x Cols grid of (row-junction, column-junction) vertex pairs: row
// wires chain row junctions along a row, column wires chain column
// junctions along a column, and each cell's memristor+access edge bridges
// the pair. That regularity makes nested-dissection separators analytic —
// no graph-partitioning heuristics — and the resulting elimination order
// gives the supernodal sparse Cholesky (linalg.FactorSparse) near-linear
// fill, which is what breaks the dense backend's O(n^2) factor memory and
// O(n^2 * np) probe cost at 48x48/64x64.
//
// The same grid structure bounds which Green-table entries the calibration
// sweep can ever read: the sweep visits Chebyshev rings around the PoE up
// to the truncation radius, and the polyomino extends at most
// max(VertReach, HorizReach) further. buildHierSparsity turns those radii
// into the block-sparse W/C table pattern, so table memory scales with the
// truncation neighbourhood instead of with device size.

// defaultHierRadius is the hierarchical path's sweep/truncation radius when
// Config.TruncationRadius is zero. Measured at 32x32 paper parameters the
// sensitivity weights plateau around 2^-7..2^-10 V/state out to the array
// edge (long-range sneak coupling; see DESIGN.md), so unlike the adaptive
// tolerance sweep a radius cap is a real approximation: 8 (= 2*VertReach)
// keeps every weight above ~1e-2 V/state of the strongest dropped ring
// while bounding per-PoE work and table fill by a constant.
const defaultHierRadius = 8

// hierUnknownCutoff is the unknown count above which CharAuto/CharSparse
// supply ordering and sparsity hints so the sketch auto-selects the
// hierarchical backend. It matches the circuit layer's default HierLimit:
// 16x16 (544 unknowns) stays on the bit-stable dense backend, 24x24 (1200)
// and up go hierarchical.
const hierUnknownCutoff = 1024

// hierTruncRadius is the effective Chebyshev sweep radius of the
// hierarchical path.
func (c *Calibration) hierTruncRadius() int {
	if c.cfg.TruncationRadius > 0 {
		return c.cfg.TruncationRadius
	}
	return defaultHierRadius
}

// dissectionOrder returns the nested-dissection elimination order over the
// floating sneak network's unknowns (node-1 space; ground is eliminated).
//
// Terminals go first: after the keeper's ground end is eliminated each is a
// degree-1 pendant whose elimination causes no fill. Then the grid region
// is cut recursively: a vertical cut at column cm removes that column's row
// junctions (the only vertices carrying row wires across the cut), with the
// column's column junctions as a middle strip that touches only the
// separator; a horizontal cut at row rm is the transpose. Children are
// emitted first, then the middle strip, then the separator — so separators
// are eliminated last and become the top supernodes of the etree.
func (x *Crossbar) dissectionOrder() []int {
	cfg := x.Cfg
	order := make([]int, 0, x.totalNodes()-1)
	push := func(node int) { order = append(order, node-1) }
	for r := 0; r < cfg.Rows; r++ {
		push(x.rowTerm(r))
	}
	for c := 0; c < cfg.Cols; c++ {
		push(x.colTerm(c))
	}
	var rec func(r0, r1, c0, c1 int)
	rec = func(r0, r1, c0, c1 int) {
		h, w := r1-r0, c1-c0
		if h <= 0 || w <= 0 {
			return
		}
		if h*w <= 4 {
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					push(x.rowNode(r, c))
					push(x.colNode(r, c))
				}
			}
			return
		}
		if w >= h {
			cm := c0 + w/2
			rec(r0, r1, c0, cm)
			rec(r0, r1, cm+1, c1)
			for r := r0; r < r1; r++ {
				push(x.colNode(r, cm)) // middle strip: touches separator only
			}
			for r := r0; r < r1; r++ {
				push(x.rowNode(r, cm)) // separator: carries the crossing row wires
			}
		} else {
			rm := r0 + h/2
			rec(r0, rm, c0, c1)
			rec(rm+1, r1, c0, c1)
			for c := c0; c < c1; c++ {
				push(x.rowNode(rm, c))
			}
			for c := c0; c < c1; c++ {
				push(x.colNode(rm, c))
			}
		}
	}
	rec(0, cfg.Rows, 0, cfg.Cols)
	return order
}

// buildHierSparsity derives the block-sparse Green-table pattern from the
// truncation radius and the polyomino reach. With rhoT the sweep radius and
// reach the polyomino's Chebyshev extent, the sweep queries
//
//	W[shape cell][swept cell]  ->  chebDist <= rhoT + reach   (rhoW)
//	W[swept cell][swept cell]  ->  the diagonal
//	C[terminal][window cell]   ->  |row or col offset| <= max(rhoT, reach) (rhoC)
//
// so those balls are exactly what gets materialized. Rows are ascending
// cell indices; PairRows is symmetric by construction (chebDist is).
func (c *Calibration) buildHierSparsity() *circuit.SketchSparsity {
	cfg := c.cfg
	cells := cfg.Cells()
	rhoT := c.hierTruncRadius()
	reach := cfg.VertReach
	if cfg.HorizReach > reach {
		reach = cfg.HorizReach
	}
	rhoW := rhoT + reach
	rhoC := rhoT
	if reach > rhoC {
		rhoC = reach
	}
	sp := &circuit.SketchSparsity{
		PairRows:   make([][]int32, cells),
		SingleRows: make([][]int32, cfg.Rows+cfg.Cols),
	}
	clip := func(v, lim int) (int, int) {
		lo, hi := v-rhoW, v+rhoW
		if lo < 0 {
			lo = 0
		}
		if hi > lim-1 {
			hi = lim - 1
		}
		return lo, hi
	}
	for i := 0; i < cells; i++ {
		cell := cfg.CellAt(i)
		r0, r1 := clip(cell.Row, cfg.Rows)
		c0, c1 := clip(cell.Col, cfg.Cols)
		row := make([]int32, 0, (r1-r0+1)*(c1-c0+1))
		for r := r0; r <= r1; r++ {
			for cc := c0; cc <= c1; cc++ {
				row = append(row, int32(r*cfg.Cols+cc))
			}
		}
		sp.PairRows[i] = row
	}
	for r := 0; r < cfg.Rows; r++ {
		lo, hi := r-rhoC, r+rhoC
		if lo < 0 {
			lo = 0
		}
		if hi > cfg.Rows-1 {
			hi = cfg.Rows - 1
		}
		row := make([]int32, 0, (hi-lo+1)*cfg.Cols)
		for rr := lo; rr <= hi; rr++ {
			for cc := 0; cc < cfg.Cols; cc++ {
				row = append(row, int32(rr*cfg.Cols+cc))
			}
		}
		sp.SingleRows[r] = row
	}
	for col := 0; col < cfg.Cols; col++ {
		lo, hi := col-rhoC, col+rhoC
		if lo < 0 {
			lo = 0
		}
		if hi > cfg.Cols-1 {
			hi = cfg.Cols - 1
		}
		row := make([]int32, 0, cfg.Rows*(hi-lo+1))
		for rr := 0; rr < cfg.Rows; rr++ {
			for cc := lo; cc <= hi; cc++ {
				row = append(row, int32(rr*cfg.Cols+cc))
			}
		}
		sp.SingleRows[cfg.Rows+col] = row
	}
	return sp
}

// hierScratch is the pooled per-PoE transient state of the hierarchical
// sweep. A full-device characterization runs cells builds back to back;
// recycling these buffers keeps cold-characterization allocation bounded by
// the persistent calibration records instead of by per-PoE churn.
type hierScratch struct {
	window []int32
	winPos []int32
	wslab  []int64
}

// hierWindow builds one PoE's pin window into the scratch: the Chebyshev
// ball the truncated sweep visits, united with the polyomino (whose base
// drops the sweep also reads). Returns the ascending cell-index window and
// its cells-length inverse (-1 outside).
func hierWindow(scr *hierScratch, cfg Config, poe Cell, inShape []bool, maxRad int) (window, winPos []int32) {
	cells := cfg.Cells()
	if cap(scr.winPos) < cells {
		scr.winPos = make([]int32, cells)
	}
	winPos = scr.winPos[:cells]
	r0, r1 := poe.Row-maxRad, poe.Row+maxRad
	if r0 < 0 {
		r0 = 0
	}
	if r1 > cfg.Rows-1 {
		r1 = cfg.Rows - 1
	}
	c0, c1 := poe.Col-maxRad, poe.Col+maxRad
	if c0 < 0 {
		c0 = 0
	}
	if c1 > cfg.Cols-1 {
		c1 = cfg.Cols - 1
	}
	window = scr.window[:0]
	for m := 0; m < cells; m++ {
		r, cc := m/cfg.Cols, m%cfg.Cols
		if (r >= r0 && r <= r1 && cc >= c0 && cc <= c1) || inShape[m] {
			winPos[m] = int32(len(window))
			window = append(window, int32(m))
		} else {
			winPos[m] = -1
		}
	}
	scr.window = window
	return window, winPos
}

// weightSlab returns a zeroed rows x width weight table carved from the
// pooled slab.
func (scr *hierScratch) weightSlab(rows, width int) [][]int64 {
	need := rows * width
	if cap(scr.wslab) < need {
		scr.wslab = make([]int64, need)
	}
	slab := scr.wslab[:need]
	for i := range slab {
		slab[i] = 0
	}
	out := make([][]int64, rows)
	for k := range out {
		out[k] = slab[k*width : (k+1)*width]
	}
	return out
}

// flattenSensitivitiesWindowed is flattenSensitivities for a window-indexed
// weight table: wwin[k] is aligned with window, and only window cells can
// carry weight. The output layout is identical (ascending compIdx,
// cells-length compPos) so every calibration consumer is path-agnostic.
func flattenSensitivitiesWindowed(cells int, inShape []bool, window []int32, wwin [][]int64) (compIdx, compPos []int32, wflat [][]int64) {
	compPos = make([]int32, cells)
	for i := range compPos {
		compPos[i] = -1
	}
	keep := make([]int32, 0, len(window)) // window positions kept, ascending
	for p, m := range window {
		if inShape[m] {
			continue
		}
		for k := range wwin {
			if wwin[k][p] != 0 {
				compPos[m] = int32(len(compIdx))
				compIdx = append(compIdx, m)
				keep = append(keep, int32(p))
				break
			}
		}
	}
	wflat = make([][]int64, len(wwin))
	for k := range wflat {
		row := make([]int64, len(compIdx))
		for j, p := range keep {
			row[j] = wwin[k][p]
		}
		wflat[k] = row
	}
	return compIdx, compPos, wflat
}
