package core

import (
	"testing"

	"snvmm/internal/prng"
)

// The block-level crypto benchmarks drive the SPE hot path over many
// *distinct* blocks, the way the served SPECU does: every block fabricates
// its own crossbars, so per-block calibration cost (amortized away by the
// shared calibration cache) and per-pulse deviation cost both show up here.
// EXPERIMENTS.md and BENCH_specu.json record before/after numbers.

const benchBlocks = 32

func benchBlockSet(b *testing.B) ([]*Block, [][]byte, prng.Key) {
	b.Helper()
	eng, err := sharedEngine()
	if err != nil {
		b.Fatal(err)
	}
	blocks := make([]*Block, benchBlocks)
	pts := make([][]byte, benchBlocks)
	for i := range blocks {
		blk, err := eng.NewBlock(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		blocks[i] = blk
		pt := make([]byte, BlockSize)
		for j := range pt {
			pt[j] = byte(i*31 + j*7)
		}
		pts[i] = pt
	}
	return blocks, pts, prng.NewKey(0xB10C, 0xC0DE)
}

// BenchmarkBlockEncrypt measures one full write+encrypt per op, cycling
// through 32 distinct blocks so no single block's lazily-built state can
// hide the per-block cost.
func BenchmarkBlockEncrypt(b *testing.B) {
	blocks, pts, key := benchBlockSet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%benchBlocks]
		if err := blk.WritePlain(pts[i%benchBlocks]); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := blk.Decrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBlockDecrypt measures the decrypt half over 32 distinct blocks.
func BenchmarkBlockDecrypt(b *testing.B) {
	blocks, pts, key := benchBlockSet(b)
	for i, blk := range blocks {
		if err := blk.WritePlain(pts[i]); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%benchBlocks]
		if err := blk.Decrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := blk.Encrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkBlockRoundTrip is the steady-state served mix: decrypt + encrypt
// (a Parallel-mode read) per op, over 32 resident blocks.
func BenchmarkBlockRoundTrip(b *testing.B) {
	blocks, pts, key := benchBlockSet(b)
	for i, blk := range blocks {
		if err := blk.WritePlain(pts[i]); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i%benchBlocks]
		if err := blk.Decrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, uint64(i%benchBlocks)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewBlockFirstEncrypt isolates the cold path: fabricate a fresh
// block and run its first encryption (which triggers calibration).
func BenchmarkNewBlockFirstEncrypt(b *testing.B) {
	eng, err := sharedEngine()
	if err != nil {
		b.Fatal(err)
	}
	pt := make([]byte, BlockSize)
	key := prng.NewKey(1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := eng.NewBlock(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := blk.WritePlain(pt); err != nil {
			b.Fatal(err)
		}
		if err := blk.Encrypt(key, 0); err != nil {
			b.Fatal(err)
		}
	}
}
