package core

import (
	"context"
	"sync"
	"sync/atomic"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry/trace"
)

// The batched service layer: a SPECU fronting main memory must service
// many outstanding L2 misses at once. Serve attaches a bounded worker pool
// to the SPECU; the *Batch methods then dispatch through a shard-coalescing
// scheduler — ops are grouped by shard and submitted as ONE pool task per
// touched shard, so a run of same-shard ops pays the key snapshot and shard
// lock once instead of once per op, and two runs never contend on the same
// shard lock. Small batches and workers==1 pools take an inline sequential
// path so dispatch overhead can never lose to the plain sequential loop.
// Without Serve the batch methods degrade to that same inline path, so
// callers need not care which mode the unit is in.

// WriteOp is one element of a WriteBatch: store Data (BlockSize bytes) at
// Addr.
type WriteOp struct {
	Addr uint64
	Data []byte
}

// ReadResult is one element of a ReadBatch result.
type ReadResult struct {
	Addr uint64
	Data []byte
	Err  error
}

// inlineBatchMax is the largest batch that always dispatches inline. A
// handful of ops cannot amortize task submission plus a worker wake-up
// (each op is microseconds of pulse work, a channel handoff is a similar
// order once scheduling latency is counted), so batches at or under this
// size run the caller's goroutine straight through the sequential path.
const inlineBatchMax = 8

// Serve starts the SPECU's worker pool: an adaptive pool whose live worker
// set floats between 1 and workers goroutines behind a request queue of the
// given depth (<= 0 selects defaults; see NewAdaptivePool). Cancelling ctx
// shuts the pool down as if Close had been called. Serve fails with
// ErrServing if a pool is already attached.
func (s *SPECU) Serve(ctx context.Context, workers, depth int) error {
	p := NewAdaptivePool(1, workers, depth)
	// Wire instruments before publishing the pool so any task the pool runs
	// observes a fully attached telemetry set (happens-before via the CAS).
	if t := s.tel.Load(); t != nil {
		wirePool(p, t.reg)
	}
	if !s.pool.CompareAndSwap(nil, p) {
		p.Close()
		return ErrServing
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				if s.pool.CompareAndSwap(p, nil) {
					p.Close()
				}
			case <-p.quit:
			}
		}()
	}
	return nil
}

// Serving reports whether a worker pool is attached.
func (s *SPECU) Serving() bool { return s.pool.Load() != nil }

// Close detaches and drains the worker pool, if any. Synchronous
// operations keep working after Close; batch operations fall back to the
// sequential path.
func (s *SPECU) Close() {
	if p := s.pool.Swap(nil); p != nil {
		p.Close()
	}
}

// batchOps describes one batch to the scheduler. Each op owns result slot i
// exclusively; the scheduler's final WaitGroup (or the inline loop's
// completion) publishes those writes to the caller.
type batchOps struct {
	n    int
	addr func(i int) uint64
	// inline runs op i on the caller's goroutine, taking its own locks
	// (the sequential path). tc is the op's causal trace context (zero
	// when tracing is off), so inline ops keep their crypt/pulse children.
	inline func(i int, tc trace.Context)
	// locked runs op i inside a coalesced shard run: the run holds keyMu
	// (shared) and shard si's lock (exclusive) for its whole duration.
	// tc is the op's causal trace context (zero when tracing is off).
	locked func(i, si int, sh *shard, key prng.Key, pool *Pool, tc trace.Context)
	// fail records err for an op the scheduler never ran (cancellation,
	// missing key discovered at run start).
	fail func(i int, err error)
	// meta/opMeta are the interned trace call sites of the batch root and
	// its per-op child spans.
	meta   *trace.SpanMeta
	opMeta *trace.SpanMeta
}

// runBatch dispatches a batch: inline when no pool is attached, the pool
// cannot run anything in parallel anyway (Workers()==1), or the batch is
// too small to amortize dispatch; coalesced through the pool otherwise.
// With a tracer attached the batch becomes a trace root (A0 = op count,
// A1 = 1 when the coalesced path ran); detached, the root is a zero-value
// no-op and the whole batch allocates nothing extra.
func (s *SPECU) runBatch(ctx context.Context, ops *batchOps) {
	if ctx == nil {
		ctx = context.Background()
	}
	root := s.tracer.Load().Root(ops.meta)
	p := s.pool.Load()
	if p == nil || p.Workers() == 1 || ops.n <= inlineBatchMax {
		tc := root.Context()
		for i := 0; i < ops.n; i++ {
			if err := ctx.Err(); err != nil {
				ops.fail(i, err)
				continue
			}
			osp := tc.Start(ops.opMeta)
			ops.inline(i, osp.Context())
			osp.End(int64(i), 0)
		}
		root.End(int64(ops.n), 0)
		return
	}
	s.runCoalesced(ctx, p, ops, root.Context())
	root.End(int64(ops.n), 1)
}

// runCoalesced groups the batch's ops by shard with a counting sort (two
// slice allocations, no comparison sort) and executes one run per touched
// shard. Runs are offered to the pool with TrySubmit and claimed with a
// CAS; the caller then claims whatever the workers have not picked up and
// executes it itself. Every run has exactly one claimant, the caller never
// blocks on a full queue (it helps instead), and a nested submission can
// never deadlock. Within a run, ops execute in input order (the counting
// sort is stable), so per-slot results are deterministic for any worker
// count.
func (s *SPECU) runCoalesced(ctx context.Context, p *Pool, ops *batchOps, tc trace.Context) {
	n := ops.n
	sis := make([]uint8, n)
	var counts [NumShards + 1]int32
	for i := 0; i < n; i++ {
		si := shardIndex(ops.addr(i))
		sis[i] = uint8(si)
		counts[si+1]++
	}
	for si := 1; si <= NumShards; si++ {
		counts[si] += counts[si-1]
	}
	// counts[si] is now the start offset of shard si's run in order.
	var next [NumShards]int32
	for si := 0; si < NumShards; si++ {
		next[si] = counts[si]
	}
	order := make([]int32, n)
	for i := 0; i < n; i++ {
		si := sis[i]
		order[next[si]] = int32(i)
		next[si]++
	}

	var claimed [NumShards]atomic.Bool
	var wg sync.WaitGroup
	for si := 0; si < NumShards; si++ {
		lo, hi := counts[si], counts[si+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		si, run := si, order[lo:hi]
		// A task that loses the claim exits without Done: exactly one
		// claimant per run executes it and balances the WaitGroup, so a
		// task still queued after the caller helped is a cheap no-op.
		p.TrySubmit(func() {
			if claimed[si].CompareAndSwap(false, true) {
				s.runShard(ctx, si, run, ops, tc, false)
				wg.Done()
			}
		})
	}
	for si := 0; si < NumShards; si++ {
		if counts[si] == counts[si+1] || !claimed[si].CompareAndSwap(false, true) {
			continue
		}
		// The caller claimed a run the workers did not get to (queue full
		// or workers busy) — a "steal" in the pool's accounting, the
		// signal the adaptive sizing policy consults.
		p.NoteSteal()
		s.runShard(ctx, si, order[counts[si]:counts[si+1]], ops, tc, true)
		wg.Done()
	}
	wg.Wait()
}

// runShard executes one coalesced run: every batch op that hashed to shard
// si, in input order, under a single keyMu (shared) + shard lock
// acquisition. Cancellation is checked between ops; the remainder of a
// cancelled run fails with ctx.Err() without touching the shard further.
// Holding keyMu for the run's duration widens the PowerOff barrier to run
// granularity: a power-off concurrent with a batch waits for in-flight
// runs and the rest of the batch's runs complete under the old key or fail
// with ErrNoKey, never a mix within one run.
//
// The run's trace span lives on the shard's lane and opens only after the
// shard lock is held, so one lane's spans never overlap; A0 reports ops
// completed, A1 = 1 when the caller stole the run from the pool.
func (s *SPECU) runShard(ctx context.Context, si int, run []int32, ops *batchOps, tc trace.Context, stolen bool) {
	if err := ctx.Err(); err != nil {
		for _, i := range run {
			ops.fail(int(i), err)
		}
		return
	}
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		for _, i := range run {
			ops.fail(int(i), err)
		}
		return
	}
	pool := s.cryptPool()
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var stole int64
	if stolen {
		stole = 1
	}
	sp := tc.WithLane(uint32(laneShardBase + si)).Start(traceMetaShardRun)
	for k, i := range run {
		if err := ctx.Err(); err != nil {
			for _, j := range run[k:] {
				ops.fail(int(j), err)
			}
			sp.End(int64(k), stole)
			return
		}
		osp := sp.Context().Start(ops.opMeta)
		ops.locked(int(i), si, sh, key, pool, osp.Context())
		osp.End(0, 0)
	}
	sp.End(int64(len(run)), stole)
}

// WriteBatch stores every op's block, returning one error slot per op
// (nil on success). Ops are coalesced into one task per touched shard when
// the SPECU is serving, so distinct shards encrypt concurrently.
func (s *SPECU) WriteBatch(ctx context.Context, ops []WriteOp) []error {
	errs := make([]error, len(ops))
	s.runBatch(ctx, &batchOps{
		n:    len(ops),
		addr: func(i int) uint64 { return ops[i].Addr },
		inline: func(i int, tc trace.Context) {
			t := s.tel.Load()
			start := t.now()
			errs[i] = s.writeCtx(ops[i].Addr, ops[i].Data, tc)
			t.observeWrite(shardIndex(ops[i].Addr), start)
		},
		locked: func(i, si int, sh *shard, key prng.Key, pool *Pool, tc trace.Context) {
			t := s.tel.Load()
			start := t.now()
			errs[i] = s.writeLocked(si, sh, key, pool, ops[i].Addr, ops[i].Data, tc)
			t.observeWrite(si, start)
		},
		fail:   func(i int, err error) { errs[i] = err },
		meta:   traceMetaWriteBatch,
		opMeta: traceMetaWrite,
	})
	return errs
}

// ReadBatch reads every address, returning one ReadResult per input in
// input order. Blocks in different shards decrypt concurrently when the
// SPECU is serving.
func (s *SPECU) ReadBatch(ctx context.Context, addrs []uint64) []ReadResult {
	res := make([]ReadResult, len(addrs))
	s.runBatch(ctx, &batchOps{
		n:    len(addrs),
		addr: func(i int) uint64 { return addrs[i] },
		inline: func(i int, tc trace.Context) {
			t := s.tel.Load()
			start := t.now()
			data, err := s.readCtx(addrs[i], tc)
			t.observeRead(shardIndex(addrs[i]), start)
			res[i] = ReadResult{Addr: addrs[i], Data: data, Err: err}
		},
		locked: func(i, si int, sh *shard, key prng.Key, pool *Pool, tc trace.Context) {
			t := s.tel.Load()
			start := t.now()
			data, err := s.readLocked(si, sh, key, pool, addrs[i], tc)
			t.observeRead(si, start)
			res[i] = ReadResult{Addr: addrs[i], Data: data, Err: err}
		},
		fail: func(i int, err error) {
			res[i] = ReadResult{Addr: addrs[i], Err: err}
		},
		meta:   traceMetaReadBatch,
		opMeta: traceMetaRead,
	})
	return res
}

// EncryptBatch encrypts the blocks at addrs in place (the bulk form of the
// Serial-mode background flush). A nil addrs slice selects every currently
// plaintext block. Already-encrypted blocks are no-ops; unknown addresses
// report ErrNoBlock.
func (s *SPECU) EncryptBatch(ctx context.Context, addrs []uint64) []error {
	if addrs == nil {
		addrs = s.plaintextAddrs()
	}
	return s.cryptBatch(ctx, addrs, false)
}

// DecryptBatch decrypts the blocks at addrs in place, leaving them
// plaintext-resident — the bulk read-ahead primitive for Serial mode (a
// burst of upcoming reads pays the pulse latency once, up front).
func (s *SPECU) DecryptBatch(ctx context.Context, addrs []uint64) []error {
	return s.cryptBatch(ctx, addrs, true)
}

func (s *SPECU) cryptBatch(ctx context.Context, addrs []uint64, decrypt bool) []error {
	errs := make([]error, len(addrs))
	s.runBatch(ctx, &batchOps{
		n:    len(addrs),
		addr: func(i int) uint64 { return addrs[i] },
		inline: func(i int, tc trace.Context) {
			errs[i] = s.cryptAtCtx(addrs[i], decrypt, tc)
		},
		locked: func(i, si int, sh *shard, key prng.Key, pool *Pool, tc trace.Context) {
			errs[i] = s.cryptLocked(si, sh, key, pool, addrs[i], decrypt, tc)
		},
		fail:   func(i int, err error) { errs[i] = err },
		meta:   traceMetaCryptBatch,
		opMeta: traceMetaCrypt,
	})
	return errs
}

// cryptAt encrypts (decrypt=false) or decrypts (decrypt=true) the resident
// block at addr in place. Transitions that are already satisfied are
// no-ops.
func (s *SPECU) cryptAt(addr uint64, decrypt bool) error {
	return s.cryptAtCtx(addr, decrypt, trace.Context{})
}

// cryptAtCtx is cryptAt with the op's causal trace context (see writeCtx).
func (s *SPECU) cryptAtCtx(addr uint64, decrypt bool, tc trace.Context) error {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		return err
	}
	pool := s.cryptPool()
	si := shardIndex(addr)
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.cryptLocked(si, sh, key, pool, addr, decrypt, tc)
}

// cryptLocked is the cryptAt body. Same locking contract as writeLocked.
func (s *SPECU) cryptLocked(si int, sh *shard, key prng.Key, pool *Pool, addr uint64, decrypt bool, tc trace.Context) error {
	b, ok := sh.blocks[addr]
	if !ok {
		return errNoBlockAt(addr)
	}
	if b.Encrypted() != decrypt {
		return nil // already in the requested state
	}
	return s.blockCrypt(si, b, key, addr, decrypt, pool, tc)
}

// plaintextAddrs snapshots the addresses of currently plaintext blocks.
func (s *SPECU) plaintextAddrs() []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for addr, b := range sh.blocks {
			if !b.Encrypted() {
				out = append(out, addr)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}
