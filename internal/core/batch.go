package core

import (
	"context"
	"fmt"
	"sync"
)

// The batched service layer: a SPECU fronting main memory must service
// many outstanding L2 misses at once. Serve attaches a bounded worker pool
// to the SPECU; the *Batch methods then queue independent block operations
// behind it (one task per block, fanning each block's crossbars out as
// subtasks), with context-based cancellation. Without Serve the batch
// methods degrade gracefully to the sequential path, so callers need not
// care which mode the unit is in.

// WriteOp is one element of a WriteBatch: store Data (BlockSize bytes) at
// Addr.
type WriteOp struct {
	Addr uint64
	Data []byte
}

// ReadResult is one element of a ReadBatch result.
type ReadResult struct {
	Addr uint64
	Data []byte
	Err  error
}

// Serve starts the SPECU's worker pool: workers goroutines behind a
// request queue of the given depth (<= 0 selects defaults; see NewPool).
// Cancelling ctx shuts the pool down as if Close had been called. Serve
// fails with ErrServing if a pool is already attached.
func (s *SPECU) Serve(ctx context.Context, workers, depth int) error {
	p := NewPool(workers, depth)
	// Wire instruments before publishing the pool so any task the pool runs
	// observes a fully attached telemetry set (happens-before via the CAS).
	if t := s.tel.Load(); t != nil {
		wirePool(p, t.reg)
	}
	if !s.pool.CompareAndSwap(nil, p) {
		p.Close()
		return ErrServing
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				if s.pool.CompareAndSwap(p, nil) {
					p.Close()
				}
			case <-p.quit:
			}
		}()
	}
	return nil
}

// Serving reports whether a worker pool is attached.
func (s *SPECU) Serving() bool { return s.pool.Load() != nil }

// Close detaches and drains the worker pool, if any. Synchronous
// operations keep working after Close; batch operations fall back to the
// sequential path.
func (s *SPECU) Close() {
	if p := s.pool.Swap(nil); p != nil {
		p.Close()
	}
}

// forEach runs op(i) for i in [0, n), through the pool when one is
// attached and inline otherwise, and returns per-index submission errors
// (context cancellation, pool closure; nil where op actually ran). op(i)
// records its own outcome in a result slot it owns exclusively; the final
// WaitGroup/loop completion publishes those writes to the caller.
func (s *SPECU) forEach(ctx context.Context, n int, op func(i int)) []error {
	subErrs := make([]error, n)
	if ctx == nil {
		ctx = context.Background()
	}
	p := s.pool.Load()
	if p == nil {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				subErrs[i] = err
				continue
			}
			op(i)
		}
		return subErrs
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		if err := p.Submit(ctx, func() {
			defer wg.Done()
			op(i)
		}); err != nil {
			subErrs[i] = err
			wg.Done()
		}
	}
	wg.Wait()
	return subErrs
}

// WriteBatch stores every op's block, returning one error slot per op
// (nil on success). Independent blocks are encrypted concurrently when the
// SPECU is serving.
func (s *SPECU) WriteBatch(ctx context.Context, ops []WriteOp) []error {
	errs := make([]error, len(ops))
	sub := s.forEach(ctx, len(ops), func(i int) {
		errs[i] = s.Write(ops[i].Addr, ops[i].Data)
	})
	mergeErrs(errs, sub)
	return errs
}

// ReadBatch reads every address, returning one ReadResult per input in
// input order. Blocks in different shards decrypt concurrently when the
// SPECU is serving.
func (s *SPECU) ReadBatch(ctx context.Context, addrs []uint64) []ReadResult {
	res := make([]ReadResult, len(addrs))
	sub := s.forEach(ctx, len(addrs), func(i int) {
		data, err := s.Read(addrs[i])
		res[i] = ReadResult{Addr: addrs[i], Data: data, Err: err}
	})
	for i, err := range sub {
		if err != nil {
			res[i] = ReadResult{Addr: addrs[i], Err: err}
		}
	}
	return res
}

// EncryptBatch encrypts the blocks at addrs in place (the bulk form of the
// Serial-mode background flush). A nil addrs slice selects every currently
// plaintext block. Already-encrypted blocks are no-ops; unknown addresses
// report ErrNoBlock.
func (s *SPECU) EncryptBatch(ctx context.Context, addrs []uint64) []error {
	if addrs == nil {
		addrs = s.plaintextAddrs()
	}
	errs := make([]error, len(addrs))
	sub := s.forEach(ctx, len(addrs), func(i int) {
		errs[i] = s.cryptAt(addrs[i], false)
	})
	mergeErrs(errs, sub)
	return errs
}

// DecryptBatch decrypts the blocks at addrs in place, leaving them
// plaintext-resident — the bulk read-ahead primitive for Serial mode (a
// burst of upcoming reads pays the pulse latency once, up front).
func (s *SPECU) DecryptBatch(ctx context.Context, addrs []uint64) []error {
	errs := make([]error, len(addrs))
	sub := s.forEach(ctx, len(addrs), func(i int) {
		errs[i] = s.cryptAt(addrs[i], true)
	})
	mergeErrs(errs, sub)
	return errs
}

// mergeErrs fills nil slots of dst with the corresponding submission
// errors (a slot's op either ran and reported, or never ran).
func mergeErrs(dst, sub []error) {
	for i, err := range sub {
		if err != nil && dst[i] == nil {
			dst[i] = err
		}
	}
}

// cryptAt encrypts (decrypt=false) or decrypts (decrypt=true) the resident
// block at addr in place. Transitions that are already satisfied are
// no-ops.
func (s *SPECU) cryptAt(addr uint64, decrypt bool) error {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		return err
	}
	pool := s.pool.Load()
	si := shardIndex(addr)
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.blocks[addr]
	if !ok {
		return fmt.Errorf("core: %w: %#x", ErrNoBlock, addr)
	}
	if b.Encrypted() != decrypt {
		return nil // already in the requested state
	}
	return s.blockCrypt(si, b, key, addr, decrypt, pool)
}

// plaintextAddrs snapshots the addresses of currently plaintext blocks.
func (s *SPECU) plaintextAddrs() []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for addr, b := range sh.blocks {
			if !b.Encrypted() {
				out = append(out, addr)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}
