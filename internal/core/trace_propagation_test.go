package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
)

// TestTracePropagationAcrossPowerOff races traced coalesced batches
// against the PowerOff barrier (run it under -race) and then checks the
// causal invariants of everything the ring recorded: every non-root span's
// parent exists and carries the same trace ID, and the Chrome export of
// the same ring passes the schema validator (monotone timestamps per tid,
// well-nested, every parent resolvable).
func TestTracePropagationAcrossPowerOff(t *testing.T) {
	withProcs(t, 4)
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	// Ring large enough that nothing from this workload is overwritten:
	// orphan pruning must find zero candidates, not paper over them.
	tr := trace.New(1 << 18)
	s.EnableTracing(tr)
	key := prng.NewKey(0x7A0, 0x7CE)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background(), 4, 8); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 24
	ops := make([]WriteOp, n)
	addrs := make([]uint64, n)
	for i := range ops {
		addrs[i] = uint64(i) * BlockSize
		ops[i] = WriteOp{Addr: addrs[i], Data: batchPayload(i)}
	}
	for i, err := range s.WriteBatch(context.Background(), ops) {
		if err != nil {
			t.Fatalf("seed write %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 4; iter++ {
				if g%2 == 0 {
					for i, err := range s.WriteBatch(context.Background(), ops) {
						if err != nil && !errors.Is(err, ErrNoKey) {
							t.Errorf("batch write slot %d: %v", i, err)
						}
					}
				} else {
					for i, r := range s.ReadBatch(context.Background(), addrs) {
						if r.Err != nil && !errors.Is(r.Err, ErrNoKey) {
							t.Errorf("batch read slot %d: %v", i, r.Err)
						}
					}
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(500 * time.Microsecond) // let some shard runs get in flight
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	for i, r := range s.ReadBatch(context.Background(), addrs) {
		if r.Err != nil {
			t.Errorf("read %d after power cycle: %v", i, r.Err)
		}
	}

	recs := tr.Spans(tr.Cap())
	if len(recs) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	byID := make(map[uint64]trace.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.SpanID] = r
	}
	names := map[string]int{}
	for _, r := range recs {
		names[r.Subsystem+"."+r.Name]++
		if r.ParentID == 0 {
			if r.TraceID != r.SpanID {
				t.Errorf("root span %d: trace ID %d != span ID", r.SpanID, r.TraceID)
			}
			continue
		}
		p, ok := byID[r.ParentID]
		if !ok {
			t.Errorf("span %d (%s.%s): parent %d not recorded (orphan)",
				r.SpanID, r.Subsystem, r.Name, r.ParentID)
			continue
		}
		if p.TraceID != r.TraceID {
			t.Errorf("span %d: trace ID %d but parent %d has %d",
				r.SpanID, r.TraceID, p.SpanID, p.TraceID)
		}
	}
	// The full batch hierarchy must have shown up: roots, shard runs,
	// per-op spans, and block crypts.
	for _, want := range []string{
		"specu.write_batch", "specu.read_batch", "specu.shard_run",
		"specu.write", "specu.read", "specu.encrypt", "specu.decrypt",
	} {
		if names[want] == 0 {
			t.Errorf("no %s spans recorded (got %v)", want, names)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, tr.Cap()); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("Chrome export invalid: %v", err)
	}
}

// TestPoolStealRate pins the steal-rate accounting: the rate is
// steals/(steals+completed), exported live on the specu.pool.steal_rate
// gauge.
func TestPoolStealRate(t *testing.T) {
	withProcs(t, 4)
	p := NewAdaptivePool(1, 2, 8)
	defer p.Close()
	reg := telemetry.New()
	p.SetTelemetry(reg)

	if got := p.StealRate(); got != 0 {
		t.Errorf("StealRate() = %v before any work, want 0", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.NoteSteal()
	if got, want := p.StealRate(), 0.25; got != want {
		t.Errorf("StealRate() = %v after 1 steal / 3 tasks, want %v", got, want)
	}
	if got := reg.FloatGauge("specu.pool.steal_rate").Load(); got != 0.25 {
		t.Errorf("steal_rate gauge = %v, want 0.25", got)
	}
	if got := reg.Counter("specu.pool.steals").Load(); got != 1 {
		t.Errorf("steals counter = %d, want 1", got)
	}
}

// TestCoalescedBatchStealRateSignal drives a coalesced batch through a
// saturated pool and checks the steal accounting moved: the caller-claimed
// runs must register as steals.
func TestCoalescedBatchStealRateSignal(t *testing.T) {
	withProcs(t, 4)
	s, addrs := benchSPECU(t, 64)
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	// Tiny queue: most shard runs are claimed back by the caller.
	if err := s.Serve(context.Background(), 2, 1); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range s.ReadBatch(context.Background(), addrs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	p := s.pool.Load()
	if p == nil {
		t.Fatal("no pool attached")
	}
	if p.steals.Load() == 0 {
		t.Error("no steals recorded through a depth-1 queue")
	}
	if rate := p.StealRate(); rate <= 0 || rate > 1 {
		t.Errorf("StealRate() = %v, want in (0, 1]", rate)
	}
}
