package core

import (
	"context"
	"fmt"

	"snvmm/internal/xbar"
)

// Precharacterize runs the full-device SPECU characterization eagerly — the
// paper's deployment-time step (§4–5) — instead of letting the first pulse
// at each PoE pay for it lazily. It warms the process-wide calibration for
// this engine's fabrication identity across all PoEs, fanning the per-PoE
// work over up to `workers` goroutines (<= 0 or too large selects
// GOMAXPROCS). Blocks fabricated afterwards by NewBlock find every record
// already built, so first-touch encryption latency is flat.
//
// The shared identity exists only for unvaried configurations: with
// VarFrac != 0 every block is a distinct fabrication identity that cannot
// be characterized before the block exists, so Precharacterize refuses
// rather than silently warming a calibration nothing will reuse.
//
// Cancelling ctx stops the sweep early with the context error; PoEs
// characterized before the cancellation stay warm.
func (e *Engine) Precharacterize(ctx context.Context, workers int) error {
	if e.P.Xbar.VarFrac != 0 {
		return fmt.Errorf("core: Precharacterize needs a shared fabrication identity (VarFrac == 0); varied configurations calibrate per block")
	}
	xb, err := xbar.New(e.P.Xbar)
	if err != nil {
		return err
	}
	// CalibrationFor folds the seed out of the identity, so the calibration
	// warmed here is the same object every NewBlock will fetch.
	cal, err := xbar.CalibrationFor(xb)
	if err != nil {
		return err
	}
	return cal.WarmAll(ctx, workers)
}

// Precharacterize is the SPECU-level delegate of Engine.Precharacterize,
// the optional power-on step between PowerOn (key load) and serving
// traffic.
func (s *SPECU) Precharacterize(ctx context.Context, workers int) error {
	return s.eng.Precharacterize(ctx, workers)
}
