package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// testEngine builds the default engine once; the ILP placement is the
// expensive part and is safe to share across tests (engines are immutable,
// and the sync.Once keeps the lazy build race-clean under t.Parallel and
// the fuzz workers).
var (
	testEngine     *Engine
	testEngineErr  error
	testEngineOnce sync.Once
)

func sharedEngine() (*Engine, error) {
	testEngineOnce.Do(func() {
		testEngine, testEngineErr = NewEngine(DefaultParams())
	})
	return testEngine, testEngineErr
}

func engineForTest(t *testing.T) *Engine {
	t.Helper()
	e, err := sharedEngine()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineDefaultPlacement(t *testing.T) {
	e := engineForTest(t)
	// The paper's headline: 16 PoEs secure an 8x8 crossbar.
	if got := e.PoECount(); got != 16 {
		t.Errorf("PoE count = %d, want 16", got)
	}
	if e.DecryptLatencyCycles() != 16 || e.EncryptLatencyCycles() != 16 {
		t.Errorf("latencies %d/%d, want 16/16", e.DecryptLatencyCycles(), e.EncryptLatencyCycles())
	}
	// Section 6.4: 16 pulses x 100ns = 1.6us per block.
	if got := e.EncryptTime(); got < 1.59e-6 || got > 1.61e-6 {
		t.Errorf("EncryptTime = %g, want 1.6us", got)
	}
	if e.CrossbarsPerBlock() != 4 {
		t.Errorf("CrossbarsPerBlock = %d, want 4", e.CrossbarsPerBlock())
	}
}

func TestNewEngineExplicitPoEs(t *testing.T) {
	p := DefaultParams()
	p.PoEs = []xbar.Cell{{Row: 0, Col: 0}, {Row: 7, Col: 7}}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.PoECount() != 2 {
		t.Errorf("PoECount = %d", e.PoECount())
	}
	p.PoEs = []xbar.Cell{{Row: 9, Col: 0}}
	if _, err := NewEngine(p); err == nil {
		t.Error("expected out-of-bounds error")
	}
}

func TestNewEngineBadConfig(t *testing.T) {
	p := DefaultParams()
	p.Xbar.Rows = 1
	if _, err := NewEngine(p); err == nil {
		t.Error("expected validation error")
	}
}

func TestBlockEncryptDecryptRoundTrip(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	key := prng.NewKey(rng.Uint64(), rng.Uint64())
	for trial := 0; trial < 5; trial++ {
		pt := make([]byte, BlockSize)
		rng.Read(pt)
		if err := b.WritePlain(pt); err != nil {
			t.Fatal(err)
		}
		if err := b.Encrypt(key, 42); err != nil {
			t.Fatal(err)
		}
		ct := b.ReadRaw()
		if bytes.Equal(ct, pt) {
			t.Error("ciphertext equals plaintext")
		}
		if err := b.Decrypt(key, 42); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadPlain()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip failed:\npt  %x\ngot %x", pt, got)
		}
	}
}

func TestBlockWrongKeyFails(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, BlockSize)
	for i := range pt {
		pt[i] = byte(i)
	}
	key := prng.NewKey(111, 222)
	if err := b.WritePlain(pt); err != nil {
		t.Fatal(err)
	}
	if err := b.Encrypt(key, 0); err != nil {
		t.Fatal(err)
	}
	wrong := key.FlipBit(17)
	if err := b.Decrypt(wrong, 0); err != nil {
		t.Fatal(err)
	}
	got, _ := b.ReadPlain()
	if bytes.Equal(got, pt) {
		t.Error("wrong key recovered the plaintext")
	}
}

func TestBlockWrongTweakFails(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(4)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, BlockSize)
	pt[0] = 0xA5
	key := prng.NewKey(5, 6)
	if err := b.WritePlain(pt); err != nil {
		t.Fatal(err)
	}
	if err := b.Encrypt(key, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.Decrypt(key, 101); err != nil {
		t.Fatal(err)
	}
	got, _ := b.ReadPlain()
	if bytes.Equal(got, pt) {
		t.Error("wrong tweak recovered the plaintext")
	}
}

func TestBlockStateMachine(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(5)
	if err != nil {
		t.Fatal(err)
	}
	key := prng.NewKey(1, 2)
	pt := make([]byte, BlockSize)
	if err := b.WritePlain(pt); err != nil {
		t.Fatal(err)
	}
	if err := b.Decrypt(key, 0); err == nil {
		t.Error("decrypting a plaintext block should fail")
	}
	if err := b.Encrypt(key, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Encrypt(key, 0); err == nil {
		t.Error("double encryption should fail")
	}
	if _, err := b.ReadPlain(); err == nil {
		t.Error("ReadPlain on ciphertext should fail")
	}
	if err := b.WritePlain(pt); err == nil {
		t.Error("WritePlain on ciphertext should fail")
	}
	if err := b.WritePlain(pt[:10]); err == nil {
		t.Error("short write should fail")
	}
}

func TestBlockWearGrows(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(6)
	if err != nil {
		t.Fatal(err)
	}
	key := prng.NewKey(9, 9)
	pt := make([]byte, BlockSize)
	if err := b.WritePlain(pt); err != nil {
		t.Fatal(err)
	}
	w0 := b.Wear()
	if err := b.Encrypt(key, 0); err != nil {
		t.Fatal(err)
	}
	w1 := b.Wear()
	if w1 <= w0 {
		t.Errorf("wear did not grow: %d -> %d", w0, w1)
	}
}

func TestSubKeyDistinct(t *testing.T) {
	k := prng.NewKey(0xABC, 0xDEF)
	seen := map[prng.Key]bool{}
	for tweak := uint64(0); tweak < 16; tweak++ {
		for idx := 0; idx < 4; idx++ {
			sk := subKey(k, tweak, idx)
			if seen[sk] {
				t.Errorf("subkey collision at tweak=%d idx=%d", tweak, idx)
			}
			seen[sk] = true
		}
	}
}

func TestCipherRoundTrip(t *testing.T) {
	e := engineForTest(t)
	c, err := NewCipher(e, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		key := prng.NewKey(rng.Uint64(), rng.Uint64())
		pt := make([]byte, c.BlockBytes())
		rng.Read(pt)
		ct, err := c.Encrypt(key, pt)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ct, pt) {
			t.Error("cipher left plaintext unchanged")
		}
		back, err := c.Decrypt(key, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("cipher round trip failed")
		}
	}
}

func TestCipherSizes(t *testing.T) {
	e := engineForTest(t)
	c, err := NewCipher(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockBytes() != 16 {
		t.Errorf("BlockBytes = %d, want 16 (128 bits)", c.BlockBytes())
	}
	if _, err := c.Encrypt(prng.NewKey(1, 1), make([]byte, 5)); err == nil {
		t.Error("expected size error")
	}
	if _, err := c.Decrypt(prng.NewKey(1, 1), make([]byte, 5)); err == nil {
		t.Error("expected size error")
	}
}

func TestCipherKeyAvalanche(t *testing.T) {
	// Flipping any single key bit should change the ciphertext for most
	// bits flipped (a weak form of the Table 2 key-avalanche property).
	e := engineForTest(t)
	c, err := NewCipher(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := prng.NewKey(0x123456789AB, 0x5566778899A)
	pt := make([]byte, c.BlockBytes())
	base, err := c.Encrypt(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < prng.KeyBits; i += 7 {
		ct, err := c.Encrypt(key.FlipBit(i), pt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ct, base) {
			changed++
		}
	}
	if changed < 10 {
		t.Errorf("only %d/13 key-bit flips changed the ciphertext", changed)
	}
}

func TestCipherPlaintextAvalanche(t *testing.T) {
	// Changing one plaintext cell changes more than that cell in the
	// ciphertext (data-dependence through the sneak environment).
	e := engineForTest(t)
	c, err := NewCipher(e, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := prng.NewKey(42, 43)
	pt := make([]byte, c.BlockBytes())
	base, err := c.Encrypt(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	spread := 0
	for trial := 0; trial < 16; trial++ {
		pt2 := make([]byte, len(pt))
		copy(pt2, pt)
		pt2[trial] ^= 0x3
		ct, err := c.Encrypt(key, pt2)
		if err != nil {
			t.Fatal(err)
		}
		diffBytes := 0
		for i := range ct {
			if ct[i] != base[i] {
				diffBytes++
			}
		}
		if diffBytes > 1 {
			spread++
		}
	}
	if spread == 0 {
		t.Error("plaintext changes never spread beyond their own cell")
	}
}
