package core

import (
	"fmt"

	"snvmm/internal/device"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// Cipher is a reusable single-crossbar SPE encryptor. The randomness data
// sets of Section 6.1 are built from independent 128-bit block encryptions
// (one 8x8 MLC-2 crossbar holds exactly 128 bits), and reusing one
// fabricated crossbar amortizes the calibration cost across millions of
// block encryptions.
type Cipher struct {
	eng *Engine
	xb  *xbar.Crossbar
	cal *xbar.Calibration
}

// NewCipher fabricates a crossbar (with the engine's parametric variation
// and the given fabrication seed) and calibrates it through the process-wide
// calibration cache.
func NewCipher(eng *Engine, seed int64) (*Cipher, error) {
	cfg := eng.P.Xbar
	cfg.Seed = seed
	xb, err := xbar.New(cfg)
	if err != nil {
		return nil, err
	}
	cal, err := xbar.CalibrationFor(xb)
	if err != nil {
		return nil, err
	}
	return &Cipher{eng: eng, xb: xb, cal: cal}, nil
}

// BlockBytes is the cipher's block size in bytes (16 for 8x8 MLC-2).
func (c *Cipher) BlockBytes() int { return c.xb.BlockBytes() }

// SetTraceSink attaches a per-pulse side-channel trace sink to the cipher's
// crossbar (see xbar.PulseTraceSink); nil detaches it. Red-team harnesses
// use this to observe every pulse an Encrypt/Decrypt call emits.
func (c *Cipher) SetTraceSink(sink xbar.PulseTraceSink, mode xbar.TraceMode) error {
	return c.xb.SetTraceSink(sink, mode)
}

// Encrypt writes pt into the crossbar, applies the keyed pulse schedule,
// and returns the resulting ciphertext.
func (c *Cipher) Encrypt(key prng.Key, pt []byte) ([]byte, error) {
	if len(pt) != c.BlockBytes() {
		return nil, fmt.Errorf("core: Cipher.Encrypt needs %d bytes, got %d", c.BlockBytes(), len(pt))
	}
	if err := c.xb.WriteBlock(pt); err != nil {
		return nil, err
	}
	sched := prng.DeriveSchedule(key, len(c.eng.Placement), device.NumPulses)
	for step := 0; step < len(sched.Order); step++ {
		p := c.eng.Placement[sched.Order[step]]
		if err := c.xb.ApplyPulse(c.cal, p, sched.Classes[step]); err != nil {
			return nil, err
		}
	}
	return c.xb.ReadBlock(), nil
}

// Decrypt reverses Encrypt on the crossbar's current contents (which must
// be the ciphertext produced by the matching Encrypt call or an explicitly
// written ciphertext).
func (c *Cipher) Decrypt(key prng.Key, ct []byte) ([]byte, error) {
	if len(ct) != c.BlockBytes() {
		return nil, fmt.Errorf("core: Cipher.Decrypt needs %d bytes, got %d", c.BlockBytes(), len(ct))
	}
	if err := c.xb.WriteBlock(ct); err != nil {
		return nil, err
	}
	sched := prng.DeriveSchedule(key, len(c.eng.Placement), device.NumPulses)
	for step := len(sched.Order) - 1; step >= 0; step-- {
		p := c.eng.Placement[sched.Order[step]]
		if err := c.xb.ApplyPulse(c.cal, p, xbar.InverseClass(sched.Classes[step])); err != nil {
			return nil, err
		}
	}
	return c.xb.ReadBlock(), nil
}
