package core

import (
	"bytes"
	"context"
	"testing"

	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// TestPrecharacterize checks the power-on warm sweep succeeds on the shared
// default identity and that blocks fabricated afterwards work unchanged.
func TestPrecharacterize(t *testing.T) {
	e := engineForTest(t)
	if err := e.Precharacterize(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	// A second sweep over warm records is a no-op.
	if err := e.Precharacterize(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	blk, err := e.NewBlock(7)
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, BlockSize)
	for i := range pt {
		pt[i] = byte(i * 31)
	}
	if err := blk.WritePlain(pt); err != nil {
		t.Fatal(err)
	}
	key := prng.NewKey(0xAB, 0xCD)
	if err := blk.Encrypt(key, 3); err != nil {
		t.Fatal(err)
	}
	if err := blk.Decrypt(key, 3); err != nil {
		t.Fatal(err)
	}
	got, err := blk.ReadPlain()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip failed after precharacterize")
	}
}

// TestPrecharacterizeVaried checks the refusal path: a varied fabrication
// has no shared identity to warm.
func TestPrecharacterizeVaried(t *testing.T) {
	p := DefaultParams()
	p.Xbar.VarFrac = 0.05
	p.PoEs = []xbar.Cell{{Row: 0, Col: 0}, {Row: 7, Col: 7}}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precharacterize(context.Background(), 2); err == nil {
		t.Fatal("expected refusal for VarFrac != 0")
	}
}
