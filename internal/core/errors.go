package core

import (
	"errors"
	"fmt"
)

// Typed errors for the SPECU service layer. Callers match them with
// errors.Is; wrapped variants carry the address or count that triggered
// them.
var (
	// ErrNoKey is returned by any encrypt/decrypt path invoked while the
	// SPECU's volatile key register is empty (powered down, or never
	// powered on). It is also returned by PowerOff when plaintext blocks
	// remain but no key is available to secure them.
	ErrNoKey = errors.New("core: SPECU has no key (powered down?)")

	// ErrPoweredOff is the name crash-injection harnesses match on when an
	// operation lands on a power-cycled SPECU. It is an alias of ErrNoKey —
	// the SPECU's only powered-off observable is its empty key register —
	// so errors.Is(err, ErrPoweredOff) and errors.Is(err, ErrNoKey) are
	// interchangeable.
	ErrPoweredOff = ErrNoKey

	// ErrKeyLoaded is returned by PowerOn when a different key is already
	// installed: silently replacing it would leave every resident
	// ciphertext block undecryptable.
	ErrKeyLoaded = errors.New("core: SPECU already holds a different key")

	// ErrNoBlock is returned when an operation addresses a block that was
	// never written.
	ErrNoBlock = errors.New("core: no block at address")

	// ErrClosed is returned when work is submitted to a worker pool that
	// has been closed (or whose serve context was cancelled).
	ErrClosed = errors.New("core: worker pool closed")

	// ErrServing is returned by Serve when a worker pool is already
	// running for this SPECU.
	ErrServing = errors.New("core: SPECU already serving")
)

// errNoBlockAt wraps ErrNoBlock with the offending address.
func errNoBlockAt(addr uint64) error {
	return fmt.Errorf("core: %w: %#x", ErrNoBlock, addr)
}
