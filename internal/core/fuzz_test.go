package core

import (
	"bytes"
	"testing"

	"snvmm/internal/prng"
)

// FuzzSPERoundTrip asserts the core SPE identity on arbitrary inputs:
// encrypting a block with any key and tweak and decrypting with the same
// (key, tweak) restores the plaintext exactly. (Ciphertext != plaintext is
// asserted by the deterministic tests on known inputs; a keyed permutation
// can in principle fix a particular block, so it is not a fuzz invariant.)
// The block (and its expensive fabrication/ILP state) is built once and
// reused — a full round trip returns it to the plaintext-writable state.
func FuzzSPERoundTrip(f *testing.F) {
	eng, err := sharedEngine()
	if err != nil {
		f.Fatal(err)
	}
	b, err := eng.NewBlock(1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), uint64(2), uint64(0x40), []byte("seed corpus"))
	f.Add(uint64(0), uint64(0), uint64(0), []byte{})
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), bytes.Repeat([]byte{0xFF}, BlockSize))
	f.Fuzz(func(t *testing.T, a, v, tweak uint64, raw []byte) {
		data := make([]byte, BlockSize)
		copy(data, raw)
		key := prng.NewKey(a, v)
		if err := b.WritePlain(data); err != nil {
			t.Fatalf("WritePlain: %v", err)
		}
		if err := b.Encrypt(key, tweak); err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		if err := b.Decrypt(key, tweak); err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		got, err := b.ReadPlain()
		if err != nil {
			t.Fatalf("ReadPlain: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip broke: key (%#x,%#x) tweak %#x\n got %x\nwant %x", a, v, tweak, got, data)
		}
	})
}
