package core

import (
	"testing"

	"snvmm/internal/telemetry"
)

// Telemetry ablation: the same single-goroutine SPECU encrypt path with
// instrumentation detached versus attached. The "off" variant is the number
// that must stay glued to the pre-telemetry BlockEncrypt baseline — the
// disabled fast path is one atomic load and a branch per call site — and
// the on/off delta bounds the full enabled cost (two clock reads plus a
// handful of padded atomic updates per operation, against a ~79 µs pulse
// sequence). Both run under the make-bench 'BenchmarkSPECU' pattern so the
// pair is archived in BENCH_specu.json.

// benchAblationWrite drives b.N write+encrypt operations through s.
func benchAblationWrite(b *testing.B, s *SPECU, addrs []uint64) {
	b.Helper()
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(addrs[i%len(addrs)], data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSPECUEncryptTelemetryOff is the uninstrumented reference.
func BenchmarkSPECUEncryptTelemetryOff(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	benchAblationWrite(b, s, addrs)
}

// BenchmarkSPECUEncryptTelemetryOn is the same workload with a live
// registry attached (per-shard histograms, counters, gauges all updating).
func BenchmarkSPECUEncryptTelemetryOn(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	s.EnableTelemetry(telemetry.New())
	benchAblationWrite(b, s, addrs)
}
