package core

import (
	"context"
	"testing"

	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
)

// Telemetry ablation: the same single-goroutine SPECU encrypt path with
// instrumentation detached versus attached. The "off" variant is the number
// that must stay glued to the pre-telemetry BlockEncrypt baseline — the
// disabled fast path is one atomic load and a branch per call site — and
// the on/off delta bounds the full enabled cost (two clock reads plus a
// handful of padded atomic updates per operation, against a ~79 µs pulse
// sequence). Both run under the make-bench 'BenchmarkSPECU' pattern so the
// pair is archived in BENCH_specu.json.

// benchAblationWrite drives b.N write+encrypt operations through s.
func benchAblationWrite(b *testing.B, s *SPECU, addrs []uint64) {
	b.Helper()
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Write(addrs[i%len(addrs)], data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSPECUEncryptTelemetryOff is the uninstrumented reference.
func BenchmarkSPECUEncryptTelemetryOff(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	benchAblationWrite(b, s, addrs)
}

// BenchmarkSPECUEncryptTelemetryOn is the same workload with a live
// registry attached (per-shard histograms, counters, gauges all updating).
func BenchmarkSPECUEncryptTelemetryOn(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	s.EnableTelemetry(telemetry.New())
	benchAblationWrite(b, s, addrs)
}

// benchAblationReadBatch drives b.N coalesced ReadBatch passes through a
// served SPECU — the batch hot path the causal tracer instruments.
func benchAblationReadBatch(b *testing.B, s *SPECU, addrs []uint64) {
	b.Helper()
	ctx := context.Background()
	if err := s.Serve(ctx, 4, 2*len(addrs)); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Warm pass: fabricate the working set before timing.
	for _, r := range s.ReadBatch(ctx, addrs) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.ReadBatch(ctx, addrs); res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
	b.ReportMetric(float64(b.N*len(addrs))/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSPECUReadBatchTraceOff is the tracing ablation reference: the
// trace code is compiled in but no tracer is attached, so every span site
// is a nil-receiver no-op. This is the number the detached-cost acceptance
// bound holds against (the coalesced alloc-regression test pins allocs).
func BenchmarkSPECUReadBatchTraceOff(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	benchAblationReadBatch(b, s, addrs)
}

// BenchmarkSPECUReadBatchTraceOn is the same workload recording the full
// span hierarchy (batch root, shard runs, per-op, crypt, pulse trains)
// into a live ring.
func BenchmarkSPECUReadBatchTraceOn(b *testing.B) {
	s, addrs := benchSPECU(b, benchBlocks)
	s.EnableTracing(trace.New(trace.DefaultRingSize))
	benchAblationReadBatch(b, s, addrs)
}
