// Package core implements the paper's contribution: Sneak-Path Encryption
// (SPE) and the Sneak Path Encryption Control Unit (SPECU) that orchestrates
// it between the L2 cache and the NVMM.
//
// A 64-byte cache block is stored across four 8x8 MLC-2 crossbars (Section
// 6.2.1). The ILP of Table 1 (package poe) fixes the covering set of points
// of encryption; the 88-bit key, split into address and voltage seeds
// (package prng), selects the order in which the PoEs fire and the pulse
// class applied at each. Encryption applies the keyed pulse sequence with
// sneak paths enabled; decryption applies the hysteresis-matched inverse
// pulses in reverse order (package xbar).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"snvmm/internal/device"
	"snvmm/internal/poe"
	"snvmm/internal/prng"
	"snvmm/internal/telemetry/trace"
	"snvmm/internal/xbar"
)

// traceMetaPulseTrain is the span one crossbar's keyed pulse sequence
// records: A0 = pulse count (the PoE placement size — public geometry,
// not key material), A1 = crossbar index within the block.
var traceMetaPulseTrain = &trace.SpanMeta{Subsystem: "xbar", Name: "pulse_train"}

// BlockSize is the cache-block granularity SPE encrypts, in bytes.
const BlockSize = 64

// PulseTime is the paper's per-PoE write-pulse latency (Section 6.4).
const PulseTime = 100e-9 // seconds

// DefaultSecuritySlack is the Table 1 slack S at which the ILP optimum for
// the default 8x8 crossbar is exactly the paper's 16 PoEs.
const DefaultSecuritySlack = 56

// Params configures an SPE engine.
type Params struct {
	Xbar xbar.Config
	// SecuritySlack is Table 1's S. Negative means DefaultSecuritySlack.
	SecuritySlack int
	// MaxNodes bounds the placement ILP search (0 = solver default).
	MaxNodes int
	// PoEs, if non-nil, skips the ILP and uses this placement directly.
	PoEs []xbar.Cell
}

// DefaultParams returns the paper's configuration: 8x8 MLC-2 crossbars with
// a 16-PoE covering set.
func DefaultParams() Params {
	return Params{Xbar: xbar.DefaultConfig(), SecuritySlack: -1}
}

// Engine holds the per-design state of SPE: the crossbar geometry and the
// PoE placement. Engines are immutable after construction and shared by all
// blocks of a device.
type Engine struct {
	P         Params
	Placement []xbar.Cell
}

// NewEngine validates the configuration and solves the PoE placement ILP.
func NewEngine(p Params) (*Engine, error) {
	if err := p.Xbar.Validate(); err != nil {
		return nil, err
	}
	if p.Xbar.Cells()%4 != 0 {
		return nil, fmt.Errorf("core: crossbar cell count %d not byte-aligned", p.Xbar.Cells())
	}
	if BlockSize%(p.Xbar.Cells()/4) != 0 {
		return nil, fmt.Errorf("core: %d-byte blocks not divisible into %d-byte crossbars", BlockSize, p.Xbar.Cells()/4)
	}
	e := &Engine{P: p}
	if p.PoEs != nil {
		for _, c := range p.PoEs {
			if !p.Xbar.InBounds(c) {
				return nil, fmt.Errorf("core: PoE %+v out of bounds", c)
			}
		}
		e.Placement = append([]xbar.Cell(nil), p.PoEs...)
		return e, nil
	}
	slack := p.SecuritySlack
	if slack < 0 {
		slack = DefaultSecuritySlack
		if slack > p.Xbar.Cells()-1 {
			slack = p.Xbar.Cells() - 1
		}
	}
	res, err := poe.Solve(poe.Spec{Cfg: p.Xbar, S: slack, MaxNodes: p.MaxNodes})
	if err != nil {
		return nil, fmt.Errorf("core: PoE placement: %w", err)
	}
	e.Placement = res.PoEs
	return e, nil
}

// PoECount returns the number of pulses per crossbar encryption — also the
// scheme's latency in memory cycles (one pulse per cycle, crossbars of a
// block operate in parallel).
func (e *Engine) PoECount() int { return len(e.Placement) }

// DecryptLatencyCycles is the read-path latency SPE adds (Table 3: 16).
func (e *Engine) DecryptLatencyCycles() int { return e.PoECount() }

// EncryptLatencyCycles is the latency of the encryption phase after a write
// or a parallel-mode re-encryption.
func (e *Engine) EncryptLatencyCycles() int { return e.PoECount() }

// EncryptTime is the wall-clock time to encrypt one block (Section 6.4:
// 16 pulses x 100 ns = 1.6 us for the default configuration).
func (e *Engine) EncryptTime() float64 { return float64(e.PoECount()) * PulseTime }

// CrossbarsPerBlock returns how many crossbars store one cache block.
func (e *Engine) CrossbarsPerBlock() int {
	return BlockSize / (e.P.Xbar.Cells() / 4)
}

// Block is one cache-block's worth of NVMM storage: several crossbars with
// their calibrations, encrypted and decrypted as a unit.
type Block struct {
	eng       *Engine
	xbs       []*xbar.Crossbar
	cals      []*xbar.Calibration
	encrypted bool
	scratch   cryptScratch
}

// cryptScratch is the block's reusable crypt fan-out state. crypt runs under
// the block's shard lock, so at most one fan-out is live per block and the
// buffers can be flat fields instead of per-call allocations (the dominant
// allocation source on the sharded read path). tasks are built once in
// NewBlock and capture only (block, index); the per-call parameters live in
// the struct, published to claimants by the claimed[i].Store(false) /
// CompareAndSwap pair. A task left in the pool queue from a previous call
// either loses the CAS (slot already claimed or call finished with claimed
// all true) or legitimately helps the call in progress — indistinguishable
// from a freshly submitted task, because the closures are identical.
type cryptScratch struct {
	key     prng.Key
	tweak   uint64
	decrypt bool
	tc      trace.Context // the call's causal context; zero when untraced
	errs    []error
	claimed []atomic.Bool
	tasks   []func()
	wg      sync.WaitGroup
}

// NewBlock fabricates the crossbars of one block. seed individualizes the
// per-cell parametric variation of this block's crossbars (only meaningful
// when the config's VarFrac > 0). Calibrations come from the process-wide
// cache, so an unvaried memory fabricates blocks without re-characterizing
// the same device identity per block.
func (e *Engine) NewBlock(seed int64) (*Block, error) {
	n := e.CrossbarsPerBlock()
	b := &Block{eng: e, xbs: make([]*xbar.Crossbar, n), cals: make([]*xbar.Calibration, n)}
	for i := range b.xbs {
		cfg := e.P.Xbar
		cfg.Seed = seed*257 + int64(i)
		xb, err := xbar.New(cfg)
		if err != nil {
			return nil, err
		}
		b.xbs[i] = xb
		if b.cals[i], err = xbar.CalibrationFor(xb); err != nil {
			return nil, err
		}
	}
	b.scratch.errs = make([]error, n)
	b.scratch.claimed = make([]atomic.Bool, n)
	b.scratch.tasks = make([]func(), n)
	for i := range b.scratch.tasks {
		i := i
		// claimed starts false; mark every slot consumed so a task cannot
		// run crypt work before the first crypt call arms the scratch.
		b.scratch.claimed[i].Store(true)
		b.scratch.tasks[i] = func() { b.runCryptTask(i) }
	}
	return b, nil
}

// Encrypted reports whether the block currently holds ciphertext.
func (b *Block) Encrypted() bool { return b.encrypted }

// bytesPerXbar returns the data bytes stored in one crossbar.
func (b *Block) bytesPerXbar() int { return b.xbs[0].BlockBytes() }

// WritePlain programs plaintext into the block (the paper's write phase).
// The block must not currently be encrypted.
func (b *Block) WritePlain(data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("core: WritePlain needs %d bytes, got %d", BlockSize, len(data))
	}
	if b.encrypted {
		return fmt.Errorf("core: block is encrypted; decrypt before writing")
	}
	per := b.bytesPerXbar()
	for i, xb := range b.xbs {
		if err := xb.WriteBlock(data[i*per : (i+1)*per]); err != nil {
			return err
		}
	}
	return nil
}

// ReadPlain reads the plaintext; it fails if the block is encrypted.
func (b *Block) ReadPlain() ([]byte, error) {
	if b.encrypted {
		return nil, fmt.Errorf("core: block is encrypted")
	}
	return b.ReadRaw(), nil
}

// ReadRaw dumps the block's current stored bits regardless of encryption
// state — the view an attacker with physical access obtains.
func (b *Block) ReadRaw() []byte {
	out := make([]byte, 0, BlockSize)
	for _, xb := range b.xbs {
		out = append(out, xb.ReadBlock()...)
	}
	return out
}

// subKey derives the per-crossbar key by folding the block tweak (its
// physical address) and the crossbar index into both seeds. The SPECU
// performs the same derivation on decryption, so the mixing is transparent;
// it prevents identical plaintext at different addresses from producing
// identical ciphertext.
func subKey(k prng.Key, tweak uint64, idx int) prng.Key {
	mix := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	t := mix(tweak*4 + uint64(idx))
	return prng.NewKey(k.Address^t, k.Voltage^mix(t+0x9E3779B97F4A7C15))
}

// Encrypt runs the SPE encryption phase: for each crossbar, the keyed PoE
// order and pulse classes are derived and the pulses applied with sneak
// paths enabled.
func (b *Block) Encrypt(key prng.Key, tweak uint64) error {
	return b.crypt(key, tweak, false, nil, trace.Context{})
}

// Decrypt applies the inverse pulses in reverse order (Section 5.3). With a
// wrong key the pulses still apply — the hardware cannot tell — but the
// result is garbage; use ReadPlain after decrypting with the right key.
func (b *Block) Decrypt(key prng.Key, tweak uint64) error {
	return b.crypt(key, tweak, true, nil, trace.Context{})
}

// cryptXbar applies the keyed schedule to crossbar i: the forward pulse
// sequence for encryption, the hysteresis-matched inverse pulses in reverse
// order for decryption. Crossbars of a block are independent (disjoint
// cells, disjoint calibrations), which is what lets a pool fan them out.
func (b *Block) cryptXbar(i int, key prng.Key, tweak uint64, decrypt bool) error {
	sched := prng.DeriveSchedule(subKey(key, tweak, i), len(b.eng.Placement), device.NumPulses)
	xb := b.xbs[i]
	if decrypt {
		for step := len(sched.Order) - 1; step >= 0; step-- {
			p := b.eng.Placement[sched.Order[step]]
			if err := xb.ApplyPulse(b.cals[i], p, xbar.InverseClass(sched.Classes[step])); err != nil {
				return err
			}
		}
		return nil
	}
	for step := 0; step < len(sched.Order); step++ {
		p := b.eng.Placement[sched.Order[step]]
		if err := xb.ApplyPulse(b.cals[i], p, sched.Classes[step]); err != nil {
			return err
		}
	}
	return nil
}

// runCryptTask claims and runs crypt subtask i of the call in progress, if
// no other goroutine got there first. Safe to invoke at any time — outside a
// call every slot is claimed, so a stale pool task falls through the CAS.
func (b *Block) runCryptTask(i int) {
	sc := &b.scratch
	if !sc.claimed[i].CompareAndSwap(false, true) {
		return
	}
	// Each crossbar's pulse train gets its own fan lane (derived from the
	// parent's lane), since subtasks of one block run concurrently.
	xsp := sc.tc.WithLane(fanLane(sc.tc.Lane(), i)).Start(traceMetaPulseTrain)
	sc.errs[i] = b.cryptXbar(i, sc.key, sc.tweak, sc.decrypt)
	xsp.End(int64(len(b.eng.Placement)), int64(i))
	sc.wg.Done()
}

// crypt drives all crossbars of the block through cryptXbar. With a pool it
// fans the crossbars out to workers (Section 6.2.1: the four 8x8 crossbars
// of a 64-byte block pulse in parallel in hardware); subtasks that find the
// queue saturated run inline, so nested submission cannot deadlock. The
// caller must hold the block's shard lock when the block is shared.
func (b *Block) crypt(key prng.Key, tweak uint64, decrypt bool, pool *Pool, tc trace.Context) error {
	if decrypt && !b.encrypted {
		return fmt.Errorf("core: block not encrypted")
	}
	if !decrypt && b.encrypted {
		return fmt.Errorf("core: block already encrypted")
	}
	if pool == nil || len(b.xbs) < 2 {
		for i := range b.xbs {
			xsp := tc.Start(traceMetaPulseTrain)
			err := b.cryptXbar(i, key, tweak, decrypt)
			xsp.End(int64(len(b.eng.Placement)), int64(i))
			if err != nil {
				return err
			}
		}
	} else {
		// Claim-based fan-out: subtasks are offered to the pool, then the
		// submitter claims and runs whatever no worker has started. Every
		// subtask is therefore claimed by a goroutine that is actively
		// running it before wg.Wait begins, so a pool saturated with
		// block-level tasks can never deadlock on its own subtasks. All
		// fan-out state is the block's reusable scratch: parameters are
		// stored before the claimed slots reset, so the atomic claim that
		// admits a task also publishes them.
		n := len(b.xbs)
		sc := &b.scratch
		sc.key, sc.tweak, sc.decrypt, sc.tc = key, tweak, decrypt, tc
		sc.wg.Add(n)
		for i := 0; i < n; i++ {
			sc.errs[i] = nil
			sc.claimed[i].Store(false)
		}
		for i := 0; i < n; i++ {
			pool.TrySubmit(sc.tasks[i])
		}
		for i := 0; i < n; i++ {
			b.runCryptTask(i)
		}
		sc.wg.Wait()
		if err := errors.Join(sc.errs...); err != nil {
			return err
		}
	}
	b.encrypted = !decrypt
	return nil
}

// Wear returns the total pulse count across all cells of the block.
func (b *Block) Wear() uint64 {
	var total uint64
	for _, xb := range b.xbs {
		for _, w := range xb.Wear() {
			total += w
		}
	}
	return total
}
