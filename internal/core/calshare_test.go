package core

import (
	"bytes"
	"sync"
	"testing"

	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// newFreshBlock builds a block exactly like Engine.NewBlock but with private
// per-crossbar calibrations, bypassing the process-wide cache — the
// pre-cache behaviour the cached path must reproduce bit-for-bit.
func newFreshBlock(t *testing.T, e *Engine, seed int64) *Block {
	t.Helper()
	n := e.CrossbarsPerBlock()
	b := &Block{eng: e, xbs: make([]*xbar.Crossbar, n), cals: make([]*xbar.Calibration, n)}
	for i := range b.xbs {
		cfg := e.P.Xbar
		cfg.Seed = seed*257 + int64(i)
		xb, err := xbar.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.xbs[i] = xb
		b.cals[i] = xbar.Calibrate(xb)
	}
	return b
}

// TestCachedCalibrationMatchesFresh extends the golden contract to the
// calibration cache: a block whose calibrations come from the shared cache
// must produce ciphertext bit-identical to one characterized privately. The
// cache is keyed on fabrication identity (config minus seed), so this is
// what makes the sharing an optimization rather than a format change.
func TestCachedCalibrationMatchesFresh(t *testing.T) {
	e := engineForTest(t)
	plain := goldenPlain()
	key := prng.NewKey(0x5EED5EED, 0xCAFEF00D)
	tweak := uint64(0x77)
	for _, seed := range []int64{42, 7} {
		cached, err := e.NewBlock(seed)
		if err != nil {
			t.Fatal(err)
		}
		fresh := newFreshBlock(t, e, seed)
		var cts [2][]byte
		for i, b := range []*Block{cached, fresh} {
			if err := b.WritePlain(plain); err != nil {
				t.Fatal(err)
			}
			if err := b.Encrypt(key, tweak); err != nil {
				t.Fatal(err)
			}
			cts[i] = b.ReadRaw()
		}
		if !bytes.Equal(cts[0], cts[1]) {
			t.Errorf("seed %d: cached calibration ciphertext diverged from fresh:\n cached %x\n fresh  %x",
				seed, cts[0], cts[1])
		}
		if err := cached.Decrypt(key, tweak); err != nil {
			t.Fatal(err)
		}
		got, err := cached.ReadPlain()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, plain) {
			t.Errorf("seed %d: cached block round trip broke", seed)
		}
	}
}

// TestConcurrentBlockFabrication races many NewBlock calls — all resolving
// the same fabrication identity through the calibration cache — and then
// encrypts on each, so per-PoE first-touch characterization runs
// concurrently too. Must be clean under -race and all blocks must agree.
func TestConcurrentBlockFabrication(t *testing.T) {
	e := engineForTest(t)
	plain := goldenPlain()
	key := prng.NewKey(0xAB, 0xCD)
	const workers = 8
	cts := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, err := e.NewBlock(int64(100 + w))
			if err != nil {
				t.Error(err)
				return
			}
			if err := b.WritePlain(plain); err != nil {
				t.Error(err)
				return
			}
			if err := b.Encrypt(key, 0); err != nil {
				t.Error(err)
				return
			}
			cts[w] = b.ReadRaw()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if !bytes.Equal(cts[w], cts[0]) {
			t.Errorf("worker %d ciphertext diverged", w)
		}
	}
}
