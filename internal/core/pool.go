package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"snvmm/internal/sched"
	"snvmm/internal/telemetry"
)

// Pool is a bounded worker pool: a set of goroutines draining a fixed-depth
// request queue. The SPECU uses one pool at two granularities — a batch's
// ops are coalesced into one task per touched shard, and each block's
// crossbars are fanned out as subtasks (falling back to inline execution
// when the queue is saturated, so nested submission can never deadlock).
//
// A pool can be fixed-size (NewPool: all workers live for the pool's
// lifetime) or adaptive (NewAdaptivePool: the live worker set floats
// between a floor and a cap, sized by observed queue pressure). Serve
// attaches an adaptive pool, so idle SPECUs do not burn schedulable
// parallelism parking worker goroutines that have nothing to drain.
type Pool struct {
	mu     sync.RWMutex // guards closed; held (R) across every enqueue/spawn
	closed bool

	tasks   chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
	workers int // cap on live workers
	min     int // adaptive floor; == workers for fixed pools

	// Scheduler accounting, maintained unconditionally (padded-free plain
	// atomics): the adaptive policy reads these even when telemetry is
	// detached, and the telemetry gauges mirror them when attached.
	running  atomic.Int64 // live worker goroutines
	busy     atomic.Int64 // workers currently executing a task
	depth    atomic.Int64 // tasks enqueued but not yet dequeued
	pressure atomic.Int64 // consecutive enqueues that found every worker busy
	done     atomic.Int64 // tasks a pool worker completed
	steals   atomic.Int64 // submitted runs the caller claimed back (NoteSteal)

	// tel, when non-nil, holds the pool-health instruments (SetTelemetry).
	tel atomic.Pointer[poolTel]
}

// Adaptive sizing policy knobs. Growth is driven by sustained submission
// pressure — growPressure consecutive enqueues that found every live worker
// busy with a backlog queued — so a single burst does not immediately spawn
// the full cap; shrink is driven by idleness — a worker that drains nothing
// for idleShrink retires, down to the pool's floor. The constants trade
// reaction latency against thrash: at growPressure=2 a coalesced 64-op batch
// reaches the cap within its first few shard-run submissions, while
// idleShrink is long enough that back-to-back batches never see a cold pool.
const (
	growPressure = 2
	idleShrink   = 2 * time.Millisecond
)

// poolTel is the resolved pool instrument set.
type poolTel struct {
	queueDepth    *telemetry.Gauge
	busyWorkers   *telemetry.Gauge
	activeWorkers *telemetry.Gauge
	stealRate     *telemetry.FloatGauge
	tasksDone     *telemetry.Counter
	steals        *telemetry.Counter
	grows         *telemetry.Counter
	shrinks       *telemetry.Counter
	scope         *telemetry.Scope
}

// Adaptive decision-trail events: A0 is the live worker count after the
// decision, A1 the queue depth that triggered it. Each grow/shrink is
// followed by a pool.steal_rate event whose A0 is the cumulative steal
// count and A1 the rate in per-mille — the work-distribution context the
// sizing decision was made under.
var (
	metaPoolGrow      = &telemetry.EventMeta{Subsystem: "pool", Name: "grow"}
	metaPoolShrink    = &telemetry.EventMeta{Subsystem: "pool", Name: "shrink"}
	metaPoolStealRate = &telemetry.EventMeta{Subsystem: "pool", Name: "steal_rate"}
)

// SetTelemetry attaches the pool-health instruments under the "specu.pool."
// prefix: queue-depth/busy-worker/active-worker gauges, tasks-done and
// grow/shrink decision counters, plus one "pool.grow"/"pool.shrink" event
// per adaptive sizing decision. Safe to call while the pool is serving; the
// gauges track transitions from the moment of attachment (attach before
// heavy submission for exact depths). Passing nil detaches.
func (p *Pool) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		p.tel.Store(nil)
		return
	}
	t := &poolTel{
		queueDepth:    reg.Gauge("specu.pool.queue_depth"),
		busyWorkers:   reg.Gauge("specu.pool.busy_workers"),
		activeWorkers: reg.Gauge("specu.pool.active_workers"),
		stealRate:     reg.FloatGauge("specu.pool.steal_rate"),
		tasksDone:     reg.Counter("specu.pool.tasks_done"),
		steals:        reg.Counter("specu.pool.steals"),
		grows:         reg.Counter("specu.pool.grows"),
		shrinks:       reg.Counter("specu.pool.shrinks"),
		scope:         reg.Recorder().Scope("pool"),
	}
	t.activeWorkers.Set(p.running.Load())
	t.stealRate.Set(p.StealRate())
	p.tel.Store(t)
}

// NoteSteal records that a submitted run was claimed back and executed by
// its submitter — the queue was full or every worker was busy, so the
// caller "stole" its own work rather than wait. A high steal rate means
// submitted parallelism is not being realized by the worker set; the
// adaptive sizing decision trail includes it for exactly that reason.
func (p *Pool) NoteSteal() {
	p.steals.Add(1)
	if t := p.tel.Load(); t != nil {
		t.steals.Inc()
		t.stealRate.Set(p.StealRate())
	}
}

// StealRate returns the fraction of completed runs that were stolen by
// their submitter rather than executed by a pool worker: steals /
// (steals + worker-completed tasks), 0 when nothing has run yet.
func (p *Pool) StealRate() float64 {
	st := p.steals.Load()
	total := st + p.done.Load()
	if total == 0 {
		return 0
	}
	return float64(st) / float64(total)
}

// NewPool starts a fixed-size pool: workers goroutines behind a queue of
// the given depth (both <= 0 select defaults). The worker count is resolved
// by sched.Workers — requests beyond GOMAXPROCS are clamped, because the
// pool's tasks are pure CPU and goroutines beyond the schedulable
// parallelism only add context-switch and queue contention overhead.
func NewPool(workers, depth int) *Pool {
	w := sched.Workers(workers)
	return newPool(w, w, depth)
}

// NewAdaptivePool starts a pool whose live worker set floats between min
// and max (<= 0 select 1 and GOMAXPROCS; both are clamped by sched.Workers):
// min workers start immediately, sustained queue pressure spawns more up to
// max, and workers idle for idleShrink retire back down to min. Workers()
// reports the cap; ActiveWorkers() the live count.
func NewAdaptivePool(min, max, depth int) *Pool {
	max = sched.Workers(max)
	if min <= 0 {
		min = 1
	}
	if min > max {
		min = max
	}
	return newPool(min, max, depth)
}

func newPool(min, max, depth int) *Pool {
	if depth <= 0 {
		depth = 4 * max
	}
	p := &Pool{
		tasks:   make(chan func(), depth),
		quit:    make(chan struct{}),
		workers: max,
		min:     min,
	}
	p.running.Store(int64(min))
	p.wg.Add(min)
	adaptive := min < max
	for i := 0; i < min; i++ {
		go p.run(adaptive)
	}
	return p
}

// run is one worker's drain loop. Adaptive workers carry an idle timer and
// retire (exit, decrementing the live count) when they drain nothing for
// idleShrink while the pool is above its floor.
func (p *Pool) run(adaptive bool) {
	defer p.wg.Done()
	var idle *time.Timer
	var idleC <-chan time.Time
	if adaptive {
		idle = time.NewTimer(idleShrink)
		defer idle.Stop()
		idleC = idle.C
	}
	for {
		select {
		case f := <-p.tasks:
			p.runTask(f)
			if adaptive {
				if !idle.Stop() {
					select {
					case <-idle.C:
					default:
					}
				}
				idle.Reset(idleShrink)
			}
		case <-idleC:
			if p.retire() {
				return
			}
			idle.Reset(idleShrink)
		case <-p.quit:
			// Drain: every task enqueued before Close flipped closed is
			// already in the channel (the enqueue happens under mu.RLock),
			// so running the backlog here guarantees no submitter waits
			// on a task that never executes.
			for {
				select {
				case f := <-p.tasks:
					p.runTask(f)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one dequeued task with accounting and gauge maintenance.
func (p *Pool) runTask(f func()) {
	p.depth.Add(-1)
	p.busy.Add(1)
	t := p.tel.Load()
	if t != nil {
		t.queueDepth.Add(-1)
		t.busyWorkers.Add(1)
	}
	f()
	p.busy.Add(-1)
	p.done.Add(1)
	if t != nil {
		t.busyWorkers.Add(-1)
		t.tasksDone.Inc()
		t.stealRate.Set(p.StealRate())
	}
}

// noteEnqueued records one accepted task and applies the adaptive growth
// policy. The caller holds p.mu (R), which is what makes the wg.Add inside
// spawn safe against a concurrent Close.
func (p *Pool) noteEnqueued() {
	d := p.depth.Add(1)
	if t := p.tel.Load(); t != nil {
		t.queueDepth.Add(1)
	}
	if p.min >= p.workers {
		return // fixed-size pool: nothing to size
	}
	r := p.running.Load()
	if r < int64(p.workers) && p.busy.Load() >= r {
		// Backlog with every live worker busy: pressure. Grow only when it
		// is sustained, so a lone task on a quiet pool stays on the floor
		// workers.
		if p.pressure.Add(1) >= growPressure {
			p.pressure.Store(0)
			p.spawn(d)
		}
	} else {
		p.pressure.Store(0)
	}
}

// spawn adds one worker if the cap allows. Caller holds p.mu (R).
func (p *Pool) spawn(depth int64) {
	for {
		r := p.running.Load()
		if r >= int64(p.workers) {
			return
		}
		if p.running.CompareAndSwap(r, r+1) {
			p.wg.Add(1)
			go p.run(true)
			if t := p.tel.Load(); t != nil {
				t.activeWorkers.Set(r + 1)
				t.grows.Inc()
				t.scope.Event(metaPoolGrow, r+1, depth)
				t.scope.Event(metaPoolStealRate, p.steals.Load(), int64(p.StealRate()*1000))
			}
			return
		}
	}
}

// retire decrements the live worker count if the pool is above its floor
// and no backlog is waiting; it reports whether the calling worker should
// exit. The depth check keeps a momentarily-idle worker from abandoning a
// queue that just refilled; the floor workers never retire, which is the
// liveness guarantee for the drain-on-Close path.
func (p *Pool) retire() bool {
	if p.depth.Load() > 0 {
		return false
	}
	for {
		r := p.running.Load()
		if r <= int64(p.min) {
			return false
		}
		if p.running.CompareAndSwap(r, r-1) {
			if t := p.tel.Load(); t != nil {
				t.activeWorkers.Set(r - 1)
				t.shrinks.Inc()
				t.scope.Event(metaPoolShrink, r-1, p.depth.Load())
				t.scope.Event(metaPoolStealRate, p.steals.Load(), int64(p.StealRate()*1000))
			}
			return true
		}
	}
}

// Workers returns the pool's worker cap (the fixed count for NewPool).
func (p *Pool) Workers() int { return p.workers }

// ActiveWorkers returns the live worker count — between the adaptive floor
// and Workers(), equal to Workers() for fixed pools.
func (p *Pool) ActiveWorkers() int { return int(p.running.Load()) }

// Submit enqueues f, blocking while the queue is full. It returns
// ctx.Err() if the context is cancelled first, or ErrClosed after Close.
// A nil error guarantees f will run exactly once.
func (p *Pool) Submit(ctx context.Context, f func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.tasks <- f:
		p.noteEnqueued()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues f only if a queue slot is immediately free. The
// caller runs f itself on false — the fan-out fallback that keeps nested
// submission deadlock-free.
func (p *Pool) TrySubmit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- f:
		p.noteEnqueued()
		return true
	default:
		return false
	}
}

// Close rejects further submissions, waits for the queue to drain and all
// workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}
