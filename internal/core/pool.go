package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"snvmm/internal/telemetry"
)

// Pool is a bounded worker pool: a fixed set of goroutines draining a
// fixed-depth request queue. The SPECU uses one pool at two granularities —
// independent blocks of a batch are queued as whole tasks, and each block's
// crossbars are fanned out as subtasks (falling back to inline execution
// when the queue is saturated, so nested submission can never deadlock).
type Pool struct {
	mu     sync.RWMutex // guards closed; held (R) across every enqueue
	closed bool

	tasks   chan func()
	quit    chan struct{}
	wg      sync.WaitGroup
	workers int

	// tel, when non-nil, holds the pool-health instruments (SetTelemetry).
	tel atomic.Pointer[poolTel]
}

// poolTel is the resolved pool instrument set.
type poolTel struct {
	queueDepth  *telemetry.Gauge
	busyWorkers *telemetry.Gauge
	tasksDone   *telemetry.Counter
}

// SetTelemetry attaches queue-depth and worker-utilization instruments.
// Safe to call while the pool is serving; the gauges track transitions from
// the moment of attachment (a queue backlog present at attach time shows up
// as the depth going negative-relative, so attach before heavy submission
// for exact depths). Passing all nils detaches.
func (p *Pool) SetTelemetry(queueDepth, busyWorkers *telemetry.Gauge, tasksDone *telemetry.Counter) {
	if queueDepth == nil && busyWorkers == nil && tasksDone == nil {
		p.tel.Store(nil)
		return
	}
	p.tel.Store(&poolTel{queueDepth: queueDepth, busyWorkers: busyWorkers, tasksDone: tasksDone})
}

// NewPool starts workers goroutines behind a queue of the given depth.
// workers <= 0 selects GOMAXPROCS; larger requests are clamped to
// GOMAXPROCS, because the pool's tasks are pure CPU — goroutines beyond the
// schedulable parallelism only add context-switch and queue contention
// overhead (BENCH_specu.json measured workers=8 sharded reads at 160 µs vs
// 117 µs sequential on a 1-vCPU host before this clamp). depth <= 0 selects
// 4x workers.
func NewPool(workers, depth int) *Pool {
	if maxp := runtime.GOMAXPROCS(0); workers <= 0 || workers > maxp {
		workers = maxp
	}
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &Pool{
		tasks:   make(chan func(), depth),
		quit:    make(chan struct{}),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *Pool) run() {
	defer p.wg.Done()
	for {
		select {
		case f := <-p.tasks:
			p.runTask(f)
		case <-p.quit:
			// Drain: every task enqueued before Close flipped closed is
			// already in the channel (the enqueue happens under mu.RLock),
			// so running the backlog here guarantees no submitter waits
			// on a task that never executes.
			for {
				select {
				case f := <-p.tasks:
					p.runTask(f)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one dequeued task with gauge maintenance.
func (p *Pool) runTask(f func()) {
	t := p.tel.Load()
	if t == nil {
		f()
		return
	}
	t.queueDepth.Add(-1)
	t.busyWorkers.Add(1)
	f()
	t.busyWorkers.Add(-1)
	t.tasksDone.Inc()
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues f, blocking while the queue is full. It returns
// ctx.Err() if the context is cancelled first, or ErrClosed after Close.
// A nil error guarantees f will run exactly once.
func (p *Pool) Submit(ctx context.Context, f func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.tasks <- f:
		if t := p.tel.Load(); t != nil {
			t.queueDepth.Add(1)
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues f only if a queue slot is immediately free. The
// caller runs f itself on false — the fan-out fallback that keeps nested
// submission deadlock-free.
func (p *Pool) TrySubmit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- f:
		if t := p.tel.Load(); t != nil {
			t.queueDepth.Add(1)
		}
		return true
	default:
		return false
	}
}

// Close rejects further submissions, waits for the queue to drain and all
// workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.wg.Wait()
}
