package core

import (
	"fmt"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/slo"
	"snvmm/internal/telemetry/trace"
)

// SPECU instrumentation. EnableTelemetry resolves every instrument once
// into a specuTel struct published through an atomic pointer; the data
// path then pays one load-and-branch when telemetry is off, and padded
// atomic updates plus two clock reads per operation when it is on. Only
// aggregates are exported — per-shard distributions, totals, pool depth.
// Nothing is keyed by block address or key material (see DESIGN.md
// "Telemetry & introspection" for the side-channel rationale).

// Span/event call sites, interned once.
var (
	metaPowerOn        = &telemetry.EventMeta{Subsystem: "specu", Name: "power_on"}
	metaPowerOff       = &telemetry.EventMeta{Subsystem: "specu", Name: "power_off"}
	metaEncryptPending = &telemetry.EventMeta{Subsystem: "specu", Name: "encrypt_pending"}
)

// Causal-trace call sites, interned once. The hierarchy a traced batch
// produces: {read,write,crypt}_batch root -> shard_run (one per touched
// shard, on the shard's lane) -> {read,write,crypt} op span ->
// {encrypt,decrypt} block crypt -> xbar.pulse_train (one per crossbar).
var (
	traceMetaReadBatch  = &trace.SpanMeta{Subsystem: "specu", Name: "read_batch"}
	traceMetaWriteBatch = &trace.SpanMeta{Subsystem: "specu", Name: "write_batch"}
	traceMetaCryptBatch = &trace.SpanMeta{Subsystem: "specu", Name: "crypt_batch"}
	traceMetaShardRun   = &trace.SpanMeta{Subsystem: "specu", Name: "shard_run"}
	traceMetaRead       = &trace.SpanMeta{Subsystem: "specu", Name: "read"}
	traceMetaWrite      = &trace.SpanMeta{Subsystem: "specu", Name: "write"}
	traceMetaCrypt      = &trace.SpanMeta{Subsystem: "specu", Name: "crypt"}
	traceMetaEncrypt    = &trace.SpanMeta{Subsystem: "specu", Name: "encrypt"}
	traceMetaDecrypt    = &trace.SpanMeta{Subsystem: "specu", Name: "decrypt"}
)

// specuTel is the resolved instrument set of one SPECU.
type specuTel struct {
	reg *telemetry.Registry

	// Per-shard latency distributions of the four data-path operations.
	read    [NumShards]*telemetry.Histogram
	write   [NumShards]*telemetry.Histogram
	encrypt [NumShards]*telemetry.Histogram
	decrypt [NumShards]*telemetry.Histogram

	reads  *telemetry.Counter
	writes *telemetry.Counter
	steals *telemetry.Counter

	plaintext *telemetry.Gauge // blocks currently resident as plaintext
	blocks    *telemetry.Gauge // blocks ever fabricated and resident

	scope *telemetry.Scope // key-lifecycle barrier spans

	// SLO windows per op class (EnableSLO); nil windows no-op, so the
	// observe path attaches unconditionally.
	sloRead    *slo.Window
	sloWrite   *slo.Window
	sloEncrypt *slo.Window
	sloDecrypt *slo.Window
}

// attachSLO resolves the engine's op-class windows into the instrument
// set. A nil engine detaches (Window returns nil, a no-op sink).
func (t *specuTel) attachSLO(e *slo.Engine) {
	t.sloRead = e.Window("read")
	t.sloWrite = e.Window("write")
	t.sloEncrypt = e.Window("encrypt")
	t.sloDecrypt = e.Window("decrypt")
}

// span opens a barrier span; safe on a nil receiver (disabled telemetry).
func (t *specuTel) span(meta *telemetry.EventMeta) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.scope.Start(meta)
}

// now reads the registry clock; 0 on a nil receiver (disabled telemetry).
func (t *specuTel) now() int64 {
	if t == nil {
		return 0
	}
	return t.reg.Now()
}

// observeRead records one completed data-path read against shard si. Both
// the synchronous Read wrapper and coalesced batch runs report through it,
// so per-shard latency distributions stay comparable across dispatch modes.
func (t *specuTel) observeRead(si int, start int64) {
	if t == nil {
		return
	}
	elapsed := t.reg.Now() - start
	t.read[si].ObserveNs(elapsed)
	t.sloRead.Observe(elapsed)
	t.reads.Inc()
}

// observeWrite records one completed data-path write against shard si.
func (t *specuTel) observeWrite(si int, start int64) {
	if t == nil {
		return
	}
	elapsed := t.reg.Now() - start
	t.write[si].ObserveNs(elapsed)
	t.sloWrite.Observe(elapsed)
	t.writes.Inc()
}

// EnableTelemetry attaches the SPECU to a registry. All instruments are
// created under the "specu." prefix; per-shard histograms are named
// specu.shardNN.{read,write,encrypt,decrypt}. Enabling is idempotent in
// effect (instruments are shared by name) and safe to race with data
// operations; passing nil detaches the instrumentation. If a worker pool
// is already serving it is wired too, as is any pool attached later by
// Serve.
func (s *SPECU) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel.Store(nil)
		return
	}
	t := &specuTel{
		reg:       reg,
		reads:     reg.Counter("specu.reads"),
		writes:    reg.Counter("specu.writes"),
		steals:    reg.Counter("specu.steals"),
		plaintext: reg.Gauge("specu.plaintext_blocks"),
		blocks:    reg.Gauge("specu.blocks"),
		scope:     reg.Recorder().Scope("specu"),
	}
	for i := 0; i < NumShards; i++ {
		t.read[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.read", i))
		t.write[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.write", i))
		t.encrypt[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.encrypt", i))
		t.decrypt[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.decrypt", i))
	}
	t.attachSLO(s.sloEng.Load())
	s.tel.Store(t)
	if p := s.pool.Load(); p != nil {
		wirePool(p, reg)
	}
}

// EnableSLO attaches a rolling-window SLO engine: the telemetry observe
// path additionally feeds the engine's read/write/encrypt/decrypt
// windows (classes resolved by name; missing classes are no-ops).
// Telemetry must be enabled for observations to flow — the SLO engine
// shares the telemetry clock and observe call sites. Passing nil
// detaches. Not synchronized against a concurrent EnableTelemetry; wire
// both before traffic.
func (s *SPECU) EnableSLO(e *slo.Engine) {
	if e == nil {
		s.sloEng.Store(nil)
	} else {
		s.sloEng.Store(e)
	}
	if t := s.tel.Load(); t != nil {
		t2 := *t
		t2.attachSLO(e)
		s.tel.Store(&t2)
	}
}

// wirePool attaches the pool-health instruments: the static worker cap
// gauge here, the live scheduler gauges/counters/events via SetTelemetry.
func wirePool(p *Pool, reg *telemetry.Registry) {
	reg.Gauge("specu.pool.workers").Set(int64(p.Workers()))
	p.SetTelemetry(reg)
}

// blockCrypt runs b.crypt with per-shard encrypt/decrypt latency recording
// and plaintext-gauge maintenance. The caller holds the block's shard lock
// (same contract as crypt itself). tc is the op's causal trace context;
// the block crypt becomes a child span whose children are the per-crossbar
// pulse trains.
func (s *SPECU) blockCrypt(si int, b *Block, key prng.Key, addr uint64, decrypt bool, pool *Pool, tc trace.Context) error {
	meta := traceMetaEncrypt
	if decrypt {
		meta = traceMetaDecrypt
	}
	csp := tc.Start(meta)
	t := s.tel.Load()
	if t == nil {
		err := b.crypt(key, addr, decrypt, pool, csp.Context())
		csp.End(int64(len(b.xbs)), 0)
		return err
	}
	start := t.reg.Now()
	err := b.crypt(key, addr, decrypt, pool, csp.Context())
	elapsed := t.reg.Now() - start
	csp.End(int64(len(b.xbs)), 0)
	if decrypt {
		t.decrypt[si].ObserveNs(elapsed)
		t.sloDecrypt.Observe(elapsed)
	} else {
		t.encrypt[si].ObserveNs(elapsed)
		t.sloEncrypt.Observe(elapsed)
	}
	if err == nil {
		if decrypt {
			t.plaintext.Add(1)
		} else {
			t.plaintext.Add(-1)
		}
	}
	return err
}
