package core

import (
	"fmt"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry"
)

// SPECU instrumentation. EnableTelemetry resolves every instrument once
// into a specuTel struct published through an atomic pointer; the data
// path then pays one load-and-branch when telemetry is off, and padded
// atomic updates plus two clock reads per operation when it is on. Only
// aggregates are exported — per-shard distributions, totals, pool depth.
// Nothing is keyed by block address or key material (see DESIGN.md
// "Telemetry & introspection" for the side-channel rationale).

// Span/event call sites, interned once.
var (
	metaPowerOn        = &telemetry.EventMeta{Subsystem: "specu", Name: "power_on"}
	metaPowerOff       = &telemetry.EventMeta{Subsystem: "specu", Name: "power_off"}
	metaEncryptPending = &telemetry.EventMeta{Subsystem: "specu", Name: "encrypt_pending"}
)

// specuTel is the resolved instrument set of one SPECU.
type specuTel struct {
	reg *telemetry.Registry

	// Per-shard latency distributions of the four data-path operations.
	read    [NumShards]*telemetry.Histogram
	write   [NumShards]*telemetry.Histogram
	encrypt [NumShards]*telemetry.Histogram
	decrypt [NumShards]*telemetry.Histogram

	reads  *telemetry.Counter
	writes *telemetry.Counter
	steals *telemetry.Counter

	plaintext *telemetry.Gauge // blocks currently resident as plaintext
	blocks    *telemetry.Gauge // blocks ever fabricated and resident

	scope *telemetry.Scope // key-lifecycle barrier spans
}

// span opens a barrier span; safe on a nil receiver (disabled telemetry).
func (t *specuTel) span(meta *telemetry.EventMeta) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.scope.Start(meta)
}

// now reads the registry clock; 0 on a nil receiver (disabled telemetry).
func (t *specuTel) now() int64 {
	if t == nil {
		return 0
	}
	return t.reg.Now()
}

// observeRead records one completed data-path read against shard si. Both
// the synchronous Read wrapper and coalesced batch runs report through it,
// so per-shard latency distributions stay comparable across dispatch modes.
func (t *specuTel) observeRead(si int, start int64) {
	if t == nil {
		return
	}
	t.read[si].ObserveNs(t.reg.Now() - start)
	t.reads.Inc()
}

// observeWrite records one completed data-path write against shard si.
func (t *specuTel) observeWrite(si int, start int64) {
	if t == nil {
		return
	}
	t.write[si].ObserveNs(t.reg.Now() - start)
	t.writes.Inc()
}

// EnableTelemetry attaches the SPECU to a registry. All instruments are
// created under the "specu." prefix; per-shard histograms are named
// specu.shardNN.{read,write,encrypt,decrypt}. Enabling is idempotent in
// effect (instruments are shared by name) and safe to race with data
// operations; passing nil detaches the instrumentation. If a worker pool
// is already serving it is wired too, as is any pool attached later by
// Serve.
func (s *SPECU) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel.Store(nil)
		return
	}
	t := &specuTel{
		reg:       reg,
		reads:     reg.Counter("specu.reads"),
		writes:    reg.Counter("specu.writes"),
		steals:    reg.Counter("specu.steals"),
		plaintext: reg.Gauge("specu.plaintext_blocks"),
		blocks:    reg.Gauge("specu.blocks"),
		scope:     reg.Recorder().Scope("specu"),
	}
	for i := 0; i < NumShards; i++ {
		t.read[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.read", i))
		t.write[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.write", i))
		t.encrypt[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.encrypt", i))
		t.decrypt[i] = reg.Histogram(fmt.Sprintf("specu.shard%02d.decrypt", i))
	}
	s.tel.Store(t)
	if p := s.pool.Load(); p != nil {
		wirePool(p, reg)
	}
}

// wirePool attaches the pool-health instruments: the static worker cap
// gauge here, the live scheduler gauges/counters/events via SetTelemetry.
func wirePool(p *Pool, reg *telemetry.Registry) {
	reg.Gauge("specu.pool.workers").Set(int64(p.Workers()))
	p.SetTelemetry(reg)
}

// blockCrypt runs b.crypt with per-shard encrypt/decrypt latency recording
// and plaintext-gauge maintenance. The caller holds the block's shard lock
// (same contract as crypt itself).
func (s *SPECU) blockCrypt(si int, b *Block, key prng.Key, addr uint64, decrypt bool, pool *Pool) error {
	t := s.tel.Load()
	if t == nil {
		return b.crypt(key, addr, decrypt, pool)
	}
	start := t.reg.Now()
	err := b.crypt(key, addr, decrypt, pool)
	elapsed := t.reg.Now() - start
	if decrypt {
		t.decrypt[si].ObserveNs(elapsed)
	} else {
		t.encrypt[si].ObserveNs(elapsed)
	}
	if err == nil {
		if decrypt {
			t.plaintext.Add(1)
		} else {
			t.plaintext.Add(-1)
		}
	}
	return err
}
