package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
)

// withProcs pins GOMAXPROCS for the test's duration. The coalescing
// scheduler only engages when the pool cap resolves above 1, so on a
// single-core CI host these tests raise the schedulable parallelism
// (legal above the physical core count) to exercise the parallel path.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// batchPayload is the deterministic per-op payload used by the
// determinism property test.
func batchPayload(i int) []byte {
	d := make([]byte, BlockSize)
	for j := range d {
		d[j] = byte(3*i + j)
	}
	return d
}

// TestBatchResultOrderDeterministic is the scheduler's order property
// test: for the same inputs, every batch method must fill the same result
// slot with the same value at workers 1 (inline path), 4 and 8 (coalesced
// path) — slot i belongs to input i no matter which shard run executed it
// or in what order the runs completed. The batch mixes duplicate
// addresses (same-shard runs longer than one op) and one unknown address
// (error slots must stay put too).
func TestBatchResultOrderDeterministic(t *testing.T) {
	withProcs(t, 8)
	e := engineForTest(t)
	const n = 48
	const unknownSlot = 17
	key := prng.NewKey(0xDE7, 0x0DE)

	type outcome struct {
		writeErrs []string
		reads     []ReadResult
		encErrs   []string
		decErrs   []string
	}
	errStr := func(errs []error) []string {
		out := make([]string, len(errs))
		for i, err := range errs {
			if err != nil {
				out[i] = err.Error()
			}
		}
		return out
	}

	runAt := func(workers int) outcome {
		s := NewSPECU(e, Serial)
		if err := s.PowerOn(key); err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			if err := s.Serve(context.Background(), workers, 0); err != nil {
				t.Fatal(err)
			}
			defer s.Close()
		}
		ops := make([]WriteOp, n)
		addrs := make([]uint64, n)
		for i := range ops {
			// i%20 duplicates addresses across the batch: later write slots
			// overwrite earlier ones in input order within a shard run.
			addrs[i] = uint64(i%20) * BlockSize
			ops[i] = WriteOp{Addr: addrs[i], Data: batchPayload(i)}
		}
		var o outcome
		o.writeErrs = errStr(s.WriteBatch(context.Background(), ops))
		o.reads = s.ReadBatch(context.Background(), addrs)
		encAddrs := append([]uint64(nil), addrs...)
		encAddrs[unknownSlot] = 0x7777740 // never written
		o.encErrs = errStr(s.EncryptBatch(context.Background(), encAddrs))
		o.decErrs = errStr(s.DecryptBatch(context.Background(), addrs[:12]))
		return o
	}

	ref := runAt(1)
	for i, err := range ref.writeErrs {
		if err != "" {
			t.Fatalf("workers=1 write %d: %v", i, err)
		}
	}
	if ref.encErrs[unknownSlot] == "" {
		t.Fatalf("workers=1: unknown-address slot %d reported no error", unknownSlot)
	}
	for _, workers := range []int{4, 8} {
		got := runAt(workers)
		for i := 0; i < n; i++ {
			if got.writeErrs[i] != ref.writeErrs[i] {
				t.Errorf("workers=%d write slot %d: %q != %q", workers, i, got.writeErrs[i], ref.writeErrs[i])
			}
			if got.reads[i].Addr != ref.reads[i].Addr ||
				!bytes.Equal(got.reads[i].Data, ref.reads[i].Data) ||
				fmt.Sprint(got.reads[i].Err) != fmt.Sprint(ref.reads[i].Err) {
				t.Errorf("workers=%d read slot %d diverges from workers=1", workers, i)
			}
			if got.encErrs[i] != ref.encErrs[i] {
				t.Errorf("workers=%d encrypt slot %d: %q != %q", workers, i, got.encErrs[i], ref.encErrs[i])
			}
		}
		for i := range ref.decErrs {
			if got.decErrs[i] != ref.decErrs[i] {
				t.Errorf("workers=%d decrypt slot %d: %q != %q", workers, i, got.decErrs[i], ref.decErrs[i])
			}
		}
	}
}

// TestBatchCoalescedPowerOffBarrier races coalesced batches against the
// PowerOff barrier under the race detector. Every batch slot must either
// succeed (its shard run held keyMu before the barrier) or fail with
// ErrNoKey (its run started after) — never anything else — and after
// PowerOff returns no plaintext may remain regardless of how many runs
// were in flight.
func TestBatchCoalescedPowerOffBarrier(t *testing.T) {
	withProcs(t, 4)
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	key := prng.NewKey(0xBA2, 0x2AB)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background(), 4, 8); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 24
	ops := make([]WriteOp, n)
	addrs := make([]uint64, n)
	for i := range ops {
		addrs[i] = uint64(i) * BlockSize
		ops[i] = WriteOp{Addr: addrs[i], Data: batchPayload(i)}
	}
	for i, err := range s.WriteBatch(context.Background(), ops) {
		if err != nil {
			t.Fatalf("seed write %d: %v", i, err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 4; iter++ {
				if g%2 == 0 {
					for i, err := range s.WriteBatch(context.Background(), ops) {
						if err != nil && !errors.Is(err, ErrNoKey) {
							t.Errorf("batch write slot %d: %v", i, err)
						}
					}
				} else {
					for i, r := range s.ReadBatch(context.Background(), addrs) {
						if r.Err != nil && !errors.Is(r.Err, ErrNoKey) {
							t.Errorf("batch read slot %d: %v", i, r.Err)
						}
					}
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(500 * time.Microsecond) // let some shard runs get in flight
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if s.HasKey() {
		t.Error("key survives PowerOff")
	}
	if got := s.PlaintextBlocks(); got != 0 {
		t.Errorf("%d plaintext blocks after PowerOff", got)
	}
	// Power back on: every block written under the old key round-trips.
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	for i, r := range s.ReadBatch(context.Background(), addrs) {
		if r.Err != nil {
			t.Errorf("read %d after power cycle: %v", i, r.Err)
		}
	}
}

// TestCoalescedReadBatchAllocRegression pins the per-op allocation budget
// of the coalesced ReadBatch path. Coalescing adds a constant number of
// allocations per batch (result slice, two counting-sort slices, a
// handful of closures, one task closure per touched shard) on top of the
// per-op crypt work, so amortized per-op cost must stay at or under the
// synchronous sharded-read ceiling.
func TestCoalescedReadBatchAllocRegression(t *testing.T) {
	withProcs(t, 4)
	s, addrs := benchSPECU(t, 64)
	if err := s.Serve(context.Background(), 4, 64); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	// Warm: fabricate every block and let the adaptive pool reach steady
	// state before counting.
	for _, r := range s.ReadBatch(ctx, addrs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		res := s.ReadBatch(ctx, addrs)
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
	})
	perOp := avg / float64(len(addrs))
	const ceiling = 45
	if perOp > ceiling {
		t.Errorf("coalesced ReadBatch allocates %.1f/op (%.0f/batch of %d), ceiling %d",
			perOp, avg, len(addrs), ceiling)
	}
}

// TestAdaptivePoolGrowShrink drives the adaptive sizing policy end to
// end: sustained submission pressure against blocked workers must grow
// the live set toward the cap, and idleness after the backlog drains must
// shrink it back to the floor, with the decision trail visible in the
// telemetry counters and gauges.
func TestAdaptivePoolGrowShrink(t *testing.T) {
	withProcs(t, 4)
	p := NewAdaptivePool(1, 4, 64)
	defer p.Close()
	if got := p.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want cap 4", got)
	}
	if got := p.ActiveWorkers(); got != 1 {
		t.Fatalf("ActiveWorkers() = %d at start, want floor 1", got)
	}
	reg := telemetry.New()
	p.SetTelemetry(reg)

	release := make(chan struct{})
	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		if err := p.Submit(context.Background(), func() {
			<-release
			wg.Done()
		}); err != nil {
			wg.Done()
			t.Fatal(err)
		}
	}
	// Keep submitting blockers until the pool has grown to the cap; each
	// enqueue that finds every live worker busy counts as pressure.
	deadline := time.Now().Add(5 * time.Second)
	for p.ActiveWorkers() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never grew past %d workers", p.ActiveWorkers())
		}
		submit()
		time.Sleep(200 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	// All workers idle now: the live set must retire back to the floor.
	deadline = time.Now().Add(5 * time.Second)
	for p.ActiveWorkers() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never shrank, still %d workers", p.ActiveWorkers())
		}
		time.Sleep(time.Millisecond)
	}

	snap := reg.Snapshot()
	if snap.Counters["specu.pool.grows"] < 3 {
		t.Errorf("specu.pool.grows = %d, want >= 3", snap.Counters["specu.pool.grows"])
	}
	if snap.Counters["specu.pool.shrinks"] < 3 {
		t.Errorf("specu.pool.shrinks = %d, want >= 3", snap.Counters["specu.pool.shrinks"])
	}
	if got := snap.Gauges["specu.pool.active_workers"]; got != 1 {
		t.Errorf("specu.pool.active_workers gauge = %d, want 1", got)
	}
	// The decision trail records both directions.
	var grows, shrinks int
	for _, ev := range reg.Recorder().Events(reg.Recorder().Cap()) {
		if ev.Subsystem != "pool" {
			continue
		}
		switch ev.Name {
		case "grow":
			grows++
		case "shrink":
			shrinks++
		}
	}
	if grows == 0 || shrinks == 0 {
		t.Errorf("decision trail: %d grow / %d shrink events, want both > 0", grows, shrinks)
	}
}

// TestFixedPoolNeverResizes pins that NewPool keeps its worker set
// constant: the adaptive machinery must stay inert for fixed pools.
func TestFixedPoolNeverResizes(t *testing.T) {
	withProcs(t, 4)
	p := NewPool(2, 4)
	defer p.Close()
	if p.ActiveWorkers() != 2 || p.Workers() != 2 {
		t.Fatalf("fixed pool: active=%d cap=%d, want 2/2", p.ActiveWorkers(), p.Workers())
	}
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		if err := p.Submit(context.Background(), func() { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	// Idle long enough that an adaptive pool would have retired workers.
	time.Sleep(10 * idleShrink)
	if got := p.ActiveWorkers(); got != 2 {
		t.Errorf("fixed pool resized to %d workers", got)
	}
}

// TestBatchDispatchPolicy pins where the inline/coalesced boundary sits:
// batches at or under inlineBatchMax run inline even with a multi-worker
// pool serving, one op over the threshold coalesces, and a workers=1 pool
// always dispatches inline regardless of batch size — so small batches
// and single-core hosts can never pay dispatch overhead.
func TestBatchDispatchPolicy(t *testing.T) {
	withProcs(t, 4)
	e := engineForTest(t)

	probe := func(s *SPECU, n int) (inline, locked int64) {
		var inlineCalls, lockedCalls atomic.Int64
		s.runBatch(context.Background(), &batchOps{
			n:      n,
			addr:   func(i int) uint64 { return uint64(i) * BlockSize },
			inline: func(i int, tc trace.Context) { inlineCalls.Add(1) },
			locked: func(i, si int, sh *shard, key prng.Key, pool *Pool, tc trace.Context) {
				lockedCalls.Add(1)
			},
			fail: func(i int, err error) { t.Errorf("op %d failed: %v", i, err) },
		})
		return inlineCalls.Load(), lockedCalls.Load()
	}

	s := NewSPECU(e, Parallel)
	if err := s.PowerOn(prng.NewKey(0x111, 0x222)); err != nil {
		t.Fatal(err)
	}
	// No pool attached: always inline.
	if in, lk := probe(s, 2*inlineBatchMax); in != 2*inlineBatchMax || lk != 0 {
		t.Errorf("no pool: inline=%d locked=%d, want all inline", in, lk)
	}
	if err := s.Serve(context.Background(), 4, 0); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// At the threshold: inline despite the serving pool.
	if in, lk := probe(s, inlineBatchMax); in != inlineBatchMax || lk != 0 {
		t.Errorf("n=max: inline=%d locked=%d, want all inline", in, lk)
	}
	// One over: every op runs through a coalesced shard run.
	if in, lk := probe(s, inlineBatchMax+1); in != 0 || lk != inlineBatchMax+1 {
		t.Errorf("n=max+1: inline=%d locked=%d, want all coalesced", in, lk)
	}

	// A workers=1 pool cannot run anything in parallel: inline always.
	s1 := NewSPECU(e, Parallel)
	if err := s1.PowerOn(prng.NewKey(0x333, 0x444)); err != nil {
		t.Fatal(err)
	}
	if err := s1.Serve(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if in, lk := probe(s1, 8*inlineBatchMax); in != 8*inlineBatchMax || lk != 0 {
		t.Errorf("workers=1: inline=%d locked=%d, want all inline", in, lk)
	}
}
