package core

import (
	"bytes"
	"math/rand"
	"testing"

	"snvmm/internal/prng"
)

func TestSPECULifecycle(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	key := prng.NewKey(0xAAA, 0xBBB)

	if _, err := s.Read(0); err == nil {
		t.Error("read without key should fail")
	}
	s.PowerOn(key)
	if !s.HasKey() {
		t.Error("HasKey false after PowerOn")
	}
	data := make([]byte, BlockSize)
	copy(data, []byte("password: hunter2"))
	if err := s.Write(0x40, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch")
	}
	// In parallel mode memory is always fully encrypted.
	if f := s.EncryptedFraction(); f != 1 {
		t.Errorf("encrypted fraction %g, want 1", f)
	}
	// Power down, then up with the same key: instant-on.
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if s.HasKey() {
		t.Error("key survives power-off")
	}
	s.PowerOn(key)
	got, err = s.Read(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data lost across power cycle")
	}
}

func TestSPECUStolenCiphertext(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	key := prng.NewKey(7, 8)
	s.PowerOn(key)
	secret := make([]byte, BlockSize)
	copy(secret, []byte("TOP-SECRET-KEY-MATERIAL"))
	if err := s.Write(0x80, secret); err != nil {
		t.Fatal(err)
	}
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	// Attack 1: attacker dumps the NVMM after power down.
	dump, err := s.Steal(0x80)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(dump, secret) {
		t.Error("stolen dump equals plaintext")
	}
	if bytes.Contains(dump, []byte("SECRET")) {
		t.Error("plaintext fragment visible in dump")
	}
	if _, err := s.Steal(0x999); err == nil {
		t.Error("stealing unwritten address should fail")
	}
}

func TestSPECUSerialModeWindow(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	key := prng.NewKey(100, 200)
	s.PowerOn(key)
	for addr := uint64(0); addr < 4; addr++ {
		if err := s.Write(addr*64, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	// Serial reads leave blocks decrypted.
	if _, err := s.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(64); err != nil {
		t.Fatal(err)
	}
	if got := s.PlaintextBlocks(); got != 2 {
		t.Errorf("plaintext blocks = %d, want 2", got)
	}
	if f := s.EncryptedFraction(); f != 0.5 {
		t.Errorf("encrypted fraction = %g, want 0.5", f)
	}
	// Background timer re-encrypts.
	if err := s.EncryptPending(); err != nil {
		t.Fatal(err)
	}
	if got := s.PlaintextBlocks(); got != 0 {
		t.Errorf("plaintext blocks after flush = %d", got)
	}
	// Power-off flushes any stragglers and still round-trips.
	if _, err := s.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if got := s.PlaintextBlocks(); got != 0 {
		t.Errorf("plaintext blocks after power-off = %d", got)
	}
}

func TestSPECUOverwrite(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	key := prng.NewKey(1, 1)
	s.PowerOn(key)
	a := make([]byte, BlockSize)
	a[0] = 1
	b := make([]byte, BlockSize)
	b[0] = 2
	if err := s.Write(0, a); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, b); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Error("overwrite lost")
	}
	if s.Blocks() != 1 {
		t.Errorf("blocks = %d, want 1", s.Blocks())
	}
}

func TestSPECUWriteWithoutKey(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	if err := s.Write(0, make([]byte, BlockSize)); err == nil {
		t.Error("write without key should fail")
	}
	if err := s.EncryptPending(); err == nil {
		t.Error("EncryptPending without key should fail")
	}
}

func TestSPECUEncryptedFractionEmpty(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	if f := s.EncryptedFraction(); f != 1 {
		t.Errorf("empty device fraction = %g, want 1", f)
	}
}

func TestModeString(t *testing.T) {
	if Serial.String() != "SPE-serial" || Parallel.String() != "SPE-parallel" {
		t.Error("mode strings wrong")
	}
}

// TestSPECUStateMachine drives the SPECU through a long random sequence of
// operations, checking its observable behaviour against a plain map model.
// This is the whole-device invariant: through any interleaving of writes,
// reads, flushes and power cycles, reads return the last written data and
// stolen dumps never equal plaintext.
func TestSPECUStateMachine(t *testing.T) {
	e := engineForTest(t)
	rng := rand.New(rand.NewSource(99))
	for _, mode := range []Mode{Serial, Parallel} {
		s := NewSPECU(e, mode)
		key := prng.NewKey(rng.Uint64(), rng.Uint64())
		model := map[uint64][]byte{}
		powered := false
		addrs := []uint64{0, 64, 128, 192}
		for op := 0; op < 200; op++ {
			switch rng.Intn(10) {
			case 0: // power on
				if !powered {
					s.PowerOn(key)
					powered = true
				}
			case 1: // power off
				if powered {
					if err := s.PowerOff(); err != nil {
						t.Fatal(err)
					}
					powered = false
				}
			case 2, 3, 4: // write
				addr := addrs[rng.Intn(len(addrs))]
				data := make([]byte, BlockSize)
				rng.Read(data)
				err := s.Write(addr, data)
				if powered {
					if err != nil {
						t.Fatalf("op %d: write failed while powered: %v", op, err)
					}
					model[addr] = data
				} else if err == nil {
					t.Fatalf("op %d: write succeeded without key", op)
				}
			case 5, 6, 7: // read
				addr := addrs[rng.Intn(len(addrs))]
				got, err := s.Read(addr)
				want, exists := model[addr]
				switch {
				case !powered:
					if err == nil {
						t.Fatalf("op %d: read succeeded without key", op)
					}
				case !exists:
					if err == nil {
						t.Fatalf("op %d: read of unwritten address succeeded", op)
					}
				default:
					if err != nil {
						t.Fatalf("op %d: read failed: %v", op, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: read mismatch at %#x", op, addr)
					}
				}
			case 8: // background flush
				if powered {
					if err := s.EncryptPending(); err != nil {
						t.Fatal(err)
					}
				}
			case 9: // steal: never returns current plaintext while encrypted
				addr := addrs[rng.Intn(len(addrs))]
				if want, ok := model[addr]; ok && !powered {
					dump, err := s.Steal(addr)
					if err != nil {
						t.Fatal(err)
					}
					if bytes.Equal(dump, want) {
						t.Fatalf("op %d: powered-off dump equals plaintext", op)
					}
				}
			}
		}
		// Final check: power on and verify every modelled block.
		if !powered {
			s.PowerOn(key)
		}
		for addr, want := range model {
			got, err := s.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mode %v: final state mismatch at %#x", mode, addr)
			}
		}
	}
}
