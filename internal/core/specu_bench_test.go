package core

import (
	"context"
	"fmt"
	"testing"

	"snvmm/internal/prng"
)

// benchSPECU builds a SPECU pre-populated with blocks spread across the
// shards, ready for read benchmarking.
func benchSPECU(b testing.TB, numBlocks int) (*SPECU, []uint64) {
	b.Helper()
	eng, err := sharedEngine()
	if err != nil {
		b.Fatal(err)
	}
	s := NewSPECU(eng, Parallel)
	if err := s.PowerOn(prng.NewKey(0xBE, 0xAC)); err != nil {
		b.Fatal(err)
	}
	addrs := make([]uint64, numBlocks)
	ops := make([]WriteOp, numBlocks)
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	for i := range addrs {
		addrs[i] = uint64(i) * BlockSize
		ops[i] = WriteOp{Addr: addrs[i], Data: data}
	}
	for _, err := range s.WriteBatch(context.Background(), ops) {
		if err != nil {
			b.Fatal(err)
		}
	}
	return s, addrs
}

// BenchmarkSPECUSequentialRead is the pre-tentpole baseline: one goroutine,
// no pool, blocks decrypted and re-encrypted one crossbar at a time.
func BenchmarkSPECUSequentialRead(b *testing.B) {
	s, addrs := benchSPECU(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(addrs[i%len(addrs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSPECUShardedRead drives the same read mix through the served
// pipeline at 1, 4 and 8 workers: independent blocks run on different
// shards concurrently and each block's four crossbars fan out as subtasks.
// On a multi-core host the >= 4-worker variants beat the sequential
// baseline; on GOMAXPROCS=1 they bound the pipeline's scheduling overhead
// instead (see EXPERIMENTS.md for recorded numbers).
func BenchmarkSPECUShardedRead(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			s, addrs := benchSPECU(b, 64)
			if err := s.Serve(context.Background(), workers, 2*len(addrs)); err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := len(addrs)
				if rem := b.N - done; rem < n {
					n = rem
				}
				for _, r := range s.ReadBatch(context.Background(), addrs[:n]) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				done += n
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

// BenchmarkSPECUShardedWrite mirrors the read benchmark for the write path
// (write phase + encryption phase per block).
func BenchmarkSPECUShardedWrite(b *testing.B) {
	for _, workers := range []int{0, 4} { // 0 = no pool (sequential)
		name := "sequential"
		if workers > 0 {
			name = benchName(workers)
		}
		b.Run(name, func(b *testing.B) {
			s, addrs := benchSPECU(b, 64)
			if workers > 0 {
				if err := s.Serve(context.Background(), workers, 2*len(addrs)); err != nil {
					b.Fatal(err)
				}
				defer s.Close()
			}
			data := make([]byte, BlockSize)
			ops := make([]WriteOp, len(addrs))
			for i := range ops {
				ops[i] = WriteOp{Addr: addrs[i], Data: data}
			}
			b.ResetTimer()
			done := 0
			for done < b.N {
				n := len(ops)
				if rem := b.N - done; rem < n {
					n = rem
				}
				for _, err := range s.WriteBatch(context.Background(), ops[:n]) {
					if err != nil {
						b.Fatal(err)
					}
				}
				done += n
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

// BenchmarkSPECUEncryptBatch is the epoch re-encryption sweep: each
// iteration decrypts then re-encrypts the whole working set through the
// coalesced batch path (one pulse-train pair per block, one shard run per
// touched shard). This is the workload the adaptive scheduler exists
// for — large, embarrassingly parallel, latency-insensitive — and the
// workers=4-vs-1 ratio is the CI speedup gate on multi-core hosts.
func BenchmarkSPECUEncryptBatch(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			s, addrs := benchSPECU(b, 64)
			if err := s.Serve(context.Background(), workers, 2*len(addrs)); err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, err := range s.DecryptBatch(ctx, addrs) {
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, err := range s.EncryptBatch(ctx, addrs) {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.N*len(addrs))/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}

func benchName(workers int) string {
	return fmt.Sprintf("workers=%d", workers)
}
