package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry/slo"
	"snvmm/internal/telemetry/trace"
)

// Mode selects between the paper's two SPE variants (Section 7).
type Mode int

const (
	// Serial leaves a block decrypted after a read until it is written
	// back or the re-encryption timer fires; reads of decrypted blocks
	// are free but a window of plaintext exists in the NVMM.
	Serial Mode = iota
	// Parallel re-encrypts immediately after every read, keeping 100% of
	// memory encrypted at the cost of the encryption latency per read.
	Parallel
)

func (m Mode) String() string {
	if m == Serial {
		return "SPE-serial"
	}
	return "SPE-parallel"
}

// NumShards is the number of independently locked partitions of the block
// map. Accesses to blocks in different shards proceed concurrently; a
// power of two so the shard index is a mask of the mixed address hash.
const NumShards = 32

// shard is one partition of the block map: its own lock, its own blocks.
// The lock is held exclusively for the whole pulse sequence of any
// operation that mutates a resident block, which serializes same-block
// accesses while leaving other shards free — the paper's banked NVMM
// picture, with one SPE pipeline per bank group.
type shard struct {
	mu     sync.RWMutex
	blocks map[uint64]*Block
}

// SPECU is the Sneak Path Encryption Control Unit: it sits between the L2
// cache and the NVMM, holds the key in volatile storage while powered, and
// drives block encryption/decryption. All methods are safe for concurrent
// use; see Serve for the batched, worker-pool-driven fast path.
type SPECU struct {
	eng  *Engine
	mode Mode

	// keyMu orders every data operation against the key lifecycle: ops
	// hold it shared for their whole duration, PowerOn/PowerOff hold it
	// exclusively. PowerOff therefore acts as a barrier — in-flight
	// operations complete under the old key before the flush begins, and
	// operations arriving after it fail with ErrNoKey.
	keyMu  sync.RWMutex
	key    prng.Key
	hasKey bool

	shards [NumShards]shard

	// pool, when non-nil, parallelizes batch operations and fans each
	// block's crossbars out to workers.
	pool atomic.Pointer[Pool]

	// tel, when non-nil, is the resolved instrument set (EnableTelemetry).
	// The disabled fast path is this one load and a branch.
	tel atomic.Pointer[specuTel]

	// tracer, when non-nil, records causal spans for every batch
	// (EnableTracing). Detached tracing is one load and a branch per
	// batch; all span plumbing below it is value types.
	tracer atomic.Pointer[trace.Tracer]

	// sloEng, when non-nil, is the rolling-window SLO engine the telemetry
	// observe path feeds (EnableSLO).
	sloEng atomic.Pointer[slo.Engine]
}

// NewSPECU creates a control unit for a device built from the engine's
// crossbar design.
func NewSPECU(eng *Engine, mode Mode) *SPECU {
	s := &SPECU{eng: eng, mode: mode}
	for i := range s.shards {
		s.shards[i].blocks = make(map[uint64]*Block)
	}
	return s
}

// Engine exposes the underlying SPE engine.
func (s *SPECU) Engine() *Engine { return s.eng }

// Mode reports the configured SPE variant.
func (s *SPECU) Mode() Mode { return s.mode }

// Trace lane assignment. Lanes are Perfetto-thread grouping hints: the
// batch root lives on the caller lane, each coalesced shard run on its
// shard's lane (shard-run spans start after the shard lock is acquired,
// so one lane's spans are serialized by construction), and the per-block
// crossbar fan-out on a lane derived from the parent's — distinct parent
// lanes get disjoint fan ranges, so concurrent subtask spans never share
// a lane.
const (
	laneCaller    = 0
	laneShardBase = 1             // lanes 1..NumShards: coalesced shard runs
	laneFanBase   = NumShards + 1 // crossbar fan-out lanes start here
	laneFanStride = 16            // fan lanes reserved per parent lane
)

// fanLane maps (parent lane, crossbar index) to a fan-out lane.
func fanLane(parent uint32, i int) uint32 {
	if i >= laneFanStride {
		i = laneFanStride - 1
	}
	return laneFanBase + parent*laneFanStride + uint32(i)
}

// EnableTracing attaches a causal tracer: every batch becomes a trace
// root whose spans follow the op through coalesced shard runs, pool
// claim/steal, the per-block crossbar fan-out and down to the pulse
// trains. Passing nil detaches; a detached SPECU pays one atomic load
// and a branch per batch and zero allocations.
func (s *SPECU) EnableTracing(tr *trace.Tracer) {
	if tr != nil {
		tr.NameLane(laneCaller, "batch caller")
		for i := 0; i < NumShards; i++ {
			tr.NameLane(uint32(laneShardBase+i), fmt.Sprintf("shard %02d", i))
		}
	}
	s.tracer.Store(tr)
}

// Tracer returns the attached causal tracer (nil when tracing is off).
func (s *SPECU) Tracer() *trace.Tracer { return s.tracer.Load() }

// shardIndex maps a block address to its shard index. The multiplicative
// hash spreads block-aligned (low-bits-zero) addresses across all shards.
func shardIndex(addr uint64) int {
	h := addr * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return int(h & (NumShards - 1))
}

// shardOf maps a block address to its shard.
func (s *SPECU) shardOf(addr uint64) *shard {
	return &s.shards[shardIndex(addr)]
}

// cryptPool returns the pool the block-crypt fan-out should use: nil when
// none is attached or the attached pool caps at one worker — a
// single-worker fan-out is pure claim overhead (the caller executes every
// crossbar task itself anyway), so those paths run the inline serial crypt.
func (s *SPECU) cryptPool() *Pool {
	p := s.pool.Load()
	if p == nil || p.Workers() == 1 {
		return nil
	}
	return p
}

// PowerOn installs the key released by the TPM into the SPECU's volatile
// key register. Re-installing the same key is a no-op; installing a
// different key over a live one fails with ErrKeyLoaded (it would strand
// every resident ciphertext block).
func (s *SPECU) PowerOn(key prng.Key) error {
	sp := s.tel.Load().span(metaPowerOn)
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	if s.hasKey {
		if s.key == key {
			sp.End(1, 0)
			return nil
		}
		sp.End(0, 1)
		return ErrKeyLoaded
	}
	s.key = key
	s.hasKey = true
	sp.End(1, 0)
	return nil
}

// PowerOff drops the volatile key. Blocks that are still plaintext at this
// moment (Serial mode) are encrypted first — the paper's power-down flush —
// and the caller can model the cold-boot window with PlaintextBlocks before
// calling this. Concurrent data operations either complete before the
// flush (their shard work is done under the old key) or fail with ErrNoKey
// after it. Calling PowerOff while already off succeeds only if no
// plaintext remains; otherwise it reports ErrNoKey instead of silently
// leaving plaintext in the NVMM.
func (s *SPECU) PowerOff() error {
	// The span opens before the barrier acquire, so its duration covers
	// waiting out in-flight operations plus the flush itself; A0 reports
	// the number of blocks the flush encrypted, A1 flags failure.
	sp := s.tel.Load().span(metaPowerOff)
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	if !s.hasKey {
		if n := s.plaintextCount(); n > 0 {
			sp.End(0, 1)
			return fmt.Errorf("core: %d plaintext blocks resident at power-off: %w", n, ErrNoKey)
		}
		sp.End(0, 0)
		return nil
	}
	flushed, err := s.encryptAll(s.key)
	if err != nil {
		sp.End(int64(flushed), 1)
		return err
	}
	s.key = prng.Key{}
	s.hasKey = false
	sp.End(int64(flushed), 0)
	return nil
}

// HasKey reports whether the volatile key register is loaded.
func (s *SPECU) HasKey() bool {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	return s.hasKey
}

// snapshotKey returns the live key or ErrNoKey. Callers must hold keyMu
// shared for the duration of the operation that uses the key.
func (s *SPECU) snapshotKey() (prng.Key, error) {
	if !s.hasKey {
		return prng.Key{}, ErrNoKey
	}
	return s.key, nil
}

// blockLocked fetches or fabricates the block at addr. The shard lock must
// be held exclusively.
func (s *SPECU) blockLocked(sh *shard, addr uint64) (*Block, error) {
	if b, ok := sh.blocks[addr]; ok {
		return b, nil
	}
	b, err := s.eng.NewBlock(int64(addr))
	if err != nil {
		return nil, err
	}
	sh.blocks[addr] = b
	if t := s.tel.Load(); t != nil {
		t.blocks.Add(1)
		t.plaintext.Add(1) // fresh blocks are plaintext until encrypted
	}
	return b, nil
}

// Write stores a 64-byte cache block at addr: write phase then encryption
// phase (Section 4.1).
func (s *SPECU) Write(addr uint64, data []byte) error {
	t := s.tel.Load()
	start := t.now()
	err := s.write(addr, data)
	t.observeWrite(shardIndex(addr), start)
	return err
}

func (s *SPECU) write(addr uint64, data []byte) error {
	return s.writeCtx(addr, data, trace.Context{})
}

// writeCtx is write with the op's causal trace context; the inline batch
// path uses it so per-op spans keep their crypt/pulse children.
func (s *SPECU) writeCtx(addr uint64, data []byte, tc trace.Context) error {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		return err
	}
	pool := s.cryptPool()
	si := shardIndex(addr)
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.writeLocked(si, sh, key, pool, addr, data, tc)
}

// writeLocked is the write body. The caller holds keyMu (shared) and the
// shard lock (exclusive); coalesced batch runs call it directly so a run
// of same-shard ops pays the lock acquisitions once, not once per op.
// tc is the op's causal trace context (the zero Context when untraced).
func (s *SPECU) writeLocked(si int, sh *shard, key prng.Key, pool *Pool, addr uint64, data []byte, tc trace.Context) error {
	b, err := s.blockLocked(sh, addr)
	if err != nil {
		return err
	}
	if b.Encrypted() {
		// Overwrite: the stale ciphertext is simply reprogrammed.
		if err := s.blockCrypt(si, b, key, addr, true, pool, tc); err != nil {
			return err
		}
	}
	if err := b.WritePlain(data); err != nil {
		return err
	}
	return s.blockCrypt(si, b, key, addr, false, pool, tc)
}

// Read returns the plaintext of the block at addr. In Parallel mode the
// block is re-encrypted immediately; in Serial mode it stays decrypted
// until written back or EncryptPending is called.
func (s *SPECU) Read(addr uint64) ([]byte, error) {
	t := s.tel.Load()
	start := t.now()
	data, err := s.read(addr)
	t.observeRead(shardIndex(addr), start)
	return data, err
}

func (s *SPECU) read(addr uint64) ([]byte, error) {
	return s.readCtx(addr, trace.Context{})
}

// readCtx is read with the op's causal trace context (see writeCtx).
func (s *SPECU) readCtx(addr uint64, tc trace.Context) ([]byte, error) {
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		return nil, err
	}
	pool := s.cryptPool()
	si := shardIndex(addr)
	sh := &s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.readLocked(si, sh, key, pool, addr, tc)
}

// readLocked is the read body. Same locking contract as writeLocked.
func (s *SPECU) readLocked(si int, sh *shard, key prng.Key, pool *Pool, addr uint64, tc trace.Context) ([]byte, error) {
	b, ok := sh.blocks[addr]
	if !ok {
		return nil, errNoBlockAt(addr)
	}
	if b.Encrypted() {
		if err := s.blockCrypt(si, b, key, addr, true, pool, tc); err != nil {
			return nil, err
		}
	}
	data, err := b.ReadPlain()
	if err != nil {
		return nil, err
	}
	if s.mode == Parallel {
		if err := s.blockCrypt(si, b, key, addr, false, pool, tc); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// encryptAll encrypts every currently-plaintext block, returning how many
// it encrypted. keyMu must be held (shared or exclusive) by the caller.
func (s *SPECU) encryptAll(key prng.Key) (int, error) {
	pool := s.cryptPool()
	flushed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for addr, b := range sh.blocks {
			if !b.Encrypted() {
				if err := s.blockCrypt(i, b, key, addr, false, pool, trace.Context{}); err != nil {
					sh.mu.Unlock()
					return flushed, err
				}
				flushed++
			}
		}
		sh.mu.Unlock()
	}
	return flushed, nil
}

// EncryptPending encrypts every currently-plaintext block (the Serial-mode
// background timer, and the first step of power-down).
func (s *SPECU) EncryptPending() error {
	sp := s.tel.Load().span(metaEncryptPending)
	s.keyMu.RLock()
	defer s.keyMu.RUnlock()
	key, err := s.snapshotKey()
	if err != nil {
		sp.End(0, 1)
		return err
	}
	flushed, err := s.encryptAll(key)
	if err != nil {
		sp.End(int64(flushed), 1)
		return err
	}
	sp.End(int64(flushed), 0)
	return nil
}

// plaintextCount counts plaintext blocks; callers must hold keyMu to keep
// the count stable against concurrent encrypt/decrypt.
func (s *SPECU) plaintextCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, b := range sh.blocks {
			if !b.Encrypted() {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// PlaintextBlocks counts blocks currently stored unencrypted.
func (s *SPECU) PlaintextBlocks() int {
	return s.plaintextCount()
}

// Blocks returns the number of allocated blocks.
func (s *SPECU) Blocks() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.blocks)
		sh.mu.RUnlock()
	}
	return n
}

// Addresses returns every allocated block address, in no particular order.
// Red-team scrapers iterate it with Steal to sweep the raw NVMM contents.
func (s *SPECU) Addresses() []uint64 {
	var out []uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for addr := range sh.blocks {
			out = append(out, addr)
		}
		sh.mu.RUnlock()
	}
	return out
}

// EncryptedFraction is the fraction of allocated blocks holding ciphertext.
func (s *SPECU) EncryptedFraction() float64 {
	total, plain := 0, 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.blocks)
		for _, b := range sh.blocks {
			if !b.Encrypted() {
				plain++
			}
		}
		sh.mu.RUnlock()
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(plain)/float64(total)
}

// Steal returns the raw stored bits at addr without any key — the attacker
// operation of Attack 1. It fails only if the address was never written.
func (s *SPECU) Steal(addr uint64) ([]byte, error) {
	if t := s.tel.Load(); t != nil {
		t.steals.Inc()
	}
	sh := s.shardOf(addr)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	b, ok := sh.blocks[addr]
	if !ok {
		return nil, errNoBlockAt(addr)
	}
	return b.ReadRaw(), nil
}
