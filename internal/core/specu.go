package core

import (
	"fmt"

	"snvmm/internal/prng"
)

// Mode selects between the paper's two SPE variants (Section 7).
type Mode int

const (
	// Serial leaves a block decrypted after a read until it is written
	// back or the re-encryption timer fires; reads of decrypted blocks
	// are free but a window of plaintext exists in the NVMM.
	Serial Mode = iota
	// Parallel re-encrypts immediately after every read, keeping 100% of
	// memory encrypted at the cost of the encryption latency per read.
	Parallel
)

func (m Mode) String() string {
	if m == Serial {
		return "SPE-serial"
	}
	return "SPE-parallel"
}

// SPECU is the Sneak Path Encryption Control Unit: it sits between the L2
// cache and the NVMM, holds the key in volatile storage while powered, and
// drives block encryption/decryption.
type SPECU struct {
	eng    *Engine
	mode   Mode
	key    prng.Key
	hasKey bool
	blocks map[uint64]*Block
}

// NewSPECU creates a control unit for a device built from the engine's
// crossbar design.
func NewSPECU(eng *Engine, mode Mode) *SPECU {
	return &SPECU{eng: eng, mode: mode, blocks: make(map[uint64]*Block)}
}

// Engine exposes the underlying SPE engine.
func (s *SPECU) Engine() *Engine { return s.eng }

// PowerOn installs the key released by the TPM into the SPECU's volatile
// key register.
func (s *SPECU) PowerOn(key prng.Key) {
	s.key = key
	s.hasKey = true
}

// PowerOff drops the volatile key. Blocks that are still plaintext at this
// moment (Serial mode) are encrypted first — the paper's power-down flush —
// and the caller can model the cold-boot window with PlaintextBlocks before
// calling this.
func (s *SPECU) PowerOff() error {
	if s.hasKey {
		for addr, b := range s.blocks {
			if !b.Encrypted() {
				if err := b.Encrypt(s.key, addr); err != nil {
					return err
				}
			}
		}
	}
	s.key = prng.Key{}
	s.hasKey = false
	return nil
}

// HasKey reports whether the volatile key register is loaded.
func (s *SPECU) HasKey() bool { return s.hasKey }

// block fetches or fabricates the block at addr.
func (s *SPECU) block(addr uint64) (*Block, error) {
	if b, ok := s.blocks[addr]; ok {
		return b, nil
	}
	b, err := s.eng.NewBlock(int64(addr))
	if err != nil {
		return nil, err
	}
	s.blocks[addr] = b
	return b, nil
}

// Write stores a 64-byte cache block at addr: write phase then encryption
// phase (Section 4.1).
func (s *SPECU) Write(addr uint64, data []byte) error {
	if !s.hasKey {
		return fmt.Errorf("core: SPECU has no key (powered down?)")
	}
	b, err := s.block(addr)
	if err != nil {
		return err
	}
	if b.Encrypted() {
		// Overwrite: the stale ciphertext is simply reprogrammed.
		if err := b.Decrypt(s.key, addr); err != nil {
			return err
		}
	}
	if err := b.WritePlain(data); err != nil {
		return err
	}
	return b.Encrypt(s.key, addr)
}

// Read returns the plaintext of the block at addr. In Parallel mode the
// block is re-encrypted immediately; in Serial mode it stays decrypted
// until written back or EncryptPending is called.
func (s *SPECU) Read(addr uint64) ([]byte, error) {
	if !s.hasKey {
		return nil, fmt.Errorf("core: SPECU has no key (powered down?)")
	}
	b, ok := s.blocks[addr]
	if !ok {
		return nil, fmt.Errorf("core: no block at %#x", addr)
	}
	if b.Encrypted() {
		if err := b.Decrypt(s.key, addr); err != nil {
			return nil, err
		}
	}
	data, err := b.ReadPlain()
	if err != nil {
		return nil, err
	}
	if s.mode == Parallel {
		if err := b.Encrypt(s.key, addr); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// EncryptPending encrypts every currently-plaintext block (the Serial-mode
// background timer, and the first step of power-down).
func (s *SPECU) EncryptPending() error {
	if !s.hasKey {
		return fmt.Errorf("core: SPECU has no key")
	}
	for addr, b := range s.blocks {
		if !b.Encrypted() {
			if err := b.Encrypt(s.key, addr); err != nil {
				return err
			}
		}
	}
	return nil
}

// PlaintextBlocks counts blocks currently stored unencrypted.
func (s *SPECU) PlaintextBlocks() int {
	n := 0
	for _, b := range s.blocks {
		if !b.Encrypted() {
			n++
		}
	}
	return n
}

// Blocks returns the number of allocated blocks.
func (s *SPECU) Blocks() int { return len(s.blocks) }

// EncryptedFraction is the fraction of allocated blocks holding ciphertext.
func (s *SPECU) EncryptedFraction() float64 {
	if len(s.blocks) == 0 {
		return 1
	}
	return 1 - float64(s.PlaintextBlocks())/float64(len(s.blocks))
}

// Steal returns the raw stored bits at addr without any key — the attacker
// operation of Attack 1. It fails only if the address was never written.
func (s *SPECU) Steal(addr uint64) ([]byte, error) {
	b, ok := s.blocks[addr]
	if !ok {
		return nil, fmt.Errorf("core: no block at %#x", addr)
	}
	return b.ReadRaw(), nil
}
