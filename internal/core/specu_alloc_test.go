package core

import (
	"context"
	"testing"
)

// TestShardedReadAllocRegression pins the allocation budget of a served
// Parallel-mode read — the hot path of the sharded pipeline. The crypt
// fan-out used to allocate its claim state (errs, claimed, five closures)
// twice per read (decrypt + re-encrypt), which put the path at ~57 allocs;
// the per-block reusable scratch brings it down to ~41. The ceiling leaves
// slack for scheduling jitter but fails if the per-call allocations return.
func TestShardedReadAllocRegression(t *testing.T) {
	s, addrs := benchSPECU(t, 16)
	if err := s.Serve(context.Background(), 2, 64); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Warm every block so steady-state reads never fabricate or grow maps.
	for _, a := range addrs {
		if _, err := s.Read(a); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		if _, err := s.Read(addrs[i%len(addrs)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	const ceiling = 44
	if avg > ceiling {
		t.Errorf("sharded read allocates %.1f/op, ceiling %d", avg, ceiling)
	}
}
