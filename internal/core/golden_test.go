package core

import (
	"bytes"
	"testing"

	"snvmm/internal/device"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// The golden vectors pin the full keyed pipeline for one fixed key: the
// ILP's PoE placement for the default 8x8 crossbar, the key-derived
// (PoE-order, pulse-class) schedule, and the exact ciphertext of a fixed
// block. Any drift in the ILP tie-breaking, the PRNG, the schedule
// derivation or the pulse semantics shows up here as a vector mismatch —
// which would silently strand every previously written ciphertext, so a
// change that trips this test needs a data-migration story, not just new
// vectors.
var (
	goldenKey   = prng.NewKey(0x0123456789ABCDEF, 0xFEDCBA9876543210)
	goldenTweak = uint64(0x1C0)

	goldenPlacement = []xbar.Cell{
		{Row: 0, Col: 0}, {Row: 0, Col: 2}, {Row: 0, Col: 4}, {Row: 0, Col: 6},
		{Row: 1, Col: 2}, {Row: 1, Col: 6}, {Row: 2, Col: 0}, {Row: 2, Col: 4},
		{Row: 5, Col: 1}, {Row: 5, Col: 5}, {Row: 6, Col: 3}, {Row: 6, Col: 7},
		{Row: 7, Col: 1}, {Row: 7, Col: 3}, {Row: 7, Col: 5}, {Row: 7, Col: 7},
	}
	goldenOrder   = []int{9, 2, 5, 11, 4, 3, 10, 14, 6, 7, 1, 12, 13, 8, 15, 0}
	goldenClasses = []int{16, 19, 15, 12, 4, 9, 31, 22, 25, 30, 6, 7, 25, 7, 0, 28}

	// Ciphertext of goldenPlain (below) written to block seed 42 and
	// encrypted with (goldenKey, goldenTweak).
	//
	// Vector history: regenerated once when the calibration moved to
	// fixed-point (2^-40) quantized sensitivity weights and the solver to
	// Cholesky — both perturb the modelled sneak voltages below physical
	// significance but through the comparator-sensitive mixer, so the
	// ciphertext changed format-wide. Migration story for that change: the
	// simulator persists no ciphertext, and a real deployment would decrypt
	// under the pre-quantization model, upgrade the SPECU, and re-encrypt
	// on the scrub sweep (the paper's §5 re-encryption path); the
	// placement, schedule and key format are untouched, which
	// TestGoldenPlacement/TestGoldenSchedule still pin to the original
	// vectors.
	goldenCiphertext = []byte{
		0x6d, 0x44, 0x32, 0x37, 0xcf, 0x00, 0xce, 0x8f,
		0x94, 0x19, 0x46, 0x4c, 0xab, 0xc8, 0x36, 0x9d,
		0xc4, 0xbb, 0x7c, 0x7f, 0xaf, 0x3b, 0x5d, 0xa2,
		0x09, 0x45, 0xc5, 0x97, 0x0c, 0xaa, 0xf9, 0x73,
		0x54, 0xc8, 0x90, 0xfc, 0x91, 0x4f, 0x45, 0xa4,
		0x34, 0x47, 0x68, 0x95, 0x7c, 0x10, 0x05, 0xa5,
		0xaf, 0x3b, 0x30, 0x0c, 0x5f, 0xd2, 0x5b, 0x0f,
		0x99, 0x03, 0x37, 0xd7, 0x3d, 0xea, 0xc3, 0xa1,
	}
)

func goldenPlain() []byte {
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	return data
}

func TestGoldenPlacement(t *testing.T) {
	e := engineForTest(t)
	if len(e.Placement) != len(goldenPlacement) {
		t.Fatalf("placement has %d PoEs, golden %d", len(e.Placement), len(goldenPlacement))
	}
	for i, p := range e.Placement {
		if p != goldenPlacement[i] {
			t.Errorf("placement[%d] = %+v, golden %+v", i, p, goldenPlacement[i])
		}
	}
}

func TestGoldenSchedule(t *testing.T) {
	sched := prng.DeriveSchedule(goldenKey, len(goldenPlacement), device.NumPulses)
	if len(sched.Order) != len(goldenOrder) || len(sched.Classes) != len(goldenClasses) {
		t.Fatalf("schedule lengths %d/%d, golden %d/%d",
			len(sched.Order), len(sched.Classes), len(goldenOrder), len(goldenClasses))
	}
	for i := range goldenOrder {
		if sched.Order[i] != goldenOrder[i] {
			t.Errorf("order[%d] = %d, golden %d", i, sched.Order[i], goldenOrder[i])
		}
		if sched.Classes[i] != goldenClasses[i] {
			t.Errorf("classes[%d] = %d, golden %d", i, sched.Classes[i], goldenClasses[i])
		}
	}
}

func TestGoldenCiphertext(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(42)
	if err != nil {
		t.Fatal(err)
	}
	plain := goldenPlain()
	if err := b.WritePlain(plain); err != nil {
		t.Fatal(err)
	}
	if err := b.Encrypt(goldenKey, goldenTweak); err != nil {
		t.Fatal(err)
	}
	if ct := b.ReadRaw(); !bytes.Equal(ct, goldenCiphertext) {
		t.Errorf("ciphertext drifted:\n got  %x\n want %x", ct, goldenCiphertext)
	}
	if err := b.Decrypt(goldenKey, goldenTweak); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadPlain()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("golden round trip broke:\n got  %x\n want %x", got, plain)
	}
}
