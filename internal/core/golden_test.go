package core

import (
	"bytes"
	"testing"

	"snvmm/internal/device"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// The golden vectors pin the full keyed pipeline for one fixed key: the
// ILP's PoE placement for the default 8x8 crossbar, the key-derived
// (PoE-order, pulse-class) schedule, and the exact ciphertext of a fixed
// block. Any drift in the ILP tie-breaking, the PRNG, the schedule
// derivation or the pulse semantics shows up here as a vector mismatch —
// which would silently strand every previously written ciphertext, so a
// change that trips this test needs a data-migration story, not just new
// vectors.
var (
	goldenKey   = prng.NewKey(0x0123456789ABCDEF, 0xFEDCBA9876543210)
	goldenTweak = uint64(0x1C0)

	// The placement is the canonical (lexicographically smallest by
	// row-major cell index, preferring NOT selecting earlier cells)
	// optimal solution — the solver guarantees this vector for any worker
	// count and any search order, which is what lets it be pinned at all.
	goldenPlacement = []xbar.Cell{
		{Row: 0, Col: 3}, {Row: 0, Col: 4}, {Row: 1, Col: 1}, {Row: 1, Col: 2},
		{Row: 1, Col: 5}, {Row: 1, Col: 6}, {Row: 2, Col: 0}, {Row: 2, Col: 7},
		{Row: 6, Col: 0}, {Row: 6, Col: 3}, {Row: 6, Col: 4}, {Row: 6, Col: 7},
		{Row: 7, Col: 1}, {Row: 7, Col: 2}, {Row: 7, Col: 5}, {Row: 7, Col: 6},
	}
	goldenOrder   = []int{9, 2, 5, 11, 4, 3, 10, 14, 6, 7, 1, 12, 13, 8, 15, 0}
	goldenClasses = []int{16, 19, 15, 12, 4, 9, 31, 22, 25, 30, 6, 7, 25, 7, 0, 28}

	// Ciphertext of goldenPlain (below) written to block seed 42 and
	// encrypted with (goldenKey, goldenTweak).
	//
	// Vector history: regenerated once when the calibration moved to
	// fixed-point (2^-40) quantized sensitivity weights and the solver to
	// Cholesky — both perturb the modelled sneak voltages below physical
	// significance but through the comparator-sensitive mixer, so the
	// ciphertext changed format-wide. Migration story for that change: the
	// simulator persists no ciphertext, and a real deployment would decrypt
	// under the pre-quantization model, upgrade the SPECU, and re-encrypt
	// on the scrub sweep (the paper's §5 re-encryption path); the
	// placement, schedule and key format are untouched.
	//
	// Regenerated a second time when the placement solver gained canonical
	// (lex-min) solution selection: the previous placement was whichever
	// optimum the sequential search happened to visit first, the new one is
	// the unique canonical optimum (same size, 16 PoEs), so the placement —
	// and through it the per-cell PoE geometry the mixer sees — moved.
	// Schedule order/classes depend only on the key and the PoE count and
	// are unchanged; migration for deployments is the same decrypt-under-
	// old-placement, re-encrypt-on-scrub path as above.
	//
	// Regenerated a third time when the dense solvers moved to blocked
	// kernels and the calibration's sensitivity sweep to the batched
	// (probe-form) Sherman–Morrison update: fixed-block summation order and
	// the u^T G^-1 u denominator identity change the modelled voltages at
	// the last few ulps, again only visible through the comparator-sensitive
	// mixer. The placement and schedule vectors above are byte-identical
	// (the ILP does not touch the dense kernels); migration is the same
	// decrypt-under-old-model, re-encrypt-on-scrub path as the first
	// regeneration.
	goldenCiphertext = []byte{
		0xae, 0x8a, 0x06, 0x32, 0xe4, 0x0d, 0x1b, 0xc1,
		0xdf, 0x3b, 0x37, 0x75, 0x1e, 0xb0, 0xc7, 0xe6,
		0xf4, 0xdd, 0xec, 0xf6, 0x44, 0x73, 0x88, 0x4a,
		0x99, 0x2c, 0xda, 0x0b, 0x62, 0x63, 0x9f, 0x0c,
		0xd6, 0xb3, 0x93, 0x3d, 0x7c, 0x3e, 0x2d, 0x11,
		0x8c, 0x06, 0xcb, 0xd4, 0x42, 0x80, 0x11, 0xb8,
		0x6e, 0xa2, 0xa4, 0xad, 0xaf, 0xe3, 0xab, 0x4f,
		0xc8, 0x3d, 0xac, 0xfa, 0x7b, 0x23, 0xcc, 0x05,
	}
)

func goldenPlain() []byte {
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	return data
}

func TestGoldenPlacement(t *testing.T) {
	e := engineForTest(t)
	if len(e.Placement) != len(goldenPlacement) {
		t.Fatalf("placement has %d PoEs, golden %d", len(e.Placement), len(goldenPlacement))
	}
	for i, p := range e.Placement {
		if p != goldenPlacement[i] {
			t.Errorf("placement[%d] = %+v, golden %+v", i, p, goldenPlacement[i])
		}
	}
}

func TestGoldenSchedule(t *testing.T) {
	sched := prng.DeriveSchedule(goldenKey, len(goldenPlacement), device.NumPulses)
	if len(sched.Order) != len(goldenOrder) || len(sched.Classes) != len(goldenClasses) {
		t.Fatalf("schedule lengths %d/%d, golden %d/%d",
			len(sched.Order), len(sched.Classes), len(goldenOrder), len(goldenClasses))
	}
	for i := range goldenOrder {
		if sched.Order[i] != goldenOrder[i] {
			t.Errorf("order[%d] = %d, golden %d", i, sched.Order[i], goldenOrder[i])
		}
		if sched.Classes[i] != goldenClasses[i] {
			t.Errorf("classes[%d] = %d, golden %d", i, sched.Classes[i], goldenClasses[i])
		}
	}
}

func TestGoldenCiphertext(t *testing.T) {
	e := engineForTest(t)
	b, err := e.NewBlock(42)
	if err != nil {
		t.Fatal(err)
	}
	plain := goldenPlain()
	if err := b.WritePlain(plain); err != nil {
		t.Fatal(err)
	}
	if err := b.Encrypt(goldenKey, goldenTweak); err != nil {
		t.Fatal(err)
	}
	if ct := b.ReadRaw(); !bytes.Equal(ct, goldenCiphertext) {
		t.Errorf("ciphertext drifted:\n got  %x\n want %x", ct, goldenCiphertext)
	}
	if err := b.Decrypt(goldenKey, goldenTweak); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadPlain()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("golden round trip broke:\n got  %x\n want %x", got, plain)
	}
}
