package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snvmm/internal/prng"
	"snvmm/internal/telemetry"
)

// TestSPECUParallelReadWrite hammers overlapping addresses from many
// goroutines. The invariant is linearizability per address: every read
// returns the payload of some write that was issued to that address (the
// shard lock serializes same-block pulse sequences, so torn blocks would
// show up as a payload nobody wrote).
func TestSPECUParallelReadWrite(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	if err := s.PowerOn(prng.NewKey(0xC0FFEE, 0xF00D)); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background(), 4, 0); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		goroutines = 8
		opsEach    = 12
		numAddrs   = 4 // few addresses -> heavy same-shard contention
	)
	// Pre-populate and record every payload ever written per address.
	written := make([]map[byte]bool, numAddrs)
	var writtenMu sync.Mutex
	pattern := func(tag byte) []byte {
		d := make([]byte, BlockSize)
		for i := range d {
			d[i] = tag ^ byte(i)
		}
		return d
	}
	for a := 0; a < numAddrs; a++ {
		written[a] = map[byte]bool{byte(a): true}
		if err := s.Write(uint64(a)*BlockSize, pattern(byte(a))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*opsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for op := 0; op < opsEach; op++ {
				a := rng.Intn(numAddrs)
				addr := uint64(a) * BlockSize
				if rng.Intn(2) == 0 {
					tag := byte(g*opsEach + op)
					// Record before issuing: a concurrent read may observe
					// the write the instant it lands.
					writtenMu.Lock()
					written[a][tag] = true
					writtenMu.Unlock()
					if err := s.Write(addr, pattern(tag)); err != nil {
						errCh <- fmt.Errorf("write %#x: %w", addr, err)
						return
					}
				} else {
					got, err := s.Read(addr)
					if err != nil {
						errCh <- fmt.Errorf("read %#x: %w", addr, err)
						return
					}
					tag := got[0]
					if !bytes.Equal(got, pattern(tag)) {
						errCh <- fmt.Errorf("read %#x: torn block", addr)
						return
					}
					writtenMu.Lock()
					ok := written[a][tag]
					writtenMu.Unlock()
					if !ok {
						errCh <- fmt.Errorf("read %#x: payload tag %d never written", addr, tag)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s.PlaintextBlocks() != 0 {
		t.Errorf("parallel mode left %d plaintext blocks", s.PlaintextBlocks())
	}
}

// TestSPECUPowerOffInFlight powers off while reads and writes are in
// flight. Every operation must either complete under the old key or fail
// with ErrNoKey; after PowerOff returns, no plaintext may remain and the
// key must be gone.
func TestSPECUPowerOffInFlight(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial) // Serial: reads leave plaintext for the flush to find
	key := prng.NewKey(42, 43)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	const numAddrs = 6
	for a := 0; a < numAddrs; a++ {
		if err := s.Write(uint64(a)*BlockSize, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var completed, denied atomic.Int64
	start := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for op := 0; op < 8; op++ {
				addr := uint64((g+op)%numAddrs) * BlockSize
				var err error
				if op%2 == 0 {
					_, err = s.Read(addr)
				} else {
					err = s.Write(addr, make([]byte, BlockSize))
				}
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ErrNoKey):
					denied.Add(1)
				default:
					t.Errorf("op on %#x: unexpected error %v", addr, err)
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(time.Millisecond) // let some ops get in flight
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if s.HasKey() {
		t.Error("key survives PowerOff")
	}
	if n := s.PlaintextBlocks(); n != 0 {
		t.Errorf("%d plaintext blocks after PowerOff", n)
	}
	if completed.Load() == 0 && denied.Load() == 0 {
		t.Error("no operation ran at all")
	}
	// Power back on: everything must still round-trip.
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < numAddrs; a++ {
		if _, err := s.Read(uint64(a) * BlockSize); err != nil {
			t.Errorf("read %#x after power cycle: %v", a*BlockSize, err)
		}
	}
}

// TestSPECUTypedErrors pins the error contract of the key lifecycle.
func TestSPECUTypedErrors(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)

	if err := s.Write(0, make([]byte, BlockSize)); !errors.Is(err, ErrNoKey) {
		t.Errorf("keyless Write: got %v, want ErrNoKey", err)
	}
	if _, err := s.Read(0); !errors.Is(err, ErrNoKey) {
		t.Errorf("keyless Read: got %v, want ErrNoKey", err)
	}
	if err := s.EncryptPending(); !errors.Is(err, ErrNoKey) {
		t.Errorf("keyless EncryptPending: got %v, want ErrNoKey", err)
	}

	key := prng.NewKey(1, 2)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	if err := s.PowerOn(key); err != nil {
		t.Errorf("re-PowerOn with same key: %v", err)
	}
	if err := s.PowerOn(prng.NewKey(3, 4)); !errors.Is(err, ErrKeyLoaded) {
		t.Errorf("PowerOn with different key: got %v, want ErrKeyLoaded", err)
	}
	if _, err := s.Read(0x1000); !errors.Is(err, ErrNoBlock) {
		t.Errorf("Read of unwritten address: got %v, want ErrNoBlock", err)
	}
	if _, err := s.Steal(0x1000); !errors.Is(err, ErrNoBlock) {
		t.Errorf("Steal of unwritten address: got %v, want ErrNoBlock", err)
	}
	// Double PowerOff with nothing resident is fine.
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if err := s.PowerOff(); err != nil {
		t.Errorf("idle double PowerOff: %v", err)
	}
}

// TestSPECUServeLifecycle covers the Serve/Close contract and batch
// fallback.
func TestSPECUServeLifecycle(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	if err := s.PowerOn(prng.NewKey(9, 9)); err != nil {
		t.Fatal(err)
	}
	if s.Serving() {
		t.Error("serving before Serve")
	}
	if err := s.Serve(context.Background(), 2, 4); err != nil {
		t.Fatal(err)
	}
	if !s.Serving() {
		t.Error("not serving after Serve")
	}
	if err := s.Serve(context.Background(), 2, 4); !errors.Is(err, ErrServing) {
		t.Errorf("double Serve: got %v, want ErrServing", err)
	}
	s.Close()
	if s.Serving() {
		t.Error("still serving after Close")
	}
	// Batch ops fall back to the sequential path after Close.
	data := make([]byte, BlockSize)
	if errs := s.WriteBatch(context.Background(), []WriteOp{{Addr: 0, Data: data}}); errs[0] != nil {
		t.Errorf("fallback WriteBatch: %v", errs[0])
	}
	res := s.ReadBatch(context.Background(), []uint64{0})
	if res[0].Err != nil || !bytes.Equal(res[0].Data, data) {
		t.Errorf("fallback ReadBatch: %+v", res[0])
	}

	// Context cancellation detaches the pool.
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Serve(ctx, 2, 4); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for s.Serving() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Serving() {
		t.Error("pool still attached after context cancellation")
	}
}

// TestSPECUBatchCancellation verifies that a cancelled context fails
// batched operations with context.Canceled rather than hanging.
func TestSPECUBatchCancellation(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Parallel)
	if err := s.PowerOn(prng.NewKey(5, 6)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := s.WriteBatch(ctx, []WriteOp{{Addr: 0, Data: make([]byte, BlockSize)}})
	if !errors.Is(errs[0], context.Canceled) {
		t.Errorf("cancelled WriteBatch: got %v, want context.Canceled", errs[0])
	}
	res := s.ReadBatch(ctx, []uint64{0})
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("cancelled ReadBatch: got %v, want context.Canceled", res[0].Err)
	}
}

// TestSPECUBatchRoundTrip exercises WriteBatch/ReadBatch/EncryptBatch/
// DecryptBatch through a live pool across many shards.
func TestSPECUBatchRoundTrip(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial)
	if err := s.PowerOn(prng.NewKey(0xBA7C4, 0x5EED)); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(context.Background(), 4, 8); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 24
	ops := make([]WriteOp, n)
	addrs := make([]uint64, n)
	for i := range ops {
		addrs[i] = uint64(i) * BlockSize
		data := make([]byte, BlockSize)
		for j := range data {
			data[j] = byte(i + j)
		}
		ops[i] = WriteOp{Addr: addrs[i], Data: data}
	}
	for i, err := range s.WriteBatch(context.Background(), ops) {
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, r := range s.ReadBatch(context.Background(), addrs) {
		if r.Err != nil {
			t.Fatalf("read %d: %v", i, r.Err)
		}
		if !bytes.Equal(r.Data, ops[i].Data) {
			t.Fatalf("read %d: payload mismatch", i)
		}
	}
	// Serial mode left everything plaintext; EncryptBatch(nil) flushes all.
	if got := s.PlaintextBlocks(); got != n {
		t.Fatalf("plaintext blocks = %d, want %d", got, n)
	}
	for i, err := range s.EncryptBatch(context.Background(), nil) {
		if err != nil {
			t.Fatalf("encrypt %d: %v", i, err)
		}
	}
	if got := s.PlaintextBlocks(); got != 0 {
		t.Fatalf("plaintext blocks after EncryptBatch = %d", got)
	}
	// DecryptBatch is the bulk read-ahead: blocks become plaintext-resident.
	if errs := s.DecryptBatch(context.Background(), addrs[:4]); errors.Join(errs...) != nil {
		t.Fatalf("DecryptBatch: %v", errors.Join(errs...))
	}
	if got := s.PlaintextBlocks(); got != 4 {
		t.Fatalf("plaintext blocks after DecryptBatch = %d, want 4", got)
	}
	// Unknown address reports ErrNoBlock in its slot only.
	errs := s.EncryptBatch(context.Background(), []uint64{addrs[0], 0x999940})
	if errs[0] != nil {
		t.Errorf("EncryptBatch known addr: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrNoBlock) {
		t.Errorf("EncryptBatch unknown addr: got %v, want ErrNoBlock", errs[1])
	}
}

// TestSPECUTelemetryBarrierSpans runs Steal and EncryptPending concurrently
// with PowerOff on an instrumented SPECU and checks the recorded barrier
// spans. The invariants: every span closes with a non-negative duration, the
// power_off span reports success, each written block is flushed exactly once
// (the A0 flush counts across all successful barriers sum to the block
// count), and the steals counter matches the calls issued.
func TestSPECUTelemetryBarrierSpans(t *testing.T) {
	e := engineForTest(t)
	s := NewSPECU(e, Serial) // Serial: reads leave plaintext for the barriers to flush
	reg := telemetry.New()
	s.EnableTelemetry(reg)
	key := prng.NewKey(0x5EC0, 0xDA7A)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	const numAddrs = 8
	for a := 0; a < numAddrs; a++ {
		if err := s.Write(uint64(a)*BlockSize, make([]byte, BlockSize)); err != nil {
			t.Fatal(err)
		}
		// Serial-mode reads decrypt in place and stay plaintext.
		if _, err := s.Read(uint64(a) * BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.PlaintextBlocks(); got != numAddrs {
		t.Fatalf("setup: plaintext blocks = %d, want %d", got, numAddrs)
	}

	const (
		stealers   = 4
		stealsEach = 16
		flushers   = 3
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < stealers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for op := 0; op < stealsEach; op++ {
				addr := uint64((g+op)%numAddrs) * BlockSize
				if _, err := s.Steal(addr); err != nil {
					t.Errorf("steal %#x: %v", addr, err)
				}
			}
		}(g)
	}
	for g := 0; g < flushers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for op := 0; op < 4; op++ {
				// ErrNoKey is expected once PowerOff wins the race.
				if err := s.EncryptPending(); err != nil && !errors.Is(err, ErrNoKey) {
					t.Errorf("EncryptPending: %v", err)
				}
			}
		}()
	}
	close(start)
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if s.HasKey() || s.PlaintextBlocks() != 0 {
		t.Fatalf("after PowerOff: hasKey=%v plaintext=%d", s.HasKey(), s.PlaintextBlocks())
	}

	snap := reg.Snapshot()
	if got := snap.Counters["specu.steals"]; got != stealers*stealsEach {
		t.Errorf("specu.steals = %d, want %d", got, stealers*stealsEach)
	}
	if got := snap.Gauges["specu.plaintext_blocks"]; got != 0 {
		t.Errorf("specu.plaintext_blocks gauge = %d, want 0", got)
	}
	if got := snap.Gauges["specu.blocks"]; got != numAddrs {
		t.Errorf("specu.blocks gauge = %d, want %d", got, numAddrs)
	}

	events := reg.Recorder().Events(reg.Recorder().Cap())
	var powerOns, powerOffs, pendings int
	var flushedTotal int64
	for _, ev := range events {
		if ev.Subsystem != "specu" {
			continue
		}
		if ev.DurNs < 0 {
			t.Errorf("span %s recorded as instant event (dur %d)", ev.Name, ev.DurNs)
		}
		switch ev.Name {
		case "power_on":
			powerOns++
		case "power_off":
			powerOffs++
			if ev.A1 != 0 {
				t.Errorf("power_off span reports failure (A1=%d)", ev.A1)
			}
			flushedTotal += ev.A0
		case "encrypt_pending":
			pendings++
			if ev.A1 == 0 {
				flushedTotal += ev.A0
			} else if ev.A0 != 0 {
				t.Errorf("failed encrypt_pending span claims %d flushes", ev.A0)
			}
		}
	}
	if powerOns != 1 {
		t.Errorf("power_on spans = %d, want 1", powerOns)
	}
	if powerOffs != 1 {
		t.Errorf("power_off spans = %d, want 1", powerOffs)
	}
	if pendings != flushers*4 {
		t.Errorf("encrypt_pending spans = %d, want %d", pendings, flushers*4)
	}
	// Every block is encrypted exactly once, under its shard lock, by
	// whichever barrier reaches it first — the flush counts must partition
	// the block set.
	if flushedTotal != numAddrs {
		t.Errorf("flush counts across barriers sum to %d, want %d", flushedTotal, numAddrs)
	}
}

// --- Pool unit tests ---

func TestPoolRunsEveryTaskOnce(t *testing.T) {
	p := NewPool(4, 2)
	var n atomic.Int64
	const tasks = 100
	for i := 0; i < tasks; i++ {
		if err := p.Submit(context.Background(), func() { n.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close()
	if got := n.Load(); got != tasks {
		t.Errorf("ran %d tasks, want %d", got, tasks)
	}
}

func TestPoolSubmitAfterClose(t *testing.T) {
	p := NewPool(1, 1)
	p.Close()
	if err := p.Submit(context.Background(), func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: got %v, want ErrClosed", err)
	}
	if p.TrySubmit(func() {}) {
		t.Error("TrySubmit after Close returned true")
	}
}

func TestPoolSubmitContextCancelled(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	// Occupy the single worker and fill the depth-1 queue.
	if err := p.Submit(context.Background(), func() { <-block }); err != nil {
		t.Fatal(err)
	}
	for !p.TrySubmit(func() {}) {
		// Wait until the worker has picked up the blocker and the queue
		// accepts exactly one more task.
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.Submit(ctx, func() {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked Submit: got %v, want context.DeadlineExceeded", err)
	}
	close(block)
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	p.Close() // must not panic or hang
}
