package redteam

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"snvmm/internal/core"
	"snvmm/internal/mem"
	"snvmm/internal/prng"
	"snvmm/internal/secure"
	"snvmm/internal/trace"
)

// CrashPoint selects where in the workload the attacker cuts power.
type CrashPoint int

const (
	// CrashBetweenBatches cuts power after a read batch, before any flush
	// begins — the serial-mode worst case, every read-decrypted block
	// still plaintext.
	CrashBetweenBatches CrashPoint = iota
	// CrashMidFlush cuts power halfway through the EncryptPending drain:
	// half the plaintext blocks have been re-encrypted, half have not.
	CrashMidFlush
	// CrashDuringPowerOff cuts power after PowerOff's flush completed —
	// the clean shutdown the paper's 1.87 ms drain pays for.
	CrashDuringPowerOff
)

func (p CrashPoint) String() string {
	switch p {
	case CrashBetweenBatches:
		return "between-batches"
	case CrashMidFlush:
		return "mid-flush"
	case CrashDuringPowerOff:
		return "during-poweroff"
	default:
		return fmt.Sprintf("crash-point-%d", int(p))
	}
}

// CrashConfig parameterizes one crash-injection run against a real SPECU.
type CrashConfig struct {
	Point CrashPoint
	// Blocks is the working-set size in 64-byte blocks (<= 0 selects 16).
	Blocks int
	// Seed fixes the payloads.
	Seed int64
}

// CrashReport is what the attacker walked away with.
type CrashReport struct {
	Point           string `json:"point"`
	Blocks          int    `json:"blocks"`
	PlaintextBlocks int    `json:"plaintext_blocks"` // SPECU accounting at the crash instant
	ScrapedBytes    uint64 `json:"scraped_bytes"`    // plaintext bytes recovered from the raw cells
}

// RunCrash drives a Serial-mode SPECU through a write+read workload, cuts
// power at the configured point, and scrapes every block's raw cells
// (core.SPECU.Steal — Attack 1's read operation) looking for the plaintext
// it knows was written. A scraped block counts as recovered only if the raw
// bits equal the plaintext exactly; blocks the flush reached are ciphertext
// under the keyed pulse sequence and match nothing.
func RunCrash(eng *core.Engine, cfg CrashConfig) (*CrashReport, error) {
	n := cfg.Blocks
	if n <= 0 {
		n = 16
	}
	s := core.NewSPECU(eng, core.Serial)
	key := keyFromSeed(cfg.Seed)
	if err := s.PowerOn(key); err != nil {
		return nil, err
	}
	ctx := context.Background()

	// The attacker-observed workload: write the working set, then read it
	// all back. Serial mode leaves every read block plaintext in the NVMM.
	want := make(map[uint64][]byte, n)
	writes := make([]core.WriteOp, 0, n)
	for i := 0; i < n; i++ {
		addr := uint64(i) * core.BlockSize
		data := blockPayload(cfg.Seed, addr)
		want[addr] = data
		writes = append(writes, core.WriteOp{Addr: addr, Data: data})
	}
	for _, err := range s.WriteBatch(ctx, writes) {
		if err != nil {
			return nil, err
		}
	}
	addrs := make([]uint64, 0, n)
	for addr := range want {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, r := range s.ReadBatch(ctx, addrs) {
		if r.Err != nil {
			return nil, r.Err
		}
	}

	// Reach the crash point.
	switch cfg.Point {
	case CrashBetweenBatches:
		// Nothing: power dies right here.
	case CrashMidFlush:
		// The flush re-encrypts oldest-first; power dies after it covered
		// half the plaintext. Modeled as an EncryptBatch over that half.
		if errs := s.EncryptBatch(ctx, addrs[:len(addrs)/2]); errs != nil {
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
	case CrashDuringPowerOff:
		// PowerOff's drain completed; the crash lands on a dead, fully
		// encrypted array.
		if err := s.PowerOff(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("redteam: unknown crash point %d", cfg.Point)
	}

	rep := &CrashReport{
		Point:           cfg.Point.String(),
		Blocks:          n,
		PlaintextBlocks: s.PlaintextBlocks(),
	}
	// Power is gone: the key register is dark, but the cells persist. The
	// scrape needs no key — that is the attack.
	for _, addr := range s.Addresses() {
		raw, err := s.Steal(addr)
		if err != nil {
			return nil, err
		}
		if bytes.Equal(raw, want[addr]) {
			rep.ScrapedBytes += uint64(len(raw))
		}
	}
	return rep, nil
}

// ExposureReport is the cycle-level exposure-window measurement for one
// secure-engine run over a workload script.
type ExposureReport struct {
	Engine             string `json:"engine"`
	EpochCycles        uint64 `json:"epoch_cycles"`
	CrashCycle         uint64 `json:"crash_cycle"`
	PlaintextBytes     uint64 `json:"plaintext_bytes"`      // remanent at the crash
	ExposureByteCycles uint64 `json:"exposure_byte_cycles"` // cumulative window
}

// RunExposure replays a parsed workload script against a Table 3 engine and
// measures the persistence-attack surface. Script semantics: w/r issue
// block accesses (advancing time one cycle per access), t advances time and
// runs the background walker, f is an explicit walker invocation (an epoch
// boundary opportunity), and x cuts power — the measurement point. A script
// without an x measures at end-of-script instead. Engines that do not
// implement secure.Remanent (AES, Stream, SPE-parallel keep no plaintext)
// report zero.
func RunExposure(engine mem.EncryptionEngine, script []trace.Op) (*ExposureReport, error) {
	now := uint64(0)
loop:
	for _, op := range script {
		switch op.Kind {
		case trace.OpWrite:
			for i := uint64(0); i < op.Count; i++ {
				now++
				engine.WriteDelay(op.Addr+i*secure.BlockBytes, now)
			}
		case trace.OpRead:
			for i := uint64(0); i < op.Count; i++ {
				now++
				engine.ReadDelay(op.Addr+i*secure.BlockBytes, now)
			}
		case trace.OpTick:
			now += op.Cycles
			engine.Tick(now)
		case trace.OpFlush:
			engine.Tick(now)
		case trace.OpCrash:
			break loop
		default:
			return nil, fmt.Errorf("redteam: unknown op kind %d", op.Kind)
		}
	}
	rep := &ExposureReport{Engine: engine.Name(), CrashCycle: now}
	if e, ok := engine.(*secure.INVMM); ok {
		rep.EpochCycles = e.EpochCycles
	}
	if e, ok := engine.(*secure.SPESerial); ok {
		rep.EpochCycles = e.EpochCycles
	}
	if r, ok := engine.(secure.Remanent); ok {
		rep.PlaintextBytes = r.PlaintextBytes()
		rep.ExposureByteCycles = r.ExposureByteCycles(now)
	}
	return rep, nil
}

// DefaultCrashScript is the canonical adversarial schedule: a read sweep
// that decrypts a working set in place, idle gaps long enough for epoch
// flushes but (deliberately) not for the inertness/re-encryption timers,
// then a power cut.
func DefaultCrashScript(blocks int) []trace.Op {
	if blocks <= 0 {
		blocks = 64
	}
	ops := make([]trace.Op, 0, 2*blocks+2)
	for i := 0; i < blocks; i++ {
		ops = append(ops,
			trace.Op{Kind: trace.OpRead, Addr: uint64(i) * secure.BlockBytes, Count: 1},
			trace.Op{Kind: trace.OpTick, Cycles: 100},
		)
	}
	ops = append(ops,
		trace.Op{Kind: trace.OpTick, Cycles: 1000},
		trace.Op{Kind: trace.OpCrash},
	)
	return ops
}

// keyFromSeed derives the SPECU key for a scenario seed.
func keyFromSeed(seed int64) prng.Key {
	g := prng.NewGen(uint64(seed)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB)
	return prng.NewKey(g.Uint64(), g.Uint64())
}

// blockPayload derives the deterministic 64-byte plaintext for (seed, addr).
func blockPayload(seed int64, addr uint64) []byte {
	g := prng.NewGen(uint64(seed) ^ addr*0x9E3779B97F4A7C15)
	out := make([]byte, core.BlockSize)
	for i := range out {
		out[i] = byte(g.Uint64())
	}
	return out
}
