package redteam

import (
	"sync"
	"testing"

	"snvmm/internal/core"
	"snvmm/internal/xbar"
)

var (
	engOnce sync.Once
	engVal  *core.Engine
	engErr  error
)

// testEngine builds the default 8x8 / 16-PoE engine once for the package.
func testEngine(t testing.TB) *core.Engine {
	engOnce.Do(func() {
		engVal, engErr = core.NewEngine(core.DefaultParams())
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engVal
}

// TestSideChannelVerdicts is the headline acceptance assertion: under one
// fixed seed, the TVLA distinguisher must flag the leaky raw driver and
// pass the power-balanced driver.
func TestSideChannelVerdicts(t *testing.T) {
	eng := testEngine(t)
	for _, noise := range []float64{0, 0.01} {
		raw, err := RunSideChannel(eng, SideChannelConfig{
			Mode: xbar.TraceRaw, Seed: 1, ScopeNoise: noise,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !raw.Leaks {
			t.Fatalf("noise %g: raw driver not flagged: corrected p = %g", noise, raw.CorrectedP)
		}
		bal, err := RunSideChannel(eng, SideChannelConfig{
			Mode: xbar.TraceBalanced, Seed: 1, ScopeNoise: noise,
		})
		if err != nil {
			t.Fatal(err)
		}
		if bal.Leaks {
			t.Fatalf("noise %g: balanced driver flagged: corrected p = %g", noise, bal.CorrectedP)
		}
	}
}

// TestSideChannelIdealProbeExact pins the ideal-probe degenerate cases: the
// balanced driver's observable is an exact constant (p = 1), and the raw
// driver's keyed pulse widths are a perfect distinguisher (p = 0).
func TestSideChannelIdealProbeExact(t *testing.T) {
	eng := testEngine(t)
	bal, err := RunSideChannel(eng, SideChannelConfig{Mode: xbar.TraceBalanced, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if bal.CorrectedP != 1 {
		t.Fatalf("balanced ideal probe: corrected p = %g, want exactly 1", bal.CorrectedP)
	}
	raw, err := RunSideChannel(eng, SideChannelConfig{Mode: xbar.TraceRaw, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if raw.MinP >= 1e-6 {
		t.Fatalf("raw ideal probe: min p = %g, want a decisive distinguisher", raw.MinP)
	}
}

// TestSideChannelDeterministic re-runs one configuration and requires
// bit-identical reports — the property that lets CI assert exact verdicts.
func TestSideChannelDeterministic(t *testing.T) {
	eng := testEngine(t)
	cfg := SideChannelConfig{Mode: xbar.TraceRaw, Seed: 42, ScopeNoise: 0.02, TracesPerGroup: 20}
	a, err := RunSideChannel(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSideChannel(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("reports differ across identical runs:\n%+v\n%+v", a, b)
	}
}

// TestTraceSinkDetached checks the disabled path: with no sink attached (or
// after detaching), encryption emits nothing and still round-trips.
func TestTraceSinkDetached(t *testing.T) {
	eng := testEngine(t)
	c, err := core.NewCipher(eng, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if err := c.SetTraceSink(rec, xbar.TraceRaw); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTraceSink(nil, xbar.TraceRaw); err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, c.BlockBytes())
	for i := range pt {
		pt[i] = byte(i * 37)
	}
	key := keyFromSeed(3)
	ct, err := c.Encrypt(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.pulses) != 0 {
		t.Fatalf("detached sink still saw %d pulses", len(rec.pulses))
	}
	back, err := c.Decrypt(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(pt) {
		t.Fatal("round-trip failed with sink machinery exercised")
	}
}
