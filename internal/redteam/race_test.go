package redteam

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"snvmm/internal/core"
)

// TestConcurrentBatchesUnderPowerCycles crash-injects a served SPECU while
// ReadBatch/EncryptBatch traffic is in flight (run under -race in CI). The
// contract: every batch element either succeeds or fails with a typed error
// (ErrPoweredOff / ErrClosed — never a torn result), reads that succeed
// return exactly the written payload, and after the final recovery no
// plaintext is lost and no block is corrupted.
func TestConcurrentBatchesUnderPowerCycles(t *testing.T) {
	eng := testEngine(t)
	s := core.NewSPECU(eng, core.Serial)
	key := keyFromSeed(99)
	if err := s.PowerOn(key); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Serve(ctx, 4, 16); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const blocks = 8
	addrs := make([]uint64, blocks)
	want := make(map[uint64][]byte, blocks)
	writes := make([]core.WriteOp, 0, blocks)
	for i := range addrs {
		addrs[i] = uint64(i) * core.BlockSize
		want[addrs[i]] = blockPayload(99, addrs[i])
		writes = append(writes, core.WriteOp{Addr: addrs[i], Data: want[addrs[i]]})
	}
	for _, err := range s.WriteBatch(ctx, writes) {
		if err != nil {
			t.Fatal(err)
		}
	}

	// allowed reports whether an in-flight batch error is one of the typed
	// outcomes a power cycle may legally produce.
	allowed := func(err error) bool {
		return err == nil || errors.Is(err, core.ErrPoweredOff) || errors.Is(err, core.ErrClosed)
	}

	var stop atomic.Bool
	var fail atomic.Pointer[string]
	record := func(msg string) { fail.CompareAndSwap(nil, &msg) }
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, r := range s.ReadBatch(ctx, addrs) {
					if !allowed(r.Err) {
						record("read: untyped error: " + r.Err.Error())
						return
					}
					if r.Err == nil && !bytes.Equal(r.Data, want[r.Addr]) {
						record("read: torn block payload")
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for _, err := range s.EncryptBatch(ctx, nil) {
				if !allowed(err) {
					record("encrypt: untyped error: " + err.Error())
					return
				}
			}
		}
	}()

	// The crash injector: repeated power cycles while the batches run. The
	// keyMu barrier makes each PowerOff a clean drain, so it must never
	// fail — and PowerOn with the same key must always be accepted.
	for cycle := 0; cycle < 6; cycle++ {
		if err := s.PowerOff(); err != nil {
			t.Errorf("cycle %d: PowerOff: %v", cycle, err)
			break
		}
		if err := s.PowerOn(key); err != nil {
			t.Errorf("cycle %d: PowerOn: %v", cycle, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Recovery: every block must decrypt to its original payload, and a
	// final clean shutdown must leave nothing plaintext.
	for _, r := range s.ReadBatch(ctx, addrs) {
		if r.Err != nil {
			t.Fatalf("post-recovery read %#x: %v", r.Addr, r.Err)
		}
		if !bytes.Equal(r.Data, want[r.Addr]) {
			t.Fatalf("post-recovery read %#x: payload lost", r.Addr)
		}
	}
	if err := s.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if n := s.PlaintextBlocks(); n != 0 {
		t.Fatalf("%d plaintext blocks after final PowerOff", n)
	}
}
