package redteam

import (
	"fmt"
	"math"

	"snvmm/internal/core"
	"snvmm/internal/nist"
	"snvmm/internal/prng"
	"snvmm/internal/xbar"
)

// recorder captures every pulse of one block encryption.
type recorder struct {
	pulses []xbar.PulseTrace
}

func (r *recorder) OnPulse(t xbar.PulseTrace) { r.pulses = append(r.pulses, t) }

// SideChannelConfig parameterizes one TVLA fixed-vs-random experiment.
type SideChannelConfig struct {
	// Mode selects the pulse driver under test: xbar.TraceBalanced is the
	// hardened production driver, xbar.TraceRaw the leaky reference.
	Mode xbar.TraceMode
	// TracesPerGroup is the number of block encryptions recorded per group
	// (fixed-key group and random-key group). <= 0 selects 40.
	TracesPerGroup int
	// Seed fixes the fabrication, the keys and the scope noise.
	Seed int64
	// ScopeNoise is the relative amplitude of the measurement noise added
	// to every sample (an oscilloscope's quantization and jitter). 0 means
	// an ideal probe.
	ScopeNoise float64
	// Alpha is the significance level (<= 0 selects nist.Alpha = 0.01).
	Alpha float64
}

// SideChannelReport is the distinguisher's verdict on one driver.
type SideChannelReport struct {
	Driver         string  `json:"driver"`          // "balanced" or "raw"
	TracesPerGroup int     `json:"traces_per_group"`
	SamplePoints   int     `json:"sample_points"`   // per-trace feature count
	MinP           float64 `json:"min_p"`           // smallest per-point Welch p
	CorrectedP     float64 `json:"corrected_p"`     // Bonferroni-corrected
	Alpha          float64 `json:"alpha"`
	Leaks          bool    `json:"leaks"`           // CorrectedP < Alpha
}

// DriverName names a trace mode for reports.
func DriverName(mode xbar.TraceMode) string {
	if mode == xbar.TraceRaw {
		return "raw"
	}
	return "balanced"
}

// RunSideChannel mounts the TVLA fixed-vs-random key experiment against the
// given engine's cipher under the configured pulse driver. Group A encrypts
// a fixed plaintext under one fixed key; group B encrypts the same
// plaintext under a fresh random key per trace. Each trace contributes the
// per-pulse (duration, energy) feature vector; Welch's t-test compares the
// groups at every sample point and the smallest p-value is
// Bonferroni-corrected over the number of points. A keyed observable —
// pulse widths following the key's class schedule, supply draw following
// the keyed PoE order — separates the groups and drives the corrected p
// below alpha; a power-balanced observable cannot.
func RunSideChannel(eng *core.Engine, cfg SideChannelConfig) (*SideChannelReport, error) {
	n := cfg.TracesPerGroup
	if n <= 0 {
		n = 40
	}
	alpha := cfg.Alpha
	if alpha <= 0 {
		alpha = nist.Alpha
	}
	c, err := core.NewCipher(eng, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rec := &recorder{}
	if err := c.SetTraceSink(rec, cfg.Mode); err != nil {
		return nil, err
	}
	g := prng.NewGen(uint64(cfg.Seed)*0xA24BAED4963EE407 + 0x9FB21C651E98DF25)
	pt := make([]byte, c.BlockBytes())
	for i := range pt {
		pt[i] = byte(g.Uint64())
	}
	fixedKey := prng.NewKey(g.Uint64(), g.Uint64())

	points := 2 * len(eng.Placement) // duration + energy per pulse
	capture := func(key prng.Key) ([]float64, error) {
		rec.pulses = rec.pulses[:0]
		if _, err := c.Encrypt(key, pt); err != nil {
			return nil, err
		}
		if len(rec.pulses) != len(eng.Placement) {
			return nil, fmt.Errorf("redteam: captured %d pulses, want %d", len(rec.pulses), len(eng.Placement))
		}
		out := make([]float64, 0, points)
		for _, p := range rec.pulses {
			out = append(out, p.Duration*(1+cfg.ScopeNoise*gauss(g)))
			out = append(out, p.Energy*(1+cfg.ScopeNoise*gauss(g)))
		}
		return out, nil
	}

	groupA := make([][]float64, n)
	groupB := make([][]float64, n)
	for i := 0; i < n; i++ {
		if groupA[i], err = capture(fixedKey); err != nil {
			return nil, err
		}
		if groupB[i], err = capture(prng.NewKey(g.Uint64(), g.Uint64())); err != nil {
			return nil, err
		}
	}

	minP := 1.0
	a := make([]float64, n)
	b := make([]float64, n)
	for j := 0; j < points; j++ {
		for i := 0; i < n; i++ {
			a[i] = groupA[i][j]
			b[i] = groupB[i][j]
		}
		r := nist.WelchT(a, b)
		if r.Applicable && r.P[0] < minP {
			minP = r.P[0]
		}
	}
	corrected := math.Min(1, minP*float64(points))
	return &SideChannelReport{
		Driver:         DriverName(cfg.Mode),
		TracesPerGroup: n,
		SamplePoints:   points,
		MinP:           minP,
		CorrectedP:     corrected,
		Alpha:          alpha,
		Leaks:          corrected < alpha,
	}, nil
}

// gauss draws a standard normal variate from the harness generator
// (Box-Muller; one branch retried on the log's degenerate zero draw).
func gauss(g *prng.Gen) float64 {
	for {
		u := float64(g.Uint64()>>11) / float64(1<<53)
		v := float64(g.Uint64()>>11) / float64(1<<53)
		if u == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}
