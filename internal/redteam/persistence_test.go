package redteam

import (
	"testing"

	"snvmm/internal/secure"
)

// TestCrashPointsOrdering runs all three crash points and checks the
// attacker's haul shrinks as the crash lands later in the shutdown path:
// everything plaintext between batches, about half mid-flush, nothing after
// the PowerOff drain.
func TestCrashPointsOrdering(t *testing.T) {
	eng := testEngine(t)
	const blocks = 8
	get := func(p CrashPoint) *CrashReport {
		rep, err := RunCrash(eng, CrashConfig{Point: p, Blocks: blocks, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return rep
	}
	between := get(CrashBetweenBatches)
	mid := get(CrashMidFlush)
	off := get(CrashDuringPowerOff)

	if between.ScrapedBytes != blocks*64 {
		t.Fatalf("between-batches scrape got %d bytes, want all %d", between.ScrapedBytes, blocks*64)
	}
	if mid.ScrapedBytes != blocks/2*64 {
		t.Fatalf("mid-flush scrape got %d bytes, want %d", mid.ScrapedBytes, blocks/2*64)
	}
	if off.ScrapedBytes != 0 {
		t.Fatalf("post-PowerOff scrape recovered %d bytes, want 0", off.ScrapedBytes)
	}
	if off.PlaintextBlocks != 0 {
		t.Fatalf("post-PowerOff accounting shows %d plaintext blocks", off.PlaintextBlocks)
	}
	if !(between.ScrapedBytes > mid.ScrapedBytes && mid.ScrapedBytes > off.ScrapedBytes) {
		t.Fatalf("haul not strictly shrinking: %d, %d, %d",
			between.ScrapedBytes, mid.ScrapedBytes, off.ScrapedBytes)
	}
}

// TestExposureEpochShrink is the cycle-level acceptance assertion: over the
// canonical crash script, enabling epoch re-encryption strictly shrinks the
// measured exposure window for both plaintext-holding engines.
func TestExposureEpochShrink(t *testing.T) {
	script := DefaultCrashScript(64)

	serial := func(epoch uint64) *ExposureReport {
		e := secure.NewSPESerial(1 << 40)
		e.EpochCycles = epoch
		rep, err := RunExposure(e, script)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, epoched := serial(0), serial(500)
	if epoched.ExposureByteCycles >= base.ExposureByteCycles {
		t.Fatalf("SPE-serial: epoch window %d >= baseline %d",
			epoched.ExposureByteCycles, base.ExposureByteCycles)
	}
	if epoched.PlaintextBytes >= base.PlaintextBytes && base.PlaintextBytes > 0 {
		t.Fatalf("SPE-serial: epoch left %d plaintext bytes vs baseline %d",
			epoched.PlaintextBytes, base.PlaintextBytes)
	}

	invmm := func(epoch uint64) *ExposureReport {
		e := secure.NewINVMM(1 << 40)
		e.EpochCycles = epoch
		rep, err := RunExposure(e, script)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	baseI, epochedI := invmm(0), invmm(500)
	if epochedI.ExposureByteCycles >= baseI.ExposureByteCycles {
		t.Fatalf("i-NVMM: epoch window %d >= baseline %d",
			epochedI.ExposureByteCycles, baseI.ExposureByteCycles)
	}
}

// TestExposureNonRemanentEngines checks the always-encrypted engines report
// a zero attack surface over the same script.
func TestExposureNonRemanentEngines(t *testing.T) {
	script := DefaultCrashScript(32)
	for _, e := range []interface {
		Name() string
		ReadDelay(addr, now uint64) (uint64, uint64)
		WriteDelay(addr, now uint64) uint64
		Tick(now uint64)
		EncryptedFraction() float64
		PowerDown(now uint64) uint64
	}{secure.NewAES(), secure.NewStream(), secure.NewSPEParallel()} {
		rep, err := RunExposure(e, script)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ExposureByteCycles != 0 || rep.PlaintextBytes != 0 {
			t.Fatalf("%s: nonzero attack surface %+v", e.Name(), rep)
		}
	}
}

// TestRunExposureDeterministic pins that replaying the same script yields
// identical reports.
func TestRunExposureDeterministic(t *testing.T) {
	script := DefaultCrashScript(16)
	mk := func() *ExposureReport {
		e := secure.NewSPESerial(1 << 40)
		e.EpochCycles = 300
		rep, err := RunExposure(e, script)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(), mk()
	if *a != *b {
		t.Fatalf("exposure reports differ:\n%+v\n%+v", a, b)
	}
}
