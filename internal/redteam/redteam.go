// Package redteam is the adversarial scenario harness: instead of modeling
// attack cost formulas (internal/attacks), it mounts the attacks against a
// running SPE system and asserts the defenses hold.
//
// Two attack families are implemented, matching the two papers the threat
// model cites:
//
//   - Side channels (Chen et al., "Power-balanced Memristive Cryptographic
//     Implementation Against Side Channel Attacks"): a probe on the pulse
//     driver's supply rail records per-pulse timing and energy
//     (xbar.PulseTraceSink). A TVLA-style fixed-vs-random key experiment
//     with Welch's t-test per sample point decides whether the traces
//     depend on the key — and therefore on the keyed PoE placement order
//     and pulse schedule. The hardened constant-slot, power-balanced
//     driver must pass (p >= alpha); the deliberately leaky raw driver
//     must be flagged (p < alpha).
//
//   - Persistence attacks (Yao & Venkataramani, "Architecting Non-Volatile
//     Main Memory to Guard Against Persistence-based Attacks"): power is
//     cut mid-workload at adversarially chosen points and the NVMM's raw
//     cells are scraped for remanent plaintext. The harness measures both
//     the instantaneous remanence at the crash (bytes recovered by the
//     scrape) and the cumulative exposure window (byte·cycles of plaintext
//     residence, secure.Remanent), and verifies epoch-based re-encryption
//     shrinks the window.
//
// Everything is deterministic under a fixed seed so CI can assert exact
// verdicts.
package redteam
