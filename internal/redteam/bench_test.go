package redteam

import (
	"testing"

	"snvmm/internal/secure"
	"snvmm/internal/xbar"
)

// The attack-surface benchmarks archived in BENCH_attacks.json. Besides
// wall-clock cost they report the security metrics themselves
// (byte-cycles of exposure, scraped bytes), so a defense regression shows
// up as a metric jump in the JSON diff, not just a timing drift.

func BenchmarkSideChannelBalanced(b *testing.B) {
	eng := testEngine(b)
	for i := 0; i < b.N; i++ {
		rep, err := RunSideChannel(eng, SideChannelConfig{
			Mode: xbar.TraceBalanced, TracesPerGroup: 8, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Leaks {
			b.Fatal("balanced driver leaked")
		}
		b.ReportMetric(rep.CorrectedP, "corrected-p")
	}
}

func BenchmarkCrashScrape(b *testing.B) {
	eng := testEngine(b)
	for i := 0; i < b.N; i++ {
		rep, err := RunCrash(eng, CrashConfig{Point: CrashBetweenBatches, Blocks: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.ScrapedBytes), "scraped-B")
	}
}

func BenchmarkExposureNoEpoch(b *testing.B) {
	benchExposure(b, 0)
}

func BenchmarkExposureEpoch500(b *testing.B) {
	benchExposure(b, 500)
}

func benchExposure(b *testing.B, epoch uint64) {
	script := DefaultCrashScript(64)
	for i := 0; i < b.N; i++ {
		e := secure.NewSPESerial(1 << 40)
		e.EpochCycles = epoch
		rep, err := RunExposure(e, script)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.ExposureByteCycles), "byte-cycles")
	}
}
