package tpm

import (
	"bytes"
	"testing"
)

func TestExtendChangesPCR(t *testing.T) {
	tp := New([]byte("seed"))
	before, _ := tp.PCR(0)
	if err := tp.Extend(0, []byte("bios")); err != nil {
		t.Fatal(err)
	}
	after, _ := tp.PCR(0)
	if before == after {
		t.Error("Extend did not change PCR")
	}
	// Extension order matters.
	tp2 := New([]byte("seed"))
	tp2.Extend(0, []byte("bootloader"))
	tp2.Extend(0, []byte("bios"))
	tp.Extend(0, []byte("bootloader"))
	a, _ := tp.PCR(0)
	b, _ := tp2.PCR(0)
	if a == b {
		t.Error("extension order should matter")
	}
}

func TestExtendRange(t *testing.T) {
	tp := New(nil)
	if err := tp.Extend(-1, nil); err == nil {
		t.Error("expected range error")
	}
	if err := tp.Extend(NumPCRs, nil); err == nil {
		t.Error("expected range error")
	}
	if _, err := tp.PCR(99); err == nil {
		t.Error("expected range error")
	}
}

func TestSealUnsealHappyPath(t *testing.T) {
	tp := New([]byte("mfg"))
	tp.Extend(0, []byte("bios-v1"))
	tp.Extend(1, []byte("os-v1"))
	secret := []byte("the 88-bit SPE key material!!")
	blob, err := tp.Seal(secret, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Errorf("unsealed %q, want %q", got, secret)
	}
}

func TestUnsealFailsOnDifferentState(t *testing.T) {
	tp := New([]byte("mfg"))
	tp.Extend(0, []byte("bios-v1"))
	blob, err := tp.Seal([]byte("secret"), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Tampered boot chain: extend again.
	tp.Extend(0, []byte("rootkit"))
	if _, err := tp.Unseal(blob); err != ErrSealed {
		t.Errorf("err = %v, want ErrSealed", err)
	}
	// Power cycle without replaying measurements.
	tp.Reset()
	if _, err := tp.Unseal(blob); err != ErrSealed {
		t.Errorf("after reset err = %v, want ErrSealed", err)
	}
	// Replaying the measurement restores access.
	tp.Extend(0, []byte("bios-v1"))
	if _, err := tp.Unseal(blob); err != nil {
		t.Errorf("replayed state should unseal: %v", err)
	}
}

func TestUnsealFailsOnDifferentTPM(t *testing.T) {
	tp1 := New([]byte("a"))
	tp2 := New([]byte("b"))
	blob, err := tp1.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp2.Unseal(blob); err == nil {
		t.Error("foreign TPM unsealed the blob")
	}
}

func TestUnsealDetectsTamperedBlob(t *testing.T) {
	tp := New([]byte("mfg"))
	blob, err := tp.Seal([]byte("secret"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob.Mask[0] ^= 1
	if _, err := tp.Unseal(blob); err == nil {
		t.Error("tampered blob unsealed")
	}
}

func TestSealBadPCR(t *testing.T) {
	tp := New(nil)
	if _, err := tp.Seal([]byte("s"), []int{42}); err == nil {
		t.Error("expected PCR range error")
	}
}

func TestSealLongSecret(t *testing.T) {
	tp := New([]byte("mfg"))
	secret := bytes.Repeat([]byte{0xAB}, 100) // > one digest of pad
	blob, err := tp.Seal(secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tp.Unseal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("long secret round trip failed")
	}
}

func TestDeviceAuthentication(t *testing.T) {
	tp := New([]byte("mfg"))
	devKey := tp.EnrollDevice("nvmm-0")
	ch, err := tp.NewChallenge("nvmm-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	resp := Respond(devKey, ch)
	if err := tp.VerifyResponse(ch, resp); err != nil {
		t.Errorf("genuine device rejected: %v", err)
	}
	// A counterfeit NVMM with a wrong key fails.
	var fake [32]byte
	fake[0] = 1
	if err := tp.VerifyResponse(ch, Respond(fake, ch)); err != ErrAuth {
		t.Errorf("counterfeit accepted: err = %v", err)
	}
}

func TestChallengeUnenrolledDevice(t *testing.T) {
	tp := New(nil)
	if _, err := tp.NewChallenge("ghost", 0); err == nil {
		t.Error("expected enrollment error")
	}
	ch := &Challenge{DeviceID: "ghost"}
	if err := tp.VerifyResponse(ch, nil); err == nil {
		t.Error("expected enrollment error")
	}
}

func TestChallengeNoncesDiffer(t *testing.T) {
	tp := New(nil)
	tp.EnrollDevice("d")
	c1, _ := tp.NewChallenge("d", 1)
	c2, _ := tp.NewChallenge("d", 2)
	if c1.Nonce == c2.Nonce {
		t.Error("nonces repeat across counters")
	}
}
