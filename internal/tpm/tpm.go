// Package tpm models the Trusted Platform Module the SNVMM architecture
// relies on (Section 4.1): at power-on the TPM authenticates the platform
// and the NVMM and releases the SPE key to the SPECU, which keeps it only
// in volatile storage. At power-down the volatile copy disappears, so a
// stolen NVMM cannot be decrypted (Attack 1).
//
// The model implements the pieces of that protocol the reproduction needs:
// platform configuration registers (PCR) with extend/quote semantics,
// sealing of the SPE key against an expected PCR state, and an
// HMAC-SHA-256 challenge-response used to authenticate the NVMM before key
// release.
package tpm

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// NumPCRs is the number of platform configuration registers modelled.
const NumPCRs = 8

// DigestSize is the PCR digest size in bytes.
const DigestSize = sha256.Size

// ErrSealed is returned when unsealing fails because the platform state
// does not match the sealed policy.
var ErrSealed = errors.New("tpm: platform state does not match sealing policy")

// ErrAuth is returned when NVMM authentication fails.
var ErrAuth = errors.New("tpm: NVMM authentication failed")

// TPM is a software trusted platform module.
type TPM struct {
	pcrs [NumPCRs][DigestSize]byte
	// srk is the storage root key the TPM seals blobs under. In a real
	// part this never leaves the chip.
	srk [32]byte
	// deviceKeys maps enrolled NVMM device identities to their shared
	// authentication secrets.
	deviceKeys map[string][32]byte
}

// New creates a TPM with a storage root key derived from the given
// manufacturing seed.
func New(seed []byte) *TPM {
	t := &TPM{deviceKeys: make(map[string][32]byte)}
	t.srk = sha256.Sum256(append([]byte("snvmm-srk-v1:"), seed...))
	return t
}

// Reset clears all PCRs to zero — the power-on state.
func (t *TPM) Reset() {
	for i := range t.pcrs {
		t.pcrs[i] = [DigestSize]byte{}
	}
}

// Extend folds a measurement into PCR i: pcr = SHA256(pcr || measurement).
func (t *TPM) Extend(i int, measurement []byte) error {
	if i < 0 || i >= NumPCRs {
		return fmt.Errorf("tpm: PCR %d out of range", i)
	}
	h := sha256.New()
	h.Write(t.pcrs[i][:])
	h.Write(measurement)
	copy(t.pcrs[i][:], h.Sum(nil))
	return nil
}

// PCR returns the current value of register i.
func (t *TPM) PCR(i int) ([DigestSize]byte, error) {
	if i < 0 || i >= NumPCRs {
		return [DigestSize]byte{}, fmt.Errorf("tpm: PCR %d out of range", i)
	}
	return t.pcrs[i], nil
}

// compositeDigest hashes the selected PCRs into a policy digest.
func (t *TPM) compositeDigest(pcrSel []int) ([]byte, error) {
	h := sha256.New()
	for _, i := range pcrSel {
		if i < 0 || i >= NumPCRs {
			return nil, fmt.Errorf("tpm: PCR %d out of range", i)
		}
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		h.Write(t.pcrs[i][:])
	}
	return h.Sum(nil), nil
}

// SealedBlob is a secret bound to a platform state.
type SealedBlob struct {
	PCRSel []int
	Policy []byte // expected composite digest
	Mask   []byte // secret XOR pad(policy)
	MAC    []byte // integrity tag
}

// Seal binds a secret to the *current* values of the selected PCRs. The
// blob can be stored off-chip; only a TPM with the same SRK and matching
// platform state can unseal it.
func (t *TPM) Seal(secret []byte, pcrSel []int) (*SealedBlob, error) {
	policy, err := t.compositeDigest(pcrSel)
	if err != nil {
		return nil, err
	}
	pad := t.pad(policy, len(secret))
	mask := make([]byte, len(secret))
	for i := range secret {
		mask[i] = secret[i] ^ pad[i]
	}
	mac := hmac.New(sha256.New, t.srk[:])
	mac.Write(policy)
	mac.Write(mask)
	return &SealedBlob{
		PCRSel: append([]int(nil), pcrSel...),
		Policy: policy,
		Mask:   mask,
		MAC:    mac.Sum(nil),
	}, nil
}

// Unseal recovers the secret if the current platform state matches the
// blob's policy.
func (t *TPM) Unseal(b *SealedBlob) ([]byte, error) {
	mac := hmac.New(sha256.New, t.srk[:])
	mac.Write(b.Policy)
	mac.Write(b.Mask)
	if !hmac.Equal(mac.Sum(nil), b.MAC) {
		return nil, fmt.Errorf("tpm: sealed blob integrity check failed")
	}
	policy, err := t.compositeDigest(b.PCRSel)
	if err != nil {
		return nil, err
	}
	if !hmac.Equal(policy, b.Policy) {
		return nil, ErrSealed
	}
	pad := t.pad(policy, len(b.Mask))
	secret := make([]byte, len(b.Mask))
	for i := range secret {
		secret[i] = b.Mask[i] ^ pad[i]
	}
	return secret, nil
}

// pad expands a policy digest into a keystream bound to the SRK.
func (t *TPM) pad(policy []byte, n int) []byte {
	out := make([]byte, 0, n+DigestSize)
	var ctr uint32
	for len(out) < n {
		h := hmac.New(sha256.New, t.srk[:])
		h.Write(policy)
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], ctr)
		h.Write(c[:])
		out = append(out, h.Sum(nil)...)
		ctr++
	}
	return out[:n]
}

// EnrollDevice registers an NVMM identity and returns the shared secret the
// device stores in its one-time-programmable fuses.
func (t *TPM) EnrollDevice(deviceID string) [32]byte {
	h := sha256.New()
	h.Write(t.srk[:])
	h.Write([]byte("device:"))
	h.Write([]byte(deviceID))
	var key [32]byte
	copy(key[:], h.Sum(nil))
	t.deviceKeys[deviceID] = key
	return key
}

// Challenge is an authentication nonce issued by the TPM.
type Challenge struct {
	DeviceID string
	Nonce    [16]byte
}

// NewChallenge creates a challenge for an enrolled device. The nonce is
// derived deterministically from a caller-provided counter so simulations
// are reproducible.
func (t *TPM) NewChallenge(deviceID string, counter uint64) (*Challenge, error) {
	if _, ok := t.deviceKeys[deviceID]; !ok {
		return nil, fmt.Errorf("tpm: device %q not enrolled", deviceID)
	}
	ch := &Challenge{DeviceID: deviceID}
	h := sha256.New()
	h.Write([]byte(deviceID))
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], counter)
	h.Write(c[:])
	copy(ch.Nonce[:], h.Sum(nil))
	return ch, nil
}

// Respond computes the device-side response to a challenge given the
// device's fused secret (this runs inside the NVMM controller).
func Respond(deviceKey [32]byte, ch *Challenge) []byte {
	mac := hmac.New(sha256.New, deviceKey[:])
	mac.Write([]byte(ch.DeviceID))
	mac.Write(ch.Nonce[:])
	return mac.Sum(nil)
}

// VerifyResponse checks a device response; on success the caller may
// release the sealed SPE key to the SPECU.
func (t *TPM) VerifyResponse(ch *Challenge, response []byte) error {
	key, ok := t.deviceKeys[ch.DeviceID]
	if !ok {
		return fmt.Errorf("tpm: device %q not enrolled", ch.DeviceID)
	}
	if !hmac.Equal(Respond(key, ch), response) {
		return ErrAuth
	}
	return nil
}
