package ilp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"snvmm/internal/sched"
	"snvmm/internal/telemetry"
	"snvmm/internal/telemetry/trace"
)

// ILPOptions configures the branch-and-bound search.
type ILPOptions struct {
	MaxNodes int     // 0 means 200000
	Gap      float64 // absolute optimality gap for early stop; 0 = prove optimal
	// IntegralObjective asserts every feasible 0/1 assignment has an
	// integer objective value, allowing LP bounds to be rounded up —
	// a large pruning win for covering problems.
	IntegralObjective bool
	// Incumbent, if non-nil, is a known-feasible 0/1 assignment used as
	// the initial upper bound (e.g. from a greedy heuristic).
	Incumbent []float64
	// Workers is the parallel search width; <= 0 means GOMAXPROCS.
	Workers int
	// Canonicalize runs a lexicographic-minimization pass after an optimal
	// solve: the returned X is the unique optimal assignment that prefers
	// x_j = 0 at every index in increasing order. This makes the solution
	// vector reproducible run-to-run and across worker counts, at the cost
	// of one bounded probe solve per support variable. Only meaningful with
	// Gap == 0 (with a nonzero gap the accepted objective itself can vary).
	Canonicalize bool
	// Telemetry, if non-nil, receives live search instruments (ilp.* node,
	// steal, and incumbent counters plus best-objective/frontier-bound
	// gauges) and incumbent events. Purely observational: the search order,
	// objective, and canonical vector are identical with or without it.
	Telemetry *telemetry.Registry
	// Tracer, if non-nil, records the solve as a causal trace: one
	// ilp.solve root per SolveILP call with an ilp.worker child span per
	// search goroutine (canonicalization probes reuse the same root, so a
	// canonical solve renders as repeated worker waves under one solve).
	// Observational only, like Telemetry.
	Tracer *trace.Tracer

	// traceCtx is the solve root's context, threaded to solveBB (and
	// through canonicalize's probe solves) once SolveILPContext opens it.
	traceCtx trace.Context
}

// Causal-trace call sites and the worker-lane block. ilpLaneBase keeps the
// solver's per-worker lanes clear of the SPECU shard/fan and xbar warm
// lanes when one tracer serves the whole process.
var (
	traceMetaILPSolve  = &trace.SpanMeta{Subsystem: "ilp", Name: "solve"}
	traceMetaILPWorker = &trace.SpanMeta{Subsystem: "ilp", Name: "worker"}
)

const ilpLaneBase = 2000

// fixStep records one branching decision: variable Var fixed to Val.
type fixStep struct {
	Var int
	Val float64
}

// bbNode is one open node of the search frontier: the fix path from the
// root and the LP bound of its parent (its own bound until solved).
type bbNode struct {
	fixes []fixStep
	bound float64
	seq   int64
}

// nodeHeap is a min-heap over (bound, seq): best-first by LP bound, with
// insertion order as a deterministic tie-break.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}

// searcher is the shared state of one parallel branch-and-bound run.
type searcher struct {
	p        *Problem
	ctx      context.Context
	maxNodes int64
	gap      float64
	integral bool
	preFixes []fixStep // fixes applied at the root (canonicalization probes)
	// target/stopAt implement bounded feasibility probes: nodes whose bound
	// exceeds target are pruned, and the search closes as soon as an
	// incumbent at or below stopAt is found. Both are +Inf/-Inf disabled in
	// ordinary solves.
	target float64
	stopAt float64

	mu         sync.Mutex
	cond       *sync.Cond
	frontier   nodeHeap
	active     int
	closed     bool
	limit      bool
	minDropped float64 // min bound among nodes abandoned on limit/cancel
	seq        int64

	stop  atomic.Bool
	nodes atomic.Int64

	incMu   sync.Mutex
	incBits atomic.Uint64 // Float64bits of the incumbent objective; +Inf none
	incX    []float64

	tel        *ilpTel        // nil when telemetry is off
	steals     []atomic.Int64 // per-worker frontier pops (len = workers)
	incUpdates atomic.Int64

	varCons [][]int32 // var -> indices of constraints containing it
}

func (s *searcher) bestObj() float64 {
	return math.Float64frombits(s.incBits.Load())
}

// cutoff is the pruning threshold: nodes whose bound is at or above it
// cannot improve on the incumbent (within Gap), and nodes above target are
// useless to a feasibility probe.
func (s *searcher) cutoff() float64 {
	c := s.bestObj() - 1e-7 - s.gap
	if t := s.target + 1e-7; t < c {
		c = t
	}
	return c
}

func (s *searcher) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.stop.Store(true)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// tryIncumbent records x (already integral and feasible) if it beats the
// current incumbent. Ties keep the first winner; Canonicalize restores
// determinism of the final vector.
func (s *searcher) tryIncumbent(x []float64, obj float64) {
	improved := false
	s.incMu.Lock()
	if obj < s.bestObj() {
		s.incX = append(s.incX[:0], x...)
		s.incBits.Store(math.Float64bits(obj))
		improved = true
	}
	s.incMu.Unlock()
	if improved {
		s.incUpdates.Add(1)
		if t := s.tel; t != nil {
			t.incumbents.Inc()
			t.bestObj.Set(obj)
			// A0 carries the new objective (integral for covering problems),
			// A1 the node count at the moment of improvement — together the
			// gap trajectory of the run.
			t.scope.Event(t.incumbMu, int64(math.Round(obj)), s.nodes.Load())
		}
	}
	if obj <= s.stopAt+1e-7 {
		s.close()
	}
}

// dropNode records the bound of a node abandoned unexplored, so the final
// best-bound/gap report stays sound.
func (s *searcher) dropNode(bound float64) {
	s.mu.Lock()
	if bound < s.minDropped {
		s.minDropped = bound
	}
	s.mu.Unlock()
}

// take pops the best frontier node, blocking until one is available or the
// search ends. It returns nil when the search is over. widx identifies the
// calling worker for steal accounting: every frontier pop is work this
// worker took from the shared pool rather than its own dive stack.
func (s *searcher) take(widx int) *bbNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if len(s.frontier) > 0 {
			nd := heap.Pop(&s.frontier).(*bbNode)
			if nd.bound >= s.cutoff() {
				continue // pruned: the incumbent already covers it
			}
			if s.limit || s.nodes.Load() >= s.maxNodes {
				s.limit = true
				if nd.bound < s.minDropped {
					s.minDropped = nd.bound
				}
				continue // drain, recording bounds
			}
			s.active++
			s.steals[widx].Add(1)
			if t := s.tel; t != nil {
				t.steals.Inc()
				if !math.IsInf(nd.bound, 0) { // root sentinel bound is -Inf
					t.headBnd.Set(nd.bound)
				}
			}
			return nd
		}
		if s.active == 0 {
			s.closed = true
			s.stop.Store(true)
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

func (s *searcher) release() {
	s.mu.Lock()
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// offload pushes a node onto the shared frontier where an idle worker can
// steal it.
func (s *searcher) offload(nd *bbNode) {
	s.mu.Lock()
	s.seq++
	nd.seq = s.seq
	heap.Push(&s.frontier, nd)
	s.cond.Signal()
	s.mu.Unlock()
}

// worker runs the steal-and-dive loop: take the globally best open node,
// then dive depth-first from it, offloading the sibling of every branch so
// other workers can steal breadth while this one chases an incumbent.
func (s *searcher) worker(widx int, ws *Workspace) {
	local := make([]*bbNode, 0, 64)
	for {
		nd := s.take(widx)
		if nd == nil {
			return
		}
		local = append(local[:0], nd)
		for len(local) > 0 {
			n := local[len(local)-1]
			local = local[:len(local)-1]
			if s.stop.Load() || s.ctx.Err() != nil {
				s.dropNode(n.bound)
				for _, r := range local {
					s.dropNode(r.bound)
				}
				local = local[:0]
				break
			}
			if t := s.tel; t != nil {
				t.nodes.Inc()
			}
			if s.nodes.Add(1) > s.maxNodes {
				s.mu.Lock()
				s.limit = true
				s.mu.Unlock()
				s.dropNode(n.bound)
				for _, r := range local {
					s.dropNode(r.bound)
				}
				local = local[:0]
				break
			}
			s.expand(n, ws, &local)
		}
		s.release()
	}
}

// expand solves one node's relaxation and either prunes, records an
// incumbent, or branches: the preferred child continues the dive on the
// local stack, the sibling goes to the shared frontier.
func (s *searcher) expand(n *bbNode, ws *Workspace, local *[]*bbNode) {
	ws.Reset()
	for _, f := range s.preFixes {
		ws.Fix(f.Var, f.Val)
	}
	for _, f := range n.fixes {
		ws.Fix(f.Var, f.Val)
	}
	rel := ws.SolveRelax()
	switch rel.Status {
	case Infeasible, Unbounded:
		return
	case LimitReached:
		// The LP iteration cap hit: no bound is available, but skipping the
		// node would make the search inexact. Branch blindly on the lowest
		// free variable, keeping the parent bound.
		for j := 0; j < s.p.NumVars; j++ {
			if !ws.fixedMask[j] {
				s.branch(n, j, 1, 0, n.bound, local)
				return
			}
		}
		return
	}
	bound := rel.Objective
	if s.integral {
		bound = math.Ceil(bound - 1e-7)
	}
	if bound >= s.cutoff() {
		return
	}
	x := rel.X // aliases ws buffer; consumed before the next solve
	branchVar, bestFrac := -1, -1.0
	for j, v := range x {
		if f := math.Abs(v - math.Round(v)); f > 1e-6 {
			// Prefer the variable closest to 0.5.
			if score := 0.5 - math.Abs(f-0.5); score > bestFrac {
				bestFrac = score
				branchVar = j
			}
		}
	}
	if branchVar < 0 {
		cand := make([]float64, len(x))
		for j, v := range x {
			cand[j] = math.Round(v)
		}
		if feasible(s.p, cand) {
			s.tryIncumbent(cand, objValue(s.p, cand))
		}
		return
	}
	// Rounding heuristic: a repaired rounding of the fractional optimum often
	// lands near the LP bound, and a tight incumbent is what lets the search
	// close the bound plateau instead of enumerating it. Never changes the
	// final objective or the canonical vector — only how fast they're proven.
	// Throttled per worker: diving re-solves move x little, so consecutive
	// nodes round to near-identical candidates.
	if ws.heurTick++; ws.heurTick%8 == 1 {
		if cand := s.roundRepair(ws, x); cand != nil {
			s.tryIncumbent(cand, objValue(s.p, cand))
		}
	}
	// Dive toward x=1 first (progress toward coverage) unless the
	// relaxation leans strongly to 0 — same rule as the sequential seed.
	first, second := 1.0, 0.0
	if x[branchVar] < 0.3 {
		first, second = 0.0, 1.0
	}
	s.branch(n, branchVar, first, second, bound, local)
}

// conViolation measures how far activity a is outside constraint c.
func conViolation(c *Constraint, a float64) float64 {
	v := 0.0
	switch c.Sense {
	case LE:
		if a > c.RHS {
			v = a - c.RHS
		}
	case GE:
		if a < c.RHS {
			v = c.RHS - a
		}
	case EQ:
		v = math.Abs(a - c.RHS)
	case RNG:
		if a > c.RHS {
			v = a - c.RHS
		} else if a < c.LB {
			v = c.LB - a
		}
	}
	return v
}

// roundRepair rounds a fractional LP solution to 0/1 and greedily repairs
// feasibility by single-variable flips, each chosen to maximally reduce the
// total constraint violation (ties: least objective damage, then lowest
// index). Variables fixed in the workspace — branching decisions and
// canonicalization pre-fixes — are never flipped, so the candidate stays
// consistent with any probe in flight. Once feasible, redundant positives
// are trimmed in one pass. Returns nil when repair stalls.
func (s *searcher) roundRepair(ws *Workspace, x []float64) []float64 {
	p := s.p
	cand := make([]float64, len(x))
	for j, v := range x {
		cand[j] = math.Round(v)
	}
	act := make([]float64, len(p.Cons))
	total := 0.0
	for ci := range p.Cons {
		c := &p.Cons[ci]
		for _, t := range c.Terms {
			act[ci] += t.Coef * cand[t.Var]
		}
		total += conViolation(c, act[ci])
	}
	// flipDelta is the change in total violation from flipping variable j.
	flipDelta := func(j int, to float64) float64 {
		d := 0.0
		for _, ci := range s.varCons[j] {
			c := &p.Cons[ci]
			coef := 0.0
			for _, t := range c.Terms {
				if t.Var == j {
					coef = t.Coef
					break
				}
			}
			d += conViolation(c, act[ci]+coef*(to-cand[j])) - conViolation(c, act[ci])
		}
		return d
	}
	apply := func(j int, to float64) {
		for _, ci := range s.varCons[j] {
			c := &p.Cons[ci]
			for _, t := range c.Terms {
				if t.Var == j {
					total -= conViolation(c, act[ci])
					act[ci] += t.Coef * (to - cand[j])
					total += conViolation(c, act[ci])
					break
				}
			}
		}
		cand[j] = to
	}
	seen := make(map[int]bool)
	for steps := 0; total > 1e-9; steps++ {
		if steps > 2*p.NumVars {
			return nil
		}
		// Only variables touching a violated constraint can reduce the
		// violation, which keeps each step near-linear in the violation size
		// rather than in the problem size.
		bestJ, bestTo := -1, 0.0
		bestD, bestCost := 0.0, math.Inf(1)
		clear(seen)
		for ci := range p.Cons {
			c := &p.Cons[ci]
			if conViolation(c, act[ci]) <= 1e-9 {
				continue
			}
			for _, t := range c.Terms {
				j := t.Var
				if seen[j] || ws.fixedMask[j] {
					continue
				}
				seen[j] = true
				to := 1 - cand[j]
				if to > p.ub(j)+1e-9 {
					continue
				}
				d := flipDelta(j, to)
				if -d <= 1e-9 { // only strict violation decreases make progress
					continue
				}
				cost := p.Objective[j] * (to - cand[j])
				if -d > bestD+1e-12 || (-d > bestD-1e-12 && cost < bestCost-1e-12) {
					bestJ, bestTo, bestD, bestCost = j, to, -d, cost
				}
			}
		}
		if bestJ < 0 {
			return nil
		}
		apply(bestJ, bestTo)
	}
	// Trim: drop any positive-cost variable whose removal keeps feasibility.
	for j := range cand {
		if cand[j] == 1 && !ws.fixedMask[j] && p.Objective[j] > 0 {
			if flipDelta(j, 0) < 1e-9 {
				apply(j, 0)
			}
		}
	}
	if !feasible(p, cand) {
		return nil
	}
	return cand
}

// branch creates the two children of n fixing branchVar; the first child
// continues this worker's dive, the second is offered to the frontier.
func (s *searcher) branch(n *bbNode, branchVar int, first, second, bound float64, local *[]*bbNode) {
	mk := func(v float64) *bbNode {
		fixes := make([]fixStep, len(n.fixes), len(n.fixes)+1)
		copy(fixes, n.fixes)
		return &bbNode{fixes: append(fixes, fixStep{branchVar, v}), bound: bound}
	}
	s.offload(mk(second))
	*local = append(*local, mk(first))
}

// solveBB runs the parallel search to completion and assembles the result.
func solveBB(ctx context.Context, p *Problem, opt ILPOptions, pre []fixStep, target, stopAt float64, pool []*Workspace) (Solution, error) {
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	s := &searcher{
		p:          p,
		ctx:        ctx,
		maxNodes:   int64(maxNodes),
		gap:        opt.Gap,
		integral:   opt.IntegralObjective,
		preFixes:   pre,
		target:     target,
		stopAt:     stopAt,
		minDropped: math.Inf(1),
		tel:        newILPTel(opt.Telemetry),
		steals:     make([]atomic.Int64, len(pool)),
	}
	s.cond = sync.NewCond(&s.mu)
	s.incBits.Store(math.Float64bits(math.Inf(1)))
	s.varCons = make([][]int32, p.NumVars)
	for ci := range p.Cons {
		for _, t := range p.Cons[ci].Terms {
			s.varCons[t.Var] = append(s.varCons[t.Var], int32(ci))
		}
	}
	if opt.Incumbent != nil {
		if len(opt.Incumbent) != p.NumVars {
			return Solution{}, fmt.Errorf("%w: incumbent length", ErrBadProblem)
		}
		if feasible(p, opt.Incumbent) && consistent(opt.Incumbent, pre) {
			s.tryIncumbent(opt.Incumbent, objValue(p, opt.Incumbent))
		}
	}
	s.frontier = nodeHeap{{bound: math.Inf(-1)}}

	// Wake blocked workers if the context dies mid-search.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.close()
			case <-watchDone:
			}
		}()
	}

	var wg sync.WaitGroup
	for i, ws := range pool {
		ws.Stop = &s.stop // lets ctx expiry interrupt an LP mid-solve
		wg.Add(1)
		go func(i int, ws *Workspace) {
			defer wg.Done()
			// Worker span: A0 is the node count this worker stole from
			// peers, A1 its index — one span per wave, on the worker's lane.
			wsp := opt.traceCtx.WithLane(uint32(ilpLaneBase + i)).Start(traceMetaILPWorker)
			s.worker(i, ws)
			wsp.End(s.steals[i].Load(), int64(i))
		}(i, ws)
	}
	wg.Wait()

	s.mu.Lock()
	openBound := s.minDropped
	for _, nd := range s.frontier {
		if nd.bound < openBound {
			openBound = nd.bound
		}
	}
	hitLimit := s.limit || ctx.Err() != nil
	nodes := s.nodes.Load()
	if nodes > s.maxNodes {
		nodes = s.maxNodes
	}
	s.mu.Unlock()

	obj := s.bestObj()
	sol := Solution{Nodes: nodes, IncumbentUpdates: s.incUpdates.Load()}
	sol.Steals = make([]int64, len(s.steals))
	for i := range s.steals {
		sol.Steals[i] = s.steals[i].Load()
	}
	if s.incX != nil {
		sol.X = s.incX
		sol.Objective = obj
		if hitLimit {
			sol.Status = LimitReached
			sol.BestBound = math.Min(openBound, obj)
		} else {
			sol.Status = Optimal
			sol.BestBound = obj - opt.Gap
		}
		sol.RelGap = (sol.Objective - sol.BestBound) / math.Max(1, math.Abs(sol.Objective))
		return sol, nil
	}
	if hitLimit {
		sol.Status = LimitReached
		sol.BestBound = openBound
		sol.RelGap = math.Inf(1)
		return sol, nil
	}
	sol.Status = Infeasible
	return sol, nil
}

// consistent reports whether x agrees with every fix in pre.
func consistent(x []float64, pre []fixStep) bool {
	for _, f := range pre {
		if math.Abs(x[f.Var]-f.Val) > 1e-6 {
			return false
		}
	}
	return true
}

// SolveILP solves the problem with all variables restricted to {0, 1} by
// parallel branch and bound over LP relaxations: a worker pool shares a
// best-first frontier (ordered by LP bound), each worker dives depth-first
// from the node it steals, and a shared incumbent prunes across workers.
// The returned objective is deterministic; the solution vector is too when
// ILPOptions.Canonicalize is set.
func SolveILP(p *Problem, opt ILPOptions) (Solution, error) {
	return SolveILPContext(context.Background(), p, opt)
}

// SolveILPContext is SolveILP with cancellation and deadline support: when
// ctx is cancelled or expires the search stops early and the best-known
// solution so far is returned with Status LimitReached (optimality
// unproven), exactly as if the node budget had run out.
func SolveILPContext(ctx context.Context, p *Problem, opt ILPOptions) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	workers := sched.Workers(opt.Workers)
	pool := make([]*Workspace, workers)
	for i := range pool {
		ws, err := NewWorkspace(p)
		if err != nil {
			return Solution{}, err
		}
		pool[i] = ws
	}
	// The whole solve — main search plus any canonicalization probes — is
	// one trace root. A0 reports the nodes expanded, A1 the final status.
	root := opt.Tracer.Root(traceMetaILPSolve)
	for i := range pool {
		opt.Tracer.NameLane(uint32(ilpLaneBase+i), fmt.Sprintf("ilp %02d", i))
	}
	opt.traceCtx = root.Context()
	sol, err := solveBB(ctx, p, opt, nil, math.Inf(1), math.Inf(-1), pool)
	if err != nil || sol.Status != Optimal || !opt.Canonicalize {
		root.End(sol.Nodes, int64(sol.Status))
		return sol, err
	}
	x, err := canonicalize(ctx, p, opt, sol.Objective, sol.X, pool)
	if err != nil {
		root.End(sol.Nodes, int64(sol.Status))
		return sol, err
	}
	sol.X = x
	root.End(sol.Nodes, int64(sol.Status))
	return sol, nil
}

// canonicalize computes the lexicographically smallest optimal assignment
// (0 preferred at each index, scanning in increasing order) for a proven
// optimal objective z. It walks the variables once; indices where the
// current witness is already 0 are fixed for free, and each support index
// is resolved with one bounded feasibility probe ("is there an optimal
// completion with this variable at 0?"). The result is unique for a given
// (problem, z), independent of which optimum the search happened to find
// and of the worker count. A probe that runs out of nodes falls back to
// the witness value, keeping the result optimal (if no longer guaranteed
// canonical); with the target-objective pruning this is not observed in
// practice.
func canonicalize(ctx context.Context, p *Problem, opt ILPOptions, z float64, witness []float64, pool []*Workspace) ([]float64, error) {
	w := append([]float64(nil), witness...)
	for j := range w {
		w[j] = math.Round(w[j])
	}
	fixes := make([]fixStep, 0, p.NumVars)
	probeOpt := ILPOptions{
		MaxNodes:          opt.MaxNodes,
		IntegralObjective: opt.IntegralObjective,
		traceCtx:          opt.traceCtx, // probes render under the same solve root
	}
	for j := 0; j < p.NumVars; j++ {
		if w[j] == 0 {
			// The witness is an optimal completion with x_j = 0, so the
			// lex-smallest choice is already proven; no probe needed.
			fixes = append(fixes, fixStep{j, 0})
			continue
		}
		if ctx.Err() != nil {
			return w, nil // best effort: optimal but possibly non-canonical
		}
		probe := append(append(make([]fixStep, 0, len(fixes)+1), fixes...), fixStep{j, 0})
		sol, err := solveBB(ctx, p, probeOpt, probe, z, z, pool)
		if err != nil {
			return nil, err
		}
		if sol.X != nil && sol.Objective <= z+1e-7 {
			for k, v := range sol.X {
				w[k] = math.Round(v)
			}
			fixes = probe
		} else {
			fixes = append(fixes, fixStep{j, 1})
		}
	}
	return w, nil
}

// feasible checks a 0/1 assignment against all constraints.
func feasible(p *Problem, x []float64) bool {
	for _, c := range p.Cons {
		s := 0.0
		for _, t := range c.Terms {
			s += t.Coef * x[t.Var]
		}
		switch c.Sense {
		case LE:
			if s > c.RHS+1e-6 {
				return false
			}
		case GE:
			if s < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(s-c.RHS) > 1e-6 {
				return false
			}
		case RNG:
			if s > c.RHS+1e-6 || s < c.LB-1e-6 {
				return false
			}
		}
	}
	for j, v := range x {
		if v < -1e-9 || v > p.ub(j)+1e-9 {
			return false
		}
	}
	return true
}

func objValue(p *Problem, x []float64) float64 {
	s := 0.0
	for j, c := range p.Objective {
		s += c * x[j]
	}
	return s
}
