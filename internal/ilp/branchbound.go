package ilp

import (
	"fmt"
	"math"
)

// ILPOptions configures the branch-and-bound search.
type ILPOptions struct {
	MaxNodes int     // 0 means 200000
	Gap      float64 // absolute optimality gap for early stop; 0 = prove optimal
	// IntegralObjective asserts every feasible 0/1 assignment has an
	// integer objective value, allowing LP bounds to be rounded up —
	// a large pruning win for covering problems.
	IntegralObjective bool
	// Incumbent, if non-nil, is a known-feasible 0/1 assignment used as
	// the initial upper bound (e.g. from a greedy heuristic).
	Incumbent []float64
}

// SolveILP solves the problem with all variables restricted to {0, 1} by
// depth-first branch and bound over LP relaxations, branching on the most
// fractional variable. Fixed variables are substituted out of the
// relaxation rather than carried as constraints.
func SolveILP(p *Problem, opt ILPOptions) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	best := Solution{Status: Infeasible, Objective: math.Inf(1)}
	if opt.Incumbent != nil {
		if len(opt.Incumbent) != p.NumVars {
			return Solution{}, fmt.Errorf("%w: incumbent length", ErrBadProblem)
		}
		if feasible(p, opt.Incumbent) {
			best = Solution{Status: Optimal, X: append([]float64(nil), opt.Incumbent...), Objective: objValue(p, opt.Incumbent)}
		}
	}

	type node struct {
		fixVar []int // parallel slices: fixed variable indices and values
		fixVal []float64
	}
	stack := []node{{}}
	nodes := 0
	for len(stack) > 0 && nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		sub, offset := substitute(p, nd.fixVar, nd.fixVal)
		if sub == nil { // fixing already violates a constraint
			continue
		}
		rel, err := SolveLP(sub)
		if err != nil {
			return Solution{}, err
		}
		if rel.Status == Infeasible {
			continue
		}
		if rel.Status != Optimal {
			continue
		}
		bound := rel.Objective + offset
		if opt.IntegralObjective {
			bound = math.Ceil(bound - 1e-7)
		}
		if bound >= best.Objective-1e-7-opt.Gap {
			continue
		}
		// Reconstruct full X and find most fractional free variable.
		x := make([]float64, p.NumVars)
		copy(x, rel.X)
		for k, j := range nd.fixVar {
			x[j] = nd.fixVal[k]
		}
		branch := -1
		bestFrac := -1.0
		for j, v := range x {
			f := math.Abs(v - math.Round(v))
			if f > 1e-6 {
				// Prefer the variable closest to 0.5.
				score := 0.5 - math.Abs(f-0.5)
				if score > bestFrac {
					bestFrac = score
					branch = j
				}
			}
		}
		if branch < 0 {
			for j := range x {
				x[j] = math.Round(x[j])
			}
			if feasible(p, x) {
				obj := objValue(p, x)
				if obj < best.Objective {
					best = Solution{Status: Optimal, X: x, Objective: obj}
				}
			}
			continue
		}
		// Depth-first; explore x=1 first (progress toward coverage) unless
		// the relaxation leans strongly to 0.
		first, second := 1.0, 0.0
		if x[branch] < 0.3 {
			first, second = 0.0, 1.0
		}
		mk := func(v float64) node {
			return node{
				fixVar: append(append([]int(nil), nd.fixVar...), branch),
				fixVal: append(append([]float64(nil), nd.fixVal...), v),
			}
		}
		stack = append(stack, mk(second), mk(first))
	}
	if best.Status != Optimal {
		if nodes >= maxNodes {
			return Solution{Status: LimitReached}, nil
		}
		return Solution{Status: Infeasible}, nil
	}
	if nodes >= maxNodes {
		best.Status = LimitReached // best known, optimality unproven
	}
	return best, nil
}

// substitute builds the reduced problem with the fixed variables eliminated:
// their contribution moves into constraint RHS values and the returned
// objective offset. Variables keep their indices; fixed ones get UB 0 and
// zero objective/constraint coefficients. Returns nil if a constraint is
// already unsatisfiable with every free variable at its most favourable
// bound (quick infeasibility check is left to the LP; nil only for empty
// rows that fail).
func substitute(p *Problem, fixVar []int, fixVal []float64) (*Problem, float64) {
	isFixed := make(map[int]float64, len(fixVar))
	for k, j := range fixVar {
		isFixed[j] = fixVal[k]
	}
	q := &Problem{NumVars: p.NumVars, Objective: make([]float64, p.NumVars)}
	offset := 0.0
	for j, c := range p.Objective {
		if v, ok := isFixed[j]; ok {
			offset += c * v
		} else {
			q.Objective[j] = c
		}
	}
	q.UB = make([]float64, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		if _, ok := isFixed[j]; ok {
			q.UB[j] = 0
		} else {
			q.UB[j] = p.ub(j)
		}
	}
	for _, c := range p.Cons {
		rhs := c.RHS
		terms := make([]Term, 0, len(c.Terms))
		for _, t := range c.Terms {
			if v, ok := isFixed[t.Var]; ok {
				rhs -= t.Coef * v
			} else {
				terms = append(terms, t)
			}
		}
		if len(terms) == 0 {
			switch c.Sense {
			case LE:
				if rhs < -1e-9 {
					return nil, 0
				}
			case GE:
				if rhs > 1e-9 {
					return nil, 0
				}
			case EQ:
				if math.Abs(rhs) > 1e-9 {
					return nil, 0
				}
			}
			continue
		}
		q.Cons = append(q.Cons, Constraint{Terms: terms, Sense: c.Sense, RHS: rhs})
	}
	return q, offset
}

// feasible checks a 0/1 assignment against all constraints.
func feasible(p *Problem, x []float64) bool {
	for _, c := range p.Cons {
		s := 0.0
		for _, t := range c.Terms {
			s += t.Coef * x[t.Var]
		}
		switch c.Sense {
		case LE:
			if s > c.RHS+1e-6 {
				return false
			}
		case GE:
			if s < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(s-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	for j, v := range x {
		if v < -1e-9 || v > p.ub(j)+1e-9 {
			return false
		}
	}
	return true
}

func objValue(p *Problem, x []float64) float64 {
	s := 0.0
	for j, c := range p.Objective {
		s += c * x[j]
	}
	return s
}
