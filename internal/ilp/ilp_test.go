package ilp

import (
	"math"
	"testing"
)

func TestSolveLPBasic(t *testing.T) {
	// min -x - y s.t. x + y <= 1.5, 0 <= x,y <= 1 -> optimum -1.5.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1.5},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective+1.5) > 1e-7 {
		t.Errorf("objective %g, want -1.5", sol.Objective)
	}
}

func TestSolveLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y == 2, 0<=x,y<=1 -> y=1, x=0, obj 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 2}}, Sense: EQ, RHS: 2},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-7 {
		t.Errorf("got %v obj %g, want optimal 1", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[1]-1) > 1e-7 {
		t.Errorf("X = %v, want y=1", sol.X)
	}
}

func TestSolveLPGE(t *testing.T) {
	// min x s.t. x >= 0.7 -> 0.7.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Cons:      []Constraint{{Terms: []Term{{0, 1}}, Sense: GE, RHS: 0.7}},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-0.7) > 1e-7 {
		t.Errorf("got %v %g", sol.Status, sol.Objective)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x <= 0.3 and x >= 0.7 with one variable.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{0},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}}, Sense: LE, RHS: 0.3},
			{Terms: []Term{{0, 1}}, Sense: GE, RHS: 0.7},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestSolveLPUnboundedGuardedByUB(t *testing.T) {
	// With default binary relaxation bounds nothing is unbounded; with
	// infinite UB and a negative objective it is.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{-1},
		UB:        []float64{math.Inf(1)},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status %v, want unbounded", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// -x <= -0.25  <=>  x >= 0.25.
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Cons:      []Constraint{{Terms: []Term{{0, -1}}, Sense: LE, RHS: -0.25}},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-0.25) > 1e-7 {
		t.Errorf("got %v %g, want 0.25", sol.Status, sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	if _, err := SolveLP(&Problem{NumVars: 0}); err == nil {
		t.Error("expected error for zero vars")
	}
	if _, err := SolveLP(&Problem{NumVars: 1, Objective: []float64{1, 2}}); err == nil {
		t.Error("expected objective length error")
	}
	p := &Problem{NumVars: 1, Objective: []float64{1},
		Cons: []Constraint{{Terms: []Term{{3, 1}}, Sense: LE, RHS: 1}}}
	if _, err := SolveLP(p); err == nil {
		t.Error("expected var range error")
	}
}

func TestSolveILPKnapsack(t *testing.T) {
	// max 10x0 + 13x1 + 7x2 s.t. 3x0 + 4x1 + 2x2 <= 6 (binary).
	// Optimum: x0=0? Try subsets: {0,1}: w7 no; {1,2}: w6 val 20; {0,2}:
	// w5 val 17. Best = 20.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-10, -13, -7},
		Cons: []Constraint{
			{Terms: []Term{{0, 3}, {1, 4}, {2, 2}}, Sense: LE, RHS: 6},
		},
	}
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+20) > 1e-6 {
		t.Fatalf("got %v obj %g, want -20", sol.Status, sol.Objective)
	}
	if sol.X[1] != 1 || sol.X[2] != 1 || sol.X[0] != 0 {
		t.Errorf("X = %v, want [0 1 1]", sol.X)
	}
}

func TestSolveILPSetCover(t *testing.T) {
	// Universe {0..4}; sets S0={0,1}, S1={1,2,3}, S2={3,4}, S3={0,2,4}.
	// min sets covering all. {S1,S3} covers {1,2,3}+{0,2,4} = all -> 2.
	sets := [][]int{{0, 1}, {1, 2, 3}, {3, 4}, {0, 2, 4}}
	p := &Problem{
		NumVars:   4,
		Objective: []float64{1, 1, 1, 1},
	}
	for e := 0; e < 5; e++ {
		var terms []Term
		for s, mem := range sets {
			for _, x := range mem {
				if x == e {
					terms = append(terms, Term{s, 1})
				}
			}
		}
		p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: 1})
	}
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want 2", sol.Status, sol.Objective)
	}
}

func TestSolveILPInfeasible(t *testing.T) {
	// x0 + x1 == 1 and x0 + x1 >= 2 over binaries.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: EQ, RHS: 1},
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 2},
		},
	}
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestSolveILPUsesIncumbent(t *testing.T) {
	// Trivial: min x0 + x1 with x0 + x1 >= 1. Incumbent [1,1] (obj 2) must
	// be beaten by optimum 1.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons:      []Constraint{{Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 1}},
	}
	sol, err := SolveILP(p, ILPOptions{Incumbent: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Errorf("obj %g, want 1", sol.Objective)
	}
}

func TestSolveILPFractionalLPForcesBranching(t *testing.T) {
	// LP relaxation of: min -(x0+x1+x2) s.t. pairwise sums <= 1 gives
	// x = [0.5 0.5 0.5] (obj -1.5); ILP optimum is one variable = 1.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-1, -1, -1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{1, 1}, {2, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{0, 1}, {2, 1}}, Sense: LE, RHS: 1},
		},
	}
	lp, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp.Objective+1.5) > 1e-6 {
		t.Fatalf("LP obj %g, want -1.5 (fractional vertex)", lp.Objective)
	}
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective+1) > 1e-6 {
		t.Errorf("ILP obj %g, want -1", sol.Objective)
	}
}

func TestSolveILPEqualityPartition(t *testing.T) {
	// Choose exactly 2 of 4 items minimizing cost.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{5, 1, 3, 2},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}, {2, 1}, {3, 1}}, Sense: EQ, RHS: 2},
		},
	}
	sol, err := SolveILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-3) > 1e-6 { // items 1 and 3
		t.Errorf("obj %g, want 3", sol.Objective)
	}
}

func TestFeasibleChecker(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1},
		},
	}
	if !feasible(p, []float64{1, 0}) {
		t.Error("[1 0] should be feasible")
	}
	if feasible(p, []float64{1, 1}) {
		t.Error("[1 1] should violate the constraint")
	}
}

func TestSolveILPNodeLimit(t *testing.T) {
	// A tight node limit with no incumbent must report LimitReached. The
	// odd cycle's LP relaxation is fractional at every optimal vertex
	// (x = 0.5 everywhere), so one node can never prove optimality.
	p := &Problem{
		NumVars:   5,
		Objective: []float64{-1, -1, -1, -1, -1},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{1, 1}, {2, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{2, 1}, {3, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{3, 1}, {4, 1}}, Sense: LE, RHS: 1},
			{Terms: []Term{{4, 1}, {0, 1}}, Sense: LE, RHS: 1},
		},
	}
	sol, err := SolveILP(p, ILPOptions{MaxNodes: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LimitReached {
		t.Errorf("status %v, want limit-reached", sol.Status)
	}
	if sol.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", sol.Nodes)
	}
	// With a feasible incumbent the limit returns the incumbent instead,
	// along with a sound bound and gap.
	sol, err = SolveILP(p, ILPOptions{MaxNodes: 1, Workers: 1, Incumbent: []float64{1, 0, 1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X == nil {
		t.Error("expected incumbent solution under node limit")
	}
	if sol.Status != LimitReached {
		t.Errorf("status %v, want limit-reached", sol.Status)
	}
	if sol.BestBound > sol.Objective {
		t.Errorf("best bound %g above incumbent %g", sol.BestBound, sol.Objective)
	}
	if sol.RelGap <= 0 {
		t.Errorf("gap %g, want positive while unproven", sol.RelGap)
	}
}

func TestSolveILPIncumbentLength(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	if _, err := SolveILP(p, ILPOptions{Incumbent: []float64{1}}); err == nil {
		t.Error("expected incumbent length error")
	}
}

func TestSolveILPGapStopsEarly(t *testing.T) {
	// With a huge gap the solver accepts the first incumbent.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{1, 2, 3},
		Cons:      []Constraint{{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: GE, RHS: 1}},
	}
	sol, err := SolveILP(p, ILPOptions{Gap: 100, Incumbent: []float64{0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Errorf("gap solve improved past incumbent: %g", sol.Objective)
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", LimitReached: "limit-reached",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q", s, s.String())
		}
	}
	for s, want := range map[Sense]string{LE: "<=", GE: ">=", EQ: "=="} {
		if s.String() != want {
			t.Errorf("Sense %v = %q", s, s.String())
		}
	}
}
