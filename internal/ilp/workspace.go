package ilp

import (
	"math"
	"sync/atomic"
)

// Workspace compiles one Problem into a form a branch-and-bound worker can
// re-solve repeatedly without allocating: the constraint rows, a dense
// simplex tableau buffer, and an in-place fixing representation (a
// fixed-variable mask plus per-row RHS/bound adjustments) that replaces the
// old rebuild-the-Problem-per-node substitution. A Workspace belongs to
// one goroutine at a time; workers of a parallel solve each own one.
//
// Variable upper bounds are implicit: a variable at its upper bound is
// complemented (x -> ub-x) instead of being materialized as an explicit
// <= row, so the tableau has one row per constraint rather than per
// constraint-plus-variable — for the Table 1 covering problems this
// roughly halves the row count versus the seed solver.
//
// Two solve paths share the tableau buffers:
//
//   - The dual path (used whenever every negative-cost variable has a
//     finite bound, which covers all 0/1 problems): the all-slack basis is
//     dual feasible after complementing negative-cost columns, so there is
//     no phase 1 at all, and a node that only *adds* fixes on top of the
//     tableau's current state warm-starts from the parent's optimal basis —
//     fixing a variable keeps dual feasibility, so a handful of dual pivots
//     re-optimize where a cold solve needs hundreds.
//   - The primal two-phase path: general fallback, also the only path that
//     can detect unboundedness.
type Workspace struct {
	p *Problem
	m int // constraint rows
	n int // structural variables
	// Column layout: [0,n) structural, then one slack per LE/GE/RNG row,
	// then the EQ artificials (basis columns the dual path needs, pinned at
	// zero), then — beyond awDual — artificials for GE/RNG rows that only
	// the primal fallback bases its phase 1 on. The dual path never sweeps
	// past awDual, which keeps dead columns out of its pivots.
	nCols    int
	awDual   int
	aw       int   // active sweep width of the current tableau mode
	slackCol []int // per row; -1 for EQ rows
	artCol   []int // per row; EQ rows' sit below awDual, the rest above
	varRows  [][]rowCoef
	dualOK   bool

	// Declared fixes for the node being solved. rhsDelta/substOffset are
	// substitution bookkeeping used by the primal path only; the dual path
	// realizes fixes as bound changes on the live tableau.
	fixedMask   []bool
	fixVal      []float64
	fixedList   []int
	rhsDelta    []float64
	substOffset float64

	// Simplex buffers, reused across solves.
	tab      [][]float64
	backing  []float64
	basis    []int
	basisRow []int // column -> row, -1 if nonbasic
	ub       []float64
	flipped  []bool
	artUsed  []bool
	obj      []float64
	red      []float64
	x        []float64

	// Live dual-path tableau state, for warm starts across nodes.
	tabValid   bool
	tabFix     []int8 // -1 free, else which bound the tableau pins (0/1)
	tabFixN    int
	tabOffset  float64
	pivotCount int // pivots since the last cold build, for refactorization

	// Snapshot of the root-optimal tableau (no fixes). Every node's fix
	// set extends the empty one, so any node — in particular one stolen
	// from a distant subtree — can warm-start by restoring this snapshot
	// and applying its fixes, instead of paying a cold solve.
	snapValid   bool
	snapBacking []float64
	snapBasis   []int
	snapBRow    []int
	snapUB      []float64
	snapFlipped []bool
	snapObj     []float64
	snapRed     []float64
	snapFix     []int8
	snapOffset  float64
	snapPivots  int

	// Stop, when non-nil, is polled every 256 simplex iterations; once set,
	// the solve in flight returns LimitReached instead of running to
	// optimality. It lets a deadline interrupt a long LP mid-pivot.
	Stop *atomic.Bool

	// Counters (cheap visibility for benchmarks; not part of Solution).
	Iters      int64 // simplex iterations
	WarmSolves int64 // relaxations warm-started from a parent basis
	ColdSolves int64

	heurTick int // branch-and-bound rounding-heuristic throttle
}

type rowCoef struct {
	row  int
	coef float64
}

// rebuildEvery forces a cold rebuild after this many Gauss-Jordan pivots on
// one tableau, bounding accumulated floating-point drift. Snapshot restores
// inherit the snapshot's pivot count, so the budget must comfortably exceed
// one root solve's iterations.
const rebuildEvery = 20000

// NewWorkspace validates and compiles p. The Problem must not be mutated
// while the workspace is in use.
func NewWorkspace(p *Problem) (*Workspace, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	w := &Workspace{p: p, m: len(p.Cons), n: p.NumVars}
	w.slackCol = make([]int, w.m)
	w.artCol = make([]int, w.m)
	col := w.n
	for i, c := range p.Cons {
		if c.Sense == EQ {
			w.slackCol[i] = -1
		} else {
			w.slackCol[i] = col
			col++
		}
	}
	for i, c := range p.Cons {
		if c.Sense == EQ {
			w.artCol[i] = col
			col++
		} else {
			w.artCol[i] = -1
		}
	}
	w.awDual = col
	for i, c := range p.Cons {
		if c.Sense != EQ {
			w.artCol[i] = col
			col++
		}
	}
	w.nCols = col

	w.dualOK = true
	for j := 0; j < w.n; j++ {
		if p.Objective[j] < 0 && math.IsInf(p.ub(j), 1) {
			w.dualOK = false // cannot complement to a dual-feasible start
			break
		}
	}

	w.varRows = make([][]rowCoef, w.n)
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			w.varRows[t.Var] = append(w.varRows[t.Var], rowCoef{row: i, coef: t.Coef})
		}
	}

	w.fixedMask = make([]bool, w.n)
	w.fixVal = make([]float64, w.n)
	w.fixedList = make([]int, 0, w.n)
	w.rhsDelta = make([]float64, w.m)

	stride := w.nCols + 1
	w.backing = make([]float64, w.m*stride)
	w.tab = make([][]float64, w.m)
	for i := range w.tab {
		w.tab[i] = w.backing[i*stride : (i+1)*stride : (i+1)*stride]
	}
	w.basis = make([]int, w.m)
	w.basisRow = make([]int, w.nCols)
	w.ub = make([]float64, w.nCols)
	w.flipped = make([]bool, w.nCols)
	w.artUsed = make([]bool, w.m)
	w.obj = make([]float64, w.nCols)
	w.red = make([]float64, w.nCols)
	w.x = make([]float64, w.n)
	w.tabFix = make([]int8, w.n)
	return w, nil
}

// Reset clears all declared fixes.
func (w *Workspace) Reset() {
	for _, j := range w.fixedList {
		w.fixedMask[j] = false
	}
	w.fixedList = w.fixedList[:0]
	for i := range w.rhsDelta {
		w.rhsDelta[i] = 0
	}
	w.substOffset = 0
}

// Fix pins variable j to v; j must currently be free and v must be one of
// its bounds.
func (w *Workspace) Fix(j int, v float64) {
	if w.fixedMask[j] {
		if w.fixVal[j] == v {
			return
		}
		panic("ilp: re-fixing variable to a different value")
	}
	w.fixedMask[j] = true
	w.fixVal[j] = v
	w.fixedList = append(w.fixedList, j)
	w.substOffset += w.p.Objective[j] * v
	if v != 0 {
		for _, rc := range w.varRows[j] {
			w.rhsDelta[rc.row] -= rc.coef * v
		}
	}
}

// NumFixed reports how many variables are currently fixed.
func (w *Workspace) NumFixed() int { return len(w.fixedList) }

// SolveRelax solves the LP relaxation under the declared fixes. On Optimal
// the returned X aliases an internal buffer valid until the next solve, and
// Objective includes the fixed-variable contribution.
func (w *Workspace) SolveRelax() Solution {
	if w.dualOK {
		return w.solveRelaxDual()
	}
	return w.solveRelaxPrimal()
}

// --- Dual path -----------------------------------------------------------

// solveRelaxDual re-optimizes warm from the live tableau when the declared
// fixes extend the tableau's fix set, and rebuilds cold otherwise.
func (w *Workspace) solveRelaxDual() Solution {
	// The dual path realizes fixes as bound changes, so it can only pin a
	// variable at one of its bounds; route anything else to substitution.
	for _, j := range w.fixedList {
		if v := w.fixVal[j]; v != 0 && v != w.p.ub(j) {
			return w.solveRelaxPrimal()
		}
	}
	if w.tabValid && w.pivotCount < rebuildEvery && w.warmCompatible() {
		w.WarmSolves++
		w.applyFixDiff()
		if sol, ok := w.finishDual(); ok {
			return sol
		}
		// Warm start ran out of iterations; fall through to a cold solve.
	} else if w.snapValid {
		w.WarmSolves++
		w.restoreSnapshot()
		w.applyFixDiff()
		if sol, ok := w.finishDual(); ok {
			return sol
		}
	}
	w.ColdSolves++
	w.buildDual()
	sol, ok := w.finishDual()
	if ok {
		if sol.Status == Optimal && len(w.fixedList) == 0 && !w.snapValid {
			w.saveSnapshot()
		}
		return sol
	}
	w.tabValid = false
	return Solution{Status: LimitReached}
}

func (w *Workspace) saveSnapshot() {
	w.snapBacking = append(w.snapBacking[:0], w.backing...)
	w.snapBasis = append(w.snapBasis[:0], w.basis...)
	w.snapBRow = append(w.snapBRow[:0], w.basisRow...)
	w.snapUB = append(w.snapUB[:0], w.ub...)
	w.snapFlipped = append(w.snapFlipped[:0], w.flipped...)
	w.snapObj = append(w.snapObj[:0], w.obj...)
	w.snapRed = append(w.snapRed[:0], w.red...)
	w.snapFix = append(w.snapFix[:0], w.tabFix...)
	w.snapOffset = w.tabOffset
	w.snapPivots = w.pivotCount
	w.snapValid = true
}

func (w *Workspace) restoreSnapshot() {
	copy(w.backing, w.snapBacking)
	copy(w.basis, w.snapBasis)
	copy(w.basisRow, w.snapBRow)
	copy(w.ub, w.snapUB)
	copy(w.flipped, w.snapFlipped)
	copy(w.obj, w.snapObj)
	copy(w.red, w.snapRed)
	copy(w.tabFix, w.snapFix)
	w.tabOffset = w.snapOffset
	w.tabFixN = 0
	w.pivotCount = w.snapPivots
	w.aw = w.awDual // snapshots are only ever taken in dual mode
	w.tabValid = true
}

func (w *Workspace) finishDual() (Solution, bool) {
	val, status := w.dualSimplex()
	switch status {
	case Optimal:
		return Solution{Status: Optimal, X: w.extract(), Objective: val}, true
	case Infeasible:
		// The tableau stays dual feasible, so later nodes can still warm
		// start from it.
		return Solution{Status: Infeasible}, true
	}
	return Solution{}, false
}

// warmCompatible reports whether the declared fixes are a superset of the
// fixes the live tableau encodes (with matching values). Only additions
// preserve dual feasibility; anything else needs a cold rebuild.
func (w *Workspace) warmCompatible() bool {
	if len(w.fixedList) < w.tabFixN {
		return false
	}
	match := 0
	for _, j := range w.fixedList {
		if tv := w.tabFix[j]; tv >= 0 {
			want := int8(0)
			if w.fixVal[j] != 0 {
				want = 1 // pinned at its upper bound
			}
			if tv != want {
				return false
			}
			match++
		}
	}
	return match == w.tabFixN
}

// applyFixDiff imposes the declared fixes not yet in the tableau as bound
// changes: a variable fixed away from the bound its column currently
// represents is complemented first, then pinned with a zero upper bound.
// Reduced costs are untouched, so the tableau stays dual feasible; the
// dual simplex repairs the primal infeasibilities this creates.
func (w *Workspace) applyFixDiff() {
	for _, j := range w.fixedList {
		if w.tabFix[j] >= 0 {
			continue
		}
		v := w.fixVal[j]
		atZero := 0.0
		if w.flipped[j] {
			atZero = w.p.ub(j)
		}
		if math.Abs(v-atZero) > eps {
			if r := w.basisRow[j]; r >= 0 {
				w.complementBasic(r)
			} else {
				w.complementCol(j, w.obj, &w.tabOffset)
			}
		}
		w.ub[j] = 0
		if v != 0 {
			w.tabFix[j] = 1
		} else {
			w.tabFix[j] = 0
		}
		w.tabFixN++
	}
}

// buildDual fills the tableau cold: every LE/GE row normalized to <= form
// with its slack basic (RHS may be negative — the dual iterations repair
// that), EQ rows based on an artificial pinned at zero, negative-cost
// columns complemented for dual feasibility, then the declared fixes
// applied. No phase 1 is ever needed.
func (w *Workspace) buildDual() {
	w.aw = w.awDual
	for i := 0; i < w.m; i++ {
		row := w.tab[i]
		for j := range row {
			row[j] = 0
		}
		c := &w.p.Cons[i]
		sign := 1.0
		if c.Sense == GE {
			sign = -1
		}
		for _, t := range c.Terms {
			row[t.Var] += sign * t.Coef
		}
		row[w.nCols] = sign * c.RHS
		if c.Sense == EQ {
			a := w.artCol[i]
			row[a] = 1
			w.basis[i] = a
		} else {
			s := w.slackCol[i]
			row[s] = 1
			w.basis[i] = s
		}
	}
	for j := range w.basisRow {
		w.basisRow[j] = -1
	}
	for i, b := range w.basis {
		w.basisRow[b] = i
	}
	for j := 0; j < w.n; j++ {
		w.ub[j] = w.p.ub(j)
	}
	for j := w.n; j < w.nCols; j++ {
		w.ub[j] = math.Inf(1)
	}
	for i := 0; i < w.m; i++ {
		switch w.p.Cons[i].Sense {
		case EQ:
			w.ub[w.artCol[i]] = 0 // pinned artificial basis forces equality
		case RNG:
			// The bounded slack realizes the row's lower side: with
			// sum + s = RHS and s <= RHS-LB, the sum cannot drop below LB.
			w.ub[w.slackCol[i]] = w.p.Cons[i].RHS - w.p.Cons[i].LB
		}
	}
	for j := range w.flipped {
		w.flipped[j] = false
	}
	for j := range w.tabFix {
		w.tabFix[j] = -1
	}
	w.tabFixN = 0
	w.tabOffset = 0
	for j := 0; j < w.nCols; j++ {
		w.obj[j] = 0
	}
	copy(w.obj[:w.n], w.p.Objective)
	// All-slack basis has zero cost, so the reduced costs start as the
	// objective; complementing the negative ones yields dual feasibility.
	copy(w.red, w.obj)
	for j := 0; j < w.n; j++ {
		if w.obj[j] < 0 {
			w.complementCol(j, w.obj, &w.tabOffset)
		}
	}
	w.pivotCount = 0
	w.tabValid = true
	w.applyFixDiff()
}

const ptol = 1e-7 // primal feasibility tolerance on basic values

// dualSimplex restores primal feasibility while maintaining dual
// feasibility (reduced costs >= 0 up to tolerance), which makes the final
// basis optimal. Leaving row: most-violated bound (a basic above its upper
// bound is complemented first, making "below zero" the only case).
// Entering: minimum dual ratio red_j / -t_rj, index tie-break. After a
// degeneracy streak both rules fall back to smallest-index (Bland) to
// break cycles. All selection is deterministic for a given tableau.
func (w *Workspace) dualSimplex() (float64, Status) {
	m, N := w.m, w.nCols
	degenerate := 0
	for iter := 0; iter < simplexMaxIters; iter++ {
		w.Iters++
		if iter&255 == 255 && w.Stop != nil && w.Stop.Load() {
			return 0, LimitReached
		}
		leave := -1
		if degenerate < 40 {
			worst := ptol
			for i := 0; i < m; i++ {
				v := w.tab[i][N]
				viol := -v
				if u := w.ub[w.basis[i]]; !math.IsInf(u, 1) && v-u > viol {
					viol = v - u
				}
				if viol > worst {
					worst = viol
					leave = i
				}
			}
		} else {
			// Bland-style anti-cycling: the violated row whose basic
			// variable has the smallest index.
			for i := 0; i < m; i++ {
				v := w.tab[i][N]
				if v < -ptol || v > w.ub[w.basis[i]]+ptol {
					if leave < 0 || w.basis[i] < w.basis[leave] {
						leave = i
					}
				}
			}
		}
		if leave < 0 {
			val := w.tabOffset
			for i := 0; i < m; i++ {
				if cb := w.obj[w.basis[i]]; cb != 0 {
					val += cb * w.tab[i][N]
				}
			}
			return val, Optimal
		}
		if w.tab[leave][N] > -ptol {
			// Above its upper bound: complement so the violation reads as
			// "below zero" and the standard ratio test applies.
			w.complementBasic(leave)
		}
		// Entering must be min-ratio regardless of the anti-cycling mode —
		// anything else would break dual feasibility. Scanning ascending
		// with a strict improvement test makes ties resolve to the
		// smallest index.
		row := w.tab[leave]
		enter := -1
		best := math.Inf(1)
		for j := 0; j < w.aw; j++ {
			if row[j] < -eps && w.ub[j] > eps {
				r := w.red[j]
				if r < 0 {
					r = 0
				}
				if ratio := r / -row[j]; ratio < best-eps {
					best = ratio
					enter = j
				}
			}
		}
		if enter < 0 {
			return 0, Infeasible
		}
		if w.red[enter] < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		w.pivotRed(leave, enter)
	}
	return 0, LimitReached
}

// complementBasic rewrites the basic column of row r in terms of its
// complement; the re-expression is exact at any value, so it is also how a
// basic variable is forced toward the other bound.
func (w *Workspace) complementBasic(r int) {
	l := w.basis[r]
	w.complementCol(l, w.obj, &w.tabOffset)
	row := w.tab[r]
	for j := 0; j < w.aw; j++ {
		row[j] = -row[j]
	}
	row[w.nCols] = -row[w.nCols]
}

// --- Primal path ---------------------------------------------------------

// solveRelaxPrimal is the general-purpose two-phase solve; fixes are
// substituted out (zeroed columns, RHS deltas). It is the only path that
// can report Unbounded.
func (w *Workspace) solveRelaxPrimal() Solution {
	w.ColdSolves++
	w.tabValid = false
	w.buildPrimal()
	// Phase 1: minimize the sum of artificials in the starting basis.
	anyArt := false
	for i := 0; i < w.m; i++ {
		if w.artUsed[i] {
			anyArt = true
			break
		}
	}
	if anyArt {
		for j := range w.obj {
			w.obj[j] = 0
		}
		for i := 0; i < w.m; i++ {
			if w.artUsed[i] {
				w.obj[w.artCol[i]] = 1
			}
		}
		offset := 0.0
		val, status := w.primalSimplex(w.obj, &offset)
		if status != Optimal || val > 1e-7 {
			return Solution{Status: Infeasible}
		}
	}
	// Pin every artificial at zero: with ub 0 they can neither re-enter nor
	// grow while basic (any move through their row hits the bound at step
	// 0), which replaces the seed's explicit drive-out-and-forbid pass.
	for i := 0; i < w.m; i++ {
		w.ub[w.artCol[i]] = 0
	}
	// Phase 2: the true objective over free structural columns.
	offset := w.substOffset
	for j := 0; j < w.nCols; j++ {
		w.obj[j] = 0
	}
	for j := 0; j < w.n; j++ {
		if w.fixedMask[j] {
			continue
		}
		c := w.p.Objective[j]
		if w.flipped[j] {
			offset += c * w.ub[j]
			w.obj[j] = -c
		} else {
			w.obj[j] = c
		}
	}
	val, status := w.primalSimplex(w.obj, &offset)
	switch status {
	case Unbounded:
		return Solution{Status: Unbounded}
	case LimitReached:
		return Solution{Status: LimitReached}
	}
	return Solution{Status: Optimal, X: w.extract(), Objective: val}
}

// buildPrimal fills the tableau for the substitution form: fixed columns
// zeroed, RHS shifted, rows sign-normalized to a nonnegative RHS, LE rows
// starting with their slack basic and GE/EQ rows with their artificial.
func (w *Workspace) buildPrimal() {
	w.aw = w.nCols
	for i := 0; i < w.m; i++ {
		row := w.tab[i]
		for j := range row {
			row[j] = 0
		}
		c := &w.p.Cons[i]
		rhs := c.RHS + w.rhsDelta[i]
		sign := 1.0
		effSense := c.Sense
		if rhs < 0 {
			sign, rhs = -1, -rhs
			switch effSense {
			case LE:
				effSense = GE
			case GE:
				effSense = LE
			}
		}
		for _, t := range c.Terms {
			if !w.fixedMask[t.Var] {
				row[t.Var] += sign * t.Coef
			}
		}
		row[w.nCols] = rhs
		switch effSense {
		case LE:
			s := w.slackCol[i]
			row[s] = 1
			w.basis[i] = s
			w.artUsed[i] = false
		case GE:
			row[w.slackCol[i]] = -1
			a := w.artCol[i]
			row[a] = 1
			w.basis[i] = a
			w.artUsed[i] = true
		case EQ:
			a := w.artCol[i]
			row[a] = 1
			w.basis[i] = a
			w.artUsed[i] = true
		case RNG:
			// The bounded slack may not cover the starting value, so base
			// the row on an artificial with the slack nonbasic at zero.
			row[w.slackCol[i]] = sign
			a := w.artCol[i]
			row[a] = 1
			w.basis[i] = a
			w.artUsed[i] = true
		}
	}
	for j := range w.basisRow {
		w.basisRow[j] = -1
	}
	for i, b := range w.basis {
		w.basisRow[b] = i
	}
	for j := 0; j < w.n; j++ {
		if w.fixedMask[j] {
			w.ub[j] = 0
		} else {
			w.ub[j] = w.p.ub(j)
		}
	}
	for j := w.n; j < w.nCols; j++ {
		w.ub[j] = math.Inf(1)
	}
	for i := 0; i < w.m; i++ {
		if c := &w.p.Cons[i]; c.Sense == RNG {
			w.ub[w.slackCol[i]] = c.RHS - c.LB
		}
	}
	for j := range w.flipped {
		w.flipped[j] = false
	}
}

const simplexMaxIters = 50000

// primalSimplex minimizes obj over the current tableau with implicit
// bounds [0, ub]. Nonbasic variables at their upper bound are complemented,
// so the invariant "every nonbasic variable is at zero" of the plain
// method holds throughout. Column selection is Dantzig's rule with a Bland
// fallback after a degeneracy streak; all tie-breaks are index-based so a
// given tableau solves identically on every run.
func (w *Workspace) primalSimplex(obj []float64, offset *float64) (float64, Status) {
	m, N := w.m, w.aw
	red := w.red
	degenerate := 0
	for iter := 0; iter < simplexMaxIters; iter++ {
		w.Iters++
		if iter&255 == 255 && w.Stop != nil && w.Stop.Load() {
			return 0, LimitReached
		}
		copy(red[:N], obj[:N])
		for i := 0; i < m; i++ {
			cb := obj[w.basis[i]]
			if cb == 0 {
				continue
			}
			row := w.tab[i]
			for j := 0; j < N; j++ {
				if row[j] != 0 {
					red[j] -= cb * row[j]
				}
			}
		}
		enter := -1
		if degenerate < 40 {
			best := -1e-9
			for j := 0; j < N; j++ {
				if red[j] < best && w.ub[j] > eps {
					best = red[j]
					enter = j
				}
			}
		} else { // Bland fallback: first improving column.
			for j := 0; j < N; j++ {
				if red[j] < -1e-9 && w.ub[j] > eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			val := *offset
			for i := 0; i < m; i++ {
				if cb := obj[w.basis[i]]; cb != 0 {
					val += cb * w.tab[i][w.nCols]
				}
			}
			return val, Optimal
		}
		// Ratio test: the entering variable rises from 0 until a basic
		// variable hits a bound or the entering variable hits its own upper
		// bound (a bound flip, handled by complementing the column).
		leave, leaveAtUpper := -1, false
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := w.tab[i][enter]
			var ratio float64
			var atUpper bool
			if a > eps {
				ratio = w.tab[i][w.nCols] / a
			} else if a < -eps && !math.IsInf(w.ub[w.basis[i]], 1) {
				ratio = (w.ub[w.basis[i]] - w.tab[i][w.nCols]) / -a
				atUpper = true
			} else {
				continue
			}
			if ratio < best-eps || (ratio < best+eps && (leave < 0 || w.basis[i] < w.basis[leave])) {
				best = ratio
				leave = i
				leaveAtUpper = atUpper
			}
		}
		if flip := w.ub[enter]; leave < 0 || flip < best-eps {
			if leave < 0 && math.IsInf(flip, 1) {
				return 0, Unbounded
			}
			w.complementCol(enter, obj, offset)
			degenerate = 0 // a flip moves by ub[enter] > eps
			continue
		}
		if best < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		leavingCol := w.basis[leave]
		w.pivot(leave, enter)
		if leaveAtUpper {
			w.complementCol(leavingCol, obj, offset)
		}
	}
	return 0, LimitReached
}

// --- Shared pieces -------------------------------------------------------

// extract reads the structural solution out of the tableau, filling fixed
// variables from the fix table.
func (w *Workspace) extract() []float64 {
	for j := 0; j < w.n; j++ {
		switch {
		case w.fixedMask[j]:
			w.x[j] = w.fixVal[j]
		case w.flipped[j]:
			w.x[j] = w.p.ub(j)
		default:
			w.x[j] = 0
		}
	}
	for i := 0; i < w.m; i++ {
		b := w.basis[i]
		if b >= w.n || w.fixedMask[b] {
			continue
		}
		v := w.tab[i][w.nCols]
		if w.flipped[b] {
			v = w.p.ub(b) - v
		}
		w.x[b] = v
	}
	return w.x
}

// complementCol rewrites column j in terms of its complement ub_j - x_j,
// flipping its bound status. Only finite-bound columns are complemented.
// The reduced cost flips sign with the column.
func (w *Workspace) complementCol(j int, obj []float64, offset *float64) {
	u := w.ub[j]
	N := w.nCols
	for i := 0; i < w.m; i++ {
		row := w.tab[i]
		if t := row[j]; t != 0 {
			row[N] -= t * u
			row[j] = -t
		}
	}
	if obj[j] != 0 {
		*offset += obj[j] * u
		obj[j] = -obj[j]
	}
	w.red[j] = -w.red[j]
	w.flipped[j] = !w.flipped[j]
}

// pivot performs a Gauss-Jordan pivot on tab[row][col]. Sweeps cover the
// active width plus the RHS column; columns beyond aw are identically zero
// in the current mode.
func (w *Workspace) pivot(row, col int) {
	N, R := w.aw, w.nCols
	pr := w.tab[row]
	pv := pr[col]
	for j := 0; j < N; j++ {
		pr[j] /= pv
	}
	pr[R] /= pv
	for i := range w.tab {
		if i == row {
			continue
		}
		ri := w.tab[i]
		f := ri[col]
		if f == 0 {
			continue
		}
		for j := 0; j < N; j++ {
			ri[j] -= f * pr[j]
		}
		ri[R] -= f * pr[R]
	}
	w.basisRow[w.basis[row]] = -1
	w.basis[row] = col
	w.basisRow[col] = row
	w.pivotCount++
}

// pivotRed pivots and updates the live reduced-cost row incrementally
// (red_j -= red_enter * t'_rj), avoiding the O(m*N) recomputation per
// iteration the primal path pays.
func (w *Workspace) pivotRed(row, col int) {
	w.pivot(row, col)
	re := w.red[col]
	if re == 0 {
		return
	}
	pr := w.tab[row]
	red := w.red
	for j := 0; j < w.aw; j++ {
		if pr[j] != 0 {
			red[j] -= re * pr[j]
		}
	}
}
