// Package ilp is a small exact solver for the 0/1 integer linear programs
// the PoE-placement formulation of Table 1 produces — the reproduction's
// substitute for the FICO Xpress solver the paper used. It contains a dense
// two-phase primal simplex for the LP relaxations and a depth-first
// branch-and-bound driver with most-fractional branching.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE Sense = iota // sum <= rhs
	GE              // sum >= rhs
	EQ              // sum == rhs
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is sum(Coef_j * x_j) Sense RHS.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program over variables x_0..x_{n-1} with bounds
// [0, UB_j]. Objective is always minimized; negate coefficients to maximize.
type Problem struct {
	NumVars   int
	Objective []float64 // len NumVars
	Cons      []Constraint
	// UB is the per-variable upper bound; nil means all 1 (binary
	// relaxation). Entries of +Inf mean unbounded above.
	UB []float64
}

// Status describes the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	LimitReached
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case LimitReached:
		return "limit-reached"
	}
	return "?"
}

// Solution holds a solve result.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// ErrBadProblem is returned for malformed inputs.
var ErrBadProblem = errors.New("ilp: malformed problem")

func (p *Problem) validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective length %d != %d", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	if p.UB != nil && len(p.UB) != p.NumVars {
		return fmt.Errorf("%w: UB length %d != %d", ErrBadProblem, len(p.UB), p.NumVars)
	}
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("%w: constraint %d references var %d", ErrBadProblem, i, t.Var)
			}
		}
	}
	return nil
}

func (p *Problem) ub(j int) float64 {
	if p.UB == nil {
		return 1
	}
	return p.UB[j]
}

// SolveLP solves the LP relaxation with bounds [0, UB] by two-phase primal
// simplex. Upper bounds are materialized as explicit <= rows.
func SolveLP(p *Problem) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{}, err
	}
	// Assemble the row set: user constraints plus finite upper bounds.
	type row struct {
		coefs []float64
		sense Sense
		rhs   float64
	}
	var rows []row
	for _, c := range p.Cons {
		r := row{coefs: make([]float64, p.NumVars), sense: c.Sense, rhs: c.RHS}
		for _, t := range c.Terms {
			r.coefs[t.Var] += t.Coef
		}
		rows = append(rows, r)
	}
	for j := 0; j < p.NumVars; j++ {
		if ub := p.ub(j); !math.IsInf(ub, 1) {
			r := row{coefs: make([]float64, p.NumVars), sense: LE, rhs: ub}
			r.coefs[j] = 1
			rows = append(rows, r)
		}
	}
	// Normalize to rhs >= 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coefs {
				rows[i].coefs[j] = -rows[i].coefs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}
	m := len(rows)
	// Count slack and artificial columns.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt
	// Tableau: m rows x (n+1) columns (last = rhs).
	t := make([][]float64, m)
	basis := make([]int, m)
	slackAt, artAt := p.NumVars, p.NumVars+nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		t[i] = make([]float64, n+1)
		copy(t[i], r.coefs)
		t[i][n] = r.rhs
		switch r.sense {
		case LE:
			t[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			t[i][slackAt] = -1
			slackAt++
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			t[i][artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
	}
	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj := make([]float64, n)
		for _, c := range artCols {
			obj[c] = 1
		}
		val, status := runSimplex(t, basis, obj, n)
		if status == Unbounded {
			return Solution{Status: Infeasible}, nil
		}
		if val > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		isArt := make([]bool, n)
		for _, c := range artCols {
			isArt[c] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < p.NumVars+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, n)
					pivoted = true
					break
				}
			}
			_ = pivoted // a zero row stays with its artificial at value 0; harmless
		}
	}
	// Phase 2: original objective, artificial columns forbidden.
	obj := make([]float64, n)
	copy(obj, p.Objective)
	for _, c := range artCols {
		obj[c] = math.Inf(1) // forbid re-entry
	}
	val, status := runSimplex(t, basis, obj, n)
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, p.NumVars)
	for i, b := range basis {
		if b < p.NumVars {
			x[b] = t[i][n]
		}
	}
	return Solution{Status: Optimal, X: x, Objective: val}, nil
}

// runSimplex minimizes obj over the current tableau, returning the
// objective value. obj entries of +Inf mark forbidden columns. Column
// selection uses Dantzig's rule (most negative reduced cost) with a switch
// to Bland's anti-cycling rule after a degeneracy streak.
func runSimplex(t [][]float64, basis []int, obj []float64, n int) (float64, Status) {
	m := len(t)
	red := make([]float64, n)
	degenerate := 0
	for iter := 0; iter < 50000; iter++ {
		// One pass: r = obj - c_B^T * T, accumulated row-wise for cache
		// friendliness.
		copy(red, obj[:n])
		for i := 0; i < m; i++ {
			cb := obj[basis[i]]
			if cb == 0 || math.IsInf(cb, 1) {
				continue
			}
			row := t[i]
			for j := 0; j < n; j++ {
				if row[j] != 0 {
					red[j] -= cb * row[j]
				}
			}
		}
		enter := -1
		if degenerate < 40 {
			best := -1e-9
			for j := 0; j < n; j++ {
				if red[j] < best && !math.IsInf(obj[j], 1) {
					best = red[j]
					enter = j
				}
			}
		} else { // Bland fallback: first improving column
			for j := 0; j < n; j++ {
				if red[j] < -1e-9 && !math.IsInf(obj[j], 1) {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			// Optimal: compute objective value.
			val := 0.0
			for i := 0; i < m; i++ {
				ob := obj[basis[i]]
				if !math.IsInf(ob, 1) {
					val += ob * t[i][n]
				}
			}
			return val, Optimal
		}
		// Ratio test, Bland tie-break on smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][n] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, Unbounded
		}
		if t[leave][n] < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		pivot(t, basis, leave, enter, n)
	}
	return 0, LimitReached
}

// pivot performs a Gauss-Jordan pivot on t[row][col].
func pivot(t [][]float64, basis []int, row, col, n int) {
	pv := t[row][col]
	for j := 0; j <= n; j++ {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= n; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
