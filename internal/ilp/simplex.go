// Package ilp is a small exact solver for the 0/1 integer linear programs
// the PoE-placement formulation of Table 1 produces — the reproduction's
// substitute for the FICO Xpress solver the paper used. It contains a dense
// two-phase primal simplex with implicit variable upper bounds for the LP
// relaxations (see Workspace) and a parallel branch-and-bound driver: a
// work-stealing pool of solver workers over a shared best-first frontier,
// DFS dives for early incumbents, and a shared atomically-pruned incumbent
// (see SolveILP / SolveILPContext).
package ilp

import (
	"errors"
	"fmt"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	LE  Sense = iota // sum <= rhs
	GE               // sum >= rhs
	EQ               // sum == rhs
	RNG              // lb <= sum <= rhs (two-sided row, one slack)
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	case RNG:
		return "in"
	}
	return "?"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is sum(Coef_j * x_j) Sense RHS. A RNG row additionally bounds
// the sum from below by LB (LB is ignored for the other senses): it costs
// one tableau row with a bounded slack, half of what the equivalent GE+LE
// pair does — the covering formulation's per-cell 1 <= cover <= MaxCover
// windows are the intended use.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	LB    float64
}

// Problem is a linear program over variables x_0..x_{n-1} with bounds
// [0, UB_j]. Objective is always minimized; negate coefficients to maximize.
type Problem struct {
	NumVars   int
	Objective []float64 // len NumVars
	Cons      []Constraint
	// UB is the per-variable upper bound; nil means all 1 (binary
	// relaxation). Entries of +Inf mean unbounded above.
	UB []float64
}

// Status describes the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	LimitReached
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case LimitReached:
		return "limit-reached"
	}
	return "?"
}

// Solution holds a solve result. For ILP solves the search statistics are
// always populated, and X carries the best-known incumbent whenever one
// exists — including on LimitReached, where Objective is the incumbent's
// value, BestBound the best proven lower bound over the unexplored
// frontier, and RelGap their relative distance.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64

	// Search statistics (branch and bound only; zero for plain LP solves).
	Nodes     int64   // branch-and-bound nodes explored
	BestBound float64 // best proven lower bound on the optimum
	RelGap    float64 // (Objective-BestBound)/max(1,|Objective|); 0 when proven

	// Work-distribution statistics of the parallel search.
	Steals           []int64 // per-worker pops off the shared frontier
	IncumbentUpdates int64   // incumbent improvements accepted
}

const eps = 1e-9

// ErrBadProblem is returned for malformed inputs.
var ErrBadProblem = errors.New("ilp: malformed problem")

func (p *Problem) validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective length %d != %d", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	if p.UB != nil && len(p.UB) != p.NumVars {
		return fmt.Errorf("%w: UB length %d != %d", ErrBadProblem, len(p.UB), p.NumVars)
	}
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("%w: constraint %d references var %d", ErrBadProblem, i, t.Var)
			}
		}
		if c.Sense == RNG && !(c.LB <= c.RHS) {
			return fmt.Errorf("%w: constraint %d range [%v, %v]", ErrBadProblem, i, c.LB, c.RHS)
		}
	}
	return nil
}

func (p *Problem) ub(j int) float64 {
	if p.UB == nil {
		return 1
	}
	return p.UB[j]
}

// SolveLP solves the LP relaxation with bounds [0, UB] by two-phase primal
// simplex with implicit upper bounds. It is a convenience wrapper that
// compiles a fresh Workspace per call; branch and bound reuses workspaces
// across nodes instead.
func SolveLP(p *Problem) (Solution, error) {
	w, err := NewWorkspace(p)
	if err != nil {
		return Solution{}, err
	}
	sol := w.SolveRelax()
	if sol.Status == Optimal {
		sol.X = append([]float64(nil), sol.X...) // detach from workspace buffer
	}
	return sol, nil
}
