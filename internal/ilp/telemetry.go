package ilp

import (
	"snvmm/internal/telemetry"
)

// Solver instrumentation. Unlike the package-global instruments elsewhere,
// the ILP solver is handed its registry per solve (ILPOptions.Telemetry),
// because concurrent solves on different problems are normal and each run's
// searcher resolves its own instrument set once up front.

// ilpTel is the resolved instrument set of one branch-and-bound run.
type ilpTel struct {
	reg *telemetry.Registry

	nodes      *telemetry.Counter // nodes expanded (all workers, incl. probes)
	steals     *telemetry.Counter // nodes popped off the shared frontier
	incumbents *telemetry.Counter // incumbent improvements accepted

	bestObj  *telemetry.FloatGauge // objective of the current incumbent
	headBnd  *telemetry.FloatGauge // bound of the frontier head (best open node)
	scope    *telemetry.Scope
	incumbMu *telemetry.EventMeta
}

var metaIncumbent = &telemetry.EventMeta{Subsystem: "ilp", Name: "incumbent"}

// newILPTel resolves the solver instruments, all under the "ilp." prefix.
func newILPTel(reg *telemetry.Registry) *ilpTel {
	if reg == nil {
		return nil
	}
	return &ilpTel{
		reg:        reg,
		nodes:      reg.Counter("ilp.nodes"),
		steals:     reg.Counter("ilp.steals"),
		incumbents: reg.Counter("ilp.incumbent_updates"),
		bestObj:    reg.FloatGauge("ilp.best_objective"),
		headBnd:    reg.FloatGauge("ilp.frontier_bound"),
		scope:      reg.Recorder().Scope("ilp"),
		incumbMu:   metaIncumbent,
	}
}
