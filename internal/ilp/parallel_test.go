package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomCoverInstance builds a small random covering-flavored 0/1 program:
// unit-cost-ish objective, per-element coverage windows (a mix of GE and
// two-sided RNG rows), and occasionally a weighted total-coverage row —
// the same row shapes the PoE placement formulation emits.
func randomCoverInstance(rng *rand.Rand) *Problem {
	n := 4 + rng.Intn(9) // 4..12 variables
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = float64(1 + rng.Intn(3))
	}
	rows := 2 + rng.Intn(n)
	for r := 0; r < rows; r++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{Var: j, Coef: 1})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		if rng.Intn(2) == 0 {
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: 1})
		} else {
			ub := 1 + rng.Intn(2)
			p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: RNG, LB: 1, RHS: float64(ub)})
		}
	}
	if rng.Intn(2) == 0 {
		terms := make([]Term, n)
		total := 0
		for j := range terms {
			w := 1 + rng.Intn(3)
			terms[j] = Term{Var: j, Coef: float64(w)}
			total += w
		}
		p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: GE, RHS: float64(total / 3)})
	}
	return p
}

// bruteForce enumerates all 2^n assignments and returns the optimal
// objective, or +Inf if the instance is infeasible.
func bruteForce(p *Problem) float64 {
	n := p.NumVars
	best := math.Inf(1)
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		if !feasible(p, x) {
			continue
		}
		if v := objValue(p, x); v < best {
			best = v
		}
	}
	return best
}

// TestSolveILPMatchesEnumeration cross-checks the parallel branch and bound
// against exhaustive enumeration on random small instances, at several
// worker counts. Run with -race to exercise the shared-frontier and
// shared-incumbent paths.
func TestSolveILPMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		p := randomCoverInstance(rng)
		want := bruteForce(p)
		for _, workers := range []int{1, 4, 8} {
			sol, err := SolveILP(p, ILPOptions{Workers: workers, IntegralObjective: true})
			if err != nil {
				t.Fatalf("iter %d workers %d: %v", it, workers, err)
			}
			if math.IsInf(want, 1) {
				if sol.Status != Infeasible {
					t.Fatalf("iter %d workers %d: status %v, enumeration says infeasible", it, workers, sol.Status)
				}
				continue
			}
			if sol.Status != Optimal {
				t.Fatalf("iter %d workers %d: status %v, want optimal", it, workers, sol.Status)
			}
			if math.Abs(sol.Objective-want) > 1e-6 {
				t.Fatalf("iter %d workers %d: objective %g, enumeration %g", it, workers, sol.Objective, want)
			}
			if !feasible(p, sol.X) {
				t.Fatalf("iter %d workers %d: returned X infeasible", it, workers)
			}
			if sol.BestBound > sol.Objective+1e-6 || sol.RelGap != 0 {
				t.Fatalf("iter %d workers %d: bound %g gap %g for proven optimum %g",
					it, workers, sol.BestBound, sol.RelGap, sol.Objective)
			}
		}
	}
}

// TestSolveILPCanonicalAcrossWorkers verifies the determinism contract: with
// Canonicalize set, the solution vector — not just the objective — is
// identical for every worker count.
func TestSolveILPCanonicalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for it := 0; it < iters; it++ {
		p := randomCoverInstance(rng)
		var ref []float64
		for _, workers := range []int{1, 4, 8} {
			sol, err := SolveILP(p, ILPOptions{Workers: workers, IntegralObjective: true, Canonicalize: true})
			if err != nil {
				t.Fatalf("iter %d workers %d: %v", it, workers, err)
			}
			if sol.Status != Optimal {
				break // infeasible instances have no vector to compare
			}
			if ref == nil {
				ref = append([]float64(nil), sol.X...)
				continue
			}
			for j := range ref {
				if ref[j] != sol.X[j] {
					t.Fatalf("iter %d: workers=%d diverges at x%d: %v vs %v", it, workers, j, sol.X, ref)
				}
			}
		}
	}
}

// TestSolveILPContextCancel checks that a cancelled context stops the search
// and surfaces the incumbent as LimitReached.
func TestSolveILPContextCancel(t *testing.T) {
	// A 24-variable odd-cycle-rich instance the solver cannot finish in one
	// node; the pre-cancelled context must stop it immediately.
	n := 24
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = -1
	}
	for j := 0; j < n; j++ {
		p.Cons = append(p.Cons, Constraint{
			Terms: []Term{{j, 1}, {(j + 1) % n, 1}, {(j + 5) % n, 1}},
			Sense: LE, RHS: 1,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveILPContext(ctx, p, ILPOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LimitReached {
		t.Errorf("status %v, want limit-reached on cancelled context", sol.Status)
	}

	// A short deadline must also stop the search well before the node
	// budget. Use a 16x16 grid cross-covering instance (the PoE placement
	// shape): its search tree takes seconds even with warm-started LPs.
	hard := gridCoverProblem(16, 16)
	ctx, cancel = context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sol, err = SolveILPContext(ctx, hard, ILPOptions{Workers: 2, MaxNodes: 100000000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LimitReached {
		t.Errorf("status %v, want limit-reached on deadline", sol.Status)
	}
	if sol.Nodes >= 100000000 {
		t.Errorf("nodes %d suggests deadline did not interrupt", sol.Nodes)
	}
}

// gridCoverProblem builds the Table 1 covering program for an R x C grid
// with the paper's clipped cross footprint (vertical reach 4, horizontal
// reach 1): minimize selected cells subject to every cell being covered by
// 1..2 selected crosses. Mirrors the internal/poe formulation without
// importing it.
func gridCoverProblem(rows, cols int) *Problem {
	n := rows * cols
	idx := func(r, c int) int { return r*cols + c }
	coveredBy := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := idx(r, c)
			add := func(rr, cc int) {
				if rr >= 0 && rr < rows && cc >= 0 && cc < cols {
					coveredBy[idx(rr, cc)] = append(coveredBy[idx(rr, cc)], i)
				}
			}
			for d := -4; d <= 4; d++ {
				add(r+d, c)
			}
			add(r, c-1)
			add(r, c+1)
		}
	}
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for j := range p.Objective {
		p.Objective[j] = 1
	}
	for m := 0; m < n; m++ {
		terms := make([]Term, len(coveredBy[m]))
		for k, i := range coveredBy[m] {
			terms[k] = Term{Var: i, Coef: 1}
		}
		p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: RNG, LB: 1, RHS: 2})
	}
	return p
}

// TestSolveLPRangeRow pins the RNG sense semantics on a hand-checked LP.
func TestSolveLPRangeRow(t *testing.T) {
	// min x + 2y s.t. 1 <= x + y <= 2 with x,y in [0,1]: optimum x=1, y=0.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: RNG, LB: 1, RHS: 2},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-7 {
		t.Fatalf("got %v obj %g, want optimal 1", sol.Status, sol.Objective)
	}
	// Upper side: min -x - 2y under the same row -> x=1, y=1 infeasible
	// (sum 2 allowed), so optimum -3 at x=1,y=1? sum=2 <= 2: feasible.
	p2 := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -2},
		Cons: []Constraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Sense: RNG, LB: 1, RHS: 2},
		},
	}
	sol, err = SolveLP(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+3) > 1e-7 {
		t.Fatalf("upper side: got %v obj %g, want -3", sol.Status, sol.Objective)
	}
	// Binding upper side: cap the sum at 1.5.
	p2.Cons[0].RHS = 1.5
	sol, err = SolveLP(p2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+2.5) > 1e-7 {
		t.Fatalf("capped: got %v obj %g, want -2.5 (y=1, x=0.5)", sol.Status, sol.Objective)
	}
	// Invalid range must be rejected.
	bad := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Cons:      []Constraint{{Terms: []Term{{0, 1}}, Sense: RNG, LB: 2, RHS: 1}},
	}
	if _, err := SolveLP(bad); err == nil {
		t.Error("expected validation error for inverted range")
	}
}

// TestWorkspaceWarmMatchesCold drives one workspace through a randomized
// sequence of fix sets — dives (supersets, warm-started) interleaved with
// jumps to unrelated fix sets (snapshot restores) — and checks every
// relaxation against a fresh cold workspace.
func TestWorkspaceWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for inst := 0; inst < 10; inst++ {
		p := randomCoverInstance(rng)
		warm, err := NewWorkspace(p)
		if err != nil {
			t.Fatal(err)
		}
		fixes := map[int]float64{}
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0: // extend the dive
				j := rng.Intn(p.NumVars)
				if _, ok := fixes[j]; !ok {
					fixes[j] = float64(rng.Intn(2))
				}
			case 1: // jump to a fresh branch
				fixes = map[int]float64{rng.Intn(p.NumVars): float64(rng.Intn(2))}
			default: // stay
			}
			warm.Reset()
			for j, v := range fixes {
				warm.Fix(j, v)
			}
			got := warm.SolveRelax()

			cold, err := NewWorkspace(p)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range fixes {
				cold.Fix(j, v)
			}
			want := cold.SolveRelax()
			if got.Status != want.Status {
				t.Fatalf("inst %d step %d fixes %v: warm %v vs cold %v", inst, step, fixes, got.Status, want.Status)
			}
			if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("inst %d step %d fixes %v: warm obj %g vs cold %g", inst, step, fixes, got.Objective, want.Objective)
			}
		}
	}
}
