package trace

import (
	"strings"
	"testing"
)

func TestParseWorkloadBasic(t *testing.T) {
	src := []byte(`
# a comment
w 0x1000 4
r 4096
t 500
f
x
`)
	ops, err := ParseWorkload(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Kind: OpWrite, Addr: 0x1000, Count: 4},
		{Kind: OpRead, Addr: 4096, Count: 1},
		{Kind: OpTick, Cycles: 500},
		{Kind: OpFlush},
		{Kind: OpCrash},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i, op := range ops {
		if op != want[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, op, want[i])
		}
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown verb", "q 12\n"},
		{"write missing addr", "w\n"},
		{"read trailing junk", "r 0 1 2\n"},
		{"negative addr", "w -1\n"},
		{"plus sign", "r +5\n"},
		{"huge count", "w 0 4294967296\n"},
		{"zero count", "r 0 0\n"},
		{"tick missing cycles", "t\n"},
		{"tick overflow", "t 99999999999999999999\n"},
		{"flush operand", "f 1\n"},
		{"crash operand", "x now\n"},
		{"hex garbage", "w 0xzz\n"},
		{"overlong line", "w " + strings.Repeat("1", 70*1024) + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseWorkload([]byte(tc.src)); err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
		})
	}
}

func FuzzParseWorkload(f *testing.F) {
	f.Add([]byte("w 0x1000 4\nr 4096\nt 500\nf\nx\n"))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("w 0 1048576\n"))
	f.Add([]byte("w 0 1048577\n")) // one past MaxOpCount
	f.Add([]byte("r 18446744073709551615\n"))
	f.Add([]byte("t 99999999999999999999\n"))
	f.Add([]byte("w -1\nx extra\n"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, src []byte) {
		ops, err := ParseWorkload(src)
		if err != nil {
			return
		}
		// Accepted scripts obey the documented bounds.
		if len(ops) > maxScriptOps {
			t.Fatalf("parser returned %d ops past its own cap", len(ops))
		}
		for i, op := range ops {
			switch op.Kind {
			case OpWrite, OpRead:
				if op.Count < 1 || op.Count > MaxOpCount {
					t.Fatalf("op %d: count %d out of bounds", i, op.Count)
				}
			case OpTick:
				if op.Cycles < 1 || op.Cycles > MaxOpCount {
					t.Fatalf("op %d: cycles %d out of bounds", i, op.Cycles)
				}
			case OpFlush, OpCrash:
			default:
				t.Fatalf("op %d: unknown kind %d", i, op.Kind)
			}
		}
	})
}
