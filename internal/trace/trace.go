// Package trace generates seeded synthetic instruction streams that stand
// in for the SPEC CPU2006 workloads of the paper's evaluation (Section 7).
// Each profile fixes an instruction mix, a data working set with a
// hot/cold split, access stride behaviour, branch predictability, and
// dependency density. Profiles are tuned so the properties the encryption
// schemes are sensitive to — page reuse (i-NVMM's inert pages) and memory
// intensity (SPE's read-path latency) — mirror the cited benchmarks:
// bzip2-like workloads hammer a small hot set, sjeng-like workloads roam a
// large footprint.
package trace

import (
	"fmt"

	"snvmm/internal/cpu"
	"snvmm/internal/prng"
)

// Profile parameterizes one synthetic workload.
type Profile struct {
	Name string

	// Instruction mix (fractions of 1; remainder is integer ALU).
	PctLoad, PctStore, PctBranch, PctFp, PctMul float64

	// Data footprint.
	WorkingSetBytes uint64  // total data footprint
	HotSetBytes     uint64  // the hot subset
	HotFraction     float64 // fraction of accesses hitting the hot set
	StrideBytes     uint64  // stride of the streaming component
	StreamFraction  float64 // fraction of cold accesses that stream

	// Control flow.
	BranchNoise float64 // fraction of branches with random outcomes
	LoopLength  int     // instructions per loop body (PC reuse)

	// Dependencies.
	DepDensity float64 // probability an instruction depends on a recent one
	DepWindow  int     // dependency distance window
}

// Validate sanity-checks the profile.
func (p Profile) Validate() error {
	mix := p.PctLoad + p.PctStore + p.PctBranch + p.PctFp + p.PctMul
	if mix > 1 {
		return fmt.Errorf("trace: %s instruction mix sums to %g > 1", p.Name, mix)
	}
	if p.WorkingSetBytes == 0 || p.HotSetBytes == 0 || p.HotSetBytes > p.WorkingSetBytes {
		return fmt.Errorf("trace: %s invalid working set", p.Name)
	}
	if p.HotFraction < 0 || p.HotFraction > 1 || p.StreamFraction < 0 || p.StreamFraction > 1 ||
		p.BranchNoise < 0 || p.BranchNoise > 1 || p.DepDensity < 0 || p.DepDensity > 1 {
		return fmt.Errorf("trace: %s fraction out of [0,1]", p.Name)
	}
	if p.LoopLength <= 0 || p.DepWindow <= 0 {
		return fmt.Errorf("trace: %s nonpositive loop/window", p.Name)
	}
	return nil
}

// Generator produces the instruction stream for a profile.
type Generator struct {
	p      Profile
	g      *prng.Gen
	n      uint64
	stream uint64 // streaming cursor
	base   uint64 // data segment base
}

// NewGenerator builds a deterministic generator.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{p: p, g: prng.NewGen(uint64(seed) ^ 0xD1CEBEEF), base: 1 << 32}, nil
}

// frac draws a uniform float in [0,1).
func (t *Generator) frac() float64 {
	return float64(t.g.Uint64()>>11) / float64(1<<53)
}

// dataAddr draws the next data address per the profile.
func (t *Generator) dataAddr() uint64 {
	if t.frac() < t.p.HotFraction {
		return t.base + uint64(t.g.Intn(int(t.p.HotSetBytes/8)))*8
	}
	if t.frac() < t.p.StreamFraction {
		t.stream += t.p.StrideBytes
		return t.base + t.p.HotSetBytes + t.stream%(t.p.WorkingSetBytes-t.p.HotSetBytes)
	}
	return t.base + t.p.HotSetBytes +
		uint64(t.g.Intn(int((t.p.WorkingSetBytes-t.p.HotSetBytes)/8)))*8
}

// Next implements cpu.TraceReader.
func (t *Generator) Next() (cpu.Inst, bool) {
	t.n++
	pc := 0x400000 + t.n%uint64(t.p.LoopLength)*4
	inst := cpu.Inst{PC: pc}
	r := t.frac()
	switch {
	case r < t.p.PctLoad:
		inst.Op = cpu.OpLoad
		inst.Addr = t.dataAddr()
	case r < t.p.PctLoad+t.p.PctStore:
		inst.Op = cpu.OpStore
		inst.Addr = t.dataAddr()
	case r < t.p.PctLoad+t.p.PctStore+t.p.PctBranch:
		inst.Op = cpu.OpBranch
		if t.frac() < t.p.BranchNoise {
			inst.Taken = t.g.Intn(2) == 1
		} else {
			// Loop-closing behaviour: mostly taken.
			inst.Taken = t.n%uint64(t.p.LoopLength) != 0
		}
	case r < t.p.PctLoad+t.p.PctStore+t.p.PctBranch+t.p.PctFp:
		inst.Op = cpu.OpFp
	case r < t.p.PctLoad+t.p.PctStore+t.p.PctBranch+t.p.PctFp+t.p.PctMul:
		inst.Op = cpu.OpMul
	default:
		inst.Op = cpu.OpInt
	}
	if t.frac() < t.p.DepDensity {
		inst.Dep1 = 1 + t.g.Intn(t.p.DepWindow)
		if t.frac() < t.p.DepDensity/2 {
			inst.Dep2 = 1 + t.g.Intn(t.p.DepWindow)
		}
	}
	return inst, true
}

// Profiles returns the benchmark set used for Fig. 7 / Fig. 8, in the
// paper's presentation order.
func Profiles() []Profile {
	return []Profile{
		{
			// bzip2: compression over a small hot dictionary — intense
			// page reuse, few distinct pages (i-NVMM's best case).
			Name:    "bzip2",
			PctLoad: 0.26, PctStore: 0.11, PctBranch: 0.15, PctFp: 0.0, PctMul: 0.02,
			WorkingSetBytes: 8 << 20, HotSetBytes: 3 << 20, HotFraction: 0.93,
			StrideBytes: 64, StreamFraction: 0.7,
			BranchNoise: 0.2, LoopLength: 800,
			DepDensity: 0.4, DepWindow: 10,
		},
		{
			// gcc: moderate footprint, branchy pointer code.
			Name:    "gcc",
			PctLoad: 0.25, PctStore: 0.13, PctBranch: 0.20, PctFp: 0.0, PctMul: 0.01,
			WorkingSetBytes: 32 << 20, HotSetBytes: 1 << 20, HotFraction: 0.96,
			StrideBytes: 64, StreamFraction: 0.3,
			BranchNoise: 0.30, LoopLength: 4000,
			DepDensity: 0.4, DepWindow: 12,
		},
		{
			// mcf: enormous sparse working set, pointer chasing — memory
			// bound.
			Name:    "mcf",
			PctLoad: 0.35, PctStore: 0.09, PctBranch: 0.19, PctFp: 0.0, PctMul: 0.0,
			WorkingSetBytes: 256 << 20, HotSetBytes: 1 << 20, HotFraction: 0.55,
			StrideBytes: 4096, StreamFraction: 0.1,
			BranchNoise: 0.35, LoopLength: 600,
			DepDensity: 0.55, DepWindow: 5,
		},
		{
			// hmmer: compute-dense inner loops over moderate data.
			Name:    "hmmer",
			PctLoad: 0.28, PctStore: 0.08, PctBranch: 0.08, PctFp: 0.0, PctMul: 0.04,
			WorkingSetBytes: 16 << 20, HotSetBytes: 24 << 10, HotFraction: 0.985,
			StrideBytes: 64, StreamFraction: 0.8,
			BranchNoise: 0.05, LoopLength: 300,
			DepDensity: 0.3, DepWindow: 16,
		},
		{
			// sjeng: game tree search touching many pages with little
			// reuse — i-NVMM's worst case, SPE's relative win.
			Name:    "sjeng",
			PctLoad: 0.22, PctStore: 0.08, PctBranch: 0.21, PctFp: 0.0, PctMul: 0.01,
			WorkingSetBytes: 180 << 20, HotSetBytes: 4 << 20, HotFraction: 0.62,
			StrideBytes: 8192, StreamFraction: 0.4,
			BranchNoise: 0.40, LoopLength: 2500,
			DepDensity: 0.45, DepWindow: 8,
		},
		{
			// libquantum: pure streaming over a large array.
			Name:    "libquantum",
			PctLoad: 0.23, PctStore: 0.10, PctBranch: 0.14, PctFp: 0.0, PctMul: 0.02,
			WorkingSetBytes: 64 << 20, HotSetBytes: 64 << 10, HotFraction: 0.10,
			StrideBytes: 64, StreamFraction: 0.95,
			BranchNoise: 0.02, LoopLength: 120,
			DepDensity: 0.3, DepWindow: 12,
		},
		{
			// h264ref: video encoder — hot reference frames, streaming
			// macroblocks.
			Name:    "h264ref",
			PctLoad: 0.30, PctStore: 0.12, PctBranch: 0.10, PctFp: 0.02, PctMul: 0.05,
			WorkingSetBytes: 48 << 20, HotSetBytes: 256 << 10, HotFraction: 0.95,
			StrideBytes: 64, StreamFraction: 0.8,
			BranchNoise: 0.12, LoopLength: 900,
			DepDensity: 0.35, DepWindow: 12,
		},
		{
			// omnetpp: discrete event simulation — scattered heap.
			Name:    "omnetpp",
			PctLoad: 0.29, PctStore: 0.15, PctBranch: 0.18, PctFp: 0.01, PctMul: 0.0,
			WorkingSetBytes: 128 << 20, HotSetBytes: 2 << 20, HotFraction: 0.72,
			StrideBytes: 2048, StreamFraction: 0.2,
			BranchNoise: 0.30, LoopLength: 3000,
			DepDensity: 0.5, DepWindow: 6,
		},
		{
			// astar: path-finding over a grid — moderate reuse.
			Name:    "astar",
			PctLoad: 0.27, PctStore: 0.09, PctBranch: 0.17, PctFp: 0.01, PctMul: 0.0,
			WorkingSetBytes: 64 << 20, HotSetBytes: 512 << 10, HotFraction: 0.94,
			StrideBytes: 256, StreamFraction: 0.3,
			BranchNoise: 0.25, LoopLength: 700,
			DepDensity: 0.5, DepWindow: 8,
		},
		{
			// milc: FP lattice QCD — streaming FP over a big lattice.
			Name:    "milc",
			PctLoad: 0.31, PctStore: 0.14, PctBranch: 0.05, PctFp: 0.25, PctMul: 0.02,
			WorkingSetBytes: 96 << 20, HotSetBytes: 512 << 10, HotFraction: 0.15,
			StrideBytes: 64, StreamFraction: 0.9,
			BranchNoise: 0.03, LoopLength: 250,
			DepDensity: 0.4, DepWindow: 16,
		},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}
