package trace

import (
	"testing"

	"snvmm/internal/cpu"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) < 10 {
		t.Fatalf("only %d profiles", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("bzip2")
	if err != nil || p.Name != "bzip2" {
		t.Errorf("ProfileByName failed: %v", err)
	}
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("expected unknown-profile error")
	}
}

func TestValidateRejects(t *testing.T) {
	p, _ := ProfileByName("gcc")
	p.PctLoad = 0.9
	p.PctStore = 0.5
	if err := p.Validate(); err == nil {
		t.Error("mix > 1 accepted")
	}
	p, _ = ProfileByName("gcc")
	p.HotSetBytes = p.WorkingSetBytes * 2
	if err := p.Validate(); err == nil {
		t.Error("hot > total accepted")
	}
	p, _ = ProfileByName("gcc")
	p.LoopLength = 0
	if err := p.Validate(); err == nil {
		t.Error("zero loop accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p, _ := ProfileByName("bzip2")
	g1, err := NewGenerator(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(p, 42)
	for i := 0; i < 10000; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a != b {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
	g3, _ := NewGenerator(p, 43)
	diff := false
	for i := 0; i < 1000; i++ {
		a, _ := g1.Next()
		b, _ := g3.Next()
		if a != b {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestInstructionMixMatchesProfile(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g, _ := NewGenerator(p, 7)
	const n = 200000
	counts := map[cpu.OpType]int{}
	for i := 0; i < n; i++ {
		inst, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		counts[inst.Op]++
	}
	check := func(op cpu.OpType, want float64) {
		got := float64(counts[op]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v fraction %g, want ~%g", op, got, want)
		}
	}
	check(cpu.OpLoad, p.PctLoad)
	check(cpu.OpStore, p.PctStore)
	check(cpu.OpBranch, p.PctBranch)
}

func TestAddressesWithinWorkingSet(t *testing.T) {
	p, _ := ProfileByName("sjeng")
	g, _ := NewGenerator(p, 3)
	hot, cold := 0, 0
	for i := 0; i < 100000; i++ {
		inst, _ := g.Next()
		if inst.Op != cpu.OpLoad && inst.Op != cpu.OpStore {
			continue
		}
		off := inst.Addr - g.base
		if off >= p.WorkingSetBytes {
			t.Fatalf("address %#x outside working set", inst.Addr)
		}
		if off < p.HotSetBytes {
			hot++
		} else {
			cold++
		}
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < p.HotFraction-0.1 || frac > p.HotFraction+0.1 {
		t.Errorf("hot fraction %g, want ~%g", frac, p.HotFraction)
	}
}

func TestFootprintDiffersBetweenProfiles(t *testing.T) {
	// bzip2 must touch far fewer distinct pages than sjeng — the property
	// that separates i-NVMM from SPE in Fig. 8.
	pages := func(name string) int {
		p, _ := ProfileByName(name)
		g, _ := NewGenerator(p, 11)
		seen := map[uint64]bool{}
		for i := 0; i < 300000; i++ {
			inst, _ := g.Next()
			if inst.Op == cpu.OpLoad || inst.Op == cpu.OpStore {
				seen[inst.Addr>>12] = true
			}
		}
		return len(seen)
	}
	b, s := pages("bzip2"), pages("sjeng")
	if b*4 > s {
		t.Errorf("bzip2 pages %d not much smaller than sjeng %d", b, s)
	}
}

func TestBranchPredictabilityDiffers(t *testing.T) {
	// hmmer branches should be far more predictable than sjeng's.
	mispredictRate := func(name string) float64 {
		p, _ := ProfileByName(name)
		g, _ := NewGenerator(p, 5)
		type fakeMem struct{ perfect }
		c, err := cpu.New(cpu.DefaultConfig(), &perfect{})
		if err != nil {
			t.Fatal(err)
		}
		st := c.Run(g, 200000)
		return float64(st.Mispredicts) / float64(st.Branches)
	}
	if h, s := mispredictRate("hmmer"), mispredictRate("sjeng"); h >= s {
		t.Errorf("hmmer mispredict %g >= sjeng %g", h, s)
	}
}

// perfect is a fixed-latency memory for the predictability test.
type perfect struct{}

func (perfect) LoadLatency(addr, now uint64) uint64 { return 4 }
func (perfect) StoreAccess(addr, now uint64) uint64 { return 4 }
func (perfect) FetchLatency(pc, now uint64) uint64  { return 1 }
func (perfect) Tick(now uint64)                     {}
