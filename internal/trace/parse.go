package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
)

// This file adds a parsed workload format alongside the synthetic
// generators: a line-oriented script of memory operations that red-team
// scenarios (and tests) use to drive an engine through an exact,
// adversarially chosen access schedule. The grammar is deliberately tiny:
//
//	# comment                 (also: blank lines)
//	w <addr> [count]          write `count` consecutive blocks at addr
//	r <addr> [count]          read  `count` consecutive blocks at addr
//	t <cycles>                advance simulated time
//	f                         flush (EncryptPending / epoch boundary)
//	x                         crash: cut power without a clean PowerOff
//
// Addresses accept decimal, 0x-hex and 0o-octal (strconv base 0). Counts
// are bounded by MaxOpCount so a hostile script cannot ask a driver to
// materialize billions of blocks.

// OpKind enumerates workload script operations.
type OpKind int

const (
	// OpWrite writes Count consecutive blocks starting at Addr.
	OpWrite OpKind = iota
	// OpRead reads Count consecutive blocks starting at Addr.
	OpRead
	// OpTick advances simulated time by Cycles.
	OpTick
	// OpFlush requests an encrypt-pending / epoch flush.
	OpFlush
	// OpCrash cuts power without a clean PowerOff.
	OpCrash
)

// Op is one parsed workload operation.
type Op struct {
	Kind   OpKind
	Addr   uint64
	Count  uint64 // blocks touched by OpWrite/OpRead; always >= 1
	Cycles uint64 // OpTick advance
}

// MaxOpCount bounds the per-op block count (and the tick advance): scripts
// are attacker-controlled inputs, so a single `w 0 9999999999` must be a
// parse error, not an allocation.
const MaxOpCount = 1 << 20

// maxScriptOps bounds the total operation count of one script.
const maxScriptOps = 1 << 20

// ParseWorkload parses a workload script. It returns an error — never
// panics — on malformed records, truncated/oversized input, unknown verbs,
// or counts beyond MaxOpCount.
func ParseWorkload(src []byte) ([]Op, error) {
	sc := bufio.NewScanner(bytes.NewReader(src))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024)
	var ops []Op
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := bytes.Fields(sc.Bytes())
		if len(fields) == 0 || fields[0][0] == '#' {
			continue
		}
		if len(ops) >= maxScriptOps {
			return nil, fmt.Errorf("trace: line %d: script exceeds %d operations", lineNo, maxScriptOps)
		}
		verb := string(fields[0])
		var op Op
		switch verb {
		case "w", "r":
			op.Kind = OpWrite
			if verb == "r" {
				op.Kind = OpRead
			}
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("trace: line %d: %q needs an address and optional count", lineNo, verb)
			}
			addr, err := parseU64(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad address %q: %w", lineNo, fields[1], err)
			}
			op.Addr = addr
			op.Count = 1
			if len(fields) == 3 {
				n, err := parseU64(fields[2])
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad count %q: %w", lineNo, fields[2], err)
				}
				if n == 0 || n > MaxOpCount {
					return nil, fmt.Errorf("trace: line %d: count %d outside [1,%d]", lineNo, n, MaxOpCount)
				}
				op.Count = n
			}
		case "t":
			op.Kind = OpTick
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: t needs a cycle count", lineNo)
			}
			n, err := parseU64(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad cycles %q: %w", lineNo, fields[1], err)
			}
			if n == 0 || n > MaxOpCount {
				return nil, fmt.Errorf("trace: line %d: cycles %d outside [1,%d]", lineNo, n, MaxOpCount)
			}
			op.Cycles = n
		case "f":
			op.Kind = OpFlush
			if len(fields) != 1 {
				return nil, fmt.Errorf("trace: line %d: f takes no operands", lineNo)
			}
		case "x":
			op.Kind = OpCrash
			if len(fields) != 1 {
				return nil, fmt.Errorf("trace: line %d: x takes no operands", lineNo)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown verb %q", lineNo, verb)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineNo+1, err)
	}
	return ops, nil
}

// parseU64 parses an unsigned integer in decimal/hex/octal. A leading '+'
// or '-' is rejected outright (ParseUint would accept neither, but the
// explicit check gives negative numbers a clear error).
func parseU64(b []byte) (uint64, error) {
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		return 0, fmt.Errorf("signed value not allowed")
	}
	return strconv.ParseUint(string(b), 0, 64)
}
