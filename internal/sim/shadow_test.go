package sim

import (
	"context"
	"testing"

	"snvmm/internal/secure"
	"snvmm/internal/trace"
)

// TestRunShadowed runs a small timing simulation with the functional
// shadow attached: the timing result must match a plain Run bit-for-bit
// (the sink must not perturb the model), and every shadowed read must
// verify against the write model.
func TestRunShadowed(t *testing.T) {
	const insts, seed = 60_000, 3
	prof := trace.Profiles()[0]
	base, err := Run(prof, secure.NewPlain(), insts, seed)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShadow(context.Background(), ShadowConfig{
		Workers: 2, MaxBlocks: 64, MaxOps: 512, FlushEvery: 16,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	res, err := RunShadowed(prof, secure.NewPlain(), insts, seed, sh)
	if err != nil {
		t.Fatal(err)
	}
	sh.Drain()

	if res.Stats != base.Stats || res.IPC != base.IPC {
		t.Errorf("shadow perturbed the timing model: %+v vs %+v", res.Stats, base.Stats)
	}
	ops, verified, _ := sh.Stats()
	if ops == 0 {
		t.Fatal("shadow saw no operations")
	}
	if verified == 0 {
		t.Fatal("shadow verified no reads")
	}
	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	if sh.SPECU().PlaintextBlocks() != 0 {
		t.Error("shadow SPECU (parallel mode) left plaintext resident")
	}
}

// TestSweepParallelMatchesSweep checks that fanning the sweep out over
// goroutines changes nothing about the results: each (workload, scheme)
// simulation is deterministic given (profile, insts, seed), so the rows
// must be identical to the sequential sweep's.
func TestSweepParallelMatchesSweep(t *testing.T) {
	const insts, seed = 30_000, 1
	profiles := trace.Profiles()[:2]
	schemes := Schemes()[:2]
	want, err := Sweep(profiles, schemes, insts, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepParallel(context.Background(), profiles, schemes, insts, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Workload != want[i].Workload || got[i].BaseIPC != want[i].BaseIPC {
			t.Errorf("row %d: %+v vs %+v", i, got[i], want[i])
		}
		for k, v := range want[i].OverheadPct {
			if got[i].OverheadPct[k] != v {
				t.Errorf("row %d overhead[%s]: %g vs %g", i, k, got[i].OverheadPct[k], v)
			}
		}
		for k, v := range want[i].EncryptedPct {
			if got[i].EncryptedPct[k] != v {
				t.Errorf("row %d encrypted[%s]: %g vs %g", i, k, got[i].EncryptedPct[k], v)
			}
		}
	}
}

// TestSweepParallelCancelled verifies a pre-cancelled context fails fast.
func TestSweepParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepParallel(ctx, trace.Profiles()[:1], nil, 10_000, 1, 2); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}
