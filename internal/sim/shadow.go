// Functional shadowing: the cycle-level simulator is timing-only (the
// trace carries addresses, not data), so on its own it can never tell
// whether the SPECU would actually return the right bytes under the same
// miss stream. Shadow closes that gap — it mirrors the NVMM's block
// traffic onto a real sharded, concurrently-served core.SPECU, writing a
// deterministic payload per (address, version) and verifying that every
// read observes the bytes last written.
package sim

import (
	"context"
	"fmt"
	"sync"

	"snvmm/internal/core"
	"snvmm/internal/mem"
	"snvmm/internal/prng"
	"snvmm/internal/trace"
)

// ShadowConfig bounds the functional shadow's work so it can ride along a
// timing run without dominating it (every shadowed op is a real 4-crossbar
// pulse sequence).
type ShadowConfig struct {
	// Workers and Depth configure the SPECU worker pool (<= 0: defaults).
	Workers, Depth int
	// MaxBlocks caps how many distinct block addresses are tracked; ops on
	// further addresses are ignored once the cap is hit (0 = 256).
	MaxBlocks int
	// MaxOps caps the total number of shadowed operations (0 = 4096).
	MaxOps int
	// FlushEvery is the batch size handed to the SPECU (0 = 64).
	FlushEvery int
}

// Shadow implements mem.AccessSink over a served core.SPECU. It buffers
// the access stream and flushes it in two phases per window — all writes
// as one WriteBatch, then all reads as one ReadBatch — so that within a
// window every read observes the window's final write. A write arriving
// for an address with a buffered read forces a flush first, preserving
// program order per address.
type Shadow struct {
	cfg   ShadowConfig
	specu *core.SPECU
	ctx   context.Context

	mu       sync.Mutex // guards everything below (sink calls are serial; stats readers are not)
	model    map[uint64][]byte
	version  map[uint64]uint64
	writes   []core.WriteOp
	writeSet map[uint64]int // addr -> index into writes (last write wins)
	reads    []uint64
	readSet  map[uint64]bool

	// Stats.
	Ops      uint64 // operations shadowed (after caps)
	Verified uint64 // reads whose payload matched the model
	Skipped  uint64 // operations dropped by MaxBlocks/MaxOps caps
	failures []string
}

// NewShadow fabricates a default-parameter SPE engine, powers a SPECU on
// with a seed-derived key and starts its worker pool.
func NewShadow(ctx context.Context, cfg ShadowConfig, seed int64) (*Shadow, error) {
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 256
	}
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = 4096
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 64
	}
	eng, err := core.NewEngine(core.DefaultParams())
	if err != nil {
		return nil, err
	}
	s := core.NewSPECU(eng, core.Parallel)
	g := prng.NewGen(uint64(seed)*0x9E3779B9 + 0x5151)
	if err := s.PowerOn(prng.NewKey(g.Uint64(), g.Uint64())); err != nil {
		return nil, err
	}
	if err := s.Serve(ctx, cfg.Workers, cfg.Depth); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Shadow{
		cfg:      cfg,
		specu:    s,
		ctx:      ctx,
		model:    make(map[uint64][]byte),
		version:  make(map[uint64]uint64),
		writeSet: make(map[uint64]int),
		readSet:  make(map[uint64]bool),
	}, nil
}

// NewShadowWith wraps an externally built, already powered-and-served SPECU
// instead of fabricating one. The red-team harness uses this to shadow a
// SPECU it also crash-injects: the shadow mirrors traffic, the harness owns
// the power lifecycle.
func NewShadowWith(ctx context.Context, cfg ShadowConfig, specu *core.SPECU) (*Shadow, error) {
	if specu == nil {
		return nil, fmt.Errorf("sim: NewShadowWith needs a SPECU")
	}
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 256
	}
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = 4096
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 64
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Shadow{
		cfg:      cfg,
		specu:    specu,
		ctx:      ctx,
		model:    make(map[uint64][]byte),
		version:  make(map[uint64]uint64),
		writeSet: make(map[uint64]int),
		readSet:  make(map[uint64]bool),
	}, nil
}

// SPECU exposes the shadowed control unit (tests and reporting).
func (s *Shadow) SPECU() *core.SPECU { return s.specu }

// payload derives the deterministic 64-byte pattern for (addr, version).
func payload(addr, version uint64) []byte {
	g := prng.NewGen(addr*0x9E3779B97F4A7C15 ^ version)
	out := make([]byte, core.BlockSize)
	for i := 0; i < len(out); i += 8 {
		v := g.Uint64()
		for j := 0; j < 8; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

func (s *Shadow) align(addr uint64) uint64 { return addr &^ (core.BlockSize - 1) }

// admits reports whether addr may be tracked under the block cap.
func (s *Shadow) admits(addr uint64) bool {
	if _, ok := s.model[addr]; ok {
		return true
	}
	return len(s.model) < s.cfg.MaxBlocks
}

// OnWrite mirrors an NVMM block write (mem.AccessSink).
func (s *Shadow) OnWrite(addr, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr = s.align(addr)
	if s.Ops+uint64(len(s.writes)+len(s.reads)) >= uint64(s.cfg.MaxOps) || !s.admits(addr) {
		s.Skipped++
		return
	}
	if s.readSet[addr] {
		// A buffered read must observe the pre-write value: flush first.
		s.flushLocked()
	}
	s.enqueueWrite(addr)
	s.maybeFlushLocked()
}

// OnRead mirrors an NVMM block read (mem.AccessSink).
func (s *Shadow) OnRead(addr, now uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr = s.align(addr)
	if s.Ops+uint64(len(s.writes)+len(s.reads)) >= uint64(s.cfg.MaxOps) || !s.admits(addr) {
		s.Skipped++
		return
	}
	if _, seen := s.model[addr]; !seen {
		// Cold read: the NVMM returns whatever the cells hold; seed the
		// address with a deterministic cold pattern so the read verifies.
		s.enqueueWrite(addr)
	}
	if !s.readSet[addr] {
		s.reads = append(s.reads, addr)
		s.readSet[addr] = true
	}
	s.maybeFlushLocked()
}

// enqueueWrite records a write of the next version's payload. mu held.
func (s *Shadow) enqueueWrite(addr uint64) {
	s.version[addr]++
	data := payload(addr, s.version[addr])
	s.model[addr] = data
	if i, ok := s.writeSet[addr]; ok {
		s.writes[i].Data = data
		return
	}
	s.writeSet[addr] = len(s.writes)
	s.writes = append(s.writes, core.WriteOp{Addr: addr, Data: data})
}

func (s *Shadow) maybeFlushLocked() {
	if len(s.writes)+len(s.reads) >= s.cfg.FlushEvery {
		s.flushLocked()
	}
}

// flushLocked pushes the buffered window through the SPECU: writes first
// (WriteBatch), then reads (ReadBatch), verifying each read against the
// model. mu held.
func (s *Shadow) flushLocked() {
	if len(s.writes) > 0 {
		for i, err := range s.specu.WriteBatch(s.ctx, s.writes) {
			s.Ops++
			if err != nil {
				s.fail(fmt.Sprintf("write %#x: %v", s.writes[i].Addr, err))
			}
		}
	}
	if len(s.reads) > 0 {
		for _, r := range s.specu.ReadBatch(s.ctx, s.reads) {
			s.Ops++
			switch {
			case r.Err != nil:
				s.fail(fmt.Sprintf("read %#x: %v", r.Addr, r.Err))
			case string(r.Data) != string(s.model[r.Addr]):
				s.fail(fmt.Sprintf("read %#x: payload mismatch (version %d)", r.Addr, s.version[r.Addr]))
			default:
				s.Verified++
			}
		}
	}
	s.writes = s.writes[:0]
	s.reads = s.reads[:0]
	clear(s.writeSet)
	clear(s.readSet)
}

func (s *Shadow) fail(msg string) {
	if len(s.failures) < 16 {
		s.failures = append(s.failures, msg)
	}
}

// Drain flushes any buffered window.
func (s *Shadow) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// Close drains the window and stops the SPECU's worker pool.
func (s *Shadow) Close() {
	s.Drain()
	s.specu.Close()
}

// Err returns nil if every shadowed read verified, or an error summarizing
// the first mismatches.
func (s *Shadow) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.failures) == 0 {
		return nil
	}
	return fmt.Errorf("sim: shadow verification failed (%d recorded): %v", len(s.failures), s.failures)
}

// Stats snapshots the shadow's counters.
func (s *Shadow) Stats() (ops, verified, skipped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Ops, s.Verified, s.Skipped
}

// RunShadowed is Run with a functional shadow attached to the NVMM: the
// timing result is identical to Run's, and every shadowed block access is
// additionally executed on a real concurrent SPECU and verified.
func RunShadowed(profile trace.Profile, engine mem.EncryptionEngine, maxInsts int64, seed int64, sh *Shadow) (Result, error) {
	return run(profile, engine, maxInsts, seed, sh)
}
