package sim

import (
	"snvmm/internal/cpu"
	"snvmm/internal/mem"
	"snvmm/internal/nvcache"
	"snvmm/internal/trace"
)

// This file integrates the future-work non-volatile SPE cache (package
// nvcache) into the full-system model: the shared L2 becomes an SPE-
// protected NV array with a decrypted-line buffer, and main memory runs
// SPE-parallel as usual. RunNVCache measures the IPC cost of the NV L2's
// decrypt pulses as a function of the buffer size.

// NVCacheResult reports one future-work simulation.
type NVCacheResult struct {
	Workload   string
	DLBLines   int
	IPC        float64
	AvgL2Hit   float64 // observed mean L2 hit latency in cycles
	ArrayHits  uint64
	BufferHits uint64
	Exposure   int // plaintext lines at end of run
}

// nvMem is the cpu.MemSystem built around the NV L2.
type nvMem struct {
	l1i, l1d *mem.Cache
	l2       *nvcache.Cache
	nvmm     *mem.NVMM
}

func (m *nvMem) LoadLatency(addr, now uint64) uint64 {
	r1 := m.l1d.Access(addr, false)
	lat := uint64(m.l1d.Latency())
	if r1.Hit {
		return lat
	}
	if r1.Writeback {
		m.l2.Access(r1.WBAddr, true)
	}
	r2 := m.l2.Access(addr, false)
	lat += r2.Latency
	if r2.Hit {
		return lat
	}
	if r2.Writeback {
		m.nvmm.Write(r2.WBAddr, now+lat)
	}
	done := m.nvmm.Read(addr, now+lat)
	return done - now
}

func (m *nvMem) StoreAccess(addr, now uint64) uint64 {
	r1 := m.l1d.Access(addr, true)
	lat := uint64(m.l1d.Latency())
	if r1.Hit {
		return lat
	}
	if r1.Writeback {
		m.l2.Access(r1.WBAddr, true)
	}
	r2 := m.l2.Access(addr, false)
	lat += r2.Latency
	if r2.Hit {
		return lat
	}
	if r2.Writeback {
		m.nvmm.Write(r2.WBAddr, now+lat)
	}
	done := m.nvmm.Read(addr, now+lat)
	return done - now
}

func (m *nvMem) FetchLatency(pc, now uint64) uint64 {
	r1 := m.l1i.Access(pc, false)
	lat := uint64(m.l1i.Latency())
	if r1.Hit {
		return lat
	}
	r2 := m.l2.Access(pc, false)
	lat += r2.Latency
	if r2.Hit {
		return lat
	}
	done := m.nvmm.Read(pc, now+lat)
	return done - now
}

func (m *nvMem) Tick(now uint64) { m.nvmm.Tick(now) }

// RunNVCache simulates a workload on the NV-L2 platform with the given
// decrypted-line-buffer capacity.
func RunNVCache(profile trace.Profile, dlbLines int, maxInsts int64, seed int64) (NVCacheResult, error) {
	if maxInsts <= 0 {
		maxInsts = 500_000
	}
	gen, err := trace.NewGenerator(profile, seed)
	if err != nil {
		return NVCacheResult{}, err
	}
	l1i, err := mem.NewCache(mem.CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 4})
	if err != nil {
		return NVCacheResult{}, err
	}
	l1d, err := mem.NewCache(mem.CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 4})
	if err != nil {
		return NVCacheResult{}, err
	}
	l2, err := nvcache.New(nvcache.Config{
		Cache:         mem.CacheConfig{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, LatencyCycle: 16},
		DecryptCycles: 16,
		DLBLines:      dlbLines,
	})
	if err != nil {
		return NVCacheResult{}, err
	}
	nvmm, err := mem.NewNVMM(mem.DefaultNVMMConfig(), nil)
	if err != nil {
		return NVCacheResult{}, err
	}
	m := &nvMem{l1i: l1i, l1d: l1d, l2: l2, nvmm: nvmm}
	c, err := cpu.New(cpu.DefaultConfig(), m)
	if err != nil {
		return NVCacheResult{}, err
	}
	st := c.Run(gen, maxInsts)
	return NVCacheResult{
		Workload:   profile.Name,
		DLBLines:   dlbLines,
		IPC:        st.IPC(),
		AvgL2Hit:   l2.AvgHitLatency(),
		ArrayHits:  l2.ArrayHits,
		BufferHits: l2.BufferHits,
		Exposure:   l2.PlaintextLines(),
	}, nil
}
