// Package sim ties the core model, the memory hierarchy and the encryption
// engines into the full-system experiments of Section 7: per-workload
// performance overhead (Fig. 7), time-averaged encrypted fraction (Fig. 8)
// and the scheme comparison summary (Table 3).
package sim

import (
	"fmt"

	"snvmm/internal/cpu"
	"snvmm/internal/mem"
	"snvmm/internal/secure"
	"snvmm/internal/trace"
)

// Result summarizes one workload x scheme simulation.
type Result struct {
	Workload string
	Scheme   string

	Stats          cpu.Stats
	IPC            float64
	L2MissRate     float64
	MemReads       uint64
	MemWrites      uint64
	AvgEncrypted   float64 // time-averaged encrypted fraction
	FinalEncrypted float64
}

// samplingEngine wraps an engine and records its encrypted fraction at
// every background tick. The average skips the cold-start fifth of the run
// (the paper's 500M-instruction runs measure steady state; at our scaled
// instruction counts the warmup would otherwise dominate).
type samplingEngine struct {
	mem.EncryptionEngine
	samples []float64
}

func (s *samplingEngine) Tick(now uint64) {
	s.EncryptionEngine.Tick(now)
	s.samples = append(s.samples, s.EncryptionEngine.EncryptedFraction())
}

func (s *samplingEngine) average() float64 {
	if len(s.samples) == 0 {
		return s.EncryptionEngine.EncryptedFraction()
	}
	tail := s.samples[len(s.samples)/5:]
	sum := 0.0
	for _, v := range tail {
		sum += v
	}
	return sum / float64(len(tail))
}

// Run simulates one workload under one engine for maxInsts instructions.
func Run(profile trace.Profile, engine mem.EncryptionEngine, maxInsts int64, seed int64) (Result, error) {
	return run(profile, engine, maxInsts, seed, nil)
}

// run is Run with an optional access sink attached to the NVMM (the
// functional shadow rides the timing simulation through it).
func run(profile trace.Profile, engine mem.EncryptionEngine, maxInsts int64, seed int64, sink mem.AccessSink) (Result, error) {
	if maxInsts <= 0 {
		maxInsts = 1_000_000
	}
	gen, err := trace.NewGenerator(profile, seed)
	if err != nil {
		return Result{}, err
	}
	sampler := &samplingEngine{EncryptionEngine: engine}
	h, err := mem.DefaultHierarchy(sampler)
	if err != nil {
		return Result{}, err
	}
	if sink != nil {
		h.Mem.SetSink(sink)
	}
	hm := &hierMem{h: h}
	coreCfg := cpu.DefaultConfig()
	c, err := cpu.New(coreCfg, hm)
	if err != nil {
		return Result{}, err
	}
	st := c.Run(gen, maxInsts)
	return Result{
		Workload:       profile.Name,
		Scheme:         engine.Name(),
		Stats:          st,
		IPC:            st.IPC(),
		L2MissRate:     h.L2.MissRate(),
		MemReads:       h.Mem.Reads,
		MemWrites:      h.Mem.Writes,
		AvgEncrypted:   sampler.average(),
		FinalEncrypted: engine.EncryptedFraction(),
	}, nil
}

// hierMem adapts mem.Hierarchy to cpu.MemSystem.
type hierMem struct{ h *mem.Hierarchy }

func (m *hierMem) LoadLatency(addr, now uint64) uint64 { return m.h.LoadLatency(addr, now) }
func (m *hierMem) StoreAccess(addr, now uint64) uint64 { return m.h.StoreAccess(addr, now) }
func (m *hierMem) FetchLatency(pc, now uint64) uint64  { return m.h.FetchLatency(pc, now) }
func (m *hierMem) Tick(now uint64)                     { m.h.Mem.Tick(now) }

// SchemeFactory builds a fresh engine instance per run (engines carry
// state and must not be shared between workloads).
type SchemeFactory struct {
	Name string
	New  func() mem.EncryptionEngine
}

// Schemes returns factories for the Fig. 7/8 line-up (excluding the Plain
// baseline, which Sweep always runs).
func Schemes() []SchemeFactory {
	return []SchemeFactory{
		{Name: "AES", New: func() mem.EncryptionEngine { return secure.NewAES() }},
		{Name: "i-NVMM", New: func() mem.EncryptionEngine { return secure.NewINVMM(300_000) }},
		{Name: "SPE-serial", New: func() mem.EncryptionEngine { return secure.NewSPESerial(10_000) }},
		{Name: "SPE-parallel", New: func() mem.EncryptionEngine { return secure.NewSPEParallel() }},
		{Name: "Stream", New: func() mem.EncryptionEngine { return secure.NewStream() }},
	}
}

// Row is one workload's outcomes across schemes.
type Row struct {
	Workload     string
	BaseIPC      float64
	OverheadPct  map[string]float64 // scheme -> % slowdown vs Plain
	EncryptedPct map[string]float64 // scheme -> time-avg % encrypted
}

// Sweep runs every workload under Plain plus all scheme factories,
// returning one Row per workload — the raw material of Fig. 7 and Fig. 8.
func Sweep(profiles []trace.Profile, schemes []SchemeFactory, maxInsts int64, seed int64) ([]Row, error) {
	rows := make([]Row, 0, len(profiles))
	for _, p := range profiles {
		base, err := Run(p, secure.NewPlain(), maxInsts, seed)
		if err != nil {
			return nil, fmt.Errorf("sim: %s/plain: %w", p.Name, err)
		}
		row := Row{
			Workload:     p.Name,
			BaseIPC:      base.IPC,
			OverheadPct:  make(map[string]float64, len(schemes)),
			EncryptedPct: make(map[string]float64, len(schemes)),
		}
		for _, s := range schemes {
			r, err := Run(p, s.New(), maxInsts, seed)
			if err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", p.Name, s.Name, err)
			}
			row.OverheadPct[s.Name] = (base.IPC - r.IPC) / base.IPC * 100
			row.EncryptedPct[s.Name] = r.AvgEncrypted * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Averages folds sweep rows into per-scheme means — the Table 3 rows.
func Averages(rows []Row, schemes []SchemeFactory) (overhead, encrypted map[string]float64) {
	overhead = make(map[string]float64)
	encrypted = make(map[string]float64)
	if len(rows) == 0 {
		return
	}
	for _, row := range rows {
		for _, s := range schemes {
			overhead[s.Name] += row.OverheadPct[s.Name]
			encrypted[s.Name] += row.EncryptedPct[s.Name]
		}
	}
	for _, s := range schemes {
		overhead[s.Name] /= float64(len(rows))
		encrypted[s.Name] /= float64(len(rows))
	}
	return
}
