package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"snvmm/internal/mem"
	"snvmm/internal/secure"
	"snvmm/internal/trace"
)

// SweepParallel produces exactly Sweep's rows but fans the independent
// (workload x scheme) simulations — including each workload's Plain
// baseline — across at most `workers` goroutines. Each simulation owns a
// fresh hierarchy and engine, so the runs share nothing; results are
// assembled in deterministic profile/scheme order regardless of completion
// order. Cancelling ctx abandons simulations not yet started.
func SweepParallel(ctx context.Context, profiles []trace.Profile, schemes []SchemeFactory, maxInsts int64, seed int64, workers int) ([]Row, error) {
	if workers <= 1 {
		return Sweep(profiles, schemes, maxInsts, seed)
	}
	// Simulations are pure CPU: clamp to the schedulable parallelism so a
	// generous -workers flag cannot oversubscribe the host (the same
	// regression core.NewPool guards against).
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	type job struct {
		prof   trace.Profile
		scheme string // "" means the Plain baseline
		newEng SchemeFactory
	}
	type outcome struct {
		res Result
		err error
	}
	jobs := make([]job, 0, len(profiles)*(len(schemes)+1))
	for _, p := range profiles {
		jobs = append(jobs, job{prof: p})
		for _, s := range schemes {
			jobs = append(jobs, job{prof: p, scheme: s.Name, newEng: s})
		}
	}

	outcomes := make([]outcome, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, j := range jobs {
		if err := ctx.Err(); err != nil {
			outcomes[i].err = err
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			defer func() { <-sem }()
			var eng mem.EncryptionEngine = secure.NewPlain()
			if j.scheme != "" {
				eng = j.newEng.New()
			}
			r, err := Run(j.prof, eng, maxInsts, seed)
			outcomes[i] = outcome{res: r, err: err}
		}(i, j)
	}
	wg.Wait()

	rows := make([]Row, 0, len(profiles))
	k := 0
	for _, p := range profiles {
		base := outcomes[k]
		k++
		if base.err != nil {
			return nil, fmt.Errorf("sim: %s/plain: %w", p.Name, base.err)
		}
		row := Row{
			Workload:     p.Name,
			BaseIPC:      base.res.IPC,
			OverheadPct:  make(map[string]float64, len(schemes)),
			EncryptedPct: make(map[string]float64, len(schemes)),
		}
		for _, s := range schemes {
			o := outcomes[k]
			k++
			if o.err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", p.Name, s.Name, o.err)
			}
			row.OverheadPct[s.Name] = (base.res.IPC - o.res.IPC) / base.res.IPC * 100
			row.EncryptedPct[s.Name] = o.res.AvgEncrypted * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}
