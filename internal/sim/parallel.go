package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"snvmm/internal/mem"
	"snvmm/internal/sched"
	"snvmm/internal/secure"
	"snvmm/internal/telemetry"
	"snvmm/internal/trace"
)

// SweepOptions carries the observability hooks of a parallel sweep; the
// zero value disables both.
type SweepOptions struct {
	// Telemetry, if non-nil, receives a sim.sweep.jobs_done counter, a
	// sim.sweep.jobs_total gauge, one "job_done" event per completed
	// simulation (A0 = completion ordinal, A1 = 1 on error), and a "sweep"
	// span over the whole run.
	Telemetry *telemetry.Registry
	// OnProgress, if non-nil, is called after every completed simulation
	// with the running completion count, the total, and the finished job's
	// identity (scheme "" is the Plain baseline). Called from worker
	// goroutines; it must be safe for concurrent use.
	OnProgress func(done, total int, workload, scheme string)
}

var (
	metaSweep   = &telemetry.EventMeta{Subsystem: "sim", Name: "sweep"}
	metaJobDone = &telemetry.EventMeta{Subsystem: "sim", Name: "job_done"}
)

// SweepParallel produces exactly Sweep's rows but fans the independent
// (workload x scheme) simulations — including each workload's Plain
// baseline — across at most `workers` goroutines (<= 0 selects the host's
// schedulable parallelism; see sched.Workers). Each simulation owns a
// fresh hierarchy and engine, so the runs share nothing; results are
// assembled in deterministic profile/scheme order regardless of completion
// order. Cancelling ctx abandons simulations not yet started.
func SweepParallel(ctx context.Context, profiles []trace.Profile, schemes []SchemeFactory, maxInsts int64, seed int64, workers int) ([]Row, error) {
	return SweepParallelOpts(ctx, profiles, schemes, maxInsts, seed, workers, SweepOptions{})
}

// SweepParallelOpts is SweepParallel with progress reporting. Rows are
// identical to SweepParallel's for the same inputs; the hooks are purely
// observational.
func SweepParallelOpts(ctx context.Context, profiles []trace.Profile, schemes []SchemeFactory, maxInsts int64, seed int64, workers int, opts SweepOptions) ([]Row, error) {
	if workers == 1 && opts.Telemetry == nil && opts.OnProgress == nil {
		return Sweep(profiles, schemes, maxInsts, seed)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	type job struct {
		prof   trace.Profile
		scheme string // "" means the Plain baseline
		newEng SchemeFactory
	}
	type outcome struct {
		res Result
		err error
	}
	jobs := make([]job, 0, len(profiles)*(len(schemes)+1))
	for _, p := range profiles {
		jobs = append(jobs, job{prof: p})
		for _, s := range schemes {
			jobs = append(jobs, job{prof: p, scheme: s.Name, newEng: s})
		}
	}

	var (
		sweepSpan telemetry.Span
		scope     *telemetry.Scope
		jobsDone  *telemetry.Counter
	)
	if reg := opts.Telemetry; reg != nil {
		reg.Gauge("sim.sweep.jobs_total").Set(int64(len(jobs)))
		jobsDone = reg.Counter("sim.sweep.jobs_done")
		scope = reg.Recorder().Scope("sim")
		sweepSpan = scope.Start(metaSweep)
	}
	var done atomic.Int64

	// One goroutine per effective worker, each pulling the next unclaimed
	// job off an atomic cursor — the same claim-based coalescing as the
	// SPECU batch scheduler, so a sweep of J jobs costs W goroutine starts
	// instead of J. Simulations are pure CPU: sched.WorkersFor clamps a
	// generous -workers flag to the schedulable parallelism and to the job
	// count.
	outcomes := make([]outcome, len(jobs))
	workers = sched.WorkersFor(workers, len(jobs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					outcomes[i].err = err
					continue // mark every unstarted job cancelled
				}
				j := jobs[i]
				var eng mem.EncryptionEngine = secure.NewPlain()
				if j.scheme != "" {
					eng = j.newEng.New()
				}
				r, err := Run(j.prof, eng, maxInsts, seed)
				outcomes[i] = outcome{res: r, err: err}
				n := done.Add(1)
				jobsDone.Inc()
				if scope != nil {
					failed := int64(0)
					if err != nil {
						failed = 1
					}
					scope.Event(metaJobDone, n, failed)
				}
				if opts.OnProgress != nil {
					opts.OnProgress(int(n), len(jobs), j.prof.Name, j.scheme)
				}
			}
		}()
	}
	wg.Wait()
	if scope != nil {
		sweepSpan.End(done.Load(), int64(len(jobs)))
	}

	rows := make([]Row, 0, len(profiles))
	k := 0
	for _, p := range profiles {
		base := outcomes[k]
		k++
		if base.err != nil {
			return nil, fmt.Errorf("sim: %s/plain: %w", p.Name, base.err)
		}
		row := Row{
			Workload:     p.Name,
			BaseIPC:      base.res.IPC,
			OverheadPct:  make(map[string]float64, len(schemes)),
			EncryptedPct: make(map[string]float64, len(schemes)),
		}
		for _, s := range schemes {
			o := outcomes[k]
			k++
			if o.err != nil {
				return nil, fmt.Errorf("sim: %s/%s: %w", p.Name, s.Name, o.err)
			}
			row.OverheadPct[s.Name] = (base.res.IPC - o.res.IPC) / base.res.IPC * 100
			row.EncryptedPct[s.Name] = o.res.AvgEncrypted * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}
