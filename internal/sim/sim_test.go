package sim

import (
	"testing"

	"snvmm/internal/secure"
	"snvmm/internal/trace"
)

const testInsts = 300_000

func TestRunPlainBaseline(t *testing.T) {
	p, err := trace.ProfileByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, secure.NewPlain(), testInsts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("IPC %g implausible", r.IPC)
	}
	if r.Stats.Instructions != testInsts {
		t.Errorf("instructions %d", r.Stats.Instructions)
	}
	if r.MemReads == 0 {
		t.Error("no memory reads reached the NVMM")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := trace.ProfileByName("gcc")
	a, err := Run(p, secure.NewPlain(), testInsts, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, secure.NewPlain(), testInsts, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.MemReads != b.MemReads {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestAESSlowerThanPlain(t *testing.T) {
	p, _ := trace.ProfileByName("mcf") // memory bound: big effect
	plain, err := Run(p, secure.NewPlain(), testInsts, 1)
	if err != nil {
		t.Fatal(err)
	}
	aes, err := Run(p, secure.NewAES(), testInsts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aes.IPC >= plain.IPC {
		t.Errorf("AES IPC %g >= plain %g", aes.IPC, plain.IPC)
	}
}

func TestSchemeOrdering(t *testing.T) {
	// On a memory-bound workload the overheads must order:
	// stream < SPE-serial < SPE-parallel < AES (Fig. 7 / Table 3).
	p, _ := trace.ProfileByName("mcf")
	ipc := map[string]float64{}
	for _, s := range Schemes() {
		r, err := Run(p, s.New(), testInsts, 1)
		if err != nil {
			t.Fatal(err)
		}
		ipc[s.Name] = r.IPC
	}
	if !(ipc["Stream"] >= ipc["SPE-serial"] && ipc["SPE-serial"] >= ipc["SPE-parallel"] && ipc["SPE-parallel"] >= ipc["AES"]) {
		t.Errorf("scheme IPC ordering violated: %+v", ipc)
	}
}

func TestEncryptedFractions(t *testing.T) {
	p, _ := trace.ProfileByName("sjeng")
	for _, s := range Schemes() {
		r, err := Run(p, s.New(), testInsts, 1)
		if err != nil {
			t.Fatal(err)
		}
		switch s.Name {
		case "AES", "Stream", "SPE-parallel":
			if r.AvgEncrypted < 0.999 {
				t.Errorf("%s avg encrypted %g, want 1", s.Name, r.AvgEncrypted)
			}
		case "SPE-serial":
			if r.AvgEncrypted < 0.9 {
				t.Errorf("SPE-serial avg encrypted %g, want > 0.9", r.AvgEncrypted)
			}
		case "i-NVMM":
			if r.AvgEncrypted > 0.9 {
				t.Errorf("i-NVMM avg encrypted %g; hot pages should stay plaintext", r.AvgEncrypted)
			}
		}
	}
}

func TestSweepAndAverages(t *testing.T) {
	profiles := []trace.Profile{}
	for _, name := range []string{"bzip2", "sjeng"} {
		p, _ := trace.ProfileByName(name)
		profiles = append(profiles, p)
	}
	schemes := Schemes()
	rows, err := Sweep(profiles, schemes, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.BaseIPC <= 0 {
			t.Errorf("%s base IPC %g", row.Workload, row.BaseIPC)
		}
		for _, s := range schemes {
			if _, ok := row.OverheadPct[s.Name]; !ok {
				t.Errorf("%s missing scheme %s", row.Workload, s.Name)
			}
		}
		// AES must cost more than SPE-serial everywhere.
		if row.OverheadPct["AES"] < row.OverheadPct["SPE-serial"] {
			t.Errorf("%s: AES %.2f%% < SPE-serial %.2f%%", row.Workload,
				row.OverheadPct["AES"], row.OverheadPct["SPE-serial"])
		}
	}
	ov, enc := Averages(rows, schemes)
	if ov["AES"] <= 0 {
		t.Errorf("AES average overhead %g", ov["AES"])
	}
	if enc["SPE-parallel"] < 99.9 {
		t.Errorf("SPE-parallel average encrypted %g", enc["SPE-parallel"])
	}
	// Empty input is safe.
	ov2, enc2 := Averages(nil, schemes)
	if len(ov2) != 0 || len(enc2) != 0 {
		t.Error("averages of no rows should be empty")
	}
}

func TestRunNVCacheSweep(t *testing.T) {
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	noBuf, err := RunNVCache(p, 0, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunNVCache(p, 16384, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if noBuf.IPC <= 0 || big.IPC <= 0 {
		t.Fatalf("IPC zero: %+v %+v", noBuf, big)
	}
	// A large decrypted-line buffer must not hurt and should speed things
	// up by hiding the decrypt pulses on hits.
	if big.IPC < noBuf.IPC {
		t.Errorf("larger DLB IPC %.4f < no-DLB %.4f", big.IPC, noBuf.IPC)
	}
	if noBuf.BufferHits != 0 {
		t.Errorf("no-DLB config recorded %d buffer hits", noBuf.BufferHits)
	}
	if big.AvgL2Hit > noBuf.AvgL2Hit {
		t.Errorf("avg L2 hit %.2f with DLB > %.2f without", big.AvgL2Hit, noBuf.AvgL2Hit)
	}
	if noBuf.Exposure != 0 {
		t.Errorf("no-DLB exposure %d lines", noBuf.Exposure)
	}
}
