package prng

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewKeyMasks(t *testing.T) {
	k := NewKey(^uint64(0), ^uint64(0))
	if k.Address >= 1<<SeedBits || k.Voltage >= 1<<SeedBits {
		t.Errorf("key not masked to %d bits: %+v", SeedBits, k)
	}
}

func TestKeyBytesRoundTrip(t *testing.T) {
	f := func(a, v uint64) bool {
		k := NewKey(a, v)
		k2, err := KeyFromBytes(k.Bytes())
		return err == nil && k2 == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyFromBytesLength(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, 10)); err == nil {
		t.Error("expected length error")
	}
}

func TestKeyBytesLayout(t *testing.T) {
	// Address = all ones, voltage = 0: first 44 bits set, rest clear.
	k := NewKey((1<<SeedBits)-1, 0)
	b := k.Bytes()
	want := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xf0, 0, 0, 0, 0, 0}
	if !bytes.Equal(b, want) {
		t.Errorf("bytes = %x, want %x", b, want)
	}
}

func TestFlipBit(t *testing.T) {
	k := NewKey(0, 0)
	for i := 0; i < KeyBits; i++ {
		f := k.FlipBit(i)
		if f == k {
			t.Errorf("FlipBit(%d) did not change key", i)
		}
		if f.FlipBit(i) != k {
			t.Errorf("FlipBit(%d) not involutive", i)
		}
		// Exactly one bit differs in the byte encoding.
		diff := 0
		kb, fb := k.Bytes(), f.Bytes()
		for j := range kb {
			x := kb[j] ^ fb[j]
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("FlipBit(%d) changed %d bits", i, diff)
		}
	}
}

func TestFlipBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewKey(0, 0).FlipBit(KeyBits)
}

func TestGenDeterministic(t *testing.T) {
	g1, g2 := NewGen(42), NewGen(42)
	for i := 0; i < 100; i++ {
		if g1.Uint64() != g2.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestGenSeedSensitivity(t *testing.T) {
	// Adjacent seeds must diverge immediately after warm-up.
	g1, g2 := NewGen(1000), NewGen(1001)
	same := 0
	for i := 0; i < 64; i++ {
		if g1.Uint64() == g2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 outputs collide for adjacent seeds", same)
	}
}

func TestGenZeroSeedWorks(t *testing.T) {
	g := NewGen(0)
	a, b := g.Uint64(), g.Uint64()
	if a == 0 && b == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestGenBitBalance(t *testing.T) {
	// Monobit sanity: ~50% ones over 64k bits.
	g := NewGen(7)
	bits := make([]uint8, 1<<16)
	g.Bits(bits)
	ones := 0
	for _, b := range bits {
		if b > 1 {
			t.Fatalf("bit value %d", b)
		}
		ones += int(b)
	}
	frac := float64(ones) / float64(len(bits))
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("ones fraction %g too far from 0.5", frac)
	}
}

func TestGenSerialCorrelation(t *testing.T) {
	// Lag-1 bit correlation should be near zero.
	g := NewGen(99)
	bits := make([]uint8, 1<<16)
	g.Bits(bits)
	agree := 0
	for i := 1; i < len(bits); i++ {
		if bits[i] == bits[i-1] {
			agree++
		}
	}
	frac := float64(agree) / float64(len(bits)-1)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lag-1 agreement %g too far from 0.5", frac)
	}
}

func TestIntnUniform(t *testing.T) {
	g := NewGen(5)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := g.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-draws/n) > 500 {
			t.Errorf("value %d drawn %d times, want ~%d", v, c, draws/n)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGen(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	g := NewGen(11)
	for _, n := range []int{1, 2, 16, 64} {
		p := g.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVariesWithSeed(t *testing.T) {
	p1 := NewGen(1).Perm(16)
	p2 := NewGen(2).Perm(16)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical permutations")
	}
}

func TestDeriveSchedule(t *testing.T) {
	k := NewKey(123, 456)
	s := DeriveSchedule(k, 16, 32)
	if len(s.Order) != 16 || len(s.Classes) != 16 {
		t.Fatalf("schedule sizes %d/%d", len(s.Order), len(s.Classes))
	}
	seen := make([]bool, 16)
	for _, v := range s.Order {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("order misses PoE %d", i)
		}
	}
	for _, c := range s.Classes {
		if c < 0 || c >= 32 {
			t.Errorf("class %d out of range", c)
		}
	}
	// Deterministic.
	s2 := DeriveSchedule(k, 16, 32)
	for i := range s.Order {
		if s.Order[i] != s2.Order[i] || s.Classes[i] != s2.Classes[i] {
			t.Fatal("schedule not deterministic")
		}
	}
}

func TestDeriveScheduleKeySeparation(t *testing.T) {
	// Changing only the voltage seed must not change the PoE order, and
	// vice versa (the two PRNG paths of Fig. 1b are independent).
	k := NewKey(77, 88)
	s1 := DeriveSchedule(k, 16, 32)
	s2 := DeriveSchedule(NewKey(77, 999), 16, 32)
	for i := range s1.Order {
		if s1.Order[i] != s2.Order[i] {
			t.Error("voltage seed changed PoE order")
			break
		}
	}
	s3 := DeriveSchedule(NewKey(555, 88), 16, 32)
	for i := range s1.Classes {
		if s1.Classes[i] != s3.Classes[i] {
			t.Error("address seed changed pulse classes")
			break
		}
	}
}

func TestMulmod61(t *testing.T) {
	// Check against big-number identity on selected values.
	cases := [][3]uint64{
		{0, 5, 0},
		{1, m61 - 1, m61 - 1},
		{2, 1 << 60, (1 << 61) % m61},
		{m61 - 1, m61 - 1, 1}, // (-1)*(-1) = 1 mod p
	}
	for _, c := range cases {
		if got := mulmod61(c[0], c[1]); got != c[2] {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestMul128(t *testing.T) {
	hi, lo := mul128(^uint64(0), ^uint64(0))
	// (2^64-1)^2 = 2^128 - 2^65 + 1.
	if hi != ^uint64(0)-1 || lo != 1 {
		t.Errorf("mul128 max = (%d, %d)", hi, lo)
	}
	hi, lo = mul128(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Errorf("mul128(2^32,2^32) = (%d,%d), want (1,0)", hi, lo)
	}
}
