// Package prng implements the SPECU's keyed pseudorandom sequence generator.
// Following the paper (Section 5.4 and Fig. 1b), the 88-bit secret key
// splits into a 44-bit address seed and a 44-bit voltage seed, each feeding
// a pseudorandom generator whose outputs the LUTs map to PoE addresses and
// pulse selections. The generator is a pair of coupled linear congruential
// generators in the style of Katti–Kavasseri: two 61-bit LCGs whose outputs
// cross-perturb each other's streams, which removes the lattice structure a
// single LCG exposes.
package prng

import (
	"fmt"
)

// SeedBits is the width of each PRNG seed (the paper's 44-bit halves).
const SeedBits = 44

// KeyBits is the full SPE key width for an 8x8 crossbar.
const KeyBits = 2 * SeedBits

// Key is the 88-bit SPE secret: two 44-bit seeds.
type Key struct {
	Address uint64 // low 44 bits significant
	Voltage uint64 // low 44 bits significant
}

// NewKey masks the provided words to 44 bits each.
func NewKey(address, voltage uint64) Key {
	const mask = (1 << SeedBits) - 1
	return Key{Address: address & mask, Voltage: voltage & mask}
}

// KeyFromBytes builds a key from an 11-byte (88-bit) big-endian encoding:
// the first 44 bits are the address seed, the last 44 the voltage seed.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeyBits/8 {
		return Key{}, fmt.Errorf("prng: key needs %d bytes, got %d", KeyBits/8, len(b))
	}
	var bits uint64
	// First 44 bits.
	for i := 0; i < 5; i++ {
		bits = bits<<8 | uint64(b[i])
	}
	bits = bits<<4 | uint64(b[5]>>4)
	addr := bits
	// Last 44 bits.
	bits = uint64(b[5] & 0x0f)
	for i := 6; i < 11; i++ {
		bits = bits<<8 | uint64(b[i])
	}
	return NewKey(addr, bits), nil
}

// Bytes is the inverse of KeyFromBytes.
func (k Key) Bytes() []byte {
	out := make([]byte, KeyBits/8)
	addr, volt := k.Address, k.Voltage
	out[0] = byte(addr >> 36)
	out[1] = byte(addr >> 28)
	out[2] = byte(addr >> 20)
	out[3] = byte(addr >> 12)
	out[4] = byte(addr >> 4)
	out[5] = byte(addr<<4) | byte(volt>>40)
	out[6] = byte(volt >> 32)
	out[7] = byte(volt >> 24)
	out[8] = byte(volt >> 16)
	out[9] = byte(volt >> 8)
	out[10] = byte(volt)
	return out
}

// FlipBit returns a copy of the key with bit i (0 = MSB of the address
// seed, 87 = LSB of the voltage seed) inverted — the key-avalanche
// perturbation of Section 6.1.
func (k Key) FlipBit(i int) Key {
	if i < 0 || i >= KeyBits {
		panic(fmt.Sprintf("prng: key bit %d out of range", i))
	}
	if i < SeedBits {
		return NewKey(k.Address^(1<<uint(SeedBits-1-i)), k.Voltage)
	}
	return NewKey(k.Address, k.Voltage^(1<<uint(KeyBits-1-i)))
}

// Coupled LCG parameters: two full-period generators modulo the Mersenne
// prime 2^61-1 with distinct multipliers.
const (
	m61 = (1 << 61) - 1
	a1  = 437799614237992725  // primitive root mod m61
	a2  = 1053547807097317913 // distinct primitive root
	c1  = 12345
	c2  = 67891
)

// Gen is one coupled-LCG stream.
type Gen struct {
	s1, s2 uint64
}

// NewGen seeds a stream. The seed words pass through a SplitMix64-style
// finalizer first, so sparse seeds (the low-density key data sets of
// Section 6.1 use keys with only one or two bits set) still fill both
// registers densely. A zero result maps to a fixed nonzero constant so the
// all-zero key runs.
func NewGen(seed uint64) *Gen {
	mix := func(x uint64) uint64 {
		x += 0x9E3779B97F4A7C15
		x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
		x = (x ^ x>>27) * 0x94D049BB133111EB
		return x ^ x>>31
	}
	g := &Gen{
		s1: mix(seed) % m61,
		s2: mix(seed^0xA5A5A5A55A5A5A5A) % m61,
	}
	if g.s1 == 0 {
		g.s1 = 0x1234567
	}
	if g.s2 == 0 {
		g.s2 = 0x89ABCDE
	}
	// Warm up to decorrelate nearby seeds.
	for i := 0; i < 16; i++ {
		g.step()
	}
	return g
}

func mulmod61(a, b uint64) uint64 {
	// 128-bit product reduced modulo 2^61-1 via hi/lo folding.
	hi, lo := mul128(a, b)
	// value = hi*2^64 + lo; 2^64 mod (2^61-1) = 8.
	r := (lo & m61) + (lo >> 61) + hi*8%m61
	for r >= m61 {
		r -= m61
	}
	return r
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	u := t & mask
	v := t >> 32
	t = aLo*bHi + u
	lo |= (t & mask) << 32
	hi = aHi*bHi + v + t>>32
	return
}

// step advances both LCGs with cross-coupling and returns 61 mixed bits.
func (g *Gen) step() uint64 {
	g.s1 = (mulmod61(a1, g.s1) + c1 + g.s2%1024) % m61
	g.s2 = (mulmod61(a2, g.s2) + c2 + g.s1%1024) % m61
	return g.s1 ^ (g.s2 << 3) ^ (g.s2 >> 7)
}

// Uint64 returns 64 pseudorandom bits.
func (g *Gen) Uint64() uint64 {
	return g.step()<<32 ^ g.step()
}

// Intn returns a uniform integer in [0, n) by rejection sampling.
func (g *Gen) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn needs n > 0")
	}
	bound := uint64(n)
	limit := ^uint64(0) - ^uint64(0)%bound
	for {
		v := g.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Bits fills dst with pseudorandom bits (one per byte, values 0/1).
func (g *Gen) Bits(dst []uint8) {
	var buf uint64
	var have int
	for i := range dst {
		if have == 0 {
			buf = g.Uint64()
			have = 64
		}
		dst[i] = uint8(buf & 1)
		buf >>= 1
		have--
	}
}

// Perm returns a pseudorandom permutation of [0, n) via Fisher-Yates.
func (g *Gen) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Schedule derives the SPE pulse program for one crossbar from the key:
// the order in which the covering PoEs fire and the pulse class each uses.
type Schedule struct {
	Order   []int // permutation of the PoE list indices
	Classes []int // pulse class per step, in [0, numClasses)
}

// DeriveSchedule expands the key into a schedule for nPoE points with
// numClasses distinct pulses. The address seed orders the PoEs; the voltage
// seed selects pulse classes — mirroring the two PRNG+LUT paths of Fig. 1b.
func DeriveSchedule(k Key, nPoE, numClasses int) Schedule {
	ag := NewGen(k.Address)
	vg := NewGen(k.Voltage)
	s := Schedule{
		Order:   ag.Perm(nPoE),
		Classes: make([]int, nPoE),
	}
	for i := range s.Classes {
		s.Classes[i] = vg.Intn(numClasses)
	}
	return s
}
