// Package wearlevel implements the randomized start-gap wear-leveling
// algorithm of Qureshi et al. (MICRO 2009), the defense the paper cites
// against endurance attacks on NVMMs (Sections 2 and 3): an adversary who
// hammers one address would otherwise destroy its memristor line long
// before the rest of the array wears out.
//
// Start-Gap keeps one spare line (the gap) in every region of N lines.
// Every GapInterval writes the gap migrates by one slot, slowly rotating
// the logical-to-physical mapping; a static address randomizer (a small
// Feistel network) decorrelates logically-adjacent lines so the attacker
// cannot chase the gap.
package wearlevel

import (
	"fmt"
)

// Mapper implements randomized start-gap over N logical lines backed by
// N+1 physical lines.
type Mapper struct {
	n           int // logical lines
	start       int // rotation offset
	gap         int // physical index of the spare line
	gapInterval int // writes between gap movements
	writeCount  int

	// Feistel keys for the static randomizer.
	keys [4]uint32
	bits uint // address width (log2 n)

	// Moves counts gap migrations (each costs one line copy in hardware).
	Moves uint64
}

// New builds a mapper for n logical lines (n must be a power of two for
// the randomizer) moving the gap every gapInterval writes (the paper uses
// psi = 100).
func New(n, gapInterval int, seed uint64) (*Mapper, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("wearlevel: n=%d must be a power of two >= 2", n)
	}
	if gapInterval < 1 {
		return nil, fmt.Errorf("wearlevel: gapInterval must be >= 1")
	}
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	m := &Mapper{n: n, gap: n, gapInterval: gapInterval, bits: bits}
	for i := range m.keys {
		seed = seed*6364136223846793005 + 1442695040888963407
		m.keys[i] = uint32(seed >> 33)
	}
	return m, nil
}

// feistel statically randomizes a logical address within [0, n): a
// balanced 4-round Feistel network over the smallest even bit width
// covering n, cycle-walked back into [0, n). Both constructions preserve
// bijectivity, so distinct logical lines always map to distinct physical
// lines.
func (m *Mapper) feistel(addr int) int {
	w := (m.bits + 1) / 2 // half width; domain is 2^(2w) >= n
	mask := uint32(1)<<w - 1
	x := uint32(addr)
	for {
		l := x & mask
		r := x >> w
		for _, k := range m.keys {
			f := (r*2654435761 + k) ^ (r >> 3)
			l, r = r, l^(f&mask)
		}
		x = l<<w | r
		if int(x) < m.n {
			return int(x)
		}
	}
}

// Map translates a logical line to its physical line under the current
// start/gap state.
func (m *Mapper) Map(logical int) (int, error) {
	if logical < 0 || logical >= m.n {
		return 0, fmt.Errorf("wearlevel: logical line %d out of [0,%d)", logical, m.n)
	}
	la := m.feistel(logical)
	pa := (la + m.start) % m.n
	if pa >= m.gap {
		pa++
	}
	return pa, nil
}

// WriteNotify records one write to a logical line and migrates the gap
// when the interval elapses. It returns the physical line written.
func (m *Mapper) WriteNotify(logical int) (int, error) {
	pa, err := m.Map(logical)
	if err != nil {
		return 0, err
	}
	m.writeCount++
	if m.writeCount%m.gapInterval == 0 {
		m.moveGap()
	}
	return pa, nil
}

// moveGap shifts the spare line one slot toward zero, wrapping and
// advancing the start offset on each full revolution.
func (m *Mapper) moveGap() {
	m.Moves++
	if m.gap == 0 {
		m.gap = m.n
		m.start = (m.start + 1) % m.n
		return
	}
	m.gap--
}

// PhysicalLines returns n+1 (including the spare).
func (m *Mapper) PhysicalLines() int { return m.n + 1 }

// EnduranceResult summarizes a lifetime simulation.
type EnduranceResult struct {
	TotalWrites uint64  // writes absorbed before first line death
	MaxWear     uint64  // wear of the hottest line at death
	Leveling    float64 // totalWrites / (enduranceLimit) — 1.0 means no leveling
}

// SimulateAttack hammers a single logical address until some physical line
// reaches the endurance limit, returning how many writes the memory
// absorbed. Without wear leveling this is exactly the endurance limit;
// with start-gap the rotation spreads the damage and the total approaches
// limit * n.
func SimulateAttack(m *Mapper, victim int, limit uint64) (EnduranceResult, error) {
	wear := make([]uint64, m.PhysicalLines())
	var total uint64
	for {
		pa, err := m.WriteNotify(victim)
		if err != nil {
			return EnduranceResult{}, err
		}
		wear[pa]++
		total++
		if wear[pa] >= limit {
			return EnduranceResult{
				TotalWrites: total,
				MaxWear:     wear[pa],
				Leveling:    float64(total) / float64(limit),
			}, nil
		}
	}
}

// NoLeveling is a pass-through mapper for the unprotected baseline.
type NoLeveling struct{ N int }

// Map is the identity.
func (n *NoLeveling) Map(logical int) (int, error) {
	if logical < 0 || logical >= n.N {
		return 0, fmt.Errorf("wearlevel: logical line %d out of range", logical)
	}
	return logical, nil
}

// WriteNotify is the identity.
func (n *NoLeveling) WriteNotify(logical int) (int, error) { return n.Map(logical) }
