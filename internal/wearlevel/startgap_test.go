package wearlevel

import (
	"testing"
)

func newMapper(t *testing.T, n, interval int) *Mapper {
	t.Helper()
	m, err := New(n, interval, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 10, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(1, 10, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(64, 0, 1); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestMapIsInjective(t *testing.T) {
	m := newMapper(t, 256, 10)
	for round := 0; round < 3; round++ {
		seen := map[int]bool{}
		for la := 0; la < 256; la++ {
			pa, err := m.Map(la)
			if err != nil {
				t.Fatal(err)
			}
			if pa < 0 || pa >= m.PhysicalLines() {
				t.Fatalf("physical %d out of range", pa)
			}
			if pa == m.gap {
				t.Fatalf("logical %d mapped onto the gap", la)
			}
			if seen[pa] {
				t.Fatalf("round %d: collision at physical %d", round, pa)
			}
			seen[pa] = true
		}
		// Rotate the gap a few times and re-check.
		for i := 0; i < 100; i++ {
			m.moveGap()
		}
	}
}

func TestMapRange(t *testing.T) {
	m := newMapper(t, 64, 10)
	if _, err := m.Map(-1); err == nil {
		t.Error("negative accepted")
	}
	if _, err := m.Map(64); err == nil {
		t.Error("out of range accepted")
	}
}

func TestGapRotation(t *testing.T) {
	m := newMapper(t, 16, 1) // gap moves on every write
	startGap := m.gap
	if _, err := m.WriteNotify(3); err != nil {
		t.Fatal(err)
	}
	if m.gap == startGap {
		t.Error("gap did not move")
	}
	// After n+1 moves the gap is back where it started and start advanced.
	for i := 0; i < m.n; i++ {
		m.moveGap()
	}
	if m.gap != startGap {
		t.Errorf("gap = %d after full revolution, want %d", m.gap, startGap)
	}
	if m.start == 0 {
		t.Error("start offset did not advance after a revolution")
	}
}

func TestMappingChangesOverTime(t *testing.T) {
	m := newMapper(t, 64, 1)
	before, _ := m.Map(7)
	for i := 0; i < 200; i++ {
		if _, err := m.WriteNotify(7); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := m.Map(7)
	if before == after && m.Moves == 0 {
		t.Error("mapping static despite gap movement")
	}
	if m.Moves != 200 {
		t.Errorf("moves = %d, want 200", m.Moves)
	}
}

func TestSimulateAttackLifetimeGain(t *testing.T) {
	const limit = 1000
	const n = 64
	// Baseline: no leveling dies after exactly `limit` writes.
	base := &NoLeveling{N: n}
	wear := uint64(0)
	for wear < limit {
		if _, err := base.WriteNotify(5); err != nil {
			t.Fatal(err)
		}
		wear++
	}
	// Start-gap: the same attack is absorbed far longer.
	m := newMapper(t, n, 10)
	res, err := SimulateAttack(m, 5, limit)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWrites <= limit*2 {
		t.Errorf("start-gap lifetime %d, want >> %d", res.TotalWrites, limit)
	}
	t.Logf("endurance attack: baseline dies at %d writes; start-gap absorbs %d (%.1fx)",
		limit, res.TotalWrites, res.Leveling)
	// The paper's start-gap reaches a large fraction of the ideal n*limit.
	if res.Leveling < float64(n)/4 {
		t.Errorf("leveling factor %.1f too low for n=%d", res.Leveling, n)
	}
}

func TestFeistelIsPermutation(t *testing.T) {
	for _, n := range []int{4, 32, 128, 1024} {
		m := newMapper(t, n, 10)
		seen := make([]bool, n)
		for a := 0; a < n; a++ {
			v := m.feistel(a)
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: feistel not a permutation at %d -> %d", n, a, v)
			}
			seen[v] = true
		}
	}
}

func TestFeistelSeedSensitivity(t *testing.T) {
	m1, _ := New(256, 10, 1)
	m2, _ := New(256, 10, 2)
	same := 0
	for a := 0; a < 256; a++ {
		if m1.feistel(a) == m2.feistel(a) {
			same++
		}
	}
	if same > 32 {
		t.Errorf("%d/256 fixed points across seeds; randomizer too weak", same)
	}
}
