// Package linalg provides the small dense and sparse linear-algebra kernels
// the circuit solver and the ILP simplex engine are built on: an LU
// factorization with partial pivoting for dense systems, a CSR sparse matrix
// type, and a (Jacobi-preconditioned) conjugate gradient solver for the
// symmetric positive-definite conductance matrices produced by modified
// nodal analysis of resistive crossbars.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zero Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j). It is the natural primitive for
// MNA stamp assembly.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU holds an LU factorization with partial pivoting: P*A = L*U, where the
// unit-lower-triangular L and upper-triangular U are packed into lu.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// Factor computes the LU factorization of the square matrix a. The input is
// not modified.
func Factor(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below row k.
		p, max := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > max {
				p, max = i, v
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= m * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x such that A*x = b using the precomputed factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.n
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve rhs length %d != %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L is unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveInto is Solve writing the result into x (len n), avoiding the
// per-solve allocation. x and b may alias.
func (f *LU) SolveInto(x, b []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: SolveInto lengths %d/%d != %d", len(x), len(b), n)
	}
	if n == 0 {
		return nil
	}
	tmp := x
	if &x[0] == &b[0] {
		tmp = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := tmp[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * tmp[j]
		}
		tmp[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := tmp[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * tmp[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		tmp[i] = s / d
	}
	if &tmp[0] != &x[0] {
		copy(x, tmp)
	}
	return nil
}

// SolveBatchInto solves A*X = B for k right-hand sides at once. x and b
// are n x k row-major panels (row i holds element i of every system, so
// panel column j is right-hand side j) and may alias. The pivot permutation
// is applied once per panel row instead of once per element per solve, and
// the triangular sweeps are blocked like Cholesky.SolveBatchInto: in-band
// scalar recurrences across all k systems, cross-band updates through the
// register-blocked multiply kernel.
func (f *LU) SolveBatchInto(x, b []float64, k int) error {
	n := f.n
	if k < 0 {
		return fmt.Errorf("linalg: SolveBatchInto negative batch %d", k)
	}
	if len(b) != n*k || len(x) != n*k {
		return fmt.Errorf("linalg: SolveBatchInto panel lengths %d/%d != %d", len(x), len(b), n*k)
	}
	if n == 0 || k == 0 {
		return nil
	}
	lu := f.lu
	// Singularity is a property of the factor alone; reject it before
	// touching x so an error never leaves a half-permuted panel behind.
	for i := 0; i < n; i++ {
		if lu[i*n+i] == 0 {
			return ErrSingular
		}
	}
	f.permuteRows(x, b, k)
	// Forward substitution with unit-lower L.
	for kb := 0; kb < n; kb += denseBlock {
		bs := denseBlock
		if kb+bs > n {
			bs = n - kb
		}
		for i := kb; i < kb+bs; i++ {
			row := x[i*k : i*k+k]
			for t := kb; t < i; t++ {
				subMulRow(row, x[t*k:t*k+k], lu[i*n+t])
			}
		}
		if rem := n - kb - bs; rem > 0 {
			gemmSub(x[(kb+bs)*k:], k, lu[(kb+bs)*n+kb:], n, x[kb*k:], k, rem, bs, k)
		}
	}
	// Back substitution with U.
	first := ((n - 1) / denseBlock) * denseBlock
	for kb := first; kb >= 0; kb -= denseBlock {
		bs := denseBlock
		if kb+bs > n {
			bs = n - kb
		}
		for i := kb + bs - 1; i >= kb; i-- {
			row := x[i*k : i*k+k]
			for t := i + 1; t < kb+bs; t++ {
				subMulRow(row, x[t*k:t*k+k], lu[i*n+t])
			}
			inv := 1 / lu[i*n+i]
			for j := range row {
				row[j] *= inv
			}
		}
		// X[0:kb] -= U[0:kb, band] * X[band].
		if kb > 0 {
			gemmSub(x, k, lu[kb:], n, x[kb*k:], k, kb, bs, k)
		}
	}
	return nil
}

// permuteRows writes x[i] = b[piv[i]] row-wise on n x k panels. When x and
// b alias, the permutation is applied in place by following its cycles with
// a single temporary row, so the batch solve never needs an n x k scratch.
func (f *LU) permuteRows(x, b []float64, k int) {
	n := f.n
	if &x[0] != &b[0] {
		for i := 0; i < n; i++ {
			copy(x[i*k:i*k+k], b[f.piv[i]*k:f.piv[i]*k+k])
		}
		return
	}
	visited := make([]bool, n)
	tmp := make([]float64, k)
	for i := 0; i < n; i++ {
		if visited[i] || f.piv[i] == i {
			visited[i] = true
			continue
		}
		// Walk the cycle i -> piv[i] -> piv[piv[i]] -> ... -> i, moving each
		// source row into place before it is overwritten.
		copy(tmp, x[i*k:i*k+k])
		j := i
		for {
			visited[j] = true
			src := f.piv[j]
			if src == i {
				copy(x[j*k:j*k+k], tmp)
				break
			}
			copy(x[j*k:j*k+k], x[src*k:src*k+k])
			j = src
		}
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense is a convenience wrapper: factor a and solve for b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
