package linalg

// Cache-blocked building blocks for the dense fast path. The factorizations
// and multi-RHS triangular sweeps in this package are all built from three
// register-blocked primitives: a rank-k lower-triangle update (the trailing
// update of the right-looking Cholesky), and two panel multiply-subtract
// kernels (the cross-block updates of the forward and backward substitution
// sweeps). Each kernel walks matrix rows contiguously and carries a 2x2 (or
// 1x2) register tile so every loaded element feeds several multiply-adds —
// the difference between streaming a 2+ MB factor once per block row and
// re-reading it per right-hand side.
//
// The block size is a fixed constant, never tuned at runtime: the summation
// order of every kernel — and therefore every solved voltage bit — is a pure
// function of the input, independent of hardware, worker count and previous
// calls.

// denseBlock is the fixed panel width of the blocked factorization and the
// multi-RHS triangular sweeps. 48 columns keep a diagonal block (48x48x8 B =
// 18 KB) plus a slice of the right-hand-side panel resident in L1 while
// remaining a multiple of the 2-wide register tiles.
const denseBlock = 48

// subMulRow computes dst[i] -= a*src[i] over min(len(dst), len(src))
// elements — the scalar-tail form of the panel kernels, also used directly
// by the diagonal-block substitutions where the triangular structure leaves
// no rectangular panel to block.
func subMulRow(dst, src []float64, a float64) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	for i, s := range src {
		dst[i] -= a * s
	}
}

// gemmSub computes C -= A*B on row-major panels: C is m rows of length k
// with stride ldc, A is m x p with stride lda, B is p rows of length k with
// stride ldb. It carries a 2x2 register tile over (row of C, row of B), so
// each loaded B element feeds two rows of C and each A coefficient feeds a
// whole row — the cross-block update of the forward sweep and of the
// U back-substitution.
func gemmSub(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, p, k int) {
	var i int
	for i = 0; i+1 < m; i += 2 {
		c0 := c[i*ldc : i*ldc+k]
		c1 := c[(i+1)*ldc : (i+1)*ldc+k]
		var t int
		for t = 0; t+1 < p; t += 2 {
			a00 := a[i*lda+t]
			a01 := a[i*lda+t+1]
			a10 := a[(i+1)*lda+t]
			a11 := a[(i+1)*lda+t+1]
			if a00 == 0 && a01 == 0 && a10 == 0 && a11 == 0 {
				continue
			}
			b0 := b[t*ldb : t*ldb+k]
			b1 := b[(t+1)*ldb : (t+1)*ldb+k]
			for j := range c0 {
				v0, v1 := b0[j], b1[j]
				c0[j] -= a00*v0 + a01*v1
				c1[j] -= a10*v0 + a11*v1
			}
		}
		for ; t < p; t++ {
			subMulRow(c0, b[t*ldb:t*ldb+k], a[i*lda+t])
			subMulRow(c1, b[t*ldb:t*ldb+k], a[(i+1)*lda+t])
		}
	}
	for ; i < m; i++ {
		c0 := c[i*ldc : i*ldc+k]
		var t int
		for t = 0; t+1 < p; t += 2 {
			a0 := a[i*lda+t]
			a1 := a[i*lda+t+1]
			if a0 == 0 && a1 == 0 {
				continue
			}
			b0 := b[t*ldb : t*ldb+k]
			b1 := b[(t+1)*ldb : (t+1)*ldb+k]
			for j := range c0 {
				c0[j] -= a0*b0[j] + a1*b1[j]
			}
		}
		for ; t < p; t++ {
			subMulRow(c0, b[t*ldb:t*ldb+k], a[i*lda+t])
		}
	}
}

// gemmSubT computes C -= A^T*B with the coefficient matrix stored
// transposed: C is m rows of length k with stride ldc, A is p x m with
// stride lda (coefficient for C row i and B row t is A[t*lda+i]), B is p
// rows of length k with stride ldb. This is the cross-block update of the
// L^T backward sweep, where the factor is only available row-major.
func gemmSubT(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, p, k int) {
	var i int
	for i = 0; i+1 < m; i += 2 {
		c0 := c[i*ldc : i*ldc+k]
		c1 := c[(i+1)*ldc : (i+1)*ldc+k]
		var t int
		for t = 0; t+1 < p; t += 2 {
			a00 := a[t*lda+i]
			a01 := a[(t+1)*lda+i]
			a10 := a[t*lda+i+1]
			a11 := a[(t+1)*lda+i+1]
			if a00 == 0 && a01 == 0 && a10 == 0 && a11 == 0 {
				continue
			}
			b0 := b[t*ldb : t*ldb+k]
			b1 := b[(t+1)*ldb : (t+1)*ldb+k]
			for j := range c0 {
				v0, v1 := b0[j], b1[j]
				c0[j] -= a00*v0 + a01*v1
				c1[j] -= a10*v0 + a11*v1
			}
		}
		for ; t < p; t++ {
			subMulRow(c0, b[t*ldb:t*ldb+k], a[t*lda+i])
			subMulRow(c1, b[t*ldb:t*ldb+k], a[t*lda+i+1])
		}
	}
	for ; i < m; i++ {
		c0 := c[i*ldc : i*ldc+k]
		for t := 0; t < p; t++ {
			subMulRow(c0, b[t*ldb:t*ldb+k], a[t*lda+i])
		}
	}
}

// syrkSubLower subtracts A*A^T from the lower triangle of the square region
// C: for every jj <= i < m, C[i*ldc+jj] -= A[i,:] . A[jj,:], with A an m x p
// panel of stride lda. The 2x2 tile over (i, jj) turns four dot products
// into one pass over two row pairs. This is the trailing update of the
// right-looking blocked Cholesky; the strict upper triangle of C is never
// touched.
func syrkSubLower(c []float64, ldc int, a []float64, lda int, m, p int) {
	var i int
	for i = 0; i+1 < m; i += 2 {
		ai0 := a[i*lda : i*lda+p]
		ai1 := a[(i+1)*lda : (i+1)*lda+p]
		var jj int
		for jj = 0; jj+1 <= i; jj += 2 {
			aj0 := a[jj*lda : jj*lda+p]
			aj1 := a[(jj+1)*lda : (jj+1)*lda+p]
			var s00, s01, s10, s11 float64
			for t := range ai0 {
				v0, v1 := ai0[t], ai1[t]
				w0, w1 := aj0[t], aj1[t]
				s00 += v0 * w0
				s01 += v0 * w1
				s10 += v1 * w0
				s11 += v1 * w1
			}
			c[i*ldc+jj] -= s00
			c[i*ldc+jj+1] -= s01
			c[(i+1)*ldc+jj] -= s10
			c[(i+1)*ldc+jj+1] -= s11
		}
		// Diagonal corner of the row pair: (i, i) when i is odd-aligned,
		// plus row i+1's entries at jj..i+1.
		for ; jj <= i+1; jj++ {
			aj := a[jj*lda : jj*lda+p]
			if jj <= i {
				c[i*ldc+jj] -= dotPanel(ai0, aj)
			}
			c[(i+1)*ldc+jj] -= dotPanel(ai1, aj)
		}
	}
	for ; i < m; i++ {
		ai := a[i*lda : i*lda+p]
		for jj := 0; jj <= i; jj++ {
			c[i*ldc+jj] -= dotPanel(ai, a[jj*lda:jj*lda+p])
		}
	}
}

// dotPanel is the unrolled dot product of two equal-length panel rows.
func dotPanel(x, y []float64) float64 {
	var s0, s1 float64
	var t int
	y = y[:len(x)]
	for t = 0; t+1 < len(x); t += 2 {
		s0 += x[t] * y[t]
		s1 += x[t+1] * y[t+1]
	}
	if t < len(x) {
		s0 += x[t] * y[t]
	}
	return s0 + s1
}
