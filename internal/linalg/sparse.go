package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Coord is one (row, col, value) triplet used to assemble a sparse matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. Duplicate coordinates passed to
// NewCSR are summed, which matches the stamp-accumulation style of MNA
// assembly.
type CSR struct {
	N      int // square dimension
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// NewCSR builds an n x n CSR matrix from coordinate triplets, summing
// duplicates.
func NewCSR(n int, coords []Coord) *CSR {
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Row != coords[j].Row {
			return coords[i].Row < coords[j].Row
		}
		return coords[i].Col < coords[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(coords); {
		r, c := coords[i].Row, coords[i].Col
		if r < 0 || r >= n || c < 0 || c >= n {
			panic(fmt.Sprintf("linalg: coord (%d,%d) out of range for n=%d", r, c, n))
		}
		v := 0.0
		for i < len(coords) && coords[i].Row == r && coords[i].Col == c {
			v += coords[i].Val
			i++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, v)
			m.RowPtr[r+1]++
		}
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// MulVec computes y = m*x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("linalg: CSR MulVec dimension mismatch")
	}
	for r := 0; r < m.N; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
}

// Diag returns the diagonal entries of m (zeros where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
			}
		}
	}
	return d
}

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	MaxIter int     // 0 means 10*N
	Tol     float64 // relative residual tolerance; 0 means 1e-10
}

// CGResult reports convergence information from a CG solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ||b-Ax|| / ||b||
	Converged  bool
}

// SolveCG solves A*x = b for symmetric positive-definite A using
// Jacobi-preconditioned conjugate gradients. The returned x is the best
// iterate; check CGResult.Converged.
func SolveCG(a *CSR, b []float64, opt CGOptions) ([]float64, CGResult, error) {
	n := a.N
	if len(b) != n {
		return nil, CGResult{}, fmt.Errorf("linalg: SolveCG rhs length %d != %d", len(b), n)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	normB := Norm2(b)
	if normB == 0 {
		return make([]float64, n), CGResult{Converged: true}, nil
	}
	// Jacobi preconditioner M = diag(A).
	d := a.Diag()
	for i, v := range d {
		if v <= 0 {
			return nil, CGResult{}, fmt.Errorf("linalg: SolveCG nonpositive diagonal %g at %d (matrix not SPD)", v, i)
		}
		d[i] = 1 / v
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	z := make([]float64, n)
	for i := range z {
		z[i] = d[i] * r[i]
	}
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := Dot(r, z)
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return x, res, fmt.Errorf("linalg: SolveCG breakdown pAp=%g (matrix not SPD)", pap)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		res.Iterations = it + 1
		res.Residual = Norm2(r) / normB
		if res.Residual < tol {
			res.Converged = true
			return x, res, nil
		}
		for i := range z {
			z[i] = d[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, res, nil
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, a convenience for tests and
// convergence checks.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
