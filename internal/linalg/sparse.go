package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Coord is one (row, col, value) triplet used to assemble a sparse matrix.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. Duplicate coordinates passed to
// NewCSR are summed, which matches the stamp-accumulation style of MNA
// assembly.
type CSR struct {
	N      int // square dimension
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// NewCSR builds an n x n CSR matrix from coordinate triplets, summing
// duplicates.
func NewCSR(n int, coords []Coord) *CSR {
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Row != coords[j].Row {
			return coords[i].Row < coords[j].Row
		}
		return coords[i].Col < coords[j].Col
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < len(coords); {
		r, c := coords[i].Row, coords[i].Col
		if r < 0 || r >= n || c < 0 || c >= n {
			panic(fmt.Sprintf("linalg: coord (%d,%d) out of range for n=%d", r, c, n))
		}
		v := 0.0
		for i < len(coords) && coords[i].Row == r && coords[i].Col == c {
			v += coords[i].Val
			i++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, v)
			m.RowPtr[r+1]++
		}
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// CSRTemplate is the symbolic (pattern-only) part of a CSR matrix whose
// sparsity pattern is fixed while its values change between solves — the
// shape of an MNA conductance matrix is a function of the circuit topology
// alone. The coordinate sort and duplicate merge are paid once; Refill then
// scatters a fresh value vector through the precomputed position map in
// O(nnz) with no allocation.
type CSRTemplate struct {
	m   *CSR
	pos []int // input coordinate k -> index into m.Val
}

// NewCSRTemplate builds the symbolic structure of an n x n matrix from the
// coordinate pattern (rows[k], cols[k]). Duplicate coordinates share one
// stored entry (their refilled values are summed, matching NewCSR).
func NewCSRTemplate(n int, rows, cols []int) *CSRTemplate {
	if len(rows) != len(cols) {
		panic("linalg: NewCSRTemplate rows/cols length mismatch")
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if rows[i] != rows[j] {
			return rows[i] < rows[j]
		}
		return cols[i] < cols[j]
	})
	t := &CSRTemplate{
		m:   &CSR{N: n, RowPtr: make([]int, n+1)},
		pos: make([]int, len(rows)),
	}
	for i := 0; i < len(order); {
		k := order[i]
		r, c := rows[k], cols[k]
		if r < 0 || r >= n || c < 0 || c >= n {
			panic(fmt.Sprintf("linalg: coord (%d,%d) out of range for n=%d", r, c, n))
		}
		slot := len(t.m.Val)
		t.m.ColIdx = append(t.m.ColIdx, c)
		t.m.Val = append(t.m.Val, 0)
		t.m.RowPtr[r+1]++
		for i < len(order) && rows[order[i]] == r && cols[order[i]] == c {
			t.pos[order[i]] = slot
			i++
		}
	}
	for r := 0; r < n; r++ {
		t.m.RowPtr[r+1] += t.m.RowPtr[r]
	}
	return t
}

// Refill overwrites the template's values with vals (one per input
// coordinate, duplicates summed) and returns the backing CSR matrix. The
// returned matrix aliases the template: it is valid until the next Refill.
func (t *CSRTemplate) Refill(vals []float64) *CSR {
	if len(vals) != len(t.pos) {
		panic(fmt.Sprintf("linalg: Refill got %d values, template has %d coords", len(vals), len(t.pos)))
	}
	for i := range t.m.Val {
		t.m.Val[i] = 0
	}
	for k, v := range vals {
		t.m.Val[t.pos[k]] += v
	}
	return t.m
}

// NNZ returns the number of stored entries in the template's matrix.
func (t *CSRTemplate) NNZ() int { return len(t.m.Val) }

// MulVec computes y = m*x.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("linalg: CSR MulVec dimension mismatch")
	}
	for r := 0; r < m.N; r++ {
		s := 0.0
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
}

// Diag returns the diagonal entries of m (zeros where absent).
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for r := 0; r < m.N; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
			}
		}
	}
	return d
}

// CGOptions configures the conjugate gradient solver.
type CGOptions struct {
	MaxIter int     // 0 means 10*N
	Tol     float64 // relative residual tolerance; 0 means 1e-10

	// X0, when non-nil, is the warm-start initial iterate (len N). A
	// transient co-simulation whose operator changes slightly per step
	// converges in a handful of iterations from the previous solution
	// instead of O(sqrt(cond)) from zero. Nil starts from the origin,
	// reproducing the cold-start behavior exactly.
	X0 []float64
}

// CGResult reports convergence information from a CG solve.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ||b-Ax|| / ||b||
	Converged  bool
}

// SolveCG solves A*x = b for symmetric positive-definite A using
// Jacobi-preconditioned conjugate gradients. The returned x is the best
// iterate; check CGResult.Converged.
func SolveCG(a *CSR, b []float64, opt CGOptions) ([]float64, CGResult, error) {
	t := ltel.Load()
	if t == nil {
		return solveCG(a, b, opt)
	}
	x, res, err := solveCG(a, b, opt)
	t.cgSolves.Inc()
	t.cgIterations.Add(int64(res.Iterations))
	if opt.X0 != nil {
		t.cgWarmStarts.Inc()
	}
	if err != nil || !res.Converged {
		t.cgFailures.Inc()
	}
	return x, res, err
}

func solveCG(a *CSR, b []float64, opt CGOptions) ([]float64, CGResult, error) {
	n := a.N
	if len(b) != n {
		return nil, CGResult{}, fmt.Errorf("linalg: SolveCG rhs length %d != %d", len(b), n)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	normB := Norm2(b)
	if normB == 0 {
		return make([]float64, n), CGResult{Converged: true}, nil
	}
	// Jacobi preconditioner M = diag(A).
	d := a.Diag()
	for i, v := range d {
		if v <= 0 {
			return nil, CGResult{}, fmt.Errorf("linalg: SolveCG nonpositive diagonal %g at %d (matrix not SPD)", v, i)
		}
		d[i] = 1 / v
	}
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, CGResult{}, fmt.Errorf("linalg: SolveCG X0 length %d != %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
		a.MulVec(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		if rel := Norm2(r) / normB; rel < tol {
			return x, CGResult{Residual: rel, Converged: true}, nil
		}
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = d[i] * r[i]
	}
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)
	rz := Dot(r, z)
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return x, res, fmt.Errorf("linalg: SolveCG breakdown pAp=%g (matrix not SPD)", pap)
		}
		alpha := rz / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		res.Iterations = it + 1
		res.Residual = Norm2(r) / normB
		if res.Residual < tol {
			res.Converged = true
			return x, res, nil
		}
		for i := range z {
			z[i] = d[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			p[i] = z[i] + beta*p[i]
		}
	}
	return x, res, nil
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, a convenience for tests and
// convergence checks.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
