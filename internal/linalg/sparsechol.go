package linalg

import (
	"fmt"
	"sort"
)

// Supernodal sparse Cholesky for fill-reducing (nested-dissection) orderings.
//
// The dense Cholesky above stops being viable around a few thousand unknowns:
// the factor alone is O(n^2) memory and O(n^3) time. The conductance systems
// the crossbar characterization factors are planar-grid graphs, where a
// nested-dissection ordering bounds fill at O(n log n) and factor work at
// O(n^1.5). FactorSparse takes such an ordering (the caller computes it —
// for the crossbar the grid structure makes separators analytic, see
// xbar.dissectionOrder; any permutation is numerically correct, only fill
// varies), runs the standard symbolic analysis (Liu's elimination tree,
// column patterns by child merging, fundamental supernodes), and factors the
// permuted system with a left-looking supernodal sweep built from the same
// register-blocked kernels as the dense path (factorDiagBlock, trsmRightLT,
// syrkSubLower, gemmSub). Every loop order is fixed, so the factor — and
// everything solved through it — is a pure function of the matrix and the
// ordering, independent of hardware and previous calls.
//
// Supernode s owns a run of consecutive permuted columns [c0, c1) sharing
// one row structure; its factor block is stored as a dense row-major panel
// of len(rows) x (c1-c0), rows sorted ascending with the supernode's own
// columns first. Probe solves (ForwardProbe) exploit that a sparse
// right-hand side stays supported on the etree ancestor paths of its seed
// supernodes: the result is returned restricted to that support, so a
// Green-table entry u^T A^-1 v costs two short forward solves and a merged
// supernode-wise dot product instead of two full triangular sweeps.
type SparseCholesky struct {
	n     int
	order []int32 // elimination position -> original index
	iord  []int32 // original index -> elimination position

	snStart  []int32   // supernode s spans permuted columns [snStart[s], snStart[s+1])
	snodeOf  []int32   // permuted column -> supernode
	snRows   [][]int32 // permuted row structure; first width(s) entries are s's own columns
	snPanel  [][]float64
	snParent []int32 // supernodal etree parent, -1 at a root

	depth int   // height of the supernodal etree (1 = single level)
	nnz   int64 // stored factor entries (panel cells)
}

// FactorSparse factors the SPD matrix a (both triangles stored, as NewCSR
// produces from symmetric stamps) under the given elimination order:
// order[k] is the original index eliminated at position k. Returns ErrNotSPD
// if a pivot fails, like the dense path.
func FactorSparse(a *CSR, order []int) (*SparseCholesky, error) {
	n := a.N
	if n == 0 {
		return nil, fmt.Errorf("linalg: FactorSparse needs a non-empty matrix")
	}
	if len(order) != n {
		return nil, fmt.Errorf("linalg: FactorSparse order length %d != n %d", len(order), n)
	}
	c := &SparseCholesky{n: n, order: make([]int32, n), iord: make([]int32, n)}
	for k := range c.iord {
		c.iord[k] = -1
	}
	for k, o := range order {
		if o < 0 || o >= n || c.iord[o] != -1 {
			return nil, fmt.Errorf("linalg: FactorSparse order is not a permutation at position %d", k)
		}
		c.order[k] = int32(o)
		c.iord[o] = int32(k)
	}
	if err := c.symbolic(a); err != nil {
		return nil, err
	}
	return c, c.numeric(a)
}

// symbolic runs the elimination-tree / column-pattern / supernode analysis
// on the permuted sparsity pattern.
func (c *SparseCholesky) symbolic(a *CSR) error {
	n := c.n
	// Permuted adjacency (both triangles; diagonal dropped).
	adjPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		pi := c.iord[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p] != i {
				adjPtr[pi+1]++
			}
		}
	}
	for k := 0; k < n; k++ {
		adjPtr[k+1] += adjPtr[k]
	}
	adjIdx := make([]int32, adjPtr[n])
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		pi := c.iord[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if j := a.ColIdx[p]; j != i {
				adjIdx[adjPtr[pi]+fill[pi]] = c.iord[j]
				fill[pi]++
			}
		}
	}
	// Liu's elimination tree with path compression.
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for j := 0; j < n; j++ {
		parent[j], ancestor[j] = -1, -1
		for p := adjPtr[j]; p < adjPtr[j+1]; p++ {
			r := adjIdx[p]
			for r != -1 && r != int32(j) {
				next := ancestor[r]
				ancestor[r] = int32(j)
				if next == -1 {
					parent[r] = int32(j)
				}
				r = next
			}
		}
	}
	// Column patterns by child merging: pat[j] = {j} ∪ {adj > j} ∪ children's
	// patterns (minus the child column itself). Rows of a child are ancestors
	// of the child, so everything merged in is > j except j itself.
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	for j := range childHead {
		childHead[j] = -1
	}
	for j := n - 1; j >= 0; j-- {
		if p := parent[j]; p != -1 {
			childNext[j] = childHead[p]
			childHead[p] = int32(j)
		}
	}
	pat := make([][]int32, n)
	mark := make([]int32, n)
	for j := range mark {
		mark[j] = -1
	}
	for j := 0; j < n; j++ {
		row := []int32{int32(j)}
		mark[j] = int32(j)
		for p := adjPtr[j]; p < adjPtr[j+1]; p++ {
			if r := adjIdx[p]; r > int32(j) && mark[r] != int32(j) {
				mark[r] = int32(j)
				row = append(row, r)
			}
		}
		for ch := childHead[j]; ch != -1; ch = childNext[ch] {
			for _, r := range pat[ch][1:] {
				if r != int32(j) && mark[r] != int32(j) {
					mark[r] = int32(j)
					row = append(row, r)
				}
			}
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		pat[j] = row
	}
	// Fundamental supernodes: extend the current run while column j is the
	// etree parent of j-1 and loses exactly the one row.
	snodeOf := make([]int32, n)
	var snStart []int32
	for j := 0; j < n; j++ {
		if j == 0 || parent[j-1] != int32(j) || len(pat[j-1]) != len(pat[j])+1 {
			snStart = append(snStart, int32(j))
		}
		snodeOf[j] = int32(len(snStart) - 1)
	}
	snStart = append(snStart, int32(n))
	ns := len(snStart) - 1
	c.snStart, c.snodeOf = snStart, snodeOf
	c.snRows = make([][]int32, ns)
	c.snPanel = make([][]float64, ns)
	c.snParent = make([]int32, ns)
	for s := 0; s < ns; s++ {
		c0, c1 := int(snStart[s]), int(snStart[s+1])
		rows := pat[c0]
		for x := c0; x < c1; x++ {
			if rows[x-c0] != int32(x) {
				return fmt.Errorf("linalg: FactorSparse supernode %d row structure broken", s)
			}
		}
		c.snRows[s] = rows
		c.snPanel[s] = make([]float64, len(rows)*(c1-c0))
		c.nnz += int64(len(rows) * (c1 - c0))
		if len(rows) > c1-c0 {
			c.snParent[s] = snodeOf[rows[c1-c0]]
		} else {
			c.snParent[s] = -1
		}
	}
	// Supernodal etree height: parents have larger ids, so a descending
	// sweep sees every parent's depth before its children.
	c.depth = 0
	depth := make([]int32, ns)
	for s := ns - 1; s >= 0; s-- {
		if p := c.snParent[s]; p != -1 {
			depth[s] = depth[p] + 1
		} else {
			depth[s] = 1
		}
		if int(depth[s]) > c.depth {
			c.depth = int(depth[s])
		}
	}
	return nil
}

// numeric runs the left-looking supernodal factorization.
func (c *SparseCholesky) numeric(a *CSR) error {
	n := c.n
	ns := len(c.snStart) - 1
	// Permuted lower-triangle columns of A, grouped by permuted column.
	colPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		pi := c.iord[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if pj := c.iord[a.ColIdx[p]]; pi >= pj {
				colPtr[pj+1]++
			}
		}
	}
	for k := 0; k < n; k++ {
		colPtr[k+1] += colPtr[k]
	}
	colRow := make([]int32, colPtr[n])
	colVal := make([]float64, colPtr[n])
	cfill := make([]int32, n)
	for i := 0; i < n; i++ {
		pi := c.iord[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if pj := c.iord[a.ColIdx[p]]; pi >= pj {
				at := colPtr[pj] + cfill[pj]
				colRow[at] = pi
				colVal[at] = a.Val[p]
				cfill[pj]++
			}
		}
	}
	maxRows, maxW := 0, 0
	for s := 0; s < ns; s++ {
		if r := len(c.snRows[s]); r > maxRows {
			maxRows = r
		}
		if w := int(c.snStart[s+1] - c.snStart[s]); w > maxW {
			maxW = w
		}
	}
	rowpos := make([]int32, n)
	updW := make([]float64, maxRows*maxW)
	updT := make([]float64, maxW*maxW)
	btScratch := make([]float64, denseBlock*maxW)
	// Per-supernode descendant worklists: listHead[s] chains (via listNext)
	// the factored supernodes whose next unconsumed row lands in s.
	listHead := make([]int32, ns)
	listNext := make([]int32, ns)
	ptr := make([]int32, ns)
	for s := range listHead {
		listHead[s] = -1
	}
	for s := 0; s < ns; s++ {
		c0, c1 := int(c.snStart[s]), int(c.snStart[s+1])
		w := c1 - c0
		rows := c.snRows[s]
		f := c.snPanel[s]
		for x, r := range rows {
			rowpos[r] = int32(x)
		}
		// Assemble A's columns of this supernode.
		for j := c0; j < c1; j++ {
			x := j - c0
			for p := colPtr[j]; p < colPtr[j+1]; p++ {
				f[int(rowpos[colRow[p]])*w+x] += colVal[p]
			}
		}
		// Apply descendant updates: F -= P_d[ptr:] * P_d[ptr:ptr+t]^T for
		// every descendant whose next rows land in [c0, c1).
		for d := listHead[s]; d != -1; {
			nextd := listNext[d]
			drows := c.snRows[d]
			wd := int(c.snStart[d+1] - c.snStart[d])
			p := int(ptr[d])
			t := 0
			for p+t < len(drows) && drows[p+t] < int32(c1) {
				t++
			}
			m := len(drows) - p
			pd := c.snPanel[d][p*wd:]
			// updT = transpose of the first t update rows (wd x t), so the
			// slab multiply runs with contiguous kernel rows.
			for q := 0; q < wd; q++ {
				for x := 0; x < t; x++ {
					updT[q*t+x] = pd[x*wd+q]
				}
			}
			slab := updW[:m*t]
			for i := range slab {
				slab[i] = 0
			}
			gemmSub(slab, t, pd, wd, updT, t, m, wd, t)
			// Scatter-subtract into the panel. Rows above the diagonal block
			// of s land in its strict upper triangle, which the panel
			// factorization never reads.
			for i := 0; i < m; i++ {
				fi := int(rowpos[drows[p+i]]) * w
				si := i * t
				for x := 0; x < t; x++ {
					f[fi+int(drows[p+x])-c0] += slab[si+x]
				}
			}
			ptr[d] = int32(p + t)
			if p+t < len(drows) {
				tgt := c.snodeOf[drows[p+t]]
				listNext[d] = listHead[tgt]
				listHead[tgt] = d
			}
			d = nextd
		}
		if err := factorPanel(f, len(rows), w, btScratch); err != nil {
			return err
		}
		ptr[s] = int32(w)
		if len(rows) > w {
			tgt := c.snodeOf[rows[w]]
			listNext[s] = listHead[tgt]
			listHead[tgt] = int32(s)
		}
	}
	return nil
}

// factorPanel runs the blocked Cholesky recurrence on a supernode panel:
// rows x w row-major, the leading w rows forming the (lower-triangular)
// diagonal block. bt is a denseBlock*w transpose scratch.
func factorPanel(f []float64, rows, w int, bt []float64) error {
	for kb := 0; kb < w; kb += denseBlock {
		bs := denseBlock
		if kb+bs > w {
			bs = w - kb
		}
		if err := factorDiagBlock(f[kb*w+kb:], w, bs); err != nil {
			return err
		}
		if below := rows - kb - bs; below > 0 {
			trsmRightLT(f[(kb+bs)*w+kb:], w, f[kb*w+kb:], w, below, bs)
		}
		rest := w - kb - bs
		if rest == 0 {
			continue
		}
		// Trailing update inside the panel: the triangular part below the
		// diagonal block via the rank-k kernel, the rectangle of below-rows
		// via gemm against a small transpose of the just-solved rows.
		syrkSubLower(f[(kb+bs)*w+(kb+bs):], w, f[(kb+bs)*w+kb:], w, rest, bs)
		if m2 := rows - w; m2 > 0 {
			for q := 0; q < bs; q++ {
				for x := 0; x < rest; x++ {
					bt[q*rest+x] = f[(kb+bs+x)*w+kb+q]
				}
			}
			gemmSub(f[w*w+kb+bs:], w, f[w*w+kb:], w, bt[:bs*rest], rest, m2, bs, rest)
		}
	}
	return nil
}

// N returns the system dimension.
func (c *SparseCholesky) N() int { return c.n }

// Supernodes returns the supernode count of the factorization.
func (c *SparseCholesky) Supernodes() int { return len(c.snStart) - 1 }

// Depth returns the height of the supernodal elimination tree — for a
// nested-dissection ordering this is (up to leaf granularity) the dissection
// recursion depth.
func (c *SparseCholesky) Depth() int { return c.depth }

// FillNNZ returns the number of stored factor entries (supernode panel
// cells, diagonal blocks included).
func (c *SparseCholesky) FillNNZ() int64 { return c.nnz }

// ProbeVec is a forward-solve result y = L^-1 b restricted to its supernodal
// support: Sn lists the active supernodes ascending, Val holds their column
// ranges concatenated, Off[x] is the offset of Sn[x]'s range in Val.
type ProbeVec struct {
	Sn  []int32
	Off []int32
	Val []float64
}

// ProbeDot returns the inner product of two probe vectors — b_a^T A^-1 b_b
// for the right-hand sides that produced them — by merging their supports.
func ProbeDot(a, b ProbeVec) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Sn) && j < len(b.Sn) {
		switch {
		case a.Sn[i] < b.Sn[j]:
			i++
		case a.Sn[i] > b.Sn[j]:
			j++
		default:
			s += dotPanel(a.Val[a.Off[i]:a.Off[i+1]], b.Val[b.Off[j]:b.Off[j+1]])
			i++
			j++
		}
	}
	return s
}

// ProbeWorkspace holds the reusable scratch of ForwardProbe calls. Not safe
// for concurrent use; allocate one per goroutine.
type ProbeWorkspace struct {
	y    []float64
	mark []int32
	sns  []int32
	tick int32
}

// NewProbeWorkspace allocates probe scratch for this factorization.
func (c *SparseCholesky) NewProbeWorkspace() *ProbeWorkspace {
	return &ProbeWorkspace{
		y:    make([]float64, c.n),
		mark: make([]int32, len(c.snStart)-1),
		tick: 0,
	}
}

// ForwardProbe solves L y = b for the sparse right-hand side
// b = sum coef[t] * e_idx[t] (idx in original index space) and returns y
// restricted to its supernodal support — the union of the etree ancestor
// paths of the seed supernodes. The returned vector is freshly allocated at
// exactly the support size; ws is reused across calls.
func (c *SparseCholesky) ForwardProbe(ws *ProbeWorkspace, idx []int, coef []float64) (ProbeVec, error) {
	if len(idx) != len(coef) || len(idx) == 0 {
		return ProbeVec{}, fmt.Errorf("linalg: ForwardProbe needs matching non-empty idx/coef, got %d/%d", len(idx), len(coef))
	}
	ws.tick++
	ws.sns = ws.sns[:0]
	for _, o := range idx {
		if o < 0 || o >= c.n {
			return ProbeVec{}, fmt.Errorf("linalg: ForwardProbe index %d out of range [0,%d)", o, c.n)
		}
		for s := c.snodeOf[c.iord[o]]; s != -1 && ws.mark[s] != ws.tick; s = c.snParent[s] {
			ws.mark[s] = ws.tick
			ws.sns = append(ws.sns, s)
		}
	}
	sort.Slice(ws.sns, func(a, b int) bool { return ws.sns[a] < ws.sns[b] })
	for t, o := range idx {
		ws.y[c.iord[o]] += coef[t]
	}
	total := 0
	for _, s := range ws.sns {
		total += int(c.snStart[s+1] - c.snStart[s])
	}
	pv := ProbeVec{
		Sn:  append([]int32(nil), ws.sns...),
		Off: make([]int32, len(ws.sns)+1),
		Val: make([]float64, total),
	}
	y := ws.y
	off := 0
	for x, s := range ws.sns {
		c0, c1 := int(c.snStart[s]), int(c.snStart[s+1])
		w := c1 - c0
		rows := c.snRows[s]
		f := c.snPanel[s]
		for i := 0; i < w; i++ {
			v := y[c0+i] - dotPanel(f[i*w:i*w+i], y[c0:c0+i])
			y[c0+i] = v / f[i*w+i]
		}
		for r := w; r < len(rows); r++ {
			y[rows[r]] -= dotPanel(f[r*w:r*w+w], y[c0:c0+w])
		}
		pv.Off[x] = int32(off)
		copy(pv.Val[off:off+w], y[c0:c1])
		off += w
	}
	pv.Off[len(ws.sns)] = int32(off)
	// Reset the touched region: every below-row of an active supernode
	// belongs to an ancestor, which is itself active, so zeroing the active
	// column ranges restores y to all-zero.
	for _, s := range ws.sns {
		c0, c1 := int(c.snStart[s]), int(c.snStart[s+1])
		for i := c0; i < c1; i++ {
			y[i] = 0
		}
	}
	return pv, nil
}

// SolveInto solves A x = b through the factorization (full dense sweep, both
// triangular passes); x and b may alias. Used by tests and small callers —
// probe workloads should prefer ForwardProbe.
func (c *SparseCholesky) SolveInto(x, b []float64) error {
	n := c.n
	if len(x) != n || len(b) != n {
		return fmt.Errorf("linalg: SparseCholesky SolveInto lengths %d/%d != %d", len(x), len(b), n)
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b[c.order[i]]
	}
	ns := len(c.snStart) - 1
	for s := 0; s < ns; s++ {
		c0, c1 := int(c.snStart[s]), int(c.snStart[s+1])
		w := c1 - c0
		rows := c.snRows[s]
		f := c.snPanel[s]
		for i := 0; i < w; i++ {
			v := y[c0+i] - dotPanel(f[i*w:i*w+i], y[c0:c0+i])
			y[c0+i] = v / f[i*w+i]
		}
		for r := w; r < len(rows); r++ {
			y[rows[r]] -= dotPanel(f[r*w:r*w+w], y[c0:c0+w])
		}
	}
	for s := ns - 1; s >= 0; s-- {
		c0, c1 := int(c.snStart[s]), int(c.snStart[s+1])
		w := c1 - c0
		rows := c.snRows[s]
		f := c.snPanel[s]
		for r := len(rows) - 1; r >= w; r-- {
			subMulRow(y[c0:c1], f[r*w:r*w+w], y[rows[r]])
		}
		for i := w - 1; i >= 0; i-- {
			v := y[c0+i]
			for t := i + 1; t < w; t++ {
				v -= f[t*w+i] * y[c0+t]
			}
			y[c0+i] = v / f[i*w+i]
		}
	}
	for i := 0; i < n; i++ {
		x[c.order[i]] = y[i]
	}
	return nil
}
