package linalg

import (
	"sync/atomic"

	"snvmm/internal/telemetry"
)

// Package-level instrumentation of the iterative solver, published through
// an atomic pointer so the disabled path is one load and a branch per solve
// (not per iteration).

// linalgTel is the resolved instrument set.
type linalgTel struct {
	cgSolves     *telemetry.Counter // SolveCG calls
	cgIterations *telemetry.Counter // total CG iterations across all solves
	cgWarmStarts *telemetry.Counter // solves seeded with a previous iterate
	cgFailures   *telemetry.Counter // errored or non-converged solves
}

var ltel atomic.Pointer[linalgTel]

// SetTelemetry attaches (or, with nil, detaches) the solver instruments,
// all under the "linalg.cg." prefix.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		ltel.Store(nil)
		return
	}
	ltel.Store(&linalgTel{
		cgSolves:     reg.Counter("linalg.cg.solves"),
		cgIterations: reg.Counter("linalg.cg.iterations"),
		cgWarmStarts: reg.Counter("linalg.cg.warm_starts"),
		cgFailures:   reg.Counter("linalg.cg.failures"),
	})
}
