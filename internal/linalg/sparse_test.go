package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCSRSumsDuplicates(t *testing.T) {
	m := NewCSR(2, []Coord{
		{0, 0, 1}, {0, 0, 2}, {1, 1, 5}, {0, 1, -1},
	})
	x := []float64{1, 1}
	y := make([]float64, 2)
	m.MulVec(x, y)
	if y[0] != 2 || y[1] != 5 { // (1+2)*1 + (-1)*1 = 2
		t.Errorf("y = %v, want [2 5]", y)
	}
}

func TestCSRDropsZeros(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 0, 1}, {0, 0, -1}, {1, 1, 3}})
	if len(m.Val) != 1 {
		t.Errorf("stored %d entries, want 1 (cancelled entries dropped)", len(m.Val))
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCSR(2, []Coord{{2, 0, 1}})
}

func TestCSRDiag(t *testing.T) {
	m := NewCSR(3, []Coord{{0, 0, 4}, {1, 2, 7}, {2, 2, 9}})
	d := m.Diag()
	want := []float64{4, 0, 9}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diag[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

// randSPD builds a random symmetric diagonally-dominant sparse matrix, which
// is guaranteed SPD.
func randSPD(n int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var coords []Coord
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.Float64()*2 - 1
				coords = append(coords, Coord{i, j, v}, Coord{j, i, v})
				diag[i] += math.Abs(v)
				diag[j] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{i, i, diag[i] + 1})
	}
	return NewCSR(n, coords)
}

func TestSolveCGMatchesDense(t *testing.T) {
	for _, n := range []int{2, 10, 50} {
		sp := randSPD(n, 0.3, int64(n))
		// Convert to dense for reference solve.
		dn := NewDense(n, n)
		for r := 0; r < n; r++ {
			for k := sp.RowPtr[r]; k < sp.RowPtr[r+1]; k++ {
				dn.Set(r, sp.ColIdx[k], sp.Val[k])
			}
		}
		rng := rand.New(rand.NewSource(int64(n) * 7))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := SolveDense(dn, b)
		if err != nil {
			t.Fatal(err)
		}
		got, res, err := SolveCG(sp, b, CGOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: CG did not converge (res %g)", n, res.Residual)
		}
		if d := MaxAbsDiff(got, want); d > 1e-7 {
			t.Errorf("n=%d: CG vs dense max diff %g", n, d)
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	sp := randSPD(5, 0.5, 3)
	x, res, err := SolveCG(sp, make([]float64, 5), CGOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for _, v := range x {
		if v != 0 {
			t.Errorf("x = %v, want zeros", x)
		}
	}
}

func TestSolveCGNonSPDDiagonal(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 0, -1}, {1, 1, 1}})
	if _, _, err := SolveCG(m, []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("expected error for nonpositive diagonal")
	}
}

func TestSolveCGLengthMismatch(t *testing.T) {
	m := randSPD(4, 0.5, 1)
	if _, _, err := SolveCG(m, []float64{1}, CGOptions{}); err == nil {
		t.Error("expected length error")
	}
}

func TestSolveCGLargeLaplacian(t *testing.T) {
	// 1-D Laplacian with Dirichlet ends: classic SPD test. Solution of
	// -u'' = 0 with u(0)=0, u(n+1)=1 is linear.
	n := 200
	var coords []Coord
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{i, i, 2})
		if i > 0 {
			coords = append(coords, Coord{i, i - 1, -1})
		}
		if i < n-1 {
			coords = append(coords, Coord{i, i + 1, -1})
		}
	}
	b[n-1] = 1 // boundary u(n+1)=1
	m := NewCSR(n, coords)
	x, res, err := SolveCG(m, b, CGOptions{MaxIter: 5000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := 0; i < n; i++ {
		want := float64(i+1) / float64(n+1)
		if math.Abs(x[i]-want) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}
