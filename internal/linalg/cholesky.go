package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a matrix
// that is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the factorization A = L*L^T of a symmetric positive-
// definite matrix, with the lower triangle L packed row-major into a full
// n x n buffer. The reduced conductance systems produced by nodal analysis
// are SPD by construction, and Cholesky factors them in half the flops of
// pivoted LU with no pivot bookkeeping — it is the dense fast path of the
// circuit solver.
//
// A Cholesky value is reusable: Factor overwrites the previous
// factorization in place, so a solver loop (transient co-simulation,
// calibration sweeps) pays the buffer allocation once.
type Cholesky struct {
	n int
	l []float64
}

// NewCholesky allocates a factorization workspace for n x n systems.
func NewCholesky(n int) *Cholesky {
	if n < 0 {
		panic("linalg: negative dimension")
	}
	return &Cholesky{n: n, l: make([]float64, n*n)}
}

// Factor computes the Cholesky factorization of the square SPD matrix a,
// reusing the receiver's buffers. Only the lower triangle of a is read, so
// a symmetric stamp-assembled matrix need not be exactly symmetric in its
// strict upper part. Returns ErrNotSPD if a pivot is not positive.
func (c *Cholesky) Factor(a *Dense) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if c.n != n {
		c.n = n
		c.l = make([]float64, n*n)
	}
	l := c.l
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*a.Cols+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
		// Zero the strict upper part so stale entries from a previous,
		// larger factorization never leak into debugging dumps.
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	return nil
}

// FactorCholesky is the allocating convenience wrapper around Factor.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	c := NewCholesky(a.Rows)
	if err := c.Factor(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Solve returns x with A*x = b using the precomputed factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A*x = b into x (len n) without allocating. x and b may
// alias.
func (c *Cholesky) SolveInto(x, b []float64) error {
	n := c.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: Cholesky SolveInto lengths %d/%d != %d", len(x), len(b), n)
	}
	if n == 0 {
		return nil
	}
	l := c.l
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward substitution: L*y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	// Back substitution: L^T*x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return nil
}
