package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a matrix
// that is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the factorization A = L*L^T of a symmetric positive-
// definite matrix, with the lower triangle L packed row-major into a full
// n x n buffer. The reduced conductance systems produced by nodal analysis
// are SPD by construction, and Cholesky factors them in half the flops of
// pivoted LU with no pivot bookkeeping — it is the dense fast path of the
// circuit solver.
//
// Factor is right-looking and cache-blocked with the fixed panel width
// denseBlock: each step factors one diagonal block with the textbook
// unblocked recurrence, solves the panel below it against L11^T, and folds
// the panel into the trailing matrix with the register-blocked rank-k
// kernel. The fixed block size makes the summation order — and therefore
// every bit of the factor — a pure function of the input.
//
// A Cholesky value is reusable: Factor overwrites the previous
// factorization in place, so a solver loop (transient co-simulation,
// calibration sweeps) pays the buffer allocation once.
type Cholesky struct {
	n int
	l []float64
}

// NewCholesky allocates a factorization workspace for n x n systems.
func NewCholesky(n int) *Cholesky {
	if n < 0 {
		panic("linalg: negative dimension")
	}
	return &Cholesky{n: n, l: make([]float64, n*n)}
}

// Factor computes the Cholesky factorization of the square SPD matrix a,
// reusing the receiver's buffers. Only the lower triangle of a is read, so
// a symmetric stamp-assembled matrix need not be exactly symmetric in its
// strict upper part. Returns ErrNotSPD if a pivot is not positive.
func (c *Cholesky) Factor(a *Dense) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if c.n != n || len(c.l) != n*n {
		c.n = n
		c.l = make([]float64, n*n)
	}
	l := c.l
	// Copy the lower triangle of a and zero the strict upper part, so stale
	// entries from a previous factorization never leak into debugging dumps
	// and the kernels may assume clean rows.
	for i := 0; i < n; i++ {
		copy(l[i*n:i*n+i+1], a.Data[i*a.Cols:i*a.Cols+i+1])
		for j := i + 1; j < n; j++ {
			l[i*n+j] = 0
		}
	}
	for k := 0; k < n; k += denseBlock {
		bs := denseBlock
		if k+bs > n {
			bs = n - k
		}
		// Factor the diagonal block A11 = L11*L11^T in place.
		if err := factorDiagBlock(l[k*n+k:], n, bs); err != nil {
			return err
		}
		if k+bs == n {
			break
		}
		// Panel solve: L21 = A21 * L11^-T, row by row (rows are contiguous).
		trsmRightLT(l[(k+bs)*n+k:], n, l[k*n+k:], n, n-k-bs, bs)
		// Trailing update: A22 -= L21*L21^T, lower triangle only.
		syrkSubLower(l[(k+bs)*n+(k+bs):], n, l[(k+bs)*n+k:], n, n-k-bs, bs)
	}
	return nil
}

// factorDiagBlock runs the unblocked Cholesky recurrence on the bs x bs
// block at the start of a, whose rows are ld apart.
func factorDiagBlock(a []float64, ld, bs int) error {
	for i := 0; i < bs; i++ {
		for j := 0; j <= i; j++ {
			s := a[i*ld+j]
			for k := 0; k < j; k++ {
				s -= a[i*ld+k] * a[j*ld+k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return ErrNotSPD
				}
				a[i*ld+i] = math.Sqrt(s)
			} else {
				a[i*ld+j] = s / a[j*ld+j]
			}
		}
	}
	return nil
}

// trsmRightLT solves X * L^T = B in place for the m x bs panel x (rows ld
// apart), with L the bs x bs lower-triangular block at l (rows ldl apart).
// Each panel row solves independently and contiguously: x[j] = (x[j] -
// sum_{t<j} x[t]*L[j,t]) / L[j,j].
func trsmRightLT(x []float64, ld int, l []float64, ldl int, m, bs int) {
	for i := 0; i < m; i++ {
		row := x[i*ld : i*ld+bs]
		for j := 0; j < bs; j++ {
			s := row[j]
			lr := l[j*ldl : j*ldl+j]
			for t, v := range lr {
				s -= row[t] * v
			}
			row[j] = s / l[j*ldl+j]
		}
	}
}

// FactorCholesky is the allocating convenience wrapper around Factor.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	c := NewCholesky(a.Rows)
	if err := c.Factor(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Solve returns x with A*x = b using the precomputed factorization.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	x := make([]float64, c.n)
	if err := c.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A*x = b into x (len n) without allocating. x and b may
// alias.
func (c *Cholesky) SolveInto(x, b []float64) error {
	n := c.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: Cholesky SolveInto lengths %d/%d != %d", len(x), len(b), n)
	}
	if n == 0 {
		return nil
	}
	l := c.l
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward substitution: L*y = b.
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	// Back substitution: L^T*x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return nil
}

// SolveBatchInto solves A*X = B for k right-hand sides at once. Both x and
// b are n x k row-major panels (row i holds element i of every system), so
// column j of the panel is right-hand side j; x and b may alias. The sweep
// is blocked: within each denseBlock row band the substitution runs the
// scalar recurrence across all k systems (contiguous panel rows), and the
// band's contribution to the rest of the panel is folded in with one
// register-blocked multiply — the factor is streamed once per band instead
// of once per right-hand side.
func (c *Cholesky) SolveBatchInto(x, b []float64, k int) error {
	n := c.n
	if k < 0 {
		return fmt.Errorf("linalg: SolveBatchInto negative batch %d", k)
	}
	if len(b) != n*k || len(x) != n*k {
		return fmt.Errorf("linalg: SolveBatchInto panel lengths %d/%d != %d", len(x), len(b), n*k)
	}
	if n == 0 || k == 0 {
		return nil
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	c.forwardBatch(x, k)
	c.backwardBatch(x, k)
	return nil
}

// ForwardBatchInto applies only the forward sweep: it solves L*Y = B for k
// right-hand sides, with x and b as in SolveBatchInto (they may alias).
// Exposing the half sweep lets callers that only need inner products
// against A^-1 — u^T A^-1 u = |L^-1 u|^2 — skip the transposed backward
// pass entirely.
func (c *Cholesky) ForwardBatchInto(x, b []float64, k int) error {
	n := c.n
	if k < 0 {
		return fmt.Errorf("linalg: ForwardBatchInto negative batch %d", k)
	}
	if len(b) != n*k || len(x) != n*k {
		return fmt.Errorf("linalg: ForwardBatchInto panel lengths %d/%d != %d", len(x), len(b), n*k)
	}
	if n == 0 || k == 0 {
		return nil
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	c.forwardBatch(x, k)
	return nil
}

// forwardBatch solves L*Y = X in place on the n x k panel x.
func (c *Cholesky) forwardBatch(x []float64, k int) {
	n := c.n
	l := c.l
	for kb := 0; kb < n; kb += denseBlock {
		bs := denseBlock
		if kb+bs > n {
			bs = n - kb
		}
		// In-band substitution across all k systems.
		for i := kb; i < kb+bs; i++ {
			row := x[i*k : i*k+k]
			for t := kb; t < i; t++ {
				subMulRow(row, x[t*k:t*k+k], l[i*n+t])
			}
			inv := 1 / l[i*n+i]
			for j := range row {
				row[j] *= inv
			}
		}
		// Fold the band into everything below it.
		if rem := n - kb - bs; rem > 0 {
			gemmSub(x[(kb+bs)*k:], k, l[(kb+bs)*n+kb:], n, x[kb*k:], k, rem, bs, k)
		}
	}
}

// backwardBatch solves L^T*X = Y in place on the n x k panel x.
func (c *Cholesky) backwardBatch(x []float64, k int) {
	n := c.n
	l := c.l
	first := ((n - 1) / denseBlock) * denseBlock
	for kb := first; kb >= 0; kb -= denseBlock {
		bs := denseBlock
		if kb+bs > n {
			bs = n - kb
		}
		// In-band substitution; the coefficient for row i against row t is
		// L[t,i] (transposed), but both panel rows stay contiguous.
		for i := kb + bs - 1; i >= kb; i-- {
			row := x[i*k : i*k+k]
			for t := i + 1; t < kb+bs; t++ {
				subMulRow(row, x[t*k:t*k+k], l[t*n+i])
			}
			inv := 1 / l[i*n+i]
			for j := range row {
				row[j] *= inv
			}
		}
		// Fold the band into everything above it: X[0:kb] -= L21^T * X[band].
		if kb > 0 {
			gemmSubT(x, k, l[kb*n:], n, x[kb*k:], k, kb, bs, k)
		}
	}
}
