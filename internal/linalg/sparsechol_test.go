package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// laplacianSystem builds a conductance-style SPD system on a random graph:
// a weighted graph Laplacian plus a small diagonal leak (the Gmin of the
// circuit stamps), returned both as CSR coords and as a Dense for the
// reference factorization.
func laplacianSystem(t *testing.T, n int, extraEdges int, seed int64) (*CSR, *Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var coords []Coord
	dense := NewDense(n, n)
	add := func(i, j int, g float64) {
		coords = append(coords,
			Coord{Row: i, Col: i, Val: g}, Coord{Row: j, Col: j, Val: g},
			Coord{Row: i, Col: j, Val: -g}, Coord{Row: j, Col: i, Val: -g})
		dense.Add(i, i, g)
		dense.Add(j, j, g)
		dense.Add(i, j, -g)
		dense.Add(j, i, -g)
	}
	// Path backbone keeps the graph connected; extra random chords create
	// irregular fill.
	for i := 0; i+1 < n; i++ {
		add(i, i+1, 0.5+rng.Float64())
	}
	for e := 0; e < extraEdges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			add(i, j, 0.1+rng.Float64())
		}
	}
	// A leak large enough to keep the test about factorization algebra, not
	// about near-singular conditioning (the realistically conditioned
	// systems are cross-validated at the xbar level).
	for i := 0; i < n; i++ {
		coords = append(coords, Coord{Row: i, Col: i, Val: 1e-6})
		dense.Add(i, i, 1e-6)
	}
	return NewCSR(n, coords), dense
}

func testOrders(n int, seed int64) map[string][]int {
	id := make([]int, n)
	rev := make([]int, n)
	shuf := make([]int, n)
	for i := 0; i < n; i++ {
		id[i], rev[i], shuf[i] = i, n-1-i, i
	}
	rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	return map[string][]int{"identity": id, "reverse": rev, "shuffled": shuf}
}

// TestSparseCholeskyMatchesDense checks the full solve against the dense
// Cholesky on random conductance systems under several orderings — any
// permutation must be numerically correct, only fill varies.
func TestSparseCholeskyMatchesDense(t *testing.T) {
	for _, n := range []int{1, 2, 7, 60, 153} {
		m, dense := laplacianSystem(t, n, n/2, int64(1000+n))
		ref, err := FactorCholesky(dense)
		if err != nil {
			t.Fatalf("n=%d: dense factor: %v", n, err)
		}
		for name, ord := range testOrders(n, int64(n)) {
			sc, err := FactorSparse(m, ord)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
			rng := rand.New(rand.NewSource(int64(7 * n)))
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want := make([]float64, n)
			got := make([]float64, n)
			if err := ref.SolveInto(want, b); err != nil {
				t.Fatal(err)
			}
			if err := sc.SolveInto(got, b); err != nil {
				t.Fatal(err)
			}
			// The leak-regularized Laplacian conditions like the real
			// conductance systems (~1e9), so different summation orders
			// legitimately differ at ~1e-7 relative.
			norm := 1.0
			for i := range want {
				if a := math.Abs(want[i]); a > norm {
					norm = a
				}
			}
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > 1e-6*norm {
					t.Fatalf("n=%d %s: x[%d] = %g, dense %g (diff %g)", n, name, i, got[i], want[i], d)
				}
			}
			if sc.Depth() < 1 || sc.Supernodes() < 1 || sc.FillNNZ() < int64(n) {
				t.Fatalf("n=%d %s: implausible stats depth=%d sn=%d nnz=%d",
					n, name, sc.Depth(), sc.Supernodes(), sc.FillNNZ())
			}
		}
	}
}

// TestForwardProbeDots checks that probe solves restricted to their
// supernodal support reproduce the dense bilinear forms u^T A^-1 v for
// sparse u, v — the exact quantity the Green tables are built from.
func TestForwardProbeDots(t *testing.T) {
	const n = 120
	m, dense := laplacianSystem(t, n, 40, 42)
	ref, err := FactorCholesky(dense)
	if err != nil {
		t.Fatal(err)
	}
	for name, ord := range testOrders(n, 5) {
		sc, err := FactorSparse(m, ord)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ws := sc.NewProbeWorkspace()
		rng := rand.New(rand.NewSource(99))
		type probe struct {
			idx  []int
			coef []float64
		}
		probes := make([]probe, 24)
		vecs := make([]ProbeVec, len(probes))
		for q := range probes {
			switch q % 3 {
			case 0: // single
				probes[q] = probe{[]int{rng.Intn(n)}, []float64{1}}
			case 1: // pair difference
				a, b := rng.Intn(n), rng.Intn(n)
				for b == a {
					b = rng.Intn(n)
				}
				probes[q] = probe{[]int{a, b}, []float64{1, -1}}
			default: // weighted triple
				probes[q] = probe{
					[]int{rng.Intn(n), rng.Intn(n), rng.Intn(n)},
					[]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
				}
			}
			pv, err := sc.ForwardProbe(ws, probes[q].idx, probes[q].coef)
			if err != nil {
				t.Fatalf("%s: probe %d: %v", name, q, err)
			}
			vecs[q] = pv
		}
		rhs := make([]float64, n)
		sol := make([]float64, n)
		for a := range probes {
			for i := range rhs {
				rhs[i] = 0
			}
			for x, o := range probes[a].idx {
				rhs[o] += probes[a].coef[x]
			}
			if err := ref.SolveInto(sol, rhs); err != nil {
				t.Fatal(err)
			}
			for b := a; b < len(probes); b++ {
				want := 0.0
				for x, o := range probes[b].idx {
					want += probes[b].coef[x] * sol[o]
				}
				got := ProbeDot(vecs[a], vecs[b])
				scale := math.Abs(want) + 1e-6
				if d := math.Abs(got - want); d > 1e-6*scale {
					t.Fatalf("%s: dot(%d,%d) = %g, dense %g", name, a, b, got, want)
				}
			}
		}
	}
}

// TestForwardProbeWorkspaceReuse: consecutive probes through one workspace
// must not contaminate each other (the scratch vector is reset by support).
func TestForwardProbeWorkspaceReuse(t *testing.T) {
	const n = 80
	m, _ := laplacianSystem(t, n, 30, 7)
	ord := testOrders(n, 3)["shuffled"]
	sc, err := FactorSparse(m, ord)
	if err != nil {
		t.Fatal(err)
	}
	ws1 := sc.NewProbeWorkspace()
	ws2 := sc.NewProbeWorkspace()
	first, err := sc.ForwardProbe(ws1, []int{3, 70}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated probes through ws1, then repeat the first probe:
	// fresh-workspace and reused-workspace results must agree bit for bit.
	for q := 0; q < 5; q++ {
		if _, err := sc.ForwardProbe(ws1, []int{q * 7}, []float64{2.5}); err != nil {
			t.Fatal(err)
		}
	}
	again, err := sc.ForwardProbe(ws1, []int{3, 70}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sc.ForwardProbe(ws2, []int{3, 70}, []float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []ProbeVec{again, fresh} {
		if len(other.Val) != len(first.Val) {
			t.Fatalf("support changed: %d vs %d", len(other.Val), len(first.Val))
		}
		for i := range first.Val {
			if other.Val[i] != first.Val[i] {
				t.Fatalf("probe not deterministic at %d: %g vs %g", i, other.Val[i], first.Val[i])
			}
		}
	}
}

// TestFactorSparseErrors pins the error paths: bad orders and indefinite
// matrices must fail loudly, not corrupt memory.
func TestFactorSparseErrors(t *testing.T) {
	m, _ := laplacianSystem(t, 10, 3, 1)
	if _, err := FactorSparse(m, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	bad := []int{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := FactorSparse(m, bad); err == nil {
		t.Error("non-permutation accepted")
	}
	// An indefinite matrix: off-diagonal dominates.
	var coords []Coord
	coords = append(coords,
		Coord{Row: 0, Col: 0, Val: 1}, Coord{Row: 1, Col: 1, Val: 1},
		Coord{Row: 0, Col: 1, Val: -5}, Coord{Row: 1, Col: 0, Val: -5})
	ind := NewCSR(2, coords)
	if _, err := FactorSparse(ind, []int{0, 1}); err == nil {
		t.Error("indefinite matrix factored without error")
	}
}
