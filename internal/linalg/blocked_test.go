package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// refCholesky is the textbook unblocked recurrence the blocked Factor must
// agree with (up to roundoff): the pre-blocking reference implementation,
// kept here so the property tests never drift with the production kernel.
func refCholesky(a *Dense) ([]float64, error) {
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*a.Cols+j]
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return l, nil
}

// randSPD builds a random SPD matrix as B*B^T + n*I, which is symmetric
// positive definite for any B.
func randSPDDense(n int, rng *rand.Rand) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = 2*rng.Float64() - 1
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b.Data[i*n+k] * b.Data[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			a.Data[i*n+j] = s
			a.Data[j*n+i] = s
		}
	}
	return a
}

func randPanel(n, k int, rng *rand.Rand) []float64 {
	p := make([]float64, n*k)
	for i := range p {
		p[i] = 10 * (2*rng.Float64() - 1)
	}
	return p
}

// Dimensions straddling the block-size boundaries: below one block, exact
// multiples, one over, and a few blocks plus a ragged tail.
var blockedSizes = []int{1, 2, 3, 7, denseBlock - 1, denseBlock, denseBlock + 1,
	2*denseBlock + 5, 3 * denseBlock}

func TestBlockedCholeskyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range blockedSizes {
		a := randSPDDense(n, rng)
		ref, err := refCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: blocked: %v", n, err)
		}
		scale := 0.0
		for i := 0; i < n; i++ {
			if d := math.Abs(ref[i*n+i]); d > scale {
				scale = d
			}
		}
		for i := range ref {
			if d := math.Abs(c.l[i] - ref[i]); d > 1e-9*scale {
				t.Fatalf("n=%d: factor entry %d differs: blocked %v ref %v",
					n, i, c.l[i], ref[i])
			}
		}
		// Strict upper triangle must stay zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if c.l[i*n+j] != 0 {
					t.Fatalf("n=%d: upper entry (%d,%d) = %v", n, i, j, c.l[i*n+j])
				}
			}
		}
	}
}

func TestBlockedCholeskyNotSPD(t *testing.T) {
	n := denseBlock + 3
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] = 1
	}
	// A negative pivot in the second block must surface as ErrNotSPD.
	a.Data[(denseBlock+1)*n+(denseBlock+1)] = -1
	if _, err := FactorCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskySolveBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range blockedSizes {
		for _, k := range []int{1, 2, 5, 17} {
			a := randSPDDense(n, rng)
			c, err := FactorCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			b := randPanel(n, k, rng)
			x := make([]float64, n*k)
			if err := c.SolveBatchInto(x, b, k); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			// Each panel column must match the single-RHS solver on the
			// corresponding right-hand side.
			col := make([]float64, n)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					col[i] = b[i*k+j]
				}
				want, err := c.Solve(col)
				if err != nil {
					t.Fatalf("n=%d k=%d col %d: %v", n, k, j, err)
				}
				for i := 0; i < n; i++ {
					got := x[i*k+j]
					if d := math.Abs(got - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
						t.Fatalf("n=%d k=%d: x[%d][%d] = %v, single-RHS %v",
							n, k, i, j, got, want[i])
					}
				}
			}
			// Aliased in-place solve must produce identical bits.
			inPlace := append([]float64(nil), b...)
			if err := c.SolveBatchInto(inPlace, inPlace, k); err != nil {
				t.Fatalf("n=%d k=%d aliased: %v", n, k, err)
			}
			for i := range x {
				if x[i] != inPlace[i] {
					t.Fatalf("n=%d k=%d: aliased solve differs at %d", n, k, i)
				}
			}
		}
	}
}

func TestCholeskyForwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, n := range blockedSizes {
		k := 9
		a := randSPDDense(n, rng)
		c, err := FactorCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := randPanel(n, k, rng)
		y := make([]float64, n*k)
		if err := c.ForwardBatchInto(y, b, k); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Check L*y = b column by column against the stored factor.
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for t := 0; t <= i; t++ {
					s += c.l[i*n+t] * y[t*k+j]
				}
				if d := math.Abs(s - b[i*k+j]); d > 1e-8*(1+math.Abs(b[i*k+j])) {
					t.Fatalf("n=%d: (L*y)[%d][%d] = %v, b %v", n, i, j, s, b[i*k+j])
				}
			}
		}
		// The forward sweep also gives u^T A^-1 u = |L^-1 u|^2; verify the
		// identity against a full solve for one column.
		u := make([]float64, n)
		for i := 0; i < n; i++ {
			u[i] = b[i*k]
		}
		z, err := c.Solve(u)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := Dot(u, z)
		got := 0.0
		for i := 0; i < n; i++ {
			got += y[i*k] * y[i*k]
		}
		if d := math.Abs(got - want); d > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("n=%d: |L^-1 u|^2 = %v, u^T A^-1 u = %v", n, got, want)
		}
	}
}

func TestLUSolveBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range blockedSizes {
		for _, k := range []int{1, 3, 11} {
			// General nonsymmetric system so the pivoting actually permutes.
			a := NewDense(n, n)
			for i := range a.Data {
				a.Data[i] = 2*rng.Float64() - 1
			}
			for i := 0; i < n; i++ {
				a.Data[i*n+i] += float64(n)
			}
			f, err := Factor(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			b := randPanel(n, k, rng)
			x := make([]float64, n*k)
			if err := f.SolveBatchInto(x, b, k); err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			col := make([]float64, n)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					col[i] = b[i*k+j]
				}
				want, err := f.Solve(col)
				if err != nil {
					t.Fatalf("n=%d k=%d col %d: %v", n, k, j, err)
				}
				for i := 0; i < n; i++ {
					got := x[i*k+j]
					if d := math.Abs(got - want[i]); d > 1e-8*(1+math.Abs(want[i])) {
						t.Fatalf("n=%d k=%d: x[%d][%d] = %v, single-RHS %v",
							n, k, i, j, got, want[i])
					}
				}
			}
			// In-place (aliased) batch solve exercises the cycle-following
			// permutation and must agree bit-for-bit.
			inPlace := append([]float64(nil), b...)
			if err := f.SolveBatchInto(inPlace, inPlace, k); err != nil {
				t.Fatalf("n=%d k=%d aliased: %v", n, k, err)
			}
			for i := range x {
				if x[i] != inPlace[i] {
					t.Fatalf("n=%d k=%d: aliased solve differs at %d", n, k, i)
				}
			}
		}
	}
}

func TestLUSolveBatchSingular(t *testing.T) {
	n := 4
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] = 1
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f.lu[2*n+2] = 0 // corrupt a pivot to simulate a singular factor
	b := make([]float64, n*3)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := append([]float64(nil), b...)
	if err := f.SolveBatchInto(x, x, 3); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// The early singularity check must leave an aliased panel untouched.
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("panel modified at %d despite singular factor", i)
		}
	}
}

func BenchmarkCholeskyFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSPDDense(512, rng)
	c := NewCholesky(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolveBatch(b *testing.B) {
	const n, k = 512, 64
	rng := rand.New(rand.NewSource(2))
	a := randSPDDense(n, rng)
	c, err := FactorCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := randPanel(n, k, rng)
	x := make([]float64, n*k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SolveBatchInto(x, rhs, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolveSequential(b *testing.B) {
	const n, k = 512, 64
	rng := rand.New(rand.NewSource(2))
	a := randSPDDense(n, rng)
	c, err := FactorCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := randPanel(n, k, rng)
	col := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < k; j++ {
			for r := 0; r < n; r++ {
				col[r] = rhs[r*k+j]
			}
			if err := c.SolveInto(col, col); err != nil {
				b.Fatal(err)
			}
		}
	}
}
