package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Diagonal dominance keeps the random systems well conditioned.
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

func TestSolveDenseKnown(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5].
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveDense(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveDenseResidual(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 100} {
		a := randMatrix(n, int64(n))
		rng := rand.New(rand.NewSource(int64(n) + 1000))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		if res := Norm2(r); res > 1e-9 {
			t.Errorf("n=%d: residual %g", n, res)
		}
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	// Row 2 all zeros.
	if _, err := Factor(a); err == nil {
		t.Error("expected singular error")
	}
	// Duplicate rows.
	b := NewDense(2, 2)
	b.Set(0, 0, 1)
	b.Set(0, 1, 2)
	b.Set(1, 0, 1)
	b.Set(1, 1, 2)
	if _, err := Factor(b); err == nil {
		t.Error("expected singular error for dependent rows")
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewDense(2, 3)); err == nil {
		t.Error("expected error for non-square matrix")
	}
}

func TestDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-10) > 1e-12 {
		t.Errorf("det = %g, want 10", d)
	}
	// Determinant sign flips when rows are swapped.
	b := NewDense(2, 2)
	b.Set(0, 0, 2)
	b.Set(0, 1, 4)
	b.Set(1, 0, 3)
	b.Set(1, 1, 1)
	g, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Det(); math.Abs(d+10) > 1e-12 {
		t.Errorf("det = %g, want -10", d)
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero in leading position forces a pivot; the solve must still work.
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveDense(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveWrongLength(t *testing.T) {
	f, err := Factor(randMatrix(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestSolveLinearityQuick(t *testing.T) {
	// Solving is linear: solve(b1) + solve(b2) == solve(b1+b2).
	a := randMatrix(8, 99)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b1 := make([]float64, 8)
		b2 := make([]float64, 8)
		bs := make([]float64, 8)
		for i := range b1 {
			b1[i] = rng.NormFloat64()
			b2[i] = rng.NormFloat64()
			bs[i] = b1[i] + b2[i]
		}
		x1, _ := f.Solve(b1)
		x2, _ := f.Solve(b2)
		xs, _ := f.Solve(bs)
		for i := range xs {
			if math.Abs(xs[i]-x1[i]-x2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVecMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDense(2, 2).MulVec([]float64{1})
}
