package mem

import (
	"testing"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	return mustCache(t, CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, LatencyCycle: 4})
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 1024, Ways: 3, LineBytes: 64}, // 1024/(3*64) not integral
		{SizeBytes: 1536, Ways: 2, LineBytes: 64}, // 12 sets, not power of two
		{SizeBytes: 1024, Ways: 2, LineBytes: 48}, // line not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := small(t)
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Error("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := small(t)                                   // 8 sets, 2 ways; set stride = 64*8 = 512
	a, b, d := uint64(0), uint64(512), uint64(1024) // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if r := c.Access(a, false); !r.Hit {
		t.Error("a evicted despite being MRU")
	}
	if r := c.Access(b, false); r.Hit {
		t.Error("b should have been evicted")
	}
}

func TestCacheWriteback(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // evicts line 0 (dirty)
	if !r.Writeback || r.WBAddr != 0 {
		t.Errorf("expected writeback of addr 0, got %+v", r)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
}

func TestCacheFlush(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	if n := c.DirtyLines(); n != 2 {
		t.Errorf("dirty = %d, want 2", n)
	}
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Errorf("flushed %d lines, want 2", len(dirty))
	}
	if n := c.DirtyLines(); n != 0 {
		t.Errorf("dirty after flush = %d", n)
	}
	if r := c.Access(0, false); r.Hit {
		t.Error("flush did not invalidate")
	}
}

func TestMissRate(t *testing.T) {
	c := small(t)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate nonzero")
	}
	c.Access(0, false)
	c.Access(0, false)
	if mr := c.MissRate(); mr != 0.5 {
		t.Errorf("miss rate %g, want 0.5", mr)
	}
}

func TestNVMMBankConflicts(t *testing.T) {
	m, err := NewNVMM(DefaultNVMMConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two reads to the same bank serialize.
	d1 := m.Read(0, 0)
	d2 := m.Read(1<<20, 0) // different row, same bank 0 (RowBytes*Banks stride)
	if d2 <= d1 {
		t.Errorf("same-bank reads did not serialize: %d then %d", d1, d2)
	}
	// Reads to different banks proceed in parallel.
	m2, _ := NewNVMM(DefaultNVMMConfig(), nil)
	a := m2.Read(0, 0)
	b := m2.Read(4096, 0) // next bank
	if b > a+m2.cfg.RowMissCycles {
		t.Errorf("different banks serialized: %d vs %d", a, b)
	}
}

func TestNVMMRowBufferHit(t *testing.T) {
	m, _ := NewNVMM(DefaultNVMMConfig(), nil)
	d1 := m.Read(0, 0)
	d2 := m.Read(64, d1) // same row
	if d2-d1 != m.cfg.RowHitCycles {
		t.Errorf("row hit latency %d, want %d", d2-d1, m.cfg.RowHitCycles)
	}
	if m.RowHits != 1 {
		t.Errorf("row hits = %d", m.RowHits)
	}
}

func TestNVMMInvalidConfig(t *testing.T) {
	cfg := DefaultNVMMConfig()
	cfg.Banks = 0
	if _, err := NewNVMM(cfg, nil); err == nil {
		t.Error("expected config error")
	}
}

// fakeEngine counts calls and adds fixed delays.
type fakeEngine struct {
	readDelay, writeDelay uint64
	reads, writes, ticks  int
}

func (f *fakeEngine) Name() string                                { return "fake" }
func (f *fakeEngine) ReadDelay(addr, now uint64) (uint64, uint64) { f.reads++; return f.readDelay, 0 }
func (f *fakeEngine) WriteDelay(addr, now uint64) uint64          { f.writes++; return f.writeDelay }
func (f *fakeEngine) Tick(now uint64)                             { f.ticks++ }
func (f *fakeEngine) EncryptedFraction() float64                  { return 1 }
func (f *fakeEngine) PowerDown(now uint64) uint64                 { return 100 }

func TestNVMMEngineHook(t *testing.T) {
	eng := &fakeEngine{readDelay: 80, writeDelay: 80}
	m, _ := NewNVMM(DefaultNVMMConfig(), eng)
	base, _ := NewNVMM(DefaultNVMMConfig(), nil)
	dEnc := m.Read(0, 0)
	dPlain := base.Read(0, 0)
	if dEnc-dPlain != 80 {
		t.Errorf("engine read delay %d, want 80", dEnc-dPlain)
	}
	m.Write(64, dEnc)
	if eng.writes != 1 {
		t.Errorf("engine writes = %d", eng.writes)
	}
	m.Tick(100)
	if eng.ticks != 1 {
		t.Errorf("ticks = %d", eng.ticks)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := DefaultHierarchy(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cold load goes to memory.
	cold := h.LoadLatency(0x10000, 0)
	if cold < 4+16+120 {
		t.Errorf("cold load latency %d too small", cold)
	}
	// Warm load hits L1.
	warm := h.LoadLatency(0x10000, cold)
	if warm != 4 {
		t.Errorf("L1 hit latency %d, want 4", warm)
	}
	// L2 hit: evict from L1 by filling its set, then re-access.
	// L1D: 32KB/8way/64B = 64 sets; set stride = 64*64 = 4096.
	for i := 1; i <= 8; i++ {
		h.LoadLatency(0x10000+uint64(i)*4096, 0)
	}
	l2hit := h.LoadLatency(0x10000, 0)
	if l2hit != 4+16 {
		t.Errorf("L2 hit latency %d, want 20", l2hit)
	}
}

func TestHierarchyFetch(t *testing.T) {
	h, _ := DefaultHierarchy(nil)
	cold := h.FetchLatency(0x400000, 0)
	if cold <= 20 {
		t.Errorf("cold fetch latency %d too small", cold)
	}
	warm := h.FetchLatency(0x400000, cold)
	if warm != 4 {
		t.Errorf("warm fetch latency %d, want 4", warm)
	}
}

func TestHierarchyPowerDown(t *testing.T) {
	eng := &fakeEngine{}
	h, _ := DefaultHierarchy(eng)
	for i := 0; i < 32; i++ {
		h.StoreAccess(uint64(i)*64, 0)
	}
	dirty, cycles := h.PowerDown(1000)
	if dirty == 0 {
		t.Error("no dirty lines flushed")
	}
	if cycles < 100 { // must at least include the engine's PowerDown time
		t.Errorf("power-down cycles %d too small", cycles)
	}
	if h.L1D.DirtyLines() != 0 || h.L2.DirtyLines() != 0 {
		t.Error("dirty lines remain after power-down")
	}
}

func TestStoreAccessDirtiesL1(t *testing.T) {
	h, _ := DefaultHierarchy(nil)
	h.StoreAccess(0x2000, 0)
	if h.L1D.DirtyLines() != 1 {
		t.Errorf("dirty lines = %d, want 1", h.L1D.DirtyLines())
	}
	// Write-allocate: the subsequent load hits.
	if lat := h.LoadLatency(0x2000, 100); lat != 4 {
		t.Errorf("load after store latency %d, want 4", lat)
	}
}
