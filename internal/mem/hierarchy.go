package mem

import "fmt"

// EncryptionEngine is the hook an NVMM encryption scheme installs at the
// memory interface (package secure implements the paper's five schemes).
// All times are CPU cycles.
type EncryptionEngine interface {
	Name() string
	// ReadDelay returns the extra read-path latency for the block at addr
	// (data: cycles added before the data reaches the core; busy: further
	// cycles the bank stays occupied, e.g. an immediate re-encryption that
	// overlaps with returning the data) and lets the engine update its
	// state (e.g. mark the block decrypted).
	ReadDelay(addr uint64, now uint64) (data, busy uint64)
	// WriteDelay returns the extra latency a block write adds to bank
	// occupancy (encryption after the write phase).
	WriteDelay(addr uint64, now uint64) uint64
	// Tick lets the engine do background work (inert-page walkers,
	// re-encryption timers).
	Tick(now uint64)
	// EncryptedFraction reports the fraction of touched memory currently
	// held in ciphertext.
	EncryptedFraction() float64
	// PowerDown flushes engine state at power-off and returns the time
	// (in cycles) needed to secure all remaining plaintext.
	PowerDown(now uint64) uint64
}

// NVMMConfig times the main memory (Section 7: single-rank 800 MHz, 2 GB,
// 8 devices; the CPU runs at 3.2 GHz so one memory cycle is 4 CPU cycles).
type NVMMConfig struct {
	Banks          int
	RowHitCycles   uint64 // CPU cycles for a row-buffer hit
	RowMissCycles  uint64 // CPU cycles for a row activation + access
	RowBytes       uint64 // row-buffer reach per bank
	CPUPerMemCycle uint64
}

// DefaultNVMMConfig mirrors the paper's platform.
func DefaultNVMMConfig() NVMMConfig {
	return NVMMConfig{
		Banks:          8,
		RowHitCycles:   200, // ~60 ns memristor row-buffer read at 3.2 GHz
		RowMissCycles:  480, // ~150 ns array read: NVMM is slower than DRAM
		RowBytes:       4096,
		CPUPerMemCycle: 4,
	}
}

// AccessSink observes the NVMM's block access stream (the timing model
// carries addresses, not data). A functional shadow (internal/sim) uses it
// to drive a real sharded SPECU with the simulated miss stream, so the
// cycle-level experiments double as end-to-end crypto verification.
type AccessSink interface {
	OnRead(addr, now uint64)
	OnWrite(addr, now uint64)
}

// NVMM is the banked main-memory timing model with an encryption engine at
// its interface.
type NVMM struct {
	cfg      NVMMConfig
	engine   EncryptionEngine
	sink     AccessSink
	bankBusy []uint64 // cycle until which each bank is busy
	openRow  []uint64

	Reads, Writes, RowHits uint64
}

// SetSink installs an access-stream observer (nil detaches). The sink is
// called synchronously from Read/Write, after timing is accounted.
func (m *NVMM) SetSink(s AccessSink) { m.sink = s }

// NewNVMM builds the memory model. engine may be nil (plaintext NVMM).
func NewNVMM(cfg NVMMConfig, engine EncryptionEngine) (*NVMM, error) {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 || cfg.RowHitCycles == 0 || cfg.RowMissCycles < cfg.RowHitCycles {
		return nil, fmt.Errorf("mem: invalid NVMM config %+v", cfg)
	}
	m := &NVMM{
		cfg:      cfg,
		engine:   engine,
		bankBusy: make([]uint64, cfg.Banks),
		openRow:  make([]uint64, cfg.Banks),
	}
	for i := range m.openRow {
		m.openRow[i] = ^uint64(0) // no row open
	}
	return m, nil
}

func (m *NVMM) bank(addr uint64) int {
	return int(addr / m.cfg.RowBytes % uint64(m.cfg.Banks))
}

func (m *NVMM) row(addr uint64) uint64 {
	return addr / (m.cfg.RowBytes * uint64(m.cfg.Banks))
}

// Read returns the cycle at which the block's data is available, modelling
// bank conflicts, row-buffer locality and the encryption engine's read
// path.
func (m *NVMM) Read(addr uint64, now uint64) uint64 {
	m.Reads++
	b := m.bank(addr)
	start := now
	if m.bankBusy[b] > start {
		start = m.bankBusy[b]
	}
	lat := m.cfg.RowMissCycles
	if m.openRow[b] == m.row(addr) {
		lat = m.cfg.RowHitCycles
		m.RowHits++
	}
	m.openRow[b] = m.row(addr)
	var busy uint64
	if m.engine != nil {
		var data uint64
		data, busy = m.engine.ReadDelay(addr, start)
		lat += data
	}
	done := start + lat
	m.bankBusy[b] = done + busy
	if m.sink != nil {
		m.sink.OnRead(addr, now)
	}
	return done
}

// Write schedules a block write (posted: the caller does not wait, but the
// bank is occupied; encryption-phase latency extends the occupancy).
func (m *NVMM) Write(addr uint64, now uint64) {
	m.Writes++
	b := m.bank(addr)
	start := now
	if m.bankBusy[b] > start {
		start = m.bankBusy[b]
	}
	lat := m.cfg.RowMissCycles
	if m.openRow[b] == m.row(addr) {
		lat = m.cfg.RowHitCycles
		m.RowHits++
	}
	m.openRow[b] = m.row(addr)
	if m.engine != nil {
		lat += m.engine.WriteDelay(addr, start)
	}
	m.bankBusy[b] = start + lat
	if m.sink != nil {
		m.sink.OnWrite(addr, now)
	}
}

// Tick forwards background time to the engine.
func (m *NVMM) Tick(now uint64) {
	if m.engine != nil {
		m.engine.Tick(now)
	}
}

// Engine exposes the installed encryption engine (may be nil).
func (m *NVMM) Engine() EncryptionEngine { return m.engine }

// Hierarchy bundles L1I, L1D, the shared L2 and the NVMM.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	Mem          *NVMM
}

// DefaultHierarchy builds the Section 7 platform around the given engine.
func DefaultHierarchy(engine EncryptionEngine) (*Hierarchy, error) {
	l1i, err := NewCache(CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 4})
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(CacheConfig{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, LatencyCycle: 4})
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(CacheConfig{SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, LatencyCycle: 16})
	if err != nil {
		return nil, err
	}
	nvmm, err := NewNVMM(DefaultNVMMConfig(), engine)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Mem: nvmm}, nil
}

// LoadLatency walks a data read through the hierarchy and returns the
// cycle count until the data arrives at the core.
func (h *Hierarchy) LoadLatency(addr uint64, now uint64) uint64 {
	lat := uint64(h.L1D.Latency())
	r1 := h.L1D.Access(addr, false)
	if r1.Hit {
		return lat
	}
	if r1.Writeback {
		h.l2WriteBack(r1.WBAddr, now)
	}
	lat += uint64(h.L2.Latency())
	r2 := h.L2.Access(addr, false)
	if r2.Hit {
		return lat
	}
	if r2.Writeback {
		h.Mem.Write(r2.WBAddr, now+lat)
	}
	done := h.Mem.Read(addr, now+lat)
	return done - now
}

// StoreAccess records a data write (write-allocate). Returns the latency
// to ownership; the store itself retires through the store buffer.
func (h *Hierarchy) StoreAccess(addr uint64, now uint64) uint64 {
	lat := uint64(h.L1D.Latency())
	r1 := h.L1D.Access(addr, true)
	if r1.Hit {
		return lat
	}
	if r1.Writeback {
		h.l2WriteBack(r1.WBAddr, now)
	}
	lat += uint64(h.L2.Latency())
	r2 := h.L2.Access(addr, false) // allocate clean in L2; dirt lives in L1D
	if r2.Hit {
		return lat
	}
	if r2.Writeback {
		h.Mem.Write(r2.WBAddr, now+lat)
	}
	done := h.Mem.Read(addr, now+lat) // fetch-for-ownership
	return done - now
}

// l2WriteBack pushes a dirty L1 line into L2, spilling to memory if L2
// evicts a dirty victim.
func (h *Hierarchy) l2WriteBack(addr uint64, now uint64) {
	r := h.L2.Access(addr, true)
	if !r.Hit && r.Writeback {
		h.Mem.Write(r.WBAddr, now)
	}
}

// FetchLatency walks an instruction fetch through L1I and the shared L2.
func (h *Hierarchy) FetchLatency(pc uint64, now uint64) uint64 {
	lat := uint64(h.L1I.Latency())
	r1 := h.L1I.Access(pc, false)
	if r1.Hit {
		return lat
	}
	lat += uint64(h.L2.Latency())
	r2 := h.L2.Access(pc, false)
	if r2.Hit {
		return lat
	}
	if r2.Writeback {
		h.Mem.Write(r2.WBAddr, now+lat)
	}
	done := h.Mem.Read(pc, now+lat)
	return done - now
}

// PowerDown models Section 6.4: flush all dirty cache lines to the NVMM
// and let the engine secure the remainder. It returns the number of dirty
// lines flushed and the total time in cycles the flush+encrypt takes.
func (h *Hierarchy) PowerDown(now uint64) (dirtyLines int, cycles uint64) {
	var last uint64 = now
	for _, c := range []*Cache{h.L1D, h.L2} {
		for _, addr := range c.Flush() {
			dirtyLines++
			h.Mem.Write(addr, now)
		}
	}
	for _, busy := range h.Mem.bankBusy {
		if busy > last {
			last = busy
		}
	}
	if h.Mem.engine != nil {
		last += h.Mem.engine.PowerDown(last)
	}
	return dirtyLines, last - now
}
