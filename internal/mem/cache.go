// Package mem models the memory hierarchy of the evaluation platform
// (Section 7): split 32 KB 8-way L1 instruction/data caches with 4-cycle
// latency, a shared 2 MB 16-way L2 with 16-cycle latency, 64-byte lines,
// LRU replacement, write-back/write-allocate policy, and a banked
// memristor NVMM behind a memory controller. An encryption engine hooks
// the NVMM interface and adds scheme-specific latency (package secure).
package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeBytes    int
	Ways         int
	LineBytes    int
	LatencyCycle int
}

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: nonpositive cache geometry %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: size %d not divisible by ways*line", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d not a power of two", sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp
}

// Cache is one set-associative write-back cache level.
type Cache struct {
	cfg     CacheConfig
	sets    [][]line
	setMask uint64
	shift   uint
	stamp   uint64

	Hits, Misses, Writebacks uint64
}

// NewCache builds a cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nsets - 1), shift: shift}, nil
}

// Latency returns the access latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycle }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// AccessResult describes one cache access.
type AccessResult struct {
	Hit       bool
	Writeback bool   // a dirty victim was evicted
	WBAddr    uint64 // line address of the written-back victim
}

// Access looks up addr, allocating on miss (write-allocate). write marks
// the line dirty. The result reports a dirty eviction if one occurred.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.stamp++
	setIdx := (addr >> c.shift) & c.setMask
	tag := addr >> c.shift
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Hits++
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Misses++
	// Choose victim: invalid first, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = true
		res.WBAddr = set[victim].tag << c.shift
		c.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return res
}

// Flush returns the addresses of all dirty lines and clears the cache —
// the power-down writeback of Section 6.4.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				dirty = append(dirty, l.tag<<c.shift)
			}
			*l = line{}
		}
	}
	return dirty
}

// DirtyLines counts dirty lines currently resident.
func (c *Cache) DirtyLines() int {
	n := 0
	for si := range c.sets {
		for _, l := range c.sets[si] {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

// MissRate returns misses/(hits+misses).
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
