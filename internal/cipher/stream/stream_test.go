package stream

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func newTestCipher(t *testing.T) *Cipher {
	t.Helper()
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*37 + 11)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewKeySize(t *testing.T) {
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("expected key size error")
	}
	if _, err := New(make([]byte, 16)); err != nil {
		t.Error(err)
	}
}

func TestXORRoundTrip(t *testing.T) {
	c := newTestCipher(t)
	f := func(data []byte, nonce uint64) bool {
		ct := make([]byte, len(data))
		if err := c.XOR(ct, data, nonce); err != nil {
			return false
		}
		back := make([]byte, len(data))
		if err := c.XOR(back, ct, nonce); err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestXORChangesData(t *testing.T) {
	c := newTestCipher(t)
	src := make([]byte, 64)
	ct := make([]byte, 64)
	if err := c.XOR(ct, src, 42); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, src) {
		t.Error("keystream is all zero")
	}
}

func TestXORShortDst(t *testing.T) {
	c := newTestCipher(t)
	if err := c.XOR(make([]byte, 3), make([]byte, 4), 0); err == nil {
		t.Error("expected dst length error")
	}
}

func TestNonceSeparation(t *testing.T) {
	// Different block addresses must get different keystreams.
	c := newTestCipher(t)
	k1 := c.Keystream(1, 64)
	k2 := c.Keystream(2, 64)
	if bytes.Equal(k1, k2) {
		t.Error("adjacent nonces share keystream")
	}
	// Same nonce reproduces the same stream.
	if !bytes.Equal(k1, c.Keystream(1, 64)) {
		t.Error("keystream not deterministic")
	}
}

func TestKeySeparation(t *testing.T) {
	k1 := make([]byte, KeySize)
	k2 := make([]byte, KeySize)
	k2[0] = 1
	c1, _ := New(k1)
	c2, _ := New(k2)
	if bytes.Equal(c1.Keystream(0, 64), c2.Keystream(0, 64)) {
		t.Error("different keys share keystream")
	}
}

func TestKeystreamBalance(t *testing.T) {
	c := newTestCipher(t)
	ks := c.Keystream(7, 1<<14)
	ones := 0
	for _, b := range ks {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(len(ks)*8)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("keystream ones fraction %g", frac)
	}
}

func TestGeffeCorrelationWeakness(t *testing.T) {
	// The documented weakness of the Geffe combiner: the output agrees
	// with LFSR c about 75% of the time. This test pins the property the
	// paper's Table 3 security comparison relies on.
	c := newTestCipher(t)
	g := c.newGenerator(123)
	// Clone register c's state and run it independently.
	cc := g.c
	agree, n := 0, 4096
	for i := 0; i < n; i++ {
		out := g.bit()
		// g.bit stepped g.c internally; step our clone in lockstep.
		cBit := cc.step()
		if out == cBit {
			agree++
		}
	}
	frac := float64(agree) / float64(n)
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("output/LFSR-c agreement %g, want ~0.75", frac)
	}
}

func TestLFSRMaximalPeriodSmall(t *testing.T) {
	// A degree-5 register with primitive taps x^5 + x^2 + 1 must have
	// period 31.
	l := lfsr{state: 1, deg: 5, taps: 1 | 1<<2}
	seen := map[uint64]bool{}
	for i := 0; i < 40; i++ {
		if seen[l.state] {
			if len(seen) != 31 {
				t.Errorf("period %d, want 31", len(seen))
			}
			return
		}
		seen[l.state] = true
		l.step()
	}
	t.Error("no cycle found")
}

func TestPopcountParity(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 3: 0, 7: 1, 0xff: 0, 1 << 63: 1}
	for in, want := range cases {
		if got := popcountParity(in); got != want {
			t.Errorf("parity(%x) = %d, want %d", in, got, want)
		}
	}
}
