package stream

import (
	"bytes"
	"testing"
)

// FuzzStreamRoundTrip asserts the XOR-cipher identity on arbitrary keys,
// nonces and payloads: applying the keystream twice restores the input,
// and (for non-trivial payloads) one application changes it.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(bytes.Repeat([]byte{0xAB}, KeySize), uint64(0x40), []byte("seed corpus"))
	f.Add(make([]byte, KeySize), uint64(0), []byte{})
	f.Fuzz(func(t *testing.T, key []byte, nonce uint64, data []byte) {
		if len(key) != KeySize {
			// New rejects wrong-size keys; pin that and move on.
			if _, err := New(key); err == nil {
				t.Fatalf("New accepted %d-byte key", len(key))
			}
			return
		}
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ct := make([]byte, len(data))
		if err := c.XOR(ct, data, nonce); err != nil {
			t.Fatal(err)
		}
		if len(data) >= 8 && bytes.Equal(ct, data) {
			t.Errorf("keystream left %d-byte payload unchanged (nonce %#x)", len(data), nonce)
		}
		back := make([]byte, len(ct))
		if err := c.XOR(back, ct, nonce); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Errorf("double XOR not identity: got %x want %x", back, data)
		}
	})
}
