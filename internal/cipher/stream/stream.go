// Package stream implements the stream-cipher baseline the paper compares
// SPE against ([5], [8] in the paper): a keystream generator XORed with the
// data on its way to and from the NVMM. The generator is a nonlinear
// combiner over three maximal-length LFSRs (a Geffe-style construction with
// larger registers), keyed per memory block by mixing the block address
// into the seed — the "pad per address" organization that gives such
// schemes their single-cycle latency and their large key-storage area
// overhead. Like the paper's citations it is NOT as strong as a block
// cipher; the known correlation weaknesses of combiner generators are the
// point of the Table 3 comparison.
package stream

import "fmt"

// KeySize is the cipher key size in bytes (two 64-bit words).
const KeySize = 16

// Cipher holds the keyed generator configuration.
type Cipher struct {
	k0, k1 uint64
}

// New creates a stream cipher from a 16-byte key.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("stream: key must be %d bytes, got %d", KeySize, len(key))
	}
	var k0, k1 uint64
	for i := 0; i < 8; i++ {
		k0 = k0<<8 | uint64(key[i])
		k1 = k1<<8 | uint64(key[8+i])
	}
	return &Cipher{k0: k0, k1: k1}, nil
}

// lfsr taps for three maximal-length registers (degrees 61, 47, 37;
// primitive trinomials/pentanomials over GF(2)).
type lfsr struct {
	state uint64
	deg   uint
	taps  uint64
}

func (l *lfsr) step() uint64 {
	out := l.state & 1
	fb := popcountParity(l.state & l.taps)
	l.state >>= 1
	l.state |= fb << (l.deg - 1)
	return out
}

func popcountParity(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// generator is the per-block keystream state.
type generator struct {
	a, b, c lfsr
}

// newGenerator seeds the three registers from the key and a block nonce
// (address), guaranteeing nonzero states.
func (c *Cipher) newGenerator(nonce uint64) *generator {
	mix := func(x uint64) uint64 {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		return x
	}
	s1 := mix(c.k0 ^ nonce)
	s2 := mix(c.k1 ^ nonce*0x9E3779B97F4A7C15)
	s3 := mix(c.k0 ^ c.k1 ^ nonce<<1)
	g := &generator{
		a: lfsr{state: s1 & (1<<61 - 1), deg: 61, taps: 1 | 1<<15},
		b: lfsr{state: s2 & (1<<47 - 1), deg: 47, taps: 1 | 1<<5},
		c: lfsr{state: s3 & (1<<37 - 1), deg: 37, taps: 1 | 1<<2},
	}
	if g.a.state == 0 {
		g.a.state = 1
	}
	if g.b.state == 0 {
		g.b.state = 1
	}
	if g.c.state == 0 {
		g.c.state = 1
	}
	// Warm-up hides the linear seeding.
	for i := 0; i < 128; i++ {
		g.bit()
	}
	return g
}

// bit produces one keystream bit with the Geffe combiner
// f(a,b,c) = (a AND b) XOR (NOT a AND c).
func (g *generator) bit() uint64 {
	a := g.a.step()
	b := g.b.step()
	c := g.c.step()
	return (a & b) ^ (^a & 1 & c)
}

func (g *generator) byteOut() byte {
	var v byte
	for i := 0; i < 8; i++ {
		v |= byte(g.bit()) << uint(i)
	}
	return v
}

// XOR applies the keystream for the given block nonce (typically the
// memory block address) to src, writing to dst. Encryption and decryption
// are identical.
func (c *Cipher) XOR(dst, src []byte, nonce uint64) error {
	if len(dst) < len(src) {
		return fmt.Errorf("stream: dst too short")
	}
	g := c.newGenerator(nonce)
	for i := range src {
		dst[i] = src[i] ^ g.byteOut()
	}
	return nil
}

// Keystream returns n keystream bytes for inspection (used by the
// statistical tests).
func (c *Cipher) Keystream(nonce uint64, n int) []byte {
	g := c.newGenerator(nonce)
	out := make([]byte, n)
	for i := range out {
		out[i] = g.byteOut()
	}
	return out
}
