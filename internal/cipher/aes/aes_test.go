package aes

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FIPS-197 Appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	pt := "00112233445566778899aabbccddeeff"
	cases := []struct{ key, ct string }{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		ci, err := New(unhex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ci.Encrypt(got, unhex(t, pt))
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: ct = %x, want %s", c.key, got, c.ct)
		}
		back := make([]byte, 16)
		ci.Decrypt(back, got)
		if hex.EncodeToString(back) != pt {
			t.Errorf("key %s: decrypt = %x, want %s", c.key, back, pt)
		}
	}
}

// FIPS-197 Appendix B vector (AES-128 with a different key/plaintext).
func TestFIPS197AppendixB(t *testing.T) {
	ci, err := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	ci.Encrypt(got, unhex(t, "3243f6a8885a308d313198a2e0370734"))
	if hex.EncodeToString(got) != "3925841d02dc09fbdc118597196a0b32" {
		t.Errorf("ct = %x", got)
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 33} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keyLens := []int{16, 24, 32}
		key := make([]byte, keyLens[rng.Intn(3)])
		rng.Read(key)
		ci, err := New(key)
		if err != nil {
			return false
		}
		pt := make([]byte, 16)
		rng.Read(pt)
		ct := make([]byte, 16)
		ci.Encrypt(ct, pt)
		back := make([]byte, 16)
		ci.Decrypt(back, ct)
		return bytes.Equal(back, pt) && !bytes.Equal(ct, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSboxProperties(t *testing.T) {
	// S-box must be a bijection with the known fixed values.
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox not bijective at %d", i)
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox wrong at %d", i)
		}
	}
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Errorf("sbox anchors wrong: %x %x %x", sbox[0x00], sbox[0x53], sbox[0xff])
	}
}

func TestGmul(t *testing.T) {
	// Known products in GF(2^8).
	if got := gmul(0x57, 0x83); got != 0xc1 {
		t.Errorf("57*83 = %x, want c1", got)
	}
	if got := gmul(0x57, 0x13); got != 0xfe {
		t.Errorf("57*13 = %x, want fe", got)
	}
}

func TestECBRoundTrip(t *testing.T) {
	ci, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	ct := make([]byte, 64)
	if err := ci.EncryptECB(ct, src); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 64)
	if err := ci.DecryptECB(back, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Error("ECB round trip failed")
	}
	if err := ci.EncryptECB(ct, make([]byte, 17)); err == nil {
		t.Error("expected length error")
	}
}

func TestCTRRoundTripAndStreaming(t *testing.T) {
	ci, err := New(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	iv := make([]byte, 16)
	iv[15] = 1
	src := []byte("sneak path encryption secures nonvolatile main memory!")
	ct := make([]byte, len(src))
	if err := ci.CTR(ct, src, iv); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(src))
	if err := ci.CTR(back, ct, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Error("CTR round trip failed")
	}
	if bytes.Equal(ct, src) {
		t.Error("CTR output equals input")
	}
	if err := ci.CTR(ct, src, iv[:8]); err == nil {
		t.Error("expected IV length error")
	}
}

func TestCTRCounterWraps(t *testing.T) {
	ci, _ := New(make([]byte, 16))
	iv := bytes.Repeat([]byte{0xff}, 16) // wraps immediately
	src := make([]byte, 48)
	ct := make([]byte, 48)
	if err := ci.CTR(ct, src, iv); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 48)
	if err := ci.CTR(back, ct, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Error("CTR wrap round trip failed")
	}
	// Keystream blocks must differ (counter actually increments).
	if bytes.Equal(ct[0:16], ct[16:32]) {
		t.Error("keystream repeats across counter values")
	}
}

func TestAvalancheOneBit(t *testing.T) {
	// Flipping one plaintext bit flips ~half the ciphertext bits.
	ci, _ := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	pt := make([]byte, 16)
	ct1 := make([]byte, 16)
	ci.Encrypt(ct1, pt)
	pt[0] ^= 1
	ct2 := make([]byte, 16)
	ci.Encrypt(ct2, pt)
	diff := 0
	for i := range ct1 {
		x := ct1[i] ^ ct2[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 40 || diff > 88 {
		t.Errorf("avalanche flipped %d/128 bits", diff)
	}
}

func TestShortBlockPanics(t *testing.T) {
	ci, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ci.Encrypt(make([]byte, 8), make([]byte, 8))
}
