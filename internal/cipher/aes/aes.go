// Package aes is a from-scratch FIPS-197 implementation of the AES block
// cipher (128/192/256-bit keys) with ECB and CTR helpers. It serves as the
// block-cipher baseline the paper compares SPE against (Fig. 7/8, Table 3);
// the cycle simulator models its 80-cycle memory-path latency, while this
// package provides the actual transformation for the security experiments.
//
// The implementation favours clarity over speed: table-free S-box generation
// at init, straightforward column mixing. It is not hardened against timing
// side channels and must not be used to protect real data.
package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
	rcon    [11]byte
)

func init() {
	// Generate the S-box from the multiplicative inverse in GF(2^8)
	// followed by the affine transform.
	inv := [256]byte{}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		invSbox[y] = byte(i)
	}
	r := byte(1)
	for i := 1; i < len(rcon); i++ {
		rcon[i] = r
		r = xtime(r)
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// xtime multiplies by x in GF(2^8) modulo x^8+x^4+x^3+x+1.
func xtime(a byte) byte {
	if a&0x80 != 0 {
		return a<<1 ^ 0x1b
	}
	return a << 1
}

// gmul multiplies two field elements.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an expanded-key AES instance.
type Cipher struct {
	rounds int
	enc    [][4]uint32 // round keys as columns
}

// New creates a cipher for a 16-, 24-, or 32-byte key.
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	nk := len(key) / 4
	total := 4 * (rounds + 1)
	w := make([]uint32, total)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < total; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c := &Cipher{rounds: rounds}
	for r := 0; r <= rounds; r++ {
		var rk [4]uint32
		copy(rk[:], w[4*r:4*r+4])
		c.enc = append(c.enc, rk)
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state is the 4x4 byte matrix in column-major order (s[c][r]).
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[c][r] = src[4*c+r]
		}
	}
	return s
}

func (s *state) store(dst []byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			dst[4*c+r] = s[c][r]
		}
	}
}

func (s *state) addRoundKey(rk [4]uint32) {
	for c := 0; c < 4; c++ {
		s[c][0] ^= byte(rk[c] >> 24)
		s[c][1] ^= byte(rk[c] >> 16)
		s[c][2] ^= byte(rk[c] >> 8)
		s[c][3] ^= byte(rk[c])
	}
}

func (s *state) subBytes() {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[c][r] = sbox[s[c][r]]
		}
	}
}

func (s *state) invSubBytes() {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[c][r] = invSbox[s[c][r]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[(c+r)%4][r]
		}
		for c := 0; c < 4; c++ {
			s[c][r] = tmp[c]
		}
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[c][r]
		}
		for c := 0; c < 4; c++ {
			s[c][r] = tmp[c]
		}
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[c][0], s[c][1], s[c][2], s[c][3]
		s[c][0] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		s[c][1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		s[c][2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		s[c][3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[c][0], s[c][1], s[c][2], s[c][3]
		s[c][0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		s[c][1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		s[c][2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		s[c][3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// Encrypt encrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[0])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[r])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.enc[c.rounds])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[c.rounds])
	for r := c.rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.enc[r])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.enc[0])
	s.store(dst)
}

// EncryptECB encrypts data (length must be a multiple of 16) in ECB mode.
// ECB is only appropriate here because the memory encryption model works on
// independent fixed-address blocks.
func (c *Cipher) EncryptECB(dst, src []byte) error {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		return fmt.Errorf("aes: ECB length %d not a block multiple", len(src))
	}
	for i := 0; i < len(src); i += BlockSize {
		c.Encrypt(dst[i:], src[i:])
	}
	return nil
}

// DecryptECB is the inverse of EncryptECB.
func (c *Cipher) DecryptECB(dst, src []byte) error {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		return fmt.Errorf("aes: ECB length %d not a block multiple", len(src))
	}
	for i := 0; i < len(src); i += BlockSize {
		c.Decrypt(dst[i:], src[i:])
	}
	return nil
}

// CTR transforms data in counter mode with the given 16-byte IV. Encryption
// and decryption are the same operation. Any length is allowed.
func (c *Cipher) CTR(dst, src, iv []byte) error {
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CTR IV must be %d bytes", BlockSize)
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CTR dst too short")
	}
	var ctr, ks [BlockSize]byte
	copy(ctr[:], iv)
	for off := 0; off < len(src); off += BlockSize {
		c.Encrypt(ks[:], ctr[:])
		n := len(src) - off
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ ks[i]
		}
		for i := BlockSize - 1; i >= 0; i-- {
			ctr[i]++
			if ctr[i] != 0 {
				break
			}
		}
	}
	return nil
}
