package secure

import (
	"testing"

	"snvmm/internal/mem"
)

// allEngines builds one fresh instance of every Table 3 engine for
// table-driven edge-case sweeps.
func allEngines() []mem.EncryptionEngine {
	return []mem.EncryptionEngine{
		NewPlain(),
		NewAES(),
		NewStream(),
		NewINVMM(1000),
		NewSPESerial(1000),
		NewSPEParallel(),
	}
}

// TestPowerDownAtZero drives PowerDown at now=0 — before any access, and
// immediately after a burst of accesses all stamped at cycle 0 — for every
// engine. Nothing may panic, and no plaintext may survive the flush.
func TestPowerDownAtZero(t *testing.T) {
	for _, e := range allEngines() {
		t.Run(e.Name()+"/untouched", func(t *testing.T) {
			e := e
			if cost := e.PowerDown(0); cost != 0 {
				t.Fatalf("PowerDown on untouched engine cost %d, want 0", cost)
			}
		})
	}
	for _, e := range allEngines() {
		t.Run(e.Name()+"/hot", func(t *testing.T) {
			for addr := uint64(0); addr < 8*BlockBytes; addr += BlockBytes {
				e.ReadDelay(addr, 0)
				e.WriteDelay(addr+BlockBytes/2, 0)
			}
			e.ReadDelay(3*BlockBytes, 0) // leaves SPE-serial plaintext
			e.PowerDown(0)
			if r, ok := e.(Remanent); ok {
				if got := r.PlaintextBytes(); got != 0 {
					t.Fatalf("%s: %d plaintext bytes survive PowerDown(0)", e.Name(), got)
				}
			}
			if e.Name() != "Plain" {
				if f := e.EncryptedFraction(); f != 1 {
					t.Fatalf("%s: EncryptedFraction %g after PowerDown, want 1", e.Name(), f)
				}
			}
		})
	}
}

// TestTickAfterPowerDown checks that the background walker is harmless once
// the flush already secured everything: no panic, no plaintext reappearing,
// and PowerDown twice in a row stays free.
func TestTickAfterPowerDown(t *testing.T) {
	for _, e := range allEngines() {
		t.Run(e.Name(), func(t *testing.T) {
			for i := uint64(0); i < 4; i++ {
				e.ReadDelay(i*PageBytes, 10+i)
			}
			e.PowerDown(100)
			for now := uint64(101); now < 5000; now += 97 {
				e.Tick(now)
			}
			if r, ok := e.(Remanent); ok {
				if got := r.PlaintextBytes(); got != 0 {
					t.Fatalf("%d plaintext bytes after PowerDown+Ticks", got)
				}
			}
			if cost := e.PowerDown(5000); cost != 0 {
				t.Fatalf("second PowerDown cost %d, want 0", cost)
			}
		})
	}
}

// TestINVMMEncryptedFractionMonotone replays a synthetic schedule: a working
// set is touched, then accesses stop. From that point on, the encrypted
// fraction must be nondecreasing under the background walker — i-NVMM only
// converts plaintext to ciphertext while the workload is quiet.
func TestINVMMEncryptedFractionMonotone(t *testing.T) {
	e := NewINVMM(500)
	for i := uint64(0); i < 32; i++ {
		e.ReadDelay(i*PageBytes, i)
	}
	last := e.EncryptedFraction()
	if last != 0 {
		t.Fatalf("hot working set should be fully plaintext, fraction %g", last)
	}
	for now := uint64(40); now < 10_000; now += 50 {
		e.Tick(now)
		f := e.EncryptedFraction()
		if f < last {
			t.Fatalf("EncryptedFraction regressed %g -> %g at cycle %d", last, f, now)
		}
		last = f
	}
	if last != 1 {
		t.Fatalf("walker never converged: final fraction %g", last)
	}
}

// TestPageBoundaryAddresses checks the page/block bucketing right at the
// k·PageBytes ± 1 seams: addr = k·PageBytes-1 belongs to page k-1, addr =
// k·PageBytes to page k.
func TestPageBoundaryAddresses(t *testing.T) {
	e := NewINVMM(10)
	// Touch only the two sides of the page-1 boundary.
	e.ReadDelay(PageBytes-1, 0) // page 0
	e.ReadDelay(PageBytes, 0)   // page 1
	e.ReadDelay(PageBytes+1, 0) // page 1 again — same page, no new entry
	if got := e.PlaintextBytes(); got != 2*PageBytes {
		t.Fatalf("plaintext %d bytes, want exactly 2 pages", got)
	}
	// The same seam for SPE-serial's 64-byte blocks.
	s := NewSPESerial(10)
	if d, _ := s.ReadDelay(BlockBytes-1, 0); d != SPEDecrypt {
		t.Fatalf("first touch of block 0 must decrypt")
	}
	if d, _ := s.ReadDelay(BlockBytes, 0); d != SPEDecrypt {
		t.Fatalf("block 1 is distinct from block 0")
	}
	if d, _ := s.ReadDelay(BlockBytes+1, 0); d != 0 {
		t.Fatalf("block 1 already plaintext, re-read must be free")
	}
	if got := s.PlaintextBytes(); got != 2*BlockBytes {
		t.Fatalf("plaintext %d bytes, want exactly 2 blocks", got)
	}
}

// TestSPESerialExposureIntegral pins the byte·cycle accounting on a
// hand-computed schedule.
func TestSPESerialExposureIntegral(t *testing.T) {
	e := NewSPESerial(1 << 40) // timer never fires
	e.ReadDelay(0, 100)        // block 0 plaintext at 100
	e.ReadDelay(BlockBytes, 200)
	// Open intervals only: (300-100) + (300-200) cycles × 64 bytes.
	if got := e.ExposureByteCycles(300); got != 300*BlockBytes {
		t.Fatalf("open exposure %d, want %d", got, 300*BlockBytes)
	}
	e.WriteDelay(0, 400) // closes block 0: 300 cycles × 64
	if got := e.ExposureByteCycles(400); got != (300+200)*BlockBytes {
		t.Fatalf("mixed exposure %d, want %d", got, 500*BlockBytes)
	}
	e.PowerDown(500) // closes block 1: 300 cycles × 64
	want := uint64(300+300) * BlockBytes
	if got := e.ExposureByteCycles(500); got != want {
		t.Fatalf("final exposure %d, want %d", got, want)
	}
	// The integral is frozen once nothing is plaintext.
	if got := e.ExposureByteCycles(9000); got != want {
		t.Fatalf("exposure moved after PowerDown: %d != %d", got, want)
	}
}

// TestEpochShrinksExposure runs the same access schedule with and without
// epoch re-encryption and asserts the epoch variant's exposure window is
// strictly smaller — the property the red-team harness measures end to end.
func TestEpochShrinksExposure(t *testing.T) {
	run := func(epoch uint64) uint64 {
		e := NewSPESerial(1 << 40)
		e.EpochCycles = epoch
		now := uint64(0)
		for i := 0; i < 64; i++ {
			now += 100
			e.ReadDelay(uint64(i)*BlockBytes, now)
			e.Tick(now)
		}
		now += 1000
		e.Tick(now)
		return e.ExposureByteCycles(now)
	}
	base, epoched := run(0), run(500)
	if epoched >= base {
		t.Fatalf("epoch re-encryption did not shrink exposure: %d >= %d", epoched, base)
	}

	runI := func(epoch uint64) uint64 {
		e := NewINVMM(1 << 40) // inertness threshold never trips
		e.EpochCycles = epoch
		now := uint64(0)
		for i := 0; i < 16; i++ {
			now += 100
			e.ReadDelay(uint64(i)*PageBytes, now)
			e.Tick(now)
		}
		now += 1000
		e.Tick(now)
		return e.ExposureByteCycles(now)
	}
	baseI, epochedI := runI(0), runI(500)
	if epochedI >= baseI {
		t.Fatalf("i-NVMM epoch did not shrink exposure: %d >= %d", epochedI, baseI)
	}
}
