// Package secure implements the NVMM encryption schemes the paper compares
// (Section 7, Table 3) as memory-interface engines pluggable into the
// NVMM timing model:
//
//   - Plain: no encryption (the baseline all overheads are relative to).
//   - AES: a block cipher on every read/write path (80-cycle pipeline).
//   - Stream: a stream cipher pad (1-cycle XOR on the data path).
//   - INVMM: i-NVMM-style incremental encryption — only pages inert for a
//     while are encrypted; hot pages stay plaintext.
//   - SPESerial: sneak-path encryption; a read decrypts the block in place
//     (16 cycles) and leaves it plaintext until the re-encryption timer or
//     a writeback.
//   - SPEParallel: sneak-path encryption; every read pays decrypt +
//     immediate re-encrypt, memory is always fully ciphertext.
//
// Latency constants follow Table 3. Power-down timing follows Section 6.4:
// securing one 64-byte block takes 16 pulses x 100 ns = 1.6 us of wall
// clock (5120 cycles at 3.2 GHz), which the paper itself uses alongside
// the 16-cycle pipeline figure; EXPERIMENTS.md discusses the discrepancy.
package secure

import (
	"snvmm/internal/mem"
)

// Latency constants in CPU cycles (Table 3).
const (
	AESLatency    = 80
	StreamLatency = 1
	SPEDecrypt    = 16
	SPEEncrypt    = 16
)

// CyclesPerBlockSecure is the wall-clock cost of securing one block at
// power-down: 16 pulses x 100 ns at 3.2 GHz.
const CyclesPerBlockSecure = 5120

// BlockBytes is the encryption granularity (a cache line).
const BlockBytes = 64

// PageBytes is i-NVMM's page granularity.
const PageBytes = 4096

// Remanent is implemented by engines that leave plaintext resident in the
// NVMM (i-NVMM, SPE-serial) and can account for it. The exposure window is
// the red-team metric for persistence attacks (Yao & Venkataramani): every
// byte of plaintext contributes one byte·cycle per cycle it stays resident,
// so a scraped power-off is dangerous in proportion to the integral, not
// just the instantaneous plaintext count.
type Remanent interface {
	// PlaintextBytes is the number of bytes currently resident as
	// plaintext.
	PlaintextBytes() uint64
	// ExposureByteCycles is the cumulative exposure integral up to `now`:
	// Σ over every plaintext residency interval of bytes × cycles,
	// including intervals still open at `now`.
	ExposureByteCycles(now uint64) uint64
}

// Plain is the unencrypted baseline.
type Plain struct{}

// NewPlain returns the baseline engine.
func NewPlain() *Plain { return &Plain{} }

func (*Plain) Name() string                                { return "Plain" }
func (*Plain) ReadDelay(addr, now uint64) (uint64, uint64) { return 0, 0 }
func (*Plain) WriteDelay(addr, now uint64) uint64          { return 0 }
func (*Plain) Tick(now uint64)                             {}
func (*Plain) EncryptedFraction() float64                  { return 0 }
func (*Plain) PowerDown(now uint64) uint64                 { return 0 }

// AES encrypts every block with an 80-cycle block cipher on both paths.
type AES struct{}

// NewAES returns the AES engine.
func NewAES() *AES { return &AES{} }

func (*AES) Name() string                                { return "AES" }
func (*AES) ReadDelay(addr, now uint64) (uint64, uint64) { return AESLatency, 0 }
func (*AES) WriteDelay(addr, now uint64) uint64          { return AESLatency }
func (*AES) Tick(now uint64)                             {}
func (*AES) EncryptedFraction() float64                  { return 1 }
func (*AES) PowerDown(now uint64) uint64                 { return 0 }

// Stream XORs a keystream on the data path (1 cycle), keeping everything
// encrypted — at the silicon cost Table 3 records.
type Stream struct{}

// NewStream returns the stream-cipher engine.
func NewStream() *Stream { return &Stream{} }

func (*Stream) Name() string                                { return "Stream" }
func (*Stream) ReadDelay(addr, now uint64) (uint64, uint64) { return StreamLatency, 0 }
func (*Stream) WriteDelay(addr, now uint64) uint64          { return StreamLatency }
func (*Stream) Tick(now uint64)                             {}
func (*Stream) EncryptedFraction() float64                  { return 1 }
func (*Stream) PowerDown(now uint64) uint64                 { return 0 }

// INVMM models i-NVMM incremental encryption: a page accessed recently is
// plaintext; the background walker encrypts pages that have been inert for
// InertThreshold cycles, WalkBudget pages per tick.
type INVMM struct {
	InertThreshold uint64
	WalkBudget     int
	// EpochCycles, when nonzero, adds epoch-based re-encryption: every
	// EpochCycles cycles the Tick flush encrypts all resident plaintext
	// regardless of inertness, bounding any page's plaintext dwell — and
	// therefore the exposure window — by one epoch.
	EpochCycles uint64

	lastAccess map[uint64]uint64 // page -> last access cycle
	encrypted  map[uint64]bool   // page -> ciphertext?
	// queue orders candidate pages by the access that scheduled them, so
	// the walker visits inert pages oldest-first and the simulation is
	// deterministic (a budgeted range over a map picks random victims).
	// Entries go stale when the page is touched again; Tick skips those.
	queue []walkEntry

	plainSince map[uint64]uint64 // page -> cycle its open plaintext interval began
	exposure   uint64            // closed plaintext intervals, byte·cycles
	lastEpoch  uint64            // cycle of the last epoch flush
}

type walkEntry struct {
	key  uint64 // page or block
	when uint64 // the access cycle this entry snapshots
}

// NewINVMM builds the engine with the given inertness threshold (cycles).
func NewINVMM(inertThreshold uint64) *INVMM {
	return &INVMM{
		InertThreshold: inertThreshold,
		WalkBudget:     8,
		lastAccess:     make(map[uint64]uint64),
		encrypted:      make(map[uint64]bool),
		plainSince:     make(map[uint64]uint64),
	}
}

func (e *INVMM) Name() string { return "i-NVMM" }

func (e *INVMM) page(addr uint64) uint64 { return addr / PageBytes }

func (e *INVMM) touch(addr, now uint64) (wasEncrypted bool) {
	p := e.page(addr)
	wasEncrypted = e.encrypted[p]
	e.encrypted[p] = false
	e.lastAccess[p] = now
	e.queue = append(e.queue, walkEntry{key: p, when: now})
	if _, open := e.plainSince[p]; !open {
		e.plainSince[p] = now
	}
	return wasEncrypted
}

// closePlain ends page p's open plaintext interval at `now`, folding it into
// the exposure accumulator.
func (e *INVMM) closePlain(p, now uint64) {
	if since, open := e.plainSince[p]; open {
		if now > since {
			e.exposure += (now - since) * PageBytes
		}
		delete(e.plainSince, p)
	}
}

// ReadDelay decrypts the block if its page was ciphertext.
func (e *INVMM) ReadDelay(addr, now uint64) (uint64, uint64) {
	if e.touch(addr, now) {
		return AESLatency, 0
	}
	return 0, 0
}

// WriteDelay: writes land in the plaintext page (hot pages are plaintext in
// i-NVMM); an encrypted page must be opened first.
func (e *INVMM) WriteDelay(addr, now uint64) uint64 {
	if e.touch(addr, now) {
		return AESLatency
	}
	return 0
}

// Tick runs the inert-page walker: entries expire oldest-first (the queue
// is appended in access order, so `when` is nondecreasing), and a stale
// entry — the page was touched again after it was queued — is dropped
// without charging the budget.
func (e *INVMM) Tick(now uint64) {
	budget := e.WalkBudget
	i := 0
	for ; i < len(e.queue) && budget > 0; i++ {
		ent := e.queue[i]
		if now <= ent.when || now-ent.when <= e.InertThreshold {
			break // everything behind is younger still
		}
		if e.lastAccess[ent.key] != ent.when || e.encrypted[ent.key] {
			continue // stale: re-touched or already encrypted
		}
		e.encrypted[ent.key] = true
		e.closePlain(ent.key, now)
		budget--
	}
	e.queue = e.queue[i:]
	if e.EpochCycles > 0 && now-e.lastEpoch >= e.EpochCycles {
		// Epoch flush: encrypt everything still plaintext, hot or not. The
		// flush ignores the walk budget — the paper's epoch model charges
		// this as a burst, and the red-team exposure metric is what it buys.
		for p := range e.plainSince {
			e.encrypted[p] = true
			e.closePlain(p, now)
		}
		e.lastEpoch = now
	}
}

// EncryptedFraction is the fraction of touched pages held in ciphertext.
func (e *INVMM) EncryptedFraction() float64 {
	if len(e.lastAccess) == 0 {
		return 1
	}
	enc := 0
	for p := range e.lastAccess {
		if e.encrypted[p] {
			enc++
		}
	}
	return float64(enc) / float64(len(e.lastAccess))
}

// PowerDown encrypts every remaining plaintext page — the paper measures
// this window at 14.6 seconds for i-NVMM.
func (e *INVMM) PowerDown(now uint64) uint64 {
	var blocks uint64
	for p := range e.lastAccess {
		if !e.encrypted[p] {
			blocks += PageBytes / BlockBytes
			e.encrypted[p] = true
			e.closePlain(p, now)
		}
	}
	return blocks * AESLatency * (PageBytes / BlockBytes) // AES engine walks each block
}

// PlaintextBytes is the resident plaintext right now (Remanent).
func (e *INVMM) PlaintextBytes() uint64 {
	return uint64(len(e.plainSince)) * PageBytes
}

// ExposureByteCycles is the cumulative exposure integral up to now
// (Remanent): closed intervals plus the still-open ones.
func (e *INVMM) ExposureByteCycles(now uint64) uint64 {
	total := e.exposure
	for _, since := range e.plainSince {
		if now > since {
			total += (now - since) * PageBytes
		}
	}
	return total
}

// SPESerial leaves blocks decrypted after a read until the re-encryption
// timer fires or the block is written back.
type SPESerial struct {
	ReencryptAfter uint64 // cycles a block may stay plaintext
	WalkBudget     int
	// EpochCycles, when nonzero, adds epoch-based re-encryption: every
	// EpochCycles cycles the Tick flush re-encrypts every plaintext block
	// regardless of the per-block timer, bounding the exposure window.
	EpochCycles uint64

	plaintextAt map[uint64]uint64 // block -> cycle it became plaintext
	touched     map[uint64]bool
	// queue holds plaintext blocks in the order they were decrypted, so
	// the re-encryption timer fires oldest-first and deterministically.
	queue []walkEntry

	exposure  uint64 // closed plaintext intervals, byte·cycles
	lastEpoch uint64 // cycle of the last epoch flush
}

// NewSPESerial builds the serial-mode engine.
func NewSPESerial(reencryptAfter uint64) *SPESerial {
	return &SPESerial{
		ReencryptAfter: reencryptAfter,
		WalkBudget:     512,
		plaintextAt:    make(map[uint64]uint64),
		touched:        make(map[uint64]bool),
	}
}

func (e *SPESerial) Name() string { return "SPE-serial" }

func (e *SPESerial) block(addr uint64) uint64 { return addr / BlockBytes }

// ReadDelay pays the decrypt latency only when the block is ciphertext.
func (e *SPESerial) ReadDelay(addr, now uint64) (uint64, uint64) {
	b := e.block(addr)
	e.touched[b] = true
	if _, plain := e.plaintextAt[b]; plain {
		return 0, 0
	}
	e.plaintextAt[b] = now
	e.queue = append(e.queue, walkEntry{key: b, when: now})
	return SPEDecrypt, 0
}

// WriteDelay re-encrypts on writeback (the write phase plus encryption
// phase extend bank occupancy).
func (e *SPESerial) WriteDelay(addr, now uint64) uint64 {
	b := e.block(addr)
	e.touched[b] = true
	e.closePlain(b, now)
	return SPEEncrypt
}

// closePlain ends block b's open plaintext interval at `now`, folding it
// into the exposure accumulator.
func (e *SPESerial) closePlain(b, now uint64) {
	if since, plain := e.plaintextAt[b]; plain {
		if now > since {
			e.exposure += (now - since) * BlockBytes
		}
		delete(e.plaintextAt, b)
	}
}

// Tick re-encrypts blocks whose plaintext dwell exceeded the timer,
// oldest-first. A queue entry is stale if the block was written back
// (deleted) or re-decrypted later; staleness shows as a plaintextAt
// mismatch and costs no budget.
func (e *SPESerial) Tick(now uint64) {
	budget := e.WalkBudget
	i := 0
	for ; i < len(e.queue) && budget > 0; i++ {
		ent := e.queue[i]
		if now <= ent.when || now-ent.when <= e.ReencryptAfter {
			break
		}
		if since, plain := e.plaintextAt[ent.key]; !plain || since != ent.when {
			continue
		}
		e.closePlain(ent.key, now)
		budget--
	}
	e.queue = e.queue[i:]
	if e.EpochCycles > 0 && now-e.lastEpoch >= e.EpochCycles {
		for b := range e.plaintextAt {
			e.closePlain(b, now)
		}
		e.queue = e.queue[:0]
		e.lastEpoch = now
	}
}

// EncryptedFraction is the fraction of touched blocks in ciphertext.
func (e *SPESerial) EncryptedFraction() float64 {
	if len(e.touched) == 0 {
		return 1
	}
	return 1 - float64(len(e.plaintextAt))/float64(len(e.touched))
}

// PowerDown secures the remaining plaintext blocks at 1.6 us each.
func (e *SPESerial) PowerDown(now uint64) uint64 {
	n := uint64(len(e.plaintextAt))
	for b := range e.plaintextAt {
		e.closePlain(b, now)
	}
	return n * CyclesPerBlockSecure
}

// PlaintextBytes is the resident plaintext right now (Remanent).
func (e *SPESerial) PlaintextBytes() uint64 {
	return uint64(len(e.plaintextAt)) * BlockBytes
}

// ExposureByteCycles is the cumulative exposure integral up to now
// (Remanent): closed intervals plus the still-open ones.
func (e *SPESerial) ExposureByteCycles(now uint64) uint64 {
	total := e.exposure
	for _, since := range e.plaintextAt {
		if now > since {
			total += (now - since) * BlockBytes
		}
	}
	return total
}

// SPEParallel re-encrypts immediately after every read: the read path pays
// decrypt plus encrypt, and memory is never plaintext.
type SPEParallel struct{}

// NewSPEParallel builds the parallel-mode engine.
func NewSPEParallel() *SPEParallel { return &SPEParallel{} }

func (*SPEParallel) Name() string { return "SPE-parallel" }

// ReadDelay: the data leaves after the 16-cycle decryption; the immediate
// re-encryption overlaps with the return path and only occupies the bank.
func (*SPEParallel) ReadDelay(addr, now uint64) (uint64, uint64) {
	return SPEDecrypt, SPEEncrypt
}
func (*SPEParallel) WriteDelay(addr, now uint64) uint64 { return SPEEncrypt }
func (*SPEParallel) Tick(now uint64)                    {}
func (*SPEParallel) EncryptedFraction() float64         { return 1 }
func (*SPEParallel) PowerDown(now uint64) uint64        { return 0 }

// Engines returns the full Table 3 line-up in presentation order. The
// i-NVMM inert threshold and SPE-serial re-encryption timer are the tuned
// defaults used by the Fig. 7/8 harness.
func Engines() []mem.EncryptionEngine {
	return []mem.EncryptionEngine{
		NewAES(),
		NewINVMM(2_000_000),
		NewSPESerial(100_000),
		NewSPEParallel(),
		NewStream(),
	}
}

// AreaOverheadMM2 returns each scheme's silicon area from Table 3 (mm^2;
// AES scaled to 65 nm).
func AreaOverheadMM2(name string) float64 {
	switch name {
	case "AES":
		return 2.2
	case "i-NVMM":
		return 5.3
	case "SPE-serial", "SPE-parallel":
		return 1.3
	case "Stream":
		return 6.18
	default:
		return 0
	}
}
