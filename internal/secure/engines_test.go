package secure

import (
	"testing"
)

func TestPlainIsFree(t *testing.T) {
	e := NewPlain()
	if d, b := e.ReadDelay(0, 0); d != 0 || b != 0 {
		t.Error("plain read cost nonzero")
	}
	if e.WriteDelay(0, 0) != 0 || e.PowerDown(0) != 0 {
		t.Error("plain engine has nonzero cost")
	}
	if e.EncryptedFraction() != 0 {
		t.Error("plain engine claims encryption")
	}
}

func TestAESAndStreamFixedLatency(t *testing.T) {
	a := NewAES()
	if d, _ := a.ReadDelay(0, 0); d != AESLatency || a.WriteDelay(0, 0) != AESLatency {
		t.Error("AES latency wrong")
	}
	if a.EncryptedFraction() != 1 {
		t.Error("AES fraction != 1")
	}
	s := NewStream()
	if d, _ := s.ReadDelay(0, 0); d != StreamLatency {
		t.Error("stream latency wrong")
	}
	if s.EncryptedFraction() != 1 {
		t.Error("stream fraction != 1")
	}
}

func TestINVMMHotPagesStayPlain(t *testing.T) {
	e := NewINVMM(1000)
	// Touch a page repeatedly: no delays after first touch.
	if d, _ := e.ReadDelay(0, 0); d != 0 {
		t.Errorf("first read delay %d (page starts plaintext)", d)
	}
	for now := uint64(1); now < 100; now++ {
		if d, _ := e.ReadDelay(64*now%PageBytes, now); d != 0 {
			t.Errorf("hot page read delay %d at %d", d, now)
		}
	}
	if f := e.EncryptedFraction(); f != 0 {
		t.Errorf("fraction %g with one hot page", f)
	}
}

func TestINVMMInertPageEncrypted(t *testing.T) {
	e := NewINVMM(1000)
	e.ReadDelay(0, 0)            // page 0 touched at 0
	e.ReadDelay(PageBytes*5, 10) // page 5 touched at 10
	e.Tick(2000)                 // both inert now
	if f := e.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after walker, want 1", f)
	}
	// Re-reading an encrypted page costs the AES latency and decrypts it.
	if d, _ := e.ReadDelay(0, 3000); d != AESLatency {
		t.Errorf("encrypted page read delay %d, want %d", d, AESLatency)
	}
	if f := e.EncryptedFraction(); f != 0.5 {
		t.Errorf("fraction %g, want 0.5", f)
	}
}

func TestINVMMWalkBudget(t *testing.T) {
	e := NewINVMM(10)
	for p := 0; p < 100; p++ {
		e.ReadDelay(uint64(p)*PageBytes, 0)
	}
	e.WalkBudget = 8
	e.Tick(10000)
	enc := 0
	for _, v := range e.encrypted {
		if v {
			enc++
		}
	}
	if enc != 8 {
		t.Errorf("walker encrypted %d pages, budget 8", enc)
	}
}

func TestINVMMPowerDown(t *testing.T) {
	e := NewINVMM(1 << 60) // never inert
	for p := 0; p < 10; p++ {
		e.ReadDelay(uint64(p)*PageBytes, 0)
	}
	cycles := e.PowerDown(0)
	if cycles == 0 {
		t.Error("power-down free despite plaintext pages")
	}
	if f := e.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after power-down", f)
	}
}

func TestSPESerialDecryptOnce(t *testing.T) {
	e := NewSPESerial(1 << 60)
	if d, _ := e.ReadDelay(0, 0); d != SPEDecrypt {
		t.Errorf("first read delay %d, want %d", d, SPEDecrypt)
	}
	if d, _ := e.ReadDelay(0, 10); d != 0 {
		t.Errorf("second read delay %d, want 0 (already plaintext)", d)
	}
	if f := e.EncryptedFraction(); f != 0 {
		t.Errorf("fraction %g with one plaintext block", f)
	}
	// Writeback re-encrypts.
	if d := e.WriteDelay(0, 20); d != SPEEncrypt {
		t.Errorf("write delay %d", d)
	}
	if f := e.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after writeback", f)
	}
	// Next read decrypts again.
	if d, _ := e.ReadDelay(0, 30); d != SPEDecrypt {
		t.Errorf("read-after-writeback delay %d", d)
	}
}

func TestSPESerialTimer(t *testing.T) {
	e := NewSPESerial(100)
	e.ReadDelay(0, 0)
	e.ReadDelay(BlockBytes, 1)
	e.Tick(50) // too early
	if f := e.EncryptedFraction(); f != 0 {
		t.Errorf("fraction %g before timer", f)
	}
	e.Tick(500)
	if f := e.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after timer", f)
	}
}

func TestSPESerialPowerDown(t *testing.T) {
	e := NewSPESerial(1 << 60)
	for b := 0; b < 4; b++ {
		e.ReadDelay(uint64(b)*BlockBytes, 0)
	}
	cycles := e.PowerDown(0)
	if cycles != 4*CyclesPerBlockSecure {
		t.Errorf("power-down %d cycles, want %d", cycles, 4*CyclesPerBlockSecure)
	}
	if f := e.EncryptedFraction(); f != 1 {
		t.Errorf("fraction %g after power-down", f)
	}
}

func TestSPEParallelAlwaysEncrypted(t *testing.T) {
	e := NewSPEParallel()
	if d, b := e.ReadDelay(0, 0); d != SPEDecrypt || b != SPEEncrypt {
		t.Errorf("read delay %d/%d, want %d/%d", d, b, SPEDecrypt, SPEEncrypt)
	}
	if e.EncryptedFraction() != 1 {
		t.Error("parallel fraction != 1")
	}
	if e.PowerDown(0) != 0 {
		t.Error("parallel has power-down debt")
	}
}

func TestEnginesLineup(t *testing.T) {
	es := Engines()
	if len(es) != 5 {
		t.Fatalf("%d engines, want 5", len(es))
	}
	names := map[string]bool{}
	for _, e := range es {
		names[e.Name()] = true
		if AreaOverheadMM2(e.Name()) <= 0 {
			t.Errorf("%s missing area figure", e.Name())
		}
	}
	for _, want := range []string{"AES", "i-NVMM", "SPE-serial", "SPE-parallel", "Stream"} {
		if !names[want] {
			t.Errorf("missing engine %s", want)
		}
	}
	if AreaOverheadMM2("Plain") != 0 {
		t.Error("plain should have zero area")
	}
	// Table 3: stream cipher area ~5x SPE.
	if r := AreaOverheadMM2("Stream") / AreaOverheadMM2("SPE-serial"); r < 4 || r > 6 {
		t.Errorf("stream/SPE area ratio %g, want ~4.75", r)
	}
}

// TestWalkerDeterminism replays an identical access stream twice through
// the budgeted walkers and requires identical encrypted-fraction
// trajectories. The walkers used to pick victims by ranging over a map,
// which made every simulation run differ; the FIFO queues pin the order.
func TestWalkerDeterminism(t *testing.T) {
	type walker interface {
		ReadDelay(addr, now uint64) (uint64, uint64)
		WriteDelay(addr, now uint64) uint64
		Tick(now uint64)
		EncryptedFraction() float64
	}
	trajectory := func(e walker) []float64 {
		var out []float64
		addr := uint64(1)
		for now := uint64(0); now < 2_000_000; now += 1000 {
			addr = addr*6364136223846793005 + 1442695040888963407
			if addr%3 == 0 {
				e.WriteDelay(addr%(64<<20), now)
			} else {
				e.ReadDelay(addr%(64<<20), now)
			}
			e.Tick(now)
			out = append(out, e.EncryptedFraction())
		}
		return out
	}
	builders := map[string]func() walker{
		"i-NVMM":     func() walker { return NewINVMM(300_000) },
		"SPE-serial": func() walker { return NewSPESerial(10_000) },
	}
	for name, build := range builders {
		a := trajectory(build())
		b := trajectory(build())
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: trajectories diverge at step %d: %g vs %g", name, i, a[i], b[i])
				break
			}
		}
	}
}
