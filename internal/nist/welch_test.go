package nist

import (
	"math/rand"
	"testing"
)

func TestWelchTIdenticalConstant(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{5, 5, 5, 5}
	r := WelchT(a, b)
	if !r.Applicable || r.P[0] != 1 {
		t.Fatalf("identical constants: got %+v, want p=1", r)
	}
	if !r.Pass(Alpha) {
		t.Fatalf("identical constants must pass at alpha")
	}
}

func TestWelchTConstantShift(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{6, 6, 6, 6}
	r := WelchT(a, b)
	if !r.Applicable || r.P[0] != 0 {
		t.Fatalf("shifted constants: got %+v, want p=0", r)
	}
	if r.Pass(Alpha) {
		t.Fatalf("shifted constants must fail at alpha")
	}
}

func TestWelchTSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r := WelchT(a, b)
	if !r.Applicable {
		t.Fatal("inapplicable")
	}
	if r.P[0] < Alpha {
		t.Fatalf("same-distribution samples flagged: p=%g", r.P[0])
	}
}

func TestWelchTShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1
	}
	r := WelchT(a, b)
	if r.P[0] >= Alpha {
		t.Fatalf("unit shift not flagged: p=%g", r.P[0])
	}
}

func TestWelchTInapplicable(t *testing.T) {
	if r := WelchT([]float64{1}, []float64{2, 3}); r.Applicable {
		t.Fatal("n<2 must be inapplicable")
	}
	if r := WelchT(nil, nil); r.Applicable || !r.Pass(Alpha) {
		t.Fatal("empty samples must be inapplicable and pass vacuously")
	}
}
