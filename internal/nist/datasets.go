package nist

import (
	"fmt"

	"snvmm/internal/core"
	"snvmm/internal/prng"
)

// This file builds the paper's nine randomness data sets (Section 6.1).
// Each data set is a collection of binary sequences assembled from SPE
// block encryptions (128-bit blocks — one 8x8 MLC-2 crossbar). The paper
// uses 150 sequences of 120 kbits each; DataSetSpec scales both down for
// tractable runs while preserving every construction.

// DataSetName enumerates the nine Table 2 columns.
type DataSetName string

const (
	KeyAvalanche   DataSetName = "Avalanche-Key"
	PTAvalanche    DataSetName = "Avalanche-PT"
	HWAvalanche    DataSetName = "Avalanche-h/w"
	PTCTCorr       DataSetName = "PT/CT-corr"
	RandomPTKey    DataSetName = "Rnd-PT/CT"
	LowDensityKey  DataSetName = "LowDen-Key"
	LowDensityPT   DataSetName = "LowDen-PT"
	HighDensityKey DataSetName = "HighDen-Key"
	HighDensityPT  DataSetName = "HighDen-PT"
)

// AllDataSets lists the nine constructions in Table 2 column order.
var AllDataSets = []DataSetName{
	KeyAvalanche, PTAvalanche, HWAvalanche, PTCTCorr, RandomPTKey,
	LowDensityKey, LowDensityPT, HighDensityKey, HighDensityPT,
}

// DataSetSpec sizes a data-set build.
type DataSetSpec struct {
	Sequences int // paper: 150
	SeqBits   int // paper: 120000
	Seed      int64
}

// DefaultSpec is a reduced load suitable for test runs.
func DefaultSpec() DataSetSpec {
	return DataSetSpec{Sequences: 10, SeqBits: 20000, Seed: 1}
}

// PaperSpec is the full Table 2 load.
func PaperSpec() DataSetSpec {
	return DataSetSpec{Sequences: 150, SeqBits: 120000, Seed: 1}
}

// blockBits is the SPE block size in bits.
const blockBits = 128

func bytesToBits(dst []uint8, src []byte) []uint8 {
	for _, b := range src {
		for i := 0; i < 8; i++ {
			dst = append(dst, b>>uint(i)&1)
		}
	}
	return dst
}

func xorBytes(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Builder generates data sets against one SPE engine.
type Builder struct {
	eng *Engine
}

// Engine aliases core.Engine for the builder API.
type Engine = core.Engine

// NewBuilder wraps an SPE engine.
func NewBuilder(eng *Engine) *Builder { return &Builder{eng: eng} }

// Build produces the sequences of the named data set.
func (b *Builder) Build(name DataSetName, spec DataSetSpec) ([][]uint8, error) {
	switch name {
	case KeyAvalanche:
		return b.keyAvalanche(spec)
	case PTAvalanche:
		return b.ptAvalanche(spec)
	case HWAvalanche:
		return b.hwAvalanche(spec)
	case PTCTCorr:
		return b.ptctCorr(spec)
	case RandomPTKey:
		return b.randomPTKey(spec)
	case LowDensityKey:
		return b.densityKey(spec, false)
	case LowDensityPT:
		return b.densityPT(spec, false)
	case HighDensityKey:
		return b.densityKey(spec, true)
	case HighDensityPT:
		return b.densityPT(spec, true)
	default:
		return nil, fmt.Errorf("nist: unknown data set %q", name)
	}
}

// keyAvalanche: fixed all-zero plaintext; XOR the ciphertext under a random
// key with the ciphertexts under single-bit-flipped keys.
func (b *Builder) keyAvalanche(spec DataSetSpec) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed) * 77)
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*1000+int64(s))
		if err != nil {
			return nil, err
		}
		pt := make([]byte, ciph.BlockBytes())
		bits := make([]uint8, 0, spec.SeqBits)
		bitIdx := 0
		var key prng.Key
		var base []byte
		for len(bits) < spec.SeqBits {
			if bitIdx%prng.KeyBits == 0 {
				// A fresh random base key for each 88-flip sweep keeps
				// the sequence aperiodic.
				key = prng.NewKey(g.Uint64(), g.Uint64())
				var err error
				base, err = ciph.Encrypt(key, pt)
				if err != nil {
					return nil, err
				}
			}
			ct, err := ciph.Encrypt(key.FlipBit(bitIdx%prng.KeyBits), pt)
			if err != nil {
				return nil, err
			}
			bits = bytesToBits(bits, xorBytes(base, ct))
			bitIdx++
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// ptAvalanche: all-zero key; XOR ciphertexts of random plaintexts with the
// ciphertexts of their single-bit-flipped variants.
func (b *Builder) ptAvalanche(spec DataSetSpec) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed)*131 + 5)
	seqs := make([][]uint8, 0, spec.Sequences)
	key := prng.NewKey(0, 0)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*2000+int64(s))
		if err != nil {
			return nil, err
		}
		bits := make([]uint8, 0, spec.SeqBits)
		for len(bits) < spec.SeqBits {
			pt := make([]byte, ciph.BlockBytes())
			for i := range pt {
				pt[i] = byte(g.Uint64())
			}
			base, err := ciph.Encrypt(key, pt)
			if err != nil {
				return nil, err
			}
			flip := g.Intn(blockBits)
			pt[flip/8] ^= 1 << uint(flip%8)
			ct, err := ciph.Encrypt(key, pt)
			if err != nil {
				return nil, err
			}
			bits = bytesToBits(bits, xorBytes(base, ct))
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// hwAvalanche: all-zero plaintext and key; perturb the crossbar's physical
// parameters (5-10% in 0.5% steps, Section 6.1) and XOR the resulting
// ciphertexts against the nominal device's.
func (b *Builder) hwAvalanche(spec DataSetSpec) ([][]uint8, error) {
	base, err := core.NewCipher(b.eng, spec.Seed*3000)
	if err != nil {
		return nil, err
	}
	key := prng.NewKey(0, 0)
	pt := make([]byte, base.BlockBytes())
	baseCT, err := base.Encrypt(key, pt)
	if err != nil {
		return nil, err
	}
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		bits := make([]uint8, 0, spec.SeqBits)
		step := 0
		for len(bits) < spec.SeqBits {
			frac := 0.05 + 0.005*float64(step%11) // 5% .. 10% in 0.5% steps
			p := b.eng.P
			p.Xbar.VarFrac = frac
			p.PoEs = b.eng.Placement // reuse placement; hardware change is device-level
			pertEng, err := core.NewEngine(p)
			if err != nil {
				return nil, err
			}
			pert, err := core.NewCipher(pertEng, spec.Seed*4000+int64(s)*97+int64(step))
			if err != nil {
				return nil, err
			}
			ct, err := pert.Encrypt(key, pt)
			if err != nil {
				return nil, err
			}
			bits = bytesToBits(bits, xorBytes(baseCT, ct))
			step++
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// ptctCorr: concatenate PT XOR CT over random plaintexts under one random
// key per sequence.
func (b *Builder) ptctCorr(spec DataSetSpec) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed)*191 + 3)
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*5000+int64(s))
		if err != nil {
			return nil, err
		}
		key := prng.NewKey(g.Uint64(), g.Uint64())
		bits := make([]uint8, 0, spec.SeqBits)
		for len(bits) < spec.SeqBits {
			pt := make([]byte, ciph.BlockBytes())
			for i := range pt {
				pt[i] = byte(g.Uint64())
			}
			ct, err := ciph.Encrypt(key, pt)
			if err != nil {
				return nil, err
			}
			bits = bytesToBits(bits, xorBytes(pt, ct))
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// randomPTKey: concatenated ciphertexts of random plaintexts under a random
// key.
func (b *Builder) randomPTKey(spec DataSetSpec) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed)*211 + 9)
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*6000+int64(s))
		if err != nil {
			return nil, err
		}
		key := prng.NewKey(g.Uint64(), g.Uint64())
		bits := make([]uint8, 0, spec.SeqBits)
		for len(bits) < spec.SeqBits {
			pt := make([]byte, ciph.BlockBytes())
			for i := range pt {
				pt[i] = byte(g.Uint64())
			}
			ct, err := ciph.Encrypt(key, pt)
			if err != nil {
				return nil, err
			}
			bits = bytesToBits(bits, ct)
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// densityPT: ciphertexts of low-density (or high-density) plaintext blocks:
// the all-zero (all-one) block, all single-bit blocks, then two-bit blocks.
func (b *Builder) densityPT(spec DataSetSpec, high bool) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed)*223 + 1)
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*7000+int64(s))
		if err != nil {
			return nil, err
		}
		key := prng.NewKey(g.Uint64(), g.Uint64())
		bits := make([]uint8, 0, spec.SeqBits)
		emit := func(pt []byte) error {
			if high {
				for i := range pt {
					pt[i] = ^pt[i]
				}
			}
			ct, err := ciph.Encrypt(key, pt)
			if err != nil {
				return err
			}
			bits = bytesToBits(bits, ct)
			return nil
		}
		// All-zero block, then single-one blocks, then two-one blocks.
		if err := emit(make([]byte, ciph.BlockBytes())); err != nil {
			return nil, err
		}
	outer:
		for i := 0; i < blockBits && len(bits) < spec.SeqBits; i++ {
			pt := make([]byte, ciph.BlockBytes())
			pt[i/8] |= 1 << uint(i%8)
			if err := emit(pt); err != nil {
				return nil, err
			}
			for j := i + 1; j < blockBits; j++ {
				if len(bits) >= spec.SeqBits {
					break outer
				}
				pt2 := make([]byte, ciph.BlockBytes())
				pt2[i/8] |= 1 << uint(i%8)
				pt2[j/8] |= 1 << uint(j%8)
				if err := emit(pt2); err != nil {
					return nil, err
				}
			}
		}
		if len(bits) < spec.SeqBits {
			return nil, fmt.Errorf("nist: density-PT construction exhausted at %d bits", len(bits))
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}

// densityKey: ciphertexts of a fixed random plaintext under low-density (or
// high-density) keys: all-zero key, single-one keys, two-one keys.
func (b *Builder) densityKey(spec DataSetSpec, high bool) ([][]uint8, error) {
	g := prng.NewGen(uint64(spec.Seed)*227 + 8)
	seqs := make([][]uint8, 0, spec.Sequences)
	for s := 0; s < spec.Sequences; s++ {
		ciph, err := core.NewCipher(b.eng, spec.Seed*8000+int64(s))
		if err != nil {
			return nil, err
		}
		pt := make([]byte, ciph.BlockBytes())
		for i := range pt {
			pt[i] = byte(g.Uint64())
		}
		mk := func(kb []byte) (prng.Key, error) {
			if high {
				inv := make([]byte, len(kb))
				for i := range kb {
					inv[i] = ^kb[i]
				}
				kb = inv
			}
			return prng.KeyFromBytes(kb)
		}
		bits := make([]uint8, 0, spec.SeqBits)
		emit := func(kb []byte) error {
			key, err := mk(kb)
			if err != nil {
				return err
			}
			ct, err := ciph.Encrypt(key, pt)
			if err != nil {
				return err
			}
			bits = bytesToBits(bits, ct)
			return nil
		}
		if err := emit(make([]byte, prng.KeyBits/8)); err != nil {
			return nil, err
		}
	outer:
		for i := 0; i < prng.KeyBits && len(bits) < spec.SeqBits; i++ {
			kb := make([]byte, prng.KeyBits/8)
			kb[i/8] |= 1 << uint(7-i%8)
			if err := emit(kb); err != nil {
				return nil, err
			}
			for j := i + 1; j < prng.KeyBits; j++ {
				if len(bits) >= spec.SeqBits {
					break outer
				}
				kb2 := make([]byte, prng.KeyBits/8)
				kb2[i/8] |= 1 << uint(7-i%8)
				kb2[j/8] |= 1 << uint(7-j%8)
				if err := emit(kb2); err != nil {
					return nil, err
				}
			}
		}
		if len(bits) < spec.SeqBits {
			return nil, fmt.Errorf("nist: density-key construction exhausted at %d bits", len(bits))
		}
		seqs = append(seqs, bits[:spec.SeqBits])
	}
	return seqs, nil
}
