package nist

import (
	"testing"

	"snvmm/internal/core"
)

var dsEngine *core.Engine

func dsEngineForTest(t *testing.T) *core.Engine {
	t.Helper()
	if dsEngine == nil {
		e, err := core.NewEngine(core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		dsEngine = e
	}
	return dsEngine
}

func TestBuildUnknownDataSet(t *testing.T) {
	b := NewBuilder(dsEngineForTest(t))
	if _, err := b.Build("nope", DefaultSpec()); err == nil {
		t.Error("expected unknown data set error")
	}
}

func TestDataSetShapes(t *testing.T) {
	b := NewBuilder(dsEngineForTest(t))
	spec := DataSetSpec{Sequences: 2, SeqBits: 2048, Seed: 3}
	for _, name := range []DataSetName{KeyAvalanche, PTAvalanche, PTCTCorr, RandomPTKey, LowDensityPT, HighDensityKey} {
		seqs, err := b.Build(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(seqs) != spec.Sequences {
			t.Errorf("%s: %d sequences, want %d", name, len(seqs), spec.Sequences)
		}
		for _, s := range seqs {
			if len(s) != spec.SeqBits {
				t.Errorf("%s: sequence length %d, want %d", name, len(s), spec.SeqBits)
			}
			for _, bit := range s {
				if bit > 1 {
					t.Fatalf("%s: non-binary value %d", name, bit)
				}
			}
		}
	}
}

func TestDataSetsDeterministic(t *testing.T) {
	b := NewBuilder(dsEngineForTest(t))
	spec := DataSetSpec{Sequences: 1, SeqBits: 1024, Seed: 9}
	s1, err := b.Build(RandomPTKey, spec)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Build(RandomPTKey, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1[0] {
		if s1[0][i] != s2[0][i] {
			t.Fatal("data set not deterministic")
		}
	}
}

// TestSPERandomnessSmallBatch is a miniature Table 2: a few sequences per
// data set, with the suite's failure count bounded by the batch tolerance.
// The full-scale run lives in the benchmark harness (cmd/spe-sim -exp
// table2).
func TestSPERandomnessSmallBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b := NewBuilder(dsEngineForTest(t))
	spec := DataSetSpec{Sequences: 4, SeqBits: 20000, Seed: 7}
	for _, name := range []DataSetName{KeyAvalanche, PTAvalanche, RandomPTKey, PTCTCorr} {
		seqs, err := b.Build(name, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		br := RunBatch(seqs)
		allowed := MaxAllowedFailures(spec.Sequences)
		if allowed < 1 {
			allowed = 1
		}
		for _, test := range TestNames {
			if br.Failures[test] > allowed {
				t.Errorf("%s / %s: %d of %d sequences failed (allow %d)",
					name, test, br.Failures[test], spec.Sequences, allowed)
			}
		}
	}
}
