package nist

import (
	"math"
	"testing"

	"snvmm/internal/prng"
)

// pi100 is the first 100 binary digits of pi (including the integer part
// "11"), the worked example used throughout SP 800-22.
const pi100 = "1100100100001111110110101010001000100001011010001100" +
	"001000110100110001001100011001100010100010111000"

func strBits(s string) []uint8 {
	out := make([]uint8, len(s))
	for i := range s {
		if s[i] == '1' {
			out[i] = 1
		}
	}
	return out
}

func randomBits(n int, seed uint64) []uint8 {
	g := prng.NewGen(seed)
	bits := make([]uint8, n)
	g.Bits(bits)
	return bits
}

func approxP(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s p = %g, want %g", what, got, want)
	}
}

func TestFrequencyPiExample(t *testing.T) {
	// SP 800-22 section 2.1.8: P-value = 0.109599.
	r := Frequency(strBits(pi100))
	if !r.Applicable {
		t.Fatal("not applicable")
	}
	approxP(t, r.P[0], 0.109599, 1e-4, "monobit(pi)")
}

func TestBlockFrequencyPiExample(t *testing.T) {
	// SP 800-22 section 2.2.8 (M=10): P-value = 0.706438.
	r := BlockFrequency(strBits(pi100), 10)
	approxP(t, r.P[0], 0.706438, 1e-4, "blockfreq(pi,M=10)")
}

func TestRunsPiExample(t *testing.T) {
	// SP 800-22 section 2.3.8: P-value = 0.500798.
	r := Runs(strBits(pi100))
	approxP(t, r.P[0], 0.500798, 1e-4, "runs(pi)")
}

func TestCumulativeSumsPiExample(t *testing.T) {
	// SP 800-22 section 2.13.8: forward P = 0.219194, reverse P = 0.114866.
	r := CumulativeSums(strBits(pi100))
	approxP(t, r.P[0], 0.219194, 1e-3, "cusum-fwd(pi)")
	approxP(t, r.P[1], 0.114866, 1e-3, "cusum-rev(pi)")
}

func TestRandomSequencePassesAll(t *testing.T) {
	// A good PRNG sequence long enough for every test should pass the
	// whole suite (seeds picked once; deterministic).
	bits := randomBits(1<<20, 2)
	res := Suite(bits)
	if len(res) != len(TestNames) {
		t.Fatalf("suite returned %d tests", len(res))
	}
	for name, r := range res {
		if !r.Applicable {
			t.Errorf("%s not applicable at n=2^20", name)
			continue
		}
		if !r.Pass(Alpha) {
			t.Errorf("%s failed on random data: p=%v", name, r.P)
		}
		for _, p := range r.P {
			if p < 0 || p > 1 {
				t.Errorf("%s p-value %g out of [0,1]", name, p)
			}
		}
	}
}

func TestAllZerosFailsEverythingApplicable(t *testing.T) {
	bits := make([]uint8, 1<<17)
	for _, name := range []string{"F-mono", "F-block", "Runs", "LRoO", "Cusums", "App.Ent", "Ser.Com"} {
		r := Suite(bits)[name]
		if r.Applicable && r.Pass(Alpha) {
			t.Errorf("%s passed on all-zeros", name)
		}
	}
}

func TestAlternatingFailsRuns(t *testing.T) {
	bits := make([]uint8, 1<<14)
	for i := range bits {
		bits[i] = uint8(i % 2)
	}
	if r := Runs(bits); r.Pass(Alpha) {
		t.Error("runs passed on 0101...")
	}
	if r := DFT(bits); r.Pass(Alpha) {
		t.Error("DFT passed on 0101...")
	}
	if r := Serial(bits, 5); r.Pass(Alpha) {
		t.Error("serial passed on 0101...")
	}
	// But monobit is perfectly balanced and must pass.
	if r := Frequency(bits); !r.Pass(Alpha) {
		t.Error("monobit failed on balanced alternating")
	}
}

func TestBiasedFailsFrequency(t *testing.T) {
	g := prng.NewGen(9)
	bits := make([]uint8, 1<<14)
	for i := range bits {
		if g.Intn(100) < 55 { // 55% ones
			bits[i] = 1
		}
	}
	if r := Frequency(bits); r.Pass(Alpha) {
		t.Error("monobit passed on 55% biased data")
	}
}

func TestLFSRFailsLinearComplexity(t *testing.T) {
	// A short-period LFSR has tiny linear complexity in every block.
	state := uint32(0xACE1)
	bits := make([]uint8, 20000)
	for i := range bits {
		bit := state & 1
		fb := (state ^ state>>2 ^ state>>3 ^ state>>5) & 1
		state = state>>1 | fb<<15
		bits[i] = uint8(bit)
	}
	if r := LinearComplexity(bits); r.Pass(Alpha) {
		t.Error("linear complexity passed on degree-16 LFSR output")
	}
}

func TestPeriodicTemplateFailsNOTM(t *testing.T) {
	// Plant the default template 000000001 much more often than chance.
	g := prng.NewGen(4)
	bits := make([]uint8, 1<<14)
	g.Bits(bits)
	for i := 0; i+9 < len(bits); i += 40 {
		copy(bits[i:i+9], []uint8{0, 0, 0, 0, 0, 0, 0, 0, 1})
	}
	if r := NonOverlappingTemplate(bits, defaultTemplate); r.Pass(Alpha) {
		t.Error("NOTM passed on template-stuffed data")
	}
}

func TestMaurerDetectsRepetition(t *testing.T) {
	// Repeating a short pattern makes the universal statistic collapse.
	pattern := randomBits(64, 5)
	bits := make([]uint8, 1<<19)
	for i := range bits {
		bits[i] = pattern[i%64]
	}
	r := MaurerUniversal(bits)
	if !r.Applicable {
		t.Skip("Maurer not applicable at this length")
	}
	if r.Pass(Alpha) {
		t.Error("Maurer passed on 64-bit repeating pattern")
	}
}

func TestApplicabilityShortSequences(t *testing.T) {
	short := randomBits(64, 1)
	if r := Frequency(short); r.Applicable {
		t.Error("monobit applicable at n=64")
	}
	if r := BinaryMatrixRank(short); r.Applicable {
		t.Error("BMR applicable at n=64")
	}
	if r := MaurerUniversal(short); r.Applicable {
		t.Error("Maurer applicable at n=64")
	}
	if r := RandomExcursions(short); r.Applicable {
		t.Error("RndEx applicable at n=64")
	}
	// Inapplicable results pass vacuously.
	if r := BinaryMatrixRank(short); !r.Pass(Alpha) {
		t.Error("inapplicable result should pass")
	}
}

func TestPsiSquaredUniform(t *testing.T) {
	// For perfectly uniform pattern counts psi^2 is ~0; for constant data
	// it is large.
	bits := randomBits(1<<16, 3)
	if v := psiSquared(bits, 3); v > 50 {
		t.Errorf("psi^2 = %g on random data", v)
	}
	zeros := make([]uint8, 1<<12)
	if v := psiSquared(zeros, 3); v < 1000 {
		t.Errorf("psi^2 = %g on zeros, want large", v)
	}
}

func TestRandomExcursionsApplicability(t *testing.T) {
	// Random walks of decent length usually have >= 500 zero crossings
	// only for quite long sequences; verify both branches reachable.
	long := randomBits(1<<20, 8)
	r := RandomExcursions(long)
	if r.Applicable {
		for _, p := range r.P {
			if p < 0 || p > 1 {
				t.Errorf("RndEx p out of range: %g", p)
			}
		}
		if len(r.P) != 8 {
			t.Errorf("RndEx returned %d p-values, want 8", len(r.P))
		}
	}
	rv := RandomExcursionsVariant(long)
	if rv.Applicable && len(rv.P) != 18 {
		t.Errorf("REV returned %d p-values, want 18", len(rv.P))
	}
}

func TestRunBatchCounts(t *testing.T) {
	seqs := [][]uint8{
		randomBits(1<<14, 1),
		make([]uint8, 1<<14), // all zeros: fails many tests
	}
	br := RunBatch(seqs)
	if br.Sequences != 2 {
		t.Errorf("sequences = %d", br.Sequences)
	}
	if br.Failures["F-mono"] != 1 {
		t.Errorf("monobit failures = %d, want 1", br.Failures["F-mono"])
	}
}

func TestMaxAllowedFailures(t *testing.T) {
	// The paper's rule: at 150 sequences, up to 5 failures allowed.
	if got := MaxAllowedFailures(150); got != 5 {
		t.Errorf("MaxAllowedFailures(150) = %d, want 5", got)
	}
	if got := MaxAllowedFailures(10); got < 1 {
		t.Errorf("MaxAllowedFailures(10) = %d, want >= 1", got)
	}
}

func TestResultPassEdge(t *testing.T) {
	r := Result{Name: "x", Applicable: true, P: []float64{Alpha}}
	if !r.Pass(Alpha) {
		t.Error("p == alpha should pass")
	}
	r.P[0] = Alpha - 1e-9
	if r.Pass(Alpha) {
		t.Error("p < alpha should fail")
	}
	empty := Result{Name: "y", Applicable: true}
	if !empty.Pass(Alpha) {
		t.Error("empty P should pass vacuously")
	}
}

func TestNonOverlappingTemplateAll(t *testing.T) {
	bits := randomBits(1<<15, 21)
	r := NonOverlappingTemplateAll(bits, 9)
	if !r.Applicable {
		t.Fatal("not applicable")
	}
	if len(r.P) != 148 {
		t.Fatalf("%d template p-values, want 148", len(r.P))
	}
	// On random data roughly alpha*148 ~ 1.5 templates fail; allow slack.
	if fails := FailingTemplates(r, Alpha); fails > 8 {
		t.Errorf("%d/148 templates fail on random data", fails)
	}
	// Short input is inapplicable.
	if rr := NonOverlappingTemplateAll(randomBits(50, 1), 9); rr.Applicable {
		t.Error("short sequence should be inapplicable")
	}
	// m=0 yields nothing.
	if rr := NonOverlappingTemplateAll(bits, 0); rr.Applicable {
		t.Error("m=0 should be inapplicable")
	}
}

func TestNonOverlappingTemplateAllDetectsStuffing(t *testing.T) {
	g := prng.NewGen(31)
	bits := make([]uint8, 1<<15)
	g.Bits(bits)
	tpl := []uint8{1, 0, 1, 1, 0, 0, 1, 0, 1} // aperiodic? verify below
	for i := 0; i+9 < len(bits); i += 50 {
		copy(bits[i:i+9], tpl)
	}
	r := NonOverlappingTemplateAll(bits, 9)
	if fails := FailingTemplates(r, Alpha); fails == 0 {
		t.Error("template stuffing not detected by any template")
	}
}

func TestDFTNonPowerOfTwoLength(t *testing.T) {
	// 120000-bit sequences (the paper's length) exercise the Bluestein
	// path of the spectral test.
	bits := randomBits(120000, 77)
	r := DFT(bits)
	if !r.Applicable {
		t.Fatal("DFT inapplicable at n=120000")
	}
	if !r.Pass(Alpha) {
		t.Errorf("DFT failed random data at n=120000: p=%v", r.P)
	}
}

func TestSerialAndApEnVaryingM(t *testing.T) {
	bits := randomBits(1<<15, 13)
	for _, m := range []int{2, 3, 5, 7} {
		if r := Serial(bits, m); r.Applicable && !r.Pass(Alpha) {
			t.Errorf("Serial m=%d failed random data: %v", m, r.P)
		}
		if r := ApproximateEntropy(bits, m); r.Applicable && !r.Pass(Alpha) {
			t.Errorf("ApEn m=%d failed random data: %v", m, r.P)
		}
	}
	// Defaults kick in for m <= 0.
	if r := Serial(bits, 0); !r.Applicable {
		t.Error("Serial default m inapplicable")
	}
	if r := ApproximateEntropy(bits, -1); !r.Applicable {
		t.Error("ApEn default m inapplicable")
	}
}

func TestLongestRunLongSequenceParams(t *testing.T) {
	// n >= 750000 selects the M=10000 parameter set.
	bits := randomBits(800000, 3)
	r := LongestRunOfOnes(bits)
	if !r.Applicable || !r.Pass(Alpha) {
		t.Errorf("LRoO long-sequence params failed: %+v", r)
	}
}

func TestPValueUniformity(t *testing.T) {
	// Uniform p-values pass the second-level test.
	g := prng.NewGen(55)
	ps := make([]float64, 500)
	for i := range ps {
		ps[i] = float64(g.Uint64()>>11) / float64(1<<53)
	}
	if u := PValueUniformity(ps); u < 0.0001 {
		t.Errorf("uniform p-values judged non-uniform: %g", u)
	}
	// Clumped p-values fail.
	for i := range ps {
		ps[i] = 0.05 + 0.01*float64(i%3)
	}
	if u := PValueUniformity(ps); u > 0.0001 {
		t.Errorf("clumped p-values judged uniform: %g", u)
	}
	// Too few samples: indeterminate.
	if u := PValueUniformity(ps[:5]); u != 1 {
		t.Errorf("small sample uniformity %g, want 1", u)
	}
}

func TestRunBatchCollectsPValues(t *testing.T) {
	seqs := [][]uint8{randomBits(1<<14, 2), randomBits(1<<14, 3)}
	br := RunBatch(seqs)
	if got := len(br.PValues["F-mono"]); got != 2 {
		t.Errorf("collected %d monobit p-values, want 2", got)
	}
	for _, p := range br.PValues["F-mono"] {
		if p < 0 || p > 1 {
			t.Errorf("p out of range: %g", p)
		}
	}
}
