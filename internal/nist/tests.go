// Package nist implements the fifteen statistical tests of NIST SP 800-22
// (the suite the paper applies in Section 6.1 / Table 2) plus the paper's
// nine data-set constructions. Each test converts a binary sequence into
// one or more p-values; a sequence fails a test at significance alpha
// (0.01 in the paper) if its representative p-value falls below alpha.
package nist

import (
	"fmt"
	"math"

	"snvmm/internal/numeric"
)

// Alpha is the significance level used throughout Table 2.
const Alpha = 0.01

// Result is one test's outcome on one sequence.
type Result struct {
	Name       string
	P          []float64 // one or more p-values
	Applicable bool      // false when the sequence is too short / J too small
}

// Pass reports whether the sequence passes at the given significance level.
// Inapplicable tests pass vacuously (they are excluded from Table 2 counts
// by the caller if desired). For multi-p tests the representative
// (first) p-value decides, matching how Table 2 reports one row per test.
func (r Result) Pass(alpha float64) bool {
	if !r.Applicable || len(r.P) == 0 {
		return true
	}
	return r.P[0] >= alpha
}

func bitsToPM1(bits []uint8) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = 2*float64(b) - 1
	}
	return out
}

// Frequency is the monobit test (SP 800-22 section 2.1).
func Frequency(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "F-mono", Applicable: n >= 100}
	s := 0
	for _, b := range bits {
		s += 2*int(b) - 1
	}
	sObs := math.Abs(float64(s)) / math.Sqrt(float64(n))
	r.P = []float64{numeric.Erfc(sObs / math.Sqrt2)}
	return r
}

// BlockFrequency is the frequency-within-a-block test (2.2) with block
// size M.
func BlockFrequency(bits []uint8, M int) Result {
	n := len(bits)
	r := Result{Name: "F-block"}
	if M <= 0 {
		M = 128
	}
	N := n / M
	r.Applicable = N >= 1 && n >= 100
	if !r.Applicable {
		return r
	}
	chi := 0.0
	for i := 0; i < N; i++ {
		ones := 0
		for j := 0; j < M; j++ {
			ones += int(bits[i*M+j])
		}
		pi := float64(ones) / float64(M)
		chi += (pi - 0.5) * (pi - 0.5)
	}
	chi *= 4 * float64(M)
	r.P = []float64{numeric.Igamc(float64(N)/2, chi/2)}
	return r
}

// Runs is the runs test (2.3).
func Runs(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "Runs", Applicable: n >= 100}
	if !r.Applicable {
		return r
	}
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	pi := float64(ones) / float64(n)
	// Prerequisite frequency check.
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		r.P = []float64{0}
		return r
	}
	v := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			v++
		}
	}
	num := math.Abs(float64(v) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	r.P = []float64{numeric.Erfc(num / den)}
	return r
}

// LongestRunOfOnes is test 2.4. Parameters auto-select on length.
func LongestRunOfOnes(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "LRoO", Applicable: n >= 128}
	if !r.Applicable {
		return r
	}
	var m, k int
	var vMin int
	var pi []float64
	switch {
	case n < 6272:
		m, k, vMin = 8, 3, 1
		pi = []float64{0.2148, 0.3672, 0.2305, 0.1875}
	case n < 750000:
		m, k, vMin = 128, 5, 4
		pi = []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	default:
		m, k, vMin = 10000, 6, 10
		pi = []float64{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727}
	}
	N := n / m
	counts := make([]int, k+1)
	for i := 0; i < N; i++ {
		longest, cur := 0, 0
		for j := 0; j < m; j++ {
			if bits[i*m+j] == 1 {
				cur++
				if cur > longest {
					longest = cur
				}
			} else {
				cur = 0
			}
		}
		cat := longest - vMin
		if cat < 0 {
			cat = 0
		}
		if cat > k {
			cat = k
		}
		counts[cat]++
	}
	chi := 0.0
	for i := 0; i <= k; i++ {
		exp := float64(N) * pi[i]
		d := float64(counts[i]) - exp
		chi += d * d / exp
	}
	r.P = []float64{numeric.Igamc(float64(k)/2, chi/2)}
	return r
}

// BinaryMatrixRank is test 2.5 over 32x32 matrices.
func BinaryMatrixRank(bits []uint8) Result {
	const M, Q = 32, 32
	n := len(bits)
	N := n / (M * Q)
	r := Result{Name: "BMR", Applicable: N >= 38}
	if !r.Applicable {
		return r
	}
	// Asymptotic rank probabilities for 32x32 over GF(2).
	const pFull, pM1 = 0.2888, 0.5776
	pRest := 1 - pFull - pM1
	var fFull, fM1, fRest int
	for b := 0; b < N; b++ {
		rank := numeric.GF2RankBits(bits[b*M*Q:(b+1)*M*Q], M)
		switch rank {
		case M:
			fFull++
		case M - 1:
			fM1++
		default:
			fRest++
		}
	}
	chi := sq(float64(fFull)-pFull*float64(N))/(pFull*float64(N)) +
		sq(float64(fM1)-pM1*float64(N))/(pM1*float64(N)) +
		sq(float64(fRest)-pRest*float64(N))/(pRest*float64(N))
	r.P = []float64{math.Exp(-chi / 2)} // igamc(1, chi/2) = exp(-chi/2) for 2 df
	return r
}

func sq(x float64) float64 { return x * x }

// DFT is the discrete Fourier transform (spectral) test 2.6.
func DFT(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "DFT", Applicable: n >= 1000}
	if !r.Applicable {
		return r
	}
	x := bitsToPM1(bits)
	mod := numeric.DFTModulus(x)
	threshold := math.Sqrt(math.Log(1/0.05) * float64(n))
	n0 := 0.95 * float64(n) / 2
	n1 := 0
	for k := 0; k < n/2; k++ {
		if mod[k] < threshold {
			n1++
		}
	}
	d := (float64(n1) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	r.P = []float64{numeric.Erfc(math.Abs(d) / math.Sqrt2)}
	return r
}

// NonOverlappingTemplate is test 2.7 for one m-bit aperiodic template.
func NonOverlappingTemplate(bits []uint8, tpl []uint8) Result {
	n := len(bits)
	m := len(tpl)
	r := Result{Name: "NOTM"}
	const N = 8
	M := n / N
	r.Applicable = m >= 2 && M > m && n >= 100
	if !r.Applicable {
		return r
	}
	mu := float64(M-m+1) / math.Pow(2, float64(m))
	sigma2 := float64(M) * (1/math.Pow(2, float64(m)) - float64(2*m-1)/math.Pow(2, float64(2*m)))
	chi := 0.0
	for b := 0; b < N; b++ {
		block := bits[b*M : (b+1)*M]
		w := 0
		for i := 0; i <= M-m; {
			if matchAt(block, tpl, i) {
				w++
				i += m // non-overlapping scan
			} else {
				i++
			}
		}
		chi += sq(float64(w)-mu) / sigma2
	}
	r.P = []float64{numeric.Igamc(N/2.0, chi/2)}
	return r
}

func matchAt(block, tpl []uint8, i int) bool {
	for j, t := range tpl {
		if block[i+j] != t {
			return false
		}
	}
	return true
}

// defaultTemplate is the representative template used when the suite
// reports one NOTM row (the first length-9 aperiodic template, 000000001).
var defaultTemplate = []uint8{0, 0, 0, 0, 0, 0, 0, 0, 1}

// OverlappingTemplate is test 2.8 with the all-ones 9-bit template.
func OverlappingTemplate(bits []uint8) Result {
	const m = 9
	const M = 1032
	const K = 5
	n := len(bits)
	N := n / M
	r := Result{Name: "OTM", Applicable: N >= 1 && n >= 10320}
	if !r.Applicable {
		return r
	}
	pi := []float64{0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865}
	counts := make([]int, K+1)
	tpl := make([]uint8, m)
	for i := range tpl {
		tpl[i] = 1
	}
	for b := 0; b < N; b++ {
		block := bits[b*M : (b+1)*M]
		w := 0
		for i := 0; i <= M-m; i++ {
			if matchAt(block, tpl, i) {
				w++
			}
		}
		if w > K {
			w = K
		}
		counts[w]++
	}
	chi := 0.0
	for i := 0; i <= K; i++ {
		exp := float64(N) * pi[i]
		chi += sq(float64(counts[i])-exp) / exp
	}
	r.P = []float64{numeric.Igamc(K/2.0, chi/2)}
	return r
}

// maurerParams maps register length L to the expected value and variance of
// the universal statistic (Maurer 1992 / SP 800-22 table, extended down to
// L=3 for short sequences).
var maurerParams = map[int][2]float64{
	3:  {2.4016068, 1.901},
	4:  {3.3112247, 2.358},
	5:  {4.2534266, 2.705},
	6:  {5.2177052, 2.954},
	7:  {6.1962507, 3.125},
	8:  {7.1836656, 3.238},
	9:  {8.1764248, 3.311},
	10: {9.1723243, 3.356},
	11: {10.170032, 3.384},
	12: {11.168765, 3.401},
	13: {12.168070, 3.410},
	14: {13.167693, 3.416},
	15: {14.167488, 3.419},
	16: {15.167379, 3.421},
}

// MaurerUniversal is test 2.9. L auto-selects on sequence length per the
// SP 800-22 rule n >= 1010 * 2^L * L.
func MaurerUniversal(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "Maurer"}
	L := 16
	for ; L >= 3; L-- {
		if n >= 1010*(1<<uint(L))*L {
			break
		}
	}
	if L < 3 {
		return r // too short
	}
	Q := 10 * (1 << uint(L))
	K := n/L - Q
	if K < 1000 {
		return r
	}
	r.Applicable = true
	table := make([]int, 1<<uint(L))
	block := func(i int) int {
		v := 0
		for j := 0; j < L; j++ {
			v = v<<1 | int(bits[i*L+j])
		}
		return v
	}
	for i := 0; i < Q; i++ {
		table[block(i)] = i + 1
	}
	sum := 0.0
	for i := Q; i < Q+K; i++ {
		v := block(i)
		sum += math.Log2(float64(i + 1 - table[v]))
		table[v] = i + 1
	}
	fn := sum / float64(K)
	par := maurerParams[L]
	c := 0.7 - 0.8/float64(L) + (4+32/float64(L))*math.Pow(float64(K), -3/float64(L))/15
	sigma := c * math.Sqrt(par[1]/float64(K))
	r.P = []float64{numeric.Erfc(math.Abs(fn-par[0]) / (math.Sqrt2 * sigma))}
	return r
}

// LinearComplexity is test 2.10 with block length M=500.
func LinearComplexity(bits []uint8) Result {
	const M = 500
	const K = 6
	n := len(bits)
	N := n / M
	r := Result{Name: "Lin.Com", Applicable: N >= 20}
	if !r.Applicable {
		return r
	}
	pi := []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}
	mu := float64(M)/2 + (9+math.Pow(-1, M+1))/36 - (float64(M)/3+2.0/9)/math.Pow(2, M)
	counts := make([]int, K+1)
	sign := 1.0
	if M%2 == 1 {
		sign = -1
	}
	for b := 0; b < N; b++ {
		L := numeric.BerlekampMassey(bits[b*M : (b+1)*M])
		T := sign*(float64(L)-mu) + 2.0/9
		switch {
		case T <= -2.5:
			counts[0]++
		case T <= -1.5:
			counts[1]++
		case T <= -0.5:
			counts[2]++
		case T <= 0.5:
			counts[3]++
		case T <= 1.5:
			counts[4]++
		case T <= 2.5:
			counts[5]++
		default:
			counts[6]++
		}
	}
	chi := 0.0
	for i := 0; i <= K; i++ {
		exp := float64(N) * pi[i]
		chi += sq(float64(counts[i])-exp) / exp
	}
	r.P = []float64{numeric.Igamc(K/2.0, chi/2)}
	return r
}

// psiSquared computes the psi^2_m statistic over cyclic overlapping m-bit
// patterns (helper for Serial and ApproximateEntropy).
func psiSquared(bits []uint8, m int) float64 {
	if m <= 0 {
		return 0
	}
	n := len(bits)
	counts := make([]int, 1<<uint(m))
	mask := 1<<uint(m) - 1
	v := 0
	for i := 0; i < m-1; i++ {
		v = v<<1 | int(bits[i])
	}
	for i := 0; i < n; i++ {
		v = (v<<1 | int(bits[(i+m-1)%n])) & mask
		counts[v]++
	}
	sum := 0.0
	for _, c := range counts {
		sum += float64(c) * float64(c)
	}
	return sum*math.Pow(2, float64(m))/float64(n) - float64(n)
}

// Serial is test 2.11 with pattern length m; it yields two p-values.
func Serial(bits []uint8, m int) Result {
	n := len(bits)
	r := Result{Name: "Ser.Com"}
	if m <= 0 {
		m = 5
	}
	r.Applicable = m >= 2 && n >= 1<<uint(m+2)
	if !r.Applicable {
		return r
	}
	p0 := psiSquared(bits, m)
	p1 := psiSquared(bits, m-1)
	p2 := psiSquared(bits, m-2)
	d1 := p0 - p1
	d2 := p0 - 2*p1 + p2
	r.P = []float64{
		numeric.Igamc(math.Pow(2, float64(m-2)), d1/2),
		numeric.Igamc(math.Pow(2, float64(m-3)), d2/2),
	}
	return r
}

// ApproximateEntropy is test 2.12 with pattern length m.
func ApproximateEntropy(bits []uint8, m int) Result {
	n := len(bits)
	r := Result{Name: "App.Ent"}
	if m <= 0 {
		m = 5
	}
	r.Applicable = n >= 1<<uint(m+3)
	if !r.Applicable {
		return r
	}
	phi := func(mm int) float64 {
		counts := make([]int, 1<<uint(mm))
		mask := 1<<uint(mm) - 1
		v := 0
		for i := 0; i < mm-1; i++ {
			v = v<<1 | int(bits[i])
		}
		for i := 0; i < n; i++ {
			v = (v<<1 | int(bits[(i+mm-1)%n])) & mask
			counts[v]++
		}
		s := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				s += p * math.Log(p)
			}
		}
		return s
	}
	apen := phi(m) - phi(m+1)
	chi := 2 * float64(n) * (math.Ln2 - apen)
	if chi < 0 {
		chi = 0
	}
	r.P = []float64{numeric.Igamc(math.Pow(2, float64(m-1)), chi/2)}
	return r
}

// CumulativeSums is test 2.13; two p-values (forward, backward).
func CumulativeSums(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "Cusums", Applicable: n >= 100}
	if !r.Applicable {
		return r
	}
	p := func(reverse bool) float64 {
		s, z := 0, 0
		for i := 0; i < n; i++ {
			idx := i
			if reverse {
				idx = n - 1 - i
			}
			s += 2*int(bits[idx]) - 1
			if a := abs(s); a > z {
				z = a
			}
		}
		zf := float64(z)
		nf := float64(n)
		ratio := nf / zf
		sum1 := 0.0
		for k := int(math.Floor((-ratio + 1) / 4)); k <= int(math.Floor((ratio-1)/4)); k++ {
			sum1 += numeric.NormalCDF((4*float64(k)+1)*zf/math.Sqrt(nf)) -
				numeric.NormalCDF((4*float64(k)-1)*zf/math.Sqrt(nf))
		}
		sum2 := 0.0
		for k := int(math.Floor((-ratio - 3) / 4)); k <= int(math.Floor((ratio-1)/4)); k++ {
			sum2 += numeric.NormalCDF((4*float64(k)+3)*zf/math.Sqrt(nf)) -
				numeric.NormalCDF((4*float64(k)+1)*zf/math.Sqrt(nf))
		}
		return 1 - sum1 + sum2
	}
	r.P = []float64{clamp01(p(false)), clamp01(p(true))}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// RandomExcursions is test 2.14; eight p-values (states -4..-1, 1..4), the
// representative being state +1 (index 4).
func RandomExcursions(bits []uint8) Result {
	n := len(bits)
	r := Result{Name: "Rnd.Ex"}
	// Build the random walk and find cycles.
	s := 0
	walk := make([]int, n)
	for i, b := range bits {
		s += 2*int(b) - 1
		walk[i] = s
	}
	// Cycles are maximal segments between zero crossings.
	var cycles [][2]int
	start := 0
	for i, v := range walk {
		if v == 0 {
			cycles = append(cycles, [2]int{start, i})
			start = i + 1
		}
	}
	if start <= n-1 { // final partial cycle only if the walk ends off zero
		cycles = append(cycles, [2]int{start, n - 1})
	}
	J := len(cycles)
	r.Applicable = J >= 500
	if !r.Applicable {
		return r
	}
	states := []int{1, -1, 2, -2, 3, -3, 4, -4} // representative first
	r.P = make([]float64, len(states))
	for si, x := range states {
		// counts[k] = number of cycles visiting state x exactly k times
		// (k capped at 5).
		counts := make([]int, 6)
		for _, c := range cycles {
			visits := 0
			for i := c[0]; i <= c[1] && i < n; i++ {
				if walk[i] == x {
					visits++
				}
			}
			if visits > 5 {
				visits = 5
			}
			counts[visits]++
		}
		ax := float64(abs(x))
		pi := make([]float64, 6)
		pi[0] = 1 - 1/(2*ax)
		for k := 1; k <= 4; k++ {
			pi[k] = 1 / (4 * ax * ax) * math.Pow(1-1/(2*ax), float64(k-1))
		}
		pi[5] = 1 / (2 * ax) * math.Pow(1-1/(2*ax), 4)
		chi := 0.0
		for k := 0; k <= 5; k++ {
			exp := float64(J) * pi[k]
			chi += sq(float64(counts[k])-exp) / exp
		}
		r.P[si] = numeric.Igamc(2.5, chi/2)
	}
	return r
}

// RandomExcursionsVariant is test 2.15; eighteen p-values (states -9..9
// excluding 0), the representative being state +1.
func RandomExcursionsVariant(bits []uint8) Result {
	r := Result{Name: "REV"}
	s := 0
	visits := map[int]int{}
	J := 0
	for _, b := range bits {
		s += 2*int(b) - 1
		if s == 0 {
			J++
		} else if s >= -9 && s <= 9 {
			visits[s]++
		}
	}
	J++ // final cycle
	r.Applicable = J >= 500
	if !r.Applicable {
		return r
	}
	states := []int{1, -1}
	for x := 2; x <= 9; x++ {
		states = append(states, x, -x)
	}
	r.P = make([]float64, len(states))
	for i, x := range states {
		num := math.Abs(float64(visits[x]) - float64(J))
		den := math.Sqrt(2 * float64(J) * (4*math.Abs(float64(x)) - 2))
		r.P[i] = numeric.Erfc(num / den)
	}
	return r
}

// ErrShort is returned by Suite for sequences too short to test at all.
var ErrShort = fmt.Errorf("nist: sequence too short")

// NonOverlappingTemplateAll runs test 2.7 for every aperiodic template of
// length m (148 templates at the standard m=9), as the full STS does. The
// returned Result carries one p-value per template; Pass still judges by
// the representative first entry, while callers wanting the full battery
// can apply alpha across the slice.
func NonOverlappingTemplateAll(bits []uint8, m int) Result {
	r := Result{Name: "NOTM-all"}
	templates := numeric.AperiodicTemplates(m)
	if len(templates) == 0 {
		return r
	}
	probe := NonOverlappingTemplate(bits, templates[0])
	if !probe.Applicable {
		return r
	}
	r.Applicable = true
	r.P = make([]float64, 0, len(templates))
	for _, tpl := range templates {
		tr := NonOverlappingTemplate(bits, tpl)
		r.P = append(r.P, tr.P[0])
	}
	return r
}

// FailingTemplates counts how many templates in a NOTM-all result fall
// below alpha — the quantity STS reports as the per-template proportion.
func FailingTemplates(r Result, alpha float64) int {
	n := 0
	for _, p := range r.P {
		if p < alpha {
			n++
		}
	}
	return n
}
