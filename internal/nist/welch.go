package nist

import (
	"math"

	"snvmm/internal/numeric"
)

// Welch's unequal-variance t-test, the workhorse of TVLA-style side-channel
// leakage assessment: two groups of trace samples (fixed key vs. random key)
// are compared per sample point; a low p-value means the observable
// distinguishes the groups, i.e. the channel leaks. It lives here with the
// SP 800-22 tests because the red-team harness reuses the same Result /
// Pass(alpha) reporting machinery and the paper's alpha = 0.01.

// WelchT compares two samples with Welch's unequal-variance t-test and
// returns a two-sided p-value via the normal approximation to the t
// distribution (adequate at the trace counts the harness uses, n ≥ 30).
//
// Degenerate inputs are handled so distinguishers stay well-defined on the
// hardened engine, whose observable is an exact constant: two groups with
// zero variance and equal means are identical (p = 1); zero variance with
// different means is a perfect distinguisher (p = 0). Samples with fewer
// than two points are inapplicable.
func WelchT(a, b []float64) Result {
	r := Result{Name: "Welch-t", Applicable: len(a) >= 2 && len(b) >= 2}
	if !r.Applicable {
		return r
	}
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	sa := va / float64(len(a))
	sb := vb / float64(len(b))
	if sa+sb == 0 {
		if ma == mb {
			r.P = []float64{1}
		} else {
			r.P = []float64{0}
		}
		return r
	}
	t := math.Abs(ma-mb) / math.Sqrt(sa+sb)
	r.P = []float64{2 * numeric.NormalSF(t)}
	return r
}

// meanVar returns the sample mean and unbiased sample variance.
func meanVar(x []float64) (mean, variance float64) {
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(x) - 1)
	return mean, variance
}
