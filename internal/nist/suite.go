package nist

import "snvmm/internal/numeric"

// TestNames lists the fifteen suite tests in the Table 2 row order.
var TestNames = []string{
	"F-mono", "F-block", "Runs", "LRoO", "BMR", "DFT",
	"NOTM", "OTM", "Maurer", "Lin.Com", "Ser.Com", "App.Ent",
	"Cusums", "Rnd.Ex", "REV",
}

// Suite runs all fifteen tests on one sequence and returns results keyed by
// test name.
func Suite(bits []uint8) map[string]Result {
	out := make(map[string]Result, len(TestNames))
	add := func(r Result) { out[r.Name] = r }
	add(Frequency(bits))
	add(BlockFrequency(bits, 128))
	add(Runs(bits))
	add(LongestRunOfOnes(bits))
	add(BinaryMatrixRank(bits))
	add(DFT(bits))
	add(NonOverlappingTemplate(bits, defaultTemplate))
	add(OverlappingTemplate(bits))
	add(MaurerUniversal(bits))
	add(LinearComplexity(bits))
	add(Serial(bits, 5))
	add(ApproximateEntropy(bits, 5))
	add(CumulativeSums(bits))
	add(RandomExcursions(bits))
	add(RandomExcursionsVariant(bits))
	return out
}

// BatchResult aggregates suite outcomes over many sequences — one Table 2
// column.
type BatchResult struct {
	Sequences int
	// Failures[name] counts sequences with a representative p below Alpha.
	Failures map[string]int
	// Inapplicable[name] counts sequences where the test could not run.
	Inapplicable map[string]int
	// PValues[name] collects the representative p-value of every
	// applicable sequence, for the second-level uniformity analysis.
	PValues map[string][]float64
}

// RunBatch applies the suite to every sequence and tallies failures.
func RunBatch(seqs [][]uint8) BatchResult {
	br := BatchResult{
		Sequences:    len(seqs),
		Failures:     make(map[string]int, len(TestNames)),
		Inapplicable: make(map[string]int, len(TestNames)),
		PValues:      make(map[string][]float64, len(TestNames)),
	}
	for _, s := range seqs {
		for name, r := range Suite(s) {
			if !r.Applicable {
				br.Inapplicable[name]++
				continue
			}
			if len(r.P) > 0 {
				br.PValues[name] = append(br.PValues[name], r.P[0])
			}
			if !r.Pass(Alpha) {
				br.Failures[name]++
			}
		}
	}
	return br
}

// PValueUniformity is the STS second-level analysis: under the null
// hypothesis the p-values of a test across many sequences are uniform on
// [0, 1]. The statistic is a 10-bin chi-square; the returned value is the
// meta p-value (SP 800-22 section 4.2.2 requires it >= 0.0001 for large
// batches). Fewer than 10 samples returns 1 (not enough data to judge).
func PValueUniformity(ps []float64) float64 {
	if len(ps) < 10 {
		return 1
	}
	var bins [10]int
	for _, p := range ps {
		b := int(p * 10)
		if b > 9 {
			b = 9
		}
		if b < 0 {
			b = 0
		}
		bins[b]++
	}
	exp := float64(len(ps)) / 10
	chi := 0.0
	for _, c := range bins {
		d := float64(c) - exp
		chi += d * d / exp
	}
	return numeric.Igamc(4.5, chi/2)
}

// MaxAllowedFailures returns the largest number of failing sequences (out
// of total) consistent with randomness at significance Alpha: the smallest
// k whose exceedance probability under Bin(total, Alpha) drops below 0.5%.
// For the paper's 150 sequences this gives the quoted bound of 5.
func MaxAllowedFailures(total int) int {
	for k := 0; k <= total; k++ {
		if numeric.BinomialTail(total, Alpha, k+1) < 0.005 {
			return k
		}
	}
	return total
}
