// Package ecc implements the single-error-correct / double-error-detect
// (SECDED) Hamming code the paper points to for mitigating environmental
// upsets in the NVMM (Section 3, "Other Attacks": heat and radiation
// effects "can be mitigated by error-correction codes"). The code is the
// standard (72,64) extended Hamming construction applied per 64-bit word,
// which is how commodity ECC memories protect lines.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrUncorrectable is returned when a double-bit (or worse) error is
// detected.
var ErrUncorrectable = errors.New("ecc: uncorrectable error detected")

// CodewordBytes is the size of one encoded 64-bit word: 8 data bytes plus
// 1 check byte (7 Hamming bits + overall parity).
const CodewordBytes = 9

// WordBytes is the data payload per codeword.
const WordBytes = 8

// hammingPositions maps each of the 64 data bits to its position in the
// (127-truncated) Hamming codeword; positions that are powers of two hold
// check bits. Built once at init.
var dataPos [64]int

func init() {
	p := 1
	idx := 0
	for idx < 64 {
		p++
		if p&(p-1) == 0 {
			continue // power of two: check position
		}
		dataPos[idx] = p
		idx++
	}
}

// syndromeOf computes the Hamming syndrome of the 64 data bits plus the 7
// stored check bits.
func syndromeOf(word uint64, check uint8) int {
	syn := 0
	for i := 0; i < 64; i++ {
		if word>>uint(i)&1 == 1 {
			syn ^= dataPos[i]
		}
	}
	for b := 0; b < 7; b++ {
		if check>>uint(b)&1 == 1 {
			syn ^= 1 << uint(b)
		}
	}
	return syn
}

// checkBitsOf derives the 7 Hamming check bits for a word.
func checkBitsOf(word uint64) uint8 {
	syn := 0
	for i := 0; i < 64; i++ {
		if word>>uint(i)&1 == 1 {
			syn ^= dataPos[i]
		}
	}
	return uint8(syn) & 0x7f
}

// parityOf computes the overall parity over data and check bits.
func parityOf(word uint64, check uint8) uint8 {
	p := bits.OnesCount64(word) + bits.OnesCount8(check&0x7f)
	return uint8(p & 1)
}

// EncodeWord produces the 9-byte codeword for a 64-bit word.
func EncodeWord(word uint64) [CodewordBytes]byte {
	var out [CodewordBytes]byte
	for i := 0; i < 8; i++ {
		out[i] = byte(word >> uint(8*i))
	}
	check := checkBitsOf(word)
	out[8] = check | parityOf(word, check)<<7
	return out
}

// DecodeWord corrects up to one flipped bit anywhere in the codeword and
// detects double errors. It returns the corrected word and the number of
// corrected bits (0 or 1).
func DecodeWord(cw [CodewordBytes]byte) (uint64, int, error) {
	var word uint64
	for i := 0; i < 8; i++ {
		word |= uint64(cw[i]) << uint(8*i)
	}
	check := cw[8] & 0x7f
	storedParity := cw[8] >> 7
	syn := syndromeOf(word, check)
	parityOK := parityOf(word, check) == storedParity
	switch {
	case syn == 0 && parityOK:
		return word, 0, nil
	case syn == 0 && !parityOK:
		// The overall parity bit itself flipped.
		return word, 1, nil
	case syn != 0 && parityOK:
		// Nonzero syndrome with even parity: double error.
		return word, 0, ErrUncorrectable
	default:
		// Single error at position syn: correct it.
		if syn&(syn-1) == 0 {
			// A check bit flipped; data is intact.
			return word, 1, nil
		}
		for i := 0; i < 64; i++ {
			if dataPos[i] == syn {
				return word ^ 1<<uint(i), 1, nil
			}
		}
		return word, 0, fmt.Errorf("ecc: syndrome %d addresses no bit", syn)
	}
}

// Encode protects a buffer (length must be a multiple of 8) word by word.
func Encode(data []byte) ([]byte, error) {
	if len(data)%WordBytes != 0 {
		return nil, fmt.Errorf("ecc: data length %d not a multiple of %d", len(data), WordBytes)
	}
	out := make([]byte, 0, len(data)/WordBytes*CodewordBytes)
	for i := 0; i < len(data); i += WordBytes {
		var w uint64
		for j := 0; j < WordBytes; j++ {
			w |= uint64(data[i+j]) << uint(8*j)
		}
		cw := EncodeWord(w)
		out = append(out, cw[:]...)
	}
	return out, nil
}

// Decode reverses Encode, correcting single-bit errors per codeword. It
// returns the data and the total number of corrected bits.
func Decode(enc []byte) ([]byte, int, error) {
	if len(enc)%CodewordBytes != 0 {
		return nil, 0, fmt.Errorf("ecc: encoded length %d not a multiple of %d", len(enc), CodewordBytes)
	}
	out := make([]byte, 0, len(enc)/CodewordBytes*WordBytes)
	corrected := 0
	for i := 0; i < len(enc); i += CodewordBytes {
		var cw [CodewordBytes]byte
		copy(cw[:], enc[i:i+CodewordBytes])
		w, c, err := DecodeWord(cw)
		if err != nil {
			return nil, corrected, fmt.Errorf("ecc: word %d: %w", i/CodewordBytes, err)
		}
		corrected += c
		for j := 0; j < WordBytes; j++ {
			out = append(out, byte(w>>uint(8*j)))
		}
	}
	return out, corrected, nil
}
