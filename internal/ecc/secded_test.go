package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	f := func(w uint64) bool {
		cw := EncodeWord(w)
		got, c, err := DecodeWord(cw)
		return err == nil && c == 0 && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSingleDataBitCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		w := rng.Uint64()
		cw := EncodeWord(w)
		bit := rng.Intn(64)
		cw[bit/8] ^= 1 << uint(bit%8) // flip one data bit
		got, c, err := DecodeWord(cw)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c != 1 || got != w {
			t.Fatalf("trial %d: bit %d not corrected (c=%d)", trial, bit, c)
		}
	}
}

func TestSingleCheckBitCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		w := rng.Uint64()
		cw := EncodeWord(w)
		bit := rng.Intn(8)
		cw[8] ^= 1 << uint(bit) // flip a check or parity bit
		got, c, err := DecodeWord(cw)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c != 1 || got != w {
			t.Fatalf("trial %d: check bit %d not handled", trial, bit)
		}
	}
}

func TestDoubleErrorDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	detected := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		w := rng.Uint64()
		cw := EncodeWord(w)
		b1 := rng.Intn(72)
		b2 := rng.Intn(72)
		for b2 == b1 {
			b2 = rng.Intn(72)
		}
		cw[b1/8] ^= 1 << uint(b1%8)
		cw[b2/8] ^= 1 << uint(b2%8)
		got, _, err := DecodeWord(cw)
		if err == ErrUncorrectable {
			detected++
		} else if err == nil && got != w {
			t.Fatalf("trial %d: silent corruption", trial)
		}
	}
	// SECDED detects all double errors.
	if detected != trials {
		t.Errorf("detected %d/%d double errors", detected, trials)
	}
}

func TestBufferRoundTrip(t *testing.T) {
	data := make([]byte, 64)
	rand.New(rand.NewSource(4)).Read(data)
	enc, err := Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 64/8*9 {
		t.Errorf("encoded length %d", len(enc))
	}
	got, c, err := Decode(enc)
	if err != nil || c != 0 {
		t.Fatalf("err=%v c=%d", err, c)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip failed")
	}
	// Scatter one error per codeword: all corrected.
	for w := 0; w < len(enc)/9; w++ {
		enc[w*9+w%9] ^= 1 << uint(w%8)
	}
	got, c, err = Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if c != len(enc)/9 {
		t.Errorf("corrected %d, want %d", c, len(enc)/9)
	}
	if !bytes.Equal(got, data) {
		t.Error("corrected data wrong")
	}
}

func TestLengthValidation(t *testing.T) {
	if _, err := Encode(make([]byte, 7)); err == nil {
		t.Error("expected length error")
	}
	if _, _, err := Decode(make([]byte, 10)); err == nil {
		t.Error("expected length error")
	}
}

func TestDecodeReportsWordIndex(t *testing.T) {
	data := make([]byte, 16)
	enc, _ := Encode(data)
	// Double error in the second codeword.
	enc[9] ^= 0x03
	if _, _, err := Decode(enc); err == nil {
		t.Error("expected uncorrectable error")
	}
}
