package circuit

import (
	"fmt"
)

// EdgePerturbation describes one single-resistor Sherman–Morrison request
// against a Factored system: the Edge-th added resistor changes to NewOhms.
type EdgePerturbation struct {
	Edge    int
	NewOhms float64
}

// ProbePair selects the voltage difference V(A) - V(B) between two full
// node indices. Both nodes must be unknown (not voltage-fixed).
type ProbePair struct {
	A, B int
}

// edgeUpdate is a validated EdgePerturbation in unknown-index space.
type edgeUpdate struct {
	ia, ib int
	dg     float64
}

func (f *Factored) validatePerturbations(perts []EdgePerturbation) ([]edgeUpdate, error) {
	ups := make([]edgeUpdate, len(perts))
	for j, p := range perts {
		if p.Edge < 0 || p.Edge >= len(f.nw.edges) {
			return nil, fmt.Errorf("circuit: edge %d out of range", p.Edge)
		}
		if !(p.NewOhms > 0) {
			return nil, fmt.Errorf("circuit: perturbed resistance must be positive, got %g", p.NewOhms)
		}
		r := f.nw.edges[p.Edge]
		ia, ib := f.idx[r.a], f.idx[r.b]
		if ia < 0 || ib < 0 {
			return nil, fmt.Errorf("circuit: perturbed edge (%d,%d) touches a fixed node", r.a, r.b)
		}
		ups[j] = edgeUpdate{ia: ia, ib: ib, dg: 1/p.NewOhms - r.g}
	}
	return ups, nil
}

// solveBatchInto dispatches to whichever factorization is live.
func (f *Factored) solveBatchInto(x, b []float64, k int) error {
	if f.chol != nil {
		return f.chol.SolveBatchInto(x, b, k)
	}
	return f.lu.SolveBatchInto(x, b, k)
}

// SolveEdgesPerturbed computes the node voltages for a batch of independent
// single-resistor perturbations against the shared base factorization. All
// Sherman–Morrison correction vectors z_j = G^-1 (e_ia - e_ib) are solved
// together as one blocked multi-RHS triangular sweep — the factor is
// streamed through cache once per block row instead of once per perturbed
// edge — and visit(j, sol) is then called for each request in order. The
// Solution passed to visit aliases the receiver's scratch buffers and is
// valid only for the duration of that callback.
//
// The whole batch is validated before any solve, so on error no callback
// has run. Like SolveEdgePerturbed, each request needs both endpoints of
// its edge unknown; a request whose resistance equals the base value
// (dg == 0) yields the base solution.
func (f *Factored) SolveEdgesPerturbed(perts []EdgePerturbation, visit func(j int, sol *Solution)) error {
	m := len(perts)
	if m == 0 {
		return nil
	}
	ups, err := f.validatePerturbations(perts)
	if err != nil {
		return err
	}
	n := f.unknown
	// Incidence panel: column j is u_j = e_ia - e_ib, solved in place.
	z := make([]float64, n*m)
	for j, e := range ups {
		z[e.ia*m+j] = 1
		z[e.ib*m+j] = -1
	}
	if err := f.solveBatchInto(z, z, m); err != nil {
		return err
	}
	if f.sol.V == nil {
		f.sol.V = make([]float64, f.nw.nodes)
	}
	for j, e := range ups {
		if e.dg == 0 {
			f.expandInto(f.sol.V, f.baseX)
			visit(j, &f.sol)
			continue
		}
		denom := 1 + e.dg*(z[e.ia*m+j]-z[e.ib*m+j])
		if denom == 0 {
			return fmt.Errorf("circuit: singular rank-1 update on edge %d", perts[j].Edge)
		}
		scale := e.dg * (f.baseX[e.ia] - f.baseX[e.ib]) / denom
		for i := range f.x {
			f.x[i] = f.baseX[i] - scale*z[i*m+j]
		}
		f.expandInto(f.sol.V, f.x)
		visit(j, &f.sol)
	}
	return nil
}

// SolveEdgesPerturbedDiffs computes, for every perturbation j and probe
// pair q, the perturbed voltage difference V(pairs[q].A) - V(pairs[q].B),
// written to out[j*len(pairs)+q]. This is the probe form of the batched
// Sherman–Morrison update: when only a few fixed voltage differences of
// each perturbed solution are observed (the calibration reads ~|shape|
// cell drops out of each of ~cells re-solves), symmetry of G collapses the
// work. With y_q = G^-1 (e_a - e_b) for each probe pair,
//
//	z_j[a] - z_j[b] = (e_a - e_b)^T G^-1 u_j = y_q[ia] - y_q[ib],
//
// so only the len(pairs) probe systems need full solves. The denominators
// need z_j[ia] - z_j[ib] = u_j^T G^-1 u_j = |L^-1 u_j|^2, which the
// forward-only half sweep provides — the transposed back-substitution over
// the perturbation batch, half the remaining flops, is skipped entirely.
// The LU fallback has no usable transpose identity and solves the
// perturbation batch in full.
//
// The batch is validated before any numeric work; on error out is
// untouched. A perturbation with dg == 0 yields the base differences.
func (f *Factored) SolveEdgesPerturbedDiffs(perts []EdgePerturbation, pairs []ProbePair, out []float64) error {
	m, p := len(perts), len(pairs)
	if len(out) != m*p {
		return fmt.Errorf("circuit: diffs output length %d != %d*%d", len(out), m, p)
	}
	if m == 0 || p == 0 {
		return nil
	}
	ups, err := f.validatePerturbations(perts)
	if err != nil {
		return err
	}
	type probe struct{ a, b int }
	probes := make([]probe, p)
	baseDiff := make([]float64, p)
	for q, pr := range pairs {
		if pr.A < 0 || pr.A >= f.nw.nodes || pr.B < 0 || pr.B >= f.nw.nodes {
			return fmt.Errorf("circuit: probe pair (%d,%d) out of range", pr.A, pr.B)
		}
		a, b := f.idx[pr.A], f.idx[pr.B]
		if a < 0 || b < 0 {
			return fmt.Errorf("circuit: probe pair (%d,%d) touches a fixed node", pr.A, pr.B)
		}
		probes[q] = probe{a: a, b: b}
		baseDiff[q] = f.baseX[a] - f.baseX[b]
	}
	n := f.unknown

	if f.chol == nil {
		// LU fallback: solve the perturbation batch in full and read both
		// the denominators and the probe differences off the columns.
		z := make([]float64, n*m)
		for j, e := range ups {
			z[e.ia*m+j] = 1
			z[e.ib*m+j] = -1
		}
		if err := f.lu.SolveBatchInto(z, z, m); err != nil {
			return err
		}
		for j, e := range ups {
			if e.dg == 0 {
				copy(out[j*p:j*p+p], baseDiff)
				continue
			}
			denom := 1 + e.dg*(z[e.ia*m+j]-z[e.ib*m+j])
			if denom == 0 {
				return fmt.Errorf("circuit: singular rank-1 update on edge %d", perts[j].Edge)
			}
			scale := e.dg * (f.baseX[e.ia] - f.baseX[e.ib]) / denom
			for q, pr := range probes {
				out[j*p+q] = baseDiff[q] - scale*(z[pr.a*m+j]-z[pr.b*m+j])
			}
		}
		return nil
	}

	// Probe systems: y_q = G^-1 (e_a - e_b), full solves.
	y := make([]float64, n*p)
	for q, pr := range probes {
		y[pr.a*p+q] = 1
		y[pr.b*p+q] = -1
	}
	if err := f.chol.SolveBatchInto(y, y, p); err != nil {
		return err
	}
	// Denominators: s_j = u_j^T G^-1 u_j = |L^-1 u_j|^2, forward sweep only.
	w := make([]float64, n*m)
	for j, e := range ups {
		w[e.ia*m+j] = 1
		w[e.ib*m+j] = -1
	}
	if err := f.chol.ForwardBatchInto(w, w, m); err != nil {
		return err
	}
	s := make([]float64, m)
	for i := 0; i < n; i++ {
		row := w[i*m : i*m+m]
		for j, v := range row {
			s[j] += v * v
		}
	}
	for j, e := range ups {
		if e.dg == 0 {
			copy(out[j*p:j*p+p], baseDiff)
			continue
		}
		denom := 1 + e.dg*s[j]
		if denom == 0 {
			return fmt.Errorf("circuit: singular rank-1 update on edge %d", perts[j].Edge)
		}
		scale := e.dg * (f.baseX[e.ia] - f.baseX[e.ib]) / denom
		for q := range probes {
			out[j*p+q] = baseDiff[q] - scale*(y[e.ia*p+q]-y[e.ib*p+q])
		}
	}
	return nil
}
