package circuit

import (
	"math"
	"math/rand"
	"testing"

	"snvmm/internal/linalg"
)

// ladderNetwork builds a resistor mesh big enough to have many all-unknown
// edges: a grid of rows x cols internal nodes with a driven corner.
func ladderNetwork(t *testing.T, rows, cols int) *Network {
	t.Helper()
	node := func(r, c int) int { return 1 + r*cols + c }
	nw := NewNetwork(1 + rows*cols)
	mustAdd(t, nw.FixVoltage(node(0, 0), 1.5))
	rng := rand.New(rand.NewSource(99))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(t, nw.AddResistor(node(r, c), node(r, c+1), 100+900*rng.Float64()))
			}
			if r+1 < rows {
				mustAdd(t, nw.AddResistor(node(r, c), node(r+1, c), 100+900*rng.Float64()))
			}
		}
	}
	mustAdd(t, nw.AddResistor(node(rows-1, cols-1), 0, 450))
	return nw
}

// allUnknownEdges returns the edge indices whose endpoints are both unknown
// under the given factorization.
func allUnknownEdges(f *Factored) []int {
	var edges []int
	for i, r := range f.nw.edges {
		if f.idx[r.a] >= 0 && f.idx[r.b] >= 0 {
			edges = append(edges, i)
		}
	}
	return edges
}

func TestSolveEdgesPerturbedMatchesSequential(t *testing.T) {
	nw := ladderNetwork(t, 6, 7)
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	edges := allUnknownEdges(fac)
	if len(edges) < 10 {
		t.Fatalf("only %d usable edges", len(edges))
	}
	rng := rand.New(rand.NewSource(7))
	perts := make([]EdgePerturbation, len(edges))
	for j, e := range edges {
		perts[j] = EdgePerturbation{Edge: e, NewOhms: 50 + 5000*rng.Float64()}
	}
	// One request with dg == 0 exercises the base-solution shortcut.
	perts[3].NewOhms = 1 / fac.nw.edges[perts[3].Edge].g

	got := make([][]float64, len(perts))
	err = fac.SolveEdgesPerturbed(perts, func(j int, sol *Solution) {
		got[j] = append([]float64(nil), sol.V...)
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, p := range perts {
		want, err := fac.SolveEdgePerturbed(p.Edge, p.NewOhms)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.V {
			if d := math.Abs(got[j][i] - want.V[i]); d > 1e-9 {
				t.Errorf("pert %d (edge %d): V[%d] = %g, sequential %g",
					j, p.Edge, i, got[j][i], want.V[i])
			}
		}
	}
}

func TestSolveEdgesPerturbedDiffsMatchesSequential(t *testing.T) {
	nw := ladderNetwork(t, 6, 7)
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	if fac.chol == nil {
		t.Fatal("expected the Cholesky fast path for an SPD mesh")
	}
	edges := allUnknownEdges(fac)
	rng := rand.New(rand.NewSource(11))
	perts := make([]EdgePerturbation, len(edges))
	for j, e := range edges {
		perts[j] = EdgePerturbation{Edge: e, NewOhms: 50 + 5000*rng.Float64()}
	}
	perts[1].NewOhms = 1 / fac.nw.edges[perts[1].Edge].g // dg == 0 path
	// Probe a handful of unknown node pairs, including a repeated node.
	pairs := []ProbePair{{A: 2, B: 3}, {A: 5, B: 9}, {A: 9, B: 2}, {A: 17, B: 30}}
	out := make([]float64, len(perts)*len(pairs))
	if err := fac.SolveEdgesPerturbedDiffs(perts, pairs, out); err != nil {
		t.Fatal(err)
	}
	for j, p := range perts {
		sol, err := fac.SolveEdgePerturbed(p.Edge, p.NewOhms)
		if err != nil {
			t.Fatal(err)
		}
		for q, pr := range pairs {
			want := sol.V[pr.A] - sol.V[pr.B]
			got := out[j*len(pairs)+q]
			if d := math.Abs(got - want); d > 1e-9*(1+math.Abs(want)) {
				t.Errorf("pert %d pair %d: diff = %g, sequential %g", j, q, got, want)
			}
		}
	}
}

func TestSolveEdgesPerturbedDiffsLUFallback(t *testing.T) {
	nw := ladderNetwork(t, 4, 4)
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Force the LU fallback path and check it against the Cholesky path.
	edges := allUnknownEdges(fac)
	perts := make([]EdgePerturbation, len(edges))
	for j, e := range edges {
		perts[j] = EdgePerturbation{Edge: e, NewOhms: 75 + 100*float64(j)}
	}
	pairs := []ProbePair{{A: 2, B: 6}, {A: 3, B: 11}}
	want := make([]float64, len(perts)*len(pairs))
	if err := fac.SolveEdgesPerturbedDiffs(perts, pairs, want); err != nil {
		t.Fatal(err)
	}

	luFac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble the reduced system the way FactorSystem does and swap the
	// live factorization for pivoted LU.
	g := linalg.NewDense(luFac.unknown, luFac.unknown)
	rhs := make([]float64, luFac.unknown)
	for i := 0; i < nw.nodes; i++ {
		if luFac.idx[i] >= 0 {
			g.Add(luFac.idx[i], luFac.idx[i], Gmin)
		}
	}
	for _, r := range nw.edges {
		stampDense(g, rhs, luFac.idx, luFac.fixed, r)
	}
	lu, err := linalg.Factor(g)
	if err != nil {
		t.Fatal(err)
	}
	luFac.chol = nil
	luFac.lu = lu
	got := make([]float64, len(perts)*len(pairs))
	if err := luFac.SolveEdgesPerturbedDiffs(perts, pairs, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Errorf("LU fallback diff[%d] = %g, Cholesky %g", i, got[i], want[i])
		}
	}
}

func TestSolveEdgesPerturbedErrors(t *testing.T) {
	nw := ladderNetwork(t, 3, 3)
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	visited := false
	visit := func(int, *Solution) { visited = true }
	if err := fac.SolveEdgesPerturbed([]EdgePerturbation{{Edge: -1, NewOhms: 10}}, visit); err == nil {
		t.Error("expected range error")
	}
	if err := fac.SolveEdgesPerturbed([]EdgePerturbation{{Edge: 0, NewOhms: -5}}, visit); err == nil {
		t.Error("expected resistance error")
	}
	if visited {
		t.Error("visit ran despite validation error")
	}
	out := []float64{0}
	bad := []EdgePerturbation{{Edge: allUnknownEdges(fac)[0], NewOhms: 100}}
	if err := fac.SolveEdgesPerturbedDiffs(bad, []ProbePair{{A: 0, B: 1}}, out); err == nil {
		t.Error("expected fixed-probe error (node 0 is ground)")
	}
	if err := fac.SolveEdgesPerturbedDiffs(bad, []ProbePair{{A: 1, B: 2}}, nil); err == nil {
		t.Error("expected output-length error")
	}
}
