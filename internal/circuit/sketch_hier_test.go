package circuit

import (
	"math"
	"testing"
)

// hierOpts builds hierarchical-backend options over the fixture's unknowns:
// an identity elimination order (numerically correct for any permutation;
// fill is irrelevant at test size) and a caller-chosen sparsity.
func hierOpts(n int, sp *SketchSparsity) SketchOptions {
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	return SketchOptions{Backend: SketchHier, Order: ord, Sparsity: sp}
}

// fullSparsity materializes every W/C entry — the hierarchical backend with
// no truncation, used to compare against the dense tables one-for-one.
func fullSparsity(np, ns int) *SketchSparsity {
	all := make([]int32, np)
	for j := range all {
		all[j] = int32(j)
	}
	sp := &SketchSparsity{PairRows: make([][]int32, np), SingleRows: make([][]int32, ns)}
	for i := range sp.PairRows {
		sp.PairRows[i] = all
	}
	for s := range sp.SingleRows {
		sp.SingleRows[s] = all
	}
	return sp
}

// tableScale returns the largest magnitude in a dense table — the right
// comparison scale, because table entries are dot products of probe columns
// and their absolute error follows the column norms, not the entry value
// (a far pair's near-zero W entry is a cancellation, not a small number).
func tableScale(vals []float64) float64 {
	s := 1e-30
	for _, v := range vals {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// TestHierBackendMatchesDense compares every Green-table entry and every
// pinned query of the hierarchical backend (full sparsity, full window)
// against the dense backend on the same network.
func TestHierBackendMatchesDense(t *testing.T) {
	fx := buildSketchFixture(t, 11)
	pairs, _ := fx.probePairs()
	singles := []int{fx.t1, fx.t2, 7, 19}
	dense, err := fx.floating.FactorSketch(pairs, singles, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Backend() != SketchDense {
		t.Fatalf("reference backend = %v, want dense", dense.Backend())
	}
	np, ns := len(pairs), len(singles)
	hier, err := fx.floating.FactorSketch(pairs, singles, hierOpts(fx.nodes-1, fullSparsity(np, ns)))
	if err != nil {
		t.Fatal(err)
	}
	if hier.Backend() != SketchHier {
		t.Fatalf("backend = %v, want hierarchical", hier.Backend())
	}
	if hier.NDDepth() < 1 {
		t.Fatalf("NDDepth = %d, want >= 1", hier.NDDepth())
	}
	const tol = 1e-9
	tScale := tableScale(dense.tmat)
	cScale := tableScale(dense.cmat)
	wScale := tableScale(dense.w)
	for s := 0; s < ns; s++ {
		for u := 0; u < ns; u++ {
			d, h := dense.tmat[s*ns+u], hier.tmat[s*ns+u]
			if relDiff(h, d, tScale) > tol {
				t.Fatalf("T[%d][%d] = %g, dense %g", s, u, h, d)
			}
		}
		for j := 0; j < np; j++ {
			h, ok := hier.cAt(s, j)
			if !ok {
				t.Fatalf("C[%d][%d] missing under full sparsity", s, j)
			}
			if d := dense.cmat[s*np+j]; relDiff(h, d, cScale) > tol {
				t.Fatalf("C[%d][%d] = %g, dense %g", s, j, h, d)
			}
		}
	}
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if h, d := hier.wAt(i, j), dense.w[i*np+j]; relDiff(h, d, wScale) > tol {
				t.Fatalf("W[%d][%d] = %g, dense %g", i, j, h, d)
			}
		}
	}
	// Pinned operating point: full window against the unwindowed dense pin.
	win := make([]int32, np)
	for j := range win {
		win[j] = int32(j)
	}
	dpin, err := dense.Pin([]int{0, 1}, []float64{fx.vdrive, -fx.vdrive})
	if err != nil {
		t.Fatal(err)
	}
	hpin, err := hier.PinWindow([]int{0, 1}, []float64{fx.vdrive, -fx.vdrive}, win)
	if err != nil {
		t.Fatal(err)
	}
	const dg = 1e-4
	for j := 0; j < np; j++ {
		if relDiff(hpin.BaseDiff(j), dpin.BaseDiff(j), fx.vdrive) > tol {
			t.Fatalf("BaseDiff(%d): %g vs %g", j, hpin.BaseDiff(j), dpin.BaseDiff(j))
		}
		for i := 0; i < np; i++ {
			if qd, qh := dpin.Quad(i, j), hpin.Quad(i, j); relDiff(qh, qd, wScale) > tol {
				t.Fatalf("Quad(%d,%d): %g vs %g", i, j, qh, qd)
			}
		}
		sd, errd := dpin.PerturbScale(j, dg)
		sh, errh := hpin.PerturbScale(j, dg)
		if errd != nil || errh != nil {
			t.Fatalf("PerturbScale(%d): %v / %v", j, errd, errh)
		}
		// Scale errors propagate as dg * (BaseDiff and Quad errors).
		if relDiff(sh, sd, dg*fx.vdrive*(1+wScale)) > tol {
			t.Fatalf("PerturbScale(%d): %g vs %g", j, sh, sd)
		}
	}
	if hier.TableEntries() != int64(np*np+ns*np+ns*ns) {
		t.Fatalf("full-sparsity TableEntries = %d, want %d", hier.TableEntries(), np*np+ns*np+ns*ns)
	}
}

// TestHierTruncatedWindow checks the block-sparse mode proper: only a
// window's worth of table entries is materialized, windowed pins answer all
// in-window queries exactly like the dense path, and memory drops.
func TestHierTruncatedWindow(t *testing.T) {
	fx := buildSketchFixture(t, 23)
	pairs, _ := fx.probePairs()
	singles := []int{fx.t1, fx.t2}
	np, ns := len(pairs), len(singles)
	dense, err := fx.floating.FactorSketch(pairs, singles, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Window: every third pair. Rows: the window for members, diagonal-only
	// for the rest (keeps the pattern symmetric and self-inclusive).
	var win []int32
	inWin := make([]bool, np)
	for j := 0; j < np; j += 3 {
		win = append(win, int32(j))
		inWin[j] = true
	}
	sp := &SketchSparsity{PairRows: make([][]int32, np), SingleRows: make([][]int32, ns)}
	for i := range sp.PairRows {
		if inWin[i] {
			sp.PairRows[i] = win
		} else {
			sp.PairRows[i] = []int32{int32(i)}
		}
	}
	for s := range sp.SingleRows {
		sp.SingleRows[s] = win
	}
	hier, err := fx.floating.FactorSketch(pairs, singles, hierOpts(fx.nodes-1, sp))
	if err != nil {
		t.Fatal(err)
	}
	if got, limit := hier.TableEntries(), int64(np*np+ns*np+ns*ns); got >= limit {
		t.Fatalf("truncated TableEntries = %d, not below dense %d", got, limit)
	}
	if hier.TableBytes() >= dense.TableBytes() {
		t.Fatalf("truncated TableBytes = %d, not below dense %d", hier.TableBytes(), dense.TableBytes())
	}
	dpin, err := dense.Pin([]int{0, 1}, []float64{fx.vdrive, -fx.vdrive})
	if err != nil {
		t.Fatal(err)
	}
	hpin, err := hier.PinWindow([]int{0, 1}, []float64{fx.vdrive, -fx.vdrive}, win)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	wScale := tableScale(dense.w)
	for _, j := range win {
		if bd, bh := dpin.BaseDiff(int(j)), hpin.BaseDiff(int(j)); relDiff(bh, bd, fx.vdrive) > tol {
			t.Fatalf("BaseDiff(%d): %g vs %g", j, bh, bd)
		}
		for _, i := range win {
			if qd, qh := dpin.Quad(int(i), int(j)), hpin.Quad(int(i), int(j)); relDiff(qh, qd, wScale) > tol {
				t.Fatalf("Quad(%d,%d): %g vs %g", i, j, qh, qd)
			}
		}
	}
	// Out-of-window queries must fail loudly, not return garbage.
	var outside int
	for j := 0; j < np; j++ {
		if !inWin[j] {
			outside = j
			break
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BaseDiff outside window did not panic")
			}
		}()
		hpin.BaseDiff(outside)
	}()
}

// TestHierOptionValidation pins the error paths: a hierarchical sketch
// without order or sparsity, malformed sparsity patterns, windowless pins,
// and windows escaping the C sparsity must all error.
func TestHierOptionValidation(t *testing.T) {
	fx := buildSketchFixture(t, 3)
	pairs, _ := fx.probePairs()
	singles := []int{fx.t1, fx.t2}
	np, ns := len(pairs), len(singles)
	n := fx.nodes - 1
	if _, err := fx.floating.FactorSketch(pairs, singles, SketchOptions{Backend: SketchHier}); err == nil {
		t.Error("hier without order/sparsity accepted")
	}
	opts := hierOpts(n, fullSparsity(np, ns))
	opts.Order = opts.Order[:n-1]
	if _, err := fx.floating.FactorSketch(pairs, singles, opts); err == nil {
		t.Error("short order accepted")
	}
	// Asymmetric pair sparsity: 1 in row 0 but 0 not in row 1.
	sp := fullSparsity(np, ns)
	sp.PairRows = make([][]int32, np)
	sp.PairRows[0] = []int32{0, 1}
	for i := 1; i < np; i++ {
		sp.PairRows[i] = []int32{int32(i)}
	}
	if _, err := fx.floating.FactorSketch(pairs, singles, hierOpts(n, sp)); err == nil {
		t.Error("asymmetric sparsity accepted")
	}
	// Missing diagonal.
	sp = fullSparsity(np, ns)
	rows := make([][]int32, np)
	copy(rows, sp.PairRows)
	rows[2] = []int32{0, 1}
	sp.PairRows = rows
	if _, err := fx.floating.FactorSketch(pairs, singles, hierOpts(n, sp)); err == nil {
		t.Error("diagonal-less sparsity accepted")
	}
	// A valid hierarchical sketch refuses windowless pins and out-of-
	// sparsity windows.
	hier, err := fx.floating.FactorSketch(pairs, singles, hierOpts(n, fullSparsity(np, ns)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hier.Pin([]int{0, 1}, []float64{1, -1}); err == nil {
		t.Error("windowless pin on hierarchical sketch accepted")
	}
	if _, err := hier.PinWindow([]int{0, 1}, []float64{1, -1}, []int32{2, 1}); err == nil {
		t.Error("unsorted window accepted")
	}
	narrow := fullSparsity(np, ns)
	narrow.SingleRows = make([][]int32, ns)
	for s := range narrow.SingleRows {
		narrow.SingleRows[s] = []int32{0}
	}
	hier2, err := fx.floating.FactorSketch(pairs, singles, hierOpts(n, narrow))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hier2.PinWindow([]int{0, 1}, []float64{1, -1}, []int32{0, 1}); err == nil {
		t.Error("window outside C sparsity accepted")
	}
}

// TestHierAutoSelection: SketchAuto resolves to the hierarchical backend
// exactly when the unknown count exceeds HierLimit and the ordering inputs
// are present.
func TestHierAutoSelection(t *testing.T) {
	fx := buildSketchFixture(t, 31)
	pairs, _ := fx.probePairs()
	singles := []int{fx.t1, fx.t2}
	n := fx.nodes - 1
	full := fullSparsity(len(pairs), len(singles))
	opts := hierOpts(n, full)
	opts.Backend = SketchAuto
	opts.HierLimit = 10 // below the fixture's 39 unknowns
	sk, err := fx.floating.FactorSketch(pairs, singles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Backend() != SketchHier {
		t.Fatalf("auto backend = %v, want hierarchical", sk.Backend())
	}
	// Without an order, auto falls back to dense at this size.
	sk, err = fx.floating.FactorSketch(pairs, singles, SketchOptions{HierLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sk.Backend() != SketchDense {
		t.Fatalf("auto backend without order = %v, want dense", sk.Backend())
	}
	// Default HierLimit keeps small systems dense even with hints present.
	opts.HierLimit = 0
	sk, err = fx.floating.FactorSketch(pairs, singles, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Backend() != SketchDense {
		t.Fatalf("auto backend below default HierLimit = %v, want dense", sk.Backend())
	}
}
