package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// The hierarchical sketch backend. The dense backend's factor is O(n^2)
// memory and its Green tables O(np^2) — at 64x64 (8320 unknowns, 4096
// pairs) that is a 550 MB factor and a 134 MB W table before a single PoE
// is characterized. This backend replaces both ends:
//
//   - the factorization is the supernodal sparse Cholesky of
//     linalg.FactorSparse under a caller-supplied nested-dissection order
//     (the crossbar grid makes separators analytic; see
//     xbar.dissectionOrder), keeping factor fill near-linear in n;
//   - each probe column is solved only on its supernodal support
//     (linalg.ForwardProbe) — the etree ancestor path of its seed nodes —
//     so a table entry u_i^T G^-1 u_j is a merged dot product of two short
//     probe vectors;
//   - the W and C tables are materialized only inside the caller's
//     SketchSparsity (the truncation ring of the calibration sweep plus
//     the polyomino margin), so table memory scales with neighbourhood
//     size, not device size.
//
// Loop orders are fixed and the factorization is deterministic, so every
// materialized entry is a pure function of the network, the ordering and
// the sparsity — independent of which other entries are requested.

// validateSparsity checks shape, ordering, range and W symmetry.
func (sk *ProbeSketch) validateSparsity(sp *SketchSparsity) error {
	if sp == nil {
		return fmt.Errorf("circuit: hierarchical sketch needs SketchOptions.Sparsity")
	}
	if len(sp.PairRows) != sk.np || len(sp.SingleRows) != sk.ns {
		return fmt.Errorf("circuit: sparsity shape %dx%d, want %dx%d pairs/singles",
			len(sp.PairRows), len(sp.SingleRows), sk.np, sk.ns)
	}
	checkRow := func(row []int32, what string, i int) error {
		for x, j := range row {
			if j < 0 || int(j) >= sk.np {
				return fmt.Errorf("circuit: sparsity %s row %d: pair %d out of range", what, i, j)
			}
			if x > 0 && j <= row[x-1] {
				return fmt.Errorf("circuit: sparsity %s row %d not strictly ascending at %d", what, i, x)
			}
		}
		return nil
	}
	for i, row := range sp.PairRows {
		if err := checkRow(row, "pair", i); err != nil {
			return err
		}
		if findInt32(row, int32(i)) < 0 {
			return fmt.Errorf("circuit: sparsity pair row %d misses its own diagonal", i)
		}
	}
	for s, row := range sp.SingleRows {
		if err := checkRow(row, "single", s); err != nil {
			return err
		}
	}
	return nil
}

// findInt32 binary-searches a sorted row for v, returning its index or -1.
func findInt32(row []int32, v int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == v {
		return lo
	}
	return -1
}

// wAt looks up W[i][j] in the block-sparse table, panicking outside the
// sparsity — the sweep window and the table pattern are built from the same
// radius, so a miss is a programming error upstream.
func (sk *ProbeSketch) wAt(i, j int) float64 {
	row := sk.wcol[sk.wptr[i]:sk.wptr[i+1]]
	x := findInt32(row, int32(j))
	if x < 0 {
		panic(fmt.Sprintf("circuit: W[%d][%d] outside truncation sparsity", i, j))
	}
	return sk.wval[int(sk.wptr[i])+x]
}

// cAt looks up C[s][j]; works on every backend (dense table or sparse row).
func (sk *ProbeSketch) cAt(s, j int) (float64, bool) {
	if sk.backend != SketchHier {
		return sk.cmat[s*sk.np+j], true
	}
	row := sk.ccol[sk.cptr[s]:sk.cptr[s+1]]
	x := findInt32(row, int32(j))
	if x < 0 {
		return 0, false
	}
	return sk.cval[int(sk.cptr[s])+x], true
}

// buildHier factors the network hierarchically and fills the block-sparse
// Green tables.
func (sk *ProbeSketch) buildHier(nw *Network, idx []int, vfixed []float64, opt SketchOptions) error {
	if len(opt.Order) != sk.n {
		return fmt.Errorf("circuit: hierarchical sketch order length %d != unknowns %d", len(opt.Order), sk.n)
	}
	if err := sk.validateSparsity(opt.Sparsity); err != nil {
		return err
	}
	sp := opt.Sparsity
	n := sk.n
	bdump := make([]float64, n)
	coords := make([]linalg.Coord, 0, len(nw.edges)*4+n)
	for i := 0; i < n; i++ {
		coords = append(coords, linalg.Coord{Row: i, Col: i, Val: Gmin})
	}
	for _, r := range nw.edges {
		coords = stampSparse(coords, bdump, idx, vfixed, r)
	}
	m := linalg.NewCSR(n, coords)
	chol, err := linalg.FactorSparse(m, opt.Order)
	if err != nil {
		return fmt.Errorf("circuit: hierarchical sketch factorization: %w", err)
	}
	sk.ndDepth = chol.Depth()
	sk.fillNNZ = chol.FillNNZ()
	// Probe solves, restricted to supernodal supports. Orders match the
	// dense backend's probe numbering (singles first) for determinism.
	ws := chol.NewProbeWorkspace()
	svec := make([]linalg.ProbeVec, sk.ns)
	pvec := make([]linalg.ProbeVec, sk.np)
	sidx := [2]int{}
	scoef := [2]float64{}
	for s := 0; s < sk.ns; s++ {
		sidx[0], scoef[0] = sk.si[s], 1
		svec[s], err = chol.ForwardProbe(ws, sidx[:1], scoef[:1])
		if err != nil {
			return err
		}
	}
	for j := 0; j < sk.np; j++ {
		sidx[0], sidx[1] = sk.pa[j], sk.pb[j]
		scoef[0], scoef[1] = 1, -1
		pvec[j], err = chol.ForwardProbe(ws, sidx[:2], scoef[:2])
		if err != nil {
			return err
		}
	}
	// T is always full: ns^2 is terminal-count squared, negligible.
	for s := 0; s < sk.ns; s++ {
		for t := 0; t < sk.ns; t++ {
			sk.tmat[s*sk.ns+t] = linalg.ProbeDot(svec[s], svec[t])
		}
	}
	// C inside the single sparsity.
	sk.cptr = make([]int32, sk.ns+1)
	total := 0
	for s, row := range sp.SingleRows {
		total += len(row)
		sk.cptr[s+1] = int32(total)
	}
	sk.ccol = make([]int32, 0, total)
	sk.cval = make([]float64, total)
	for s, row := range sp.SingleRows {
		sk.ccol = append(sk.ccol, row...)
		base := int(sk.cptr[s])
		for x, j := range row {
			sk.cval[base+x] = linalg.ProbeDot(svec[s], pvec[j])
		}
	}
	// W inside the (symmetric) pair sparsity: compute i <= j once, mirror.
	sk.wptr = make([]int32, sk.np+1)
	total = 0
	for i, row := range sp.PairRows {
		total += len(row)
		sk.wptr[i+1] = int32(total)
	}
	sk.wcol = make([]int32, 0, total)
	for _, row := range sp.PairRows {
		sk.wcol = append(sk.wcol, row...)
	}
	sk.wval = make([]float64, total)
	for i, row := range sp.PairRows {
		base := int(sk.wptr[i])
		for x, j := range row {
			if int(j) < i {
				continue
			}
			v := linalg.ProbeDot(pvec[i], pvec[int(j)])
			sk.wval[base+x] = v
			if int(j) != i {
				mrow := sp.PairRows[j]
				mx := findInt32(mrow, int32(i))
				if mx < 0 {
					return fmt.Errorf("circuit: sparsity pair rows not symmetric: %d in row %d but not vice versa", j, i)
				}
				sk.wval[int(sk.wptr[j])+mx] = v
			}
		}
	}
	return nil
}
