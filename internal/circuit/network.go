// Package circuit is the resistive-network solver the crossbar model is
// built on — the reproduction's substitute for the paper's HSPICE runs. It
// solves DC operating points of arbitrary resistor networks with fixed-
// voltage terminals by reduced nodal analysis: fixed nodes are eliminated
// and the remaining symmetric positive-definite conductance system is solved
// with dense LU (small networks) or Jacobi-preconditioned conjugate
// gradients (large networks).
//
// A small leak conductance to ground (Gmin, the standard SPICE device) keeps
// floating subnetworks well-posed, which matters for sneak-path analysis
// where most crossbar lines are intentionally left floating.
package circuit

import (
	"errors"
	"fmt"

	"snvmm/internal/linalg"
)

// Gmin is the leak conductance (siemens) from every node to ground. It is
// ~9 orders of magnitude below the smallest memristor conductance used in
// the crossbar, so it does not perturb solved voltages meaningfully.
const Gmin = 1e-12

// Ground is the reference node; its voltage is always 0.
const Ground = 0

// denseLimit is the unknown count above which the solver switches from
// dense LU to sparse CG.
const denseLimit = 300

type resistor struct {
	a, b int
	g    float64 // conductance
}

// Network is a resistive network under construction. Node 0 is ground.
type Network struct {
	nodes int
	edges []resistor
	fixed map[int]float64
}

// NewNetwork creates a network with the given number of nodes (including
// ground, node 0).
func NewNetwork(nodes int) *Network {
	if nodes < 1 {
		panic("circuit: network needs at least the ground node")
	}
	return &Network{nodes: nodes, fixed: map[int]float64{Ground: 0}}
}

// Nodes returns the number of nodes including ground.
func (nw *Network) Nodes() int { return nw.nodes }

// AddResistor connects nodes a and b with the given resistance in ohms.
// Non-positive or non-finite resistances are rejected.
func (nw *Network) AddResistor(a, b int, ohms float64) error {
	if a < 0 || a >= nw.nodes || b < 0 || b >= nw.nodes {
		return fmt.Errorf("circuit: resistor nodes (%d,%d) out of range [0,%d)", a, b, nw.nodes)
	}
	if a == b {
		return fmt.Errorf("circuit: resistor endpoints coincide at node %d", a)
	}
	if !(ohms > 0) {
		return fmt.Errorf("circuit: resistance must be positive, got %g", ohms)
	}
	nw.edges = append(nw.edges, resistor{a, b, 1 / ohms})
	return nil
}

// FixVoltage pins a node to a voltage (an ideal source to ground). Fixing
// ground to a nonzero value is rejected.
func (nw *Network) FixVoltage(node int, v float64) error {
	if node < 0 || node >= nw.nodes {
		return fmt.Errorf("circuit: node %d out of range", node)
	}
	if node == Ground && v != 0 {
		return errors.New("circuit: cannot fix ground to nonzero voltage")
	}
	if _, dup := nw.fixed[node]; dup && node != Ground {
		return fmt.Errorf("circuit: node %d already fixed", node)
	}
	nw.fixed[node] = v
	return nil
}

// SetResistance changes the resistance of the i-th added resistor in place.
// Together with a Workspace this lets a solver loop (transient
// co-simulation, Monte-Carlo sweeps) update device values without
// rebuilding the network; the topology — and therefore the assembled
// sparsity pattern — is unchanged.
func (nw *Network) SetResistance(i int, ohms float64) error {
	if i < 0 || i >= len(nw.edges) {
		return fmt.Errorf("circuit: resistor %d out of range [0,%d)", i, len(nw.edges))
	}
	if !(ohms > 0) {
		return fmt.Errorf("circuit: resistance must be positive, got %g", ohms)
	}
	nw.edges[i].g = 1 / ohms
	return nil
}

// Solution holds the solved node voltages of a network.
type Solution struct {
	V []float64 // voltage per node; V[0] == 0
}

// Solve computes the DC operating point. The returned Solution has one
// voltage per node.
func (nw *Network) Solve() (*Solution, error) {
	n := nw.nodes
	// Map unknown nodes to compact indices.
	idx := make([]int, n)
	unknown := 0
	for i := 0; i < n; i++ {
		if _, ok := nw.fixed[i]; ok {
			idx[i] = -1
		} else {
			idx[i] = unknown
			unknown++
		}
	}
	v := make([]float64, n)
	for node, volt := range nw.fixed {
		v[node] = volt
	}
	if unknown == 0 {
		return &Solution{V: v}, nil
	}
	b := make([]float64, unknown)
	if unknown <= denseLimit {
		g := linalg.NewDense(unknown, unknown)
		for i := 0; i < n; i++ {
			if idx[i] >= 0 {
				g.Add(idx[i], idx[i], Gmin)
			}
		}
		for _, r := range nw.edges {
			stampDense(g, b, idx, v, r)
		}
		x, err := solveDenseSPD(g, b)
		if err != nil {
			return nil, fmt.Errorf("circuit: dense solve: %w", err)
		}
		for i := 0; i < n; i++ {
			if idx[i] >= 0 {
				v[i] = x[idx[i]]
			}
		}
		return &Solution{V: v}, nil
	}
	coords := make([]linalg.Coord, 0, len(nw.edges)*4+unknown)
	for i := 0; i < n; i++ {
		if idx[i] >= 0 {
			coords = append(coords, linalg.Coord{Row: idx[i], Col: idx[i], Val: Gmin})
		}
	}
	for _, r := range nw.edges {
		coords = stampSparse(coords, b, idx, v, r)
	}
	m := linalg.NewCSR(unknown, coords)
	x, res, err := linalg.SolveCG(m, b, linalg.CGOptions{MaxIter: 50 * unknown, Tol: 1e-12})
	if err != nil {
		return nil, fmt.Errorf("circuit: CG solve: %w", err)
	}
	if !res.Converged {
		return nil, fmt.Errorf("circuit: CG did not converge (residual %g after %d iters)", res.Residual, res.Iterations)
	}
	for i := 0; i < n; i++ {
		if idx[i] >= 0 {
			v[i] = x[idx[i]]
		}
	}
	return &Solution{V: v}, nil
}

// solveDenseSPD solves the reduced conductance system with Cholesky — the
// matrix is SPD by construction (conductance Laplacian plus the Gmin
// diagonal) and Cholesky halves the factorization flops of pivoted LU.
// Pivoted LU remains as a fallback so a pathological (e.g. externally
// assembled, barely non-SPD) system still solves.
func solveDenseSPD(g *linalg.Dense, b []float64) ([]float64, error) {
	if chol, err := linalg.FactorCholesky(g); err == nil {
		return chol.Solve(b)
	}
	return linalg.SolveDense(g, b)
}

// stampDense applies the conductance stamp of resistor r to the reduced
// dense system.
func stampDense(g *linalg.Dense, b []float64, idx []int, v []float64, r resistor) {
	ia, ib := idx[r.a], idx[r.b]
	switch {
	case ia >= 0 && ib >= 0:
		g.Add(ia, ia, r.g)
		g.Add(ib, ib, r.g)
		g.Add(ia, ib, -r.g)
		g.Add(ib, ia, -r.g)
	case ia >= 0: // b fixed
		g.Add(ia, ia, r.g)
		b[ia] += r.g * v[r.b]
	case ib >= 0: // a fixed
		g.Add(ib, ib, r.g)
		b[ib] += r.g * v[r.a]
	}
}

// stampSparse is the CSR-coordinate analogue of stampDense.
func stampSparse(coords []linalg.Coord, b []float64, idx []int, v []float64, r resistor) []linalg.Coord {
	ia, ib := idx[r.a], idx[r.b]
	switch {
	case ia >= 0 && ib >= 0:
		coords = append(coords,
			linalg.Coord{Row: ia, Col: ia, Val: r.g},
			linalg.Coord{Row: ib, Col: ib, Val: r.g},
			linalg.Coord{Row: ia, Col: ib, Val: -r.g},
			linalg.Coord{Row: ib, Col: ia, Val: -r.g})
	case ia >= 0:
		coords = append(coords, linalg.Coord{Row: ia, Col: ia, Val: r.g})
		b[ia] += r.g * v[r.b]
	case ib >= 0:
		coords = append(coords, linalg.Coord{Row: ib, Col: ib, Val: r.g})
		b[ib] += r.g * v[r.a]
	}
	return coords
}

// EdgeCurrent returns the current through the i-th added resistor under the
// solution, flowing from its first to its second node.
func (nw *Network) EdgeCurrent(sol *Solution, i int) float64 {
	r := nw.edges[i]
	return (sol.V[r.a] - sol.V[r.b]) * r.g
}

// Power returns the total dissipated power of the network under the
// solution: Σ (ΔV)²·G over every resistor. This is what a supply-rail
// current probe integrates — the side-channel observable of a pulse.
func (nw *Network) Power(sol *Solution) float64 {
	sum := 0.0
	for _, r := range nw.edges {
		dv := sol.V[r.a] - sol.V[r.b]
		sum += dv * dv * r.g
	}
	return sum
}

// TerminalCurrent returns the net current injected into the network by the
// fixed node (positive = flowing out of the source into the network),
// computed by summing resistor currents incident to it plus its Gmin leak.
func (nw *Network) TerminalCurrent(sol *Solution, node int) float64 {
	sum := 0.0
	for _, r := range nw.edges {
		if r.a == node {
			sum += (sol.V[r.a] - sol.V[r.b]) * r.g
		} else if r.b == node {
			sum += (sol.V[r.b] - sol.V[r.a]) * r.g
		}
	}
	return sum
}
