package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// Workspace is a reusable solve context bound to one Network. A plain
// Network.Solve rebuilds the unknown-node index map, reallocates the
// reduced system and (on the sparse path) re-sorts the CSR coordinates on
// every call, even though all of those depend only on the topology and the
// fixed-node set. A Workspace computes the symbolic structure once; each
// Solve then refills values in place — the right shape for loops that
// re-solve the same geometry with updated resistances (transient
// co-simulation via Network.SetResistance, calibration and Monte-Carlo
// sweeps).
//
// The sparse path additionally warm-starts the conjugate-gradient solve
// from the previous solution, which collapses the iteration count when
// consecutive solves are physically close (small per-step drift).
//
// A Workspace is not safe for concurrent use, and the Solution it returns
// aliases internal buffers: it is valid only until the next Solve call.
// The bound network's topology (node count, resistor count, fixed set)
// must not change after the workspace is created; resistor values may
// change freely.
type Workspace struct {
	nw      *Network
	nedges  int
	nfixed  int
	idx     []int // node -> unknown index or -1
	unknown int
	v       []float64 // full node voltages (solution buffer)
	b       []float64
	x       []float64
	sol     Solution

	// Dense path.
	g    *linalg.Dense
	chol *linalg.Cholesky

	// Sparse path: the coordinate pattern in stamp order, refilled values,
	// and the previous solution for CG warm starting.
	tmpl    *linalg.CSRTemplate
	vals    []float64
	prevX   []float64
	hasPrev bool
}

// NewWorkspace builds the symbolic solve structure for the network's
// current topology and fixed-node set.
func (nw *Network) NewWorkspace() (*Workspace, error) {
	n := nw.nodes
	ws := &Workspace{
		nw:     nw,
		nedges: len(nw.edges),
		nfixed: len(nw.fixed),
		idx:    make([]int, n),
		v:      make([]float64, n),
	}
	unknown := 0
	for i := 0; i < n; i++ {
		if _, ok := nw.fixed[i]; ok {
			ws.idx[i] = -1
		} else {
			ws.idx[i] = unknown
			unknown++
		}
	}
	ws.unknown = unknown
	ws.b = make([]float64, unknown)
	ws.x = make([]float64, unknown)
	if unknown == 0 {
		return ws, nil
	}
	if unknown <= denseLimit {
		ws.g = linalg.NewDense(unknown, unknown)
		ws.chol = linalg.NewCholesky(unknown)
		return ws, nil
	}
	// Sparse: record the coordinate pattern once, in stamp order — Gmin
	// diagonal first, then per-edge stamps. Refills must walk the edges in
	// exactly this order.
	rows := make([]int, 0, unknown+4*len(nw.edges))
	cols := make([]int, 0, unknown+4*len(nw.edges))
	for i := 0; i < n; i++ {
		if ws.idx[i] >= 0 {
			rows = append(rows, ws.idx[i])
			cols = append(cols, ws.idx[i])
		}
	}
	for _, r := range nw.edges {
		ia, ib := ws.idx[r.a], ws.idx[r.b]
		switch {
		case ia >= 0 && ib >= 0:
			rows = append(rows, ia, ib, ia, ib)
			cols = append(cols, ia, ib, ib, ia)
		case ia >= 0:
			rows = append(rows, ia)
			cols = append(cols, ia)
		case ib >= 0:
			rows = append(rows, ib)
			cols = append(cols, ib)
		}
	}
	ws.tmpl = linalg.NewCSRTemplate(unknown, rows, cols)
	ws.vals = make([]float64, len(rows))
	ws.prevX = make([]float64, unknown)
	return ws, nil
}

// Solve computes the DC operating point with the network's current
// resistor values, reusing every buffer. The returned Solution aliases the
// workspace and is valid until the next Solve.
func (ws *Workspace) Solve() (*Solution, error) {
	nw := ws.nw
	if len(nw.edges) != ws.nedges || len(nw.fixed) != ws.nfixed {
		return nil, fmt.Errorf("circuit: network topology changed under workspace (%d/%d edges, %d/%d fixed)",
			len(nw.edges), ws.nedges, len(nw.fixed), ws.nfixed)
	}
	for i := range ws.v {
		ws.v[i] = 0
	}
	for node, volt := range nw.fixed {
		ws.v[node] = volt
	}
	if ws.unknown == 0 {
		ws.sol.V = ws.v
		return &ws.sol, nil
	}
	for i := range ws.b {
		ws.b[i] = 0
	}
	if ws.g != nil {
		if err := ws.solveDense(); err != nil {
			return nil, err
		}
	} else if err := ws.solveSparse(); err != nil {
		return nil, err
	}
	for i, ui := range ws.idx {
		if ui >= 0 {
			ws.v[i] = ws.x[ui]
		}
	}
	ws.sol.V = ws.v
	return &ws.sol, nil
}

func (ws *Workspace) solveDense() error {
	if t := ctel.Load(); t != nil {
		t.denseRefactors.Inc()
	}
	g := ws.g
	for i := range g.Data {
		g.Data[i] = 0
	}
	for i := 0; i < ws.nw.nodes; i++ {
		if ws.idx[i] >= 0 {
			g.Add(ws.idx[i], ws.idx[i], Gmin)
		}
	}
	for _, r := range ws.nw.edges {
		stampDense(g, ws.b, ws.idx, ws.v, r)
	}
	if err := ws.chol.Factor(g); err == nil {
		return ws.chol.SolveInto(ws.x, ws.b)
	}
	// Non-SPD fallback (should not happen for resistive MNA systems).
	lu, err := linalg.Factor(g)
	if err != nil {
		return fmt.Errorf("circuit: dense solve: %w", err)
	}
	return lu.SolveInto(ws.x, ws.b)
}

func (ws *Workspace) solveSparse() error {
	if t := ctel.Load(); t != nil {
		t.sparseSolves.Inc()
	}
	// Refill values in the exact pattern order recorded by NewWorkspace.
	vals := ws.vals[:0]
	for i := 0; i < ws.nw.nodes; i++ {
		if ws.idx[i] >= 0 {
			vals = append(vals, Gmin)
		}
	}
	for _, r := range ws.nw.edges {
		ia, ib := ws.idx[r.a], ws.idx[r.b]
		switch {
		case ia >= 0 && ib >= 0:
			vals = append(vals, r.g, r.g, -r.g, -r.g)
		case ia >= 0:
			vals = append(vals, r.g)
			ws.b[ia] += r.g * ws.v[r.b]
		case ib >= 0:
			vals = append(vals, r.g)
			ws.b[ib] += r.g * ws.v[r.a]
		}
	}
	m := ws.tmpl.Refill(vals)
	opt := linalg.CGOptions{MaxIter: 50 * ws.unknown, Tol: 1e-12}
	if ws.hasPrev {
		opt.X0 = ws.prevX
	}
	x, res, err := linalg.SolveCG(m, ws.b, opt)
	if err != nil {
		return fmt.Errorf("circuit: CG solve: %w", err)
	}
	if !res.Converged {
		return fmt.Errorf("circuit: CG did not converge (residual %g after %d iters)", res.Residual, res.Iterations)
	}
	copy(ws.x, x)
	copy(ws.prevX, x)
	ws.hasPrev = true
	return nil
}
