package circuit

import (
	"sync/atomic"

	"snvmm/internal/telemetry"
)

// Package-level instrumentation of the solver reuse structure: how often a
// base system is factored from scratch (FactorSystem), versus how often a
// workspace answers a solve by refactoring its dense Cholesky in place or
// by a pattern-reusing sparse CG solve (whose warm-start rate shows up in
// the linalg.cg.* counters).

// circuitTel is the resolved instrument set.
type circuitTel struct {
	factorSystems  *telemetry.Counter // full base factorizations (Sherman-Morrison root)
	denseRefactors *telemetry.Counter // workspace dense solves (Cholesky refactor per call)
	sparseSolves   *telemetry.Counter // workspace sparse solves (CSR template reuse + CG)
	sketchFactors  *telemetry.Counter // once-per-device Green-table factorizations (FactorSketch)
	sketchProbes   *telemetry.Counter // probe columns solved while building sketches

	// Sketch backend selection and hierarchical-factorization shape: which
	// backend FactorSketch resolved to, the nested-dissection depth of the
	// last hierarchical factor, and how many Green-table entries were
	// actually materialized versus the dense np^2+ns*np+ns^2 equivalent
	// (the block-sparse fill of the truncation-radius tables).
	sketchDense      *telemetry.Counter
	sketchCG         *telemetry.Counter
	sketchHier       *telemetry.Counter
	sketchDepth      *telemetry.Gauge
	sketchTableFill  *telemetry.Gauge
	sketchTableDense *telemetry.Gauge
	sketchFactorFill *telemetry.Gauge
}

var ctel atomic.Pointer[circuitTel]

// SetTelemetry attaches (or, with nil, detaches) the solver-reuse
// instruments, all under the "circuit." prefix.
func SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		ctel.Store(nil)
		return
	}
	ctel.Store(&circuitTel{
		factorSystems:  reg.Counter("circuit.factor_systems"),
		denseRefactors: reg.Counter("circuit.ws.dense_refactors"),
		sparseSolves:   reg.Counter("circuit.ws.sparse_solves"),
		sketchFactors:  reg.Counter("circuit.sketch.factors"),
		sketchProbes:   reg.Counter("circuit.sketch.probe_solves"),

		sketchDense:      reg.Counter("circuit.sketch.backend_dense"),
		sketchCG:         reg.Counter("circuit.sketch.backend_cg"),
		sketchHier:       reg.Counter("circuit.sketch.backend_hier"),
		sketchDepth:      reg.Gauge("circuit.sketch.nd_depth"),
		sketchTableFill:  reg.Gauge("circuit.sketch.table_entries"),
		sketchTableDense: reg.Gauge("circuit.sketch.table_entries_dense"),
		sketchFactorFill: reg.Gauge("circuit.sketch.factor_nnz"),
	})
}
