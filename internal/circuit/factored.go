package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// Factored is a factorized network system that supports fast re-solves under
// a single-resistor perturbation via the Sherman–Morrison identity. The
// crossbar calibration sweeps one cell resistance at a time across the whole
// array; refactoring the full conductance matrix for each sweep point would
// cost O(n^3) per point, while the rank-1 update costs O(n^2).
type Factored struct {
	nw      *Network
	lu      *linalg.LU
	idx     []int     // node -> unknown index or -1
	fixed   []float64 // node -> fixed voltage (valid where idx < 0)
	b       []float64 // base right-hand side
	baseX   []float64 // base unknown solution
	unknown int
}

// FactorSystem assembles and factors the reduced conductance system once.
// Only networks small enough for the dense path are supported (the sparse
// CG path has no cheap rank-1 update).
func (nw *Network) FactorSystem() (*Factored, error) {
	n := nw.nodes
	idx := make([]int, n)
	fixed := make([]float64, n)
	unknown := 0
	for i := 0; i < n; i++ {
		if v, ok := nw.fixed[i]; ok {
			idx[i] = -1
			fixed[i] = v
		} else {
			idx[i] = unknown
			unknown++
		}
	}
	if unknown == 0 {
		return nil, fmt.Errorf("circuit: FactorSystem needs at least one unknown node")
	}
	g := linalg.NewDense(unknown, unknown)
	b := make([]float64, unknown)
	for i := 0; i < n; i++ {
		if idx[i] >= 0 {
			g.Add(idx[i], idx[i], Gmin)
		}
	}
	for _, r := range nw.edges {
		stampDense(g, b, idx, fixed, r)
	}
	lu, err := linalg.Factor(g)
	if err != nil {
		return nil, fmt.Errorf("circuit: factoring system: %w", err)
	}
	baseX, err := lu.Solve(b)
	if err != nil {
		return nil, err
	}
	return &Factored{nw: nw, lu: lu, idx: idx, fixed: fixed, b: b, baseX: baseX, unknown: unknown}, nil
}

// expand maps an unknown-space solution to full node voltages.
func (f *Factored) expand(x []float64) []float64 {
	v := make([]float64, f.nw.nodes)
	for i := 0; i < f.nw.nodes; i++ {
		if f.idx[i] >= 0 {
			v[i] = x[f.idx[i]]
		} else {
			v[i] = f.fixed[i]
		}
	}
	return v
}

// Base returns the unperturbed solution.
func (f *Factored) Base() *Solution { return &Solution{V: f.expand(f.baseX)} }

// SolveEdgePerturbed returns the node voltages when the resistance of the
// i-th added resistor is changed to newOhms, computed with a Sherman–
// Morrison rank-1 update against the base factorization. Both endpoints of
// the perturbed edge must be unknown (not voltage-fixed) nodes.
func (f *Factored) SolveEdgePerturbed(edge int, newOhms float64) (*Solution, error) {
	if edge < 0 || edge >= len(f.nw.edges) {
		return nil, fmt.Errorf("circuit: edge %d out of range", edge)
	}
	if !(newOhms > 0) {
		return nil, fmt.Errorf("circuit: perturbed resistance must be positive, got %g", newOhms)
	}
	r := f.nw.edges[edge]
	ia, ib := f.idx[r.a], f.idx[r.b]
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("circuit: perturbed edge (%d,%d) touches a fixed node", r.a, r.b)
	}
	dg := 1/newOhms - r.g
	if dg == 0 {
		return &Solution{V: f.expand(f.baseX)}, nil
	}
	// G' = G + dg * u u^T with u = e_ia - e_ib.
	u := make([]float64, f.unknown)
	u[ia] = 1
	u[ib] = -1
	z, err := f.lu.Solve(u)
	if err != nil {
		return nil, err
	}
	denom := 1 + dg*(z[ia]-z[ib])
	if denom == 0 {
		return nil, fmt.Errorf("circuit: singular rank-1 update on edge %d", edge)
	}
	scale := dg * (f.baseX[ia] - f.baseX[ib]) / denom
	x := make([]float64, f.unknown)
	for i := range x {
		x[i] = f.baseX[i] - scale*z[i]
	}
	return &Solution{V: f.expand(x)}, nil
}
