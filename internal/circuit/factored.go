package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// Factored is a factorized network system that supports fast re-solves under
// a single-resistor perturbation via the Sherman–Morrison identity. The
// crossbar calibration sweeps one cell resistance at a time across the whole
// array; refactoring the full conductance matrix for each sweep point would
// cost O(n^3) per point, while the rank-1 update costs O(n^2).
//
// The reduced system is SPD, so the base factorization is Cholesky (with a
// pivoted-LU fallback for non-SPD inputs). Perturbation solves reuse
// internal scratch buffers: the Solution returned by SolveEdgePerturbed
// aliases them and is valid only until the next SolveEdgePerturbed call.
// A Factored value is not safe for concurrent use.
type Factored struct {
	nw      *Network
	chol    *linalg.Cholesky
	lu      *linalg.LU // non-SPD fallback; nil when chol is in use
	idx     []int      // node -> unknown index or -1
	fixed   []float64  // node -> fixed voltage (valid where idx < 0)
	b       []float64  // base right-hand side
	baseX   []float64  // base unknown solution
	unknown int

	// Scratch for SolveEdgePerturbed.
	u, z, x []float64
	sol     Solution
}

// FactorSystem assembles and factors the reduced conductance system once.
// Only networks small enough for the dense path are supported (the sparse
// CG path has no cheap rank-1 update).
func (nw *Network) FactorSystem() (*Factored, error) {
	if t := ctel.Load(); t != nil {
		t.factorSystems.Inc()
	}
	n := nw.nodes
	idx := make([]int, n)
	fixed := make([]float64, n)
	unknown := 0
	for i := 0; i < n; i++ {
		if v, ok := nw.fixed[i]; ok {
			idx[i] = -1
			fixed[i] = v
		} else {
			idx[i] = unknown
			unknown++
		}
	}
	if unknown == 0 {
		return nil, fmt.Errorf("circuit: FactorSystem needs at least one unknown node")
	}
	g := linalg.NewDense(unknown, unknown)
	b := make([]float64, unknown)
	for i := 0; i < n; i++ {
		if idx[i] >= 0 {
			g.Add(idx[i], idx[i], Gmin)
		}
	}
	for _, r := range nw.edges {
		stampDense(g, b, idx, fixed, r)
	}
	f := &Factored{
		nw: nw, idx: idx, fixed: fixed, b: b, unknown: unknown,
		u: make([]float64, unknown),
		z: make([]float64, unknown),
		x: make([]float64, unknown),
	}
	f.chol = linalg.NewCholesky(unknown)
	if err := f.chol.Factor(g); err != nil {
		f.chol = nil
		lu, luErr := linalg.Factor(g)
		if luErr != nil {
			return nil, fmt.Errorf("circuit: factoring system: %w", luErr)
		}
		f.lu = lu
	}
	baseX := make([]float64, unknown)
	if err := f.solveInto(baseX, b); err != nil {
		return nil, err
	}
	f.baseX = baseX
	return f, nil
}

// solveInto solves the base system into dst with whichever factorization is
// live.
func (f *Factored) solveInto(dst, b []float64) error {
	if f.chol != nil {
		return f.chol.SolveInto(dst, b)
	}
	return f.lu.SolveInto(dst, b)
}

// expandInto maps an unknown-space solution to full node voltages.
func (f *Factored) expandInto(v, x []float64) {
	for i := 0; i < f.nw.nodes; i++ {
		if f.idx[i] >= 0 {
			v[i] = x[f.idx[i]]
		} else {
			v[i] = f.fixed[i]
		}
	}
}

// Base returns the unperturbed solution. The returned Solution is freshly
// allocated and safe to retain.
func (f *Factored) Base() *Solution {
	v := make([]float64, f.nw.nodes)
	f.expandInto(v, f.baseX)
	return &Solution{V: v}
}

// SolveEdgePerturbed returns the node voltages when the resistance of the
// i-th added resistor is changed to newOhms, computed with a Sherman–
// Morrison rank-1 update against the base factorization. Both endpoints of
// the perturbed edge must be unknown (not voltage-fixed) nodes. The
// returned Solution aliases the receiver's scratch buffers and is valid
// only until the next SolveEdgePerturbed call.
func (f *Factored) SolveEdgePerturbed(edge int, newOhms float64) (*Solution, error) {
	if edge < 0 || edge >= len(f.nw.edges) {
		return nil, fmt.Errorf("circuit: edge %d out of range", edge)
	}
	if !(newOhms > 0) {
		return nil, fmt.Errorf("circuit: perturbed resistance must be positive, got %g", newOhms)
	}
	if f.sol.V == nil {
		f.sol.V = make([]float64, f.nw.nodes)
	}
	r := f.nw.edges[edge]
	ia, ib := f.idx[r.a], f.idx[r.b]
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("circuit: perturbed edge (%d,%d) touches a fixed node", r.a, r.b)
	}
	dg := 1/newOhms - r.g
	if dg == 0 {
		f.expandInto(f.sol.V, f.baseX)
		return &f.sol, nil
	}
	// G' = G + dg * u u^T with u = e_ia - e_ib.
	for i := range f.u {
		f.u[i] = 0
	}
	f.u[ia] = 1
	f.u[ib] = -1
	if err := f.solveInto(f.z, f.u); err != nil {
		return nil, err
	}
	denom := 1 + dg*(f.z[ia]-f.z[ib])
	if denom == 0 {
		return nil, fmt.Errorf("circuit: singular rank-1 update on edge %d", edge)
	}
	scale := dg * (f.baseX[ia] - f.baseX[ib]) / denom
	for i := range f.x {
		f.x[i] = f.baseX[i] - scale*f.z[i]
	}
	f.expandInto(f.sol.V, f.x)
	return &f.sol, nil
}
