package circuit

import (
	"math"
	"testing"
)

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestVoltageDivider(t *testing.T) {
	// 1V -- 1k -- node2 -- 2k -- gnd: node2 = 2/3 V.
	nw := NewNetwork(3)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 2, 1e3))
	mustAdd(t, nw.AddResistor(2, 0, 2e3))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V[2]-2.0/3) > 1e-6 {
		t.Errorf("V2 = %g, want 0.6667", sol.V[2])
	}
	// Current from the source: 1V across 3k = 1/3 mA.
	if i := nw.TerminalCurrent(sol, 1); math.Abs(i-1.0/3000) > 1e-9 {
		t.Errorf("source current = %g, want %g", i, 1.0/3000)
	}
}

func TestParallelResistors(t *testing.T) {
	// 1V across two parallel 1k resistors: total current 2 mA.
	nw := NewNetwork(2)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 0, 1e3))
	mustAdd(t, nw.AddResistor(1, 0, 1e3))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if i := nw.TerminalCurrent(sol, 1); math.Abs(i-2e-3) > 1e-9 {
		t.Errorf("current = %g, want 2mA", i)
	}
}

func TestWheatstoneBridgeBalanced(t *testing.T) {
	// Balanced bridge: no current through the galvanometer resistor.
	// Nodes: 1=top (1V), 0=bottom(gnd), 2=left mid, 3=right mid.
	nw := NewNetwork(4)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 2, 100))
	mustAdd(t, nw.AddResistor(2, 0, 200))
	mustAdd(t, nw.AddResistor(1, 3, 300))
	mustAdd(t, nw.AddResistor(3, 0, 600))
	mustAdd(t, nw.AddResistor(2, 3, 50)) // galvanometer, edge index 4
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if i := nw.EdgeCurrent(sol, 4); math.Abs(i) > 1e-9 {
		t.Errorf("bridge current = %g, want 0", i)
	}
	if math.Abs(sol.V[2]-sol.V[3]) > 1e-9 {
		t.Errorf("bridge nodes differ: %g vs %g", sol.V[2], sol.V[3])
	}
}

func TestFloatingNodeGoesToGround(t *testing.T) {
	// A node connected to nothing should settle at 0 via Gmin without
	// making the system singular.
	nw := NewNetwork(3)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 0, 1e3))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V[2]) > 1e-9 {
		t.Errorf("floating node = %g, want ~0", sol.V[2])
	}
}

func TestFloatingIslandBetweenSources(t *testing.T) {
	// Island of two nodes bridging two fixed terminals: classic sneak-path
	// shape. 1V -- 1k -- A -- 1k -- B -- 1k -- gnd.
	nw := NewNetwork(4)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 2, 1e3))
	mustAdd(t, nw.AddResistor(2, 3, 1e3))
	mustAdd(t, nw.AddResistor(3, 0, 1e3))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V[2]-2.0/3) > 1e-6 || math.Abs(sol.V[3]-1.0/3) > 1e-6 {
		t.Errorf("V = %v, want [_, 1, 0.667, 0.333]", sol.V)
	}
}

func TestKirchhoffCurrentLaw(t *testing.T) {
	// Net current into every unknown node must be ~0 (up to Gmin leak).
	nw := NewNetwork(5)
	mustAdd(t, nw.FixVoltage(1, 2))
	mustAdd(t, nw.FixVoltage(4, -1))
	mustAdd(t, nw.AddResistor(1, 2, 500))
	mustAdd(t, nw.AddResistor(2, 3, 700))
	mustAdd(t, nw.AddResistor(3, 4, 900))
	mustAdd(t, nw.AddResistor(2, 0, 1100))
	mustAdd(t, nw.AddResistor(3, 0, 1300))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range []int{2, 3} {
		if i := nw.TerminalCurrent(sol, node); math.Abs(i) > 1e-9 {
			t.Errorf("KCL violated at node %d: net %g", node, i)
		}
	}
}

func TestSuperposition(t *testing.T) {
	// Linearity: solution with both sources = sum of single-source
	// solutions. Build three identical topologies.
	build := func(v1, v4 float64) *Solution {
		nw := NewNetwork(5)
		mustAdd(t, nw.FixVoltage(1, v1))
		mustAdd(t, nw.FixVoltage(4, v4))
		mustAdd(t, nw.AddResistor(1, 2, 1e3))
		mustAdd(t, nw.AddResistor(2, 3, 2e3))
		mustAdd(t, nw.AddResistor(3, 4, 3e3))
		mustAdd(t, nw.AddResistor(2, 0, 4e3))
		sol, err := nw.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	both := build(1, 2)
	only1 := build(1, 0)
	only4 := build(0, 2)
	for n := 2; n <= 3; n++ {
		want := only1.V[n] + only4.V[n]
		if math.Abs(both.V[n]-want) > 1e-9 {
			t.Errorf("superposition fails at node %d: %g vs %g", n, both.V[n], want)
		}
	}
}

func TestLargeGridUsesCG(t *testing.T) {
	// A 30x30 resistor grid (900 nodes > denseLimit) with opposite corners
	// driven. Check a symmetry: the two off-diagonal corners are at Vdd/2.
	const n = 30
	nodes := n*n + 1 // +1 since ground is node 0; grid nodes are 1..n*n
	nw := NewNetwork(nodes)
	id := func(r, c int) int { return 1 + r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				mustAdd(t, nw.AddResistor(id(r, c), id(r, c+1), 100))
			}
			if r+1 < n {
				mustAdd(t, nw.AddResistor(id(r, c), id(r+1, c), 100))
			}
		}
	}
	mustAdd(t, nw.FixVoltage(id(0, 0), 1))
	mustAdd(t, nw.FixVoltage(id(n-1, n-1), 0))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := sol.V[id(0, n-1)], sol.V[id(n-1, 0)]
	if math.Abs(v1-0.5) > 1e-6 || math.Abs(v2-0.5) > 1e-6 {
		t.Errorf("corner voltages %g, %g, want 0.5 by symmetry", v1, v2)
	}
}

func TestValidationErrors(t *testing.T) {
	nw := NewNetwork(3)
	if err := nw.AddResistor(0, 3, 100); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := nw.AddResistor(1, 1, 100); err == nil {
		t.Error("expected coincident-endpoint error")
	}
	if err := nw.AddResistor(0, 1, 0); err == nil {
		t.Error("expected nonpositive resistance error")
	}
	if err := nw.AddResistor(0, 1, math.NaN()); err == nil {
		t.Error("expected NaN resistance error")
	}
	if err := nw.FixVoltage(5, 1); err == nil {
		t.Error("expected out-of-range fix error")
	}
	if err := nw.FixVoltage(0, 1); err == nil {
		t.Error("expected ground-fix error")
	}
	mustAdd(t, nw.FixVoltage(1, 1))
	if err := nw.FixVoltage(1, 2); err == nil {
		t.Error("expected duplicate-fix error")
	}
}

func TestAllNodesFixed(t *testing.T) {
	nw := NewNetwork(2)
	mustAdd(t, nw.FixVoltage(1, 5))
	mustAdd(t, nw.AddResistor(0, 1, 10))
	sol, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.V[1] != 5 || sol.V[0] != 0 {
		t.Errorf("V = %v", sol.V)
	}
	if i := nw.TerminalCurrent(sol, 1); math.Abs(i-0.5) > 1e-12 {
		t.Errorf("current = %g, want 0.5", i)
	}
}

func TestFactorSystemMatchesSolve(t *testing.T) {
	nw := NewNetwork(5)
	mustAdd(t, nw.FixVoltage(1, 2))
	mustAdd(t, nw.AddResistor(1, 2, 500))  // edge 0
	mustAdd(t, nw.AddResistor(2, 3, 700))  // edge 1
	mustAdd(t, nw.AddResistor(3, 4, 900))  // edge 2
	mustAdd(t, nw.AddResistor(2, 0, 1100)) // edge 3
	mustAdd(t, nw.AddResistor(4, 0, 1300)) // edge 4
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	want, err := nw.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got := fac.Base()
	for i := range want.V {
		if math.Abs(got.V[i]-want.V[i]) > 1e-9 {
			t.Errorf("base V[%d] = %g, want %g", i, got.V[i], want.V[i])
		}
	}
}

func TestSolveEdgePerturbedMatchesRebuild(t *testing.T) {
	build := func(r12 float64) *Network {
		nw := NewNetwork(5)
		mustAdd(t, nw.FixVoltage(1, 2))
		mustAdd(t, nw.AddResistor(1, 2, 500))
		mustAdd(t, nw.AddResistor(2, 3, r12)) // edge 1: both ends unknown
		mustAdd(t, nw.AddResistor(3, 4, 900))
		mustAdd(t, nw.AddResistor(2, 0, 1100))
		mustAdd(t, nw.AddResistor(4, 0, 1300))
		return nw
	}
	fac, err := build(700).FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	for _, newR := range []float64{100, 700, 5000, 1e6} {
		got, err := fac.SolveEdgePerturbed(1, newR)
		if err != nil {
			t.Fatal(err)
		}
		want, err := build(newR).Solve()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.V {
			if math.Abs(got.V[i]-want.V[i]) > 1e-8 {
				t.Errorf("newR=%g: V[%d] = %g, want %g", newR, i, got.V[i], want.V[i])
			}
		}
	}
}

func TestSolveEdgePerturbedErrors(t *testing.T) {
	nw := NewNetwork(3)
	mustAdd(t, nw.FixVoltage(1, 1))
	mustAdd(t, nw.AddResistor(1, 2, 100)) // edge 0 touches fixed node 1
	mustAdd(t, nw.AddResistor(2, 0, 100)) // edge 1 touches ground (fixed)
	fac, err := nw.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fac.SolveEdgePerturbed(0, 50); err == nil {
		t.Error("expected fixed-node error")
	}
	if _, err := fac.SolveEdgePerturbed(5, 50); err == nil {
		t.Error("expected range error")
	}
	if _, err := fac.SolveEdgePerturbed(0, -1); err == nil {
		t.Error("expected resistance error")
	}
}
