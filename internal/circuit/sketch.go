package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// ProbeSketch extends the probe-form Sherman–Morrison trick of
// SolveEdgesPerturbedDiffs from one factored operating point to a whole
// family of them. The crossbar calibration solves the same sneak network
// once per PoE, with only the two driven terminals changing between PoEs —
// n factorizations of an O(n)-node system, the O(n^6)-ish wall that keeps
// 32x32 devices out of reach.
//
// The sketch instead factors the network exactly once with no driven nodes
// (every terminal held through its keeper, only ground fixed) and
// precomputes Green-function tables against a fixed probe set:
//
//	W[i][j] = u_i^T G^-1 u_j   (pair/pair: u = e_A - e_B per probe pair)
//	C[s][j] = e_s^T G^-1 u_j   (single/pair)
//	T[s][t] = e_s^T G^-1 e_t   (single/single)
//
// Driving k terminals to fixed voltages is then a rank-k boundary
// constraint. With E the incidence of the pinned singles and M = E^T G^-1 E
// (a k x k slice of T), the constrained solution is x = G^-1 E M^-1 v, and
// the block-inverse identity gives the constrained (reduced-system) inverse
// purely in table entries:
//
//	u_i^T H u_j = W[i][j] - C_i^T M^-1 C_j,   H = (G restricted)^-1
//
// so every per-PoE quantity the calibration needs — base probe drops,
// Sherman–Morrison denominators, perturbed drops — costs O(k) table
// arithmetic instead of a linear solve. Building the tables costs one
// factorization plus ns+np batched solves, after which characterizing all n
// PoEs is table lookups: per-PoE cost scales with the swept neighbourhood,
// not with device size.
//
// Backends: dense Cholesky (LU fallback) up to SketchOptions.DenseLimit
// unknowns, above that the CSR + Jacobi-CG machinery with each probe solve
// warm-started from its neighbour (probe RHS of adjacent cells are close,
// so are their Green columns).
//
// A ProbeSketch is immutable once built and safe for concurrent readers.
type ProbeSketch struct {
	n      int // unknowns (nodes - 1, ground eliminated)
	np, ns int

	pa, pb []int // pair endpoints in unknown space
	si     []int // singles in unknown space

	backend SketchBackend // resolved backend (never SketchAuto)

	// Dense tables (SketchDense / SketchCG backends).
	w    []float64 // np x np, W[i*np+j]
	cmat []float64 // ns x np, C[s*np+j]
	tmat []float64 // ns x ns, T[s*ns+t] (all backends)

	// Block-sparse tables (SketchHier backend): CSR-style rows over pair
	// ids, patterns fixed by SketchOptions.Sparsity. Entries outside the
	// pattern are never materialized.
	wptr, wcol []int32
	wval       []float64
	cptr, ccol []int32
	cval       []float64

	ndDepth int   // nested-dissection (supernodal etree) depth, hier only
	fillNNZ int64 // factor fill, hier only
}

// SketchBackend selects how FactorSketch factors the network and stores the
// Green tables.
type SketchBackend int

const (
	// SketchAuto picks by unknown count: hierarchical above HierLimit when
	// an ordering and a sparsity pattern are supplied, else dense up to
	// DenseLimit, else CG.
	SketchAuto SketchBackend = iota
	// SketchDense factors densely (Cholesky, LU fallback) and stores full
	// W/C/T tables.
	SketchDense
	// SketchCG answers each probe with a warm-started Jacobi-CG solve and
	// stores full tables — the legacy large-device fallback; explicit
	// selection only under Auto unless no ordering is available.
	SketchCG
	// SketchHier runs the nested-dissection supernodal sparse Cholesky
	// (linalg.FactorSparse) under the caller-supplied elimination order and
	// materializes only the table entries named by SketchOptions.Sparsity.
	// Requires Order and Sparsity.
	SketchHier
)

// String names the backend for telemetry and logs.
func (b SketchBackend) String() string {
	switch b {
	case SketchDense:
		return "dense"
	case SketchCG:
		return "cg"
	case SketchHier:
		return "hierarchical"
	default:
		return "auto"
	}
}

// SketchSparsity names which Green-table entries a hierarchical sketch
// materializes. Row lists are pair ids, strictly ascending. PairRows must be
// symmetric (j in PairRows[i] iff i in PairRows[j]) and self-inclusive;
// FactorSketch validates and takes ownership of the slices.
type SketchSparsity struct {
	// PairRows[i] lists the pairs j for which W[i][j] is stored.
	PairRows [][]int32
	// SingleRows[s] lists the pairs j for which C[s][j] is stored.
	SingleRows [][]int32
}

// SketchOptions tunes FactorSketch. The zero value selects the defaults.
type SketchOptions struct {
	// Backend forces a backend; SketchAuto (the zero value) selects by
	// unknown count as documented on the constants.
	Backend SketchBackend
	// DenseLimit is the unknown count above which the sketch switches from
	// the dense Cholesky backend to sparse CG. 0 means 6000 (a 32x32
	// crossbar has ~2100 unknowns and stays dense; 64x64 crosses over).
	DenseLimit int
	// HierLimit is the unknown count above which SketchAuto prefers the
	// hierarchical backend when Order and Sparsity are supplied. 0 means
	// 1024 — a 16x16 crossbar (544 unknowns) stays on the bit-stable dense
	// backend, 24x24 (1200) and up go hierarchical.
	HierLimit int
	// BatchRHS is the multi-RHS panel width of the dense backend. 0 means 64.
	BatchRHS int
	// CGTol is the relative residual tolerance of the CG backend. 0 means
	// 1e-12.
	CGTol float64
	// Order is the elimination order for the hierarchical backend:
	// Order[k] is the unknown (node-1) eliminated at position k. Any
	// permutation is numerically correct; a nested-dissection order keeps
	// fill near-linear.
	Order []int
	// Sparsity restricts which table entries the hierarchical backend
	// materializes. Required with SketchHier.
	Sparsity *SketchSparsity
}

const (
	defaultSketchDenseLimit = 6000
	defaultSketchHierLimit  = 1024
	defaultSketchBatch      = 64
)

// FactorSketch factors the network once and precomputes the Green tables
// for the given probe pairs and single-node probes. The network must have
// no fixed nodes besides ground: boundary drives are applied per operating
// point through Pin, which is what lets one factorization serve them all.
func (nw *Network) FactorSketch(pairs []ProbePair, singles []int, opt SketchOptions) (*ProbeSketch, error) {
	if len(nw.fixed) != 1 {
		return nil, fmt.Errorf("circuit: FactorSketch needs a network with only ground fixed, got %d fixed nodes", len(nw.fixed))
	}
	if _, ok := nw.fixed[Ground]; !ok {
		return nil, fmt.Errorf("circuit: FactorSketch needs ground fixed")
	}
	np, ns := len(pairs), len(singles)
	if np == 0 {
		return nil, fmt.Errorf("circuit: FactorSketch needs at least one probe pair")
	}
	n := nw.nodes - 1
	if n == 0 {
		return nil, fmt.Errorf("circuit: FactorSketch needs at least one unknown node")
	}
	sk := &ProbeSketch{
		n: n, np: np, ns: ns,
		pa: make([]int, np), pb: make([]int, np),
		si:   make([]int, ns),
		tmat: make([]float64, ns*ns),
	}
	for q, pr := range pairs {
		if pr.A <= 0 || pr.A >= nw.nodes || pr.B <= 0 || pr.B >= nw.nodes || pr.A == pr.B {
			return nil, fmt.Errorf("circuit: probe pair (%d,%d) invalid", pr.A, pr.B)
		}
		sk.pa[q], sk.pb[q] = pr.A-1, pr.B-1
	}
	for s, nd := range singles {
		if nd <= 0 || nd >= nw.nodes {
			return nil, fmt.Errorf("circuit: single probe node %d out of range", nd)
		}
		sk.si[s] = nd - 1
	}
	if t := ctel.Load(); t != nil {
		t.sketchFactors.Inc()
		t.sketchProbes.Add(int64(ns + np))
	}
	limit := opt.DenseLimit
	if limit <= 0 {
		limit = defaultSketchDenseLimit
	}
	hierLimit := opt.HierLimit
	if hierLimit <= 0 {
		hierLimit = defaultSketchHierLimit
	}
	backend := opt.Backend
	if backend == SketchAuto {
		switch {
		case n > hierLimit && opt.Order != nil && opt.Sparsity != nil:
			backend = SketchHier
		case n <= limit:
			backend = SketchDense
		default:
			backend = SketchCG
		}
	}
	sk.backend = backend
	// idx: node -> unknown. Only ground is eliminated, so the map is i-1.
	idx := make([]int, nw.nodes)
	idx[Ground] = -1
	for i := 1; i < nw.nodes; i++ {
		idx[i] = i - 1
	}
	vfixed := make([]float64, nw.nodes) // ground at 0; no other fixed nodes
	var err error
	switch backend {
	case SketchDense:
		sk.w = make([]float64, np*np)
		sk.cmat = make([]float64, ns*np)
		err = sk.buildDense(nw, idx, vfixed, opt)
	case SketchCG:
		sk.w = make([]float64, np*np)
		sk.cmat = make([]float64, ns*np)
		err = sk.buildCG(nw, idx, vfixed, opt)
	case SketchHier:
		err = sk.buildHier(nw, idx, vfixed, opt)
	default:
		err = fmt.Errorf("circuit: unknown sketch backend %d", backend)
	}
	if err != nil {
		return nil, err
	}
	if t := ctel.Load(); t != nil {
		switch backend {
		case SketchDense:
			t.sketchDense.Inc()
		case SketchCG:
			t.sketchCG.Inc()
		case SketchHier:
			t.sketchHier.Inc()
		}
		t.sketchDepth.Set(int64(sk.ndDepth))
		t.sketchTableFill.Set(sk.TableEntries())
		t.sketchTableDense.Set(int64(np)*int64(np) + int64(ns)*int64(np) + int64(ns)*int64(ns))
		t.sketchFactorFill.Set(sk.fillNNZ)
	}
	return sk, nil
}

// Backend reports which backend FactorSketch resolved to.
func (sk *ProbeSketch) Backend() SketchBackend { return sk.backend }

// NDDepth returns the nested-dissection depth of the hierarchical factor
// (0 for the dense and CG backends).
func (sk *ProbeSketch) NDDepth() int { return sk.ndDepth }

// TableEntries returns the number of Green-table entries materialized
// (W + C + T). For the hierarchical backend this is the block-sparse fill;
// for the others the full dense count.
func (sk *ProbeSketch) TableEntries() int64 {
	if sk.backend == SketchHier {
		return int64(len(sk.wval)) + int64(len(sk.cval)) + int64(len(sk.tmat))
	}
	return int64(len(sk.w)) + int64(len(sk.cmat)) + int64(len(sk.tmat))
}

// TableBytes returns the resident size of the Green tables in bytes,
// including sparse-index overhead — the quantity the truncation radius is
// supposed to bound independently of device size.
func (sk *ProbeSketch) TableBytes() int64 {
	if sk.backend == SketchHier {
		return int64(len(sk.wval)+len(sk.cval)+len(sk.tmat))*8 +
			int64(len(sk.wptr)+len(sk.wcol)+len(sk.cptr)+len(sk.ccol))*4
	}
	return int64(len(sk.w)+len(sk.cmat)+len(sk.tmat)) * 8
}

// buildDense assembles the dense conductance system, factors it (Cholesky,
// LU fallback) and streams the probe panel through it in fixed-width
// chunks. Panel columns solve with per-column-independent recurrences, so
// every table entry is a pure function of the network — independent of
// chunking and of which other probes are requested.
func (sk *ProbeSketch) buildDense(nw *Network, idx []int, vfixed []float64, opt SketchOptions) error {
	n := sk.n
	g := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		g.Add(i, i, Gmin)
	}
	bdump := make([]float64, n) // stays zero: only ground (0 V) is fixed
	for _, r := range nw.edges {
		stampDense(g, bdump, idx, vfixed, r)
	}
	chol := linalg.NewCholesky(n)
	var lu *linalg.LU
	if err := chol.Factor(g); err != nil {
		chol = nil
		var luErr error
		lu, luErr = linalg.Factor(g)
		if luErr != nil {
			return fmt.Errorf("circuit: factoring sketch system: %w", luErr)
		}
	}
	batch := opt.BatchRHS
	if batch <= 0 {
		batch = defaultSketchBatch
	}
	total := sk.ns + sk.np
	panel := make([]float64, n*batch)
	for lo := 0; lo < total; lo += batch {
		k := batch
		if lo+k > total {
			k = total - lo
		}
		sub := panel[:n*k]
		for i := range sub {
			sub[i] = 0
		}
		for c := 0; c < k; c++ {
			if q := lo + c; q < sk.ns {
				sub[sk.si[q]*k+c] = 1
			} else {
				j := q - sk.ns
				sub[sk.pa[j]*k+c] = 1
				sub[sk.pb[j]*k+c] = -1
			}
		}
		var err error
		if chol != nil {
			err = chol.SolveBatchInto(sub, sub, k)
		} else {
			err = lu.SolveBatchInto(sub, sub, k)
		}
		if err != nil {
			return err
		}
		for c := 0; c < k; c++ {
			sk.extractColumn(lo+c, sub, k, c)
		}
	}
	return nil
}

// buildCG assembles the sparse CSR system and answers each probe with a
// warm-started Jacobi-CG solve — the large-device backend, trading the
// dense factor's O(n^3) time and O(n^2) memory for O(nnz) per iteration.
func (sk *ProbeSketch) buildCG(nw *Network, idx []int, vfixed []float64, opt SketchOptions) error {
	n := sk.n
	bdump := make([]float64, n)
	coords := make([]linalg.Coord, 0, len(nw.edges)*4+n)
	for i := 0; i < n; i++ {
		coords = append(coords, linalg.Coord{Row: i, Col: i, Val: Gmin})
	}
	for _, r := range nw.edges {
		coords = stampSparse(coords, bdump, idx, vfixed, r)
	}
	m := linalg.NewCSR(n, coords)
	tol := opt.CGTol
	if tol <= 0 {
		tol = 1e-12
	}
	rhs := make([]float64, n)
	var prev []float64
	for q := 0; q < sk.ns+sk.np; q++ {
		for i := range rhs {
			rhs[i] = 0
		}
		if q < sk.ns {
			rhs[sk.si[q]] = 1
		} else {
			rhs[sk.pa[q-sk.ns]] = 1
			rhs[sk.pb[q-sk.ns]] = -1
		}
		x, res, err := linalg.SolveCG(m, rhs, linalg.CGOptions{MaxIter: 50 * n, Tol: tol, X0: prev})
		if err != nil {
			return fmt.Errorf("circuit: sketch CG probe %d: %w", q, err)
		}
		if !res.Converged {
			return fmt.Errorf("circuit: sketch CG probe %d did not converge (residual %g after %d iters)", q, res.Residual, res.Iterations)
		}
		prev = x
		sk.extractColumn(q, x, 1, 0)
	}
	return nil
}

// extractColumn scatters solved probe column q (column c of an n x k
// row-major panel y) into the Green tables.
func (sk *ProbeSketch) extractColumn(q int, y []float64, k, c int) {
	if q < sk.ns {
		for t := 0; t < sk.ns; t++ {
			sk.tmat[q*sk.ns+t] = y[sk.si[t]*k+c]
		}
		return
	}
	j := q - sk.ns
	for i := 0; i < sk.np; i++ {
		sk.w[i*sk.np+j] = y[sk.pa[i]*k+c] - y[sk.pb[i]*k+c]
	}
	for s := 0; s < sk.ns; s++ {
		sk.cmat[s*sk.np+j] = y[sk.si[s]*k+c]
	}
}

// NumPairs returns the number of probe pairs in the sketch.
func (sk *ProbeSketch) NumPairs() int { return sk.np }

// NumSingles returns the number of single-node probes in the sketch.
func (sk *ProbeSketch) NumSingles() int { return sk.ns }

// PinnedSketch is one operating point of a ProbeSketch: a set of single
// probes pinned to fixed voltages. It precomputes the M^-1-projected probe
// columns so BaseDiff and Quad are O(k) per call. Immutable once built and
// safe for concurrent readers.
//
// A pin built through PinWindow restricts its arrays to the window's pairs:
// methods keep their pair-id signatures and translate by binary search.
// Querying a pair outside the window — or, on a hierarchical sketch, a W
// entry outside the truncation sparsity — panics: the window is constructed
// by the same caller that sweeps it, so a miss is a caller bug, never data.
type PinnedSketch struct {
	sk  *ProbeSketch
	k   int
	win []int32   // nil: full (dense tables); else sorted pair ids
	nw  int       // row width of cf/mc (np, or len(win))
	cf  []float64 // k x nw: cf[a*nw+p] = C[fixed_a][win[p]]
	mc  []float64 // k x nw: column p is M^-1 * C[.][win[p]]
	bd  []float64 // nw: u^T x_base per window pair
}

// Pin applies fixed voltages volts to the probe singles at positions fixed
// (indices into the singles list given to FactorSketch) and returns the
// constrained operating point over all pairs. Hierarchical sketches must
// use PinWindow: their C tables only exist inside the truncation sparsity.
func (sk *ProbeSketch) Pin(fixed []int, volts []float64) (*PinnedSketch, error) {
	return sk.PinWindow(fixed, volts, nil)
}

// PinWindow is Pin restricted to a query window: a strictly ascending list
// of pair ids the caller will actually sweep. The per-pin arrays are sized
// by the window instead of by the device, which is what keeps per-PoE cost
// neighbourhood-bound on large devices. A nil window means all pairs (dense
// and CG backends only).
func (sk *ProbeSketch) PinWindow(fixed []int, volts []float64, window []int32) (*PinnedSketch, error) {
	k := len(fixed)
	if k == 0 || k != len(volts) {
		return nil, fmt.Errorf("circuit: Pin needs matching fixed/volt lists, got %d/%d", k, len(volts))
	}
	for a, f := range fixed {
		if f < 0 || f >= sk.ns {
			return nil, fmt.Errorf("circuit: pinned single %d out of range [0,%d)", f, sk.ns)
		}
		for b := 0; b < a; b++ {
			if fixed[b] == f {
				return nil, fmt.Errorf("circuit: single %d pinned twice", f)
			}
		}
	}
	if window == nil && sk.backend == SketchHier {
		return nil, fmt.Errorf("circuit: hierarchical sketch needs a pin window (tables are truncation-sparse)")
	}
	for p := range window {
		if window[p] < 0 || int(window[p]) >= sk.np {
			return nil, fmt.Errorf("circuit: pin window pair %d out of range [0,%d)", window[p], sk.np)
		}
		if p > 0 && window[p] <= window[p-1] {
			return nil, fmt.Errorf("circuit: pin window not strictly ascending at %d", p)
		}
	}
	// M = E^T G^-1 E is the pinned slice of T.
	m := linalg.NewDense(k, k)
	for a, fa := range fixed {
		for b, fb := range fixed {
			m.Add(a, b, sk.tmat[fa*sk.ns+fb])
		}
	}
	lu, err := linalg.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: Pin constraint system singular: %w", err)
	}
	lam := make([]float64, k)
	if err := lu.SolveInto(lam, volts); err != nil {
		return nil, err
	}
	nw := sk.np
	if window != nil {
		nw = len(window)
	}
	p := &PinnedSketch{
		sk: sk, k: k, win: window, nw: nw,
		cf: make([]float64, k*nw),
		mc: make([]float64, k*nw),
		bd: make([]float64, nw),
	}
	for a, fa := range fixed {
		row := p.cf[a*nw : (a+1)*nw]
		if window == nil {
			copy(row, sk.cmat[fa*sk.np:(fa+1)*sk.np])
			continue
		}
		for x, j := range window {
			v, ok := sk.cAt(fa, int(j))
			if !ok {
				return nil, fmt.Errorf("circuit: pin window pair %d outside C sparsity of single %d", j, fa)
			}
			row[x] = v
		}
	}
	tmp := make([]float64, k)
	out := make([]float64, k)
	for j := 0; j < nw; j++ {
		for a := 0; a < k; a++ {
			tmp[a] = p.cf[a*nw+j]
		}
		if err := lu.SolveInto(out, tmp); err != nil {
			return nil, err
		}
		for a := 0; a < k; a++ {
			p.mc[a*nw+j] = out[a]
		}
	}
	// Base drops: u_j^T x = u_j^T G^-1 E lam = C[.][j] . lam.
	for j := 0; j < nw; j++ {
		s := 0.0
		for a := 0; a < k; a++ {
			s += p.cf[a*nw+j] * lam[a]
		}
		p.bd[j] = s
	}
	return p, nil
}

// pos translates a pair id to its window position (identity when unwindowed).
func (p *PinnedSketch) pos(j int) int {
	if p.win == nil {
		return j
	}
	lo, hi := 0, len(p.win)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(p.win[mid]) < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(p.win) || int(p.win[lo]) != j {
		panic(fmt.Sprintf("circuit: pair %d outside pin window", j))
	}
	return lo
}

// BaseDiff returns the base operating-point voltage difference across probe
// pair j (V(A) - V(B)).
func (p *PinnedSketch) BaseDiff(j int) float64 { return p.bd[p.pos(j)] }

// Quad returns u_i^T H u_j, the constrained-inverse quadratic form between
// probe pairs i and j — the Sherman–Morrison coupling of an edge
// perturbation on pair j's edge to the voltage observed across pair i.
func (p *PinnedSketch) Quad(i, j int) float64 {
	var s float64
	if p.sk.backend == SketchHier {
		s = p.sk.wAt(i, j)
	} else {
		s = p.sk.w[i*p.sk.np+j]
	}
	pi, pj := p.pos(i), p.pos(j)
	for a := 0; a < p.k; a++ {
		s -= p.cf[a*p.nw+pi] * p.mc[a*p.nw+pj]
	}
	return s
}

// PerturbScale returns the Sherman–Morrison scale for a conductance change
// of dg siemens on the edge spanning pair j: the perturbed difference
// across pair i is BaseDiff(i) - scale*Quad(i, j). Mirrors the scale term
// of Factored.SolveEdgePerturbed with H in place of the factored inverse.
func (p *PinnedSketch) PerturbScale(j int, dg float64) (float64, error) {
	denom := 1 + dg*p.Quad(j, j)
	if denom == 0 {
		return 0, fmt.Errorf("circuit: singular rank-1 update on probe pair %d", j)
	}
	return dg * p.bd[p.pos(j)] / denom, nil
}
