package circuit

import (
	"fmt"

	"snvmm/internal/linalg"
)

// ProbeSketch extends the probe-form Sherman–Morrison trick of
// SolveEdgesPerturbedDiffs from one factored operating point to a whole
// family of them. The crossbar calibration solves the same sneak network
// once per PoE, with only the two driven terminals changing between PoEs —
// n factorizations of an O(n)-node system, the O(n^6)-ish wall that keeps
// 32x32 devices out of reach.
//
// The sketch instead factors the network exactly once with no driven nodes
// (every terminal held through its keeper, only ground fixed) and
// precomputes Green-function tables against a fixed probe set:
//
//	W[i][j] = u_i^T G^-1 u_j   (pair/pair: u = e_A - e_B per probe pair)
//	C[s][j] = e_s^T G^-1 u_j   (single/pair)
//	T[s][t] = e_s^T G^-1 e_t   (single/single)
//
// Driving k terminals to fixed voltages is then a rank-k boundary
// constraint. With E the incidence of the pinned singles and M = E^T G^-1 E
// (a k x k slice of T), the constrained solution is x = G^-1 E M^-1 v, and
// the block-inverse identity gives the constrained (reduced-system) inverse
// purely in table entries:
//
//	u_i^T H u_j = W[i][j] - C_i^T M^-1 C_j,   H = (G restricted)^-1
//
// so every per-PoE quantity the calibration needs — base probe drops,
// Sherman–Morrison denominators, perturbed drops — costs O(k) table
// arithmetic instead of a linear solve. Building the tables costs one
// factorization plus ns+np batched solves, after which characterizing all n
// PoEs is table lookups: per-PoE cost scales with the swept neighbourhood,
// not with device size.
//
// Backends: dense Cholesky (LU fallback) up to SketchOptions.DenseLimit
// unknowns, above that the CSR + Jacobi-CG machinery with each probe solve
// warm-started from its neighbour (probe RHS of adjacent cells are close,
// so are their Green columns).
//
// A ProbeSketch is immutable once built and safe for concurrent readers.
type ProbeSketch struct {
	n      int // unknowns (nodes - 1, ground eliminated)
	np, ns int

	pa, pb []int // pair endpoints in unknown space
	si     []int // singles in unknown space

	w    []float64 // np x np, W[i*np+j]
	cmat []float64 // ns x np, C[s*np+j]
	tmat []float64 // ns x ns, T[s*ns+t]
}

// SketchOptions tunes FactorSketch. The zero value selects the defaults.
type SketchOptions struct {
	// DenseLimit is the unknown count above which the sketch switches from
	// the dense Cholesky backend to sparse CG. 0 means 6000 (a 32x32
	// crossbar has ~2100 unknowns and stays dense; 64x64 crosses over).
	DenseLimit int
	// BatchRHS is the multi-RHS panel width of the dense backend. 0 means 64.
	BatchRHS int
	// CGTol is the relative residual tolerance of the CG backend. 0 means
	// 1e-12.
	CGTol float64
}

const (
	defaultSketchDenseLimit = 6000
	defaultSketchBatch      = 64
)

// FactorSketch factors the network once and precomputes the Green tables
// for the given probe pairs and single-node probes. The network must have
// no fixed nodes besides ground: boundary drives are applied per operating
// point through Pin, which is what lets one factorization serve them all.
func (nw *Network) FactorSketch(pairs []ProbePair, singles []int, opt SketchOptions) (*ProbeSketch, error) {
	if len(nw.fixed) != 1 {
		return nil, fmt.Errorf("circuit: FactorSketch needs a network with only ground fixed, got %d fixed nodes", len(nw.fixed))
	}
	if _, ok := nw.fixed[Ground]; !ok {
		return nil, fmt.Errorf("circuit: FactorSketch needs ground fixed")
	}
	np, ns := len(pairs), len(singles)
	if np == 0 {
		return nil, fmt.Errorf("circuit: FactorSketch needs at least one probe pair")
	}
	n := nw.nodes - 1
	if n == 0 {
		return nil, fmt.Errorf("circuit: FactorSketch needs at least one unknown node")
	}
	sk := &ProbeSketch{
		n: n, np: np, ns: ns,
		pa: make([]int, np), pb: make([]int, np),
		si:   make([]int, ns),
		w:    make([]float64, np*np),
		cmat: make([]float64, ns*np),
		tmat: make([]float64, ns*ns),
	}
	for q, pr := range pairs {
		if pr.A <= 0 || pr.A >= nw.nodes || pr.B <= 0 || pr.B >= nw.nodes || pr.A == pr.B {
			return nil, fmt.Errorf("circuit: probe pair (%d,%d) invalid", pr.A, pr.B)
		}
		sk.pa[q], sk.pb[q] = pr.A-1, pr.B-1
	}
	for s, nd := range singles {
		if nd <= 0 || nd >= nw.nodes {
			return nil, fmt.Errorf("circuit: single probe node %d out of range", nd)
		}
		sk.si[s] = nd - 1
	}
	if t := ctel.Load(); t != nil {
		t.sketchFactors.Inc()
		t.sketchProbes.Add(int64(ns + np))
	}
	limit := opt.DenseLimit
	if limit <= 0 {
		limit = defaultSketchDenseLimit
	}
	// idx: node -> unknown. Only ground is eliminated, so the map is i-1.
	idx := make([]int, nw.nodes)
	idx[Ground] = -1
	for i := 1; i < nw.nodes; i++ {
		idx[i] = i - 1
	}
	vfixed := make([]float64, nw.nodes) // ground at 0; no other fixed nodes
	if n <= limit {
		if err := sk.buildDense(nw, idx, vfixed, opt); err != nil {
			return nil, err
		}
	} else {
		if err := sk.buildCG(nw, idx, vfixed, opt); err != nil {
			return nil, err
		}
	}
	return sk, nil
}

// buildDense assembles the dense conductance system, factors it (Cholesky,
// LU fallback) and streams the probe panel through it in fixed-width
// chunks. Panel columns solve with per-column-independent recurrences, so
// every table entry is a pure function of the network — independent of
// chunking and of which other probes are requested.
func (sk *ProbeSketch) buildDense(nw *Network, idx []int, vfixed []float64, opt SketchOptions) error {
	n := sk.n
	g := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		g.Add(i, i, Gmin)
	}
	bdump := make([]float64, n) // stays zero: only ground (0 V) is fixed
	for _, r := range nw.edges {
		stampDense(g, bdump, idx, vfixed, r)
	}
	chol := linalg.NewCholesky(n)
	var lu *linalg.LU
	if err := chol.Factor(g); err != nil {
		chol = nil
		var luErr error
		lu, luErr = linalg.Factor(g)
		if luErr != nil {
			return fmt.Errorf("circuit: factoring sketch system: %w", luErr)
		}
	}
	batch := opt.BatchRHS
	if batch <= 0 {
		batch = defaultSketchBatch
	}
	total := sk.ns + sk.np
	panel := make([]float64, n*batch)
	for lo := 0; lo < total; lo += batch {
		k := batch
		if lo+k > total {
			k = total - lo
		}
		sub := panel[:n*k]
		for i := range sub {
			sub[i] = 0
		}
		for c := 0; c < k; c++ {
			if q := lo + c; q < sk.ns {
				sub[sk.si[q]*k+c] = 1
			} else {
				j := q - sk.ns
				sub[sk.pa[j]*k+c] = 1
				sub[sk.pb[j]*k+c] = -1
			}
		}
		var err error
		if chol != nil {
			err = chol.SolveBatchInto(sub, sub, k)
		} else {
			err = lu.SolveBatchInto(sub, sub, k)
		}
		if err != nil {
			return err
		}
		for c := 0; c < k; c++ {
			sk.extractColumn(lo+c, sub, k, c)
		}
	}
	return nil
}

// buildCG assembles the sparse CSR system and answers each probe with a
// warm-started Jacobi-CG solve — the large-device backend, trading the
// dense factor's O(n^3) time and O(n^2) memory for O(nnz) per iteration.
func (sk *ProbeSketch) buildCG(nw *Network, idx []int, vfixed []float64, opt SketchOptions) error {
	n := sk.n
	bdump := make([]float64, n)
	coords := make([]linalg.Coord, 0, len(nw.edges)*4+n)
	for i := 0; i < n; i++ {
		coords = append(coords, linalg.Coord{Row: i, Col: i, Val: Gmin})
	}
	for _, r := range nw.edges {
		coords = stampSparse(coords, bdump, idx, vfixed, r)
	}
	m := linalg.NewCSR(n, coords)
	tol := opt.CGTol
	if tol <= 0 {
		tol = 1e-12
	}
	rhs := make([]float64, n)
	var prev []float64
	for q := 0; q < sk.ns+sk.np; q++ {
		for i := range rhs {
			rhs[i] = 0
		}
		if q < sk.ns {
			rhs[sk.si[q]] = 1
		} else {
			rhs[sk.pa[q-sk.ns]] = 1
			rhs[sk.pb[q-sk.ns]] = -1
		}
		x, res, err := linalg.SolveCG(m, rhs, linalg.CGOptions{MaxIter: 50 * n, Tol: tol, X0: prev})
		if err != nil {
			return fmt.Errorf("circuit: sketch CG probe %d: %w", q, err)
		}
		if !res.Converged {
			return fmt.Errorf("circuit: sketch CG probe %d did not converge (residual %g after %d iters)", q, res.Residual, res.Iterations)
		}
		prev = x
		sk.extractColumn(q, x, 1, 0)
	}
	return nil
}

// extractColumn scatters solved probe column q (column c of an n x k
// row-major panel y) into the Green tables.
func (sk *ProbeSketch) extractColumn(q int, y []float64, k, c int) {
	if q < sk.ns {
		for t := 0; t < sk.ns; t++ {
			sk.tmat[q*sk.ns+t] = y[sk.si[t]*k+c]
		}
		return
	}
	j := q - sk.ns
	for i := 0; i < sk.np; i++ {
		sk.w[i*sk.np+j] = y[sk.pa[i]*k+c] - y[sk.pb[i]*k+c]
	}
	for s := 0; s < sk.ns; s++ {
		sk.cmat[s*sk.np+j] = y[sk.si[s]*k+c]
	}
}

// NumPairs returns the number of probe pairs in the sketch.
func (sk *ProbeSketch) NumPairs() int { return sk.np }

// NumSingles returns the number of single-node probes in the sketch.
func (sk *ProbeSketch) NumSingles() int { return sk.ns }

// PinnedSketch is one operating point of a ProbeSketch: a set of single
// probes pinned to fixed voltages. It precomputes the M^-1-projected probe
// columns so BaseDiff and Quad are O(k) per call. Immutable once built and
// safe for concurrent readers.
type PinnedSketch struct {
	sk *ProbeSketch
	k  int
	cf []float64 // k x np: cf[a*np+j] = C[fixed_a][j]
	mc []float64 // k x np: column j is M^-1 * C[.][j]
	bd []float64 // np: u_j^T x_base
}

// Pin applies fixed voltages volts to the probe singles at positions fixed
// (indices into the singles list given to FactorSketch) and returns the
// constrained operating point.
func (sk *ProbeSketch) Pin(fixed []int, volts []float64) (*PinnedSketch, error) {
	k := len(fixed)
	if k == 0 || k != len(volts) {
		return nil, fmt.Errorf("circuit: Pin needs matching fixed/volt lists, got %d/%d", k, len(volts))
	}
	for a, f := range fixed {
		if f < 0 || f >= sk.ns {
			return nil, fmt.Errorf("circuit: pinned single %d out of range [0,%d)", f, sk.ns)
		}
		for b := 0; b < a; b++ {
			if fixed[b] == f {
				return nil, fmt.Errorf("circuit: single %d pinned twice", f)
			}
		}
	}
	// M = E^T G^-1 E is the pinned slice of T.
	m := linalg.NewDense(k, k)
	for a, fa := range fixed {
		for b, fb := range fixed {
			m.Add(a, b, sk.tmat[fa*sk.ns+fb])
		}
	}
	lu, err := linalg.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: Pin constraint system singular: %w", err)
	}
	lam := make([]float64, k)
	if err := lu.SolveInto(lam, volts); err != nil {
		return nil, err
	}
	p := &PinnedSketch{
		sk: sk, k: k,
		cf: make([]float64, k*sk.np),
		mc: make([]float64, k*sk.np),
		bd: make([]float64, sk.np),
	}
	for a, fa := range fixed {
		copy(p.cf[a*sk.np:(a+1)*sk.np], sk.cmat[fa*sk.np:(fa+1)*sk.np])
	}
	tmp := make([]float64, k)
	out := make([]float64, k)
	for j := 0; j < sk.np; j++ {
		for a := 0; a < k; a++ {
			tmp[a] = p.cf[a*sk.np+j]
		}
		if err := lu.SolveInto(out, tmp); err != nil {
			return nil, err
		}
		for a := 0; a < k; a++ {
			p.mc[a*sk.np+j] = out[a]
		}
	}
	// Base drops: u_j^T x = u_j^T G^-1 E lam = C[.][j] . lam.
	for j := 0; j < sk.np; j++ {
		s := 0.0
		for a := 0; a < k; a++ {
			s += p.cf[a*sk.np+j] * lam[a]
		}
		p.bd[j] = s
	}
	return p, nil
}

// BaseDiff returns the base operating-point voltage difference across probe
// pair j (V(A) - V(B)).
func (p *PinnedSketch) BaseDiff(j int) float64 { return p.bd[j] }

// Quad returns u_i^T H u_j, the constrained-inverse quadratic form between
// probe pairs i and j — the Sherman–Morrison coupling of an edge
// perturbation on pair j's edge to the voltage observed across pair i.
func (p *PinnedSketch) Quad(i, j int) float64 {
	np := p.sk.np
	s := p.sk.w[i*np+j]
	for a := 0; a < p.k; a++ {
		s -= p.cf[a*np+i] * p.mc[a*np+j]
	}
	return s
}

// PerturbScale returns the Sherman–Morrison scale for a conductance change
// of dg siemens on the edge spanning pair j: the perturbed difference
// across pair i is BaseDiff(i) - scale*Quad(i, j). Mirrors the scale term
// of Factored.SolveEdgePerturbed with H in place of the factored inverse.
func (p *PinnedSketch) PerturbScale(j int, dg float64) (float64, error) {
	denom := 1 + dg*p.Quad(j, j)
	if denom == 0 {
		return 0, fmt.Errorf("circuit: singular rank-1 update on probe pair %d", j)
	}
	return dg * p.bd[j] / denom, nil
}
