package circuit

import (
	"math"
	"math/rand"
	"testing"
)

// sketchFixture builds two equivalent views of one random resistor mesh:
// the floating variant (every terminal held through a keeper, only ground
// fixed) that FactorSketch consumes, and the driven variant (terminals t1/t2
// voltage-fixed, no keepers there) that the classic FactorSystem path
// solves. Mesh edges are added first and in the same order in both, so edge
// indices used for perturbations agree.
type sketchFixture struct {
	floating *Network
	driven   *Network
	nodes    int
	t1, t2   int
	meshA    []int // mesh edge endpoints
	meshB    []int
	meshR    []float64
	vdrive   float64
}

func buildSketchFixture(t *testing.T, seed int64) *sketchFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nodes = 40
	fx := &sketchFixture{
		floating: NewNetwork(nodes),
		driven:   NewNetwork(nodes),
		nodes:    nodes,
		t1:       1,
		t2:       2,
		vdrive:   0.7,
	}
	addMesh := func(a, b int, r float64) {
		fx.meshA = append(fx.meshA, a)
		fx.meshB = append(fx.meshB, b)
		fx.meshR = append(fx.meshR, r)
		if err := fx.floating.AddResistor(a, b, r); err != nil {
			t.Fatal(err)
		}
		if err := fx.driven.AddResistor(a, b, r); err != nil {
			t.Fatal(err)
		}
	}
	// Ring over all non-ground nodes keeps the mesh connected; random chords
	// add sneak-path-like structure.
	for i := 1; i < nodes; i++ {
		j := i + 1
		if j == nodes {
			j = 1
		}
		addMesh(i, j, 100+rng.Float64()*9900)
	}
	for k := 0; k < 60; k++ {
		a := 1 + rng.Intn(nodes-1)
		b := 1 + rng.Intn(nodes-1)
		if a == b {
			continue
		}
		addMesh(a, b, 100+rng.Float64()*9900)
	}
	// Keepers: terminals t1/t2 plus a few bystander nodes. In the driven
	// variant t1/t2 are voltage sources instead (the crossbar's PoE drive).
	const rKeeper = 50
	for _, n := range []int{fx.t1, fx.t2, 7, 19, 33} {
		if err := fx.floating.AddResistor(n, Ground, rKeeper); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{7, 19, 33} {
		if err := fx.driven.AddResistor(n, Ground, rKeeper); err != nil {
			t.Fatal(err)
		}
	}
	if err := fx.driven.FixVoltage(fx.t1, fx.vdrive); err != nil {
		t.Fatal(err)
	}
	if err := fx.driven.FixVoltage(fx.t2, -fx.vdrive); err != nil {
		t.Fatal(err)
	}
	return fx
}

// probePairs returns the probe set: endpoints of a spread of mesh edges.
func (fx *sketchFixture) probePairs() ([]ProbePair, []int) {
	var pairs []ProbePair
	var edges []int
	for e := 0; e < len(fx.meshA); e += 3 {
		a, b := fx.meshA[e], fx.meshB[e]
		if a == fx.t1 || a == fx.t2 || b == fx.t1 || b == fx.t2 {
			continue
		}
		pairs = append(pairs, ProbePair{A: a, B: b})
		edges = append(edges, e)
	}
	return pairs, edges
}

func relDiff(a, b, scale float64) float64 {
	return math.Abs(a-b) / math.Max(scale, 1e-30)
}

// TestSketchMatchesFactoredSystem pins the sketch's whole algebra — base
// drops and Sherman–Morrison perturbed drops — against the independently
// assembled driven-network Factored path.
func TestSketchMatchesFactoredSystem(t *testing.T) {
	fx := buildSketchFixture(t, 7)
	pairs, edges := fx.probePairs()
	sk, err := fx.floating.FactorSketch(pairs, []int{fx.t1, fx.t2}, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pin, err := sk.Pin([]int{0, 1}, []float64{fx.vdrive, -fx.vdrive})
	if err != nil {
		t.Fatal(err)
	}
	fac, err := fx.driven.FactorSystem()
	if err != nil {
		t.Fatal(err)
	}
	base := fac.Base()
	for j, pr := range pairs {
		want := base.V[pr.A] - base.V[pr.B]
		if d := relDiff(pin.BaseDiff(j), want, fx.vdrive); d > 1e-9 {
			t.Fatalf("pair %d base diff: sketch %g vs factored %g (rel %g)", j, pin.BaseDiff(j), want, d)
		}
	}
	// Perturb every probed edge to 1.8x its resistance and compare the
	// perturbed drops across all probe pairs.
	perts := make([]EdgePerturbation, len(edges))
	for i, e := range edges {
		perts[i] = EdgePerturbation{Edge: e, NewOhms: fx.meshR[e] * 1.8}
	}
	want := make([]float64, len(perts)*len(pairs))
	if err := fac.SolveEdgesPerturbedDiffs(perts, pairs, want); err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		dg := 1/perts[i].NewOhms - 1/fx.meshR[e]
		scale, err := pin.PerturbScale(i, dg)
		if err != nil {
			t.Fatal(err)
		}
		for q := range pairs {
			got := pin.BaseDiff(q) - scale*pin.Quad(q, i)
			if d := relDiff(got, want[i*len(pairs)+q], fx.vdrive); d > 1e-9 {
				t.Fatalf("pert %d probe %d: sketch %g vs factored %g (rel %g)", i, q, got, want[i*len(pairs)+q], d)
			}
		}
	}
}

// TestSketchCGBackendMatchesDense forces the CG backend and checks its
// Green tables against the dense backend's.
func TestSketchCGBackendMatchesDense(t *testing.T) {
	fx := buildSketchFixture(t, 11)
	pairs, _ := fx.probePairs()
	singles := []int{fx.t1, fx.t2}
	dense, err := fx.floating.FactorSketch(pairs, singles, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := fx.floating.FactorSketch(pairs, singles, SketchOptions{DenseLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for _, v := range dense.w {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	check := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if d := relDiff(a[i], b[i], maxAbs); d > 1e-7 {
				t.Fatalf("%s[%d]: dense %g vs cg %g (rel %g)", name, i, a[i], b[i], d)
			}
		}
	}
	check("W", dense.w, cg.w)
	check("C", dense.cmat, cg.cmat)
	check("T", dense.tmat, cg.tmat)
}

func TestSketchRejectsDrivenNetworks(t *testing.T) {
	fx := buildSketchFixture(t, 3)
	pairs, _ := fx.probePairs()
	if _, err := fx.driven.FactorSketch(pairs, []int{fx.t1}, SketchOptions{}); err == nil {
		t.Fatal("FactorSketch accepted a network with fixed non-ground nodes")
	}
}

func TestSketchPinValidation(t *testing.T) {
	fx := buildSketchFixture(t, 5)
	pairs, _ := fx.probePairs()
	sk, err := fx.floating.FactorSketch(pairs, []int{fx.t1, fx.t2}, SketchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sk.Pin([]int{0, 2}, []float64{1, -1}); err == nil {
		t.Fatal("Pin accepted an out-of-range single")
	}
	if _, err := sk.Pin([]int{0, 0}, []float64{1, -1}); err == nil {
		t.Fatal("Pin accepted a duplicate single")
	}
	if _, err := sk.Pin([]int{0}, []float64{1, -1}); err == nil {
		t.Fatal("Pin accepted mismatched lengths")
	}
}
