package poe

import (
	"fmt"
	"testing"

	"snvmm/internal/xbar"
)

// The placement benchmarks pin the solver's two regimes: the 8x8 default
// config solves at the root (pure LP + canonicalization cost), and the
// 16x16 S=0 instance is a real branch-and-bound search. The 16x16 cases cap
// MaxNodes so one iteration is a fixed amount of search work rather than a
// run-to-optimality whose length depends on incumbent luck; the sequential
// vs parallel pair then isolates the work-stealing overhead (on multi-core
// hosts, the speedup).
func benchSolve(b *testing.B, rows, cols, s, maxNodes, workers int) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = rows, cols
	spec := Spec{Cfg: cfg, S: s, MaxNodes: maxNodes, Workers: workers}
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		res, err := Solve(spec)
		if err != nil {
			b.Fatal(err)
		}
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

func BenchmarkPlacement8x8(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSolve(b, 8, 8, 0, 0, workers)
		})
	}
}

func BenchmarkPlacement16x16(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSolve(b, 16, 16, 0, 40, workers)
		})
	}
}
