package poe

import (
	"math/rand"
	"testing"

	"snvmm/internal/xbar"
)

// TestSolveCoverageProperty is the property behind Table 1, checked across
// randomized geometries instead of only the paper's 8x8: for every
// geometry the ILP accepts, the returned covering set must (a) cover every
// cell at least once and at most MaxCover times, (b) reach the total
// coverage floor M*N + S, (c) place every PoE in bounds with no
// duplicates, and (d) agree with an independent recount of the coverage
// vector. Infeasible geometries (reach too small for the overlap cap, S
// too greedy) are allowed to error — but the sweep must produce a healthy
// number of solved instances or the property has silently stopped biting.
func TestSolveCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20140601)) // DAC'14
	const instances = 12
	solved := 0
	for i := 0; i < instances; i++ {
		cfg := xbar.DefaultConfig()
		cfg.Rows = 2 + rng.Intn(5) // 2..6
		cfg.Cols = 2 + rng.Intn(5)
		cfg.VertReach = 1 + rng.Intn(3) // 1..3
		cfg.HorizReach = rng.Intn(2)    // 0..1
		n := cfg.Cells()
		// S up to half the cell count keeps a good fraction feasible under
		// the default MaxCover=2 (total coverage can reach at most 2*M*N).
		spec := Spec{Cfg: cfg, S: rng.Intn(n/2 + 1), MaxNodes: 20000}
		res, err := Solve(spec)
		if err != nil {
			t.Logf("instance %d (%dx%d reach %d/%d S=%d): infeasible/limit: %v",
				i, cfg.Rows, cfg.Cols, cfg.VertReach, cfg.HorizReach, spec.S, err)
			continue
		}
		solved++

		seen := map[xbar.Cell]bool{}
		for _, p := range res.PoEs {
			if !cfg.InBounds(p) {
				t.Errorf("instance %d: PoE %+v out of %dx%d bounds", i, p, cfg.Rows, cfg.Cols)
			}
			if seen[p] {
				t.Errorf("instance %d: duplicate PoE %+v", i, p)
			}
			seen[p] = true
		}

		recount := CoverageOf(cfg, cfg.PaperShape, res.PoEs)
		if len(res.Coverage) != n || len(recount) != n {
			t.Fatalf("instance %d: coverage length %d/%d, want %d", i, len(res.Coverage), len(recount), n)
		}
		total := 0
		for m := 0; m < n; m++ {
			if res.Coverage[m] != recount[m] {
				t.Errorf("instance %d: reported coverage[%d]=%d, recount %d", i, m, res.Coverage[m], recount[m])
			}
			if recount[m] < 1 || recount[m] > 2 {
				t.Errorf("instance %d (%dx%d reach %d/%d S=%d): cell %d covered %d times, want [1,2]",
					i, cfg.Rows, cfg.Cols, cfg.VertReach, cfg.HorizReach, spec.S, m, recount[m])
			}
			total += recount[m]
		}
		if total < n+spec.S {
			t.Errorf("instance %d: total coverage %d below floor %d (S=%d)", i, total, n+spec.S, spec.S)
		}
	}
	if solved < instances/2 {
		t.Fatalf("only %d/%d random geometries solved; generator ranges no longer exercise the property", solved, instances)
	}
}

// TestSolveCoveragePropertyWideCap re-runs the property at MaxCover=3 on a
// few geometries, so the cap in the per-cell upper bound is exercised as a
// parameter rather than a constant.
func TestSolveCoveragePropertyWideCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		cfg := xbar.DefaultConfig()
		cfg.Rows = 3 + rng.Intn(3)
		cfg.Cols = 3 + rng.Intn(3)
		cfg.VertReach = 1 + rng.Intn(2)
		cfg.HorizReach = 1
		n := cfg.Cells()
		spec := Spec{Cfg: cfg, S: n, MaxCover: 3, MaxNodes: 20000}
		res, err := Solve(spec)
		if err != nil {
			t.Logf("instance %d: %v", i, err)
			continue
		}
		total := 0
		for m, c := range res.Coverage {
			if c < 1 || c > 3 {
				t.Errorf("instance %d: cell %d covered %d times, want [1,3]", i, m, c)
			}
			total += c
		}
		if total < n+spec.S {
			t.Errorf("instance %d: total coverage %d below floor %d", i, total, n+spec.S)
		}
	}
}
